package els_test

import (
	"fmt"

	els "repro"
)

// The paper's Example 1b: three tables joined on a single equivalence
// class. Algorithm ELS estimates the exact 1000 rows.
func ExampleSystem_Estimate() {
	sys := els.New()
	sys.MustDeclareStats("R1", 100, map[string]float64{"x": 10})
	sys.MustDeclareStats("R2", 1000, map[string]float64{"y": 100})
	sys.MustDeclareStats("R3", 1000, map[string]float64{"z": 1000})

	est, err := sys.Estimate(
		"SELECT COUNT(*) FROM R1, R2, R3 WHERE x = y AND y = z", els.AlgorithmELS)
	if err != nil {
		panic(err)
	}
	fmt.Println(est.FinalSize)
	fmt.Println(est.ImpliedPredicates)
	// Output:
	// 1000
	// [R1.x = R3.z]
}

// Example 2: the classic multiplicative rule, after transitive closure,
// multiplies dependent selectivities and collapses to 1 row.
func ExampleSystem_EstimateOrder() {
	sys := els.New()
	sys.MustDeclareStats("R1", 100, map[string]float64{"x": 10})
	sys.MustDeclareStats("R2", 1000, map[string]float64{"y": 100})
	sys.MustDeclareStats("R3", 1000, map[string]float64{"z": 1000})
	sql := "SELECT COUNT(*) FROM R1, R2, R3 WHERE x = y AND y = z"

	for _, algo := range []els.Algorithm{els.AlgorithmSMPTC, els.AlgorithmSSS, els.AlgorithmELS} {
		est, err := sys.EstimateOrder(sql, algo, []string{"R2", "R3", "R1"})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %g\n", algo, est.FinalSize)
	}
	// Output:
	// SM+PTC: 1
	// SSS+PTC: 100
	// ELS: 1000
}

// Loading data enables execution: the count is exact, and the result
// carries per-node estimated-vs-actual cardinalities.
func ExampleSystem_Query() {
	sys := els.New()
	if err := sys.LoadTable("A", []string{"k"}, [][]int64{{1}, {2}, {2}, {3}}); err != nil {
		panic(err)
	}
	if err := sys.LoadTable("B", []string{"k"}, [][]int64{{2}, {3}, {4}}); err != nil {
		panic(err)
	}
	res, err := sys.Query("SELECT COUNT(*) FROM A, B WHERE A.k = B.k", els.AlgorithmELS)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Count)
	// Output:
	// 3
}

// GROUP BY with aggregates over a loaded table.
func ExampleSystem_Query_groupBy() {
	sys := els.New()
	rows := [][]int64{{1, 10}, {1, 20}, {2, 5}}
	if err := sys.LoadTable("T", []string{"g", "v"}, rows); err != nil {
		panic(err)
	}
	res, err := sys.Query("SELECT g, COUNT(*), SUM(v) FROM T GROUP BY g", els.AlgorithmELS)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1], row[2])
	}
	// Output:
	// 1 2 30
	// 2 1 5
}
