package els

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/governor"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/selest"
	"repro/internal/snapshot"
	"repro/internal/sqlparse"
)

// StepEstimate describes one incremental join step of a plan's estimate.
type StepEstimate struct {
	// Table is the alias joined at this step.
	Table string
	// Size is the estimated result size after the step.
	Size float64
	// Selectivity is the combined join selectivity applied.
	Selectivity float64
	// Cartesian marks steps with no eligible join predicate.
	Cartesian bool
	// EligiblePredicates renders the join predicates considered.
	EligiblePredicates []string
}

// Estimate is the outcome of estimating (and planning) a query.
type Estimate struct {
	// Algorithm is the estimation algorithm used.
	Algorithm Algorithm
	// JoinOrder is the chosen left-deep base-table order.
	JoinOrder []string
	// JoinMethods are the physical methods along the plan, innermost first.
	JoinMethods []string
	// Steps are the estimated sizes after each join, innermost first.
	Steps []StepEstimate
	// FinalSize is the estimated result size of the whole query.
	FinalSize float64
	// Cost is the optimizer's cost of the chosen plan.
	Cost float64
	// PlanText is the formatted plan tree.
	PlanText string
	// ImpliedPredicates renders the predicates added by transitive closure
	// (empty for algorithms that do not close).
	ImpliedPredicates []string
	// GroupEstimate is the estimated number of groups for GROUP BY queries
	// (the product of the grouping columns' effective cardinalities, capped
	// by the join size estimate); 0 for ungrouped queries.
	GroupEstimate float64
	// Warnings lists statistics repairs the estimator applied when catalog
	// statistics were corrupt (NaN, negative, zero cardinalities degraded
	// to paper defaults). Empty for healthy catalogs.
	Warnings []string
	// CatalogVersion is the catalog snapshot version the query pinned at
	// admission. All statistics the estimate read come from exactly this
	// published version, even if the catalog was mutated while the query
	// ran.
	CatalogVersion uint64
	// Replica reports that the estimate was served by a read replica
	// (els.OpenReplica) rather than the primary.
	Replica bool
	// ReplicaLag is how many catalog versions the replica's pinned
	// snapshot trailed the primary's last acknowledged version when the
	// result was produced; 0 on a primary or a fully caught-up replica.
	// Reads lagging past Limits.MaxReplicaLag never produce a result at
	// all — they fail with ErrStaleReplica.
	ReplicaLag uint64
}

// NodeStat compares one plan node's estimated and actual output
// cardinality (EXPLAIN ANALYZE data).
type NodeStat struct {
	// Node is the node's one-line plan description.
	Node string
	// Depth is the node's depth in the plan tree.
	Depth int
	// EstimatedRows is the optimizer's estimate.
	EstimatedRows float64
	// ActualRows is what execution produced; -1 for nodes that are never
	// materialized (the re-scanned inner of a nested-loops join).
	ActualRows int64
}

// Result is the outcome of executing a query.
type Result struct {
	// Estimate carries the plan and its estimates.
	Estimate *Estimate
	// Count is the number of result rows (the COUNT(*) value).
	Count int64
	// Columns are the output column names (empty for COUNT(*) queries the
	// caller only counts).
	Columns []string
	// Rows holds the materialized output rendered as strings, capped at
	// MaxRows by Query.
	Rows [][]string
	// TuplesScanned and Comparisons are deterministic work counters.
	TuplesScanned, Comparisons int64
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// Nodes holds per-node estimated-vs-actual cardinalities (EXPLAIN
	// ANALYZE), root-first.
	Nodes []NodeStat
	// PeakMemoryBytes is the high-water mark of the query's byte ledger:
	// the most working memory (operator outputs, hash-table build sides,
	// columnar arenas, spill buffers) the query had charged at any instant.
	// Tracked whether or not Limits.MaxMemory was set.
	PeakMemoryBytes int64
	// SpillCount and SpilledBytes report how many hash-join build sides
	// exceeded their memory reservation and were partitioned to disk, and
	// how many run-file bytes they wrote. Both are 0 for queries that ran
	// entirely in memory.
	SpillCount, SpilledBytes int64
}

// FormatAnalyze renders the per-node estimate-vs-actual report.
func (r *Result) FormatAnalyze() string {
	var b strings.Builder
	for _, n := range r.Nodes {
		actual := "(not materialized)"
		if n.ActualRows >= 0 {
			actual = fmt.Sprintf("actual=%d", n.ActualRows)
		}
		fmt.Fprintf(&b, "%s%s  est=%.6g %s\n", strings.Repeat("  ", n.Depth), n.Node, n.EstimatedRows, actual)
	}
	return b.String()
}

// MaxRows caps the number of materialized rows Query copies into a Result.
const MaxRows = 1000

// optimizerOptions returns the paper repertoire (nested loops +
// sort-merge), extended with index nested-loops when the user has built
// any index in the pinned catalog, governed by the query's resource
// governor.
//
// Under a byte budget (Limits.MaxMemory) sort-merge is swapped for the
// hash join: sort-merge's sort scratch must fit in memory outright (its
// GrabBytes fails the query when it cannot), while the hash join's build
// side degrades to the Grace spill path and completes under any budget.
// An unbudgeted system keeps the paper repertoire exactly, so existing
// plans, counters, and explain output are untouched.
func optimizerOptions(cat *catalog.Catalog, gov *governor.Governor) optimizer.Options {
	opts := optimizer.PaperOptions()
	if gov.MemoryEnforced() {
		opts.Methods = []optimizer.JoinMethod{optimizer.NestedLoop, optimizer.HashJoin}
	}
	if hasAnyIndex(cat) {
		opts.Methods = append(opts.Methods, optimizer.IndexNL)
	}
	opts.Governor = gov
	return opts
}

// cachedPlan is one plan-cache entry: the optimized (immutable) plan tree
// and a fully built estimate template. Hits copy the template by value, so
// per-serve stamping (replica lag) never leaks between callers or back
// into the cache.
type cachedPlan struct {
	plan optimizer.Plan
	est  Estimate
}

// planFor parses, binds, plans, and estimates sql under algo against the
// pinned snapshot, consulting the system's plan cache first. A non-empty
// order forces the join order (EstimateOrder) and is folded into the cache
// key, so forced-order estimates cache independently of best-plan ones.
//
// The cache key is (canonical normalized query, algorithm, pinned catalog
// version): semantically identical query texts share an entry, and an
// entry can only ever be served against the exact catalog version it was
// planned on. On a hit, parse and bind still run (the caller needs the
// bound query, and binding is what canonicalization is defined over) but
// estimation and plan enumeration are skipped entirely — no plans are
// charged against Limits.MaxPlans. Failed preparations are never cached.
// Limits.DisableCache bypasses the cache wholesale.
func (s *System) planFor(gov *governor.Governor, snap *snapshot.Snapshot, sql string, algo Algorithm, order []string) (*sqlparse.Query, optimizer.Plan, *Estimate, error) {
	cfg, err := algo.config()
	if err != nil {
		return nil, nil, nil, err
	}
	cat := snap.Catalog()
	q, err := sqlparse.ParseAndBind(sql, cat)
	if err != nil {
		return nil, nil, nil, wrapParse(err)
	}
	cache := s.cache
	if cache == nil || s.Limits().DisableCache {
		cache = nil
	}
	var key plancache.Key
	if cache != nil {
		key = plancache.Key{Query: cacheQueryText(q, order), Algo: int(algo), Version: snap.Version()}
		if v, ok := cache.Get(key); ok {
			cp := v.(*cachedPlan)
			est := cp.est // copy the template; callers may stamp their copy
			return q, cp.plan, &est, nil
		}
	}
	tabs := make([]cardest.TableRef, len(q.Tables))
	for i, item := range q.Tables {
		tabs[i] = cardest.TableRef{Alias: item.Alias, Table: item.Table}
	}
	cest, err := cardest.NewQuery(cat, tabs, q.Where, q.Disjunctions, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	opt, err := optimizer.New(cest, optimizerOptions(cat, gov))
	if err != nil {
		return nil, nil, nil, err
	}
	var plan optimizer.Plan
	if len(order) > 0 {
		plan, err = opt.PlanForOrder(order)
	} else {
		plan, err = opt.BestPlan()
	}
	if err != nil {
		return nil, nil, nil, err
	}
	est := buildEstimate(algo, plan, opt)
	est.CatalogVersion = snap.Version()
	est.GroupEstimate = estimateGroups(q, plan, opt)
	if cache != nil {
		cp := &cachedPlan{plan: plan, est: *est}
		cache.Put(key, cp)
		// Record the new cache entry against this query's byte ledger so
		// plan-cache pressure is visible in PeakMemoryBytes, then release
		// immediately: the entry's ownership transfers to the cache (whose
		// size is bounded by Limits.PlanCacheSize, not per-query memory),
		// and a lingering charge would make spill decisions later in the
		// same query depend on cache hit/miss history — breaking the
		// bit-identity contract between cold- and warm-cache runs.
		n := cachedPlanBytes(cp)
		gov.ChargeBytes(n)
		gov.ReleaseBytes(n)
	}
	return q, plan, est, nil
}

// cachedPlanBytes approximates the footprint of one plan-cache entry: the
// rendered plan text and step strings dominate; the fixed struct overhead
// is a round constant.
func cachedPlanBytes(cp *cachedPlan) int64 {
	n := int64(512) + int64(len(cp.est.PlanText))
	for _, s := range cp.est.Steps {
		n += 64
		for _, p := range s.EligiblePredicates {
			n += int64(len(p))
		}
	}
	for _, p := range cp.est.ImpliedPredicates {
		n += int64(len(p))
	}
	return n
}

// cacheQueryText renders the cache key's query component: the canonical
// normalized query, plus a length-prefixed forced-order suffix when the
// caller pinned a join order.
func cacheQueryText(q *sqlparse.Query, order []string) string {
	norm := plancache.Canonical(q)
	if len(order) == 0 {
		return norm
	}
	var b strings.Builder
	b.WriteString(norm)
	b.WriteString("order:")
	for _, alias := range order {
		a := strings.ToLower(alias)
		fmt.Fprintf(&b, "%d:%s", len(a), a)
	}
	b.WriteByte('\n')
	return b.String()
}

func buildEstimate(algo Algorithm, plan optimizer.Plan, opt *optimizer.Optimizer) *Estimate {
	e := &Estimate{
		Algorithm:   algo,
		JoinOrder:   optimizer.JoinOrder(plan),
		JoinMethods: nil,
		FinalSize:   plan.EstRows(),
		Cost:        plan.Cost(),
		PlanText:    optimizer.Format(plan),
	}
	var walk func(optimizer.Plan)
	walk = func(n optimizer.Plan) {
		if j, ok := n.(*optimizer.Join); ok {
			walk(j.Left)
			step := StepEstimate{
				Table:       j.Step.Table,
				Size:        j.Step.Size,
				Selectivity: j.Step.Selectivity,
				Cartesian:   j.Step.Cartesian,
			}
			for _, g := range j.Step.Groups {
				for _, p := range g.Predicates {
					step.EligiblePredicates = append(step.EligiblePredicates, p.String())
				}
			}
			e.Steps = append(e.Steps, step)
			e.JoinMethods = append(e.JoinMethods, j.Method.String())
		}
	}
	walk(plan)
	for _, p := range opt.Estimator().Implied() {
		e.ImpliedPredicates = append(e.ImpliedPredicates, p.String())
	}
	e.Warnings = opt.Estimator().Warnings()
	return e
}

// estimateWorkingBytes sizes the estimate-informed memory reservation for
// a plan under Limits.MaxMemory. For every hash join in the plan the build
// (right) side is materialized at roughly EstRows × Width columns × 16
// bytes (the storage byte model's string base footprint; integers cost
// half that, so this over- rather than under-reserves); the reservation is
// the largest such build doubled as a safety factor. The governor compares
// each actual build size against this figure (Governor.ShouldSpill), so a
// join whose true input dwarfs its estimate spills at build time instead
// of discovering the budget cliff mid-probe. The figure is a pure function
// of the plan — identical across engines and worker counts — which keeps
// spill decisions deterministic.
func estimateWorkingBytes(plan optimizer.Plan) int64 {
	var worst float64
	var walk func(optimizer.Plan)
	walk = func(n optimizer.Plan) {
		j, ok := n.(*optimizer.Join)
		if !ok {
			return
		}
		walk(j.Left)
		walk(j.Right)
		if j.Method == optimizer.HashJoin {
			if b := j.Right.EstRows() * float64(16*j.Right.Width()); b > worst {
				worst = b
			}
		}
	}
	walk(plan)
	worst *= 2 // safety factor against modest underestimates
	if worst > float64(1<<55) {
		worst = float64(1 << 55)
	}
	return int64(worst)
}

// estimateGroups computes the GROUP BY output-size estimate with the
// paper's own urn model: the candidate group space is the product of the
// grouping columns' effective cardinalities (the d′ values Algorithm ELS
// maintains), and the expected number of non-empty groups among the
// estimated join output of N rows is urn(D, N) — the same formula
// Section 5 uses for surviving distinct values.
func estimateGroups(q *sqlparse.Query, plan optimizer.Plan, opt *optimizer.Optimizer) float64 {
	if len(q.GroupBy) == 0 {
		return 0
	}
	groupSpace := 1.0
	for _, ref := range q.GroupBy {
		eff, err := opt.Estimator().Effective(ref.Table)
		if err != nil {
			continue
		}
		if d, err := eff.ColumnCard(ref.Column); err == nil && d > 0 {
			groupSpace *= d
		}
	}
	return selest.UrnDistinctCeil(groupSpace, plan.EstRows())
}

// Estimate parses the query, runs the selected estimation algorithm, plans
// the query, and returns the estimates without executing anything. It works
// on both declared-statistics and loaded tables.
func (s *System) Estimate(sql string, algo Algorithm) (*Estimate, error) {
	return s.EstimateContext(context.Background(), sql, algo) //ctxflow:allow context-less compatibility wrapper
}

// EstimateContext is Estimate governed by a context and the system's
// Limits: cancellation, the wall-clock deadline, and the plan-enumeration
// budget all abort planning with a typed error (ErrCanceled,
// ErrBudgetExceeded). Panics in the pipeline surface as ErrInternal. The
// call is admission-controlled (ErrOverloaded when shed, ErrClosed after
// Close) and estimates against the catalog snapshot pinned at admission.
func (s *System) EstimateContext(ctx context.Context, sql string, algo Algorithm) (*Estimate, error) {
	var est *Estimate
	err := s.serve(ctx, func(gov *governor.Governor, snap *snapshot.Snapshot) error {
		_, _, got, err := s.planFor(gov, snap, sql, algo, nil)
		if err != nil {
			return err
		}
		est = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	return est, nil
}

// EstimateOrder estimates the query along a fixed join order (the aliases
// of the FROM clause in the desired sequence), as the paper's worked
// examples do.
func (s *System) EstimateOrder(sql string, algo Algorithm, order []string) (*Estimate, error) {
	return s.EstimateOrderContext(context.Background(), sql, algo, order) //ctxflow:allow context-less compatibility wrapper
}

// EstimateOrderContext is EstimateOrder with governance and admission
// control (see EstimateContext).
func (s *System) EstimateOrderContext(ctx context.Context, sql string, algo Algorithm, order []string) (*Estimate, error) {
	var est *Estimate
	err := s.serve(ctx, func(gov *governor.Governor, snap *snapshot.Snapshot) error {
		_, _, got, err := s.planFor(gov, snap, sql, algo, order)
		if err != nil {
			return err
		}
		est = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	return est, nil
}

// Explain returns a human-readable report: implied predicates, the chosen
// plan, and the per-step estimates.
func (s *System) Explain(sql string, algo Algorithm) (string, error) {
	return s.ExplainContext(context.Background(), sql, algo) //ctxflow:allow context-less compatibility wrapper
}

// ExplainContext is Explain with governance and admission control (see
// EstimateContext). The report names the catalog snapshot version the
// estimates were computed against.
func (s *System) ExplainContext(ctx context.Context, sql string, algo Algorithm) (string, error) {
	var out string
	err := s.serve(ctx, func(gov *governor.Governor, snap *snapshot.Snapshot) error {
		_, _, est, err := s.planFor(gov, snap, sql, algo, nil)
		if err != nil {
			return err
		}
		out = formatExplain(est)
		return nil
	})
	if err != nil {
		return "", err
	}
	return out, nil
}

// formatExplain renders the human-readable Explain report for an estimate.
func formatExplain(est *Estimate) string {
	out := fmt.Sprintf("algorithm: %s\n", est.Algorithm)
	out += fmt.Sprintf("catalog version: %d\n", est.CatalogVersion)
	if est.Replica {
		out += fmt.Sprintf("replica lag: %d\n", est.ReplicaLag)
	}
	for _, w := range est.Warnings {
		out += "warning: " + w + "\n"
	}
	if len(est.ImpliedPredicates) > 0 {
		out += "implied by transitive closure:\n"
		for _, p := range est.ImpliedPredicates {
			out += "  " + p + "\n"
		}
	}
	out += "plan:\n" + est.PlanText
	out += fmt.Sprintf("estimated result size: %g (cost %.1f)\n", est.FinalSize, est.Cost)
	return out
}

// ExplainDot plans the query under the algorithm and returns the chosen
// plan as a Graphviz DOT digraph.
func (s *System) ExplainDot(sql string, algo Algorithm) (string, error) {
	return s.ExplainDotContext(context.Background(), sql, algo) //ctxflow:allow context-less compatibility wrapper
}

// ExplainDotContext is ExplainDot with governance and admission control
// (see EstimateContext): plan enumeration is charged to the system's
// Limits and aborts with a typed error on cancellation or an exhausted
// budget, like every other serve path.
func (s *System) ExplainDotContext(ctx context.Context, sql string, algo Algorithm) (string, error) {
	var out string
	err := s.serve(ctx, func(gov *governor.Governor, snap *snapshot.Snapshot) error {
		_, plan, _, err := s.planFor(gov, snap, sql, algo, nil)
		if err != nil {
			return err
		}
		out = optimizer.FormatDot(plan)
		return nil
	})
	if err != nil {
		return "", err
	}
	return out, nil
}

// Query plans and executes the SQL under the selected algorithm. Every
// table referenced must have loaded data (LoadTable/GenerateTable).
func (s *System) Query(sql string, algo Algorithm) (*Result, error) {
	return s.QueryContext(context.Background(), sql, algo) //ctxflow:allow context-less compatibility wrapper
}

// QueryContext is Query governed by a context and the system's Limits:
// cancelling the context aborts planning and execution inner loops with
// ErrCanceled; an exhausted budget (wall-clock, tuples scanned, rows
// materialized, plans enumerated) aborts with ErrBudgetExceeded. Panics in
// the pipeline surface as ErrInternal instead of crossing the API. The
// call is admission-controlled (ErrOverloaded when shed, ErrClosed after
// Close) and both plans and executes against the single catalog snapshot
// pinned at admission.
func (s *System) QueryContext(ctx context.Context, sql string, algo Algorithm) (*Result, error) {
	var result *Result
	err := s.serve(ctx, func(gov *governor.Governor, snap *snapshot.Snapshot) error {
		res, err := s.queryOn(snap, gov, sql, algo)
		if err != nil {
			return err
		}
		result = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// queryOn runs one plan-and-execute attempt against the pinned snapshot.
func (s *System) queryOn(snap *snapshot.Snapshot, gov *governor.Governor, sql string, algo Algorithm) (*Result, error) {
	q, plan, est, err := s.planFor(gov, snap, sql, algo, nil)
	if err != nil {
		return nil, err
	}
	exec := executor.NewGoverned(snap.Catalog(), gov)
	exec.SetSpillDir(s.spillRoot())
	if gov.MemoryEnforced() {
		// Estimate-informed pre-reservation: size the working-memory
		// reservation from the optimizer's own cardinality estimates so a
		// wildly underestimated join trips ShouldSpill at build time —
		// before the build is resident — rather than at the budget cliff.
		gov.ReserveBytes(estimateWorkingBytes(plan))
	}
	res, err := exec.Execute(plan)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Estimate:      est,
		Count:         res.Stats.RowsProduced,
		TuplesScanned: res.Stats.TuplesScanned,
		Comparisons:   res.Stats.Comparisons,
		Elapsed:       res.Stats.Elapsed,
	}
	_, out.PeakMemoryBytes, _ = gov.MemoryUsage()
	out.SpillCount, out.SpilledBytes = gov.SpillStats()
	s.noteMemory(out.PeakMemoryBytes, out.SpillCount, out.SpilledBytes)
	for _, n := range res.Nodes {
		out.Nodes = append(out.Nodes, NodeStat{
			Node: n.Node, Depth: n.Depth, EstimatedRows: n.EstRows, ActualRows: n.ActualRows,
		})
	}
	if len(q.Select) > 0 {
		return s.aggregateResult(q, exec, res, out)
	}
	if !q.CountStar {
		// Materialize (a cap of) the projected rows.
		schema := res.Table.Schema()
		cols := make([]int, 0, schema.NumColumns())
		if q.Star {
			for i := 0; i < schema.NumColumns(); i++ {
				cols = append(cols, i)
				out.Columns = append(out.Columns, schema.Column(i).Name)
			}
		} else {
			for _, ref := range q.Projection {
				idx := schema.ColumnIndex(ref.Table + "." + ref.Column)
				if idx < 0 {
					return nil, fmt.Errorf("%w: projection column %s missing from result", ErrInternal, ref)
				}
				cols = append(cols, idx)
				out.Columns = append(out.Columns, ref.String())
			}
		}
		n := res.Table.NumRows()
		if n > MaxRows {
			n = MaxRows
		}
		for r := 0; r < n; r++ {
			row := make([]string, len(cols))
			for i, c := range cols {
				row[i] = res.Table.Value(r, c).String()
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// CompareAlgorithms estimates and executes the query under every algorithm
// in algos (all algorithms if empty), returning results in order. All
// executions must produce the same count; an inconsistency is an error.
func (s *System) CompareAlgorithms(sql string, algos ...Algorithm) ([]*Result, error) {
	return s.CompareAlgorithmsContext(context.Background(), sql, algos...) //ctxflow:allow context-less compatibility wrapper
}

// CompareAlgorithmsContext is CompareAlgorithms with governance; each
// algorithm's run receives a fresh budget from the system's Limits, while
// cancellation applies to the whole comparison.
func (s *System) CompareAlgorithmsContext(ctx context.Context, sql string, algos ...Algorithm) ([]*Result, error) {
	if len(algos) == 0 {
		algos = []Algorithm{AlgorithmELS, AlgorithmSM, AlgorithmSMPTC, AlgorithmSSS}
	}
	var out []*Result
	for _, a := range algos {
		r, err := s.QueryContext(ctx, sql, a)
		if err != nil {
			return nil, fmt.Errorf("els: %s: %w", a, err)
		}
		if len(out) > 0 && r.Count != out[0].Count {
			return nil, fmt.Errorf("%w: plans disagree: %s counted %d, %s counted %d",
				ErrInternal, algos[0], out[0].Count, a, r.Count)
		}
		out = append(out, r)
	}
	return out, nil
}

// aggregateResult applies the query's GROUP BY and aggregate select list
// to the executed join result and renders the grouped rows.
func (s *System) aggregateResult(q *sqlparse.Query, exec *executor.Executor, res *executor.Result, out *Result) (*Result, error) {
	schema := res.Table.Schema()
	colIdx := func(ref string) (int, error) {
		idx := schema.ColumnIndex(ref)
		if idx < 0 {
			return 0, fmt.Errorf("%w: column %s missing from result", ErrInternal, ref)
		}
		return idx, nil
	}
	groupCols := make([]int, len(q.GroupBy))
	for i, ref := range q.GroupBy {
		idx, err := colIdx(ref.Table + "." + ref.Column)
		if err != nil {
			return nil, err
		}
		groupCols[i] = idx
	}
	// Build the aggregate specs and remember how to lay out the output in
	// select-list order: plain items read group columns, aggregate items
	// read the aggregate outputs.
	var aggs []executor.AggSpec
	layout := make([]int, len(q.Select)) // output ordinal in the Aggregate() table
	for i, item := range q.Select {
		if item.Agg == sqlparse.AggNone {
			pos := -1
			for gi, g := range q.GroupBy {
				if g.SameAs(item.Col) {
					pos = gi
					break
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("%w: column %s must appear in GROUP BY", ErrParse, item.Col)
			}
			layout[i] = pos
			continue
		}
		spec := executor.AggSpec{Name: fmt.Sprintf("a%d", i)}
		switch item.Agg {
		case sqlparse.AggCount:
			if item.Star {
				spec.Op = executor.AggCountStar
			} else {
				spec.Op = executor.AggCount
			}
		case sqlparse.AggSum:
			spec.Op = executor.AggSum
		case sqlparse.AggMin:
			spec.Op = executor.AggMin
		case sqlparse.AggMax:
			spec.Op = executor.AggMax
		case sqlparse.AggAvg:
			spec.Op = executor.AggAvg
		default:
			return nil, fmt.Errorf("%w: unsupported aggregate %v", ErrParse, item.Agg)
		}
		if !item.Star {
			idx, err := colIdx(item.Col.Table + "." + item.Col.Column)
			if err != nil {
				return nil, err
			}
			spec.Col = idx
		}
		layout[i] = len(q.GroupBy) + len(aggs)
		aggs = append(aggs, spec)
	}
	grouped, err := exec.Aggregate(res.Table, groupCols, aggs)
	if err != nil {
		return nil, err
	}
	out.Count = int64(grouped.NumRows())
	out.Columns = make([]string, len(q.Select))
	for i, item := range q.Select {
		out.Columns[i] = item.String()
	}
	n := grouped.NumRows()
	if n > MaxRows {
		n = MaxRows
	}
	for r := 0; r < n; r++ {
		row := make([]string, len(q.Select))
		for i, src := range layout {
			row[i] = grouped.Value(r, src).String()
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
