package els

// This file maps every table and worked numeric exhibit of the paper, plus
// the DESIGN.md ablations, to one benchmark. Each benchmark both measures
// the harness and verifies the reproduced values, so `go test -bench=.`
// regenerates the paper's numbers. See EXPERIMENTS.md for the index.
//
// The Section 8 benchmark runs at a configurable scale: ELS_BENCH_SCALE=1
// reproduces the paper's full table sizes (‖G‖ = 100000); the default scale
// of 10 keeps `go test -bench=.` fast while preserving every qualitative
// outcome.

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/experiment"
	"repro/internal/selest"
)

func benchScale() int {
	if v := os.Getenv("ELS_BENCH_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 10
}

// BenchmarkTable1_Section8 regenerates the paper's Section 8 table: four
// optimizer configurations plan and execute the S/M/B/G query; the
// benchmark reports the wall-clock of each configuration's chosen plan and
// the ELS speedup, which the paper gives as 9–12x.
func BenchmarkTable1_Section8(b *testing.B) {
	scale := benchScale()
	var last *experiment.Section8Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSection8(experiment.Section8Options{Scale: scale, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last == nil {
		return
	}
	for _, row := range last.Rows {
		if float64(row.TrueCount) != last.CorrectSize {
			b.Fatalf("%s/%s computed %d rows, want %g", row.Query, row.Algorithm, row.TrueCount, last.CorrectSize)
		}
	}
	els := last.Rows[3]
	var worst float64
	for _, row := range last.Rows[:3] {
		r := float64(row.Stats.Elapsed) / float64(els.Stats.Elapsed)
		if r > worst {
			worst = r
		}
		b.ReportMetric(float64(row.Stats.TuplesScanned), "tuples/"+row.Algorithm+orPTC(row.Query))
	}
	b.ReportMetric(float64(els.Stats.TuplesScanned), "tuples/ELS")
	b.ReportMetric(worst, "x-speedup-ELS-vs-worst")
	b.Logf("\n%s", experiment.FormatSection8(last))
}

func orPTC(q string) string {
	if q == "Orig. + PTC" {
		return "+PTC"
	}
	return ""
}

// BenchmarkTable1_EstimatesOnly regenerates just the "Estimated Result
// Sizes" column of the Section 8 table at the paper's full scale (no data
// generation), asserting the exact paper values 0.2/4e-8/4e-21 (SM+PTC),
// 0.2/4e-4/4e-7 (SSS) and 100/100/100 (ELS).
func BenchmarkTable1_EstimatesOnly(b *testing.B) {
	var last *experiment.Section8Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSection8(experiment.Section8Options{Scale: 1, SkipExecution: true})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	want := map[int][]float64{
		1: {0.2, 4e-8, 4e-21},
		2: {0.2, 4e-4, 4e-7},
		3: {100, 100, 100},
	}
	for row, sizes := range want {
		for i, w := range sizes {
			got := last.Rows[row].EstimatedSizes[i]
			if math.Abs(got-w) > 1e-9*math.Abs(w) {
				b.Fatalf("row %d step %d: got %g, want %g (paper)", row, i, got, w)
			}
		}
	}
}

// benchExample1b builds the Example 1b system once per iteration and
// estimates along the R2,R3,R1 order of Examples 2 and 3.
func benchExample1b(b *testing.B, algo Algorithm, want float64) {
	b.Helper()
	sys := New()
	sys.MustDeclareStats("R1", 100, map[string]float64{"x": 10})
	sys.MustDeclareStats("R2", 1000, map[string]float64{"y": 100})
	sys.MustDeclareStats("R3", 1000, map[string]float64{"z": 1000})
	sql := "SELECT COUNT(*) FROM R1, R2, R3 WHERE x = y AND y = z"
	var got float64
	for i := 0; i < b.N; i++ {
		est, err := sys.EstimateOrder(sql, algo, []string{"R2", "R3", "R1"})
		if err != nil {
			b.Fatal(err)
		}
		got = est.FinalSize
	}
	if math.Abs(got-want) > 1e-6 {
		b.Fatalf("%s estimate = %g, want %g (paper)", algo, got, want)
	}
	b.ReportMetric(got, "estimated-rows")
}

// BenchmarkExample1b checks Equations 2 and 3 on the paper's statistics:
// the three-way chain is exactly 1000 rows.
func BenchmarkExample1b(b *testing.B) { benchExample1b(b, AlgorithmELS, 1000) }

// BenchmarkExample2_RuleM reproduces Example 2: the multiplicative rule
// estimates 1 where the correct answer is 1000.
func BenchmarkExample2_RuleM(b *testing.B) { benchExample1b(b, AlgorithmSMPTC, 1) }

// BenchmarkExample3_RuleSS reproduces the first half of Example 3: the
// smallest-selectivity rule estimates 100.
func BenchmarkExample3_RuleSS(b *testing.B) { benchExample1b(b, AlgorithmSSS, 100) }

// BenchmarkExample3_RuleLS reproduces the second half of Example 3: Rule LS
// estimates the correct 1000.
func BenchmarkExample3_RuleLS(b *testing.B) { benchExample1b(b, AlgorithmELS, 1000) }

// BenchmarkRepresentativeRule reproduces Section 3.3's argument: the
// representative-selectivity proposal gives 10000 with the larger value and
// 100 with the smaller — never the correct 1000.
func BenchmarkRepresentativeRule(b *testing.B) {
	b.Run("rep=0.01", func(b *testing.B) { benchExample1b(b, AlgorithmRepLargest, 10000) })
	b.Run("rep=0.001", func(b *testing.B) { benchExample1b(b, AlgorithmRepSmallest, 100) })
}

// BenchmarkUrnModel_Section5 reproduces the Section 5 numeric contrast:
// urn(10000, 50000) = 9933 vs the linear rule's 5000, and measures the urn
// computation itself.
func BenchmarkUrnModel_Section5(b *testing.B) {
	var urn, lin float64
	for i := 0; i < b.N; i++ {
		urn = selest.UrnDistinctCeil(10000, 50000)
		lin = selest.LinearDistinct(10000, 100000, 50000)
	}
	if urn != 9933 || lin != 5000 {
		b.Fatalf("urn = %g (want 9933), linear = %g (want 5000)", urn, lin)
	}
	b.ReportMetric(urn, "urn-distinct")
	b.ReportMetric(lin, "linear-distinct")
}

// BenchmarkSingleTableJEquiv_Section6 reproduces Section 6's worked
// numbers: ‖R2‖′ = 20 and effective join cardinality 9, via the full
// worked-examples harness.
func BenchmarkSingleTableJEquiv_Section6(b *testing.B) {
	var examples []experiment.WorkedExample
	for i := 0; i < b.N; i++ {
		var err error
		examples, err = experiment.RunWorkedExamples()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, ex := range examples {
		if ex.ID == "Section 6" && !ex.Matches() {
			b.Fatalf("%s: got %g, want %g", ex.Description, ex.Got, ex.Want)
		}
	}
}

// BenchmarkAblation_ChainLength regenerates the A1 sweep: q-error of the
// three rules versus the Equation 3 oracle as the chain grows. LS must stay
// exact; the reported metric is Rule M's q-error at the longest chain.
func BenchmarkAblation_ChainLength(b *testing.B) {
	var rows []experiment.ChainLengthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunChainLengthSweep(6, 15, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	if last.QErrLS > 1+1e-6 {
		b.Fatalf("LS q-error %g at n=%d, want 1", last.QErrLS, last.N)
	}
	b.ReportMetric(last.QErrM, "qerr-M@n6")
	b.ReportMetric(last.QErrSS, "qerr-SS@n6")
	b.ReportMetric(last.QErrLS, "qerr-LS@n6")
	b.Logf("\n%s", experiment.FormatChainLengthSweep(rows))
}

// BenchmarkAblation_ZipfSkew regenerates the A2 sweep: ELS estimate vs
// executed truth as join-column skew grows (the paper's future-work
// relaxation of the uniformity assumption).
func BenchmarkAblation_ZipfSkew(b *testing.B) {
	var rows []experiment.ZipfRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunZipfSweep(1000, 2500, 200, []float64{0, 0.5, 1.0}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.QError, fmt.Sprintf("qerr@theta=%.1f", r.Theta))
	}
	b.Logf("\n%s", experiment.FormatZipfSweep(rows))
}

// BenchmarkAblation_UrnVsLinear regenerates the A3 sweep: measured
// surviving-distinct counts against the urn model and the linear rule.
func BenchmarkAblation_UrnVsLinear(b *testing.B) {
	var rows []experiment.UrnRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunUrnVsLinear(50000, 5000, []float64{0.1, 0.5, 0.9}, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	mid := rows[1]
	if mid.UrnQError > mid.LinearQError {
		b.Fatalf("urn q-error (%g) should not exceed linear (%g)", mid.UrnQError, mid.LinearQError)
	}
	b.ReportMetric(mid.UrnQError, "qerr-urn@keep0.5")
	b.ReportMetric(mid.LinearQError, "qerr-linear@keep0.5")
	b.Logf("\n%s", experiment.FormatUrnVsLinear(rows))
}

// BenchmarkAblation_RandomQueries regenerates the A4/A5 sweep: estimation
// q-error and realized plan work across random chain/star queries for all
// four algorithms.
func BenchmarkAblation_RandomQueries(b *testing.B) {
	var rows []experiment.RandomQueryRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunRandomQueries(15, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.GeoMeanQError, "qerr-"+r.Algorithm)
		b.ReportMetric(r.MeanWorkRatio, "work-"+r.Algorithm)
	}
	b.Logf("\n%s", experiment.FormatRandomQueries(rows))
}

// BenchmarkAblation_IndexedSection8 regenerates the A6 ablation: Section 8
// re-run with ordered indexes on every join column and index-nested-loops
// enabled. The between-algorithm work gap collapses, showing that the
// paper's order-of-magnitude penalty for bad estimates presumes an
// unforgiving access-path design.
func BenchmarkAblation_IndexedSection8(b *testing.B) {
	scale := benchScale()
	var last *experiment.Section8Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSection8(experiment.Section8Options{
			Scale: scale, Seed: 42, WithIndexes: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	var worst, best int64
	for _, row := range last.Rows {
		if float64(row.TrueCount) != last.CorrectSize {
			b.Fatalf("%s/%s computed %d rows, want %g", row.Query, row.Algorithm, row.TrueCount, last.CorrectSize)
		}
		if worst == 0 || row.Stats.TuplesScanned > worst {
			worst = row.Stats.TuplesScanned
		}
		if best == 0 || row.Stats.TuplesScanned < best {
			best = row.Stats.TuplesScanned
		}
	}
	b.ReportMetric(float64(worst)/float64(best), "work-gap-worst/best")
	b.Logf("\n%s", experiment.FormatSection8(last))
}

// BenchmarkAblation_SampledStats regenerates the A7 ablation: how much the
// ELS estimate degrades when statistics come from sampling ANALYZE with the
// Chao distinct estimator instead of a full scan.
func BenchmarkAblation_SampledStats(b *testing.B) {
	var rows []experiment.SampledStatsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunSampledStats(8000, []int{400, 2000, 8000}, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows[1:] {
		b.ReportMetric(r.EstimateQError, fmt.Sprintf("qerr@sample%d", r.SampleRows))
	}
	b.Logf("\n%s", experiment.FormatSampledStats(rows))
}

// BenchmarkAblation_Independence regenerates the A8 ablation: two equally
// selective local predicates over independent vs perfectly correlated
// columns. The independence assumption squares the selectivity; under
// correlation the estimate undershoots quadratically.
func BenchmarkAblation_Independence(b *testing.B) {
	var rows []experiment.IndependenceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunIndependenceSweep(20000, 100, 0.2, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		label := "independent"
		if r.Correlated {
			label = "correlated"
		}
		b.ReportMetric(r.QError, "qerr-"+label)
	}
	b.Logf("\n%s", experiment.FormatIndependenceSweep(rows))
}

// BenchmarkEstimatorThroughput measures the steady-state cost of one full
// incremental estimation (preliminary phase included), the operation a
// query optimizer performs per candidate plan prefix.
func BenchmarkEstimatorThroughput(b *testing.B) {
	sys := New()
	sys.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	sys.MustDeclareStats("M", 10000, map[string]float64{"m": 10000})
	sys.MustDeclareStats("B", 50000, map[string]float64{"b": 50000})
	sys.MustDeclareStats("G", 100000, map[string]float64{"g": 100000})
	sql := "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Estimate(sql, AlgorithmELS); err != nil {
			b.Fatal(err)
		}
	}
}
