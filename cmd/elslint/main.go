// Command elslint runs the repro invariant-checker suite
// (internal/analyzers) over the module. It has two modes:
//
// Standalone — load, type-check, and analyze packages directly:
//
//	go run ./cmd/elslint ./...
//	go run ./cmd/elslint -json ./... > lint.json
//
// Vettool — speak cmd/go's unitchecker protocol so the suite runs under
// the build system's dependency-aware driver:
//
//	go build -o elslint ./cmd/elslint
//	go vet -vettool=./elslint ./...
//
// Exit status: 0 when clean, 2 when diagnostics were reported, 1 on
// loading or internal errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	// cmd/go probes the tool for its identity and flags before using it as
	// a vettool; both probes must answer before normal flag parsing.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no tool-specific vet flags
		return
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(unitcheck(args[len(args)-1]))
	}
	os.Exit(standalone(args))
}

// printVersion answers go vet's -V=full probe. cmd/go requires the line
// "<name> version devel buildID=<id>" and caches vet results under the
// id, so the id must change when the tool changes: hash the executable.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("elslint version devel buildID=%s\n", id)
}

// diagJSON is the machine-readable diagnostic record emitted by -json.
type diagJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standalone loads the named packages (default ./...) and runs every
// analyzer over each.
func standalone(args []string) int {
	fs := flag.NewFlagSet("elslint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (file, line, col, analyzer, message)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: elslint [-json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 1
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 1
	}
	var diags []diagJSON
	for _, pkg := range pkgs {
		for _, a := range analyzers.All() {
			found, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "elslint:", err)
				return 1
			}
			for _, d := range found {
				pos := pkg.Fset.Position(d.Pos)
				diags = append(diags, diagJSON{
					File:     relPath(wd, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []diagJSON{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "elslint:", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func relPath(wd, name string) string {
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// vetConfig is the subset of cmd/go's vet.cfg the unitchecker needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a vet.cfg file, following
// the cmd/go vettool protocol: diagnostics go to stderr, the fact file
// named by VetxOutput must be written, and the exit status is 2 when
// anything was reported.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "elslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite exports no facts, but cmd/go expects the vetx file; write
	// it first so even a typecheck failure leaves the protocol satisfied.
	if cfg.VetxOutput != "" {
		//atomicwrite:allow empty vetx protocol marker for cmd/go, rebuilt every vet run
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "elslint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	goFiles := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles[i] = f
	}
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, goFiles, cfgImporter(&cfg).Importer(fset))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 1
	}
	exit := 0
	for _, a := range analyzers.All() {
		found, err := analysis.Run(a, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "elslint:", err)
			return 1
		}
		for _, d := range found {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), a.Name, d.Message)
			exit = 2
		}
	}
	return exit
}

// cfgImporter resolves imports through the export files cmd/go listed in
// the vet.cfg (ImportMap aliases source paths; PackageFile locates the
// compiled export data).
func cfgImporter(cfg *vetConfig) *analysis.ExportIndex {
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = f
		}
	}
	return analysis.NewExportIndex(exports)
}
