// Command elslint runs the repro invariant-checker suite
// (internal/analyzers) over the module with the facts-capable driver:
// packages are type-checked once, analyzed in dependency order, and the
// facts each analyzer exports (lock-acquisition summaries, sentinel sets,
// retry classifications) flow to its dependents. It has two modes:
//
// Standalone — load, type-check, and analyze packages directly:
//
//	go run ./cmd/elslint ./...
//	go run ./cmd/elslint -json ./... > lint.json
//	go run ./cmd/elslint -lockdot lockorder.dot ./...
//
// Vettool — speak cmd/go's unitchecker protocol so the suite runs under
// the build system's dependency-aware driver, with facts shipped between
// compilation units as .vetx files:
//
//	go build -o elslint ./cmd/elslint
//	go vet -vettool=./elslint ./...
//
// Standalone exit status: 0 clean, 1 when findings were reported, 2 when
// an analyzer malfunctioned (its verdict is unknown — distinct from "the
// tree is dirty"). The -json artifact distinguishes the two as separate
// "findings" and "malfunctions" arrays, deterministically sorted.
// Vettool mode keeps the protocol's convention: diagnostics exit 2.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analyzers"
	"repro/internal/analyzers/lockorder"
)

func main() {
	args := os.Args[1:]
	// cmd/go probes the tool for its identity and flags before using it as
	// a vettool; both probes must answer before normal flag parsing.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no tool-specific vet flags
		return
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(unitcheck(args[len(args)-1]))
	}
	os.Exit(standalone(args))
}

// printVersion answers go vet's -V=full probe. cmd/go requires the line
// "<name> version devel buildID=<id>" and caches vet results under the
// id, so the id must change when the tool changes: hash the executable.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("elslint version devel buildID=%s\n", id)
}

// findingJSON is one diagnostic in the -json artifact.
type findingJSON struct {
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// malfunctionJSON is one analyzer failure in the -json artifact — the
// analyzer's verdict on its package is unknown, which is a different
// condition from a finding and carries a different exit status.
type malfunctionJSON struct {
	Package  string `json:"package"`
	Analyzer string `json:"analyzer"`
	Error    string `json:"error"`
}

// reportJSON is the complete machine-readable run artifact.
type reportJSON struct {
	Findings     []findingJSON     `json:"findings"`
	Malfunctions []malfunctionJSON `json:"malfunctions"`
}

// standalone loads the named packages (default ./...), type-checks each
// exactly once, and runs the full analyzer schedule over all of them in
// dependency order with a shared fact database.
func standalone(args []string) int {
	fs := flag.NewFlagSet("elslint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit a JSON object with findings and malfunctions arrays")
	lockdot := fs.String("lockdot", "", "write the global lock-acquisition graph as Graphviz DOT to `file`")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: elslint [-json] [-lockdot file] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 2
	}
	roots := analyzers.All()
	schedule, err := analysis.Schedule(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 2
	}
	facts := analysis.NewFactSet(schedule)
	findings, mals, err := analysis.RunPackages(pkgs, roots, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 2
	}

	if *lockdot != "" {
		//atomicwrite:allow CI artifact regenerated every run; a torn file just re-runs the job
		f, err := os.Create(*lockdot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "elslint:", err)
			return 2
		}
		werr := lockorder.WriteDOT(f, facts.AllPackageFacts())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "elslint:", werr)
			return 2
		}
	}

	report := reportJSON{Findings: []findingJSON{}, Malfunctions: []malfunctionJSON{}}
	for _, f := range findings {
		report.Findings = append(report.Findings, findingJSON{
			Package:  f.Package,
			File:     relPath(wd, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	for _, m := range mals {
		report.Malfunctions = append(report.Malfunctions, malfunctionJSON{
			Package: m.Package, Analyzer: m.Analyzer, Error: m.Err,
		})
	}
	sort.Slice(report.Findings, func(i, j int) bool {
		a, b := report.Findings[i], report.Findings[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(report.Malfunctions, func(i, j int) bool {
		a, b := report.Malfunctions[i], report.Malfunctions[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "elslint:", err)
			return 2
		}
	} else {
		for _, d := range report.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	for _, m := range report.Malfunctions {
		fmt.Fprintf(os.Stderr, "elslint: analyzer %s malfunctioned on %s: %s\n", m.Analyzer, m.Package, m.Error)
	}
	switch {
	case len(report.Malfunctions) > 0:
		return 2 // verdict unknown — worse than dirty
	case len(report.Findings) > 0:
		return 1
	}
	return 0
}

func relPath(wd, name string) string {
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// vetConfig is the subset of cmd/go's vet.cfg the unitchecker needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a vet.cfg file, following
// the cmd/go vettool protocol: facts arrive via the dependencies' .vetx
// files named in PackageVetx, the facts this unit exports are written to
// VetxOutput, diagnostics go to stderr, and the exit status is 2 when
// anything was reported. Module-external VetxOnly units (the standard
// library) export no facts the suite consumes, so they are answered with
// an empty vetx without the cost of a type-check.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "elslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	emptyVetx := func() int {
		if cfg.VetxOutput != "" {
			//atomicwrite:allow vetx protocol marker for cmd/go, rebuilt every vet run
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "elslint:", err)
				return 1
			}
		}
		return 0
	}
	if cfg.VetxOnly && !strings.HasPrefix(cfg.ImportPath, "repro") {
		return emptyVetx()
	}
	roots := analyzers.All()
	schedule, err := analysis.Schedule(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 1
	}
	facts := analysis.NewFactSet(schedule)
	for _, vetx := range sortedValues(cfg.PackageVetx) {
		data, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "elslint:", err)
			return 1
		}
		if err := facts.Decode(data); err != nil {
			fmt.Fprintf(os.Stderr, "elslint: decoding facts from %s: %v\n", vetx, err)
			return 1
		}
	}
	fset := token.NewFileSet()
	goFiles := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles[i] = f
	}
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, goFiles, cfgImporter(&cfg).Importer(fset))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return emptyVetx()
		}
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 1
	}
	findings, mals, err := analysis.RunPackages([]*analysis.Package{pkg}, roots, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elslint:", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		encoded, err := facts.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "elslint:", err)
			return 1
		}
		//atomicwrite:allow vetx fact file for cmd/go, rebuilt every vet run
		if err := os.WriteFile(cfg.VetxOutput, encoded, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "elslint:", err)
			return 1
		}
	}
	for _, m := range mals {
		fmt.Fprintf(os.Stderr, "elslint: analyzer %s malfunctioned on %s: %s\n", m.Analyzer, m.Package, m.Err)
		return 1
	}
	if cfg.VetxOnly {
		return 0 // facts produced; diagnostics are reported when the unit is vetted directly
	}
	exit := 0
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		exit = 2
	}
	return exit
}

// sortedValues returns m's values in key order, for deterministic fact
// loading.
func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// cfgImporter resolves imports through the export files cmd/go listed in
// the vet.cfg (ImportMap aliases source paths; PackageFile locates the
// compiled export data).
func cfgImporter(cfg *vetConfig) *analysis.ExportIndex {
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = f
		}
	}
	return analysis.NewExportIndex(exports)
}
