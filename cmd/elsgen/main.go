// Command elsgen generates synthetic integer datasets as CSV on stdout,
// using the same seeded generators the experiments use. It exists so the
// workloads are inspectable and reusable outside the Go test harness.
//
// Usage:
//
//	elsgen -rows 10000 -cols "k:uniform:100,v:zipf:1000:0.9" [-seed 42] [-header]
//
// Each column spec is name:distribution:domain[:theta] with distribution
// one of uniform, zipf, permutation, sequential (permutation ignores the
// domain and uses the row count).
//
// -data-dir records the generated table's exact statistics (cardinality
// and per-column distinct counts, computed from the data) in a durable
// catalog directory via the WAL, checkpointed on exit, so downstream tools
// (elsrepl -data-dir, elsexplain -data-dir) can estimate over the dataset
// without re-scanning the CSV.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	els "repro"
	"repro/internal/admission"
	"repro/internal/datagen"
	"repro/internal/governor"
	"repro/internal/storage"
	"repro/internal/workpool"
)

func main() {
	rows := flag.Int("rows", 1000, "number of rows")
	cols := flag.String("cols", "k:uniform:100", "column specs name:dist:domain[:theta], comma separated")
	seed := flag.Int64("seed", 42, "generator seed")
	header := flag.Bool("header", false, "emit a CSV header row")
	workers := flag.Int("workers", 0, "CSV formatting parallelism (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for generation (0 = none)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission control: max concurrently admitted generations (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission control: max time the run waits for a slot (0 = forever)")
	maxMemory := flag.Int64("max-memory", 0, "per-query working-memory byte budget for the durable session that persists statistics (-data-dir); 0 = none")
	name := flag.String("name", "gen", "table name for the durable catalog entry (-data-dir)")
	dataDir := flag.String("data-dir", "", "durable catalog directory: record the generated table's exact statistics, checkpointed on exit")
	flag.Parse()

	err := admitted(*maxConcurrent, *queueTimeout, func() error {
		return withTimeout(*timeout, func() error {
			return run(*rows, *cols, *seed, *header, *workers, *maxMemory, *name, *dataDir, os.Stdout)
		})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsgen:", err)
		os.Exit(1)
	}
}

// admitted routes f through the library's admission controller when
// -max-concurrent is set: the run acquires an execution slot first,
// waiting at most queueTimeout, and sheds with a typed overload error if
// the wait expires. With maxConcurrent ≤ 0 admission is disabled and f
// runs directly.
func admitted(maxConcurrent int, queueTimeout time.Duration, f func() error) error {
	if maxConcurrent <= 0 {
		return f()
	}
	adm := admission.New(admission.Config{MaxConcurrent: maxConcurrent, QueueTimeout: queueTimeout})
	slot, err := adm.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer slot.Release()
	return f()
}

// withTimeout bounds f's wall-clock time, reporting overrun as the same
// typed budget error the library's governor produces. On timeout the
// worker goroutine is abandoned — acceptable here because main exits
// immediately afterwards.
func withTimeout(d time.Duration, f func() error) error {
	if d <= 0 {
		return f()
	}
	start := time.Now()
	done := workpool.Async(f)
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return &governor.BudgetError{
			Resource: "wall-clock", Limit: int64(d), Used: int64(time.Since(start)),
		}
	}
}

func run(rows int, cols string, seed int64, header bool, workers int, maxMemory int64, name, dataDir string, w io.Writer) error {
	spec := datagen.TableSpec{Name: name, Rows: rows}
	var names []string
	for _, c := range strings.Split(cols, ",") {
		cs, err := parseColumnSpec(strings.TrimSpace(c))
		if err != nil {
			return err
		}
		spec.Columns = append(spec.Columns, cs)
		names = append(names, cs.Name)
	}
	tbl, err := datagen.Generate(spec, seed)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(w)
	defer out.Flush()
	if header {
		fmt.Fprintln(out, strings.Join(names, ","))
	}
	// Format row chunks in parallel and write the buffers in chunk order,
	// so the output is byte-identical to a serial loop. Generation itself
	// stays serial: the rng streams are seeded sequences.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := chunkRows(tbl.NumRows(), workers)
	bufs := make([]bytes.Buffer, len(chunks))
	err = workpool.Run(workers, len(chunks), func(i int) error {
		buf := &bufs[i]
		for r := chunks[i][0]; r < chunks[i][1]; r++ {
			for c := 0; c < len(names); c++ {
				if c > 0 {
					buf.WriteByte(',')
				}
				fmt.Fprintf(buf, "%d", tbl.Value(r, c).Int())
			}
			buf.WriteByte('\n')
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range bufs {
		if _, err := out.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	if dataDir != "" {
		if err := persistStats(dataDir, name, names, maxMemory, tbl); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "elsgen: recorded statistics for %q in %s\n", name, dataDir)
	}
	return nil
}

// persistStats records the generated table's exact statistics — row count
// and per-column distinct counts computed from the data — in the durable
// catalog at dir. The declaration goes through the WAL (acknowledged only
// after fsync) and is compacted into a checkpoint before the tool exits.
func persistStats(dir, name string, colNames []string, maxMemory int64, tbl *storage.Table) error {
	distinct := make(map[string]float64, len(colNames))
	seen := make(map[int64]struct{})
	for c, cn := range colNames {
		clear(seen)
		for r := 0; r < tbl.NumRows(); r++ {
			seen[tbl.Value(r, c).Int()] = struct{}{}
		}
		distinct[cn] = float64(len(seen))
	}
	sys, err := els.Open(dir)
	if err != nil {
		return err
	}
	if maxMemory > 0 {
		sys.SetLimits(els.Limits{MaxMemory: maxMemory})
	}
	if err := sys.DeclareStats(name, float64(tbl.NumRows()), distinct); err != nil {
		return err
	}
	if err := sys.Checkpoint(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return sys.Close(ctx)
}

// chunkRows splits [0, n) into up to workers*4 contiguous [start, end)
// ranges of at least 1024 rows each.
func chunkRows(n, workers int) [][2]int {
	const minChunk = 1024
	chunks := workers * 4
	if chunks > (n+minChunk-1)/minChunk {
		chunks = (n + minChunk - 1) / minChunk
	}
	if chunks < 1 {
		chunks = 1
	}
	var out [][2]int
	for i := 0; i < chunks; i++ {
		start, end := i*n/chunks, (i+1)*n/chunks
		if start < end {
			out = append(out, [2]int{start, end})
		}
	}
	return out
}

func parseColumnSpec(s string) (datagen.ColumnSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return datagen.ColumnSpec{}, fmt.Errorf("bad column spec %q (want name:dist:domain[:theta])", s)
	}
	cs := datagen.ColumnSpec{Name: parts[0]}
	switch strings.ToLower(parts[1]) {
	case "uniform":
		cs.Dist = datagen.DistUniform
	case "zipf":
		cs.Dist = datagen.DistZipf
	case "permutation":
		cs.Dist = datagen.DistPermutation
	case "sequential":
		cs.Dist = datagen.DistSequential
	default:
		return datagen.ColumnSpec{}, fmt.Errorf("unknown distribution %q in %q", parts[1], s)
	}
	if len(parts) >= 3 && cs.Dist != datagen.DistPermutation {
		d, err := strconv.Atoi(parts[2])
		if err != nil {
			return datagen.ColumnSpec{}, fmt.Errorf("bad domain in %q: %v", s, err)
		}
		cs.Domain = d
	}
	if len(parts) >= 4 {
		t, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return datagen.ColumnSpec{}, fmt.Errorf("bad theta in %q: %v", s, err)
		}
		cs.Theta = t
	}
	return cs, nil
}
