package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	els "repro"
	"repro/internal/datagen"
)

func TestParseColumnSpec(t *testing.T) {
	cs, err := parseColumnSpec("k:uniform:100")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Name != "k" || cs.Dist != datagen.DistUniform || cs.Domain != 100 {
		t.Errorf("spec = %+v", cs)
	}
	cs, err = parseColumnSpec("z:zipf:1000:0.9")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Dist != datagen.DistZipf || cs.Theta != 0.9 {
		t.Errorf("zipf spec = %+v", cs)
	}
	cs, err = parseColumnSpec("p:permutation")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Dist != datagen.DistPermutation || cs.Domain != 0 {
		t.Errorf("perm spec = %+v", cs)
	}
	// Permutation ignores the domain field.
	cs, err = parseColumnSpec("p:permutation:999")
	if err != nil || cs.Domain != 0 {
		t.Errorf("perm with domain = %+v err %v", cs, err)
	}
	if _, err := parseColumnSpec("s:sequential:5"); err != nil {
		t.Errorf("sequential: %v", err)
	}
}

func TestParseColumnSpecErrors(t *testing.T) {
	for _, spec := range []string{"", "nameonly", "k:bogus:5", "k:uniform:xx", "k:zipf:10:bad"} {
		if _, err := parseColumnSpec(spec); err == nil {
			t.Errorf("%q should fail", spec)
		}
	}
}

func TestRunGeneratesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(5, "k:uniform:10,z:zipf:5:1.0", 42, true, 1, 0, "gen", "", &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want header + 5 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "k,z" {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != 1 {
			t.Errorf("bad row %q", line)
		}
	}
	// Deterministic for a seed.
	var buf2 bytes.Buffer
	if err := run(5, "k:uniform:10,z:zipf:5:1.0", 42, true, 1, 0, "gen", "", &buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("same seed should reproduce identical CSV")
	}
}

// Parallel formatting must be byte-identical to serial at every worker
// count, including chunk boundaries (rows > minChunk forces real chunking).
func TestRunParallelFormattingIdentical(t *testing.T) {
	const spec = "k:uniform:50,z:zipf:20:0.5"
	var serial bytes.Buffer
	if err := run(5000, spec, 7, true, 1, 0, "gen", "", &serial); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 7} {
		var par bytes.Buffer
		if err := run(5000, spec, 7, true, workers, 0, "gen", "", &par); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.String() != serial.String() {
			t.Errorf("workers=%d output differs from serial", workers)
		}
	}
}

func TestChunkRows(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {1023, 4}, {5000, 3}, {100000, 8},
	} {
		chunks := chunkRows(tc.n, tc.workers)
		next := 0
		for _, c := range chunks {
			if c[0] != next || c[1] <= c[0] {
				t.Fatalf("n=%d workers=%d: bad chunk %v at %d", tc.n, tc.workers, c, next)
			}
			next = c[1]
		}
		if tc.n > 0 && next != tc.n {
			t.Errorf("n=%d workers=%d: chunks cover %d rows", tc.n, tc.workers, next)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(5, "bad", 1, false, 1, 0, "gen", "", &buf); err == nil {
		t.Error("bad column spec should error")
	}
	if err := run(-1, "k:uniform:10", 1, false, 1, 0, "gen", "", &buf); err == nil {
		t.Error("negative rows should error")
	}
}

// -data-dir records the generated table's exact statistics in a durable
// catalog: cardinality is the row count and per-column distincts are
// computed from the data, so a sequential column has distinct == rows.
func TestDataDirRecordsExactStats(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(50, "k:uniform:10,s:sequential:50", 42, false, 1, 0, "mytab", dir, &buf); err != nil {
		t.Fatal(err)
	}
	sys, err := els.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sys.Close(ctx)
	}()
	card, err := sys.TableCard("mytab")
	if err != nil || card != 50 {
		t.Fatalf("card = %g, %v; want 50", card, err)
	}
	d, err := sys.ColumnDistinct("mytab", "s")
	if err != nil || d != 50 {
		t.Errorf("sequential distinct = %g, %v; want 50", d, err)
	}
	d, err = sys.ColumnDistinct("mytab", "k")
	if err != nil || d < 1 || d > 10 {
		t.Errorf("uniform distinct = %g, %v; want 1..10", d, err)
	}
}
