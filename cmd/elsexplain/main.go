// Command elsexplain shows how each estimation algorithm sees a query:
// the transitive closure it derives, the plan it picks, and the
// intermediate-size estimates along that plan.
//
// Tables are declared with repeated -table flags of the form
// "name:cardinality:col=distinct[,col=distinct...]", e.g.
//
//	elsexplain \
//	  -table "S:1000:s=1000" -table "M:10000:m=10000" \
//	  -table "B:50000:b=50000" -table "G:100000:g=100000" \
//	  -sql "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100"
//
// With no -table flags, the Section 8 catalog above is preloaded.
//
// -data-dir explains against a durable catalog directory (written by
// elsrepl, elsgen, or elsbench with the same flag): recovered statistics
// replace the built-in defaults, any -table declarations are persisted
// through the WAL, and the store is checkpointed on exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	els "repro"
)

type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, "; ") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var tables tableFlags
	flag.Var(&tables, "table", "table spec name:card:col=distinct[,col=distinct...] (repeatable)")
	sql := flag.String("sql", "", "query to explain (required)")
	algo := flag.String("algo", "", "single algorithm to show (default: all)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per explain (0 = none)")
	maxPlans := flag.Int64("max-plans", 0, "enumerated-plan budget per explain (0 = none)")
	maxMemory := flag.Int64("max-memory", 0, "working-memory byte budget per query (0 = none); hash joins over it spill to disk")
	workers := flag.Int("workers", 0, "plan-search parallelism (0 = GOMAXPROCS, 1 = serial)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission control: max concurrently executing explains (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission control: max time an explain waits for a slot (0 = forever)")
	dataDir := flag.String("data-dir", "", "durable catalog directory: recover statistics from it, persist -table declarations, checkpoint on exit")
	flag.Parse()

	if err := run(tables, *sql, *algo, *dataDir, els.Limits{
		Timeout: *timeout, MaxPlans: *maxPlans, MaxMemory: *maxMemory,
		Workers: *workers, MaxConcurrent: *maxConcurrent, QueueTimeout: *queueTimeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "elsexplain:", err)
		os.Exit(1)
	}
}

func run(tables []string, sql, algoName, dataDir string, limits els.Limits) error {
	if sql == "" {
		return fmt.Errorf("-sql is required")
	}
	sys := els.New()
	if dataDir != "" {
		var err error
		if sys, err = els.Open(dataDir); err != nil {
			return err
		}
		defer func() {
			if err := sys.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "elsexplain: checkpoint on exit:", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := sys.Close(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "elsexplain: close:", err)
			}
		}()
	}
	sys.SetLimits(limits)
	// The built-in Section 8 defaults only apply when there is nothing
	// else: explicit -table flags win, and so does a recovered durable
	// catalog that already holds tables.
	if len(tables) == 0 && len(sys.Tables()) == 0 {
		tables = []string{
			"S:1000:s=1000", "M:10000:m=10000", "B:50000:b=50000", "G:100000:g=100000",
		}
	}
	for _, spec := range tables {
		name, card, cols, err := parseTableSpec(spec)
		if err != nil {
			return err
		}
		if err := sys.DeclareStats(name, card, cols); err != nil {
			return err
		}
	}
	algos := els.Algorithms()
	if algoName != "" {
		var found bool
		for _, a := range algos {
			if strings.EqualFold(a.String(), algoName) {
				algos = []els.Algorithm{a}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown algorithm %q (use one of %v)", algoName, els.Algorithms())
		}
	}
	for _, a := range algos {
		out, err := sys.Explain(sql, a)
		if err != nil {
			return fmt.Errorf("%s: %w", a, err)
		}
		fmt.Printf("===== %s =====\n%s\n", a, out)
	}
	return nil
}

// parseTableSpec parses "name:card:col=d,col=d".
func parseTableSpec(spec string) (string, float64, map[string]float64, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 {
		return "", 0, nil, fmt.Errorf("bad table spec %q (want name:card[:col=d,...])", spec)
	}
	card, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return "", 0, nil, fmt.Errorf("bad cardinality in %q: %v", spec, err)
	}
	cols := map[string]float64{}
	if len(parts) == 3 && strings.TrimSpace(parts[2]) != "" {
		for _, kv := range strings.Split(parts[2], ",") {
			eq := strings.SplitN(kv, "=", 2)
			if len(eq) != 2 {
				return "", 0, nil, fmt.Errorf("bad column spec %q in %q", kv, spec)
			}
			d, err := strconv.ParseFloat(strings.TrimSpace(eq[1]), 64)
			if err != nil {
				return "", 0, nil, fmt.Errorf("bad distinct count %q in %q: %v", eq[1], spec, err)
			}
			cols[strings.TrimSpace(eq[0])] = d
		}
	}
	return strings.TrimSpace(parts[0]), card, cols, nil
}
