package main

import (
	"errors"
	"testing"

	els "repro"
)

func TestParseTableSpec(t *testing.T) {
	name, card, cols, err := parseTableSpec("S:1000:s=1000,t=50")
	if err != nil {
		t.Fatal(err)
	}
	if name != "S" || card != 1000 {
		t.Errorf("name=%q card=%g", name, card)
	}
	if cols["s"] != 1000 || cols["t"] != 50 {
		t.Errorf("cols = %v", cols)
	}
	// No columns is allowed.
	name, card, cols, err = parseTableSpec("T:10")
	if err != nil || name != "T" || card != 10 || len(cols) != 0 {
		t.Errorf("minimal spec: %q %g %v %v", name, card, cols, err)
	}
	// Whitespace tolerated.
	name, _, cols, err = parseTableSpec(" U :5: a = 3")
	if err != nil || name != "U" || cols["a"] != 3 {
		t.Errorf("whitespace spec: %q %v %v", name, cols, err)
	}
}

func TestParseTableSpecErrors(t *testing.T) {
	for _, spec := range []string{"", "noparts", "T:abc", "T:10:bad", "T:10:a=xx"} {
		if _, _, _, err := parseTableSpec(spec); err == nil {
			t.Errorf("%q should fail", spec)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil, "", "", "", els.Limits{}); err == nil {
		t.Error("missing -sql should error")
	}
	if err := run([]string{"bad"}, "SELECT COUNT(*) FROM S", "", "", els.Limits{}); err == nil {
		t.Error("bad table spec should error")
	}
	if err := run(nil, "SELECT COUNT(*) FROM S", "nope", "", els.Limits{}); err == nil {
		t.Error("unknown algorithm should error")
	}
	if err := run(nil, "not sql", "ELS", "", els.Limits{}); err == nil {
		t.Error("bad SQL should error")
	}
	// The default Section 8 catalog works end to end.
	if err := run(nil, "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100", "ELS", "", els.Limits{}); err != nil {
		t.Errorf("default run failed: %v", err)
	}
	// Duplicate declaration via AddTable replacement is fine.
	if err := run([]string{"A:10:x=5", "B:20:y=10"}, "SELECT COUNT(*) FROM A, B WHERE A.x = B.y", "", "", els.Limits{}); err != nil {
		t.Errorf("custom catalog run failed: %v", err)
	}
}

// -max-plans governs plan enumeration and surfaces the typed budget error.
func TestRunPlanBudget(t *testing.T) {
	err := run(nil, "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g", "ELS", "",
		els.Limits{MaxPlans: 1})
	if !errors.Is(err, els.ErrBudgetExceeded) {
		t.Errorf("want ErrBudgetExceeded, got %v", err)
	}
}

// -data-dir persists -table declarations and prefers a recovered catalog
// over the built-in Section 8 defaults on later runs.
func TestDataDirCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"A:10:x=5", "B:20:y=10"},
		"SELECT COUNT(*) FROM A, B WHERE A.x = B.y", "ELS", dir, els.Limits{}); err != nil {
		t.Fatalf("first durable run: %v", err)
	}
	// No -table flags: the recovered A and B must be used (the Section 8
	// defaults would make this query fail with unknown tables).
	if err := run(nil,
		"SELECT COUNT(*) FROM A, B WHERE A.x = B.y", "ELS", dir, els.Limits{}); err != nil {
		t.Errorf("recovered-catalog run: %v", err)
	}
	// Without the data dir the same query has no tables to resolve.
	if err := run(nil,
		"SELECT COUNT(*) FROM A, B WHERE A.x = B.y", "ELS", "", els.Limits{}); err == nil {
		t.Error("run without data dir should not know tables A and B")
	}
}
