package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSection8Experiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "section8", 100, 42, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Section 8 experiment", "ELS", "SSS", "plan:"} {
		if !strings.Contains(out, want) {
			t.Errorf("section8 output missing %q", want)
		}
	}
}

func TestRunEstimatesOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "section8", 1, 42, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4e-21") {
		t.Errorf("estimates-only output missing the paper value 4e-21:\n%s", out)
	}
	// Indexed experiment is skipped without execution.
	buf.Reset()
	if err := run(&buf, "indexed", 1, 42, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Errorf("indexed + estimates-only should announce the skip:\n%s", buf.String())
	}
}

func TestRunExamples(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "examples", 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "MISMATCH") {
		t.Errorf("worked examples mismatched:\n%s", buf.String())
	}
}

func TestRunSmallAblations(t *testing.T) {
	for _, which := range []string{"urn", "independence", "sampled"} {
		var buf bytes.Buffer
		if err := run(&buf, which, 1, 3, false); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", which)
		}
	}
}

func TestRunLargeAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second ablations in -short mode")
	}
	for _, which := range []string{"chain", "zipf", "random", "indexed"} {
		var buf bytes.Buffer
		if err := run(&buf, which, 10, 3, false); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", which)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 1, 1, false); err == nil {
		t.Error("unknown experiment should error")
	}
}
