package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	els "repro"
	"repro/internal/experiment"
)

// runFor is the test entry point: run with a throwaway report.
func runFor(w *bytes.Buffer, which string, scale int, seed int64, estimatesOnly bool) error {
	return run(w, which, scale, seed, estimatesOnly, 0, &experiment.BenchReport{})
}

func TestRunSection8Experiment(t *testing.T) {
	var buf bytes.Buffer
	if err := runFor(&buf, "section8", 100, 42, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Section 8 experiment", "ELS", "SSS", "plan:"} {
		if !strings.Contains(out, want) {
			t.Errorf("section8 output missing %q", want)
		}
	}
}

func TestRunEstimatesOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := runFor(&buf, "section8", 1, 42, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4e-21") {
		t.Errorf("estimates-only output missing the paper value 4e-21:\n%s", out)
	}
	// Indexed experiment is skipped without execution.
	buf.Reset()
	if err := runFor(&buf, "indexed", 1, 42, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Errorf("indexed + estimates-only should announce the skip:\n%s", buf.String())
	}
}

func TestRunExamples(t *testing.T) {
	var buf bytes.Buffer
	if err := runFor(&buf, "examples", 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "MISMATCH") {
		t.Errorf("worked examples mismatched:\n%s", buf.String())
	}
}

func TestRunSmallAblations(t *testing.T) {
	for _, which := range []string{"urn", "independence", "sampled"} {
		var buf bytes.Buffer
		if err := runFor(&buf, which, 1, 3, false); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", which)
		}
	}
}

func TestRunLargeAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second ablations in -short mode")
	}
	for _, which := range []string{"chain", "zipf", "random", "indexed"} {
		var buf bytes.Buffer
		if err := runFor(&buf, which, 10, 3, false); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", which)
		}
	}
}

// The repeated-query workload must clear the acceptance bar: a Zipf-skewed
// re-issue schedule over a small statement pool is served ≥ 90% from the
// plan cache, and the rate lands in the bench report as cache_hit_rate.
func TestRunRepeatedWorkload(t *testing.T) {
	var buf bytes.Buffer
	report := &experiment.BenchReport{}
	if err := run(&buf, "repeated", 1, 42, false, 0, report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hit rate") {
		t.Errorf("repeated output missing the hit rate line:\n%s", buf.String())
	}
	if report.CacheHitRate < 0.9 {
		t.Errorf("cache_hit_rate = %.3f, want >= 0.9:\n%s", report.CacheHitRate, buf.String())
	}
}

// The section8 step measures the columnar engine against the row engine and
// records the speedup ratio.
func TestRunSection8ColumnarSpeedup(t *testing.T) {
	var buf bytes.Buffer
	report := &experiment.BenchReport{}
	if err := run(&buf, "section8", 100, 42, false, 0, report); err != nil {
		t.Fatal(err)
	}
	if report.ColumnarSpeedup <= 0 {
		t.Errorf("columnar_speedup = %g, want > 0", report.ColumnarSpeedup)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Errorf("section8 output missing the speedup line:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := runFor(&buf, "nope", 1, 1, false); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := runFor(&buf, "", 1, 1, false); err == nil {
		t.Error("empty experiment list should error")
	}
	if err := runFor(&buf, "examples,nope", 1, 1, false); err == nil {
		t.Error("unknown name in a comma-separated list should error")
	}
}

// A comma-separated -experiment list runs each named step once and records
// one bench result per step.
func TestRunExperimentList(t *testing.T) {
	var buf bytes.Buffer
	report := &experiment.BenchReport{}
	if err := run(&buf, "examples,repeated", 1, 42, false, 0, report); err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("results = %d, want 2: %+v", len(report.Results), report.Results)
	}
	if report.Results[0].Experiment != "examples" || report.Results[1].Experiment != "repeated" {
		t.Errorf("steps ran as %+v, want examples then repeated", report.Results)
	}
}

// The bench report must record one result per executed experiment, with the
// worker count resolved and the Section 8 work counters totalled, and the
// JSON writer must round-trip it to disk.
func TestRunBenchReport(t *testing.T) {
	var buf bytes.Buffer
	report := &experiment.BenchReport{Scale: 100, Seed: 42, GoMaxProcs: 1}
	if err := run(&buf, "section8", 100, 42, false, 3, report); err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(report.Results))
	}
	res := report.Results[0]
	if res.Experiment != "section8" || res.Workers != 3 {
		t.Errorf("result = %+v, want section8 with 3 workers", res)
	}
	if res.TuplesScanned <= 0 {
		t.Errorf("tuples scanned = %d, want > 0", res.TuplesScanned)
	}
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := experiment.WriteBenchJSON(path, report); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "section8"`, `"workers": 3`, `"tuples_scanned"`, `"gomaxprocs": 1`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("bench JSON missing %s:\n%s", want, data)
		}
	}
}

// measureRecovery must leave a recoverable catalog behind and record a
// positive recovery_ms in both the report and the emitted JSON.
func TestMeasureRecovery(t *testing.T) {
	dir := t.TempDir()
	report := &experiment.BenchReport{Scale: 10, Seed: 42}
	if err := measureRecovery(dir, 10, report); err != nil {
		t.Fatal(err)
	}
	if report.RecoveryMillis <= 0 {
		t.Errorf("recovery_ms = %g, want > 0", report.RecoveryMillis)
	}
	// The catalog it measured is a real durable directory: reopen it and
	// check the scaled Section 8 tables are present.
	sys, err := els.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sys.Close(ctx)
	}()
	card, err := sys.TableCard("G")
	if err != nil || card != 10000 {
		t.Errorf("G card = %g, %v; want 100000/10", card, err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := experiment.WriteBenchJSON(path, report); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"recovery_ms"`) {
		t.Errorf("bench JSON missing recovery_ms:\n%s", data)
	}
}
