// Command elsbench runs the paper's experiments end-to-end and prints the
// reproduced tables.
//
// Usage:
//
//	elsbench [-experiment all|section8|examples|chain|zipf|urn|random|repeated]
//	         [-scale N] [-seed N] [-estimates-only] [-workers N]
//	         [-json BENCH_results.json]
//
// The default runs everything. -scale divides the Section 8 table sizes
// (scale 1 is the paper's full size; 10 is a fast smoke test). -workers sets
// the intra-query parallelism of the executed experiments (0 = GOMAXPROCS;
// results and work counters are worker-invariant). -json additionally writes
// a machine-readable report with per-experiment wall time, tuples scanned and
// worker count, plus columnar_speedup (columnar vs row-at-a-time execution
// time on section8) and cache_hit_rate (the plan cache's hit rate on the
// "repeated" Zipf-skewed statement workload).
//
// -max-concurrent and -queue-timeout route the run through the library's
// admission controller (the layer serving systems use to shed load), so a
// bench run competing with other work on the box fails fast with a typed
// overload error instead of queueing forever.
//
// -data-dir additionally benchmarks the durable catalog layer: the Section
// 8 statistics catalog (at the run's -scale) is declared through the WAL,
// checkpointed halfway, and then recovered with a fresh els.Open whose
// wall-clock time, replayed record count, and WAL byte volume land in the
// -json report as recovery_ms, recovery_replayed_records, and
// recovery_wal_bytes.
//
// -replicas N (with -data-dir) additionally benchmarks the replication
// layer: N cold read replicas attach to the recovered catalog, and the
// report records how long the fleet takes to catch up to the primary's
// version (replica_catchup_ms) and its aggregate estimate throughput once
// caught up (replica_reads_per_sec).
//
// -server additionally benchmarks the networked serving layer: an
// in-process wire server with one deliberately small tenant is hammered by
// an oversubscribed client swarm, and the report records the
// client-observed p99 round-trip latency (server_p99_ms) and the fraction
// of requests the admission bulkhead shed with the typed overload error
// (shed_rate).
//
// -max-memory additionally benchmarks the memory-governance layer: the
// seeded differential workload is executed under that per-query byte
// budget so oversized hash-join build sides spill to disk, and the report
// records the fraction of queries that spilled (spill_rate), the largest
// per-query working-set high-water mark (peak_query_bytes), and the total
// spilled run volume (memory_spilled_bytes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	els "repro"
	"repro/internal/admission"
	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/experiment"
	"repro/internal/governor"
	"repro/internal/optimizer"
	"repro/internal/querygen"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workpool"
)

func main() {
	var (
		which         = flag.String("experiment", "all", "experiments to run (comma-separated): all, section8, examples, indexed, chain, zipf, urn, sampled, independence, random, repeated")
		scale         = flag.Int("scale", 1, "divide the Section 8 table sizes by this factor")
		seed          = flag.Int64("seed", 42, "random seed for data generation")
		estimates     = flag.Bool("estimates-only", false, "skip data generation and execution (Section 8)")
		workers       = flag.Int("workers", 0, "intra-query parallelism for executed experiments (0 = GOMAXPROCS, 1 = serial)")
		jsonPath      = flag.String("json", "", "also write a machine-readable bench report to this path")
		timeout       = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
		maxConcurrent = flag.Int("max-concurrent", 0, "admission control: max concurrently admitted runs (0 = unlimited)")
		queueTimeout  = flag.Duration("queue-timeout", 0, "admission control: max time the run waits for a slot (0 = forever)")
		dataDir       = flag.String("data-dir", "", "durable catalog directory: persist the Section 8 statistics catalog, checkpoint on exit, and measure recovery_ms")
		replicas      = flag.Int("replicas", 0, "with -data-dir: attach N WAL-shipped read replicas, measure cold catch-up time and follower read throughput")
		serverBench   = flag.Bool("server", false, "benchmark the wire server: oversubscribed client swarm against an in-process elsserve tenant, measure server_p99_ms and shed_rate")
		maxMemory     = flag.Int64("max-memory", 0, "benchmark memory governance: per-query byte budget for the spill workload, measure spill_rate and peak_query_bytes (0 = skip)")
	)
	flag.Parse()
	report := &experiment.BenchReport{Scale: *scale, Seed: *seed, GoMaxProcs: runtime.GOMAXPROCS(0)}
	err := admitted(*maxConcurrent, *queueTimeout, func() error {
		return withTimeout(*timeout, func() error {
			return run(os.Stdout, *which, *scale, *seed, *estimates, *workers, report)
		})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsbench:", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		if err := measureRecovery(*dataDir, *scale, report); err != nil {
			fmt.Fprintln(os.Stderr, "elsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "durable recovery of %s: %.3f ms (%d wal records replayed, %d wal bytes)\n",
			*dataDir, report.RecoveryMillis, report.RecoveryReplayedRecords, report.RecoveryWALBytes)
	}
	if *replicas > 0 {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "elsbench: -replicas requires -data-dir")
			os.Exit(1)
		}
		if err := measureReplication(*dataDir, *replicas, report); err != nil {
			fmt.Fprintln(os.Stderr, "elsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "replication: %d cold replicas caught up in %.3f ms; %.0f follower reads/s\n",
			report.Replicas, report.ReplicaCatchupMillis, report.ReplicaReadsPerSec)
	}
	if *serverBench {
		if err := measureServer(report); err != nil {
			fmt.Fprintln(os.Stderr, "elsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "server: p99 round trip %.3f ms; %.1f%% of swarm requests shed by admission\n",
			report.ServerP99Millis, report.ShedRate*100)
	}
	if *maxMemory > 0 {
		if err := measureMemory(*maxMemory, *seed, report); err != nil {
			fmt.Fprintln(os.Stderr, "elsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "memory governance at %d bytes/query: %.1f%% of queries spilled; peak query working set %d bytes; %d bytes spilled to disk\n",
			*maxMemory, report.SpillRate*100, report.PeakQueryBytes, report.MemorySpilledBytes)
	}
	if *jsonPath != "" {
		if err := experiment.WriteBenchJSON(*jsonPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "elsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "bench report written to %s\n", *jsonPath)
	}
}

// admitted routes f through the library's admission controller when
// -max-concurrent is set: the run acquires an execution slot first,
// waiting at most queueTimeout, and sheds with a typed overload error if
// the wait expires. With maxConcurrent ≤ 0 admission is disabled and f
// runs directly.
func admitted(maxConcurrent int, queueTimeout time.Duration, f func() error) error {
	if maxConcurrent <= 0 {
		return f()
	}
	adm := admission.New(admission.Config{MaxConcurrent: maxConcurrent, QueueTimeout: queueTimeout})
	slot, err := adm.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer slot.Release()
	return f()
}

// withTimeout bounds f's wall-clock time, reporting overrun as the same
// typed budget error the library's governor produces. On timeout the
// worker goroutine is abandoned — acceptable here because main exits
// immediately afterwards.
func withTimeout(d time.Duration, f func() error) error {
	if d <= 0 {
		return f()
	}
	start := time.Now()
	done := workpool.Async(f)
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return &governor.BudgetError{
			Resource: "wall-clock", Limit: int64(d), Used: int64(time.Since(start)),
		}
	}
}

func run(w io.Writer, which string, scale int, seed int64, estimatesOnly bool, workers int, report *experiment.BenchReport) error {
	// Each step prints its human table and returns the executor tuples it
	// scanned (0 for estimator-only sweeps) plus the worker count it used,
	// so the bench report can record both alongside the measured wall time.
	steps := []struct {
		name string
		fn   func() (tuples int64, usedWorkers int, err error)
	}{
		{"examples", func() (int64, int, error) {
			examples, err := experiment.RunWorkedExamples()
			if err != nil {
				return 0, 1, err
			}
			fmt.Fprint(w, experiment.FormatWorkedExamples(examples))
			fmt.Fprintln(w)
			return 0, 1, nil
		}},
		{"section8", func() (int64, int, error) {
			res, err := experiment.RunSection8(experiment.Section8Options{
				Scale: scale, Seed: seed, SkipExecution: estimatesOnly, Workers: workers,
			})
			if err != nil {
				return 0, 0, err
			}
			fmt.Fprint(w, experiment.FormatSection8(res))
			fmt.Fprintln(w)
			for _, row := range res.Rows {
				fmt.Fprintf(w, "--- %s / %s plan:\n%s\n", row.Query, row.Algorithm, row.Plan)
			}
			if !estimatesOnly {
				// Re-run with the columnar engine disabled and compare the
				// summed per-query execution times (planning and data
				// generation excluded). The differential harness pins that
				// counts are engine-invariant, so this ratio is a pure
				// engine-speed measurement.
				rowRes, err := experiment.RunSection8(experiment.Section8Options{
					Scale: scale, Seed: seed, Workers: workers, DisableColumnar: true,
				})
				if err != nil {
					return 0, 0, err
				}
				colMs, rowMs := experiment.SumExecMillis(res), experiment.SumExecMillis(rowRes)
				if colMs > 0 {
					report.ColumnarSpeedup = rowMs / colMs
					fmt.Fprintf(w, "columnar engine: %.3f ms vs row-at-a-time %.3f ms — %.2fx speedup\n\n",
						colMs, rowMs, report.ColumnarSpeedup)
				}
			}
			return experiment.SumTuplesScanned(res), resolveWorkers(workers), nil
		}},
		{"indexed", func() (int64, int, error) {
			if estimatesOnly {
				fmt.Fprintln(w, "(indexed experiment skipped: requires execution)")
				return 0, 1, nil
			}
			res, err := experiment.RunSection8(experiment.Section8Options{
				Scale: scale, Seed: seed, WithIndexes: true, Workers: workers,
			})
			if err != nil {
				return 0, 0, err
			}
			fmt.Fprintln(w, "A6: Section 8 with ordered indexes on all join columns (index NL enabled)")
			fmt.Fprint(w, experiment.FormatSection8(res))
			fmt.Fprintln(w)
			return experiment.SumTuplesScanned(res), resolveWorkers(workers), nil
		}},
		{"chain", func() (int64, int, error) {
			rows, err := experiment.RunChainLengthSweep(8, 30, seed)
			if err != nil {
				return 0, 1, err
			}
			fmt.Fprint(w, experiment.FormatChainLengthSweep(rows))
			fmt.Fprintln(w)
			return 0, 1, nil
		}},
		{"zipf", func() (int64, int, error) {
			rows, err := experiment.RunZipfSweep(2000, 5000, 500, []float64{0, 0.25, 0.5, 0.75, 1.0}, seed)
			if err != nil {
				return 0, 1, err
			}
			fmt.Fprint(w, experiment.FormatZipfSweep(rows))
			fmt.Fprintln(w)
			return 0, 1, nil
		}},
		{"urn", func() (int64, int, error) {
			rows, err := experiment.RunUrnVsLinear(100000, 10000,
				[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}, seed)
			if err != nil {
				return 0, 1, err
			}
			fmt.Fprint(w, experiment.FormatUrnVsLinear(rows))
			fmt.Fprintln(w)
			return 0, 1, nil
		}},
		{"sampled", func() (int64, int, error) {
			rows, err := experiment.RunSampledStats(20000, []int{500, 2000, 10000}, seed)
			if err != nil {
				return 0, 1, err
			}
			fmt.Fprint(w, experiment.FormatSampledStats(rows))
			fmt.Fprintln(w)
			return 0, 1, nil
		}},
		{"independence", func() (int64, int, error) {
			rows, err := experiment.RunIndependenceSweep(100000, 200, 0.2, seed)
			if err != nil {
				return 0, 1, err
			}
			fmt.Fprint(w, experiment.FormatIndependenceSweep(rows))
			fmt.Fprintln(w)
			return 0, 1, nil
		}},
		{"random", func() (int64, int, error) {
			rows, err := experiment.RunRandomQueries(30, seed)
			if err != nil {
				return 0, 1, err
			}
			fmt.Fprint(w, experiment.FormatRandomQueries(rows))
			fmt.Fprintln(w)
			return 0, 1, nil
		}},
		{"repeated", func() (int64, int, error) {
			if err := runRepeated(w, seed, report); err != nil {
				return 0, 1, err
			}
			return 0, 1, nil
		}},
	}
	// -experiment accepts a comma-separated list ("section8,repeated"), so
	// one invocation can land several measurements in a single report.
	all := false
	want := make(map[string]bool)
	for _, name := range strings.Split(which, ",") {
		if name = strings.TrimSpace(name); name == "all" {
			all = true
		} else if name != "" {
			want[name] = true
		}
	}
	if !all && len(want) == 0 {
		return fmt.Errorf("unknown experiment %q", which)
	}
	for _, step := range steps {
		if !all && !want[step.name] {
			continue
		}
		delete(want, step.name)
		start := time.Now()
		tuples, usedWorkers, err := step.fn()
		if err != nil {
			return err
		}
		report.Results = append(report.Results, experiment.BenchResult{
			Experiment:    step.name,
			Workers:       usedWorkers,
			WallMillis:    float64(time.Since(start).Microseconds()) / 1000,
			TuplesScanned: tuples,
		})
	}
	for name := range want {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// runRepeated drives the plan cache with the shape of a dashboard or
// reporting workload: a fixed pool of generated statements re-issued on a
// Zipf-skewed schedule through the full serving stack (parse, bind, plan
// cache, estimate). The resulting hit rate lands in the report as
// cache_hit_rate; with a pool much smaller than the issue count it should
// clear 0.9 comfortably.
func runRepeated(w io.Writer, seed int64, report *experiment.BenchReport) error {
	const (
		poolSize = 25
		issues   = 500
		skew     = 1.5
	)
	sys := els.New()
	pool := make([]string, poolSize)
	for i := range pool {
		q := querygen.GenerateNamed(seed+int64(i), fmt.Sprintf("W%dT", i))
		for _, spec := range q.Specs {
			distinct := make(map[string]float64, len(spec.Columns))
			for _, col := range spec.Columns {
				d := float64(col.Domain)
				if rows := float64(spec.Rows); d > rows {
					d = rows
				}
				distinct[col.Name] = d
			}
			if err := sys.DeclareStats(spec.Name, float64(spec.Rows), distinct); err != nil {
				return err
			}
		}
		pool[i] = q.SQL()
	}
	for _, idx := range querygen.RepeatSchedule(seed, poolSize, issues, skew) {
		if _, err := sys.Estimate(pool[idx], els.AlgorithmELS); err != nil {
			return fmt.Errorf("repeated workload %q: %w", pool[idx], err)
		}
	}
	st := sys.CacheStats()
	report.CacheHitRate = st.HitRate()
	fmt.Fprintf(w, "repeated workload: %d issues over %d distinct statements (zipf %g): %d hits, %d misses — hit rate %.3f\n\n",
		issues, poolSize, skew, st.Hits, st.Misses, report.CacheHitRate)
	return nil
}

// measureRecovery exercises the durable catalog end to end: declare the
// Section 8 statistics catalog (at the run's scale) through the WAL,
// compact it into an atomic checkpoint, close, and time a cold els.Open —
// checkpoint load plus WAL replay — as the report's recovery_ms.
func measureRecovery(dir string, scale int, report *experiment.BenchReport) error {
	if scale < 1 {
		scale = 1
	}
	sys, err := els.Open(dir)
	if err != nil {
		return err
	}
	section8 := []struct {
		name string
		card float64
		col  string
	}{
		{"S", 1000, "s"}, {"M", 10000, "m"}, {"B", 50000, "b"}, {"G", 100000, "g"},
	}
	for i, t := range section8 {
		card := t.card / float64(scale)
		if err := sys.DeclareStats(t.name, card, map[string]float64{t.col: card}); err != nil {
			return err
		}
		// Checkpoint halfway so the recovery measurement exercises both
		// paths: checkpoint load AND a WAL-suffix replay.
		if i == len(section8)/2-1 {
			if err := sys.Checkpoint(); err != nil {
				return err
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Close(ctx); err != nil {
		return err
	}
	start := time.Now()
	recovered, err := els.Open(dir)
	if err != nil {
		return err
	}
	report.RecoveryMillis = float64(time.Since(start).Microseconds()) / 1000
	d := recovered.DurabilityStats()
	report.RecoveryReplayedRecords = d.ReplayedRecords
	report.RecoveryWALBytes = d.WALBytes
	return recovered.Close(ctx)
}

// measureReplication reopens the durable catalog the recovery measurement
// left behind as a replication primary, cold-attaches n read replicas
// (each with its own durable directory under dir), and measures how long
// the fleet takes to catch up to the primary's catalog version, then the
// fleet's aggregate read throughput at lag 0.
func measureReplication(dir string, n int, report *experiment.BenchReport) error {
	sys, err := els.Open(dir)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	defer sys.Close(ctx)

	// Widen the shipped history so catch-up replays real deltas, not just
	// one full frame.
	for i := 0; i < 32; i++ {
		card := float64(1000 + i)
		if err := sys.DeclareStats(fmt.Sprintf("RT%d", i), card, map[string]float64{"k": card}); err != nil {
			return err
		}
	}

	start := time.Now()
	reps := make([]*els.Replica, n)
	for i := range reps {
		rep, err := els.OpenReplica(filepath.Join(dir, fmt.Sprintf("replica%d", i)))
		if err != nil {
			return err
		}
		defer rep.Close(ctx)
		if err := sys.AttachReplica(rep); err != nil {
			return err
		}
		reps[i] = rep
	}
	if err := sys.WaitForReplicas(ctx); err != nil {
		return err
	}
	report.Replicas = n
	report.ReplicaCatchupMillis = float64(time.Since(start).Microseconds()) / 1000

	// Aggregate follower read throughput: every caught-up replica serves a
	// fixed batch of estimates concurrently.
	const readsPerReplica = 2000
	const probe = "SELECT COUNT(*) FROM S, M WHERE s = m"
	start = time.Now()
	done := make([]<-chan error, n)
	for i, rep := range reps {
		rep := rep
		done[i] = workpool.Async(func() error {
			for j := 0; j < readsPerReplica; j++ {
				if _, err := rep.Estimate(probe, els.AlgorithmELS); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for _, ch := range done {
		if err := <-ch; err != nil {
			return err
		}
	}
	report.ReplicaReadsPerSec = float64(readsPerReplica*n) / time.Since(start).Seconds()
	return nil
}

// measureServer benchmarks the networked serving path: an in-process wire
// server hosting one tenant whose admission limits are deliberately small,
// hammered by an oversubscribed swarm of wire clients executing count
// queries over a loaded join.
// Client-observed p99 round-trip latency lands in server_p99_ms, and the
// fraction of requests shed with the typed overload error — the bulkhead
// engaging, not a failure — lands in shed_rate.
func measureServer(report *experiment.BenchReport) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := server.Start(ctx, server.Config{
		Addr: "127.0.0.1:0",
		Tenants: []server.TenantConfig{{
			Name: "bench",
			Limits: els.Limits{
				Timeout:       5 * time.Second,
				MaxConcurrent: 4,
				MaxQueue:      4,
				QueueTimeout:  5 * time.Millisecond,
			},
			Bootstrap: func(sys *els.System) error {
				mk := func(n, mod int) [][]int64 {
					rows := make([][]int64, n)
					for i := range rows {
						rows[i] = []int64{int64(i % mod)}
					}
					return rows
				}
				if err := sys.LoadTable("S", []string{"s"}, mk(2500, 50)); err != nil {
					return err
				}
				return sys.LoadTable("M", []string{"m"}, mk(2500, 50))
			},
		}},
	})
	if err != nil {
		return err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
	}()

	// 12 connections against 4 slots + 4 queue positions, with queries
	// sized to tens of milliseconds: enough oversubscription that both
	// shed paths (queue full, queue timeout) engage while most requests
	// still succeed. The query must span several scheduler preemption
	// quanta — sub-quantum queries complete before waiters can even enter
	// the admission queue on a small box, and nothing sheds.
	const clients = 12
	const opsPerClient = 60
	const probe = "SELECT COUNT(*) FROM S, M WHERE s = m"
	type swarmResult struct {
		latencies []time.Duration
		sheds     int
	}
	results := make([]swarmResult, clients)
	done := make([]<-chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		done[i] = workpool.Async(func() error {
			cl, err := wire.Dial(ctx, srv.Addr())
			if err != nil {
				return err
			}
			defer cl.Close()
			res := &results[i]
			res.latencies = make([]time.Duration, 0, opsPerClient)
			for j := 0; j < opsPerClient; j++ {
				start := time.Now()
				_, err := cl.Do(ctx, &wire.Request{Op: wire.OpQuery, Tenant: "bench", SQL: probe})
				res.latencies = append(res.latencies, time.Since(start))
				if err != nil {
					if errors.Is(err, els.ErrOverloaded) {
						res.sheds++
						continue
					}
					return err
				}
			}
			return nil
		})
	}
	for _, ch := range done {
		if err := <-ch; err != nil {
			return err
		}
	}

	var all []time.Duration
	var sheds int
	for _, res := range results {
		all = append(all, res.latencies...)
		sheds += res.sheds
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100]
	report.ServerP99Millis = float64(p99.Microseconds()) / 1000
	report.ShedRate = float64(sheds) / float64(len(all))
	return nil
}

// measureMemory benchmarks the memory-governance layer: the seeded
// differential workload — hash joins only, so every oversized build side
// takes the spill path rather than failing — executed under a per-query
// byte budget. The fraction of queries whose hash joins spilled lands in
// spill_rate, the largest per-query ledger high-water mark in
// peak_query_bytes, and the total run volume written to disk in
// memory_spilled_bytes.
func measureMemory(maxMemory, seed int64, report *experiment.BenchReport) error {
	const queries = 100
	spillDir, err := os.MkdirTemp("", "elsbench-spill")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spillDir)
	var spilled int
	for s := int64(0); s < queries; s++ {
		q := querygen.Generate(seed + s)
		q.Methods = []optimizer.JoinMethod{optimizer.HashJoin}
		cat := catalog.New()
		for _, spec := range q.Specs {
			tbl, err := datagen.Generate(spec, q.DataSeed+int64(len(spec.Name)))
			if err != nil {
				return fmt.Errorf("memory workload seed %d: datagen: %w", seed+s, err)
			}
			if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{}); err != nil {
				return fmt.Errorf("memory workload seed %d: analyze: %w", seed+s, err)
			}
		}
		est, err := cardest.New(cat, q.Tables, q.Preds, cardest.ELS())
		if err != nil {
			return fmt.Errorf("memory workload seed %d: cardest: %w", seed+s, err)
		}
		opt, err := optimizer.New(est, optimizer.Options{Methods: q.Methods, Workers: 1})
		if err != nil {
			return fmt.Errorf("memory workload seed %d: optimizer: %w", seed+s, err)
		}
		plan, err := opt.BestPlan()
		if err != nil {
			return fmt.Errorf("memory workload seed %d: plan: %w", seed+s, err)
		}
		gov := governor.New(context.Background(), governor.Limits{MaxMemory: maxMemory})
		exec := executor.NewGoverned(cat, gov)
		exec.SetSpillDir(spillDir)
		if _, err := exec.Execute(plan); err != nil {
			return fmt.Errorf("memory workload seed %d: execute: %w", seed+s, err)
		}
		count, bytes := gov.SpillStats()
		if count > 0 {
			spilled++
		}
		report.MemorySpilledBytes += bytes
		if _, peak, _ := gov.MemoryUsage(); peak > report.PeakQueryBytes {
			report.PeakQueryBytes = peak
		}
	}
	report.SpillRate = float64(spilled) / float64(queries)
	return nil
}

// resolveWorkers mirrors the executor's default: 0 means GOMAXPROCS.
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
