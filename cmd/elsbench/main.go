// Command elsbench runs the paper's experiments end-to-end and prints the
// reproduced tables.
//
// Usage:
//
//	elsbench [-experiment all|section8|examples|chain|zipf|urn|random]
//	         [-scale N] [-seed N] [-estimates-only]
//
// The default runs everything. -scale divides the Section 8 table sizes
// (scale 1 is the paper's full size; 10 is a fast smoke test).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/governor"
)

func main() {
	var (
		which     = flag.String("experiment", "all", "experiment to run: all, section8, examples, indexed, chain, zipf, urn, sampled, independence, random")
		scale     = flag.Int("scale", 1, "divide the Section 8 table sizes by this factor")
		seed      = flag.Int64("seed", 42, "random seed for data generation")
		estimates = flag.Bool("estimates-only", false, "skip data generation and execution (Section 8)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	)
	flag.Parse()
	err := withTimeout(*timeout, func() error {
		return run(os.Stdout, *which, *scale, *seed, *estimates)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsbench:", err)
		os.Exit(1)
	}
}

// withTimeout bounds f's wall-clock time, reporting overrun as the same
// typed budget error the library's governor produces. On timeout the
// worker goroutine is abandoned — acceptable here because main exits
// immediately afterwards.
func withTimeout(d time.Duration, f func() error) error {
	if d <= 0 {
		return f()
	}
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return &governor.BudgetError{
			Resource: "wall-clock", Limit: int64(d), Used: int64(time.Since(start)),
		}
	}
}

func run(w io.Writer, which string, scale int, seed int64, estimatesOnly bool) error {
	all := which == "all"
	ran := false

	if all || which == "examples" {
		ran = true
		examples, err := experiment.RunWorkedExamples()
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiment.FormatWorkedExamples(examples))
		fmt.Fprintln(w)
	}
	if all || which == "section8" {
		ran = true
		res, err := experiment.RunSection8(experiment.Section8Options{
			Scale: scale, Seed: seed, SkipExecution: estimatesOnly,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiment.FormatSection8(res))
		fmt.Fprintln(w)
		for _, row := range res.Rows {
			fmt.Fprintf(w, "--- %s / %s plan:\n%s\n", row.Query, row.Algorithm, row.Plan)
		}
	}
	if all || which == "indexed" {
		ran = true
		if estimatesOnly {
			fmt.Fprintln(w, "(indexed experiment skipped: requires execution)")
		} else {
			res, err := experiment.RunSection8(experiment.Section8Options{
				Scale: scale, Seed: seed, WithIndexes: true,
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "A6: Section 8 with ordered indexes on all join columns (index NL enabled)")
			fmt.Fprint(w, experiment.FormatSection8(res))
			fmt.Fprintln(w)
		}
	}
	if all || which == "chain" {
		ran = true
		rows, err := experiment.RunChainLengthSweep(8, 30, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiment.FormatChainLengthSweep(rows))
		fmt.Fprintln(w)
	}
	if all || which == "zipf" {
		ran = true
		rows, err := experiment.RunZipfSweep(2000, 5000, 500, []float64{0, 0.25, 0.5, 0.75, 1.0}, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiment.FormatZipfSweep(rows))
		fmt.Fprintln(w)
	}
	if all || which == "urn" {
		ran = true
		rows, err := experiment.RunUrnVsLinear(100000, 10000,
			[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiment.FormatUrnVsLinear(rows))
		fmt.Fprintln(w)
	}
	if all || which == "sampled" {
		ran = true
		rows, err := experiment.RunSampledStats(20000, []int{500, 2000, 10000}, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiment.FormatSampledStats(rows))
		fmt.Fprintln(w)
	}
	if all || which == "independence" {
		ran = true
		rows, err := experiment.RunIndependenceSweep(100000, 200, 0.2, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiment.FormatIndependenceSweep(rows))
		fmt.Fprintln(w)
	}
	if all || which == "random" {
		ran = true
		rows, err := experiment.RunRandomQueries(30, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiment.FormatRandomQueries(rows))
		fmt.Fprintln(w)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
