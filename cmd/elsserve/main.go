// Command elsserve hosts multi-tenant networked estimation: one process,
// one TCP listener, N isolated tenants — each with its own catalog,
// durable directory, admission budget, retry/breaker policy, and plan
// cache. Clients speak the length-prefixed JSON frame protocol of
// internal/wire; the bundled database/sql driver (module path
// repro/driver) is the idiomatic way in.
//
// Usage:
//
//	elsserve -addr 127.0.0.1:7447 -tenants acme,globex [-data-dir DIR]
//	         [-max-concurrent N] [-queue-depth N] [-queue-timeout D]
//	         [-timeout D] [-max-memory N] [-memory-pool N]
//	         [-retries N] [-breaker-threshold N]
//	         [-idle-timeout D] [-drain-timeout D] [-demo]
//	         [-log events.jsonl] [-enable-fault-ops]
//
// With -data-dir, tenant X lives in DIR/X: its catalog is recovered on
// start and every acknowledged mutation survives a crash or restart.
// -demo seeds each freshly created tenant with a small demo catalog so
// the server answers queries out of the box. On SIGTERM or SIGINT the
// server drains gracefully — stops accepting, finishes in-flight
// requests (bounded by -drain-timeout), checkpoints and closes every
// tenant — and exits 0; a second signal aborts the drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	els "repro"
	"repro/internal/server"
	"repro/internal/workpool"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7447", "TCP listen address")
		tenants   = flag.String("tenants", "default", "comma-separated tenant names to host")
		dataDir   = flag.String("data-dir", "", "durable data root (tenant X lives in DIR/X); empty = in-memory")
		maxConc   = flag.Int("max-concurrent", 8, "per-tenant concurrent query slots")
		queueLen  = flag.Int("queue-depth", 64, "per-tenant admission queue depth")
		queueTO   = flag.Duration("queue-timeout", 2*time.Second, "per-tenant admission queue timeout")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-query wall-clock budget")
		maxMemory = flag.Int64("max-memory", 0, "per-query working-memory byte budget (0 = none); hash joins over it spill to disk")
		memPool   = flag.Int64("memory-pool", 0, "process-wide working-memory pool in bytes, split into equal per-tenant shares; reservations over a share shed with a retryable pressure error (0 = off)")
		retries   = flag.Int("retries", 0, "per-tenant retry attempts for transient failures (0 = off)")
		brkThresh = flag.Int("breaker-threshold", 0, "per-tenant circuit-breaker trip threshold (0 = off)")
		idleTO    = flag.Duration("idle-timeout", 2*time.Minute, "per-connection idle read timeout")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGTERM")
		demo      = flag.Bool("demo", false, "seed freshly created tenants with a demo catalog")
		logPath   = flag.String("log", "", "append JSONL lifecycle events to this file ('-' = stderr)")
		faultOps  = flag.Bool("enable-fault-ops", false, "honor wire fault-injection ops (tests/chaos only)")
		poison    = flag.Int("poison-threshold", 0, "consecutive panics before a tenant is quarantined (0 = server default)")
	)
	flag.Parse()
	if err := run(*addr, *tenants, *dataDir, *maxConc, *queueLen, *queueTO, *timeout,
		*maxMemory, *memPool, *retries, *brkThresh, *idleTO, *drainTO, *demo, *logPath, *faultOps, *poison); err != nil {
		fmt.Fprintln(os.Stderr, "elsserve:", err)
		os.Exit(1)
	}
}

func run(addr, tenantList, dataDir string, maxConc, queueLen int, queueTO, timeout time.Duration,
	maxMemory, memPool int64, retries, brkThresh int, idleTO, drainTO time.Duration, demo bool, logPath string, faultOps bool, poison int) error {
	var logW io.Writer
	switch logPath {
	case "":
	case "-":
		logW = os.Stderr
	default:
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644) //atomicwrite:allow append-only JSONL event log; each line is self-delimiting
		if err != nil {
			return err
		}
		defer f.Close()
		logW = f
	}

	limits := els.Limits{
		Timeout:       timeout,
		MaxConcurrent: maxConc,
		MaxQueue:      queueLen,
		QueueTimeout:  queueTO,
		MaxMemory:     maxMemory,
	}
	cfg := server.Config{
		Addr:            addr,
		DataRoot:        dataDir,
		IdleTimeout:     idleTO,
		PoisonThreshold: poison,
		EnableFaultOps:  faultOps,
		MemoryPool:      memPool,
		LogW:            logW,
	}
	for _, name := range strings.Split(tenantList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		tc := server.TenantConfig{Name: name, Limits: limits}
		if retries > 1 {
			tc.Retry = els.RetryPolicy{MaxAttempts: retries, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond}
		}
		if brkThresh > 0 {
			tc.Breaker = els.BreakerPolicy{Threshold: brkThresh, Cooldown: time.Second}
		}
		if demo {
			tc.Bootstrap = demoBootstrap
		}
		cfg.Tenants = append(cfg.Tenants, tc)
	}

	ctx := context.Background()
	srv, err := server.Start(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "elsserve: listening on %s (%d tenants)\n", srv.Addr(), len(cfg.Tenants))

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigCh
	fmt.Fprintf(os.Stderr, "elsserve: %s — draining (bound %s)\n", sig, drainTO)

	drainCtx, cancel := context.WithTimeout(ctx, drainTO)
	defer cancel()
	workpool.Async(func() error {
		<-sigCh // a second signal aborts the drain
		cancel()
		return nil
	})
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "elsserve: drained cleanly")
	return nil
}

// demoBootstrap seeds a freshly created tenant with a three-table demo
// catalog (statistics plus data, so both estimates and executed queries
// answer out of the box).
func demoBootstrap(sys *els.System) error {
	emp := make([][]int64, 0, 500)
	for i := int64(0); i < 500; i++ {
		emp = append(emp, []int64{i, i % 50, i % 10})
	}
	dept := make([][]int64, 0, 50)
	for i := int64(0); i < 50; i++ {
		dept = append(dept, []int64{i, i % 10})
	}
	loc := make([][]int64, 0, 10)
	for i := int64(0); i < 10; i++ {
		loc = append(loc, []int64{i, i % 3})
	}
	if err := sys.LoadTable("emp", []string{"id", "dept_id", "loc_id"}, emp); err != nil {
		return err
	}
	if err := sys.LoadTable("dept", []string{"id", "loc_id"}, dept); err != nil {
		return err
	}
	return sys.LoadTable("loc", []string{"id", "region"}, loc)
}
