// Command elsrepl is an interactive shell for the estimation system: load
// CSV data or declare statistics, pick an estimation algorithm, and
// explain, estimate, or execute queries. Type "help" inside the shell.
//
// A script can be piped on stdin:
//
//	echo 'declare R 1000 x=100
//	      estimate SELECT COUNT(*) FROM R WHERE x < 10' | elsrepl
package main

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/repl"
)

func main() {
	p := repl.New(os.Stdout)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Println("els repl — type 'help' for commands")
	}
	for {
		if interactive {
			fmt.Print("els> ")
		}
		if !in.Scan() {
			break
		}
		quit, err := p.Execute(in.Text())
		if err != nil {
			fmt.Fprintln(os.Stderr, "elsrepl:", err)
			os.Exit(1)
		}
		if quit {
			break
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "elsrepl:", err)
		os.Exit(1)
	}
}

// isTerminal reports whether stdin looks interactive (best-effort, stdlib
// only: a character device is a terminal, a pipe or file is not).
func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
