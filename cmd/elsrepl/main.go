// Command elsrepl is an interactive shell for the estimation system: load
// CSV data or declare statistics, pick an estimation algorithm, and
// explain, estimate, or execute queries. Type "help" inside the shell.
//
// A script can be piped on stdin:
//
//	echo 'declare R 1000 x=100
//	      estimate SELECT COUNT(*) FROM R WHERE x < 10' | elsrepl
//
// Resource budgets applied to every query can be set up front with
// -timeout, -max-tuples, -max-rows, and -max-plans, or at runtime with the
// "limits" command inside the shell. -workers (or "limits workers=N") sets
// the intra-query parallelism; results are identical at any setting.
// -max-concurrent and -queue-timeout configure admission control for
// sessions that share the system with other work.
//
// -data-dir backs the session with a durable catalog directory: statistics
// declared in the shell are written ahead to a checksummed WAL and fsynced
// before being acknowledged, a previous session's catalog is recovered on
// startup, and the WAL is compacted into an atomic checkpoint on clean
// exit. Inside the shell, "checkpoint" compacts eagerly and "recover"
// replays the directory as a post-crash restart would.
//
// A durable session can also ship its WAL to read replicas: "replica
// attach <dir>" opens a follower catalog that tails every acknowledged
// mutation, "replica status" shows per-follower version, lag, and
// quarantine state, and "replica promote <id>" fails the session over to
// a replica, making it the writable primary. "limits max-replica-lag=N"
// bounds how stale an attached replica may serve before reads are
// rejected with a typed staleness error.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	els "repro"
	"repro/internal/repl"
)

func main() {
	timeout := flag.Duration("timeout", 0, "per-query wall-clock budget (0 = none)")
	maxTuples := flag.Int64("max-tuples", 0, "per-query scanned-tuple budget (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query materialized-row budget (0 = none)")
	maxPlans := flag.Int64("max-plans", 0, "per-query enumerated-plan budget (0 = none)")
	maxMemory := flag.Int64("max-memory", 0, "per-query working-memory byte budget (0 = none); hash joins over it spill to disk")
	workers := flag.Int("workers", 0, "intra-query parallelism (0 = GOMAXPROCS, 1 = serial)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission control: max concurrently executing queries (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission control: max time a query waits for a slot (0 = forever)")
	dataDir := flag.String("data-dir", "", "durable catalog directory (WAL + checkpoints); recovered on start, checkpointed on exit")
	flag.Parse()
	limits := els.Limits{
		Timeout:       *timeout,
		MaxTuples:     *maxTuples,
		MaxRows:       *maxRows,
		MaxPlans:      *maxPlans,
		MaxMemory:     *maxMemory,
		Workers:       *workers,
		MaxConcurrent: *maxConcurrent,
		QueueTimeout:  *queueTimeout,
	}
	if err := run(os.Stdin, os.Stdout, limits, *dataDir, isTerminal()); err != nil {
		fmt.Fprintln(os.Stderr, "elsrepl:", err)
		os.Exit(1)
	}
}

// run drives one REPL session reading commands from in and writing results
// to out. It returns only on input exhaustion, a "quit" command, or an I/O
// error; per-command failures are reported to out and the session
// continues. A final line not terminated by a newline (mid-line EOF — a
// script missing its trailing newline, or ^D typed after a command) is
// executed before the session ends cleanly. A durable session (dataDir
// non-empty) checkpoints the WAL and closes the store on the way out.
func run(in io.Reader, out io.Writer, limits els.Limits, dataDir string, interactive bool) error {
	p := repl.New(out)
	if dataDir != "" {
		var err error
		if p, err = repl.NewAt(out, dataDir); err != nil {
			return err
		}
		// Re-read the system at exit: a "recover" command swaps in a
		// fresh one and closes the old one itself.
		defer func() { closeDurable(p.System()) }()
		if interactive {
			d := p.System().DurabilityStats()
			fmt.Fprintf(out, "recovered %s at catalog version %d\n", dataDir, d.LastVersion)
		}
	}
	p.System().SetLimits(limits)
	r := bufio.NewReader(in)
	if interactive {
		fmt.Fprintln(out, "els repl — type 'help' for commands")
	}
	for {
		if interactive {
			fmt.Fprint(out, "els> ")
		}
		line, err := r.ReadString('\n')
		if line != "" {
			quit, eerr := p.Execute(strings.TrimRight(line, "\r\n"))
			if eerr != nil {
				return eerr
			}
			if quit {
				return nil
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// closeDurable checkpoints and closes the session's durable store on exit,
// so the next start recovers from a compact checkpoint instead of a long
// WAL replay. Errors are reported, not fatal: the WAL already holds every
// acknowledged mutation.
func closeDurable(sys *els.System) {
	if err := sys.Checkpoint(); err != nil {
		fmt.Fprintln(os.Stderr, "elsrepl: checkpoint on exit:", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "elsrepl: close:", err)
	}
}

// isTerminal reports whether stdin looks interactive (best-effort, stdlib
// only: a character device is a terminal, a pipe or file is not).
func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
