// Command elsrepl is an interactive shell for the estimation system: load
// CSV data or declare statistics, pick an estimation algorithm, and
// explain, estimate, or execute queries. Type "help" inside the shell.
//
// A script can be piped on stdin:
//
//	echo 'declare R 1000 x=100
//	      estimate SELECT COUNT(*) FROM R WHERE x < 10' | elsrepl
//
// Resource budgets applied to every query can be set up front with
// -timeout, -max-tuples, -max-rows, and -max-plans, or at runtime with the
// "limits" command inside the shell. -workers (or "limits workers=N") sets
// the intra-query parallelism; results are identical at any setting.
// -max-concurrent and -queue-timeout configure admission control for
// sessions that share the system with other work.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	els "repro"
	"repro/internal/repl"
)

func main() {
	timeout := flag.Duration("timeout", 0, "per-query wall-clock budget (0 = none)")
	maxTuples := flag.Int64("max-tuples", 0, "per-query scanned-tuple budget (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query materialized-row budget (0 = none)")
	maxPlans := flag.Int64("max-plans", 0, "per-query enumerated-plan budget (0 = none)")
	workers := flag.Int("workers", 0, "intra-query parallelism (0 = GOMAXPROCS, 1 = serial)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission control: max concurrently executing queries (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission control: max time a query waits for a slot (0 = forever)")
	flag.Parse()
	limits := els.Limits{
		Timeout:       *timeout,
		MaxTuples:     *maxTuples,
		MaxRows:       *maxRows,
		MaxPlans:      *maxPlans,
		Workers:       *workers,
		MaxConcurrent: *maxConcurrent,
		QueueTimeout:  *queueTimeout,
	}
	if err := run(os.Stdin, os.Stdout, limits, isTerminal()); err != nil {
		fmt.Fprintln(os.Stderr, "elsrepl:", err)
		os.Exit(1)
	}
}

// run drives one REPL session reading commands from in and writing results
// to out. It returns only on input exhaustion, a "quit" command, or an I/O
// error; per-command failures are reported to out and the session
// continues. A final line not terminated by a newline (mid-line EOF — a
// script missing its trailing newline, or ^D typed after a command) is
// executed before the session ends cleanly.
func run(in io.Reader, out io.Writer, limits els.Limits, interactive bool) error {
	p := repl.New(out)
	p.System().SetLimits(limits)
	r := bufio.NewReader(in)
	if interactive {
		fmt.Fprintln(out, "els repl — type 'help' for commands")
	}
	for {
		if interactive {
			fmt.Fprint(out, "els> ")
		}
		line, err := r.ReadString('\n')
		if line != "" {
			quit, eerr := p.Execute(strings.TrimRight(line, "\r\n"))
			if eerr != nil {
				return eerr
			}
			if quit {
				return nil
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// isTerminal reports whether stdin looks interactive (best-effort, stdlib
// only: a character device is a terminal, a pipe or file is not).
func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
