package main

import (
	"strings"
	"testing"

	els "repro"
)

// A scripted session must round-trip: generate data, estimate, execute, and
// report a COUNT(*) result that matches the join's true size.
func TestScriptedRoundTrip(t *testing.T) {
	// Single-value domains make the join an exact cross product, so the
	// estimate and the executed count are both exactly 50*40.
	script := strings.Join([]string{
		"gen R x uniform 50 1 seed=1",
		"gen S x uniform 40 1 seed=2",
		"estimate SELECT COUNT(*) FROM R, S WHERE R.x = S.x",
		"SELECT COUNT(*) FROM R, S WHERE R.x = S.x",
		"quit",
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{}, "", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"generated R (50 rows, uniform)",
		"generated S (40 rows, uniform)",
		"estimated size: 2000",
		"2000 row(s)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// Bad input is reported on the session's output and must not abort the
// session: commands after the failure still run.
func TestErrorsDoNotAbortSession(t *testing.T) {
	script := strings.Join([]string{
		"frobnicate",                           // unknown command
		"estimate SELECT COUNT(*) FROM nosuch", // unknown table
		"declare R 1000 x=100",                 // session still alive
		"tables",
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{}, "", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, `unknown command "frobnicate"`) {
		t.Errorf("missing unknown-command report:\n%s", got)
	}
	if !strings.Contains(got, "error:") {
		t.Errorf("missing error report for unknown table:\n%s", got)
	}
	if !strings.Contains(got, "R  card=1000") {
		t.Errorf("session did not survive errors:\n%s", got)
	}
}

// A script whose final line has no trailing newline (mid-line EOF) still
// executes that line, and the session ends cleanly instead of erroring or
// dropping the command.
func TestMidLineEOFExecutesFinalCommand(t *testing.T) {
	script := "declare R 1000 x=100\ntables" // no trailing newline
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{}, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "R  card=1000") {
		t.Errorf("final unterminated command did not run:\n%s", out.String())
	}
}

// Malformed limits arguments — negative values, missing values, unknown
// keys, bad durations — are reported with a usage hint and leave both the
// session and the previously set limits intact.
func TestMalformedLimitsArgs(t *testing.T) {
	script := strings.Join([]string{
		"limits tuples=5",
		"limits tuples=-3",        // negative
		"limits tuples=",          // missing value
		"limits nonsense",         // not key=value
		"limits frobs=7",          // unknown key
		"limits queue-timeout=3x", // bad duration
		"limits",                  // prior setting must survive the noise
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{}, "", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"tuples must not be negative",
		`malformed limit "tuples="`,
		`malformed limit "nonsense"`,
		`unknown limit "frobs"`,
		`bad queue-timeout "3x"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "usage: limits") < 4 {
		t.Errorf("malformed args should print the usage hint:\n%s", got)
	}
	if !strings.Contains(got, "tuples=5") {
		t.Errorf("valid limit lost after malformed attempts:\n%s", got)
	}
}

// Admission limits are settable from the shell and visible in the serving
// counters; an admission-controlled scripted session still executes
// queries (they serialize instead of shedding).
func TestAdmissionLimitsInSession(t *testing.T) {
	script := strings.Join([]string{
		"gen R x uniform 50 1 seed=1",
		"limits max-concurrent=1 max-queue=2 queue-timeout=1s",
		"SELECT COUNT(*) FROM R",
		"serving",
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{}, "", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "max-concurrent=1 max-queue=2 queue-timeout=1s") {
		t.Errorf("admission limits not echoed:\n%s", got)
	}
	if !strings.Contains(got, "50 row(s)") {
		t.Errorf("query under admission control failed:\n%s", got)
	}
	if !strings.Contains(got, "admitted=1") || !strings.Contains(got, "catalog version:") {
		t.Errorf("serving counters missing:\n%s", got)
	}
}

// Budgets passed via flags govern queries, and the limits command can
// inspect and clear them mid-session.
func TestLimitsGovernSession(t *testing.T) {
	script := strings.Join([]string{
		"gen R x uniform 50 1 seed=1",
		"gen S x uniform 40 1 seed=2",
		"limits",
		"SELECT COUNT(*) FROM R, S WHERE R.x = S.x", // budget hit
		"limits off",
		"SELECT COUNT(*) FROM R, S WHERE R.x = S.x", // now succeeds
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{MaxTuples: 1}, "", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "tuples=1") {
		t.Errorf("limits command does not show flag-provided budget:\n%s", got)
	}
	if !strings.Contains(got, "budget exceeded") {
		t.Errorf("budgeted query did not fail:\n%s", got)
	}
	if !strings.Contains(got, "2000 row(s)") {
		t.Errorf("query after 'limits off' did not succeed:\n%s", got)
	}
}

// A -data-dir session persists declarations across runs: the second run
// recovers the catalog written (and checkpointed on exit) by the first.
func TestDurableSessionPersists(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	script := "declare R 1000 x=100\ndeclare S 500 y=50\nquit\n"
	if err := run(strings.NewReader(script), &out, els.Limits{}, dir, false); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run(strings.NewReader("tables\nserving\n"), &out, els.Limits{}, dir, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "R  card=1000") || !strings.Contains(got, "S  card=500") {
		t.Errorf("catalog did not survive restart:\n%s", got)
	}
	// Exit checkpointed: the recovered WAL holds no un-compacted records.
	if !strings.Contains(got, "records-since-checkpoint=0") {
		t.Errorf("exit checkpoint missing (WAL not compacted):\n%s", got)
	}
}
