package main

import (
	"strings"
	"testing"

	els "repro"
)

// A scripted session must round-trip: generate data, estimate, execute, and
// report a COUNT(*) result that matches the join's true size.
func TestScriptedRoundTrip(t *testing.T) {
	// Single-value domains make the join an exact cross product, so the
	// estimate and the executed count are both exactly 50*40.
	script := strings.Join([]string{
		"gen R x uniform 50 1 seed=1",
		"gen S x uniform 40 1 seed=2",
		"estimate SELECT COUNT(*) FROM R, S WHERE R.x = S.x",
		"SELECT COUNT(*) FROM R, S WHERE R.x = S.x",
		"quit",
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{}, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"generated R (50 rows, uniform)",
		"generated S (40 rows, uniform)",
		"estimated size: 2000",
		"2000 row(s)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// Bad input is reported on the session's output and must not abort the
// session: commands after the failure still run.
func TestErrorsDoNotAbortSession(t *testing.T) {
	script := strings.Join([]string{
		"frobnicate",                           // unknown command
		"estimate SELECT COUNT(*) FROM nosuch", // unknown table
		"declare R 1000 x=100",                 // session still alive
		"tables",
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{}, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, `unknown command "frobnicate"`) {
		t.Errorf("missing unknown-command report:\n%s", got)
	}
	if !strings.Contains(got, "error:") {
		t.Errorf("missing error report for unknown table:\n%s", got)
	}
	if !strings.Contains(got, "R  card=1000") {
		t.Errorf("session did not survive errors:\n%s", got)
	}
}

// Budgets passed via flags govern queries, and the limits command can
// inspect and clear them mid-session.
func TestLimitsGovernSession(t *testing.T) {
	script := strings.Join([]string{
		"gen R x uniform 50 1 seed=1",
		"gen S x uniform 40 1 seed=2",
		"limits",
		"SELECT COUNT(*) FROM R, S WHERE R.x = S.x", // budget hit
		"limits off",
		"SELECT COUNT(*) FROM R, S WHERE R.x = S.x", // now succeeds
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, els.Limits{MaxTuples: 1}, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "tuples=1") {
		t.Errorf("limits command does not show flag-provided budget:\n%s", got)
	}
	if !strings.Contains(got, "budget exceeded") {
		t.Errorf("budgeted query did not fail:\n%s", got)
	}
	if !strings.Contains(got, "2000 row(s)") {
		t.Errorf("query after 'limits off' did not succeed:\n%s", got)
	}
}
