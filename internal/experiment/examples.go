package experiment

import (
	"fmt"
	"strings"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/selest"
)

// WorkedExample is the reproduction of one of the paper's inline numeric
// examples, with the paper's expected value attached.
type WorkedExample struct {
	// ID names the exhibit (e.g. "Example 2").
	ID string
	// Description explains what is computed.
	Description string
	// Got is the value this implementation produces.
	Got float64
	// Want is the value printed in the paper.
	Want float64
}

// Matches reports whether the reproduction hits the paper's number exactly.
func (w WorkedExample) Matches() bool { return w.Got == w.Want }

// String renders one line of the examples report.
func (w WorkedExample) String() string {
	status := "OK"
	if !w.Matches() {
		status = "MISMATCH"
	}
	return fmt.Sprintf("%-12s %-58s got %-12g want %-12g %s", w.ID, w.Description, w.Got, w.Want, status)
}

// example1bEstimator builds the estimator over the Examples 1–3 statistics
// under the given config.
func example1bEstimator(cfg cardest.Config) (*cardest.Estimator, error) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("R1", 100, map[string]float64{"x": 10}))
	cat.MustAddTable(catalog.SimpleTable("R2", 1000, map[string]float64{"y": 100}))
	cat.MustAddTable(catalog.SimpleTable("R3", 1000, map[string]float64{"z": 1000}))
	tabs := []cardest.TableRef{{Table: "R1"}, {Table: "R2"}, {Table: "R3"}}
	preds := []expr.Predicate{
		expr.NewJoin(expr.ColumnRef{Table: "R1", Column: "x"}, expr.OpEQ, expr.ColumnRef{Table: "R2", Column: "y"}),
		expr.NewJoin(expr.ColumnRef{Table: "R2", Column: "y"}, expr.OpEQ, expr.ColumnRef{Table: "R3", Column: "z"}),
	}
	return cardest.New(cat, tabs, preds, cfg)
}

// RunWorkedExamples reproduces every inline numeric exhibit of the paper:
// Example 1b (Equations 2 and 3), Example 2 (Rule M), Example 3 (Rules SS
// and LS), the representative-selectivity argument of Section 3.3, the urn
// model numbers of Section 5, and the single-table j-equivalence numbers of
// Section 6.
func RunWorkedExamples() ([]WorkedExample, error) {
	var out []WorkedExample
	add := func(id, desc string, got, want float64) {
		out = append(out, WorkedExample{ID: id, Description: desc, Got: got, Want: want})
	}

	// --- Example 1b: two-way and three-way sizes.
	els, err := example1bEstimator(cardest.ELS())
	if err != nil {
		return nil, err
	}
	twoWay, err := els.FinalSize([]string{"R2", "R3"})
	if err != nil {
		return nil, err
	}
	add("Example 1b", "‖R2⋈R3‖ via Equation 2", twoWay, 1000)
	threeWay, err := els.OracleSize([]string{"R1", "R2", "R3"})
	if err != nil {
		return nil, err
	}
	add("Example 1b", "‖R1⋈R2⋈R3‖ via Equation 3", threeWay, 1000)

	// --- Example 2: Rule M underestimates.
	sm, err := example1bEstimator(cardest.SM().WithClosure())
	if err != nil {
		return nil, err
	}
	mSize, err := sm.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		return nil, err
	}
	add("Example 2", "Rule M along R2,R3,R1 (correct: 1000)", mSize, 1)

	// --- Example 3: Rule SS underestimates; Rule LS is exact.
	sss, err := example1bEstimator(cardest.SSS().WithClosure())
	if err != nil {
		return nil, err
	}
	ssSize, err := sss.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		return nil, err
	}
	add("Example 3", "Rule SS along R2,R3,R1 (correct: 1000)", ssSize, 100)
	lsSize, err := els.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		return nil, err
	}
	add("Example 3", "Rule LS along R2,R3,R1", lsSize, 1000)

	// --- Section 3.3: no representative selectivity can be right.
	repHi, err := example1bEstimator(cardest.Config{
		Rule: cardest.RuleRepresentative, ApplyClosure: true, Rep: cardest.RepLargest,
		Sel: selest.DefaultOptions(),
	})
	if err != nil {
		return nil, err
	}
	hi, err := repHi.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		return nil, err
	}
	add("Section 3.3", "representative selectivity 0.01 (too high)", hi, 10000)
	repLo, err := example1bEstimator(cardest.Config{
		Rule: cardest.RuleRepresentative, ApplyClosure: true, Rep: cardest.RepSmallest,
		Sel: selest.DefaultOptions(),
	})
	if err != nil {
		return nil, err
	}
	lo, err := repLo.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		return nil, err
	}
	add("Section 3.3", "representative selectivity 0.001 (too low)", lo, 100)

	// --- Section 5: urn model vs linear reduction.
	add("Section 5", "urn d′ for d=10000, ‖R‖′=50000", selest.UrnDistinctCeil(10000, 50000), 9933)
	add("Section 5", "linear d′ for d=10000, ‖R‖=100000, ‖R‖′=50000", selest.LinearDistinct(10000, 100000, 50000), 5000)
	add("Section 5", "urn d′ at full retention ‖R‖′=‖R‖", selest.UrnDistinctCeil(10000, 100000), 10000)

	// --- Section 6: single-table j-equivalent columns.
	ts := catalog.SimpleTable("R2", 1000, map[string]float64{"y": 10, "w": 50})
	eff, err := selest.EffectiveTable(ts, []expr.Predicate{
		expr.NewJoin(expr.ColumnRef{Table: "R2", Column: "y"}, expr.OpEQ, expr.ColumnRef{Table: "R2", Column: "w"}),
	}, nil, selest.DefaultOptions())
	if err != nil {
		return nil, err
	}
	add("Section 6", "‖R2‖′ = ⌈1000/50⌉ with (R2.y = R2.w)", eff.Card, 20)
	dEff, err := eff.ColumnCard("y")
	if err != nil {
		return nil, err
	}
	add("Section 6", "effective join cardinality ⌈10(1−0.9²⁰)⌉", dEff, 9)

	return out, nil
}

// FormatWorkedExamples renders the examples report.
func FormatWorkedExamples(examples []WorkedExample) string {
	var b strings.Builder
	b.WriteString("Worked examples (paper value vs reproduction)\n")
	for _, ex := range examples {
		b.WriteString(ex.String())
		b.WriteByte('\n')
	}
	return b.String()
}
