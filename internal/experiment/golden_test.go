package experiment

import (
	"fmt"
	"strings"
	"testing"
)

// The golden T1 pin: the scale-1 estimated sizes rendered to six
// significant digits must equal the paper's printed values digit for
// digit — not merely within a tolerance. These numbers are pure
// statistics arithmetic (no data, no clocks), so any drift is a real
// estimator regression: a changed selectivity rule, closure, or effective
// statistic.
func TestSection8GoldenEstimates(t *testing.T) {
	res, err := RunSection8(Section8Options{Scale: 1, SkipExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		algorithm string
		order     string
		sizes     []string
	}{
		{"SM", "S M B G", []string{"100", "100", "100"}},
		{"SM", "S B M G", []string{"0.2", "4e-08", "4e-21"}},   // paper: (0.2, 4·10⁻⁸, 4·10⁻²¹)
		{"SSS", "S B M G", []string{"0.2", "0.0004", "4e-07"}}, // paper: (0.2, 4·10⁻⁴, 4·10⁻⁷)
		{"ELS", "S B M G", []string{"100", "100", "100"}},      // paper: (100, 100, 100)
	}
	if len(res.Rows) != len(golden) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(golden))
	}
	for i, g := range golden {
		row := res.Rows[i]
		if row.Algorithm != g.algorithm {
			t.Errorf("row %d algorithm = %s, want %s", i, row.Algorithm, g.algorithm)
		}
		if got := strings.Join(row.JoinOrder, " "); got != g.order {
			t.Errorf("row %d join order = %q, want %q", i, got, g.order)
		}
		if len(row.EstimatedSizes) != len(g.sizes) {
			t.Fatalf("row %d has %d estimates, want %d", i, len(row.EstimatedSizes), len(g.sizes))
		}
		for j, want := range g.sizes {
			if got := fmt.Sprintf("%.6g", row.EstimatedSizes[j]); got != want {
				t.Errorf("row %d (%s) step %d estimate = %s, want %s digit-for-digit",
					i, g.algorithm, j, got, want)
			}
		}
	}
}
