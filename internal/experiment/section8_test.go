package experiment

import (
	"math"
	"strings"
	"testing"
)

// The scale-10 Section 8 run is the workhorse test: fast, deterministic,
// and it checks the three headline properties of the paper's table — (i)
// all four plans compute the same correct count, (ii) the misestimating
// algorithms' estimates collapse toward zero while ELS stays exact, and
// (iii) ELS's plan does an order of magnitude less work.
func TestRunSection8Scale10(t *testing.T) {
	res, err := RunSection8(Section8Options{Scale: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	if res.CorrectSize != 10 {
		t.Fatalf("correct size = %g, want 10", res.CorrectSize)
	}
	labels := []string{"SM", "SM", "SSS", "ELS"}
	for i, row := range res.Rows {
		if row.Algorithm != labels[i] {
			t.Errorf("row %d algorithm = %s, want %s", i, row.Algorithm, labels[i])
		}
		if row.TrueCount != 10 {
			t.Errorf("row %d true count = %d, want 10 (all plans must be correct)", i, row.TrueCount)
		}
		if len(row.JoinOrder) != 4 || len(row.EstimatedSizes) != 3 || len(row.Methods) != 3 {
			t.Errorf("row %d shape wrong: %+v", i, row)
		}
		// Assert on the deterministic work counters only: wall-clock can
		// legitimately measure ~0 on coarse clocks or very fast runs.
		if row.Stats.TuplesScanned <= 0 || row.Stats.RowsProduced <= 0 {
			t.Errorf("row %d missing execution stats: %+v", i, row.Stats)
		}
	}
	smPTC, sssPTC, els := res.Rows[1], res.Rows[2], res.Rows[3]
	// ELS estimates the correct size at every step.
	for _, s := range els.EstimatedSizes {
		if s != 10 {
			t.Errorf("ELS estimate %g, want 10", s)
		}
	}
	// The misestimating algorithms drive their final estimates far below 1.
	if smPTC.EstimatedSizes[2] > 1e-10 {
		t.Errorf("SM+PTC final estimate %g, should collapse toward 0", smPTC.EstimatedSizes[2])
	}
	if sssPTC.EstimatedSizes[2] > 1e-3 {
		t.Errorf("SSS+PTC final estimate %g, should be far below 10", sssPTC.EstimatedSizes[2])
	}
	// The reproduction's headline: ELS's plan does much less work than
	// every other configuration.
	for i := 0; i < 3; i++ {
		ratio := float64(res.Rows[i].Stats.TuplesScanned) / float64(els.Stats.TuplesScanned)
		if ratio < 1.5 {
			t.Errorf("row %d work ratio vs ELS = %.2f, want > 1.5", i, ratio)
		}
	}
	// And the misestimating PTC rows pay for their nested-loops rescans.
	if smPTC.Stats.TuplesScanned < 5*els.Stats.TuplesScanned {
		t.Errorf("SM+PTC work (%d) should dwarf ELS (%d)", smPTC.Stats.TuplesScanned, els.Stats.TuplesScanned)
	}
}

// Estimates-only mode must reproduce the paper's exact numbers at scale 1
// without generating data.
func TestRunSection8EstimatesOnlyPaperNumbers(t *testing.T) {
	res, err := RunSection8(Section8Options{Scale: 1, SkipExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		row  int
		want []float64
	}{
		{1, []float64{0.2, 4e-8, 4e-21}}, // SM + PTC (paper row 2)
		{2, []float64{0.2, 4e-4, 4e-7}},  // SSS + PTC (paper row 3)
		{3, []float64{100, 100, 100}},    // ELS (paper row 4)
	}
	for _, c := range checks {
		got := res.Rows[c.row].EstimatedSizes
		for i := range c.want {
			if math.Abs(got[i]-c.want[i]) > 1e-9*math.Abs(c.want[i]) {
				t.Errorf("row %d step %d = %g, want %g (paper)", c.row, i, got[i], c.want[i])
			}
		}
	}
	// Without execution no stats are collected.
	if res.Rows[0].Stats.TuplesScanned != 0 || res.Rows[0].TrueCount != 0 {
		t.Error("SkipExecution must not execute")
	}
}

// A6: with indexes on every join column and index-nested-loops enabled,
// the work gap between algorithms collapses — misestimation is forgiven by
// a forgiving access-path design. (The estimates themselves stay wrong.)
func TestSection8WithIndexes(t *testing.T) {
	plain, err := RunSection8(Section8Options{Scale: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := RunSection8(Section8Options{Scale: 10, Seed: 42, WithIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	var worstIdx, bestIdx int64
	for i, row := range idx.Rows {
		if row.TrueCount != 10 {
			t.Errorf("row %d count = %d, want 10", i, row.TrueCount)
		}
		if worstIdx == 0 || row.Stats.TuplesScanned > worstIdx {
			worstIdx = row.Stats.TuplesScanned
		}
		if bestIdx == 0 || row.Stats.TuplesScanned < bestIdx {
			bestIdx = row.Stats.TuplesScanned
		}
		// Indexed plans must do far less work than the unindexed ones.
		if row.Stats.TuplesScanned*10 > plain.Rows[i].Stats.TuplesScanned {
			t.Errorf("row %d: indexed work %d not ≪ plain %d",
				i, row.Stats.TuplesScanned, plain.Rows[i].Stats.TuplesScanned)
		}
	}
	// The between-algorithm gap collapses: worst/best within 3x (plain
	// Section 8 shows ~10x).
	if bestIdx > 0 && float64(worstIdx)/float64(bestIdx) > 3 {
		t.Errorf("indexed work gap %d/%d should be small", worstIdx, bestIdx)
	}
	// Estimates-only mode cannot index.
	if _, err := RunSection8(Section8Options{Scale: 10, SkipExecution: true, WithIndexes: true}); err == nil {
		t.Error("WithIndexes without execution should error")
	}
}

func TestSection8DefaultScale(t *testing.T) {
	res, err := RunSection8(Section8Options{SkipExecution: true, Scale: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scale != 1 || res.CorrectSize != 100 {
		t.Errorf("default scale handling: %+v", res)
	}
}

func TestSection8CatalogSynthetic(t *testing.T) {
	cat, err := Section8Catalog(Section8Options{Scale: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Table("G").Card != 100000 {
		t.Errorf("‖G‖ = %g", cat.Table("G").Card)
	}
	if cat.Data("G") != nil {
		t.Error("synthetic catalog should have no data")
	}
	q, err := ParseSection8Query(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !q.CountStar || len(q.Where) != 4 {
		t.Errorf("parsed query wrong: %+v", q)
	}
	if q.Where[0].Left.Table != "S" {
		t.Errorf("binding failed: %v", q.Where[0])
	}
}

func TestSection8CatalogWithData(t *testing.T) {
	cat, err := Section8Catalog(Section8Options{Scale: 100, Seed: 7}, true)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Data("S") == nil || cat.Data("S").NumRows() != 10 {
		t.Error("data catalog should carry generated tables")
	}
	// ANALYZE should have recovered the paper's statistics exactly (the
	// permutation generator gives d = ‖R‖).
	if got := cat.Table("B").Column("b").Distinct; got != 500 {
		t.Errorf("d_b = %g, want 500", got)
	}
}

func TestFormatSection8(t *testing.T) {
	res, err := RunSection8(Section8Options{Scale: 1, SkipExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSection8(res)
	for _, want := range []string{"ELS", "SSS", "Orig. + PTC", "Join Order"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 5 {
		t.Errorf("formatted table too short:\n%s", out)
	}
}
