package experiment

import (
	"fmt"
	"strings"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/expr"
)

// SampledStatsRow compares ELS estimates computed from exact versus
// sampled statistics at one sample rate.
type SampledStatsRow struct {
	// SampleRows is the per-table sample size (0 = exact ANALYZE).
	SampleRows int
	// DistinctErr is the mean relative error of the estimated column
	// cardinalities d̂ vs the exact d, across join columns.
	DistinctErr float64
	// EstimateQError is the q-error of the ELS final-size estimate computed
	// from the (possibly sampled) statistics, vs the estimate from exact
	// statistics (which for this workload equals the Equation 3 truth).
	EstimateQError float64
}

// RunSampledStats is the A7 ablation: how does sampling-based ANALYZE
// (reservoir + Chao estimator) degrade Algorithm ELS's estimates? A 3-table
// chain over skewless uniform data is analyzed exactly and at several
// sample sizes; the ELS estimate from exact statistics is the baseline
// (it equals Equation 3 on this workload).
func RunSampledStats(tableRows int, sampleSizes []int, seed int64) ([]SampledStatsRow, error) {
	if tableRows <= 0 {
		return nil, fmt.Errorf("experiment: tableRows must be positive")
	}
	specs := []datagen.TableSpec{
		{Name: "X", Rows: tableRows, Columns: []datagen.ColumnSpec{{Name: "k", Dist: datagen.DistUniform, Domain: tableRows / 4}}},
		{Name: "Y", Rows: tableRows * 2, Columns: []datagen.ColumnSpec{{Name: "k", Dist: datagen.DistUniform, Domain: tableRows / 2}}},
		{Name: "Z", Rows: tableRows * 3, Columns: []datagen.ColumnSpec{{Name: "k", Dist: datagen.DistUniform, Domain: tableRows}}},
	}
	tables := make([]*catalog.TableStats, 0, len(specs))
	data := catalog.New()
	for i, spec := range specs {
		tbl, err := datagen.Generate(spec, seed+int64(i))
		if err != nil {
			return nil, err
		}
		ts, err := data.Analyze(tbl, catalog.AnalyzeOptions{})
		if err != nil {
			return nil, err
		}
		tables = append(tables, ts)
	}
	preds := []expr.Predicate{
		expr.NewJoin(expr.ColumnRef{Table: "X", Column: "k"}, expr.OpEQ, expr.ColumnRef{Table: "Y", Column: "k"}),
		expr.NewJoin(expr.ColumnRef{Table: "Y", Column: "k"}, expr.OpEQ, expr.ColumnRef{Table: "Z", Column: "k"}),
	}
	refs := []cardest.TableRef{{Table: "X"}, {Table: "Y"}, {Table: "Z"}}
	order := []string{"X", "Y", "Z"}

	exactEst, err := cardest.New(data, refs, preds, cardest.ELS())
	if err != nil {
		return nil, err
	}
	baseline, err := exactEst.FinalSize(order)
	if err != nil {
		return nil, err
	}

	rows := []SampledStatsRow{{SampleRows: 0, DistinctErr: 0, EstimateQError: 1}}
	for _, n := range sampleSizes {
		sampled := catalog.New()
		var distErr float64
		for i, spec := range specs {
			tbl := data.Data(spec.Name)
			ts, err := sampled.AnalyzeSample(tbl, catalog.SampleOptions{Rows: n, Seed: seed + int64(100+i)})
			if err != nil {
				return nil, err
			}
			exact := tables[i].Column("k").Distinct
			est := ts.Column("k").Distinct
			if exact > 0 {
				d := (est - exact) / exact
				if d < 0 {
					d = -d
				}
				distErr += d
			}
		}
		distErr /= float64(len(specs))
		est, err := cardest.New(sampled, refs, preds, cardest.ELS())
		if err != nil {
			return nil, err
		}
		size, err := est.FinalSize(order)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SampledStatsRow{
			SampleRows:     n,
			DistinctErr:    distErr,
			EstimateQError: qerr(size, baseline),
		})
	}
	return rows, nil
}

// FormatSampledStats renders the A7 table.
func FormatSampledStats(rows []SampledStatsRow) string {
	var b strings.Builder
	b.WriteString("A7: ELS estimate quality under sampling-based ANALYZE (Chao estimator)\n")
	fmt.Fprintf(&b, "%12s %18s %18s\n", "sample rows", "mean |d̂−d|/d", "estimate q-error")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.SampleRows)
		if r.SampleRows == 0 {
			label = "exact"
		}
		fmt.Fprintf(&b, "%12s %18.4f %18.4f\n", label, r.DistinctErr, r.EstimateQError)
	}
	return b.String()
}
