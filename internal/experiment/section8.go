// Package experiment contains the reproduction harnesses: the Section 8
// end-to-end experiment (the paper's only results table) and the ablation
// sweeps motivated by the paper's analysis and future-work discussion.
// Every table and worked example in the paper maps to a runner here; the
// root bench_test.go and cmd/elsbench expose them.
package experiment

import (
	"fmt"
	"strings"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Section8Query is the experiment's SQL text (the paper's original query,
// before predicate transitive closure).
const Section8Query = "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100"

// Section8Options configures the Section 8 run.
type Section8Options struct {
	// Scale divides every table cardinality (1 = the paper's sizes:
	// ‖S‖=1000 … ‖G‖=100000; 10 is a fast smoke-test scale). The selection
	// constant scales along (s < 100/scale) so the result stays "exactly
	// 100/scale rows".
	Scale int
	// Seed drives the data generator.
	Seed int64
	// SkipExecution computes plans and estimates only (no data generation
	// or execution); timings are zero.
	SkipExecution bool
	// WithIndexes builds an ordered index on every join column and adds the
	// index-nested-loops method to the optimizer repertoire — the A6
	// ablation: a forgiving physical design shrinks the penalty of bad
	// estimates because even a misplaced table access is an index probe,
	// not a rescan.
	WithIndexes bool
	// Workers sets the intra-query parallelism of planning and execution
	// (0 = GOMAXPROCS, 1 = serial). The counts and tuple counters are
	// worker-invariant; only wall-clock changes.
	Workers int
	// DisableColumnar forces the row-at-a-time engine for the executed
	// queries. Counts and work counters are engine-invariant (the
	// differential harness pins that); only wall-clock changes, which is
	// exactly what the columnar-speedup benchmark measures.
	DisableColumnar bool
}

// Section8Row is one line of the reproduced table.
type Section8Row struct {
	// Query labels the predicate set the optimizer saw: "Orig." or
	// "Orig. + PTC" (matching the paper's first column).
	Query string
	// Algorithm is SM, SSS or ELS.
	Algorithm string
	// JoinOrder is the base-table order of the chosen left-deep plan.
	JoinOrder []string
	// Methods are the join methods along the plan, innermost first.
	Methods []string
	// EstimatedSizes are the estimated intermediate result sizes after each
	// join, innermost first (the paper's "Estimated Result Sizes" column).
	EstimatedSizes []float64
	// EstimatedCost is the optimizer's cost for the chosen plan.
	EstimatedCost float64
	// TrueCount is the executed COUNT(*) (identical across rows).
	TrueCount int64
	// Stats are the execution work counters and wall time.
	Stats executor.Stats
	// Plan is the formatted plan tree.
	Plan string
}

// Section8Result is the full reproduced table.
type Section8Result struct {
	// Rows are in the paper's order: SM, SM+PTC, SSS+PTC, ELS.
	Rows []Section8Row
	// CorrectSize is the exact result size (100/scale), which the paper
	// notes is the correct intermediate size after every subset of joins
	// (with the implied local predicates applied).
	CorrectSize float64
	// Scale echoes the option.
	Scale int
}

// Section8Catalog builds the experiment's catalog. With data=true the
// tables are generated (join columns are permutations, so uniformity and
// containment hold exactly) and ANALYZEd; otherwise the paper's statistics
// are declared synthetically.
func Section8Catalog(opts Section8Options, data bool) (*catalog.Catalog, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	cat := catalog.New()
	if !data {
		cat.MustAddTable(catalog.SimpleTable("S", 1000/float64(opts.Scale), map[string]float64{"s": 1000 / float64(opts.Scale)}))
		cat.MustAddTable(catalog.SimpleTable("M", 10000/float64(opts.Scale), map[string]float64{"m": 10000 / float64(opts.Scale)}))
		cat.MustAddTable(catalog.SimpleTable("B", 50000/float64(opts.Scale), map[string]float64{"b": 50000 / float64(opts.Scale)}))
		cat.MustAddTable(catalog.SimpleTable("G", 100000/float64(opts.Scale), map[string]float64{"g": 100000 / float64(opts.Scale)}))
		return cat, nil
	}
	s, m, b, g, err := datagen.PaperTables(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	for _, tbl := range []*storage.Table{s, m, b, g} {
		if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{}); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// section8Predicates returns the original query's predicates with the
// selection constant scaled.
func section8Predicates(scale int) []expr.Predicate {
	cut := int64(100 / scale)
	if cut < 1 {
		cut = 1
	}
	return []expr.Predicate{
		expr.NewJoin(expr.ColumnRef{Table: "S", Column: "s"}, expr.OpEQ, expr.ColumnRef{Table: "M", Column: "m"}),
		expr.NewJoin(expr.ColumnRef{Table: "M", Column: "m"}, expr.OpEQ, expr.ColumnRef{Table: "B", Column: "b"}),
		expr.NewJoin(expr.ColumnRef{Table: "B", Column: "b"}, expr.OpEQ, expr.ColumnRef{Table: "G", Column: "g"}),
		expr.NewConst(expr.ColumnRef{Table: "S", Column: "s"}, expr.OpLT, storage.Int64(cut)),
	}
}

func section8Tables() []cardest.TableRef {
	return []cardest.TableRef{{Table: "S"}, {Table: "M"}, {Table: "B"}, {Table: "G"}}
}

// RunSection8 reproduces the paper's Section 8 table: four optimizer
// configurations planning and executing the same query over the same data.
func RunSection8(opts Section8Options) (*Section8Result, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	cat, err := Section8Catalog(opts, !opts.SkipExecution)
	if err != nil {
		return nil, err
	}
	optOptions := optimizer.PaperOptions()
	optOptions.Workers = opts.Workers
	if opts.WithIndexes {
		if opts.SkipExecution {
			return nil, fmt.Errorf("experiment: WithIndexes requires execution (data to index)")
		}
		for table, col := range map[string]string{"S": "s", "M": "m", "B": "b", "G": "g"} {
			if err := cat.BuildIndex(table, col); err != nil {
				return nil, err
			}
		}
		optOptions.Methods = append(optOptions.Methods, optimizer.IndexNL)
	}
	preds := section8Predicates(opts.Scale)
	runs := []struct {
		query string
		cfg   cardest.Config
	}{
		{"Orig.", cardest.SM()},
		{"Orig. + PTC", cardest.SM().WithClosure()},
		{"Orig. + PTC", cardest.SSS().WithClosure()},
		{"Orig.", cardest.ELS()},
	}
	result := &Section8Result{
		CorrectSize: 100 / float64(opts.Scale),
		Scale:       opts.Scale,
	}
	exec := executor.New(cat)
	exec.SetWorkers(opts.Workers)
	exec.SetColumnar(!opts.DisableColumnar)
	for _, run := range runs {
		est, err := cardest.New(cat, section8Tables(), preds, run.cfg)
		if err != nil {
			return nil, err
		}
		opt, err := optimizer.New(est, optOptions)
		if err != nil {
			return nil, err
		}
		plan, err := opt.BestPlan()
		if err != nil {
			return nil, err
		}
		row := Section8Row{
			Query:          run.query,
			Algorithm:      run.cfg.Name(),
			JoinOrder:      optimizer.JoinOrder(plan),
			EstimatedSizes: optimizer.StepSizes(plan),
			EstimatedCost:  plan.Cost(),
			Plan:           optimizer.Format(plan),
			Methods:        planMethods(plan),
		}
		if !opts.SkipExecution {
			count, stats, err := exec.Count(plan)
			if err != nil {
				return nil, err
			}
			row.TrueCount = count
			row.Stats = stats
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func planMethods(p optimizer.Plan) []string {
	var out []string
	var walk func(optimizer.Plan)
	walk = func(n optimizer.Plan) {
		if j, ok := n.(*optimizer.Join); ok {
			walk(j.Left)
			out = append(out, j.Method.String())
		}
	}
	walk(p)
	return out
}

// FormatSection8 renders the result like the paper's table.
func FormatSection8(res *Section8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 8 experiment (scale 1/%d, correct size %.0f)\n", res.Scale, res.CorrectSize)
	fmt.Fprintf(&b, "%-12s %-5s %-22s %-34s %12s %14s %10s\n",
		"Query", "Algo", "Join Order", "Estimated Result Sizes", "TrueCount", "TuplesScanned", "Elapsed")
	for _, r := range res.Rows {
		sizes := make([]string, len(r.EstimatedSizes))
		for i, s := range r.EstimatedSizes {
			sizes[i] = fmt.Sprintf("%.3g", s)
		}
		fmt.Fprintf(&b, "%-12s %-5s %-22s %-34s %12d %14d %10s\n",
			r.Query, r.Algorithm,
			strings.Join(r.JoinOrder, "⋈"),
			"("+strings.Join(sizes, ", ")+")",
			r.TrueCount, r.Stats.TuplesScanned, r.Stats.Elapsed.Round(100_000).String())
	}
	return b.String()
}

// ParseSection8Query parses and binds the experiment's SQL text against a
// Section 8 catalog; provided so examples can show the SQL front end
// producing the same predicate set the harness uses.
func ParseSection8Query(cat *catalog.Catalog) (*sqlparse.Query, error) {
	return sqlparse.ParseAndBind(Section8Query, cat)
}
