package experiment

import (
	"encoding/json"
	"fmt"

	"repro/internal/durable"
)

// BenchResult is one experiment's machine-readable measurement. cmd/elsbench
// collects one per experiment run and emits them as BENCH_results.json so CI
// can archive timings without scraping the human-formatted tables.
type BenchResult struct {
	// Experiment is the -experiment selector name ("section8", "zipf", ...).
	Experiment string `json:"experiment"`
	// Workers is the resolved intra-query worker count the run used. The
	// estimator-only sweeps are serial by construction and report 1.
	Workers int `json:"workers"`
	// WallMillis is the experiment's wall-clock time in milliseconds.
	WallMillis float64 `json:"wall_ms"`
	// TuplesScanned sums the executor work counters across the experiment's
	// queries; 0 for estimates-only runs and estimator-only sweeps.
	TuplesScanned int64 `json:"tuples_scanned"`
}

// BenchReport is the top-level BENCH_results.json document.
type BenchReport struct {
	// Scale and Seed echo the flags so a result file is self-describing.
	Scale int   `json:"scale"`
	Seed  int64 `json:"seed"`
	// GoMaxProcs records the machine parallelism available to the run —
	// needed to interpret Workers > GoMaxProcs results (no real speedup
	// possible).
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
	// RecoveryMillis is the wall-clock time of the durable crash-recovery
	// measurement (els.Open replaying checkpoint + WAL), when the run
	// included one; 0 otherwise.
	RecoveryMillis float64 `json:"recovery_ms"`
	// RecoveryReplayedRecords and RecoveryWALBytes describe what that
	// recovery actually replayed: WAL records applied on top of the
	// checkpoint, and the WAL bytes read to do it.
	RecoveryReplayedRecords int   `json:"recovery_replayed_records"`
	RecoveryWALBytes        int64 `json:"recovery_wal_bytes"`
	// Replicas is the follower count of the replication measurement
	// (-replicas with -data-dir); 0 when the run had none.
	Replicas int `json:"replicas"`
	// ReplicaCatchupMillis is the wall-clock time for that many cold
	// followers to attach and catch up to the primary's catalog version.
	ReplicaCatchupMillis float64 `json:"replica_catchup_ms"`
	// ReplicaReadsPerSec is the aggregate estimate throughput of the
	// caught-up follower fleet.
	ReplicaReadsPerSec float64 `json:"replica_reads_per_sec"`
	// CacheHitRate is the plan-cache hit rate of the repeated-query
	// workload (the "repeated" experiment): hits / (hits + misses) over a
	// Zipf-skewed re-issue schedule. 0 when the run did not include it.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// ColumnarSpeedup is the row-engine / columnar-engine ratio of summed
	// per-query execution time on the Section 8 experiment (> 1 means the
	// columnar engine is faster). 0 when the run skipped execution.
	ColumnarSpeedup float64 `json:"columnar_speedup"`
	// ServerP99Millis is the client-observed p99 round-trip latency of
	// the wire-server swarm benchmark (-server). 0 when the run did not
	// include it.
	ServerP99Millis float64 `json:"server_p99_ms"`
	// ShedRate is the fraction of the -server swarm's requests shed with
	// the typed overload error — the admission bulkhead engaging under
	// the benchmark's deliberate oversubscription. 0 when absent.
	ShedRate float64 `json:"shed_rate"`
	// SpillRate is the fraction of the memory-governance workload's
	// queries (-max-memory) whose hash-join build sides exceeded the byte
	// budget and spilled to disk. 0 when the run had no memory leg.
	SpillRate float64 `json:"spill_rate"`
	// PeakQueryBytes is the largest per-query byte-ledger high-water mark
	// the memory-governance workload observed — how much working memory
	// the hungriest query would have held without a budget. 0 when absent.
	PeakQueryBytes int64 `json:"peak_query_bytes"`
	// MemorySpilledBytes is the total run volume the workload's spilling
	// joins wrote to disk. 0 when absent.
	MemorySpilledBytes int64 `json:"memory_spilled_bytes"`
}

// SumTuplesScanned totals the executor work across a Section 8 table's rows.
func SumTuplesScanned(res *Section8Result) int64 {
	var total int64
	for _, row := range res.Rows {
		total += row.Stats.TuplesScanned
	}
	return total
}

// SumExecMillis totals the pure execution wall time across a Section 8
// table's rows — planning and data generation excluded — which is the
// quantity the columnar-vs-row speedup compares.
func SumExecMillis(res *Section8Result) float64 {
	var total float64
	for _, row := range res.Rows {
		total += float64(row.Stats.Elapsed.Microseconds()) / 1000
	}
	return total
}

// WriteBenchJSON writes the report as indented JSON to path,
// crash-atomically: CI never archives a torn result file.
func WriteBenchJSON(path string, rep *BenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: marshal bench report: %w", err)
	}
	if err := durable.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("experiment: write bench report: %w", err)
	}
	return nil
}
