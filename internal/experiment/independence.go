package experiment

import (
	"fmt"
	"strings"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// IndependenceRow reports estimate vs executed truth for one correlation
// setting of the A8 ablation.
type IndependenceRow struct {
	// Correlated reports whether the two predicated columns were generated
	// as a deterministic function of each other (true) or independently
	// (false).
	Correlated bool
	// TrueSize is the executed result size.
	TrueSize float64
	// Estimate is the ELS estimate (which multiplies the two local
	// selectivities under the independence assumption).
	Estimate float64
	// QError is the q-error of the estimate.
	QError float64
}

// RunIndependenceSweep probes the paper's third core assumption: that
// values in distinct columns are independent. A table carries two columns
// x and y over the same domain; two local range predicates select the same
// fraction of each. With independent columns the multiplied selectivities
// are right; with y a deterministic function of x the true selectivity is
// that of a single predicate and the independence assumption squares it —
// a quadratic underestimate the paper's Section 9 leaves to future work.
func RunIndependenceSweep(rows, domain int, cutFraction float64, seed int64) ([]IndependenceRow, error) {
	if rows <= 0 || domain <= 0 || cutFraction <= 0 || cutFraction > 1 {
		return nil, fmt.Errorf("experiment: need positive rows/domain and cut in (0,1]")
	}
	cut := int64(float64(domain) * cutFraction)
	if cut < 1 {
		cut = 1
	}
	var out []IndependenceRow
	for _, correlated := range []bool{false, true} {
		spec := datagen.TableSpec{
			Name: "C",
			Rows: rows,
			Columns: []datagen.ColumnSpec{
				{Name: "x", Dist: datagen.DistUniform, Domain: domain},
			},
		}
		if correlated {
			spec.Columns = append(spec.Columns,
				datagen.ColumnSpec{Name: "y", CorrelatedWith: "x", Domain: domain})
		} else {
			spec.Columns = append(spec.Columns,
				datagen.ColumnSpec{Name: "y", Dist: datagen.DistUniform, Domain: domain})
		}
		tbl, err := datagen.Generate(spec, seed)
		if err != nil {
			return nil, err
		}
		cat := catalog.New()
		if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{}); err != nil {
			return nil, err
		}
		preds := []expr.Predicate{
			expr.NewConst(expr.ColumnRef{Table: "C", Column: "x"}, expr.OpLT, storage.Int64(cut)),
			expr.NewConst(expr.ColumnRef{Table: "C", Column: "y"}, expr.OpLT, storage.Int64(cut)),
		}
		est, err := cardest.New(cat, []cardest.TableRef{{Table: "C"}}, preds, cardest.ELS())
		if err != nil {
			return nil, err
		}
		estimate, err := est.BaseSize("C")
		if err != nil {
			return nil, err
		}
		opt, err := optimizer.New(est, optimizer.PaperOptions())
		if err != nil {
			return nil, err
		}
		plan, err := opt.BestPlan()
		if err != nil {
			return nil, err
		}
		count, _, err := executor.New(cat).Count(plan)
		if err != nil {
			return nil, err
		}
		out = append(out, IndependenceRow{
			Correlated: correlated,
			TrueSize:   float64(count),
			Estimate:   estimate,
			QError:     qerr(estimate, float64(count)),
		})
	}
	return out, nil
}

// FormatIndependenceSweep renders the A8 table.
func FormatIndependenceSweep(rows []IndependenceRow) string {
	var b strings.Builder
	b.WriteString("A8: independence assumption — two equally selective local predicates\n")
	fmt.Fprintf(&b, "%12s %12s %14s %10s\n", "columns", "true size", "ELS estimate", "q-error")
	for _, r := range rows {
		label := "independent"
		if r.Correlated {
			label = "correlated"
		}
		fmt.Fprintf(&b, "%12s %12.0f %14.1f %10.3f\n", label, r.TrueSize, r.Estimate, r.QError)
	}
	return b.String()
}
