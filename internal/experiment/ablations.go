package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/selest"
	"repro/internal/storage"
)

// qerr is the standard q-error: max(est/true, true/est), 1 = perfect.
// Zero-valued sides are floored to keep the metric finite.
func qerr(est, truth float64) float64 {
	const floor = 1e-12
	if est < floor {
		est = floor
	}
	if truth < floor {
		truth = floor
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// --- A1: error propagation with chain length -------------------------------

// ChainLengthRow reports the geometric-mean q-error of each rule at one
// chain length, against the Equation 3 oracle.
type ChainLengthRow struct {
	// N is the number of tables in the chain.
	N int
	// QErrM, QErrSS, QErrLS are geometric-mean q-errors of rules M, SS, LS.
	QErrM, QErrSS, QErrLS float64
}

// RunChainLengthSweep measures how the estimation error of the three rules
// propagates as the join chain grows (the phenomenon studied analytically
// by Ioannidis & Christodoulakis, the paper's reference [4]). Rule LS stays
// at q-error 1 by the paper's theorem; M and SS diverge geometrically.
func RunChainLengthSweep(maxN, trials int, seed int64) ([]ChainLengthRow, error) {
	if maxN < 2 {
		return nil, fmt.Errorf("experiment: maxN must be >= 2, got %d", maxN)
	}
	if trials <= 0 {
		trials = 20
	}
	rng := rand.New(rand.NewSource(seed))
	var rows []ChainLengthRow
	for n := 2; n <= maxN; n++ {
		sums := map[cardest.Rule]float64{}
		for trial := 0; trial < trials; trial++ {
			cat := catalog.New()
			tabs := make([]cardest.TableRef, n)
			var preds []expr.Predicate
			order := make([]string, n)
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("T%d", i)
				card := float64(100 + rng.Intn(100000))
				d := float64(1 + rng.Intn(int(card)))
				cat.MustAddTable(catalog.SimpleTable(name, card, map[string]float64{"c": d}))
				tabs[i] = cardest.TableRef{Table: name}
				order[i] = name
				if i > 0 {
					preds = append(preds, expr.NewJoin(
						expr.ColumnRef{Table: name, Column: "c"}, expr.OpEQ,
						expr.ColumnRef{Table: fmt.Sprintf("T%d", i-1), Column: "c"}))
				}
			}
			// Shuffle the estimation order (the oracle is order-free).
			rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
			oracleEst, err := cardest.New(cat, tabs, preds, cardest.ELS())
			if err != nil {
				return nil, err
			}
			aliases := make([]string, n)
			for i := range aliases {
				aliases[i] = fmt.Sprintf("T%d", i)
			}
			truth, err := oracleEst.OracleSize(aliases)
			if err != nil {
				return nil, err
			}
			for rule, cfg := range map[cardest.Rule]cardest.Config{
				cardest.RuleM:  cardest.SM().WithClosure(),
				cardest.RuleSS: cardest.SSS().WithClosure(),
				cardest.RuleLS: cardest.ELS(),
			} {
				est, err := cardest.New(cat, tabs, preds, cfg)
				if err != nil {
					return nil, err
				}
				got, err := est.FinalSize(order)
				if err != nil {
					return nil, err
				}
				sums[rule] += math.Log(qerr(got, truth))
			}
		}
		gm := func(r cardest.Rule) float64 { return math.Exp(sums[r] / float64(trials)) }
		rows = append(rows, ChainLengthRow{N: n, QErrM: gm(cardest.RuleM), QErrSS: gm(cardest.RuleSS), QErrLS: gm(cardest.RuleLS)})
	}
	return rows, nil
}

// FormatChainLengthSweep renders the A1 table.
func FormatChainLengthSweep(rows []ChainLengthRow) string {
	var b strings.Builder
	b.WriteString("A1: geometric-mean q-error vs Equation 3 oracle by chain length\n")
	fmt.Fprintf(&b, "%4s %16s %16s %16s\n", "n", "Rule M", "Rule SS", "Rule LS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %16.4g %16.4g %16.4g\n", r.N, r.QErrM, r.QErrSS, r.QErrLS)
	}
	return b.String()
}

// --- A2: Zipf skew ----------------------------------------------------------

// ZipfRow reports estimate vs executed truth for one skew setting.
type ZipfRow struct {
	// Theta is the Zipf skew parameter (0 = uniform).
	Theta float64
	// TrueSize is the executed join size.
	TrueSize float64
	// Estimate is the ELS estimate (which assumes uniform join columns).
	Estimate float64
	// QError is the q-error of the estimate.
	QError float64
	// HistEstimate is the estimate with histogram-based join selectivity
	// (the uniformity-relaxation extension); HistQError its q-error.
	HistEstimate, HistQError float64
}

// RunZipfSweep quantifies how the uniformity assumption degrades under
// Zipf-distributed join columns — the relaxation the paper's Section 9
// names as future work. Two tables of the given sizes are joined on a
// single column drawn Zipf(theta) over the same domain.
func RunZipfSweep(rows1, rows2, domain int, thetas []float64, seed int64) ([]ZipfRow, error) {
	if rows1 <= 0 || rows2 <= 0 || domain <= 0 {
		return nil, fmt.Errorf("experiment: table sizes and domain must be positive")
	}
	var out []ZipfRow
	for i, theta := range thetas {
		cat := catalog.New()
		for j, rows := range []int{rows1, rows2} {
			tbl, err := datagen.Generate(datagen.TableSpec{
				Name: fmt.Sprintf("Z%d", j),
				Rows: rows,
				Columns: []datagen.ColumnSpec{
					{Name: "k", Dist: datagen.DistZipf, Domain: domain, Theta: theta},
				},
			}, seed+int64(i*2+j))
			if err != nil {
				return nil, err
			}
			if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{
				HistogramBuckets: 48, HistogramKind: catalog.EquiDepth,
			}); err != nil {
				return nil, err
			}
		}
		preds := []expr.Predicate{expr.NewJoin(
			expr.ColumnRef{Table: "Z0", Column: "k"}, expr.OpEQ,
			expr.ColumnRef{Table: "Z1", Column: "k"})}
		tabs := []cardest.TableRef{{Table: "Z0"}, {Table: "Z1"}}
		est, err := cardest.New(cat, tabs, preds, cardest.ELS())
		if err != nil {
			return nil, err
		}
		estimate, err := est.FinalSize([]string{"Z0", "Z1"})
		if err != nil {
			return nil, err
		}
		histCfg := cardest.ELS()
		histCfg.Sel.HistogramJoins = true
		histEst, err := cardest.New(cat, tabs, preds, histCfg)
		if err != nil {
			return nil, err
		}
		histEstimate, err := histEst.FinalSize([]string{"Z0", "Z1"})
		if err != nil {
			return nil, err
		}
		opt, err := optimizer.New(est, optimizer.PaperOptions())
		if err != nil {
			return nil, err
		}
		plan, err := opt.BestPlan()
		if err != nil {
			return nil, err
		}
		count, _, err := executor.New(cat).Count(plan)
		if err != nil {
			return nil, err
		}
		out = append(out, ZipfRow{
			Theta: theta, TrueSize: float64(count),
			Estimate: estimate, QError: qerr(estimate, float64(count)),
			HistEstimate: histEstimate, HistQError: qerr(histEstimate, float64(count)),
		})
	}
	return out, nil
}

// FormatZipfSweep renders the A2 table.
func FormatZipfSweep(rows []ZipfRow) string {
	var b strings.Builder
	b.WriteString("A2: uniformity assumption under Zipf skew (2-way join)\n")
	fmt.Fprintf(&b, "%8s %14s %14s %10s %16s %12s\n",
		"theta", "true size", "ELS estimate", "q-error", "ELS+hist est", "q-error")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f %14.0f %14.1f %10.3f %16.1f %12.3f\n",
			r.Theta, r.TrueSize, r.Estimate, r.QError, r.HistEstimate, r.HistQError)
	}
	return b.String()
}

// --- A3: urn vs linear distinct reduction -----------------------------------

// UrnRow compares the two distinct-reduction rules against measured truth
// for one selection fraction.
type UrnRow struct {
	// KeepFraction is the fraction of rows the selection retains.
	KeepFraction float64
	// TrueDistinct is the measured distinct count among surviving rows.
	TrueDistinct float64
	// UrnEstimate and LinearEstimate are the two model predictions.
	UrnEstimate, LinearEstimate float64
	// UrnQError and LinearQError are the corresponding q-errors.
	UrnQError, LinearQError float64
}

// RunUrnVsLinear generates a table with an independent selection column and
// a value column of the given distinct count, applies selections of varying
// strength, and compares the urn-model prediction of the surviving distinct
// count (Section 5) with the linear d·(k/n) rule.
func RunUrnVsLinear(rows, distinct int, fractions []float64, seed int64) ([]UrnRow, error) {
	if rows <= 0 || distinct <= 0 || distinct > rows {
		return nil, fmt.Errorf("experiment: need 0 < distinct <= rows")
	}
	tbl, err := datagen.Generate(datagen.TableSpec{
		Name: "U",
		Rows: rows,
		Columns: []datagen.ColumnSpec{
			{Name: "x", Dist: datagen.DistUniform, Domain: distinct},
			{Name: "sel", Dist: datagen.DistUniform, Domain: rows},
		},
	}, seed)
	if err != nil {
		return nil, err
	}
	var out []UrnRow
	for _, frac := range fractions {
		cut := int64(float64(rows) * frac)
		kept := 0
		seen := make(map[int64]struct{})
		for r := 0; r < tbl.NumRows(); r++ {
			if tbl.Value(r, 1).Int() < cut {
				kept++
				seen[tbl.Value(r, 0).Int()] = struct{}{}
			}
		}
		truth := float64(len(seen))
		urn := selest.ReduceDistinct(selest.ReductionUrn, float64(distinct), float64(rows), float64(kept))
		lin := selest.ReduceDistinct(selest.ReductionLinear, float64(distinct), float64(rows), float64(kept))
		out = append(out, UrnRow{
			KeepFraction: frac, TrueDistinct: truth,
			UrnEstimate: urn, LinearEstimate: lin,
			UrnQError: qerr(urn, truth), LinearQError: qerr(lin, truth),
		})
	}
	return out, nil
}

// FormatUrnVsLinear renders the A3 table.
func FormatUrnVsLinear(rows []UrnRow) string {
	var b strings.Builder
	b.WriteString("A3: surviving distinct values — urn model vs linear rule\n")
	fmt.Fprintf(&b, "%8s %14s %12s %12s %10s %10s\n", "keep", "true distinct", "urn", "linear", "q(urn)", "q(linear)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f %14.0f %12.0f %12.0f %10.3f %10.3f\n",
			r.KeepFraction, r.TrueDistinct, r.UrnEstimate, r.LinearEstimate, r.UrnQError, r.LinearQError)
	}
	return b.String()
}

// --- A4/A5: random query sweep ----------------------------------------------

// RandomQueryRow aggregates estimation and plan quality for one algorithm
// over a batch of random queries.
type RandomQueryRow struct {
	// Algorithm is the configuration name (SM, SM+PTC, SSS, ELS).
	Algorithm string
	// GeoMeanQError is the geometric mean q-error of the final-size
	// estimate vs the executed true size.
	GeoMeanQError float64
	// MaxQError is the worst q-error observed.
	MaxQError float64
	// MeanWorkRatio is the mean of (plan's executed tuple visits) /
	// (best plan's executed tuple visits) — 1.0 means always optimal.
	MeanWorkRatio float64
}

// randomQuery builds a random chain or star query over generated data.
func randomQuery(rng *rand.Rand, cat *catalog.Catalog) ([]cardest.TableRef, []expr.Predicate, []string, error) {
	n := 2 + rng.Intn(2)
	star := rng.Intn(2) == 0
	var tabs []cardest.TableRef
	var preds []expr.Predicate
	var names []string
	// Keep join columns reasonably selective so random plans stay cheap to
	// execute: a tiny domain would turn every join into a near cross
	// product.
	domain := 10 + rng.Intn(40)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("Q%d", i)
		rows := 20 + rng.Intn(120)
		tbl, err := datagen.Generate(datagen.TableSpec{
			Name: name,
			Rows: rows,
			Columns: []datagen.ColumnSpec{
				{Name: "k", Dist: datagen.DistUniform, Domain: domain},
				{Name: "v", Dist: datagen.DistUniform, Domain: 100},
			},
		}, rng.Int63())
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{}); err != nil {
			return nil, nil, nil, err
		}
		tabs = append(tabs, cardest.TableRef{Table: name})
		names = append(names, name)
		if i > 0 {
			anchor := "Q0"
			if !star {
				anchor = fmt.Sprintf("Q%d", i-1)
			}
			preds = append(preds, expr.NewJoin(
				expr.ColumnRef{Table: name, Column: "k"}, expr.OpEQ,
				expr.ColumnRef{Table: anchor, Column: "k"}))
		}
	}
	// A local predicate on a random table's v column half the time.
	if rng.Intn(2) == 0 {
		victim := names[rng.Intn(n)]
		preds = append(preds, expr.NewConst(
			expr.ColumnRef{Table: victim, Column: "v"}, expr.OpLT, storage.Int64(int64(rng.Intn(100)))))
	}
	return tabs, preds, names, nil
}

// RunRandomQueries executes the A4/A5 sweep: random chain/star queries are
// planned under each algorithm, the chosen plans are executed, and both the
// estimation q-error and the realized plan work (relative to the best of
// the four plans) are aggregated.
func RunRandomQueries(queries int, seed int64) ([]RandomQueryRow, error) {
	if queries <= 0 {
		queries = 20
	}
	rng := rand.New(rand.NewSource(seed))
	cfgs := []cardest.Config{
		cardest.SM(),
		cardest.SM().WithClosure(),
		cardest.SSS().WithClosure(),
		cardest.ELS(),
	}
	labels := []string{"SM", "SM+PTC", "SSS+PTC", "ELS"}
	logQ := make([]float64, len(cfgs))
	maxQ := make([]float64, len(cfgs))
	workRatio := make([]float64, len(cfgs))
	for i := range maxQ {
		maxQ[i] = 1
	}
	for q := 0; q < queries; q++ {
		cat := catalog.New()
		tabs, preds, _, err := randomQuery(rng, cat)
		if err != nil {
			return nil, err
		}
		exec := executor.New(cat)
		work := make([]float64, len(cfgs))
		truth := -1.0
		ests := make([]float64, len(cfgs))
		for i, cfg := range cfgs {
			est, err := cardest.New(cat, tabs, preds, cfg)
			if err != nil {
				return nil, err
			}
			opt, err := optimizer.New(est, optimizer.PaperOptions())
			if err != nil {
				return nil, err
			}
			plan, err := opt.BestPlan()
			if err != nil {
				return nil, err
			}
			count, stats, err := exec.Count(plan)
			if err != nil {
				return nil, err
			}
			if truth < 0 {
				truth = float64(count)
			} else if truth != float64(count) {
				return nil, fmt.Errorf("experiment: plans disagree on the result (%g vs %d)", truth, count)
			}
			ests[i] = plan.EstRows()
			work[i] = float64(stats.TuplesScanned)
		}
		best := math.Inf(1)
		for _, w := range work {
			if w < best {
				best = w
			}
		}
		if best <= 0 {
			best = 1
		}
		for i := range cfgs {
			qe := qerr(ests[i], truth)
			logQ[i] += math.Log(qe)
			if qe > maxQ[i] {
				maxQ[i] = qe
			}
			workRatio[i] += work[i] / best
		}
	}
	out := make([]RandomQueryRow, len(cfgs))
	for i := range cfgs {
		out[i] = RandomQueryRow{
			Algorithm:     labels[i],
			GeoMeanQError: math.Exp(logQ[i] / float64(queries)),
			MaxQError:     maxQ[i],
			MeanWorkRatio: workRatio[i] / float64(queries),
		}
	}
	return out, nil
}

// FormatRandomQueries renders the A4/A5 table.
func FormatRandomQueries(rows []RandomQueryRow) string {
	var b strings.Builder
	b.WriteString("A4/A5: random chain+star queries — estimation error and plan quality\n")
	fmt.Fprintf(&b, "%-10s %16s %14s %16s\n", "Algorithm", "geo-mean q-err", "max q-err", "mean work ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %16.4g %14.4g %16.3f\n", r.Algorithm, r.GeoMeanQError, r.MaxQError, r.MeanWorkRatio)
	}
	return b.String()
}
