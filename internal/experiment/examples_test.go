package experiment

import (
	"strings"
	"testing"
)

// Every worked example in the paper must reproduce exactly.
func TestRunWorkedExamplesAllMatch(t *testing.T) {
	examples, err := RunWorkedExamples()
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) != 12 {
		t.Fatalf("examples = %d, want 12", len(examples))
	}
	for _, ex := range examples {
		if !ex.Matches() {
			t.Errorf("%s: got %g, paper says %g (%s)", ex.ID, ex.Got, ex.Want, ex.Description)
		}
	}
}

func TestWorkedExamplesCoverEveryExhibit(t *testing.T) {
	examples, err := RunWorkedExamples()
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]int)
	for _, ex := range examples {
		ids[ex.ID]++
	}
	for id, minCount := range map[string]int{
		"Example 1b":  2,
		"Example 2":   1,
		"Example 3":   2,
		"Section 3.3": 2,
		"Section 5":   3,
		"Section 6":   2,
	} {
		if ids[id] < minCount {
			t.Errorf("exhibit %s has %d entries, want >= %d", id, ids[id], minCount)
		}
	}
}

func TestFormatWorkedExamples(t *testing.T) {
	examples, err := RunWorkedExamples()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatWorkedExamples(examples)
	if !strings.Contains(out, "Example 2") || !strings.Contains(out, "OK") {
		t.Errorf("report missing content:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("report shows mismatches:\n%s", out)
	}
	bad := WorkedExample{ID: "X", Description: "d", Got: 1, Want: 2}
	if !strings.Contains(bad.String(), "MISMATCH") {
		t.Error("mismatching example should render MISMATCH")
	}
}
