package experiment

import (
	"strings"
	"testing"
)

func TestRunIndependenceSweep(t *testing.T) {
	rows, err := RunIndependenceSweep(20000, 100, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	indep, corr := rows[0], rows[1]
	if indep.Correlated || !corr.Correlated {
		t.Fatalf("row order wrong: %+v", rows)
	}
	// Independent columns: the multiplied selectivities are right
	// (0.2 × 0.2 of 20000 = 800 expected).
	if indep.QError > 1.2 {
		t.Errorf("independent q-error = %g, want ≈1", indep.QError)
	}
	// Correlated columns: the true size is ~0.2 × 20000 = 4000 but the
	// estimate stays ~800 — a ~5x underestimate.
	if corr.QError < 3 {
		t.Errorf("correlated q-error = %g, want ≈5 (independence violated)", corr.QError)
	}
	if corr.Estimate >= corr.TrueSize {
		t.Errorf("correlated estimate (%g) should undershoot the truth (%g)", corr.Estimate, corr.TrueSize)
	}
	// Validation.
	if _, err := RunIndependenceSweep(0, 10, 0.5, 1); err == nil {
		t.Error("zero rows should error")
	}
	if _, err := RunIndependenceSweep(10, 10, 1.5, 1); err == nil {
		t.Error("cut > 1 should error")
	}
	out := FormatIndependenceSweep(rows)
	if !strings.Contains(out, "correlated") || !strings.Contains(out, "independent") {
		t.Errorf("format output:\n%s", out)
	}
}
