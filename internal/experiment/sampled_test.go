package experiment

import (
	"strings"
	"testing"
)

func TestRunSampledStats(t *testing.T) {
	rows, err := RunSampledStats(4000, []int{200, 1000, 4000}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (exact + 3 samples)", len(rows))
	}
	exact := rows[0]
	if exact.SampleRows != 0 || exact.EstimateQError != 1 || exact.DistinctErr != 0 {
		t.Errorf("exact baseline wrong: %+v", exact)
	}
	for _, r := range rows[1:] {
		if r.EstimateQError < 1 {
			t.Errorf("q-error below 1: %+v", r)
		}
		if r.DistinctErr < 0 || r.DistinctErr > 1 {
			t.Errorf("distinct error out of range: %+v", r)
		}
	}
	// Larger samples should estimate distinct counts at least roughly as
	// well as tiny samples (allow slack for Chao noise).
	small, large := rows[1], rows[3]
	if large.DistinctErr > small.DistinctErr+0.10 {
		t.Errorf("larger sample much worse: small %+v vs large %+v", small, large)
	}
	// Even the small sample should keep the estimate within a reasonable
	// factor (Chao recovers most of the distinct mass on uniform data).
	if small.EstimateQError > 5 {
		t.Errorf("200-row sample q-error %g too large", small.EstimateQError)
	}
	if _, err := RunSampledStats(0, nil, 1); err == nil {
		t.Error("zero rows should error")
	}
	out := FormatSampledStats(rows)
	if !strings.Contains(out, "exact") || !strings.Contains(out, "q-error") {
		t.Errorf("format output:\n%s", out)
	}
}
