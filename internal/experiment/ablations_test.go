package experiment

import (
	"strings"
	"testing"
)

func TestChainLengthSweep(t *testing.T) {
	rows, err := RunChainLengthSweep(5, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (n = 2..5)", len(rows))
	}
	for _, r := range rows {
		// The paper's theorem: LS is exact for single-class chains.
		if r.QErrLS > 1+1e-6 {
			t.Errorf("n=%d: LS q-error %g, want 1 (exact)", r.N, r.QErrLS)
		}
		if r.QErrM < r.QErrSS-1e-9 {
			t.Errorf("n=%d: M (%g) should err at least as much as SS (%g)", r.N, r.QErrM, r.QErrSS)
		}
	}
	// Error grows with chain length for M (geometric divergence).
	if !(rows[len(rows)-1].QErrM > rows[0].QErrM) {
		t.Errorf("Rule M q-error should grow with n: %v", rows)
	}
	if _, err := RunChainLengthSweep(1, 5, 1); err == nil {
		t.Error("maxN < 2 should error")
	}
	out := FormatChainLengthSweep(rows)
	if !strings.Contains(out, "Rule LS") {
		t.Errorf("format missing header:\n%s", out)
	}
}

func TestZipfSweep(t *testing.T) {
	rows, err := RunZipfSweep(500, 800, 100, []float64{0, 1.0}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Uniform data: the estimate should be decent (q-error below ~1.5).
	if rows[0].QError > 1.5 {
		t.Errorf("theta=0 q-error %g, want near 1", rows[0].QError)
	}
	// Skewed data: the uniformity assumption underestimates (skew piles
	// matches on hot values), and the error must exceed the uniform case.
	if rows[1].QError <= rows[0].QError {
		t.Errorf("theta=1 q-error (%g) should exceed theta=0 (%g)", rows[1].QError, rows[0].QError)
	}
	if rows[1].Estimate >= rows[1].TrueSize {
		t.Errorf("under skew the uniform estimate (%g) should undershoot the true size (%g)",
			rows[1].Estimate, rows[1].TrueSize)
	}
	// The histogram-join extension should fix most of the skew error.
	if rows[1].HistQError >= rows[1].QError {
		t.Errorf("theta=1: hist q-error (%g) should beat plain ELS (%g)",
			rows[1].HistQError, rows[1].QError)
	}
	if rows[1].HistQError > 1.5 {
		t.Errorf("theta=1: hist q-error %g too large", rows[1].HistQError)
	}
	if _, err := RunZipfSweep(0, 1, 1, nil, 1); err == nil {
		t.Error("bad sizes should error")
	}
	out := FormatZipfSweep(rows)
	if !strings.Contains(out, "theta") {
		t.Errorf("format missing header:\n%s", out)
	}
}

func TestUrnVsLinear(t *testing.T) {
	rows, err := RunUrnVsLinear(20000, 2000, []float64{0.1, 0.5, 0.9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The urn model should track the truth closely.
		if r.UrnQError > 1.1 {
			t.Errorf("keep=%.1f: urn q-error %g, want <= 1.1", r.KeepFraction, r.UrnQError)
		}
	}
	// At 50% retention the linear rule is badly wrong (the paper's Section 5
	// contrast) while the urn model is nearly exact.
	mid := rows[1]
	if mid.LinearQError < 1.5 {
		t.Errorf("keep=0.5: linear q-error %g, expected a large error", mid.LinearQError)
	}
	if mid.UrnQError >= mid.LinearQError {
		t.Errorf("urn (%g) should beat linear (%g)", mid.UrnQError, mid.LinearQError)
	}
	if _, err := RunUrnVsLinear(10, 20, nil, 1); err == nil {
		t.Error("distinct > rows should error")
	}
	out := FormatUrnVsLinear(rows)
	if !strings.Contains(out, "urn") {
		t.Errorf("format missing header:\n%s", out)
	}
}

func TestRandomQueries(t *testing.T) {
	rows, err := RunRandomQueries(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 algorithms", len(rows))
	}
	var els, smPTC RandomQueryRow
	for _, r := range rows {
		if r.GeoMeanQError < 1-1e-9 || r.MeanWorkRatio < 1-1e-9 {
			t.Errorf("%s: impossible aggregates %+v", r.Algorithm, r)
		}
		switch r.Algorithm {
		case "ELS":
			els = r
		case "SM+PTC":
			smPTC = r
		}
	}
	if els.Algorithm == "" || smPTC.Algorithm == "" {
		t.Fatal("missing algorithm rows")
	}
	// ELS should estimate no worse than the multiplicative rule with
	// closure on these uniform single-class workloads.
	if els.GeoMeanQError > smPTC.GeoMeanQError+1e-9 {
		t.Errorf("ELS q-error (%g) should not exceed SM+PTC (%g)", els.GeoMeanQError, smPTC.GeoMeanQError)
	}
	out := FormatRandomQueries(rows)
	if !strings.Contains(out, "Algorithm") {
		t.Errorf("format missing header:\n%s", out)
	}
}
