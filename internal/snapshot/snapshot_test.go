package snapshot

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/catalog"
)

// Versions advance by one per successful mutation, and a pinned snapshot
// is frozen: later mutations never change what it reads.
func TestVersionsAndIsolation(t *testing.T) {
	st := NewStore(nil)
	if v := st.Version(); v != 1 {
		t.Fatalf("fresh store at version %d, want 1", v)
	}
	if err := st.Mutate(func(c *catalog.Catalog) error {
		return c.AddTable(catalog.SimpleTable("R", 100, map[string]float64{"x": 10}))
	}); err != nil {
		t.Fatal(err)
	}
	pinned := st.Current()
	if pinned.Version() != 2 {
		t.Fatalf("version %d after one mutation, want 2", pinned.Version())
	}
	if err := st.Mutate(func(c *catalog.Catalog) error {
		return c.AddTable(catalog.SimpleTable("R", 999, map[string]float64{"x": 10}))
	}); err != nil {
		t.Fatal(err)
	}
	if got := pinned.Catalog().Table("R").Card; got != 100 {
		t.Fatalf("pinned snapshot saw later mutation: card %g, want 100", got)
	}
	if got := st.Current().Catalog().Table("R").Card; got != 999 {
		t.Fatalf("current snapshot card %g, want 999", got)
	}
}

// A failed mutation publishes nothing: the version does not advance and
// partial changes made by fn before the failure are invisible.
func TestFailedMutationPublishesNothing(t *testing.T) {
	st := NewStore(nil)
	boom := errors.New("boom")
	err := st.Mutate(func(c *catalog.Catalog) error {
		if err := c.AddTable(catalog.SimpleTable("half", 1, nil)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st.Version() != 1 {
		t.Fatalf("failed mutation advanced version to %d", st.Version())
	}
	if st.Current().Catalog().Table("half") != nil {
		t.Fatal("failed mutation's partial change is visible")
	}
}

// Concurrent writers serialize: every mutation lands, versions are dense.
func TestConcurrentWriters(t *testing.T) {
	st := NewStore(nil)
	// Seed the table the writers increment.
	if err := st.Mutate(func(c *catalog.Catalog) error {
		return c.AddTable(catalog.SimpleTable("W", 0, nil))
	}); err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				err := st.Mutate(func(c *catalog.Catalog) error {
					return c.AddTable(catalog.SimpleTable("W", c.Table("W").Card+1, nil))
				})
				if err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if got := st.Current().Catalog().Table("W").Card; got != writers*25 {
		t.Fatalf("lost updates: card %g, want %d", got, writers*25)
	}
	if v := st.Version(); v != 2+writers*25 {
		t.Fatalf("version %d, want %d", v, 2+writers*25)
	}
}
