// Package snapshot publishes copy-on-write versions of the statistics
// catalog so that statistics refresh never blocks or corrupts in-flight
// estimation.
//
// The serving layer pins the current Snapshot once at query admission and
// threads it through parsing, estimation, planning, and execution; every
// read the query performs therefore sees exactly one published catalog
// version, no matter how many writers publish while it runs. Writers are
// serialized: each mutation deep-clones the current catalog's statistics
// (backing data tables and indexes are immutable and shared), applies the
// mutation to the clone, and publishes the clone atomically under the next
// version number. A mutation that fails publishes nothing, which makes
// every catalog mutation all-or-nothing — a half-imported stats file can
// never become visible.
//
// Versions are monotonically increasing from 1 (the empty catalog a system
// starts with) and are surfaced to users through Estimate.CatalogVersion
// and Explain output.
package snapshot

import (
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
)

// Snapshot is one immutable published catalog version. The catalog it
// carries must not be mutated by readers; the store's Mutate is the only
// writer and it always writes to a fresh clone.
type Snapshot struct {
	version uint64
	cat     *catalog.Catalog
}

// Version is the snapshot's monotonically increasing version number.
func (s *Snapshot) Version() uint64 { return s.version }

// Catalog is the snapshot's immutable catalog.
func (s *Snapshot) Catalog() *catalog.Catalog { return s.cat }

// Durability is the hook a durable log implements (see internal/durable).
// When installed, LogMutation is called for each mutation after the
// mutation function succeeds and before the new version is published; a
// non-nil error aborts publication, so an acknowledged (published) version
// is by construction a durable one.
type Durability interface {
	LogMutation(version uint64, prev, next *catalog.Catalog) error
}

// Store holds the current catalog snapshot and serializes writers.
// Current is wait-free (one atomic load), so pinning a version at query
// admission costs nothing even under heavy mutation traffic.
type Store struct {
	//lockorder:level 42
	mu        sync.Mutex // serializes Mutate; guards dur, onPublish
	dur       Durability
	onPublish func(version uint64)
	cur       atomic.Pointer[Snapshot]
}

// NewStore starts a store at version 1 holding cat.
func NewStore(cat *catalog.Catalog) *Store {
	return NewStoreAt(cat, 1)
}

// NewStoreAt starts a store at an explicit version — the recovery path:
// a durable store reopens at the version its checkpoint + WAL replay
// reached, and the snapshot chain continues from there.
func NewStoreAt(cat *catalog.Catalog, version uint64) *Store {
	if cat == nil {
		cat = catalog.New()
	}
	if version == 0 {
		version = 1
	}
	st := &Store{}
	st.cur.Store(&Snapshot{version: version, cat: cat})
	return st
}

// SetDurability installs (or with nil removes) the durability hook.
func (st *Store) SetDurability(d Durability) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dur = d
}

// SetOnPublish installs (or with nil removes) a callback invoked with the
// new version number after every publication — Mutate's +1 chain and Jump's
// replica resync alike — while the writer lock is still held, so callbacks
// observe publications in version order. The plan cache hangs its
// invalidation here: any published bump, from a local mutation, replication
// replay, or a post-recovery mutation, retires every cached plan keyed to
// an older version. The callback must not call back into the store.
func (st *Store) SetOnPublish(fn func(version uint64)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.onPublish = fn
}

// Current returns the latest published snapshot.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Version returns the latest published version number.
func (st *Store) Version() uint64 { return st.cur.Load().version }

// Mutate applies fn to a deep clone of the current catalog's statistics
// and, if fn succeeds, publishes the clone as the next version. If fn
// fails, nothing is published and the error is returned: readers never see
// a partially applied mutation. Writers are serialized; readers are never
// blocked.
//
// With a Durability hook installed, the mutation is logged and fsynced
// between fn succeeding and the version being published: a nil return
// means the mutation is both visible and durable, and a durability failure
// publishes nothing.
func (st *Store) Mutate(fn func(*catalog.Catalog) error) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.cur.Load()
	next := cur.cat.Clone()
	if err := fn(next); err != nil {
		return err
	}
	if st.dur != nil {
		if err := st.dur.LogMutation(cur.version+1, cur.cat, next); err != nil {
			return err
		}
	}
	st.cur.Store(&Snapshot{version: cur.version + 1, cat: next})
	if st.onPublish != nil {
		st.onPublish(cur.version + 1)
	}
	return nil
}

// Jump publishes cat at an explicit version, outside the normal +1 chain —
// the replica full-resync path: a follower that lost frames (or diverged)
// is handed the primary's complete catalog at the primary's version and
// must land exactly there, skipping the versions it never saw. The
// Durability hook is NOT consulted; the caller is responsible for having
// persisted cat at version independently (internal/durable.ResetTo does).
// cat must be treated as immutable from here on, like any published
// catalog.
func (st *Store) Jump(cat *catalog.Catalog, version uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cur.Store(&Snapshot{version: version, cat: cat})
	if st.onPublish != nil {
		st.onPublish(version)
	}
}

// Locked runs fn on the current snapshot while holding the writer lock, so
// no version can be published during fn. Checkpointing uses it to capture
// a (catalog, version) pair that is guaranteed still-current when the
// checkpoint is written.
func (st *Store) Locked(fn func(*Snapshot) error) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return fn(st.cur.Load())
}
