package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	els "repro"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workpool"
)

// MemoryConfig shapes one memory-pressure storm: a deliberately
// under-budgeted "hog" tenant hammers oversized joins while two healthy
// neighbors run a steady light workload on the same server and the same
// process-wide memory pool. The zero value (plus a DataRoot) is a
// CI-sized run.
type MemoryConfig struct {
	// Seed drives every random decision in the fleet.
	Seed int64
	// DataRoot is the durable tenant root (a test temp dir); the leaked
	// spill-file audit walks it after the storm.
	DataRoot string
	// HogWorkers is the hog tenant's client swarm size (default 6 — far
	// past the pool share its reservations fit in, so pool sheds are part
	// of the storm's diet).
	HogWorkers int
	// NeighborWorkers is each neighbor tenant's swarm size (default 2,
	// comfortably inside both the pool share and the admission budget: a
	// neighbor request has no excuse to fail).
	NeighborWorkers int
	// OpsPerWorker is how many queries each swarm client issues
	// (default 12).
	OpsPerWorker int
	// LogW, if non-nil, receives one JSON line per event — the artifact
	// CI attaches to a memory-soak run.
	LogW io.Writer
}

// MemoryReport is the audited outcome of a memory-pressure storm.
type MemoryReport struct {
	// HogOps counts the hog swarm's queries; HogSucceeded the ones that
	// completed, HogShed the ones refused under memory-pool pressure
	// (server-side count), and HogSpilled how many completed queries
	// spilled at least one hash-join build side to disk.
	HogOps, HogSucceeded int
	HogShed, HogSpilled  uint64
	// NeighborOps counts the neighbor swarms' queries — every one of
	// them must succeed.
	NeighborOps int
	// NeighborP99Millis is the worst neighbor tenant's client-observed
	// p99 round-trip latency during the storm.
	NeighborP99Millis float64
	// SpillFiles lists *.spill paths still present under DataRoot after
	// the drain — a clean storm leaks none.
	SpillFiles []string
	// Violations lists every contract breach. A clean storm has none.
	Violations []string
}

// Failed reports whether the storm breached any contract.
func (r *MemoryReport) Failed() bool { return len(r.Violations) > 0 }

// memHarness carries the storm's shared state.
type memHarness struct {
	cfg MemoryConfig

	//lockorder:level 5
	mu           sync.Mutex
	hogOps       int
	hogSucceeded int
	neighborOps  int
	neighborLat  []time.Duration
	violations   []string

	//lockorder:level 70
	logMu sync.Mutex
}

// Hog-tenant sizing: the per-query byte budget is far below the join's
// build side, so every completed hog query takes the spill path, and the
// process pool is sized so the hog swarm's reservations overflow the
// hog's share while the neighbors' light reservations never can.
const (
	memHogBudget = 4 << 10  // per-query MaxMemory of the hog tenant
	memPoolBytes = 48 << 10 // process pool; share = pool / 3 tenants
)

// RunMemoryPressure drives the memory-governance storm end to end: three
// durable tenants behind one wire server share a process-wide memory
// pool; the hog tenant runs oversized hash joins under a tiny per-query
// byte budget with a swarm big enough to overflow its pool share, while
// two neighbor tenants run a steady small workload. The audits:
//
//   - degradation is isolated: the hog sheds (typed, retryable, with a
//     Retry-After hint) and spills, but every neighbor query succeeds
//     and no neighbor is ever shed by the pool or spills;
//   - the budget engages: the hog records pool sheds AND spilled
//     queries — pressure was real, and the spill path actually ran;
//   - nothing leaks: after the drain, no *.spill file survives anywhere
//     under the data root and the server holds no connection.
//
// The returned error reports a harness malfunction; contract breaches
// land in MemoryReport.Violations.
func RunMemoryPressure(ctx context.Context, cfg MemoryConfig) (*MemoryReport, error) {
	if cfg.HogWorkers <= 0 {
		cfg.HogWorkers = 6
	}
	if cfg.NeighborWorkers <= 0 {
		cfg.NeighborWorkers = 2
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 12
	}
	if cfg.DataRoot == "" {
		return nil, fmt.Errorf("chaos: RunMemoryPressure needs a DataRoot")
	}
	h := &memHarness{cfg: cfg}
	report := &MemoryReport{}

	srv, err := server.Start(ctx, h.memServerConfig())
	if err != nil {
		return nil, fmt.Errorf("chaos: starting server: %w", err)
	}
	addr := srv.Addr()
	h.logEvent(map[string]any{"event": "memory_storm_start", "addr": addr,
		"hog_budget": memHogBudget, "pool": memPoolBytes})

	// The storm: the hog swarm and both neighbor swarms run concurrently,
	// so the neighbors' latencies are measured under live hog pressure.
	onPanic := func(err error) { h.violation(fmt.Sprintf("chaos: fleet goroutine failed: %v", err)) }
	var fleet sync.WaitGroup
	for w := 0; w < cfg.HogWorkers; w++ {
		w := w
		workpool.Go(&fleet, onPanic, func() error { h.hogClient(ctx, addr, w); return nil })
	}
	for ti := 1; ti <= 2; ti++ {
		ti := ti
		for w := 0; w < cfg.NeighborWorkers; w++ {
			w := w
			workpool.Go(&fleet, onPanic, func() error { h.neighborClient(ctx, addr, ti, w); return nil })
		}
	}
	fleet.Wait()

	// Server-side audit: the hog must have been shed by the pool AND have
	// spilled completed queries; the neighbors must show neither.
	st := srv.Stats()
	for _, ts := range st.Tenants {
		switch ts.Tenant {
		case tenantName(0):
			report.HogShed = ts.MemSheds
			report.HogSpilled = ts.SpilledQueries
		default:
			if ts.MemSheds != 0 {
				h.violation(fmt.Sprintf("neighbor %s was shed by the memory pool %d times: the hog's pressure crossed the bulkhead",
					ts.Tenant, ts.MemSheds))
			}
			if ts.SpilledQueries != 0 {
				h.violation(fmt.Sprintf("neighbor %s spilled %d queries despite having no byte budget",
					ts.Tenant, ts.SpilledQueries))
			}
		}
	}
	if report.HogShed == 0 {
		h.violation("the hog was never shed by the memory pool — the pressure valve never engaged")
	}
	if report.HogSpilled == 0 {
		h.violation("no hog query spilled — the byte budget never forced the spill path")
	}
	if st.MemoryInUse != 0 {
		h.violation(fmt.Sprintf("memory pool still holds %d bytes after the storm: a reservation leaked", st.MemoryInUse))
	}

	// Drain, then sweep the data root for leaked spill files: every
	// spilling query cleaned up after itself, crash or not.
	drainCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		h.violation(fmt.Sprintf("drain failed: %v", err))
	}
	filepath.WalkDir(cfg.DataRoot, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, durable.SpillSuffix) {
			report.SpillFiles = append(report.SpillFiles, path)
		}
		return nil
	})
	for _, f := range report.SpillFiles {
		h.violation(fmt.Sprintf("leaked spill file after drain: %s", f))
	}

	h.mu.Lock()
	report.HogOps = h.hogOps
	report.HogSucceeded = h.hogSucceeded
	report.NeighborOps = h.neighborOps
	report.NeighborP99Millis = latQuantile(h.neighborLat, 0.99)
	report.Violations = h.violations
	h.mu.Unlock()
	h.logEvent(map[string]any{"event": "memory_storm_done",
		"hog_ops": report.HogOps, "hog_shed": report.HogShed, "hog_spilled": report.HogSpilled,
		"neighbor_ops": report.NeighborOps, "neighbor_p99_ms": report.NeighborP99Millis})
	return report, nil
}

// memServerConfig builds the storm's server: tenant0 is the hog (a tiny
// per-query byte budget and big join tables), tenant1 and tenant2 are
// neighbors with no byte budget and small tables. The pool's per-tenant
// share (pool / 3) admits four hog reservations; the hog swarm is larger,
// so pool sheds are guaranteed, while a neighbor's default reservation
// (share / 4) times its small swarm always fits.
func (h *memHarness) memServerConfig() server.Config {
	cfg := server.Config{
		Addr:        "127.0.0.1:0",
		DataRoot:    h.cfg.DataRoot,
		IdleTimeout: 10 * time.Second,
		MemoryPool:  memPoolBytes,
		LogW:        h.cfg.LogW,
	}
	mkRows := func(n, dom int) [][]int64 {
		rows := make([][]int64, n)
		for r := range rows {
			rows[r] = []int64{int64(r % dom), int64(r % 7)}
		}
		return rows
	}
	for i := 0; i < 3; i++ {
		tc := server.TenantConfig{
			Name: tenantName(i),
			Limits: els.Limits{
				Timeout:       10 * time.Second,
				MaxConcurrent: 2,
				MaxQueue:      16,
				QueueTimeout:  5 * time.Second,
				Workers:       2,
			},
		}
		if i == 0 {
			// The hog: a byte budget its own join cannot fit (so it
			// spills) that doubles as its pool reservation (so a swarm of
			// them overflows the share and sheds).
			tc.Limits.MaxMemory = memHogBudget
			tc.Bootstrap = func(sys *els.System) error {
				if err := sys.LoadTable("H1", []string{"k", "v"}, mkRows(900, 40)); err != nil {
					return err
				}
				return sys.LoadTable("H2", []string{"k", "v"}, mkRows(1100, 40))
			}
		} else {
			tc.Bootstrap = func(sys *els.System) error {
				if err := sys.LoadTable("R", []string{"a", "b"}, mkRows(100, 10)); err != nil {
					return err
				}
				return sys.LoadTable("S", []string{"a", "c"}, mkRows(150, 10))
			}
		}
		cfg.Tenants = append(cfg.Tenants, tc)
	}
	return cfg
}

// hogClient hammers the hog tenant with the oversized join. A completed
// query and a typed, retryable pressure shed are both acceptable
// outcomes; anything else is a violation.
func (h *memHarness) hogClient(ctx context.Context, addr string, w int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + 500 + int64(w)))
	name := tenantName(0)
	cl := h.dial(ctx, addr)
	if cl == nil {
		return
	}
	defer func() { cl.Close() }()
	const hogSQL = "SELECT COUNT(*) FROM H1, H2 WHERE H1.k = H2.k"
	for i := 0; i < h.cfg.OpsPerWorker; i++ {
		_, err := cl.Do(ctx, &wire.Request{Op: wire.OpQuery, Tenant: name, SQL: hogSQL})
		h.mu.Lock()
		h.hogOps++
		if err == nil {
			h.hogSucceeded++
		}
		h.mu.Unlock()
		if err != nil {
			var remote *wire.RemoteError
			switch {
			case errors.As(err, &remote) && errors.Is(err, els.ErrOverloaded):
				// A pool (or admission) shed: must be flagged retryable
				// and carry a Retry-After hint.
				if !remote.Wire.Retryable {
					h.violation("hog shed not flagged retryable")
				}
				if remote.RetryAfter() <= 0 {
					h.violation("hog shed carries no Retry-After hint")
				}
			case errors.Is(err, els.ErrMemory):
				// A hard byte-budget failure is typed and acceptable too
				// (sort-merge scratch under a tiny budget).
			default:
				h.violation(fmt.Sprintf("hog query failed outside the memory taxonomy: %v", err))
			}
			if cl.Broken() {
				if cl = h.redial(ctx, addr, cl); cl == nil {
					return
				}
			}
		}
		chaosPause(ctx, time.Duration(rng.Intn(2))*time.Millisecond)
	}
}

// neighborClient runs tenant ti's steady light workload. Every query must
// succeed: the hog's pressure belongs to the hog.
func (h *memHarness) neighborClient(ctx context.Context, addr string, ti, w int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + int64(ti)*100 + int64(w)))
	name := tenantName(ti)
	cl := h.dial(ctx, addr)
	if cl == nil {
		return
	}
	defer func() { cl.Close() }()
	const neighborSQL = "SELECT COUNT(*) FROM R, S WHERE R.a = S.a"
	for i := 0; i < h.cfg.OpsPerWorker; i++ {
		start := time.Now()
		_, err := cl.Do(ctx, &wire.Request{Op: wire.OpQuery, Tenant: name, SQL: neighborSQL})
		lat := time.Since(start)
		h.mu.Lock()
		h.neighborOps++
		h.neighborLat = append(h.neighborLat, lat)
		h.mu.Unlock()
		if err != nil {
			h.violation(fmt.Sprintf("neighbor %s query failed under hog pressure: %v", name, err))
			if cl.Broken() {
				if cl = h.redial(ctx, addr, cl); cl == nil {
					return
				}
			}
		}
		chaosPause(ctx, time.Duration(rng.Intn(3)+1)*time.Millisecond)
	}
}

// latQuantile returns the q-quantile of the observed latencies in
// milliseconds (0 when none were observed).
func latQuantile(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s)-1) * q)
	return float64(s[idx].Microseconds()) / 1000
}

func (h *memHarness) violation(msg string) {
	h.mu.Lock()
	h.violations = append(h.violations, msg)
	h.mu.Unlock()
}

// dial opens a wire client, recording a violation on failure.
func (h *memHarness) dial(ctx context.Context, addr string) *wire.Client {
	cl, err := wire.Dial(ctx, addr)
	if err != nil {
		h.violation(fmt.Sprintf("chaos: dial %s failed: %v", addr, err))
		return nil
	}
	cl.OpTimeout = 15 * time.Second
	return cl
}

// redial replaces a broken client.
func (h *memHarness) redial(ctx context.Context, addr string, old *wire.Client) *wire.Client {
	old.Close()
	return h.dial(ctx, addr)
}

// logEvent writes one JSONL record to the configured event log.
func (h *memHarness) logEvent(fields map[string]any) {
	if h.cfg.LogW == nil {
		return
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	h.cfg.LogW.Write(append(b, '\n'))
}
