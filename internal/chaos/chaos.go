// Package chaos is the soak harness for the serving layer: seeded worker
// fleets issue queries concurrently while one goroutine mutates the
// catalog and another arms fault-injection probes with errors, panics, and
// latency. Run drives the storm end to end and audits the system's
// contracts afterwards:
//
//   - every error belongs to the public taxonomy (no raw internal errors
//     escape),
//   - every estimate is consistent with exactly one published catalog
//     version (no torn reads across a concurrent statistics refresh),
//   - Close drains to zero in-flight queries with no admission-slot
//     accounting drift.
//
// Everything is seeded, so a failing storm replays deterministically
// (modulo goroutine scheduling) from its seed.
package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	els "repro"
	"repro/internal/cardest"
	"repro/internal/executor"
	"repro/internal/faultinject"
	"repro/internal/workpool"
)

// Config shapes one chaos storm. The zero value is usable: Run fills in
// defaults sized for a CI smoke run.
type Config struct {
	// Seed drives every random decision in the storm.
	Seed int64
	// Workers is the number of concurrent query-issuing goroutines
	// (default 8).
	Workers int
	// OpsPerWorker is how many operations each worker issues (default 50).
	OpsPerWorker int
	// MaxConcurrent, MaxQueue, and QueueTimeout configure admission
	// control for the storm (defaults 4, 8, 50ms). MaxConcurrent < Workers
	// keeps the admission queue contended.
	MaxConcurrent, MaxQueue int
	QueueTimeout            time.Duration
	// Retry, if enabled, is installed on the system so the storm exercises
	// the retry loop against injected faults.
	Retry els.RetryPolicy
	// Breaker, if non-zero, is installed on the system so the storm
	// exercises breaker trips and half-open probes.
	Breaker els.BreakerPolicy
	// LogW, if non-nil, receives one JSON line per event (operations,
	// faults armed, catalog mutations) — the artifact to attach to a CI
	// run for post-mortem debugging.
	LogW io.Writer
}

// Report is the audited outcome of a storm.
type Report struct {
	// Ops is the total number of operations issued; Succeeded counts the
	// ones that returned no error.
	Ops, Succeeded int
	// ErrorsByClass histograms failures by taxonomy sentinel name.
	ErrorsByClass map[string]int
	// VersionsPublished is how many catalog versions the mutator published.
	VersionsPublished int
	// Observations counts version-consistency data points collected (each
	// one an estimate checked against the catalog version it claims).
	Observations int
	// Violations lists every contract breach the audit found. A clean
	// storm has none.
	Violations []string
	// Stats is the system's serving-layer counters after Close.
	Stats els.RobustnessStats
	// Cache is the plan-cache counters after Close. The torn-read audit
	// doubles as the cache's version-pinning contract: a hit that served a
	// plan or estimate from any version other than the estimate's pinned
	// CatalogVersion would surface as a torn read.
	Cache els.CacheStats
}

// Failed reports whether the storm breached any contract.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// versionProbeSQL estimates the mutating table with no predicates, so the
// estimate must equal the cardinality published for the pinned version.
const versionProbeSQL = "SELECT COUNT(*) FROM V"

var stormSQL = []string{
	"SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5",
	"SELECT COUNT(*) FROM R WHERE R.b = 3",
	"SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND S.c = 2",
}

// observation is one (pinned version, estimate) data point to audit.
type observation struct {
	version uint64
	size    float64
}

// harness carries the storm's shared state.
type harness struct {
	cfg Config
	sys *els.System

	//lockorder:level 5
	mu           sync.Mutex
	versionCard  map[uint64]float64 // version -> published card of V
	observations []observation
	errsByClass  map[string]int
	violations   []string
	ops          int
	succeeded    int

	//lockorder:level 70
	logMu sync.Mutex
}

// Run executes one storm and audits it. The returned error reports a
// harness malfunction (e.g. seed data failed to load); contract breaches
// are reported in Report.Violations, not as an error.
func Run(cfg Config) (*Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 50
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 50 * time.Millisecond
	}

	h := &harness{
		cfg:         cfg,
		sys:         els.New(),
		versionCard: make(map[uint64]float64),
		errsByClass: make(map[string]int),
	}
	if err := h.seed(); err != nil {
		return nil, err
	}

	h.sys.SetLimits(els.Limits{
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.MaxQueue,
		QueueTimeout:  cfg.QueueTimeout,
		Workers:       2,
	})
	if cfg.Retry.Enabled() {
		h.sys.SetRetryPolicy(cfg.Retry)
	}
	if cfg.Breaker != (els.BreakerPolicy{}) {
		h.sys.SetBreaker(cfg.Breaker)
	}

	// All storm goroutines run under workpool.Go: a panic in a harness
	// goroutine is recovered into an error and recorded as a violation
	// instead of crashing the soak run.
	stop := make(chan struct{})
	onPanic := func(err error) {
		h.violation(fmt.Sprintf("chaos: background goroutine failed: %v", err))
	}
	var background sync.WaitGroup
	workpool.Go(&background, onPanic, func() error { h.mutator(stop); return nil })
	workpool.Go(&background, onPanic, func() error { h.faulter(stop); return nil })

	var workers sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		workpool.Go(&workers, onPanic, func() error { h.worker(w); return nil })
	}
	workers.Wait()
	close(stop)
	background.Wait()
	faultinject.Reset()

	h.audit()
	return h.report(), nil
}

// seed loads the static tables the storm queries and publishes the first
// version of the mutating table V.
func (h *harness) seed() error {
	mkRows := func(n, dom int) [][]int64 {
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{int64(i % dom), int64(i % 7)}
		}
		return rows
	}
	if err := h.sys.LoadTable("R", []string{"a", "b"}, mkRows(200, 10)); err != nil {
		return fmt.Errorf("chaos: seeding R: %w", err)
	}
	if err := h.sys.LoadTable("S", []string{"a", "c"}, mkRows(300, 10)); err != nil {
		return fmt.Errorf("chaos: seeding S: %w", err)
	}
	if err := h.sys.DeclareStats("V", 1000, map[string]float64{"x": 10}); err != nil {
		return fmt.Errorf("chaos: seeding V: %w", err)
	}
	h.versionCard[h.sys.CatalogVersion()] = 1000
	return nil
}

// mutator republishes V's statistics with a version-correlated cardinality
// until told to stop. It is the only mutator, so reading the catalog
// version right after a successful publish identifies the version that
// publish created.
func (h *harness) mutator(stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + 1))
	for i := 1; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		card := float64(1000 + i)
		if err := h.sys.DeclareStats("V", card, map[string]float64{"x": 10}); err != nil {
			h.violation(fmt.Sprintf("mutator: DeclareStats failed mid-storm: %v", err))
			return
		}
		v := h.sys.CatalogVersion()
		h.mu.Lock()
		h.versionCard[v] = card
		h.mu.Unlock()
		h.logEvent(map[string]any{"event": "publish", "version": v, "card": card})
		sleep(stop, time.Duration(rng.Intn(3)+1)*time.Millisecond)
	}
}

// faulter keeps arming random probe points with random faults: taxonomy
// errors, panics, and latency. Fault errors always wrap ErrInternal so the
// taxonomy audit can tell injected failures from leaks.
func (h *harness) faulter(stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + 2))
	points := []string{
		cardest.PointNewQuery,
		executor.PointScan,
		executor.PointJoin,
		executor.PointScanChunk,
		executor.PointJoinChunk,
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		point := points[rng.Intn(len(points))]
		f := faultinject.Fault{Times: rng.Intn(3) + 1}
		kind := ""
		switch rng.Intn(3) {
		case 0:
			kind = "error"
			f.Err = fmt.Errorf("%w: chaos: injected fault", els.ErrInternal)
		case 1:
			kind = "panic"
			f.PanicValue = "chaos: injected panic"
		case 2:
			kind = "latency"
			f.Delay = time.Duration(rng.Intn(2)+1) * time.Millisecond
		}
		faultinject.Enable(point, f)
		h.logEvent(map[string]any{"event": "fault", "point": point, "kind": kind, "times": f.Times})
		sleep(stop, time.Duration(rng.Intn(4)+1)*time.Millisecond)
	}
}

// worker issues OpsPerWorker random operations against the system,
// classifying every outcome.
func (h *harness) worker(id int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + 100 + int64(id)))
	for i := 0; i < h.cfg.OpsPerWorker; i++ {
		op := rng.Intn(5)
		var err error
		var opName string
		switch op {
		case 0:
			opName = "estimate-v"
			var est *els.Estimate
			est, err = h.sys.Estimate(versionProbeSQL, els.AlgorithmELS)
			if err == nil {
				h.mu.Lock()
				h.observations = append(h.observations, observation{est.CatalogVersion, est.FinalSize})
				h.mu.Unlock()
			}
		case 1:
			opName = "query"
			_, err = h.sys.Query(stormSQL[rng.Intn(len(stormSQL))], els.AlgorithmELS)
		case 2:
			opName = "explain"
			_, err = h.sys.Explain(stormSQL[rng.Intn(len(stormSQL))], els.AlgorithmELS)
		case 3:
			opName = "estimate"
			_, err = h.sys.Estimate(stormSQL[rng.Intn(len(stormSQL))], els.AlgorithmSM)
		case 4:
			opName = "query-deadline"
			//ctxflow:allow the storm deliberately issues root-context deadline ops
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(rng.Intn(10)+1)*time.Millisecond)
			_, err = h.sys.QueryContext(ctx, stormSQL[rng.Intn(len(stormSQL))], els.AlgorithmELS)
			cancel()
		}
		h.record(id, opName, err)
	}
}

// taxonomy maps every public sentinel to its name for classification.
var taxonomy = []struct {
	name string
	err  error
}{
	{"canceled", els.ErrCanceled},
	{"budget", els.ErrBudgetExceeded},
	{"bad-stats", els.ErrBadStats},
	{"parse", els.ErrParse},
	{"overloaded", els.ErrOverloaded},
	{"closed", els.ErrClosed},
	{"internal", els.ErrInternal},
}

// record classifies one operation outcome; an error outside the taxonomy
// is a contract violation.
func (h *harness) record(worker int, op string, err error) {
	h.mu.Lock()
	h.ops++
	class := "ok"
	if err == nil {
		h.succeeded++
	} else {
		class = ""
		for _, t := range taxonomy {
			if errors.Is(err, t.err) {
				class = t.name
				break
			}
		}
		if class == "" {
			class = "UNCLASSIFIED"
			h.violations = append(h.violations,
				fmt.Sprintf("worker %d %s: error outside the taxonomy: %v", worker, op, err))
		}
		h.errsByClass[class]++
	}
	h.mu.Unlock()
	h.logEvent(map[string]any{"event": "op", "worker": worker, "op": op, "class": class})
}

func (h *harness) violation(msg string) {
	h.mu.Lock()
	h.violations = append(h.violations, msg)
	h.mu.Unlock()
}

// audit drains the system and checks the end-of-storm contracts.
func (h *harness) audit() {
	//ctxflow:allow end-of-storm drain runs after every caller context is gone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.sys.Close(ctx); err != nil {
		h.violation(fmt.Sprintf("Close did not drain cleanly: %v", err))
	}
	st := h.sys.RobustnessStats()
	if st.InFlight != 0 || st.Waiting != 0 {
		h.violation(fmt.Sprintf("slot accounting drift after drain: in-flight %d, waiting %d",
			st.InFlight, st.Waiting))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, obs := range h.observations {
		card, ok := h.versionCard[obs.version]
		if !ok {
			h.violations = append(h.violations,
				fmt.Sprintf("estimate pinned catalog version %d, which was never published", obs.version))
			continue
		}
		if obs.size != card {
			h.violations = append(h.violations,
				fmt.Sprintf("torn read: estimate %g under catalog version %d, which published card %g",
					obs.size, obs.version, card))
		}
	}
}

func (h *harness) report() *Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	return &Report{
		Ops:               h.ops,
		Succeeded:         h.succeeded,
		ErrorsByClass:     h.errsByClass,
		VersionsPublished: len(h.versionCard),
		Observations:      len(h.observations),
		Violations:        h.violations,
		Stats:             h.sys.RobustnessStats(),
		Cache:             h.sys.CacheStats(),
	}
}

// logEvent writes one JSONL record to the configured event log.
func (h *harness) logEvent(fields map[string]any) {
	if h.cfg.LogW == nil {
		return
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	h.cfg.LogW.Write(append(b, '\n'))
}

// sleep waits d or until stop closes, whichever comes first.
func sleep(stop <-chan struct{}, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}
