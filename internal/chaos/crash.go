package chaos

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	els "repro"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/workpool"
)

// CrashConfig shapes one crash-recovery soak: a mutator fleet hammers a
// durable system while a faulter arms simulated process kills at the
// durable layer's probe points; every "crash" is followed by a recovery
// (els.Open on the same directory) whose result is audited against the
// acknowledge contract. The zero value (plus a Dir) is usable.
type CrashConfig struct {
	// Seed drives every random decision.
	Seed int64
	// Dir is the durable catalog directory the soak crashes and recovers.
	// Required.
	Dir string
	// Rounds is the number of crash/recover (or clean-shutdown/recover)
	// cycles (default 15).
	Rounds int
	// MutationsPerMutator bounds each mutator's work per round (default 25);
	// a round that exhausts its mutations without hitting an injected crash
	// shuts down cleanly, which soaks the clean-recovery path too.
	MutationsPerMutator int
	// Mutators is the size of the mutator fleet; each owns one table
	// (default 3).
	Mutators int
	// Deterministic trades concurrency for exact replayability: a single
	// mutator arms each round's crash itself before a seed-chosen mutation
	// (instead of a timer racing a fleet), no concurrent readers or
	// checkpointer run, and two soaks from the same seed therefore recover
	// byte-identical catalogs — the property the CI digest artifact pins.
	// The default (false) is the concurrent storm, deterministic only
	// modulo goroutine scheduling.
	Deterministic bool
	// LogW, if non-nil, receives one JSON line per event — the artifact a
	// CI crash-smoke run uploads for post-mortem debugging.
	LogW io.Writer
}

// CrashReport is the audited outcome of a crash soak.
type CrashReport struct {
	// Rounds is the number of open→storm→shutdown cycles completed.
	Rounds int
	// Crashes counts rounds that ended in an injected durability crash;
	// CleanShutdowns counts the rest.
	Crashes, CleanShutdowns int
	// TornTails counts recoveries that truncated a torn trailing WAL record.
	TornTails int
	// MutationsAcked is the total number of acknowledged catalog mutations
	// across all rounds. Acknowledged mutations never vanish; the audit
	// fails the soak if one does.
	MutationsAcked int
	// RecoveredAhead counts recoveries that landed one version ahead of the
	// last acknowledgement: the killed mutation's record reached the disk
	// intact, so recovery kept it even though no caller was ever told it
	// succeeded. That is the one divergence the contract allows.
	RecoveredAhead int
	// BitIdenticalChecks counts recovered estimates compared bit-for-bit
	// against their pre-crash values at the same catalog version.
	BitIdenticalChecks int
	// FinalVersion is the catalog version after the last recovery, and
	// Digest is the SHA-256 of the recovered catalog's canonical stats
	// export — the artifact CI archives to prove two runs of the same seed
	// recovered identical catalogs.
	FinalVersion uint64
	Digest       string
	// Violations lists every contract breach. A clean soak has none.
	Violations []string
}

// Failed reports whether the soak breached any contract.
func (r *CrashReport) Failed() bool { return len(r.Violations) > 0 }

// crashPoints are the durable layer's probe points, each one instant a
// real process can die at: mid-WAL-record, pre-fsync, mid-checkpoint-write,
// pre-rename, and post-rename-pre-truncate.
var crashPoints = []string{
	durable.PointWALAppend,
	durable.PointWALSync,
	durable.PointCheckpointWrite,
	durable.PointCheckpointRename,
	durable.PointWALTruncate,
}

// crashState is what the harness observes on the frozen (or cleanly
// stopped) system just before it is closed — the ground truth the next
// recovery is audited against.
type crashState struct {
	version  uint64             // last published (acknowledged) version
	cards    map[string]float64 // acknowledged card per mutator table
	maxTried map[string]float64 // highest card ever attempted per table
	probes   map[string]uint64  // probe SQL -> Float64bits of the estimate at version
	poisoned bool               // whether an injected crash landed
}

// crashHarness carries one soak's state across rounds.
type crashHarness struct {
	cfg CrashConfig

	//lockorder:level 5
	mu         sync.Mutex
	maxTried   map[string]float64 // persists across rounds
	violations []string
	report     CrashReport

	//lockorder:level 70
	logMu sync.Mutex
}

// RunCrash executes one crash-recovery soak. The returned error reports a
// harness malfunction; contract breaches land in CrashReport.Violations.
func RunCrash(cfg CrashConfig) (*CrashReport, error) {
	if cfg.Dir == "" {
		return nil, errors.New("chaos: CrashConfig.Dir is required")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 15
	}
	if cfg.MutationsPerMutator <= 0 {
		cfg.MutationsPerMutator = 25
	}
	if cfg.Mutators <= 0 {
		cfg.Mutators = 3
	}
	if cfg.Deterministic {
		cfg.Mutators = 1
	}
	h := &crashHarness{cfg: cfg, maxTried: make(map[string]float64)}

	var prev *crashState
	rng := rand.New(rand.NewSource(cfg.Seed))
	for round := 0; round < cfg.Rounds; round++ {
		state, err := h.round(round, rng.Int63(), prev)
		if err != nil {
			return nil, err
		}
		if state == nil { // recovery violation already recorded; cannot continue
			break
		}
		prev = state
		h.report.Rounds++
	}
	faultinject.Reset()

	// Final audit: one last recovery of the directory, digested.
	sys, err := els.Open(cfg.Dir)
	if err != nil {
		h.violation(fmt.Sprintf("final recovery failed: %v", err))
	} else {
		h.report.FinalVersion = sys.CatalogVersion()
		var buf strings.Builder
		if err := sys.ExportStats(&buf); err != nil {
			h.violation(fmt.Sprintf("final export failed: %v", err))
		} else {
			sum := sha256.Sum256([]byte(buf.String()))
			h.report.Digest = hex.EncodeToString(sum[:])
		}
		closeQuietly(sys)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	h.report.Violations = h.violations
	out := h.report
	return &out, nil
}

// round opens the directory (auditing recovery against prev), runs one
// mutator storm until an injected crash lands or the mutation budget runs
// out, captures the pre-shutdown state, and closes.
func (h *crashHarness) round(round int, seed int64, prev *crashState) (*crashState, error) {
	sys, err := els.Open(h.cfg.Dir)
	if err != nil {
		h.violation(fmt.Sprintf("round %d: recovery failed: %v", round, err))
		return nil, nil
	}
	defer closeQuietly(sys)
	h.auditRecovery(round, sys, prev)

	// Seed any mutator table recovery did not bring back (only the first
	// round on a fresh directory), so the readers' probes always bind.
	for m := 0; m < h.cfg.Mutators; m++ {
		table := fmt.Sprintf("m%d", m)
		if _, err := sys.TableCard(table); err == nil {
			continue
		}
		h.mu.Lock()
		card := h.maxTried[table] + 1
		h.maxTried[table] = card
		h.mu.Unlock()
		if err := sys.DeclareStats(table, card, map[string]float64{"x": 10}); err != nil {
			h.violation(fmt.Sprintf("round %d: seeding %s failed: %v", round, table, err))
			return nil, nil
		}
		h.mu.Lock()
		h.report.MutationsAcked++
		h.mu.Unlock()
	}

	rng := rand.New(rand.NewSource(seed))
	// Vary the compaction pressure: some rounds auto-checkpoint aggressively,
	// some never, so crashes land on long and short WAL suffixes alike.
	sys.SetLimits(els.Limits{CheckpointEvery: []int{0, 2, 5}[rng.Intn(3)]})

	crashed := make(chan struct{})
	var crashOnce sync.Once
	noteCrash := func() { crashOnce.Do(func() { close(crashed) }) }
	onPanic := func(err error) {
		h.violation(fmt.Sprintf("round %d: background goroutine failed: %v", round, err))
		noteCrash()
	}

	// Each round injects at most one simulated kill, at a random durable
	// probe point. ShortWrite -1 means the faulted write completes before
	// the kill. In the concurrent storm a faulter goroutine arms it after a
	// random delay; in deterministic mode the single mutator arms it itself
	// right before a seed-chosen mutation.
	point := crashPoints[rng.Intn(len(crashPoints))]
	short := rng.Intn(60) - 10
	delay := time.Duration(rng.Intn(8)) * time.Millisecond
	detCrashAt := rng.Intn(h.cfg.MutationsPerMutator)
	arm := func() {
		faultinject.Enable(point, faultinject.Fault{
			Times:   1,
			Payload: faultinject.DiskFault{ShortWrite: short},
		})
		h.logEvent(map[string]any{"event": "arm", "round": round, "point": point, "short": short})
	}

	var background sync.WaitGroup
	readerStop := make(chan struct{})
	var readers sync.WaitGroup
	if !h.cfg.Deterministic {
		workpool.Go(&background, onPanic, func() error {
			sleep(crashed, delay)
			select {
			case <-crashed:
				return nil
			default:
			}
			arm()
			return nil
		})

		// A checkpointer exercises explicit compaction so the checkpoint
		// crash points are reachable even in CheckpointEvery=0 rounds.
		workpool.Go(&background, onPanic, func() error {
			r := rand.New(rand.NewSource(seed + 1))
			for {
				sleep(crashed, time.Duration(r.Intn(6)+2)*time.Millisecond)
				select {
				case <-crashed:
					return nil
				default:
				}
				if err := sys.Checkpoint(); err != nil {
					if !errors.Is(err, els.ErrDurability) {
						h.violation(fmt.Sprintf("round %d: checkpoint error outside taxonomy: %v", round, err))
					}
					noteCrash()
					return nil
				}
			}
		})

		// Readers estimate continuously; reads must keep working through
		// mutation traffic and even on a frozen (post-crash) catalog.
		for r := 0; r < 2; r++ {
			r := r
			workpool.Go(&readers, onPanic, func() error {
				rg := rand.New(rand.NewSource(seed + 100 + int64(r)))
				for {
					select {
					case <-readerStop:
						return nil
					default:
					}
					sql := h.probeSQL()[rg.Intn(len(h.probeSQL()))]
					if _, err := sys.Estimate(sql, els.AlgorithmELS); err != nil {
						h.violation(fmt.Sprintf("round %d: read failed mid-storm: %v", round, err))
						return nil
					}
				}
			})
		}
	}

	// The mutator fleet: each mutator owns one table and republishes it
	// with a strictly increasing cardinality — the monotonic sequence the
	// recovery audit leans on.
	var fleet sync.WaitGroup
	for m := 0; m < h.cfg.Mutators; m++ {
		m := m
		workpool.Go(&fleet, onPanic, func() error {
			table := fmt.Sprintf("m%d", m)
			r := rand.New(rand.NewSource(seed + 200 + int64(m)))
			for i := 0; i < h.cfg.MutationsPerMutator; i++ {
				select {
				case <-crashed:
					return nil
				default:
				}
				if h.cfg.Deterministic && i == detCrashAt {
					arm()
				}
				h.mu.Lock()
				card := h.maxTried[table] + 1
				h.maxTried[table] = card
				h.mu.Unlock()
				err := sys.DeclareStats(table, card, map[string]float64{"x": 10})
				switch {
				case err == nil:
					h.mu.Lock()
					h.report.MutationsAcked++
					h.mu.Unlock()
				case errors.Is(err, els.ErrDurability):
					h.logEvent(map[string]any{"event": "crash", "round": round, "table": table, "card": card})
					noteCrash()
					return nil
				default:
					h.violation(fmt.Sprintf("round %d: mutation error outside taxonomy: %v", round, err))
					noteCrash()
					return nil
				}
				if !h.cfg.Deterministic && r.Intn(4) == 0 {
					sleep(crashed, time.Millisecond)
				}
			}
			return nil
		})
	}
	fleet.Wait()
	noteCrash() // budget exhausted counts as the end of the round
	background.Wait()
	close(readerStop)
	readers.Wait()
	faultinject.Reset() // disarm a fault that never fired

	state := h.capture(round, sys)
	if state.poisoned {
		h.mu.Lock()
		h.report.Crashes++
		h.mu.Unlock()
	} else {
		h.mu.Lock()
		h.report.CleanShutdowns++
		h.mu.Unlock()
	}
	return state, nil
}

// probeSQL returns the estimate probes replayed after recovery for the
// bit-identity audit. They depend on every mutator table's statistics.
func (h *crashHarness) probeSQL() []string {
	probes := make([]string, 0, h.cfg.Mutators+1)
	for m := 0; m < h.cfg.Mutators; m++ {
		probes = append(probes, fmt.Sprintf("SELECT COUNT(*) FROM m%d WHERE x < 5", m))
	}
	if h.cfg.Mutators >= 2 {
		probes = append(probes, "SELECT COUNT(*) FROM m0, m1 WHERE m0.x = m1.x")
	}
	return probes
}

// capture records the frozen system's ground truth: the last published
// version, every table's acknowledged card, and the probe estimates that
// recovery must reproduce bit-for-bit at the same version. Reads keep
// working after a durability freeze, which is itself part of the contract.
func (h *crashHarness) capture(round int, sys *els.System) *crashState {
	st := &crashState{
		version:  sys.CatalogVersion(),
		cards:    make(map[string]float64),
		maxTried: make(map[string]float64),
		probes:   make(map[string]uint64),
		poisoned: sys.DurabilityStats().Poisoned != nil,
	}
	for m := 0; m < h.cfg.Mutators; m++ {
		table := fmt.Sprintf("m%d", m)
		if card, err := sys.TableCard(table); err == nil {
			st.cards[table] = card
		}
	}
	h.mu.Lock()
	for t, v := range h.maxTried {
		st.maxTried[t] = v
	}
	h.mu.Unlock()
	for _, sql := range h.probeSQL() {
		est, err := sys.Estimate(sql, els.AlgorithmELS)
		if err != nil {
			h.violation(fmt.Sprintf("round %d: pre-shutdown probe failed: %v", round, err))
			continue
		}
		if est.CatalogVersion != st.version {
			h.violation(fmt.Sprintf("round %d: pre-shutdown probe pinned version %d, catalog is at %d",
				round, est.CatalogVersion, st.version))
			continue
		}
		st.probes[sql] = math.Float64bits(est.FinalSize)
	}
	h.logEvent(map[string]any{"event": "shutdown", "round": round,
		"version": st.version, "poisoned": st.poisoned})
	return st
}

// auditRecovery checks a freshly recovered system against the state
// captured before the previous shutdown:
//
//   - the recovered version R is the last acknowledged version V, or V+1
//     when exactly the one in-flight record reached the disk intact before
//     the kill (publication is what acknowledges, but durability is what
//     survives) — never anything else, never partial;
//   - acknowledged cards never regress, and at most the single in-flight
//     table may differ from its acknowledged value, by exactly its one
//     attempted mutation;
//   - at R == V, every probe estimate is bit-identical to its pre-crash
//     value.
func (h *crashHarness) auditRecovery(round int, sys *els.System, prev *crashState) {
	if sys.DurabilityStats().TornTailRecovered {
		h.mu.Lock()
		h.report.TornTails++
		h.mu.Unlock()
	}
	if prev == nil {
		return
	}
	rv := sys.CatalogVersion()
	maxV := prev.version
	if prev.poisoned {
		maxV++ // the in-flight record may have survived
	}
	if rv < prev.version || rv > maxV {
		h.violation(fmt.Sprintf("round %d: recovered version %d outside [%d, %d]",
			round, rv, prev.version, maxV))
		return
	}
	h.logEvent(map[string]any{"event": "recovered", "round": round,
		"version": rv, "ahead": rv - prev.version})

	diffs := 0
	for table, acked := range prev.cards {
		got, err := sys.TableCard(table)
		if err != nil {
			h.violation(fmt.Sprintf("round %d: acknowledged table %s vanished in recovery: %v",
				round, table, err))
			continue
		}
		if got == acked {
			continue
		}
		diffs++
		if got < acked {
			h.violation(fmt.Sprintf("round %d: table %s regressed below its acknowledged card: %g < %g",
				round, table, got, acked))
		} else if got > prev.maxTried[table] {
			h.violation(fmt.Sprintf("round %d: table %s recovered card %g was never even attempted (max tried %g)",
				round, table, got, prev.maxTried[table]))
		}
	}
	if diffs > 1 {
		h.violation(fmt.Sprintf("round %d: %d tables diverged from their acknowledged stats; at most one mutation can be in flight",
			round, diffs))
	}
	if rv == prev.version && diffs > 0 {
		h.violation(fmt.Sprintf("round %d: recovered the acknowledged version %d but %d tables differ",
			round, rv, diffs))
	}
	if rv > prev.version {
		h.mu.Lock()
		h.report.RecoveredAhead++
		h.mu.Unlock()
	}

	if rv == prev.version {
		for sql, wantBits := range prev.probes {
			est, err := sys.Estimate(sql, els.AlgorithmELS)
			if err != nil {
				h.violation(fmt.Sprintf("round %d: post-recovery probe failed: %v", round, err))
				continue
			}
			h.mu.Lock()
			h.report.BitIdenticalChecks++
			h.mu.Unlock()
			if got := math.Float64bits(est.FinalSize); got != wantBits {
				h.violation(fmt.Sprintf("round %d: estimate %q not bit-identical after recovery: %x != %x (version %d)",
					round, sql, got, wantBits, rv))
			}
		}
	}
}

func (h *crashHarness) violation(msg string) {
	h.mu.Lock()
	h.violations = append(h.violations, msg)
	h.mu.Unlock()
	h.logEvent(map[string]any{"event": "violation", "msg": msg})
}

// logEvent writes one JSONL record to the configured event log.
func (h *crashHarness) logEvent(fields map[string]any) {
	if h.cfg.LogW == nil {
		return
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	h.cfg.LogW.Write(append(b, '\n'))
}

// closeQuietly drains a system with a bounded deadline, ignoring the
// result (crash rounds close poisoned systems, where errors are expected).
func closeQuietly(sys *els.System) {
	//ctxflow:allow end-of-round drain runs after every caller context is gone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sys.Close(ctx)
}
