package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	els "repro"
	"repro/internal/catalog"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/replica"
	"repro/internal/workpool"
)

// ReplicationConfig shapes one replication soak: a primary ships WAL
// frames to a fleet of read replicas while injected faults drop, delay,
// corrupt, and truncate frames on the wire, crash the primary and the
// followers' disks mid-ship, and silently corrupt a follower's replayed
// catalog. Every round settles and audits the replication contract: the
// digest audit catches every injected divergence, acknowledged mutations
// reach every live follower, and reads past Limits.MaxReplicaLag are
// rejected with ErrStaleReplica. The zero value (plus directories) is
// usable.
type ReplicationConfig struct {
	// Seed drives every random decision.
	Seed int64
	// PrimaryDir is the primary's durable catalog directory. Required.
	PrimaryDir string
	// ReplicaDirs are the follower directories (their base names become
	// the replica IDs). At least one is required.
	ReplicaDirs []string
	// Rounds is the number of fault/settle/audit cycles (default 10).
	// Fault kinds rotate deterministically, so Rounds >= 9 exercises every
	// kind at least once.
	Rounds int
	// MutationsPerRound bounds the primary's storm per round (default 20).
	MutationsPerRound int
	// MaxReplicaLag is the staleness bound installed on every replica
	// (default 3). The per-round staleness audit wedges a link until a
	// replica trails past it and demands an ErrStaleReplica rejection.
	MaxReplicaLag int
	// LogW, if non-nil, receives one JSON line per event — the artifact a
	// CI replication-smoke run uploads for post-mortem debugging.
	LogW io.Writer
}

// ReplicationReport is the audited outcome of a replication soak.
type ReplicationReport struct {
	// Rounds is the number of completed fault/settle/audit cycles.
	Rounds int
	// MutationsAcked counts mutations the primary acknowledged; the audit
	// fails the soak if a settled live follower is missing any of them.
	MutationsAcked int
	// FramesShipped, Resyncs, QueueDrops, and LinkDrops accumulate the
	// shipping layer's counters across every primary incarnation.
	FramesShipped, Resyncs, QueueDrops, LinkDrops uint64
	// ServedReads and StaleReads count replica reads that succeeded and
	// reads rejected for staleness or quarantine during the storms.
	ServedReads, StaleReads uint64
	// DivergencesInjected counts rounds whose corruptor actually fired;
	// DivergencesDetected counts quarantines raised by the digest audit.
	// The soak fails unless they match — an injected divergence that goes
	// undetected is the one unforgivable outcome.
	DivergencesInjected, DivergencesDetected int
	// PrimaryCrashes and FollowerCrashes count injected durability kills.
	PrimaryCrashes, FollowerCrashes int
	// StaleAudits counts quiesced staleness probes (each demands an
	// ErrStaleReplica rejection at lag > MaxReplicaLag, then a successful
	// bit-identical read after catch-up); CatchUps counts healed replicas
	// (reopened after a crash or re-attached after quarantine) that caught
	// back up to the primary.
	StaleAudits, CatchUps int
	// FinalVersion and Digest identify the primary's final catalog;
	// FollowerDigests maps every replica ID to its settled digest. Two
	// soaks from the same seed end at identical digests, and every
	// follower digest equals the primary's — the artifact CI archives.
	FinalVersion    uint64
	Digest          string
	FollowerDigests map[string]string
	// Violations lists every contract breach. A clean soak has none.
	Violations []string
}

// Failed reports whether the soak breached any contract.
func (r *ReplicationReport) Failed() bool { return len(r.Violations) > 0 }

// The per-round fault rotation. Rotating (rather than sampling) guarantees
// coverage of every kind in one CI run; the seed still picks victims,
// fault parameters, and crash instants.
const (
	faultNone = iota
	faultLinkDrop
	faultLinkDelay
	faultLinkCorrupt
	faultLinkTruncate
	faultLinkErr
	faultFollowerCrash
	faultPrimaryCrash
	faultDiverge
	faultKinds
)

var faultNames = [faultKinds]string{
	"none", "link-drop", "link-delay", "link-corrupt", "link-truncate",
	"link-err", "follower-crash", "primary-crash", "diverge",
}

// replHarness carries one soak's state across rounds.
type replHarness struct {
	cfg     ReplicationConfig
	primary *els.System
	reps    []*els.Replica
	ids     []string

	//lockorder:level 5
	mu         sync.Mutex
	maxTried   float64 // highest card ever attempted for table m0
	violations []string
	report     ReplicationReport

	//lockorder:level 70
	logMu sync.Mutex
}

const replProbe = "SELECT COUNT(*) FROM m0 WHERE x < 5"

// RunReplication executes one replication soak. The returned error
// reports a harness malfunction; contract breaches land in
// ReplicationReport.Violations.
func RunReplication(cfg ReplicationConfig) (*ReplicationReport, error) {
	if cfg.PrimaryDir == "" {
		return nil, errors.New("chaos: ReplicationConfig.PrimaryDir is required")
	}
	if len(cfg.ReplicaDirs) == 0 {
		return nil, errors.New("chaos: ReplicationConfig.ReplicaDirs is required")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 10
	}
	if cfg.MutationsPerRound <= 0 {
		cfg.MutationsPerRound = 20
	}
	if cfg.MaxReplicaLag <= 0 {
		cfg.MaxReplicaLag = 3
	}
	h := &replHarness{cfg: cfg, reps: make([]*els.Replica, len(cfg.ReplicaDirs))}
	for _, dir := range cfg.ReplicaDirs {
		h.ids = append(h.ids, filepath.Base(filepath.Clean(dir)))
	}
	faultinject.Reset()

	if err := h.boot(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for round := 0; round < cfg.Rounds; round++ {
		if err := h.round(round, rng.Int63()); err != nil {
			h.shutdown()
			return nil, err
		}
		h.report.Rounds++
	}
	faultinject.Reset()
	h.finalAudit()
	h.shutdown()

	h.mu.Lock()
	defer h.mu.Unlock()
	h.report.Violations = h.violations
	out := h.report
	return &out, nil
}

// boot opens the primary and the whole replica fleet, attaches everyone,
// seeds the probe table, and waits for the fleet to certify it.
func (h *replHarness) boot() error {
	sys, err := els.Open(h.cfg.PrimaryDir)
	if err != nil {
		return fmt.Errorf("chaos: opening primary: %w", err)
	}
	h.primary = sys
	for i, dir := range h.cfg.ReplicaDirs {
		rep, err := els.OpenReplica(dir)
		if err != nil {
			return fmt.Errorf("chaos: opening replica %s: %w", h.ids[i], err)
		}
		rep.SetLimits(els.Limits{MaxReplicaLag: h.cfg.MaxReplicaLag})
		if err := sys.AttachReplica(rep); err != nil {
			return fmt.Errorf("chaos: attaching replica %s: %w", h.ids[i], err)
		}
		h.reps[i] = rep
	}
	if card, err := sys.TableCard("m0"); err == nil {
		// Reused directory: resume the monotonic card sequence where the
		// recovered catalog left off.
		h.maxTried = card
	} else if err := h.mutate(); err != nil {
		return fmt.Errorf("chaos: seeding probe table: %w", err)
	}
	return h.settle("boot")
}

// mutate republishes table m0 with a strictly increasing cardinality and
// counts the acknowledgement. The monotonic sequence is what makes the
// soak's final digest a pure function of the seed.
func (h *replHarness) mutate() error {
	h.mu.Lock()
	card := h.maxTried + 1
	h.maxTried = card
	h.mu.Unlock()
	err := h.primary.DeclareStats("m0", card, map[string]float64{"x": 10})
	if err == nil {
		h.mu.Lock()
		h.report.MutationsAcked++
		h.mu.Unlock()
	}
	return err
}

// round arms one injected fault, runs a mutation storm with concurrent
// replica readers, settles the fleet, audits digests and acknowledged
// mutations, heals whatever the fault broke, and finishes with a quiesced
// staleness audit.
func (h *replHarness) round(round int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	kind := round % faultKinds
	victim := rng.Intn(len(h.reps))
	h.logEvent(map[string]any{"event": "round", "round": round,
		"fault": faultNames[kind], "victim": h.ids[victim]})

	crashAt := rng.Intn(h.cfg.MutationsPerRound)
	crashPoint := []string{durable.PointWALAppend, durable.PointWALSync}[rng.Intn(2)]
	h.mu.Lock()
	injectedBefore := h.report.DivergencesInjected
	h.mu.Unlock()
	h.arm(kind, victim, rng)

	// Readers hammer every replica through the storm. Allowed outcomes:
	// success (stamped as a replica read), ErrStaleReplica (lag bound), and
	// ErrDiverged (quarantine). Anything else is a breach.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	onPanic := func(err error) {
		h.violation(fmt.Sprintf("round %d: background goroutine failed: %v", round, err))
	}
	for i := range h.reps {
		i := i
		workpool.Go(&readers, onPanic, func() error {
			var served, stale uint64
			for {
				select {
				case <-stop:
					h.mu.Lock()
					h.report.ServedReads += served
					h.report.StaleReads += stale
					h.mu.Unlock()
					return nil
				default:
				}
				est, err := h.reps[i].Estimate(replProbe, els.AlgorithmELS)
				switch {
				case err == nil:
					served++
					if !est.Replica {
						h.violation(fmt.Sprintf("round %d: replica %s read not stamped as a replica read",
							round, h.ids[i]))
						return nil
					}
				case errors.Is(err, els.ErrStaleReplica):
					stale++
				case errors.Is(err, els.ErrDiverged):
					stale++
				default:
					h.violation(fmt.Sprintf("round %d: replica %s read failed outside taxonomy: %v",
						round, h.ids[i], err))
					return nil
				}
			}
		})
	}

	// The storm: a single deterministic mutator, so the acknowledged
	// sequence (and therefore the final digest) is a function of the seed.
	primaryCrashed := false
	for i := 0; i < h.cfg.MutationsPerRound; i++ {
		if kind == faultPrimaryCrash && i == crashAt {
			faultinject.Enable(crashPoint, faultinject.Fault{
				Times:   1,
				Payload: faultinject.DiskFault{ShortWrite: rng.Intn(60) - 10},
			})
			h.logEvent(map[string]any{"event": "arm-crash", "round": round, "point": crashPoint})
		}
		err := h.mutate()
		switch {
		case err == nil:
		case errors.Is(err, els.ErrDurability):
			h.logEvent(map[string]any{"event": "primary-crash", "round": round, "mutation": i})
			primaryCrashed = true
		default:
			h.violation(fmt.Sprintf("round %d: mutation error outside taxonomy: %v", round, err))
		}
		if primaryCrashed {
			break
		}
		if rng.Intn(4) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	readers.Wait()

	h.mu.Lock()
	divergeFired := h.report.DivergencesInjected > injectedBefore
	h.mu.Unlock()
	faultinject.Reset() // disarm whatever never fired

	if primaryCrashed {
		if err := h.reopenPrimary(round); err != nil {
			return err
		}
	}
	if err := h.settleAndAudit(round, divergeFired, victim); err != nil {
		return err
	}
	return h.staleAudit(round, rng.Intn(len(h.reps)))
}

// arm installs the round's injected fault. Inactive LinkFault fields must
// be -1: zero means "corrupt bit 0" / "truncate to 0 bytes".
func (h *replHarness) arm(kind, victim int, rng *rand.Rand) {
	link := replica.PointShip + ":" + h.ids[victim]
	switch kind {
	case faultLinkDrop:
		faultinject.Enable(link, faultinject.Fault{
			Times:   1 + rng.Intn(3),
			Payload: faultinject.LinkFault{Drop: true, CorruptBit: -1, Truncate: -1},
		})
	case faultLinkDelay:
		faultinject.Enable(link, faultinject.Fault{
			Times: 1 + rng.Intn(3),
			Delay: time.Duration(1+rng.Intn(3)) * time.Millisecond,
		})
	case faultLinkCorrupt:
		faultinject.Enable(link, faultinject.Fault{
			Times:   1 + rng.Intn(3),
			Payload: faultinject.LinkFault{CorruptBit: rng.Intn(4096), Truncate: -1},
		})
	case faultLinkTruncate:
		faultinject.Enable(link, faultinject.Fault{
			Times:   1 + rng.Intn(3),
			Payload: faultinject.LinkFault{CorruptBit: -1, Truncate: rng.Intn(64)},
		})
	case faultLinkErr:
		faultinject.Enable(link, faultinject.Fault{
			Times: 1 + rng.Intn(3),
			Err:   errors.New("chaos: link reset"),
		})
	case faultFollowerCrash:
		faultinject.Enable("replica:"+h.ids[victim]+":"+durable.PointWALAppend, faultinject.Fault{
			Times:   1,
			Payload: faultinject.DiskFault{ShortWrite: rng.Intn(60) - 10},
		})
	case faultDiverge:
		// Silently corrupt the follower's replayed catalog clone: the shipped
		// digest no longer matches, and only the audit stands between this
		// and a replica serving wrong estimates forever. The corruptor itself
		// records the injection (Fault.Times self-disarms the point, so its
		// hit counter is gone by the time the round settles).
		faultinject.Enable(replica.PointApply+":"+h.ids[victim], faultinject.Fault{
			Times: 1,
			Payload: func(cat *catalog.Catalog) {
				h.mu.Lock()
				h.report.DivergencesInjected++
				h.mu.Unlock()
				if ts := cat.Table("m0"); ts != nil {
					ts.Card++
				}
			},
		})
	}
}

// reopenPrimary recovers a crashed primary and re-attaches the whole
// fleet, auditing the recovery against the acknowledge contract.
func (h *replHarness) reopenPrimary(round int) error {
	h.mu.Lock()
	h.report.PrimaryCrashes++
	h.mu.Unlock()
	acked := h.primary.CatalogVersion()
	ackedCard, cardErr := h.primary.TableCard("m0")
	h.absorbShipping()
	closeQuietly(h.primary)

	sys, err := els.Open(h.cfg.PrimaryDir)
	if err != nil {
		h.violation(fmt.Sprintf("round %d: primary recovery failed: %v", round, err))
		return fmt.Errorf("chaos: primary recovery: %w", err)
	}
	h.primary = sys
	rv := sys.CatalogVersion()
	if rv < acked || rv > acked+1 {
		h.violation(fmt.Sprintf("round %d: primary recovered version %d outside [%d, %d]",
			round, rv, acked, acked+1))
	}
	if got, err := sys.TableCard("m0"); cardErr == nil && (err != nil || got < ackedCard) {
		h.violation(fmt.Sprintf("round %d: primary recovery regressed m0 below its acknowledged card", round))
	}
	h.logEvent(map[string]any{"event": "primary-recovered", "round": round,
		"version": rv, "ahead": rv - acked})
	for i, rep := range h.reps {
		if err := sys.AttachReplica(rep); err != nil {
			h.violation(fmt.Sprintf("round %d: re-attaching replica %s after primary crash: %v",
				round, h.ids[i], err))
		}
	}
	return nil
}

// settleAndAudit drives the fleet to the primary's version and checks the
// round's two core invariants on every follower: a follower that settled
// at version V holds a catalog SHA-256-identical to the primary's at V
// (anything else is an undetected divergence), and no live follower is
// missing an acknowledged mutation. Followers the fault took down or
// quarantined are healed — reopened from their own directory or
// re-attached through a certifying full resync — and must catch up.
func (h *replHarness) settleAndAudit(round int, divergeFired bool, victim int) error {
	if err := h.settle(fmt.Sprintf("round %d", round)); err != nil {
		return err
	}
	detected := 0
	healed := false
	down := make(map[string]bool)
	for _, f := range h.primary.ReplicationStats().Followers {
		if f.Down {
			down[f.ID] = true
		}
	}
	for i, rep := range h.reps {
		switch {
		case down[h.ids[i]]:
			h.mu.Lock()
			h.report.FollowerCrashes++
			h.mu.Unlock()
			if err := h.reopenFollower(round, i); err != nil {
				return err
			}
			healed = true
		case rep.Quarantined() != nil:
			q := rep.Quarantined()
			if !errors.Is(q, els.ErrDiverged) {
				h.violation(fmt.Sprintf("round %d: replica %s quarantine outside taxonomy: %v",
					round, h.ids[i], q))
			}
			var dv *els.DivergenceError
			if !errors.As(q, &dv) {
				h.violation(fmt.Sprintf("round %d: replica %s quarantine carries no DivergenceError: %v",
					round, h.ids[i], q))
			}
			detected++
			h.mu.Lock()
			h.report.DivergencesDetected++
			h.mu.Unlock()
			h.logEvent(map[string]any{"event": "quarantine", "round": round, "replica": h.ids[i]})
			// The heal path: re-attaching is the operator acknowledging the
			// divergence; it re-certifies the replica from a full frame.
			if err := h.primary.AttachReplica(rep); err != nil {
				h.violation(fmt.Sprintf("round %d: healing replica %s: %v", round, h.ids[i], err))
			}
			h.mu.Lock()
			h.report.CatchUps++
			h.mu.Unlock()
			healed = true
		default:
			h.auditDigest(round, i)
		}
	}
	if divergeFired && detected == 0 {
		h.violation(fmt.Sprintf("round %d: injected divergence on %s went undetected",
			round, h.ids[victim]))
	}
	if !healed {
		return nil
	}
	// Healed replicas must catch back up and then pass the same audit.
	if err := h.awaitHeal(fmt.Sprintf("round %d heal", round)); err != nil {
		return err
	}
	for i := range h.reps {
		h.auditDigest(round, i)
	}
	return nil
}

// awaitHeal blocks until every follower is unquarantined and caught up to
// the primary — the barrier after a heal, which WaitForReplicas alone
// cannot provide: it deliberately skips quarantined followers, and the
// certifying full resync that lifts a quarantine is asynchronous.
func (h *replHarness) awaitHeal(phase string) error {
	if err := h.settle(phase); err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		target := h.primary.CatalogVersion()
		ok := true
		for _, rep := range h.reps {
			if rep.Quarantined() != nil || rep.CatalogVersion() < target {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			h.violation(fmt.Sprintf("%s: healed fleet failed to catch up", phase))
			return fmt.Errorf("chaos: %s: healed fleet failed to catch up", phase)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// auditDigest compares one settled follower's catalog identity against
// the primary's. The fleet is quiesced, so any mismatch is a breach: a
// version short of the primary's lost an acknowledged mutation, and a
// differing digest at the same version is a divergence the audit missed.
func (h *replHarness) auditDigest(round, i int) {
	pver, pdig, err := h.primary.CatalogDigest()
	if err != nil {
		h.violation(fmt.Sprintf("round %d: primary digest failed: %v", round, err))
		return
	}
	fver, fdig, err := h.reps[i].CatalogDigest()
	switch {
	case err != nil:
		h.violation(fmt.Sprintf("round %d: replica %s digest failed: %v", round, h.ids[i], err))
	case fver != pver:
		h.violation(fmt.Sprintf("round %d: replica %s settled at version %d, primary at %d: acknowledged mutations missing",
			round, h.ids[i], fver, pver))
	case fdig != pdig:
		h.violation(fmt.Sprintf("round %d: undetected divergence: replica %s digest %s != primary %s at version %d",
			round, h.ids[i], fdig, pdig, pver))
	}
}

// reopenFollower recovers a follower whose own disk was killed: close it,
// reopen its directory (the follower recovers from its own WAL and
// checkpoints exactly like a primary), and re-attach.
func (h *replHarness) reopenFollower(round, i int) error {
	prev := h.reps[i].CatalogVersion()
	//ctxflow:allow end-of-round reopen runs after every caller context is gone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	h.reps[i].Close(ctx)
	cancel()
	rep, err := els.OpenReplica(h.cfg.ReplicaDirs[i])
	if err != nil {
		h.violation(fmt.Sprintf("round %d: replica %s recovery failed: %v", round, h.ids[i], err))
		return fmt.Errorf("chaos: replica recovery: %w", err)
	}
	if rv := rep.CatalogVersion(); rv > prev+1 {
		h.violation(fmt.Sprintf("round %d: replica %s recovered version %d beyond anything it applied (%d)",
			round, h.ids[i], rv, prev))
	}
	rep.SetLimits(els.Limits{MaxReplicaLag: h.cfg.MaxReplicaLag})
	if err := h.primary.AttachReplica(rep); err != nil {
		h.violation(fmt.Sprintf("round %d: re-attaching recovered replica %s: %v", round, h.ids[i], err))
	}
	h.reps[i] = rep
	h.mu.Lock()
	h.report.CatchUps++
	h.mu.Unlock()
	h.logEvent(map[string]any{"event": "follower-recovered", "round": round,
		"replica": h.ids[i], "version": rep.CatalogVersion()})
	return nil
}

// staleAudit is the quiesced staleness probe: wedge one replica's link
// (frames drop, announcements still flow — lag stays honest), push the
// primary past MaxReplicaLag, and demand the rejection the contract
// promises. Then release the link, wait for catch-up, and demand a
// successful read bit-identical to the primary's at the same version.
func (h *replHarness) staleAudit(round, victim int) error {
	rep, id := h.reps[victim], h.ids[victim]
	link := replica.PointShip + ":" + id
	faultinject.Enable(link, faultinject.Fault{
		Payload: faultinject.LinkFault{Drop: true, CorruptBit: -1, Truncate: -1},
	})
	for i := 0; i < h.cfg.MaxReplicaLag+2; i++ {
		if err := h.mutate(); err != nil {
			h.violation(fmt.Sprintf("round %d: stale-audit mutation failed: %v", round, err))
			faultinject.Disable(link)
			return nil
		}
	}
	lag := rep.Lag()
	_, err := rep.Estimate(replProbe, els.AlgorithmELS)
	if !errors.Is(err, els.ErrStaleReplica) {
		h.violation(fmt.Sprintf("round %d: read on %s at lag %d (bound %d) not rejected with ErrStaleReplica: %v",
			round, id, lag, h.cfg.MaxReplicaLag, err))
	} else {
		var sre *els.StaleReplicaError
		if !errors.As(err, &sre) {
			h.violation(fmt.Sprintf("round %d: stale rejection carries no StaleReplicaError: %v", round, err))
		} else if sre.Lag <= uint64(h.cfg.MaxReplicaLag) {
			h.violation(fmt.Sprintf("round %d: stale rejection reports lag %d within the bound %d",
				round, sre.Lag, sre.MaxLag))
		}
	}
	faultinject.Disable(link)
	if err := h.settle(fmt.Sprintf("round %d stale-audit", round)); err != nil {
		return err
	}
	want, err := h.primary.Estimate(replProbe, els.AlgorithmELS)
	if err != nil {
		h.violation(fmt.Sprintf("round %d: primary probe failed: %v", round, err))
		return nil
	}
	got, err := rep.Estimate(replProbe, els.AlgorithmELS)
	switch {
	case err != nil:
		h.violation(fmt.Sprintf("round %d: caught-up replica %s still rejects reads: %v", round, id, err))
	case got.CatalogVersion != want.CatalogVersion:
		h.violation(fmt.Sprintf("round %d: caught-up replica %s pinned version %d, primary %d",
			round, id, got.CatalogVersion, want.CatalogVersion))
	case math.Float64bits(got.FinalSize) != math.Float64bits(want.FinalSize):
		h.violation(fmt.Sprintf("round %d: replica %s estimate not bit-identical to primary at version %d: %x != %x",
			round, id, want.CatalogVersion, math.Float64bits(got.FinalSize), math.Float64bits(want.FinalSize)))
	}
	h.mu.Lock()
	h.report.StaleAudits++
	h.mu.Unlock()
	return nil
}

// settle drives every live follower to the primary's current version.
func (h *replHarness) settle(phase string) error {
	//ctxflow:allow harness barrier; no caller context exists
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.primary.WaitForReplicas(ctx); err != nil {
		h.violation(fmt.Sprintf("%s: fleet failed to catch up: %v", phase, err))
		return fmt.Errorf("chaos: %s: fleet failed to catch up: %w", phase, err)
	}
	return nil
}

// finalAudit records the soak's settled identity: the primary's version
// and digest plus every follower's digest (all must agree).
func (h *replHarness) finalAudit() {
	pver, pdig, err := h.primary.CatalogDigest()
	if err != nil {
		h.violation(fmt.Sprintf("final: primary digest failed: %v", err))
		return
	}
	h.report.FinalVersion = pver
	h.report.Digest = pdig
	h.report.FollowerDigests = make(map[string]string, len(h.reps))
	for i := range h.reps {
		h.auditDigest(h.cfg.Rounds, i)
		if _, fdig, err := h.reps[i].CatalogDigest(); err == nil {
			h.report.FollowerDigests[h.ids[i]] = fdig
		}
	}
	h.absorbShipping()
}

// absorbShipping folds the current primary's shipping counters into the
// report; a primary crash resets the live counters, so they are absorbed
// before every reopen and once at the end.
func (h *replHarness) absorbShipping() {
	st := h.primary.ReplicationStats()
	h.mu.Lock()
	h.report.FramesShipped += st.FramesShipped
	h.report.Resyncs += st.Resyncs
	h.report.QueueDrops += st.QueueDrops
	h.report.LinkDrops += st.LinkDrops
	h.mu.Unlock()
}

// shutdown closes the fleet and the primary.
func (h *replHarness) shutdown() {
	for _, rep := range h.reps {
		if rep == nil {
			continue
		}
		//ctxflow:allow end-of-soak drain runs after every caller context is gone
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		rep.Close(ctx)
		cancel()
	}
	closeQuietly(h.primary)
}

// violation and logEvent reuse the crash harness's conventions.
func (h *replHarness) violation(msg string) {
	h.mu.Lock()
	h.violations = append(h.violations, msg)
	h.mu.Unlock()
	h.logEvent(map[string]any{"event": "violation", "msg": msg})
}

func (h *replHarness) logEvent(fields map[string]any) {
	if h.cfg.LogW == nil {
		return
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	h.cfg.LogW.Write(append(b, '\n'))
}
