package chaos

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	els "repro"
	"repro/internal/querygen"
	"repro/internal/workpool"
)

// cachePool is the statement pool the cache soak re-issues. It includes
// the version probe, so the torn-read audit keeps collecting data points
// while the cache is being hammered.
var cachePool = append([]string{versionProbeSQL}, stormSQL...)

// RunCacheSoak storms the plan cache: a worker fleet re-issues a small,
// Zipf-skewed pool of statements while the mutator keeps publishing new
// catalog versions mid-flight, so hits, misses, invalidations, and
// version bumps race continuously. No faults are injected — the soak
// isolates the cache's consistency contract from fault recovery.
//
// The audit is two-phase. During the storm, the torn-read contract does
// the work: every estimate must equal the statistics its pinned
// CatalogVersion published, so a cache entry served across a version
// boundary — stale plan, stale estimate, anything — surfaces as a
// violation. After the storm quiesces (mutator stopped), the warm path is
// proved deterministically: the same statement estimated twice must count
// a cache hit and return a bit-identical estimate.
func RunCacheSoak(cfg Config) (*Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 60
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 200 * time.Millisecond
	}

	h := &harness{
		cfg:         cfg,
		sys:         els.New(),
		versionCard: make(map[uint64]float64),
		errsByClass: make(map[string]int),
	}
	if err := h.seed(); err != nil {
		return nil, err
	}
	h.sys.SetLimits(els.Limits{
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.MaxQueue,
		QueueTimeout:  cfg.QueueTimeout,
		Workers:       2,
	})

	stop := make(chan struct{})
	onPanic := func(err error) {
		h.violation(fmt.Sprintf("cache soak: background goroutine failed: %v", err))
	}
	var background sync.WaitGroup
	workpool.Go(&background, onPanic, func() error { h.mutator(stop); return nil })

	var workers sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		workpool.Go(&workers, onPanic, func() error { h.cacheWorker(w); return nil })
	}
	workers.Wait()
	close(stop)
	background.Wait()

	h.warmAudit()
	h.audit()
	return h.report(), nil
}

// cacheWorker re-issues statements from the pool on a Zipf schedule, so a
// few statements dominate and re-hit the cache across version bumps.
func (h *harness) cacheWorker(id int) {
	schedule := querygen.RepeatSchedule(h.cfg.Seed+100+int64(id), len(cachePool), h.cfg.OpsPerWorker, 1.5)
	for i, pick := range schedule {
		sql := cachePool[pick]
		// Alternate algorithms occasionally: the algorithm is part of the
		// cache key, so the same SQL under ELS and SM must never share an
		// entry.
		algo := els.AlgorithmELS
		if i%7 == 3 {
			algo = els.AlgorithmSM
		}
		est, err := h.sys.Estimate(sql, algo)
		if err == nil && sql == versionProbeSQL && algo == els.AlgorithmELS {
			h.mu.Lock()
			h.observations = append(h.observations, observation{est.CatalogVersion, est.FinalSize})
			h.mu.Unlock()
		}
		h.record(id, "estimate-cached", err)
	}
}

// warmAudit proves the quiesced warm path: with the mutator stopped, the
// same statement estimated twice must produce a cache hit and an
// estimate identical to the first, field for field.
func (h *harness) warmAudit() {
	before := h.sys.CacheStats()
	first, err := h.sys.Estimate(versionProbeSQL, els.AlgorithmELS)
	if err != nil {
		h.violation(fmt.Sprintf("warm audit: cold estimate failed: %v", err))
		return
	}
	second, err := h.sys.Estimate(versionProbeSQL, els.AlgorithmELS)
	if err != nil {
		h.violation(fmt.Sprintf("warm audit: warm estimate failed: %v", err))
		return
	}
	after := h.sys.CacheStats()
	if after.Hits == before.Hits {
		h.violation("warm audit: repeating a statement at a quiesced version produced no cache hit")
	}
	if !reflect.DeepEqual(first, second) {
		h.violation(fmt.Sprintf("warm audit: cached estimate differs from cold one:\n  cold %+v\n  warm %+v", first, second))
	}
}
