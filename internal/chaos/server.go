package chaos

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	els "repro"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workpool"
)

// ServerConfig shapes one network chaos storm against a live multi-tenant
// wire server. The zero value (plus a DataRoot) is a CI-sized run.
type ServerConfig struct {
	// Seed drives every random decision in the fleet.
	Seed int64
	// DataRoot is the durable tenant root (a test temp dir); every tenant
	// recovered from it after the mid-storm restart must digest-match its
	// pre-drain identity.
	DataRoot string
	// Tenants is the number of hosted tenants (default 3; minimum 2, so
	// the isolation audits have a neighbor to check).
	Tenants int
	// WorkersPerTenant is the per-tenant client swarm size (default 4).
	WorkersPerTenant int
	// OpsPerWorker is how many operations each swarm client issues
	// (default 30).
	OpsPerWorker int
	// LogW, if non-nil, receives one JSON line per event — the artifact CI
	// attaches to a server-smoke run.
	LogW io.Writer
}

// ServerReport is the audited outcome of a server storm.
type ServerReport struct {
	// Ops counts client operations issued; Succeeded the ones that
	// returned no error.
	Ops, Succeeded int
	// ErrorsByClass histograms client-observed failures by taxonomy
	// sentinel name.
	ErrorsByClass map[string]int
	// Observations counts version-consistency data points audited.
	Observations int
	// PoisonedTenant is the tenant the storm quarantined by injected
	// panics.
	PoisonedTenant string
	// DrainMillis is the graceful drain's duration.
	DrainMillis float64
	// Digests maps tenant -> "version:digest" identity recovered after
	// the restart (audited equal to the pre-drain identity).
	Digests map[string]string
	// Violations lists every contract breach. A clean storm has none.
	Violations []string
}

// Failed reports whether the storm breached any contract.
func (r *ServerReport) Failed() bool { return len(r.Violations) > 0 }

// wireTaxonomy extends the in-process taxonomy with the wire-layer and
// tenant-routing sentinels: every error a client observes must match one.
var wireTaxonomy = []struct {
	name string
	err  error
}{
	{"tenant", els.ErrTenant},
	{"bad-wire", els.ErrBadWire},
	{"stale-replica", els.ErrStaleReplica},
	{"diverged", els.ErrDiverged},
	{"durability", els.ErrDurability},
	{"canceled", els.ErrCanceled},
	{"budget", els.ErrBudgetExceeded},
	{"bad-stats", els.ErrBadStats},
	{"parse", els.ErrParse},
	{"overloaded", els.ErrOverloaded},
	{"closed", els.ErrClosed},
	{"internal", els.ErrInternal},
}

// tenantCardBase spaces each tenant's published cardinalities a million
// apart, so an estimate served from the wrong tenant's catalog lands in
// an unmistakably foreign band — the cross-tenant interference detector.
func tenantCardBase(i int) float64 { return float64(i+1) * 1_000_000 }

func tenantName(i int) string { return fmt.Sprintf("tenant%d", i) }

// serverHarness carries the storm's shared state.
type serverHarness struct {
	cfg ServerConfig

	//lockorder:level 5
	mu          sync.Mutex
	versionCard map[string]map[uint64]float64 // tenant -> acked version -> card
	obs         map[string][]observation      // tenant -> estimate probes
	errsByClass map[string]int
	violations  []string
	ops         int
	succeeded   int

	//lockorder:level 70
	logMu sync.Mutex
}

// RunServer drives the network chaos fleet end to end: N durable tenants
// behind one wire server, per-tenant client swarms issuing estimates,
// executed queries, mutations, deadline-bounded calls, and overload
// floods while saboteur clients tear frames, send garbage, stall, and
// vanish mid-request; one tenant is poisoned into quarantine by injected
// panics; the server then drains gracefully mid-traffic and restarts over
// the same data root. The audits:
//
//   - isolation: every estimate's cardinality lands in the band its
//     tenant published (no cross-tenant reads), and a quarantined tenant's
//     neighbors keep serving;
//   - taxonomy: every client-observed failure matches a public sentinel;
//   - no leaks: after the drain, every tenant is at zero in-flight and
//     zero waiting, and the server holds zero connections;
//   - durability: every tenant's recovered catalog identity
//     (version:digest) equals its pre-drain identity — no acknowledged
//     mutation was lost.
//
// The returned error reports a harness malfunction; contract breaches
// land in ServerReport.Violations.
func RunServer(ctx context.Context, cfg ServerConfig) (*ServerReport, error) {
	if cfg.Tenants < 2 {
		cfg.Tenants = 3
	}
	if cfg.WorkersPerTenant <= 0 {
		cfg.WorkersPerTenant = 4
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 30
	}
	if cfg.DataRoot == "" {
		return nil, fmt.Errorf("chaos: RunServer needs a DataRoot")
	}
	h := &serverHarness{
		cfg:         cfg,
		versionCard: make(map[string]map[uint64]float64),
		obs:         make(map[string][]observation),
		errsByClass: make(map[string]int),
	}
	report := &ServerReport{Digests: make(map[string]string)}

	srv, err := server.Start(ctx, h.serverConfig())
	if err != nil {
		return nil, fmt.Errorf("chaos: starting server: %w", err)
	}
	addr := srv.Addr()
	h.seedVersions(srv)

	// Phase 1: the storm — swarms, saboteurs, overload.
	h.logEvent(map[string]any{"event": "storm_start", "addr": addr, "tenants": cfg.Tenants})
	onPanic := func(err error) { h.violation(fmt.Sprintf("chaos: fleet goroutine failed: %v", err)) }
	var fleet sync.WaitGroup
	for ti := 0; ti < cfg.Tenants; ti++ {
		ti := ti
		workpool.Go(&fleet, onPanic, func() error { h.mutatorClient(ctx, addr, ti); return nil })
		for w := 1; w < cfg.WorkersPerTenant; w++ {
			w := w
			workpool.Go(&fleet, onPanic, func() error { h.readerClient(ctx, addr, ti, w); return nil })
		}
	}
	workpool.Go(&fleet, onPanic, func() error { h.saboteur(ctx, addr); return nil })
	fleet.Wait()

	// Phase 1b: overload flood — a one-shot client burst far past the
	// 2-slot, 2-deep admission budget; the sheds must be typed, marked
	// retryable, and carry a Retry-After hint.
	h.flood(ctx, addr)

	// Phase 2: poison the last tenant into quarantine; its neighbors must
	// not notice.
	poisoned := tenantName(cfg.Tenants - 1)
	report.PoisonedTenant = poisoned
	h.poison(ctx, addr, poisoned)
	h.auditIsolation(ctx, addr, poisoned)

	// Phase 3: pre-drain identity. The quarantined tenant's wire path
	// fails fast by design, so its digest is read in-process — quarantine
	// is server-level health state, the System under it is intact.
	preDigests := make(map[string]string)
	for i := 0; i < cfg.Tenants; i++ {
		name := tenantName(i)
		v, d, derr := srv.System(name).CatalogDigest()
		if derr != nil {
			h.violation(fmt.Sprintf("pre-drain digest of %s failed: %v", name, derr))
			continue
		}
		preDigests[name] = fmt.Sprintf("%d:%s", v, d)
	}

	// Phase 4: graceful drain under live traffic. Stalled requests
	// started before the drain must finish; a request landing mid-drain
	// must be refused with a typed draining error carrying a Retry-After
	// hint.
	h.auditDrain(ctx, addr, srv, report)

	st := srv.Stats()
	if st.ActiveConns != 0 {
		h.violation(fmt.Sprintf("connection leak: %d conns survive the drain", st.ActiveConns))
	}
	for _, ts := range st.Tenants {
		if ts.InFlight != 0 || ts.Waiting != 0 {
			h.violation(fmt.Sprintf("slot leak in %s after drain: in-flight %d, waiting %d",
				ts.Tenant, ts.InFlight, ts.Waiting))
		}
	}

	// Phase 5: restart over the same data root; every tenant — including
	// the formerly quarantined one, whose poison was process state — must
	// recover its exact pre-drain identity, over the wire.
	srv2, err := server.Start(ctx, h.serverConfig())
	if err != nil {
		return nil, fmt.Errorf("chaos: restarting server: %w", err)
	}
	for i := 0; i < cfg.Tenants; i++ {
		name := tenantName(i)
		id, derr := h.wireDigest(ctx, srv2.Addr(), name)
		if derr != nil {
			h.violation(fmt.Sprintf("post-restart digest of %s failed: %v", name, derr))
			continue
		}
		report.Digests[name] = id
		if pre, ok := preDigests[name]; ok && pre != id {
			h.violation(fmt.Sprintf("tenant %s lost acknowledged state across restart: pre-drain %s, recovered %s",
				name, pre, id))
		}
	}
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv2.Shutdown(drainCtx); err != nil {
		h.violation(fmt.Sprintf("restarted server did not drain cleanly: %v", err))
	}

	h.auditVersions()
	h.finish(report)
	return report, nil
}

// serverConfig builds the (restart-stable) server configuration: small
// admission budgets keep the queues contended, a low poison threshold
// keeps the quarantine reachable, and fault ops are enabled for the
// tenant-targeted injections.
func (h *serverHarness) serverConfig() server.Config {
	cfg := server.Config{
		Addr:            "127.0.0.1:0",
		DataRoot:        h.cfg.DataRoot,
		IdleTimeout:     5 * time.Second,
		WriteTimeout:    2 * time.Second,
		PoisonThreshold: 3,
		EnableFaultOps:  true,
		LogW:            h.cfg.LogW,
	}
	for i := 0; i < h.cfg.Tenants; i++ {
		i := i
		cfg.Tenants = append(cfg.Tenants, server.TenantConfig{
			Name: tenantName(i),
			Limits: els.Limits{
				Timeout:       2 * time.Second,
				MaxConcurrent: 2,
				MaxQueue:      2,
				QueueTimeout:  30 * time.Millisecond,
				Workers:       2,
			},
			Bootstrap: func(sys *els.System) error {
				mkRows := func(n, dom int) [][]int64 {
					rows := make([][]int64, n)
					for r := range rows {
						rows[r] = []int64{int64(r % dom), int64(r % 7)}
					}
					return rows
				}
				if err := sys.LoadTable("R", []string{"a", "b"}, mkRows(100, 10)); err != nil {
					return err
				}
				if err := sys.LoadTable("S", []string{"a", "c"}, mkRows(150, 10)); err != nil {
					return err
				}
				return sys.DeclareStats("V", tenantCardBase(i), map[string]float64{"x": 10})
			},
		})
	}
	return cfg
}

// seedVersions records each tenant's bootstrap-published identity so the
// very first estimate probes have a version to audit against.
func (h *serverHarness) seedVersions(srv *server.Server) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := 0; i < h.cfg.Tenants; i++ {
		name := tenantName(i)
		h.versionCard[name] = map[uint64]float64{srv.System(name).CatalogVersion(): tenantCardBase(i)}
	}
}

// mutatorClient is tenant ti's single mutating client: it republishes V's
// statistics with a version-correlated, tenant-banded cardinality. One
// mutator per tenant means the version a declare acknowledgement reports
// is exactly the version that declare published.
func (h *serverHarness) mutatorClient(ctx context.Context, addr string, ti int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + 1000 + int64(ti)))
	name := tenantName(ti)
	cl := h.dial(ctx, addr)
	if cl == nil {
		return
	}
	defer cl.Close()
	for i := 1; i <= h.cfg.OpsPerWorker; i++ {
		card := tenantCardBase(ti) + float64(i)
		resp, err := cl.Do(ctx, &wire.Request{
			Op: wire.OpDeclare, Tenant: name, Table: "V", Rows: card,
			Distinct: map[string]float64{"x": 10},
		})
		if err != nil {
			// A shed or torn declare is unacknowledged: nothing to record,
			// and the durability audit must not expect it.
			h.record(name, "declare", err)
			cl = h.redial(ctx, addr, cl)
			if cl == nil {
				return
			}
			continue
		}
		h.record(name, "declare", nil)
		h.mu.Lock()
		h.versionCard[name][resp.Version] = card
		h.mu.Unlock()
		h.logEvent(map[string]any{"event": "publish", "tenant": name, "version": resp.Version, "card": card})
		chaosPause(ctx, time.Duration(rng.Intn(2)+1)*time.Millisecond)
	}
}

// readerClient is one swarm client: estimates (audited for isolation),
// executed queries, explains, deadline-bounded calls, and stall faults,
// with no pacing — the swarm outnumbers the 2-slot admission budget, so
// overload sheds are part of the storm's diet.
func (h *serverHarness) readerClient(ctx context.Context, addr string, ti, w int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + int64(ti)*100 + int64(w)))
	name := tenantName(ti)
	cl := h.dial(ctx, addr)
	if cl == nil {
		return
	}
	defer func() { cl.Close() }()
	for i := 0; i < h.cfg.OpsPerWorker; i++ {
		var err error
		var op string
		switch rng.Intn(6) {
		case 0:
			op = "estimate-v"
			var resp *wire.Response
			resp, err = cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: name, SQL: versionProbeSQL})
			if err == nil {
				h.mu.Lock()
				h.obs[name] = append(h.obs[name], observation{resp.Estimate.CatalogVersion, resp.Estimate.FinalSize})
				h.mu.Unlock()
			}
		case 1:
			op = "query"
			_, err = cl.Do(ctx, &wire.Request{Op: wire.OpQuery, Tenant: name,
				SQL: stormSQL[rng.Intn(len(stormSQL))]})
		case 2:
			op = "explain"
			_, err = cl.Do(ctx, &wire.Request{Op: wire.OpExplain, Tenant: name,
				SQL: stormSQL[rng.Intn(len(stormSQL))]})
		case 3:
			op = "estimate-deadline"
			dctx, cancel := context.WithTimeout(ctx, time.Duration(rng.Intn(5)+1)*time.Millisecond)
			_, err = cl.Do(dctx, &wire.Request{Op: wire.OpEstimate, Tenant: name,
				SQL: stormSQL[rng.Intn(len(stormSQL))]})
			cancel()
		case 4:
			op = "stall"
			_, err = cl.Do(ctx, &wire.Request{Op: wire.OpFault, Tenant: name,
				Fault: "stall", StallMillis: int64(rng.Intn(5) + 1)})
		case 5:
			op = "parse-error"
			_, err = cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: name, SQL: "SELEKT nonsense"})
			if err != nil && errors.Is(err, els.ErrParse) {
				err = nil // the expected typed outcome
			}
		}
		h.record(name, op, err)
		if cl.Broken() {
			cl = h.redial(ctx, addr, cl)
			if cl == nil {
				return
			}
		}
	}
}

// saboteur attacks the wire itself: garbage frames, corrupted checksums,
// truncated headers, and mid-request hangups. None of it may wedge the
// server or leak a connection; well-framed garbage must come back as a
// typed bad-wire error.
func (h *serverHarness) saboteur(ctx context.Context, addr string) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + 7))
	var d net.Dialer
	for i := 0; i < 4*h.cfg.Tenants; i++ {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			h.violation(fmt.Sprintf("saboteur dial failed: %v", err))
			return
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		kind := ""
		switch rng.Intn(4) {
		case 0:
			kind = "garbage"
			// A syntactically valid frame holding non-JSON: the server
			// must answer typed and keep the connection.
			payload := []byte("this is not json")
			if werr := wire.WriteFrame(conn, payload); werr == nil {
				if raw, rerr := wire.ReadFrame(conn, 0); rerr == nil {
					if resp, derr := wire.DecodeResponse(raw); derr != nil || resp.Err == nil ||
						wire.Sentinel(resp.Err.Code) == nil {
						h.violation("garbage payload did not yield a typed wire error")
					}
				} else {
					h.violation(fmt.Sprintf("garbage payload: no typed reply: %v", rerr))
				}
			}
		case 1:
			kind = "bad-crc"
			// A corrupted checksum: the server counts a bad frame and
			// hangs up (the stream past it is unframed).
			payload := []byte(`{"op":"ping"}`)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:8], 0xDEADBEEF)
			conn.Write(hdr[:])
			conn.Write(payload)
			io.ReadAll(conn) // observe the hangup (reply is best-effort)
		case 2:
			kind = "truncated"
			// Half a header, then vanish.
			conn.Write([]byte{0x10, 0x00})
		case 3:
			kind = "vanish"
			// A valid request, then hang up before reading the response.
			if payload, eerr := wire.EncodeRequest(&wire.Request{ID: 1, Op: wire.OpPing}); eerr == nil {
				wire.WriteFrame(conn, payload)
			}
		}
		conn.Close()
		h.logEvent(map[string]any{"event": "sabotage", "kind": kind})
	}
}

// flood slams one tenant with concurrent one-shot clients far beyond its
// admission budget. Sheds are the expected diet; each must be typed
// overloaded, flagged retryable, and carry the queue-timeout-derived
// Retry-After hint.
func (h *serverHarness) flood(ctx context.Context, addr string) {
	name := tenantName(0)
	const clients, opsEach = 12, 15
	var burst sync.WaitGroup
	onPanic := func(err error) { h.violation(fmt.Sprintf("chaos: flood goroutine failed: %v", err)) }
	var mu sync.Mutex
	sheds := 0
	for c := 0; c < clients; c++ {
		workpool.Go(&burst, onPanic, func() error {
			cl := h.dial(ctx, addr)
			if cl == nil {
				return nil
			}
			defer cl.Close()
			for i := 0; i < opsEach; i++ {
				_, err := cl.Do(ctx, &wire.Request{Op: wire.OpQuery, Tenant: name, SQL: stormSQL[0]})
				h.record(name, "flood", err)
				if err == nil {
					continue
				}
				var remote *wire.RemoteError
				if errors.As(err, &remote) && errors.Is(err, els.ErrOverloaded) {
					mu.Lock()
					sheds++
					mu.Unlock()
					if !remote.Wire.Retryable {
						h.violation("overload shed not flagged retryable")
					}
					if remote.RetryAfter() <= 0 {
						h.violation("overload shed carries no Retry-After hint")
					}
				}
				if cl.Broken() {
					return nil
				}
			}
			return nil
		})
	}
	burst.Wait()
	if sheds == 0 {
		h.violation("overload flood produced no shed — the admission bulkhead never engaged")
	}
	h.logEvent(map[string]any{"event": "flood_done", "sheds": sheds})
}

// poison floods one tenant with injected panics until its bulkhead trips,
// then verifies the trip is sticky and typed.
func (h *serverHarness) poison(ctx context.Context, addr, name string) {
	cl := h.dial(ctx, addr)
	if cl == nil {
		return
	}
	defer cl.Close()
	quarantined := false
	for i := 0; i < 10; i++ {
		_, err := cl.Do(ctx, &wire.Request{Op: wire.OpFault, Tenant: name, Fault: "panic"})
		if err == nil {
			h.violation("injected panic reported success")
			return
		}
		var remote *wire.RemoteError
		if errors.As(err, &remote) && remote.Wire.Quarantined {
			quarantined = true
			break
		}
		if !errors.Is(err, els.ErrInternal) {
			h.violation(fmt.Sprintf("injected panic surfaced as %v, want an internal error until the trip", err))
		}
		if cl.Broken() {
			cl = h.redial(ctx, addr, cl)
			if cl == nil {
				return
			}
		}
	}
	if !quarantined {
		h.violation("tenant did not quarantine after repeated injected panics")
		return
	}
	h.logEvent(map[string]any{"event": "poisoned", "tenant": name})
	// The quarantine must be sticky and typed: a healthy request now
	// fails fast with the tenant sentinel, marked not retryable.
	_, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: name, SQL: versionProbeSQL})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) || !errors.Is(err, els.ErrTenant) || !remote.Wire.Quarantined {
		h.violation(fmt.Sprintf("quarantined tenant answered %v, want a typed quarantine error", err))
	} else if remote.Wire.Retryable {
		h.violation("quarantine error claims to be retryable; the trip is sticky until restart")
	}
}

// auditIsolation verifies the poisoned tenant's neighbors still serve.
func (h *serverHarness) auditIsolation(ctx context.Context, addr, poisoned string) {
	cl := h.dial(ctx, addr)
	if cl == nil {
		return
	}
	defer cl.Close()
	for i := 0; i < h.cfg.Tenants; i++ {
		name := tenantName(i)
		if name == poisoned {
			continue
		}
		resp, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: name, SQL: versionProbeSQL})
		if err != nil {
			h.violation(fmt.Sprintf("tenant %s failed (%v) while %s is quarantined: bulkhead breach",
				name, err, poisoned))
			continue
		}
		h.mu.Lock()
		h.obs[name] = append(h.obs[name], observation{resp.Estimate.CatalogVersion, resp.Estimate.FinalSize})
		h.mu.Unlock()
	}
}

// auditDrain exercises the graceful drain under live traffic.
func (h *serverHarness) auditDrain(ctx context.Context, addr string, srv *server.Server, report *ServerReport) {
	// A request stalled inside a healthy tenant when the drain starts: it
	// must complete (the drain waits for in-flight work).
	inflight := workpool.Async(func() error {
		cl := h.dial(ctx, addr)
		if cl == nil {
			return fmt.Errorf("chaos: no client for the in-flight probe")
		}
		defer cl.Close()
		_, err := cl.Do(ctx, &wire.Request{Op: wire.OpFault, Tenant: tenantName(0),
			Fault: "stall", StallMillis: 300})
		return err
	})
	time.Sleep(50 * time.Millisecond) // let the stall reach the tenant

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	done := workpool.Async(func() error { return srv.Shutdown(drainCtx) })

	// A request landing mid-drain: typed draining error, Retry-After set.
	// The listener may already be down, in which case the refusal happens
	// at dial — an equally acceptable drain shape.
	time.Sleep(20 * time.Millisecond)
	if cl, derr := wire.Dial(ctx, addr); derr != nil {
		h.logEvent(map[string]any{"event": "mid_drain_refused_at_dial"})
	} else {
		cl.OpTimeout = 5 * time.Second
		_, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: tenantName(0), SQL: versionProbeSQL})
		var remote *wire.RemoteError
		switch {
		case err == nil:
			h.violation("request admitted mid-drain")
		case errors.As(err, &remote):
			if !errors.Is(err, els.ErrClosed) {
				h.violation(fmt.Sprintf("mid-drain request got %v, want the closed sentinel", err))
			}
			if remote.RetryAfter() <= 0 {
				h.violation("mid-drain shed carries no Retry-After hint")
			}
		default:
			// The accept gate may already be down; a connection-level
			// refusal (bad-wire locally) is an acceptable shape too.
			if !errors.Is(err, els.ErrBadWire) {
				h.violation(fmt.Sprintf("mid-drain request got %v, want a typed shed", err))
			}
		}
		cl.Close()
	}

	if err := <-inflight; err != nil {
		h.violation(fmt.Sprintf("in-flight request did not survive the drain: %v", err))
	}
	if err := <-done; err != nil {
		h.violation(fmt.Sprintf("drain failed: %v", err))
	}
	report.DrainMillis = srv.Stats().DrainMillis
	h.logEvent(map[string]any{"event": "drained", "drain_ms": report.DrainMillis})
}

// wireDigest fetches one tenant's identity over the wire.
func (h *serverHarness) wireDigest(ctx context.Context, addr, name string) (string, error) {
	cl := h.dial(ctx, addr)
	if cl == nil {
		return "", fmt.Errorf("chaos: dial failed")
	}
	defer cl.Close()
	resp, err := cl.Do(ctx, &wire.Request{Op: wire.OpDigest, Tenant: name})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d:%s", resp.Version, resp.Digest), nil
}

// auditVersions checks every estimate probe against the band and the
// exact cardinality its tenant published for the pinned version.
func (h *serverHarness) auditVersions() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for tenant, probes := range h.obs {
		published := h.versionCard[tenant]
		for _, o := range probes {
			card, ok := published[o.version]
			if !ok {
				// The mutator's ack for this version may have been lost to
				// a torn transport while the server still published it; the
				// band check below still polices tenancy.
				h.logEventLocked(map[string]any{"event": "unmatched_version", "tenant": tenant, "version": o.version})
			} else if o.size != card {
				h.violations = append(h.violations,
					fmt.Sprintf("torn read in %s: estimate %g at version %d, which published %g",
						tenant, o.size, o.version, card))
			}
			base := 0.0
			for i := 0; i < h.cfg.Tenants; i++ {
				if tenantName(i) == tenant {
					base = tenantCardBase(i)
				}
			}
			if o.size < base || o.size >= base+1_000_000 {
				h.violations = append(h.violations,
					fmt.Sprintf("cross-tenant read: %s estimate %g is outside its band [%g, %g)",
						tenant, o.size, base, base+1_000_000))
			}
		}
	}
}

// dial opens a wire client, recording a violation on failure.
func (h *serverHarness) dial(ctx context.Context, addr string) *wire.Client {
	cl, err := wire.Dial(ctx, addr)
	if err != nil {
		h.violation(fmt.Sprintf("chaos: dial %s failed: %v", addr, err))
		return nil
	}
	cl.OpTimeout = 5 * time.Second
	return cl
}

// redial replaces a broken client.
func (h *serverHarness) redial(ctx context.Context, addr string, old *wire.Client) *wire.Client {
	old.Close()
	return h.dial(ctx, addr)
}

// record classifies one client-observed outcome; an error outside the
// extended taxonomy is a contract violation.
func (h *serverHarness) record(tenant, op string, err error) {
	h.mu.Lock()
	h.ops++
	class := "ok"
	if err == nil {
		h.succeeded++
	} else {
		class = ""
		for _, t := range wireTaxonomy {
			if errors.Is(err, t.err) {
				class = t.name
				break
			}
		}
		if class == "" {
			class = "UNCLASSIFIED"
			h.violations = append(h.violations,
				fmt.Sprintf("%s %s: error outside the taxonomy: %v", tenant, op, err))
		}
		h.errsByClass[class]++
	}
	h.mu.Unlock()
	h.logEvent(map[string]any{"event": "op", "tenant": tenant, "op": op, "class": class})
}

func (h *serverHarness) violation(msg string) {
	h.mu.Lock()
	h.violations = append(h.violations, msg)
	h.mu.Unlock()
}

func (h *serverHarness) finish(report *ServerReport) {
	h.mu.Lock()
	defer h.mu.Unlock()
	report.Ops = h.ops
	report.Succeeded = h.succeeded
	report.ErrorsByClass = h.errsByClass
	for _, probes := range h.obs {
		report.Observations += len(probes)
	}
	report.Violations = h.violations
}

// logEvent / logEventLocked write one JSONL record to the event log (the
// locked variant is for callers already holding h.mu).
func (h *serverHarness) logEvent(fields map[string]any) { h.writeLog(fields) }
func (h *serverHarness) logEventLocked(fields map[string]any) {
	h.writeLog(fields)
}

func (h *serverHarness) writeLog(fields map[string]any) {
	if h.cfg.LogW == nil {
		return
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	h.cfg.LogW.Write(append(b, '\n'))
}

// chaosPause sleeps d or until ctx dies.
func chaosPause(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
