package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDisarmedCheckIsNil(t *testing.T) {
	Reset()
	if err := Check("nope"); err != nil {
		t.Fatal(err)
	}
}

func TestEnableCheckDisable(t *testing.T) {
	Reset()
	boom := errors.New("boom")
	Enable("p", Fault{Err: boom})
	if err := Check("p"); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if got := Hits("p"); got != 1 {
		t.Fatalf("hits = %d", got)
	}
	// Other points stay disarmed.
	if err := Check("q"); err != nil {
		t.Fatal(err)
	}
	Disable("p")
	if err := Check("p"); err != nil {
		t.Fatal("disabled point must not fire")
	}
}

func TestTimesSelfDisarms(t *testing.T) {
	Reset()
	boom := errors.New("boom")
	Enable("p", Fault{Err: boom, Times: 2})
	if err := Check("p"); err == nil {
		t.Fatal("first hit must fire")
	}
	if err := Check("p"); err == nil {
		t.Fatal("second hit must fire")
	}
	if err := Check("p"); err != nil {
		t.Fatal("third hit must be disarmed")
	}
}

func TestPanicValue(t *testing.T) {
	Reset()
	Enable("p", Fault{PanicValue: "kaboom"})
	defer Reset()
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	Check("p")
	t.Fatal("Check must panic")
}

func TestPayload(t *testing.T) {
	Reset()
	Enable("p", Fault{Payload: 42})
	f, ok := Fire("p")
	if !ok || f.Payload != 42 {
		t.Fatalf("payload fault = %#v ok=%v", f, ok)
	}
	// Payload-only faults return nil from Check.
	Enable("p", Fault{Payload: 42})
	if err := Check("p"); err != nil {
		t.Fatal(err)
	}
	Reset()
}

func TestDelaySleepsOut(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("latency fault slept only %v", elapsed)
	}
}

func TestDelayInterruptedByContext(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{Delay: time.Minute, Err: errors.New("never reached")})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := CheckCtx(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("interruptible delay blocked for %v", elapsed)
	}
}

func TestResetClearsAll(t *testing.T) {
	Enable("a", Fault{Err: errors.New("x")})
	Enable("b", Fault{Err: errors.New("y")})
	Reset()
	if Check("a") != nil || Check("b") != nil {
		t.Fatal("reset must disarm everything")
	}
}
