// Package faultinject provides named probe points the pipeline consults at
// well-defined seams (catalog analysis, CSV loading, estimator
// construction, executor operators). Tests arm a probe with a Fault — an
// error to return, a value to panic with, or an arbitrary payload the probe
// site interprets (e.g. a statistics corruptor) — and the production code
// path exercises its degradation or recovery logic for real.
//
// The disarmed fast path is one atomic load, so probes may sit inside
// per-operator (though not per-tuple) code.
//
// Probe points are identified by string constants declared next to their
// probe sites; the canonical list lives in README.md ("Robustness &
// resource limits").
package faultinject

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCrash marks a simulated process kill injected at a disk probe point.
// A probe site that observes it must behave as if the process died at that
// instant: stop writing, leave whatever bytes already reached the file in
// place, and refuse further work until the store is reopened through its
// recovery path. Crash-recovery tests arm disk faults carrying this error
// (or a DiskFault payload) and then drive recovery against the resulting
// half-written state.
var ErrCrash = errors.New("faultinject: simulated crash")

// DiskFault is the Payload type disk-layer probe points interpret: it
// shapes how much of a write-path operation completes before the simulated
// crash. Arm it with Fault{Payload: DiskFault{...}}.
type DiskFault struct {
	// ShortWrite, when >= 0, is the number of leading bytes of the faulted
	// write that reach the file before the simulated kill — a torn record.
	// Negative means the full write completes (the crash lands after the
	// write but before whatever durability step follows it).
	ShortWrite int
}

// LinkFault is the Payload type replication-link probe points interpret:
// it mangles (or swallows) one encoded frame in flight between the
// primary's shipper and a follower, modeling a lossy or corrupting
// transport. Arm it with Fault{Payload: LinkFault{...}}; combine with
// Fault.Delay for a slow link.
type LinkFault struct {
	// Drop swallows the frame entirely: the follower never sees it and
	// must detect the gap from the next frame (or a nudge) and request a
	// resync.
	Drop bool
	// CorruptBit, when >= 0, flips that bit of the encoded frame — the
	// checksum must catch it. Negative leaves the frame intact.
	CorruptBit int
	// Truncate, when >= 0, delivers only that many leading bytes of the
	// frame. Negative delivers the frame whole.
	Truncate int
}

// Fault describes what an armed probe does when hit.
type Fault struct {
	// Err, if non-nil, is returned by Check at the probe site.
	Err error
	// PanicValue, if non-nil, makes Check panic with it (exercises the
	// public API's panic recovery).
	PanicValue any
	// Payload carries site-specific data; probe sites type-assert it (e.g.
	// cardest asserts a func(*catalog.TableStats) statistics corruptor).
	Payload any
	// Delay, if positive, makes Check (and CheckCtx) sleep before acting
	// on the fault — latency injection. A fault may carry only a Delay
	// (Err and PanicValue nil): the probe site slows down but succeeds.
	Delay time.Duration
	// Times bounds how often the fault fires before disarming itself;
	// 0 means every hit until Disable/Reset.
	Times int
}

type state struct {
	fault Fault
	hits  int64
}

var (
	armed atomic.Int32 // number of armed points; fast-path gate
	//lockorder:level 80
	mu     sync.Mutex
	points = map[string]*state{}
)

// Enable arms a probe point. It replaces any previous fault at that point.
func Enable(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; !ok {
		armed.Add(1)
	}
	points[point] = &state{fault: f}
}

// Disable disarms one probe point.
func Disable(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armed.Add(-1)
	}
}

// Reset disarms every probe point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*state{}
	armed.Store(0)
}

// Hits reports how many times the named point has fired since it was
// armed (0 if not armed).
func Hits(point string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := points[point]; ok {
		return s.hits
	}
	return 0
}

// Fire consumes one firing of the point's fault, if armed. The bool
// reports whether a fault fired. Self-disarms after Fault.Times firings.
func Fire(point string) (Fault, bool) {
	if armed.Load() == 0 {
		return Fault{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	s, ok := points[point]
	if !ok {
		return Fault{}, false
	}
	s.hits++
	if s.fault.Times > 0 && s.hits >= int64(s.fault.Times) {
		delete(points, point)
		armed.Add(-1)
	}
	return s.fault, true
}

// Check is the common probe-site form: it fires the point and converts the
// fault into control flow — sleeping out Delay, then panicking when
// PanicValue is set, otherwise returning Err (which may be nil for
// payload- or delay-only faults).
func Check(point string) error {
	return CheckCtx(context.Background(), point) //ctxflow:allow context-less probe shim for ungoverned sites
}

// CheckCtx is Check with an interruptible Delay: if ctx dies while the
// injected latency is being slept out, CheckCtx returns ctx.Err()
// immediately. Probe sites that can observe cancellation (e.g. via a
// governor) should prefer this form so latency faults do not delay
// shutdown.
func CheckCtx(ctx context.Context, point string) error {
	f, ok := Fire(point)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.PanicValue != nil {
		panic(f.PanicValue)
	}
	return f.Err
}
