package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func ref(t, c string) ColumnRef { return ColumnRef{Table: t, Column: c} }

func TestColumnRefKeyAndString(t *testing.T) {
	r := ref("R1", "X")
	if r.Key() != "r1.x" {
		t.Errorf("Key = %q", r.Key())
	}
	if r.String() != "R1.X" {
		t.Errorf("String = %q", r.String())
	}
	if !r.SameAs(ref("r1", "x")) {
		t.Error("SameAs should be case-insensitive")
	}
	if r.SameAs(ref("r1", "y")) {
		t.Error("different columns should not be SameAs")
	}
}

func TestCompareOpString(t *testing.T) {
	want := map[CompareOp]string{OpEQ: "=", OpNE: "<>", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), s)
		}
		if !op.Valid() {
			t.Errorf("%s should be valid", s)
		}
	}
	if CompareOp(77).Valid() || CompareOp(77).String() != "?" {
		t.Error("invalid op handling wrong")
	}
}

func TestCompareOpFlip(t *testing.T) {
	pairs := map[CompareOp]CompareOp{OpEQ: OpEQ, OpNE: OpNE, OpLT: OpGT, OpLE: OpGE, OpGT: OpLT, OpGE: OpLE}
	for op, want := range pairs {
		if op.Flip() != want {
			t.Errorf("%s.Flip() = %s, want %s", op, op.Flip(), want)
		}
		if op.Flip().Flip() != op {
			t.Errorf("Flip should be an involution for %s", op)
		}
	}
}

func TestCompareOpHolds(t *testing.T) {
	cases := []struct {
		op   CompareOp
		cmp  int
		want bool
	}{
		{OpEQ, 0, true}, {OpEQ, -1, false},
		{OpNE, 0, false}, {OpNE, 1, true},
		{OpLT, -1, true}, {OpLT, 0, false},
		{OpLE, 0, true}, {OpLE, 1, false},
		{OpGT, 1, true}, {OpGT, 0, false},
		{OpGE, 0, true}, {OpGE, -1, false},
		{CompareOp(9), 0, false},
	}
	for _, c := range cases {
		if got := c.op.Holds(c.cmp); got != c.want {
			t.Errorf("%s.Holds(%d) = %v, want %v", c.op, c.cmp, got, c.want)
		}
	}
}

func TestPredicateKinds(t *testing.T) {
	j := NewJoin(ref("R1", "x"), OpEQ, ref("R2", "y"))
	if j.Kind() != KindJoin || j.Kind().String() != "join" {
		t.Error("join kind wrong")
	}
	lcc := NewJoin(ref("R2", "y"), OpEQ, ref("r2", "w"))
	if lcc.Kind() != KindLocalColCol {
		t.Error("same-table predicate should be local-colcol (case-insensitive)")
	}
	lc := NewConst(ref("R1", "x"), OpGT, storage.Int64(500))
	if lc.Kind() != KindLocalConst {
		t.Error("const predicate kind wrong")
	}
	if KindLocalColCol.String() != "local-colcol" || KindLocalConst.String() != "local-const" {
		t.Error("kind names wrong")
	}
	if PredicateKind(9).String() != "unknown" {
		t.Error("unknown kind name wrong")
	}
	if !j.IsEquality() || lc.IsEquality() == (lc.Op == OpEQ) == false {
		t.Error("IsEquality wrong")
	}
}

func TestPredicateTablesAndReferences(t *testing.T) {
	j := NewJoin(ref("R1", "x"), OpEQ, ref("R2", "y"))
	tabs := j.Tables()
	if len(tabs) != 2 || tabs[0] != "R1" || tabs[1] != "R2" {
		t.Errorf("Tables = %v", tabs)
	}
	if !j.References("r1") || !j.References("R2") || j.References("R3") {
		t.Error("References wrong")
	}
	lc := NewConst(ref("R1", "x"), OpLT, storage.Int64(1))
	if len(lc.Tables()) != 1 || lc.Tables()[0] != "R1" {
		t.Errorf("const Tables = %v", lc.Tables())
	}
	lcc := NewJoin(ref("R2", "y"), OpEQ, ref("R2", "w"))
	if len(lcc.Tables()) != 1 {
		t.Errorf("same-table Tables = %v", lcc.Tables())
	}
}

func TestNormalizeAndCanonicalKey(t *testing.T) {
	a := NewJoin(ref("R2", "y"), OpGT, ref("R1", "x"))
	n := a.Normalize()
	if n.Left.Key() != "r1.x" || n.Op != OpLT || n.Right.Key() != "r2.y" {
		t.Errorf("Normalize = %v", n)
	}
	b := NewJoin(ref("R1", "x"), OpLT, ref("R2", "y"))
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("flipped predicates should share a canonical key")
	}
	c := NewJoin(ref("R1", "x"), OpLE, ref("R2", "y"))
	if b.CanonicalKey() == c.CanonicalKey() {
		t.Error("different ops must not collide")
	}
	lc := NewConst(ref("R1", "x"), OpGT, storage.Int64(500))
	if lc.Normalize() != lc {
		t.Error("const predicates normalize to themselves")
	}
}

func TestPredicateString(t *testing.T) {
	j := NewJoin(ref("R1", "x"), OpEQ, ref("R2", "y"))
	if j.String() != "R1.x = R2.y" {
		t.Errorf("String = %q", j.String())
	}
	lc := NewConst(ref("R1", "x"), OpGT, storage.Int64(500))
	if lc.String() != "R1.x > 500" {
		t.Errorf("String = %q", lc.String())
	}
	s := NewConst(ref("R1", "name"), OpEQ, storage.String64("o'brien"))
	if !strings.Contains(s.String(), "'o''brien'") {
		t.Errorf("string constant escaping: %q", s.String())
	}
}

func TestEval(t *testing.T) {
	b := MapBinding{
		"r1.x": storage.Int64(5),
		"r2.y": storage.Int64(5),
		"r2.w": storage.Int64(7),
	}
	cases := []struct {
		p    Predicate
		want bool
	}{
		{NewJoin(ref("R1", "x"), OpEQ, ref("R2", "y")), true},
		{NewJoin(ref("R1", "x"), OpEQ, ref("R2", "w")), false},
		{NewJoin(ref("R1", "x"), OpLT, ref("R2", "w")), true},
		{NewConst(ref("R2", "w"), OpGE, storage.Int64(7)), true},
		{NewConst(ref("R2", "w"), OpNE, storage.Int64(7)), false},
	}
	for _, c := range cases {
		got, err := c.p.Eval(b)
		if err != nil {
			t.Fatalf("%s: %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestEvalNullIsFalse(t *testing.T) {
	b := MapBinding{"r1.x": storage.Null(storage.TypeInt64), "r2.y": storage.Int64(1)}
	for _, op := range []CompareOp{OpEQ, OpNE, OpLT, OpGE} {
		got, err := NewJoin(ref("R1", "x"), op, ref("R2", "y")).Eval(b)
		if err != nil || got {
			t.Errorf("NULL %s 1 should be false, got %v err %v", op, got, err)
		}
	}
}

func TestEvalUnresolved(t *testing.T) {
	b := MapBinding{}
	if _, err := NewConst(ref("R1", "x"), OpEQ, storage.Int64(1)).Eval(b); err == nil {
		t.Error("unresolved column should error")
	}
	b2 := MapBinding{"r1.x": storage.Int64(1)}
	if _, err := NewJoin(ref("R1", "x"), OpEQ, ref("zz", "q")).Eval(b2); err == nil {
		t.Error("unresolved right column should error")
	}
}

func TestDedup(t *testing.T) {
	p1 := NewConst(ref("R1", "x"), OpGT, storage.Int64(500))
	p2 := NewConst(ref("r1", "X"), OpGT, storage.Int64(500)) // same, different case
	p3 := NewJoin(ref("R1", "x"), OpEQ, ref("R2", "y"))
	p4 := NewJoin(ref("R2", "y"), OpEQ, ref("R1", "x")) // same, flipped
	p5 := NewConst(ref("R1", "x"), OpGT, storage.Int64(501))
	out := Dedup([]Predicate{p1, p2, p3, p4, p5})
	if len(out) != 3 {
		t.Fatalf("Dedup kept %d predicates, want 3: %v", len(out), out)
	}
	if out[0].CanonicalKey() != p1.CanonicalKey() || out[1].CanonicalKey() != p3.CanonicalKey() {
		t.Error("Dedup should preserve first-occurrence order")
	}
}

func TestPartition(t *testing.T) {
	j := NewJoin(ref("R1", "x"), OpEQ, ref("R2", "y"))
	lcc := NewJoin(ref("R2", "y"), OpEQ, ref("R2", "w"))
	lc := NewConst(ref("R1", "x"), OpLT, storage.Int64(9))
	joins, locals := Partition([]Predicate{j, lcc, lc})
	if len(joins) != 1 || len(locals) != 2 {
		t.Errorf("Partition = %d joins, %d locals", len(joins), len(locals))
	}
}

func TestFormatConjunction(t *testing.T) {
	p1 := NewJoin(ref("R1", "x"), OpEQ, ref("R2", "y"))
	p2 := NewConst(ref("R1", "x"), OpLT, storage.Int64(3))
	got := FormatConjunction([]Predicate{p1, p2})
	if got != "R1.x = R2.y AND R1.x < 3" {
		t.Errorf("FormatConjunction = %q", got)
	}
	if FormatConjunction(nil) != "" {
		t.Error("empty conjunction should be empty string")
	}
}

// Property: Normalize is idempotent and preserves evaluation under any
// int-valued binding.
func TestNormalizePreservesEvalProperty(t *testing.T) {
	f := func(lv, rv int64, opRaw uint8) bool {
		op := CompareOp(int(opRaw) % 6)
		p := NewJoin(ref("B", "r"), op, ref("A", "l")) // deliberately reversed order
		n := p.Normalize()
		if n.Normalize() != n {
			return false
		}
		b := MapBinding{"b.r": storage.Int64(lv), "a.l": storage.Int64(rv)}
		g1, err1 := p.Eval(b)
		g2, err2 := n.Eval(b)
		return err1 == nil && err2 == nil && g1 == g2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
