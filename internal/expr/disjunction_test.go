package expr

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestNewDisjunctionValidation(t *testing.T) {
	if _, err := NewDisjunction(nil); err == nil {
		t.Error("empty disjunction should error")
	}
	if _, err := NewDisjunction([]Predicate{
		NewJoin(ref("A", "x"), OpEQ, ref("B", "y")),
	}); err == nil {
		t.Error("join predicate should error")
	}
	if _, err := NewDisjunction([]Predicate{
		NewConst(ref("A", "x"), OpEQ, storage.Int64(1)),
		NewConst(ref("B", "y"), OpEQ, storage.Int64(2)),
	}); err == nil {
		t.Error("cross-table disjunction should error")
	}
	d, err := NewDisjunction([]Predicate{
		NewConst(ref("A", "x"), OpEQ, storage.Int64(1)),
		NewConst(ref("a", "y"), OpLT, storage.Int64(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Table() != "A" || !d.References("a") || d.References("B") {
		t.Error("table accessors wrong")
	}
}

func TestDisjunctionEval(t *testing.T) {
	d, _ := NewDisjunction([]Predicate{
		NewConst(ref("A", "x"), OpEQ, storage.Int64(1)),
		NewConst(ref("A", "y"), OpGT, storage.Int64(10)),
	})
	cases := []struct {
		x, y int64
		want bool
	}{
		{1, 0, true},
		{0, 11, true},
		{1, 11, true},
		{0, 10, false},
	}
	for _, c := range cases {
		b := MapBinding{"a.x": storage.Int64(c.x), "a.y": storage.Int64(c.y)}
		got, err := d.Eval(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("x=%d y=%d: got %v", c.x, c.y, got)
		}
	}
	// Unresolved column errors.
	if _, err := d.Eval(MapBinding{}); err == nil {
		t.Error("unresolved disjunct should error")
	}
	// Empty disjunction is false.
	empty := Disjunction{}
	if got, _ := empty.Eval(MapBinding{}); got {
		t.Error("empty disjunction should be false")
	}
	if empty.Table() != "" {
		t.Error("empty disjunction has no table")
	}
}

func TestDisjunctionCanonicalKeyOrderInsensitive(t *testing.T) {
	p1 := NewConst(ref("A", "x"), OpEQ, storage.Int64(1))
	p2 := NewConst(ref("A", "y"), OpEQ, storage.Int64(2))
	d1, _ := NewDisjunction([]Predicate{p1, p2})
	d2, _ := NewDisjunction([]Predicate{p2, p1})
	if d1.CanonicalKey() != d2.CanonicalKey() {
		t.Error("canonical key should be order-insensitive")
	}
}

func TestDisjunctionString(t *testing.T) {
	d, _ := NewDisjunction([]Predicate{
		NewConst(ref("A", "x"), OpEQ, storage.Int64(1)),
		NewConst(ref("A", "x"), OpEQ, storage.Int64(2)),
	})
	s := d.String()
	if !strings.HasPrefix(s, "(") || !strings.Contains(s, " OR ") {
		t.Errorf("String = %q", s)
	}
}

func TestDedupDisjunctions(t *testing.T) {
	p1 := NewConst(ref("A", "x"), OpEQ, storage.Int64(1))
	p2 := NewConst(ref("A", "y"), OpEQ, storage.Int64(2))
	d1, _ := NewDisjunction([]Predicate{p1, p2})
	d2, _ := NewDisjunction([]Predicate{p2, p1})     // same set
	d3, _ := NewDisjunction([]Predicate{p1, p1, p2}) // inner dup collapses to same set
	out := DedupDisjunctions([]Disjunction{d1, d2, d3})
	if len(out) != 1 {
		t.Fatalf("dedup kept %d, want 1", len(out))
	}
	if len(out[0].Preds) != 2 {
		t.Errorf("inner dedup failed: %v", out[0].Preds)
	}
}

func TestDisjunctionsOf(t *testing.T) {
	dA, _ := NewDisjunction([]Predicate{NewConst(ref("A", "x"), OpEQ, storage.Int64(1))})
	dB, _ := NewDisjunction([]Predicate{NewConst(ref("B", "y"), OpEQ, storage.Int64(1))})
	got := DisjunctionsOf([]Disjunction{dA, dB}, "a")
	if len(got) != 1 || got[0].Table() != "A" {
		t.Errorf("DisjunctionsOf = %v", got)
	}
}
