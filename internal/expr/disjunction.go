package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Disjunction is an OR-group of local predicates over a single table:
// (p1 OR p2 OR ... OR pn). The paper's Section 9 names disjunction support
// as future work; this implementation restricts disjunctions to local
// predicates of one table — which keeps the equivalence-class machinery
// sound (an OR never implies an equality) while covering the common
// "col IN (...)"-style filters — and estimates them under the independence
// assumption.
type Disjunction struct {
	// Preds are the disjuncts. All must reference the same single table and
	// none may be a join predicate.
	Preds []Predicate
}

// NewDisjunction builds a validated disjunction. It returns an error if the
// group is empty, contains a join predicate, or spans multiple tables.
func NewDisjunction(preds []Predicate) (Disjunction, error) {
	if len(preds) == 0 {
		return Disjunction{}, fmt.Errorf("expr: empty disjunction")
	}
	table := preds[0].Left.Table
	for _, p := range preds {
		if p.Kind() == KindJoin {
			return Disjunction{}, fmt.Errorf("expr: join predicate %s not allowed in a disjunction", p)
		}
		for _, t := range p.Tables() {
			if !strings.EqualFold(t, table) {
				return Disjunction{}, fmt.Errorf("expr: disjunction spans tables %q and %q", table, t)
			}
		}
	}
	return Disjunction{Preds: preds}, nil
}

// Table returns the single table the disjunction restricts.
func (d Disjunction) Table() string {
	if len(d.Preds) == 0 {
		return ""
	}
	return d.Preds[0].Left.Table
}

// References reports whether the disjunction is over the named table.
func (d Disjunction) References(table string) bool {
	return strings.EqualFold(d.Table(), table)
}

// Eval evaluates the disjunction under a binding: true if any disjunct
// holds (SQL three-valued logic collapses unknown to false per disjunct,
// which is conservative for filters).
func (d Disjunction) Eval(b Binding) (bool, error) {
	for _, p := range d.Preds {
		ok, err := p.Eval(b)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// CanonicalKey returns a key equal for disjunctions with the same disjunct
// set (order-insensitive).
func (d Disjunction) CanonicalKey() string {
	keys := make([]string, len(d.Preds))
	for i, p := range d.Preds {
		keys[i] = p.CanonicalKey()
	}
	sort.Strings(keys)
	return "OR{" + strings.Join(keys, " | ") + "}"
}

// String renders the disjunction as SQL.
func (d Disjunction) String() string {
	parts := make([]string, len(d.Preds))
	for i, p := range d.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// DedupDisjunctions removes duplicate disjunctions (by canonical key),
// preserving first-occurrence order, and drops disjuncts duplicated within
// a group.
func DedupDisjunctions(ds []Disjunction) []Disjunction {
	seen := make(map[string]struct{}, len(ds))
	out := make([]Disjunction, 0, len(ds))
	for _, d := range ds {
		d.Preds = Dedup(d.Preds)
		k := d.CanonicalKey()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, d)
	}
	return out
}

// DisjunctionsOf returns the disjunctions restricting the named table.
func DisjunctionsOf(ds []Disjunction, table string) []Disjunction {
	var out []Disjunction
	for _, d := range ds {
		if d.References(table) {
			out = append(out, d)
		}
	}
	return out
}
