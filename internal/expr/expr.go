// Package expr models the predicates of conjunctive select-project-join
// queries: equality/inequality comparisons between two columns, or between
// a column and a constant. This is exactly the predicate language of the
// paper — conjunctions of "col op col" join predicates and "col op const"
// local predicates — plus same-table column-column predicates, which arise
// from transitive closure (rule 2b of Algorithm ELS).
package expr

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// ColumnRef names a column of a named table (or table alias). Comparisons
// between refs are case-insensitive; Key returns the canonical form.
type ColumnRef struct {
	// Table is the table or alias name.
	Table string
	// Column is the column name within the table.
	Column string
}

// Key returns the canonical lower-cased "table.column" form used for map
// keys and equality.
func (c ColumnRef) Key() string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
}

// String renders the reference as written.
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// SameAs reports whether two refs name the same column (case-insensitive).
func (c ColumnRef) SameAs(o ColumnRef) bool { return c.Key() == o.Key() }

// CompareOp is a comparison operator.
type CompareOp int

// The comparison operators of the predicate language.
const (
	OpEQ CompareOp = iota // =
	OpNE                  // <>
	OpLT                  // <
	OpLE                  // <=
	OpGT                  // >
	OpGE                  // >=
)

// String renders the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return "?"
	}
}

// Valid reports whether op is a defined operator.
func (op CompareOp) Valid() bool { return op >= OpEQ && op <= OpGE }

// Flip returns the operator with its operands swapped: a op b ≡ b Flip(op) a.
func (op CompareOp) Flip() CompareOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default: // = and <> are symmetric
		return op
	}
}

// Holds reports whether "cmp op 0" holds, where cmp is a three-way
// comparison result (storage.Compare).
func (op CompareOp) Holds(cmp int) bool {
	switch op {
	case OpEQ:
		return cmp == 0
	case OpNE:
		return cmp != 0
	case OpLT:
		return cmp < 0
	case OpLE:
		return cmp <= 0
	case OpGT:
		return cmp > 0
	case OpGE:
		return cmp >= 0
	default:
		return false
	}
}

// PredicateKind classifies a predicate by the shape the paper's algorithm
// cares about.
type PredicateKind int

const (
	// KindJoin is an equality or inequality between columns of two
	// different tables.
	KindJoin PredicateKind = iota
	// KindLocalColCol compares two columns of the same table.
	KindLocalColCol
	// KindLocalConst compares a column to a constant.
	KindLocalConst
)

// String names the kind.
func (k PredicateKind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindLocalColCol:
		return "local-colcol"
	case KindLocalConst:
		return "local-const"
	default:
		return "unknown"
	}
}

// Predicate is one conjunct of a WHERE clause: Left op Right where Right is
// either a column (join or same-table predicate) or a constant (local
// predicate). Predicates are immutable by convention.
type Predicate struct {
	// Left is the left-hand column.
	Left ColumnRef
	// Op is the comparison operator.
	Op CompareOp
	// RightIsColumn selects between Right (true) and Const (false).
	RightIsColumn bool
	// Right is the right-hand column when RightIsColumn.
	Right ColumnRef
	// Const is the right-hand constant when !RightIsColumn.
	Const storage.Value
}

// NewJoin builds a column-column predicate l op r. The result may be a
// same-table (KindLocalColCol) predicate if both refs share a table.
func NewJoin(l ColumnRef, op CompareOp, r ColumnRef) Predicate {
	return Predicate{Left: l, Op: op, RightIsColumn: true, Right: r}
}

// NewConst builds a column-constant predicate l op c.
func NewConst(l ColumnRef, op CompareOp, c storage.Value) Predicate {
	return Predicate{Left: l, Op: op, Const: c}
}

// Kind classifies the predicate.
func (p Predicate) Kind() PredicateKind {
	if !p.RightIsColumn {
		return KindLocalConst
	}
	if strings.EqualFold(p.Left.Table, p.Right.Table) {
		return KindLocalColCol
	}
	return KindJoin
}

// IsEquality reports whether the operator is =.
func (p Predicate) IsEquality() bool { return p.Op == OpEQ }

// Tables returns the distinct table names referenced, in left-right order.
func (p Predicate) Tables() []string {
	if p.RightIsColumn && !strings.EqualFold(p.Left.Table, p.Right.Table) {
		return []string{p.Left.Table, p.Right.Table}
	}
	return []string{p.Left.Table}
}

// References reports whether the predicate mentions the given table.
func (p Predicate) References(table string) bool {
	if strings.EqualFold(p.Left.Table, table) {
		return true
	}
	return p.RightIsColumn && strings.EqualFold(p.Right.Table, table)
}

// Normalize returns an equivalent predicate in canonical orientation:
// column-column predicates order their operands by Key (flipping the
// operator as needed); constant predicates are unchanged. Two equivalent
// predicates normalize to equal CanonicalKey strings, which is how ELS
// step 1 removes duplicates.
func (p Predicate) Normalize() Predicate {
	if p.RightIsColumn && p.Right.Key() < p.Left.Key() {
		return Predicate{Left: p.Right, Op: p.Op.Flip(), RightIsColumn: true, Right: p.Left}
	}
	return p
}

// CanonicalKey returns a string equal for exactly the predicates that are
// syntactically identical up to operand order and case.
func (p Predicate) CanonicalKey() string {
	n := p.Normalize()
	if n.RightIsColumn {
		return n.Left.Key() + " " + n.Op.String() + " " + n.Right.Key()
	}
	return n.Left.Key() + " " + n.Op.String() + " " + n.Const.Key()
}

// String renders the predicate as SQL.
func (p Predicate) String() string {
	if p.RightIsColumn {
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
	}
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, constString(p.Const))
}

func constString(v storage.Value) string {
	if v.Type() == storage.TypeString && !v.IsNull() {
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	}
	return v.String()
}

// Binding resolves column references to values during evaluation.
type Binding interface {
	// ColumnValue returns the current value of the referenced column, or an
	// error if the reference cannot be resolved.
	ColumnValue(ref ColumnRef) (storage.Value, error)
}

// Eval evaluates the predicate under the binding. SQL semantics: any NULL
// operand makes the comparison false (unknown).
func (p Predicate) Eval(b Binding) (bool, error) {
	l, err := b.ColumnValue(p.Left)
	if err != nil {
		return false, err
	}
	var r storage.Value
	if p.RightIsColumn {
		if r, err = b.ColumnValue(p.Right); err != nil {
			return false, err
		}
	} else {
		r = p.Const
	}
	if l.IsNull() || r.IsNull() {
		return false, nil
	}
	return p.Op.Holds(storage.Compare(l, r)), nil
}

// MapBinding is a Binding backed by a map from ColumnRef.Key() to value;
// convenient in tests and simple interpreters.
type MapBinding map[string]storage.Value

// ColumnValue implements Binding.
func (m MapBinding) ColumnValue(ref ColumnRef) (storage.Value, error) {
	if v, ok := m[ref.Key()]; ok {
		return v, nil
	}
	return storage.Value{}, fmt.Errorf("expr: unresolved column %s", ref)
}

// Dedup returns the predicates with duplicates (by CanonicalKey) removed,
// preserving first-occurrence order. This is step 1 of Algorithm ELS:
// "(R1.x > 500) AND (R1.x > 500)" collapses to a single predicate.
func Dedup(preds []Predicate) []Predicate {
	seen := make(map[string]struct{}, len(preds))
	out := make([]Predicate, 0, len(preds))
	for _, p := range preds {
		k := p.CanonicalKey()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, p)
	}
	return out
}

// Partition splits predicates into join predicates and local predicates
// (both const and same-table column comparisons count as local, as in the
// paper).
func Partition(preds []Predicate) (joins, locals []Predicate) {
	for _, p := range preds {
		if p.Kind() == KindJoin {
			joins = append(joins, p)
		} else {
			locals = append(locals, p)
		}
	}
	return joins, locals
}

// FormatConjunction renders predicates joined by AND, as in a WHERE clause.
func FormatConjunction(preds []Predicate) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}
