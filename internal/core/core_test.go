package core

import (
	"strings"
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

func ref(t, c string) expr.ColumnRef { return expr.ColumnRef{Table: t, Column: c} }

func section8Inputs() (*catalog.Catalog, []cardest.TableRef, []expr.Predicate) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("S", 1000, map[string]float64{"s": 1000}))
	cat.MustAddTable(catalog.SimpleTable("M", 10000, map[string]float64{"m": 10000}))
	cat.MustAddTable(catalog.SimpleTable("B", 50000, map[string]float64{"b": 50000}))
	cat.MustAddTable(catalog.SimpleTable("G", 100000, map[string]float64{"g": 100000}))
	tabs := []cardest.TableRef{{Table: "S"}, {Table: "M"}, {Table: "B"}, {Table: "G"}}
	preds := []expr.Predicate{
		expr.NewJoin(ref("S", "s"), expr.OpEQ, ref("M", "m")),
		expr.NewJoin(ref("M", "m"), expr.OpEQ, ref("B", "b")),
		expr.NewJoin(ref("B", "b"), expr.OpEQ, ref("G", "g")),
		expr.NewConst(ref("S", "s"), expr.OpLT, storage.Int64(100)),
	}
	return cat, tabs, preds
}

func TestRunSection8Trace(t *testing.T) {
	cat, tabs, preds := section8Inputs()
	tr, err := Run(cat, tabs, preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Given) != 4 || len(tr.Deduplicated) != 4 {
		t.Errorf("step 1: given %d, dedup %d", len(tr.Given), len(tr.Deduplicated))
	}
	// Step 2: three implied join equalities + three implied constants.
	var joins, consts int
	for _, ip := range tr.Implied {
		switch ip.RuleShape {
		case "a":
			joins++
		case "e":
			consts++
		}
	}
	if joins != 3 || consts != 3 {
		t.Errorf("implied: %d joins, %d consts (want 3, 3): %+v", joins, consts, tr.Implied)
	}
	if len(tr.Classes) != 1 || len(tr.Classes[0]) != 4 {
		t.Errorf("classes = %v", tr.Classes)
	}
	// Steps 3–4: every table folds to 100 rows / d′ = 100.
	if len(tr.Folds) != 4 {
		t.Fatalf("folds = %d", len(tr.Folds))
	}
	for _, f := range tr.Folds {
		if f.After != 100 {
			t.Errorf("fold %s: after = %g, want 100", f.Alias, f.After)
		}
		if len(f.Locals) != 1 {
			t.Errorf("fold %s: locals = %v", f.Alias, f.Locals)
		}
	}
	// Step 5: six join selectivities, all 0.01 on effective stats.
	if len(tr.JoinSelectivities) != 6 {
		t.Fatalf("join selectivities = %d, want 6", len(tr.JoinSelectivities))
	}
	for _, js := range tr.JoinSelectivities {
		if js.Selectivity != 0.01 {
			t.Errorf("S(%s) = %g, want 0.01", js.Predicate, js.Selectivity)
		}
	}
	// Step 6 and Equation 3 agree at 100.
	steps, err := tr.EstimateOrder([]string{"B", "G", "M", "S"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if s.Size != 100 {
			t.Errorf("step size = %g, want 100", s.Size)
		}
	}
	eq3, err := tr.Equation3([]string{"S", "M", "B", "G"})
	if err != nil {
		t.Fatal(err)
	}
	if eq3 != 100 {
		t.Errorf("Equation 3 = %g, want 100", eq3)
	}
	if tr.Estimator() == nil {
		t.Error("Estimator accessor nil")
	}
}

func TestRunErrors(t *testing.T) {
	cat, _, preds := section8Inputs()
	if _, err := Run(cat, nil, preds); err == nil {
		t.Error("no tables should error")
	}
	if _, err := Run(nil, []cardest.TableRef{{Table: "S"}}, nil); err == nil {
		t.Error("nil catalog should error")
	}
}

func TestTraceFormatAndDescribe(t *testing.T) {
	cat, tabs, preds := section8Inputs()
	out, err := Describe(cat, tabs, preds)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"step 1: 4 given",
		"step 2: transitive closure implied 6",
		"[rule a]",
		"[rule e]",
		"equivalence classes",
		"steps 3-4",
		"card 100000 -> 100",
		"step 5",
		"= 0.01",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRuleBShape(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("R1", 100, map[string]float64{"x": 100}))
	cat.MustAddTable(catalog.SimpleTable("R2", 1000, map[string]float64{"y": 10, "w": 50}))
	tr, err := Run(cat,
		[]cardest.TableRef{{Table: "R1"}, {Table: "R2"}},
		[]expr.Predicate{
			expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
			expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "w")),
		})
	if err != nil {
		t.Fatal(err)
	}
	var foundB bool
	for _, ip := range tr.Implied {
		if ip.RuleShape == "b" {
			foundB = true
		}
	}
	if !foundB {
		t.Errorf("expected a rule-b implied local predicate: %+v", tr.Implied)
	}
	// The Section 6 numbers surface in the fold.
	var r2 *TableFold
	for i := range tr.Folds {
		if tr.Folds[i].Alias == "R2" {
			r2 = &tr.Folds[i]
		}
	}
	if r2 == nil || r2.After != 20 {
		t.Fatalf("R2 fold = %+v, want after=20", r2)
	}
	if len(r2.JEquivGroups) != 1 {
		t.Errorf("R2 j-equiv groups = %v", r2.JEquivGroups)
	}
	if got := r2.Columns["y"][1]; got != 9 {
		t.Errorf("d′(y) = %g, want 9", got)
	}
	out := tr.Format()
	if !strings.Contains(out, "single-table j-equivalent group") {
		t.Errorf("format missing j-equiv group:\n%s", out)
	}
}

func TestUrnDistinctReexport(t *testing.T) {
	if UrnDistinct(10000, 50000) != 9933 {
		t.Error("UrnDistinct re-export wrong")
	}
}
