package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/governor"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"op":"ping"}`)
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip produced %q, want %q", got, payload)
	}
	// The stream is empty now: a clean EOF, not a wire error.
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("empty stream read = %v, want io.EOF", err)
	}
}

// Every way the bytes can be wrong yields a typed bad-wire error, and
// decode never panics on adversarial input.
func TestFrameTorture(t *testing.T) {
	mkFrame := func(payload []byte) []byte {
		var buf bytes.Buffer
		WriteFrame(&buf, payload)
		return buf.Bytes()
	}
	whole := mkFrame([]byte("hello wire"))
	cases := map[string][]byte{
		"truncated header":  whole[:5],
		"truncated payload": whole[:len(whole)-3],
		"corrupt crc": func() []byte {
			b := append([]byte(nil), whole...)
			b[4] ^= 0xFF
			return b
		}(),
		"corrupt payload": func() []byte {
			b := append([]byte(nil), whole...)
			b[len(b)-1] ^= 0xFF
			return b
		}(),
		"oversized length": func() []byte {
			b := append([]byte(nil), whole...)
			binary.LittleEndian.PutUint32(b[0:4], DefaultMaxFrame+1)
			return b
		}(),
	}
	for name, raw := range cases {
		if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, governor.ErrBadWire) {
			t.Errorf("%s: err = %v, want ErrBadWire", name, err)
		}
	}
}

// Every taxonomy sentinel crosses the wire and reconstructs: CodeOf maps
// the error to a stable code, Sentinel maps the code back, and the
// round-tripped RemoteError satisfies errors.Is against the original
// sentinel.
func TestErrorCodesRoundTripTheTaxonomy(t *testing.T) {
	all := []error{
		governor.ErrCanceled, governor.ErrBudgetExceeded, governor.ErrBadStats,
		governor.ErrParse, governor.ErrInternal, governor.ErrOverloaded,
		governor.ErrClosed, governor.ErrDurability, governor.ErrStaleReplica,
		governor.ErrDiverged, governor.ErrBadWire, governor.ErrTenant,
	}
	for _, sentinel := range all {
		wrapped := &governor.TenantError{Tenant: "x", Reason: "r", Cause: sentinel}
		var src error = sentinel
		if sentinel == governor.ErrTenant {
			src = wrapped // the structured form is how it actually travels
		}
		we := FromError(src, 0)
		if we.Code == "" || Sentinel(we.Code) == nil {
			t.Fatalf("%v: code %q has no sentinel", sentinel, we.Code)
		}
		remote := &RemoteError{Wire: *we}
		if !errors.Is(remote, sentinel) {
			t.Errorf("%v: reconstructed remote error does not match the sentinel (code %q)", sentinel, we.Code)
		}
	}
	// An unknown code (a newer server, a corrupted reply) still lands
	// inside the taxonomy: it degrades to the internal class rather than
	// producing an unclassifiable error.
	if !errors.Is(Sentinel("no-such-code"), governor.ErrInternal) {
		t.Error("unknown code did not degrade to ErrInternal")
	}
}

// The retryable flag on the wire matches els.Retryable's classification,
// and Retry-After hints attach only to the load-dependent classes.
func TestFromErrorRetryableAndHints(t *testing.T) {
	cases := []struct {
		err       error
		retryable bool
		wantHint  bool
	}{
		{governor.ErrInternal, true, false},
		{governor.ErrOverloaded, true, true},
		{governor.ErrStaleReplica, true, true},
		{governor.ErrClosed, false, true},
		{governor.ErrParse, false, false},
		{governor.ErrCanceled, false, false},
		{governor.ErrTenant, false, false},
	}
	for _, c := range cases {
		we := FromError(c.err, 30*time.Millisecond)
		if we.Retryable != c.retryable {
			t.Errorf("%v: retryable = %v, want %v", c.err, we.Retryable, c.retryable)
		}
		if got := we.RetryAfterMillis > 0; got != c.wantHint {
			t.Errorf("%v: hint attached = %v, want %v", c.err, got, c.wantHint)
		}
	}
}

func TestRequestResponseJSONRoundTrip(t *testing.T) {
	req := &Request{
		ID: 7, Op: OpDeclare, Tenant: "acme", Table: "T", Rows: 1000,
		Distinct: map[string]float64{"a": 10}, DeadlineMillis: 250,
	}
	raw, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != req.ID || back.Op != req.Op || back.Tenant != req.Tenant ||
		back.Table != req.Table || back.Rows != req.Rows || back.Distinct["a"] != 10 ||
		back.DeadlineMillis != 250 {
		t.Fatalf("request round trip mangled: %+v", back)
	}
	if _, err := DecodeRequest([]byte("not json")); !errors.Is(err, governor.ErrBadWire) {
		t.Fatalf("garbage request decode = %v, want ErrBadWire", err)
	}
	if _, err := DecodeResponse([]byte("{")); !errors.Is(err, governor.ErrBadWire) {
		t.Fatalf("garbage response decode = %v, want ErrBadWire", err)
	}
}
