package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/governor"
)

// DefaultOpTimeout bounds one request/response round trip when neither
// the caller's context nor the request carries a deadline — a client must
// never hang forever on a stalled server.
const DefaultOpTimeout = 30 * time.Second

// Client is one connection to a serving process. A Client serializes its
// requests (one in flight at a time), which matches both database/sql's
// per-Conn discipline and the chaos fleet's one-client-per-goroutine
// shape; open more clients for more concurrency.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	// OpTimeout bounds a round trip when the context has no deadline;
	// zero selects DefaultOpTimeout.
	OpTimeout time.Duration
	// MaxFrame bounds response frames; zero selects DefaultMaxFrame.
	MaxFrame uint32

	nextID uint64
	broken bool // a torn round trip desyncs the stream; fail fast after
}

// Dial connects to a server. The context bounds the dial only; per-call
// deadlines come from Do's context.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dialing %s: %w", governor.ErrBadWire, addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether a torn round trip desynced the stream; a broken
// client fails every further Do and should be discarded.
func (c *Client) Broken() bool { return c.broken }

// deadline computes the round trip's absolute deadline: the context's, if
// set, else now + OpTimeout.
func (c *Client) deadline(ctx context.Context) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	op := c.OpTimeout
	if op <= 0 {
		op = DefaultOpTimeout
	}
	return time.Now().Add(op)
}

// Do performs one request/response round trip. The context's deadline is
// propagated two ways: it bounds the local socket I/O, and (unless the
// request already carries one) it is sent as the request's DeadlineMillis
// so the server's admission queue, planner, and executor run under the
// same budget. A response carrying a wire Error is returned as a
// *RemoteError (typed: errors.Is against the els sentinels works);
// transport failures match governor.ErrBadWire and break the client —
// subsequent calls fail fast, because a torn round trip may leave an
// unread response in the stream.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	if c.broken {
		return nil, fmt.Errorf("%w: connection broken by an earlier torn round trip", governor.ErrBadWire)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", governor.ErrCanceled, err)
	}
	c.nextID++
	req.ID = c.nextID
	dl := c.deadline(ctx)
	if req.DeadlineMillis == 0 {
		if remain := time.Until(dl); remain > 0 {
			req.DeadlineMillis = remain.Milliseconds() + 1 // round up: never send 0 for a live deadline
		}
	}
	payload, err := EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	if err := c.conn.SetDeadline(dl); err != nil {
		c.broken = true
		return nil, fmt.Errorf("%w: arming deadline: %w", governor.ErrBadWire, err)
	}
	if err := WriteFrame(c.conn, payload); err != nil {
		c.broken = true
		return nil, c.transportErr(ctx, err)
	}
	raw, err := ReadFrame(c.br, c.MaxFrame)
	if err != nil {
		c.broken = true
		if err == io.EOF {
			return nil, fmt.Errorf("%w: server closed the connection", governor.ErrBadWire)
		}
		return nil, c.transportErr(ctx, err)
	}
	resp, err := DecodeResponse(raw)
	if err != nil {
		c.broken = true
		return nil, err
	}
	if resp.ID != req.ID {
		c.broken = true
		return nil, fmt.Errorf("%w: response id %d for request id %d (stream desynced)",
			governor.ErrBadWire, resp.ID, req.ID)
	}
	if resp.Err != nil {
		return resp, &RemoteError{Wire: *resp.Err}
	}
	return resp, nil
}

// transportErr classifies a socket failure: a deadline that fired because
// the caller's context expired is the caller's cancellation, not a wire
// fault.
func (c *Client) transportErr(ctx context.Context, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%w: %w", governor.ErrCanceled, cerr)
		}
		return fmt.Errorf("%w: round trip timed out: %w", governor.ErrBadWire, err)
	}
	return err
}
