// Package wire defines the protocol a serving process (cmd/elsserve)
// speaks with its clients (the database/sql driver, elsbench's client
// swarms, the chaos fleet): length-prefixed, crc32-checksummed JSON frames
// over a byte stream, carrying one request or one response each.
//
// # Frames
//
// The envelope is the same framing discipline the WAL and the replication
// stream use (internal/durable, internal/replica):
//
//	u32 payload length | u32 IEEE-CRC-32 of payload | payload
//
// with the payload being one JSON document. Every way the bytes can be
// wrong — truncated header, oversized length, short payload, checksum
// mismatch — yields an error matching governor.ErrBadWire, and decode
// never panics on adversarial input. JSON (rather than a binary layout)
// keeps the payloads inspectable on the wire and evolvable field by
// field; the envelope supplies the integrity check JSON lacks.
//
// # Error taxonomy on the wire
//
// A failed request produces a Response carrying an *Error: the sentinel
// class encoded as a stable string code, the message, a retryable flag
// computed by the same classification els.Retryable applies in-process,
// and an optional Retry-After hint for load-dependent failures
// (overloaded, draining, stale replica). RemoteError reconstructs a typed
// error on the client side, so errors.Is against the public els sentinels
// works identically whether the caller is in-process or across the wire.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/governor"
)

// DefaultMaxFrame bounds a frame payload unless the server or client is
// configured otherwise — requests and responses are small JSON documents,
// so 4 MiB is generous while still refusing absurd allocations.
const DefaultMaxFrame = 4 << 20

// frameHeaderSize is the envelope: u32 length + u32 crc.
const frameHeaderSize = 8

// WriteFrame writes one framed payload to w.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("%w: writing frame: %w", governor.ErrBadWire, err)
	}
	return nil
}

// ReadFrame reads one framed payload from r, refusing payloads larger
// than max (0 selects DefaultMaxFrame). A cleanly closed stream before
// any header byte returns io.EOF untouched, so callers can distinguish an
// orderly hangup from a torn frame; every other malformation — short
// header, oversized length, short payload, checksum mismatch — matches
// governor.ErrBadWire.
func ReadFrame(r io.Reader, max uint32) ([]byte, error) {
	if max == 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading frame header: %w", governor.ErrBadWire, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > max {
		return nil, fmt.Errorf("%w: frame payload %d bytes exceeds limit %d", governor.ErrBadWire, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: reading %d-byte frame payload: %w", governor.ErrBadWire, n, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("%w: frame checksum mismatch (computed %08x, framed %08x)",
			governor.ErrBadWire, got, want)
	}
	return payload, nil
}

// Operations a request can name.
const (
	// OpPing checks liveness; with a tenant set it also checks that the
	// tenant is routable.
	OpPing = "ping"
	// OpEstimate runs EstimateContext and returns an Estimate payload.
	OpEstimate = "estimate"
	// OpQuery runs QueryContext (plan + execute) and returns a Result.
	OpQuery = "query"
	// OpExplain runs ExplainContext and returns the report text.
	OpExplain = "explain"
	// OpDeclare registers statistics-only tables (DeclareStats) — the wire
	// mutation path; a nil-error response means the mutation is
	// acknowledged (durable on a durable tenant).
	OpDeclare = "declare"
	// OpDigest returns the tenant's catalog version and hex SHA-256
	// digest — the identity the recovery audits compare across restarts.
	OpDigest = "digest"
	// OpStats returns the server's observability document (ServerStats).
	OpStats = "stats"
	// OpFault is the chaos hook: honored only when the server was started
	// with EnableFaultOps (tests and the chaos fleet), it injects a
	// tenant-targeted failure ("panic" poisons the handler, "stall"
	// sleeps past the client's patience). Production servers reject it.
	OpFault = "fault"
)

// Request is one client request.
type Request struct {
	// ID is echoed in the response so a client can detect desynced
	// streams.
	ID uint64 `json:"id"`
	// Op names the operation (Op* constants).
	Op string `json:"op"`
	// Tenant routes the request to one tenant's bulkhead.
	Tenant string `json:"tenant,omitempty"`
	// SQL is the statement for estimate/query/explain.
	SQL string `json:"sql,omitempty"`
	// Algo selects the estimation algorithm by its String() name
	// (case-insensitive); empty means ELS.
	Algo string `json:"algo,omitempty"`
	// DeadlineMillis is the client's remaining budget for this call; the
	// server derives the serving context's deadline from it, so a client
	// deadline bounds queue wait, planning, and execution exactly like an
	// in-process context deadline would.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Table, Rows, and Distinct carry an OpDeclare mutation.
	Table    string             `json:"table,omitempty"`
	Rows     float64            `json:"rows,omitempty"`
	Distinct map[string]float64 `json:"distinct,omitempty"`
	// Fault selects the OpFault kind ("panic", "stall").
	Fault string `json:"fault,omitempty"`
	// StallMillis is how long an OpFault stall sleeps.
	StallMillis int64 `json:"stall_ms,omitempty"`
}

// Estimate is the wire form of an els.Estimate.
type Estimate struct {
	Algorithm      string   `json:"algorithm"`
	FinalSize      float64  `json:"final_size"`
	JoinOrder      []string `json:"join_order,omitempty"`
	CatalogVersion uint64   `json:"catalog_version"`
	Warnings       []string `json:"warnings,omitempty"`
}

// Result is the wire form of an executed query's els.Result.
type Result struct {
	Count          int64      `json:"count"`
	Columns        []string   `json:"columns,omitempty"`
	Rows           [][]string `json:"rows,omitempty"`
	CatalogVersion uint64     `json:"catalog_version"`
}

// Response is one server response.
type Response struct {
	// ID echoes the request's ID.
	ID uint64 `json:"id"`
	// OK is true iff Err is nil.
	OK bool `json:"ok"`
	// Err carries the typed failure of a refused or failed request.
	Err *Error `json:"error,omitempty"`
	// Estimate, Result, and Explain carry the op-specific success
	// payloads.
	Estimate *Estimate `json:"estimate,omitempty"`
	Result   *Result   `json:"result,omitempty"`
	Explain  string    `json:"explain,omitempty"`
	// Version and Digest carry OpDigest (and OpDeclare acknowledges with
	// the published Version).
	Version uint64 `json:"version,omitempty"`
	Digest  string `json:"digest,omitempty"`
	// Stats carries OpStats.
	Stats *ServerStats `json:"stats,omitempty"`
}

// Error codes: the stable wire names of the public taxonomy sentinels.
const (
	CodeCanceled     = "canceled"
	CodeMemory       = "memory"
	CodeBudget       = "budget_exceeded"
	CodeBadStats     = "bad_stats"
	CodeParse        = "parse"
	CodeInternal     = "internal"
	CodeOverloaded   = "overloaded"
	CodeClosed       = "closed"
	CodeDurability   = "durability"
	CodeStaleReplica = "stale_replica"
	CodeDiverged     = "diverged"
	CodeBadWire      = "bad_wire"
	CodeTenant       = "tenant"
)

// Error is the wire form of a typed failure.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the server-side error text.
	Message string `json:"message"`
	// Retryable mirrors els.Retryable's verdict on the server side, so a
	// client need not re-derive the classification.
	Retryable bool `json:"retryable"`
	// RetryAfterMillis hints when a retryable, load-dependent failure
	// (overloaded, draining, stale replica) is worth resubmitting; 0
	// means no hint.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
	// Tenant and Quarantined detail CodeTenant failures.
	Tenant      string `json:"tenant,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

// sentinels maps wire codes to taxonomy sentinels and back. Order is the
// classification priority for CodeOf: structured wrappers first (tenant,
// overload) so an error chaining several sentinels gets the most specific
// code. The wirecover analyzer proves the table total: every taxonomy
// sentinel exactly once, every code distinct — deleting a row no longer
// waits for a cross-version client to notice.
//
//wirecover:table
var sentinels = []struct {
	code string
	err  error
}{
	{CodeTenant, governor.ErrTenant},
	{CodeBadWire, governor.ErrBadWire},
	{CodeOverloaded, governor.ErrOverloaded},
	{CodeClosed, governor.ErrClosed},
	{CodeStaleReplica, governor.ErrStaleReplica},
	{CodeDiverged, governor.ErrDiverged},
	{CodeDurability, governor.ErrDurability},
	// Memory sits above the generic budget class: if a failure ever chains
	// both, the byte-budget code is the more actionable one.
	{CodeMemory, governor.ErrMemory},
	{CodeBudget, governor.ErrBudgetExceeded},
	{CodeCanceled, governor.ErrCanceled},
	{CodeParse, governor.ErrParse},
	{CodeBadStats, governor.ErrBadStats},
	{CodeInternal, governor.ErrInternal},
}

// CodeOf classifies err into its wire code. Errors outside the taxonomy
// (which the serving layer's recovery should have made impossible) are
// reported as internal, never dropped.
func CodeOf(err error) string {
	for _, s := range sentinels {
		if errors.Is(err, s.err) {
			return s.code
		}
	}
	return CodeInternal
}

// Sentinel returns the taxonomy sentinel a wire code names (CodeInternal
// for unknown codes, mirroring CodeOf's fallback).
func Sentinel(code string) error {
	for _, s := range sentinels {
		if s.code == code {
			return s.err
		}
	}
	return governor.ErrInternal
}

// retryableErr mirrors els.Retryable without importing the root package
// (the root package is above wire in the dependency order): internal,
// overloaded, and stale-replica failures are worth retrying. The mirror
// cannot drift: wirecover compares every declared retry set canonically
// and goes red on the first disagreement.
//
//wirecover:retryset
func retryableErr(err error) bool {
	return errors.Is(err, governor.ErrInternal) || errors.Is(err, governor.ErrOverloaded) ||
		errors.Is(err, governor.ErrStaleReplica)
}

// FromError converts a typed serving failure into its wire form.
// retryAfter is the hint attached to load-dependent codes (overloaded,
// closed, stale replica); pass 0 for no hint.
func FromError(err error, retryAfter time.Duration) *Error {
	e := &Error{
		Code:      CodeOf(err),
		Message:   err.Error(),
		Retryable: retryableErr(err),
	}
	var terr *governor.TenantError
	if errors.As(err, &terr) {
		e.Tenant = terr.Tenant
		e.Quarantined = terr.Quarantined
	}
	switch e.Code {
	case CodeOverloaded, CodeClosed, CodeStaleReplica:
		e.RetryAfterMillis = retryAfter.Milliseconds()
	}
	return e
}

// RemoteError is the client-side reconstruction of a wire Error: it
// unwraps to the taxonomy sentinel its code names, so errors.Is against
// the public els sentinels works across the wire, and exposes the
// Retry-After hint via errors.As.
type RemoteError struct {
	Wire Error
}

func (e *RemoteError) Error() string { return e.Wire.Message }

// Unwrap makes errors.Is(err, <sentinel>) hold for the code's sentinel.
func (e *RemoteError) Unwrap() error { return Sentinel(e.Wire.Code) }

// RetryAfter returns the server's resubmission hint, or 0.
func (e *RemoteError) RetryAfter() time.Duration {
	return time.Duration(e.Wire.RetryAfterMillis) * time.Millisecond
}

// TenantStats is one tenant's slice of the server observability document:
// the SLO inputs deploy/OBSERVABILITY.md defines are all sourced from
// these counters.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// CatalogVersion is the tenant's current published version.
	CatalogVersion uint64 `json:"catalog_version"`
	// Durable reports whether the tenant has a durable directory.
	Durable bool `json:"durable"`
	// Degraded and DegradedReason report a tripped bulkhead quarantine.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Requests and Failures count wire requests routed to this tenant and
	// the ones that returned a wire error.
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	// Admitted, ShedQueueFull, ShedQueueTimeout, and RejectedClosed are
	// the tenant's admission counters (els.RobustnessStats).
	Admitted         uint64 `json:"admitted"`
	ShedQueueFull    uint64 `json:"shed_queue_full"`
	ShedQueueTimeout uint64 `json:"shed_queue_timeout"`
	RejectedClosed   uint64 `json:"rejected_closed"`
	// InFlight and Waiting are current gauges; both must be zero after a
	// drain (the slot-leak audit).
	InFlight int `json:"in_flight"`
	Waiting  int `json:"waiting"`
	// BreakerState is the tenant's circuit-breaker state.
	BreakerState string `json:"breaker_state"`
	// P50/P99 are latency quantiles in milliseconds over this tenant's
	// served requests, and the admission-wait quantiles over its admitted
	// queries.
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`
	P99WaitMillis float64 `json:"p99_admission_wait_ms"`
	// SpilledQueries and SpilledBytes mirror the tenant system's memory
	// governance counters: queries that spilled a hash-join build to disk
	// and the run-file bytes they wrote. PeakQueryBytes is the largest
	// single-query working-memory high-water mark.
	SpilledQueries uint64 `json:"spilled_queries,omitempty"`
	SpilledBytes   int64  `json:"spilled_bytes,omitempty"`
	PeakQueryBytes int64  `json:"peak_query_bytes,omitempty"`
	// MemSheds counts requests the server's memory pool refused for this
	// tenant (typed retryable pressure errors) before they reached
	// admission.
	MemSheds uint64 `json:"mem_sheds,omitempty"`
	// MemInUse is the tenant's current reservation against its pool
	// share, in bytes.
	MemInUse int64 `json:"mem_in_use,omitempty"`
}

// ServerStats is the server observability document OpStats returns.
type ServerStats struct {
	// Tenants lists every hosted tenant in sorted-name order.
	Tenants []TenantStats `json:"tenants"`
	// ActiveConns is the current connection gauge; ConnsAccepted the
	// lifetime total.
	ActiveConns   int    `json:"active_conns"`
	ConnsAccepted uint64 `json:"conns_accepted"`
	// Requests counts every dispatched request; BadFrames counts frames
	// (or request documents) that failed protocol validation.
	Requests  uint64 `json:"requests"`
	BadFrames uint64 `json:"bad_frames"`
	// MemoryPool is the process-wide byte pool the server divides among
	// tenants (0 = unlimited); MemoryInUse is the pool's current total
	// reservation and MemSheds the requests refused under pool pressure.
	MemoryPool  int64  `json:"memory_pool,omitempty"`
	MemoryInUse int64  `json:"memory_in_use,omitempty"`
	MemSheds    uint64 `json:"mem_sheds,omitempty"`
	// Draining reports an in-progress graceful drain; DrainMillis is the
	// duration of the completed drain (0 before Shutdown finishes).
	Draining    bool    `json:"draining"`
	DrainMillis float64 `json:"drain_ms"`
	// UptimeMillis is time since the server started accepting.
	UptimeMillis float64 `json:"uptime_ms"`
}

// EncodeRequest and DecodeResponse (and their mirrors) are the canonical
// JSON codecs — trivial today, but the single place to version the
// payload format later.

// EncodeRequest marshals a request payload.
func EncodeRequest(req *Request) ([]byte, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding request: %w", governor.ErrBadWire, err)
	}
	return b, nil
}

// DecodeRequest unmarshals a request payload.
func DecodeRequest(b []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(b, &req); err != nil {
		return nil, fmt.Errorf("%w: decoding request: %w", governor.ErrBadWire, err)
	}
	return &req, nil
}

// EncodeResponse marshals a response payload.
func EncodeResponse(resp *Response) ([]byte, error) {
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding response: %w", governor.ErrBadWire, err)
	}
	return b, nil
}

// DecodeResponse unmarshals a response payload.
func DecodeResponse(b []byte) (*Response, error) {
	var resp Response
	if err := json.Unmarshal(b, &resp); err != nil {
		return nil, fmt.Errorf("%w: decoding response: %w", governor.ErrBadWire, err)
	}
	return &resp, nil
}
