package plancache

import "testing"

func k(q string, v uint64) Key { return Key{Query: q, Algo: 0, Version: v} }

func TestGetPutLRU(t *testing.T) {
	c := New(2)
	c.Put(k("a", 1), "A")
	c.Put(k("b", 1), "B")
	if v, ok := c.Get(k("a", 1)); !ok || v != "A" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// a was just touched, so inserting c evicts b (the LRU entry).
	c.Put(k("c", 1), "C")
	if _, ok := c.Get(k("b", 1)); ok {
		t.Fatal("b survived eviction; LRU order not honored")
	}
	if _, ok := c.Get(k("a", 1)); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestPutReplacesInPlace(t *testing.T) {
	c := New(2)
	c.Put(k("a", 1), "old")
	c.Put(k("a", 1), "new")
	if v, _ := c.Get(k("a", 1)); v != "new" {
		t.Fatalf("Get(a) = %v, want new", v)
	}
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVersionIsPartOfKey(t *testing.T) {
	c := New(8)
	c.Put(k("q", 1), "v1")
	c.Put(k("q", 2), "v2")
	if v, _ := c.Get(k("q", 1)); v != "v1" {
		t.Fatalf("version 1 entry = %v", v)
	}
	if v, _ := c.Get(k("q", 2)); v != "v2" {
		t.Fatalf("version 2 entry = %v", v)
	}
}

func TestInvalidateRetiresOldVersions(t *testing.T) {
	c := New(8)
	c.Put(k("a", 1), 1)
	c.Put(k("b", 1), 1)
	c.Put(k("a", 2), 2)
	c.Invalidate(2)
	if _, ok := c.Get(k("a", 1)); ok {
		t.Fatal("version-1 entry survived invalidation")
	}
	if _, ok := c.Get(k("b", 1)); ok {
		t.Fatal("version-1 entry survived invalidation")
	}
	if v, ok := c.Get(k("a", 2)); !ok || v != 2 {
		t.Fatalf("current-version entry lost: %v, %v", v, ok)
	}
	if st := c.Stats(); st.Invalidations != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSetCapacityShrinkEvicts(t *testing.T) {
	c := New(4)
	for i, q := range []string{"a", "b", "c", "d"} {
		c.Put(k(q, uint64(i)), q)
	}
	c.SetCapacity(2)
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 2 {
		t.Fatalf("stats after shrink = %+v", st)
	}
	// The two most recently used (c, d) survive.
	if _, ok := c.Get(k("d", 3)); !ok {
		t.Fatal("MRU entry evicted by shrink")
	}
	if _, ok := c.Get(k("a", 0)); ok {
		t.Fatal("LRU entry survived shrink")
	}
}

func TestZeroCapacitySelectsDefault(t *testing.T) {
	c := New(0)
	if st := c.Stats(); st.Capacity != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", st.Capacity, DefaultCapacity)
	}
	c.SetCapacity(-1)
	if st := c.Stats(); st.Capacity != DefaultCapacity {
		t.Fatalf("capacity after SetCapacity(-1) = %d", st.Capacity)
	}
}

func TestHitRate(t *testing.T) {
	if hr := (Stats{}).HitRate(); hr != 0 {
		t.Fatalf("empty hit rate = %g", hr)
	}
	if hr := (Stats{Hits: 3, Misses: 1}).HitRate(); hr != 0.75 {
		t.Fatalf("hit rate = %g, want 0.75", hr)
	}
}
