// Package plancache caches optimized plans and their estimates, keyed by
// (canonical normalized query, algorithm, catalog version).
//
// The key design makes invalidation exact for free: the serving layer pins
// one immutable snapshot version per query (internal/snapshot), the version
// is part of the cache key, and published catalogs are never mutated in
// place — so an entry can never be served against a catalog it was not
// computed on, no matter how writers, replication replay, or crash recovery
// move the current version. The eviction that runs on every published bump
// (see Invalidate) is therefore a space optimization, not a correctness
// mechanism: entries for superseded versions can no longer be requested by
// new queries and are dropped eagerly instead of waiting out the LRU.
//
// The canonical normalized query (see Canonical) collapses formatting-only
// differences — whitespace, predicate order, alias and keyword case — so
// semantically identical texts share one entry, while type-tagged constant
// rendering keeps semantically distinct queries from ever colliding.
package plancache

import (
	"container/list"
	"sync"
)

// DefaultCapacity bounds the cache when the caller does not configure one
// (Limits.PlanCacheSize). 512 plans comfortably covers a dashboard-style
// repeated workload while keeping the worst-case footprint small.
const DefaultCapacity = 512

// Key identifies one cached plan: the canonical normalized query text, the
// estimation algorithm that planned it, and the catalog version it was
// planned against.
type Key struct {
	// Query is the Canonical() rendering of the bound query, plus any
	// caller suffix (e.g. a forced join order).
	Query string
	// Algo discriminates estimation configurations: the same SQL planned
	// under ELS and under SM yields different plans and estimates.
	Algo int
	// Version is the catalog snapshot version the entry was computed on.
	Version uint64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses uint64
	// Evictions counts entries dropped by the LRU capacity bound.
	Evictions uint64
	// Invalidations counts entries retired because a newer catalog version
	// was published.
	Invalidations uint64
	// Entries and Capacity describe current occupancy.
	Entries, Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key Key
	val any
}

// Cache is a bounded, thread-safe LRU over immutable plan entries. Values
// stored in it are shared by every hit — callers must treat them as
// read-only (the serving layer copies its estimate template per hit).
type Cache struct {
	//lockorder:level 50
	mu            sync.Mutex
	cap           int
	lru           *list.List // front = most recently used; stores *entry
	byKey         map[Key]*list.Element
	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
}

// New creates a cache bounded to capacity entries; capacity <= 0 selects
// DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[Key]*list.Element),
	}
}

// Get returns the value cached under k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores v under k, evicting the least recently used entry if the
// cache is full. Storing an existing key replaces its value.
func (c *Cache) Put(k Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*entry).val = v
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry).key)
		c.evictions++
	}
	c.byKey[k] = c.lru.PushFront(&entry{key: k, val: v})
}

// Invalidate retires every entry whose version differs from current. The
// snapshot store calls it on each publication (mutation, replication
// replay, or recovery jump); entries at the surviving version — queries
// already pinned there — stay servable.
func (c *Cache) Invalidate(current uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		en := el.Value.(*entry)
		if en.key.Version != current {
			c.lru.Remove(el)
			delete(c.byKey, en.key)
			c.invalidations++
		}
	}
}

// SetCapacity rebounds the cache, evicting LRU entries if it shrank below
// the current occupancy. n <= 0 selects DefaultCapacity.
func (c *Cache) SetCapacity(n int) {
	if n <= 0 {
		n = DefaultCapacity
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.lru.Len(),
		Capacity:      c.cap,
	}
}
