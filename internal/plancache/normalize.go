package plancache

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlparse"
)

// Canonical renders a bound query as the cache key's normalized text. Two
// query texts map to the same canonical string exactly when they are the
// same query up to formatting: whitespace and keyword case (erased by the
// parser), table/alias/column case (erased by lower-casing, matching the
// binder's case-insensitive resolution), and the order of WHERE
// conjuncts and of disjuncts within an OR-group (erased by sorting —
// conjunction and disjunction are commutative, so the same rows qualify;
// only the non-semantic comparison counters can differ between orderings).
//
// Everything that changes meaning stays distinguishing: constants render
// type-tagged (Value.Key), so x = 1 and x = '1' never collide; the FROM
// list keeps its order (join-order tie-breaking and SELECT * column order
// depend on it); the select list, GROUP BY, and aggregate shapes keep
// their order. Every component is length-prefixed, so no string constant
// can forge a separator and alias two different queries onto one key.
//
// Canonical must be called on a bound query: binding qualifies every
// column with its table, which is what makes the rendering unambiguous.
// Binding consults the catalog, but the cache key pairs the canonical
// text with the catalog version, so a text that binds differently under
// two catalogs simply occupies two cache slots.
func Canonical(q *sqlparse.Query) string {
	var b strings.Builder
	var sel []string
	switch {
	case len(q.Select) > 0:
		for _, it := range q.Select {
			target := "*"
			if !it.Star {
				target = it.Col.Key()
			}
			sel = append(sel, fmt.Sprintf("a%d(%s)", it.Agg, target))
		}
	case q.CountStar:
		sel = []string{"count(*)"}
	case q.Star:
		sel = []string{"*"}
	default:
		for _, c := range q.Projection {
			sel = append(sel, c.Key())
		}
	}
	section(&b, "s", sel)

	group := make([]string, 0, len(q.GroupBy))
	for _, c := range q.GroupBy {
		group = append(group, c.Key())
	}
	section(&b, "g", group)

	from := make([]string, 0, len(q.Tables))
	for _, t := range q.Tables {
		name := strings.ToLower(t.Name())
		from = append(from, fmt.Sprintf("%d:%s=%s", len(name), name, strings.ToLower(t.Table)))
	}
	section(&b, "f", from)

	where := make([]string, 0, len(q.Where))
	for _, p := range q.Where {
		where = append(where, p.CanonicalKey())
	}
	sort.Strings(where)
	section(&b, "w", where)

	ors := make([]string, 0, len(q.Disjunctions))
	for _, d := range q.Disjunctions {
		ks := make([]string, 0, len(d.Preds))
		for _, p := range d.Preds {
			ks = append(ks, p.CanonicalKey())
		}
		sort.Strings(ks)
		var g strings.Builder
		for _, k := range ks {
			fmt.Fprintf(&g, "%d:%s", len(k), k)
		}
		ors = append(ors, g.String())
	}
	sort.Strings(ors)
	section(&b, "o", ors)
	return b.String()
}

// section appends one named, length-prefixed component list.
func section(b *strings.Builder, name string, items []string) {
	b.WriteString(name)
	b.WriteByte(':')
	for _, it := range items {
		fmt.Fprintf(b, "%d:%s", len(it), it)
	}
	b.WriteByte('\n')
}
