package plancache

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/querygen"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// bindCat is a catalog with enough tables to bind every test query.
func bindCat(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for name, cols := range map[string]map[string]float64{
		"R": {"a": 10, "b": 7},
		"S": {"a": 10, "c": 7},
	} {
		if err := cat.AddTable(catalog.SimpleTable(name, 100, cols)); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func canon(t testing.TB, cat *catalog.Catalog, sql string) string {
	t.Helper()
	q, err := sqlparse.ParseAndBind(sql, cat)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	return Canonical(q)
}

// Formatting-only differences — whitespace, keyword/identifier case,
// conjunct order, column-column operand orientation — must collide onto
// one canonical string.
func TestCanonicalCollidesEquivalentTexts(t *testing.T) {
	cat := bindCat(t)
	base := canon(t, cat, "SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5")
	for _, sql := range []string{
		"select   count(*)  from R,S where R.a=S.a and R.b<5",
		"SELECT COUNT(*) FROM r, s WHERE r.B < 5 AND r.A = s.A",
		"SELECT COUNT(*) FROM R, S WHERE S.a = R.a AND R.b < 5",
		"\tSELECT\nCOUNT( * )\nFROM R , S\nWHERE R.b < 5 AND S.a = R.a",
	} {
		if got := canon(t, cat, sql); got != base {
			t.Errorf("%q canonicalized to\n%q\nwant\n%q", sql, got, base)
		}
	}
}

// Alias case is erased (binding is case-insensitive), but the alias NAME
// is part of the key: an aliased and an unaliased rendering of the same
// join bind to different qualified columns and stay distinct, while two
// case-variants of one alias collide.
func TestCanonicalAliasCase(t *testing.T) {
	cat := bindCat(t)
	a := canon(t, cat, "SELECT COUNT(*) FROM R AS x, S AS y WHERE x.a = y.a")
	b := canon(t, cat, "select count(*) from R as X, S as Y where X.A = Y.A")
	if a != b {
		t.Errorf("alias case variants differ:\n%q\n%q", a, b)
	}
	c := canon(t, cat, "SELECT COUNT(*) FROM R x, S y WHERE x.a = y.a")
	if a != c {
		t.Errorf("AS and bare alias forms differ:\n%q\n%q", a, c)
	}
}

// Everything that changes meaning must keep queries distinct: constants,
// operators, constant types, FROM order, select shape.
func TestCanonicalDistinguishesSemantics(t *testing.T) {
	cat := bindCat(t)
	base := canon(t, cat, "SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5")
	for _, sql := range []string{
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 6",
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b <= 5",
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5.0",
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < '5'",
		"SELECT COUNT(*) FROM S, R WHERE R.a = S.a AND R.b < 5",
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a",
		"SELECT COUNT(*) FROM R, S WHERE R.a <> S.a AND R.b < 5",
	} {
		if got := canon(t, cat, sql); got == base {
			t.Errorf("%q collided with the base query:\n%q", sql, got)
		}
	}
	// The duplicated conjunct is also distinct from the single one (the
	// sorted WHERE section keeps multiplicity).
	one := canon(t, cat, "SELECT COUNT(*) FROM R WHERE R.b < 5")
	if two := canon(t, cat, "SELECT COUNT(*) FROM R WHERE R.b < 5 AND R.b < 5"); two == one {
		t.Errorf("duplicate conjunct collided: %q", two)
	}
}

// A string constant cannot forge section separators: every component is
// length-prefixed, so a literal crafted to look like the canonical
// rendering of another query still keys separately.
func TestCanonicalInjectionResistant(t *testing.T) {
	cat := bindCat(t)
	a := canon(t, cat, "SELECT COUNT(*) FROM R WHERE R.b = 'x' AND R.a = 'y'")
	b := canon(t, cat, "SELECT COUNT(*) FROM R WHERE R.b = 'x' AND r.a = 'y'")
	if a != b {
		t.Errorf("case variant differs:\n%q\n%q", a, b)
	}
	// The injected literal embeds a full rendered predicate.
	c := canon(t, cat, `SELECT COUNT(*) FROM R WHERE R.b = 'x14:r.a = `+"\x03y'")
	if c == a {
		t.Errorf("crafted literal collided with two-predicate query: %q", c)
	}
}

// Disjunction groups collide across disjunct order and group order, and
// stay distinct from the corresponding conjunctive query.
func TestCanonicalDisjunctions(t *testing.T) {
	cat := bindCat(t)
	a := canon(t, cat, "SELECT COUNT(*) FROM R WHERE (R.b = 1 OR R.b = 2) AND (R.a = 3 OR R.a = 4)")
	b := canon(t, cat, "SELECT COUNT(*) FROM R WHERE (R.a = 4 OR R.a = 3) AND (R.b = 2 OR R.b = 1)")
	if a != b {
		t.Errorf("OR-group orderings differ:\n%q\n%q", a, b)
	}
	c := canon(t, cat, "SELECT COUNT(*) FROM R WHERE R.b = 1 AND R.a = 3")
	if c == a {
		t.Error("conjunctive query collided with disjunctive one")
	}
}

// renderVariant renders q as SQL that differs from q.SQL() only in
// formatting: shuffled conjunct order, flipped column-column operands,
// random identifier/keyword case, and random whitespace.
func renderVariant(q querygen.Query, rng *rand.Rand) string {
	sp := func() string { return strings.Repeat(" ", 1+rng.Intn(3)) }
	mangle := func(s string) string {
		b := []byte(s)
		for i, ch := range b {
			if rng.Intn(2) == 0 {
				b[i] = byte(strings.ToUpper(string(ch))[0])
			} else {
				b[i] = byte(strings.ToLower(string(ch))[0])
			}
		}
		return string(b)
	}
	var sb strings.Builder
	sb.WriteString(mangle("select") + sp() + mangle("count") + "(*)" + sp() + mangle("from") + sp())
	for i, t := range q.Tables {
		if i > 0 {
			sb.WriteString(sp() + "," + sp())
		}
		sb.WriteString(mangle(t.Table))
	}
	preds := append([]expr.Predicate(nil), q.Preds...)
	rng.Shuffle(len(preds), func(i, j int) { preds[i], preds[j] = preds[j], preds[i] })
	for i, p := range preds {
		if i == 0 {
			sb.WriteString(sp() + mangle("where") + sp())
		} else {
			sb.WriteString(sp() + mangle("and") + sp())
		}
		l, op := p.Left, p.Op
		if p.RightIsColumn && rng.Intn(2) == 0 {
			// Flip operand order; the flipped operator keeps the meaning.
			sb.WriteString(mangle(p.Right.String()) + sp() + op.Flip().String() + sp() + mangle(l.String()))
			continue
		}
		sb.WriteString(mangle(l.String()) + sp() + op.String() + sp())
		if p.RightIsColumn {
			sb.WriteString(mangle(p.Right.String()))
		} else {
			sb.WriteString(p.Const.String())
		}
	}
	return sb.String()
}

// fuzzCatalog registers statistics for every table of a generated query so
// its SQL binds.
func fuzzCatalog(q querygen.Query) (*catalog.Catalog, error) {
	cat := catalog.New()
	for _, spec := range q.Specs {
		cols := make(map[string]float64, len(spec.Columns))
		for _, c := range spec.Columns {
			cols[c.Name] = float64(c.Domain)
		}
		if err := cat.AddTable(catalog.SimpleTable(spec.Name, float64(spec.Rows), cols)); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// FuzzNormalizer drives seeded random queries through the canonicalizer:
// a formatting-only variant (whitespace, identifier case, conjunct order,
// flipped operands) must collide with the original, and a semantically
// changed variant (one constant bumped, or an extra conjunct) must not.
// Parse, bind, and Canonical must never panic along the way.
func FuzzNormalizer(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(7), int64(11))
	f.Add(int64(42), int64(-3))
	f.Fuzz(func(t *testing.T, seed, mutSeed int64) {
		q := querygen.Generate(seed)
		cat, err := fuzzCatalog(q)
		if err != nil {
			t.Skip()
		}
		base, err := sqlparse.ParseAndBind(q.SQL(), cat)
		if err != nil {
			t.Fatalf("generated SQL failed to bind: %q: %v", q.SQL(), err)
		}
		baseKey := Canonical(base)

		rng := rand.New(rand.NewSource(mutSeed))
		for i := 0; i < 4; i++ {
			variant := renderVariant(q, rng)
			vq, err := sqlparse.ParseAndBind(variant, cat)
			if err != nil {
				t.Fatalf("formatting variant failed to bind: %q: %v", variant, err)
			}
			if got := Canonical(vq); got != baseKey {
				t.Fatalf("formatting variant changed the key:\n  base    %q -> %q\n  variant %q -> %q",
					q.SQL(), baseKey, variant, got)
			}
		}

		// Semantic change: an extra conjunct no generated query carries.
		distinct := q
		distinct.Preds = append(append([]expr.Predicate(nil), q.Preds...),
			expr.NewConst(expr.ColumnRef{Table: q.Tables[0].Table, Column: "v"},
				expr.OpNE, storage.Int64(1000003)))
		dq, err := sqlparse.ParseAndBind(distinct.SQL(), cat)
		if err != nil {
			t.Fatalf("distinct variant failed to bind: %q: %v", distinct.SQL(), err)
		}
		if Canonical(dq) == baseKey {
			t.Fatalf("semantically distinct query collided:\n  %q\n  %q", q.SQL(), distinct.SQL())
		}
	})
}
