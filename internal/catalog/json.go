package catalog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/governor"
	"repro/internal/storage"
)

// StatsFormatVersion is the format version ExportJSON writes. Version 2
// added the format_version header and per-table checksums; version-less
// (legacy, "version 1") files still import, without integrity checking.
const StatsFormatVersion = 2

// jsonCatalog is the serialized form of a catalog's statistics (data tables
// and indexes are not serialized; statistics are what optimizers exchange).
type jsonCatalog struct {
	FormatVersion int `json:"format_version,omitempty"`
	// CatalogVersion is the published snapshot version the statistics were
	// captured at. Only durable checkpoints (internal/durable) write it;
	// plain stats exports omit it and import as version 0.
	CatalogVersion uint64      `json:"catalog_version,omitempty"`
	Tables         []jsonTable `json:"tables"`
}

type jsonTable struct {
	Name     string       `json:"name"`
	Card     float64      `json:"card"`
	RowWidth int          `json:"row_width"`
	Columns  []jsonColumn `json:"columns"`
	// Checksum is the IEEE CRC-32 (hex) of the table's canonical compact
	// JSON encoding with this field empty. It detects a corrupted or
	// hand-mangled section at import time.
	Checksum string `json:"checksum,omitempty"`
}

type jsonColumn struct {
	Name      string         `json:"name"`
	Type      string         `json:"type"`
	Distinct  float64        `json:"distinct"`
	NullCount float64        `json:"null_count,omitempty"`
	HasRange  bool           `json:"has_range,omitempty"`
	Min       float64        `json:"min,omitempty"`
	Max       float64        `json:"max,omitempty"`
	Histogram *jsonHistogram `json:"histogram,omitempty"`
}

type jsonHistogram struct {
	Kind    string       `json:"kind"`
	Total   float64      `json:"total"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Count    float64 `json:"count"`
	Distinct float64 `json:"distinct"`
}

var typeNames = map[storage.Type]string{
	storage.TypeInt64:   "int64",
	storage.TypeFloat64: "float64",
	storage.TypeString:  "string",
	storage.TypeBool:    "bool",
}

var typeByName = map[string]storage.Type{
	"int64": storage.TypeInt64, "float64": storage.TypeFloat64,
	"string": storage.TypeString, "bool": storage.TypeBool,
}

// tableChecksum computes a table section's integrity checksum: the IEEE
// CRC-32 of its compact JSON encoding with the Checksum field cleared.
// The encoding is canonical (fixed field order, shortest float form), so
// the value is stable across export/import round trips and independent of
// the file's indentation.
func tableChecksum(jt jsonTable) string {
	jt.Checksum = ""
	b, err := json.Marshal(jt)
	if err != nil {
		// Marshaling a plain struct of floats/strings cannot fail.
		panic(fmt.Sprintf("catalog: marshal table section: %v", err))
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(b))
}

// encodeTable builds the canonical jsonTable section for one table's
// statistics, checksum filled in.
func encodeTable(ts *TableStats) jsonTable {
	jt := jsonTable{Name: ts.Name, Card: ts.Card, RowWidth: ts.RowWidth}
	// Deterministic column order.
	var keys []string
	for k := range ts.Columns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cs := ts.Columns[k]
		jc := jsonColumn{
			Name: cs.Name, Type: typeNames[cs.Type], Distinct: cs.Distinct,
			NullCount: cs.NullCount, HasRange: cs.HasRange, Min: cs.Min, Max: cs.Max,
		}
		if cs.Hist != nil {
			jh := &jsonHistogram{Kind: cs.Hist.Kind.String(), Total: cs.Hist.Total}
			for _, b := range cs.Hist.Buckets {
				jh.Buckets = append(jh.Buckets, jsonBucket(b))
			}
			jc.Histogram = jh
		}
		jt.Columns = append(jt.Columns, jc)
	}
	jt.Checksum = tableChecksum(jt)
	return jt
}

// exportJSON writes the v2 stats document for the named tables (all tables
// when names is nil), stamping catalogVersion when non-zero.
func (c *Catalog) exportJSON(w io.Writer, names []string, catalogVersion uint64) error {
	out := jsonCatalog{FormatVersion: StatsFormatVersion, CatalogVersion: catalogVersion}
	if names == nil {
		names = c.TableNames()
	}
	for _, name := range names {
		ts := c.Table(name)
		if ts == nil {
			return fmt.Errorf("%w: exporting unknown table %q", governor.ErrBadStats, name)
		}
		out.Tables = append(out.Tables, encodeTable(ts))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ExportJSON writes the catalog's statistics as JSON — the portable
// artifact for sharing optimizer statistics between runs or tools. The
// file carries a format_version header and a per-table checksum so
// ImportJSON can reject truncated or corrupted files.
func (c *Catalog) ExportJSON(w io.Writer) error { return c.exportJSON(w, nil, 0) }

// ExportSubsetJSON is ExportJSON restricted to the named tables, in the
// given order. The durable write-ahead log uses it to record just the
// tables a mutation changed.
func (c *Catalog) ExportSubsetJSON(w io.Writer, names []string) error {
	return c.exportJSON(w, names, 0)
}

// ExportVersionedJSON is ExportJSON with the published catalog version
// stamped into the header — the checkpoint form written by
// internal/durable.
func (c *Catalog) ExportVersionedJSON(w io.Writer, version uint64) error {
	return c.exportJSON(w, nil, version)
}

// SectionChecksum returns the canonical per-section checksum of the named
// table's statistics, or "" when the table is unknown. Two tables with
// equal checksums carry identical optimizer-visible statistics.
func (c *Catalog) SectionChecksum(name string) string {
	ts := c.Table(name)
	if ts == nil {
		return ""
	}
	return encodeTable(ts).Checksum
}

// sectionBytes is the canonical compact encoding of a table's section,
// the byte string DiffTables compares (checksums alone would make a CRC
// collision silently drop a changed table from the WAL delta).
func sectionBytes(ts *TableStats) []byte {
	b, err := json.Marshal(encodeTable(ts))
	if err != nil {
		// Marshaling a plain struct of floats/strings cannot fail.
		panic(fmt.Sprintf("catalog: marshal table section: %v", err))
	}
	return b
}

// DiffTables returns the names of tables (in next's registration order)
// whose statistics differ from prev's — added tables and tables whose
// canonical section encoding changed. The durable layer logs exactly this
// delta per catalog mutation. Tables are never deleted, so a prev-only
// table cannot occur.
func DiffTables(prev, next *Catalog) []string {
	var changed []string
	for _, name := range next.TableNames() {
		pts, nts := prev.Table(name), next.Table(name)
		if pts == nil || !bytes.Equal(sectionBytes(pts), sectionBytes(nts)) {
			changed = append(changed, name)
		}
	}
	return changed
}

// decodeError maps a JSON decoding failure onto ErrBadStats with a
// line:column diagnostic computed from the decoder's byte offset, so a
// truncated or mangled stats file reports where it broke instead of
// silently importing a partial catalog.
func decodeError(data []byte, err error) error {
	var offset int64 = -1
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		offset = syn.Offset
	case errors.As(err, &typ):
		offset = typ.Offset
	}
	if offset < 0 || offset > int64(len(data)) {
		return fmt.Errorf("%w: stats file: %w", governor.ErrBadStats, err)
	}
	line, col := 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("%w: stats file line %d, column %d (byte %d): %w",
		governor.ErrBadStats, line, col, offset, err)
}

// ImportJSON loads statistics previously written by ExportJSON into the
// catalog (replacing same-named tables). Version-2 files (the current
// format) are integrity-checked: the format_version header must not be
// newer than this build understands, and every table section's checksum
// must match, so a truncated or corrupted file fails with ErrBadStats and
// a line diagnostic. Legacy files without a header import without
// checksum verification.
func (c *Catalog) ImportJSON(r io.Reader) error {
	_, err := c.ImportVersionedJSON(r)
	return err
}

// ImportVersionedJSON is ImportJSON that additionally returns the
// catalog_version header the file carries (0 for plain stats exports;
// non-zero for durable checkpoints).
func (c *Catalog) ImportVersionedJSON(r io.Reader) (uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("%w: reading stats file: %w", governor.ErrBadStats, err)
	}
	var in jsonCatalog
	if err := json.Unmarshal(data, &in); err != nil {
		return 0, decodeError(data, err)
	}
	if in.FormatVersion > StatsFormatVersion {
		return 0, fmt.Errorf("%w: stats file format version %d is newer than the supported version %d",
			governor.ErrBadStats, in.FormatVersion, StatsFormatVersion)
	}
	if in.FormatVersion >= 2 {
		for i, jt := range in.Tables {
			if jt.Checksum == "" {
				return 0, fmt.Errorf("%w: stats file: table %q (section %d): missing checksum",
					governor.ErrBadStats, jt.Name, i)
			}
			if got := tableChecksum(jt); got != jt.Checksum {
				return 0, fmt.Errorf("%w: stats file: table %q (section %d): checksum mismatch (file says %s, content hashes to %s) — the section was corrupted or edited",
					governor.ErrBadStats, jt.Name, i, jt.Checksum, got)
			}
		}
	}
	for _, jt := range in.Tables {
		ts := &TableStats{
			Name: jt.Name, Card: jt.Card, RowWidth: jt.RowWidth,
			Columns: make(map[string]*ColumnStats, len(jt.Columns)),
		}
		for _, jc := range jt.Columns {
			typ, ok := typeByName[jc.Type]
			if !ok {
				return 0, fmt.Errorf("%w: stats file: table %s column %s: unknown type %q",
					governor.ErrBadStats, jt.Name, jc.Name, jc.Type)
			}
			cs := &ColumnStats{
				Name: jc.Name, Type: typ, Distinct: jc.Distinct,
				NullCount: jc.NullCount, HasRange: jc.HasRange, Min: jc.Min, Max: jc.Max,
			}
			if jc.Histogram != nil {
				kind := EquiWidth
				if jc.Histogram.Kind == EquiDepth.String() {
					kind = EquiDepth
				}
				h := &Histogram{Kind: kind, Total: jc.Histogram.Total}
				for _, b := range jc.Histogram.Buckets {
					h.Buckets = append(h.Buckets, Bucket(b))
				}
				cs.Hist = h
			}
			ts.Columns[key(jc.Name)] = cs
		}
		if err := c.AddTable(ts); err != nil {
			if !errors.Is(err, governor.ErrBadStats) {
				err = fmt.Errorf("%w: stats file: table %q: %w", governor.ErrBadStats, jt.Name, err)
			}
			return 0, err
		}
	}
	return in.CatalogVersion, nil
}
