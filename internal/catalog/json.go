package catalog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/storage"
)

// jsonCatalog is the serialized form of a catalog's statistics (data tables
// and indexes are not serialized; statistics are what optimizers exchange).
type jsonCatalog struct {
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	Name     string       `json:"name"`
	Card     float64      `json:"card"`
	RowWidth int          `json:"row_width"`
	Columns  []jsonColumn `json:"columns"`
}

type jsonColumn struct {
	Name      string         `json:"name"`
	Type      string         `json:"type"`
	Distinct  float64        `json:"distinct"`
	NullCount float64        `json:"null_count,omitempty"`
	HasRange  bool           `json:"has_range,omitempty"`
	Min       float64        `json:"min,omitempty"`
	Max       float64        `json:"max,omitempty"`
	Histogram *jsonHistogram `json:"histogram,omitempty"`
}

type jsonHistogram struct {
	Kind    string       `json:"kind"`
	Total   float64      `json:"total"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Count    float64 `json:"count"`
	Distinct float64 `json:"distinct"`
}

var typeNames = map[storage.Type]string{
	storage.TypeInt64:   "int64",
	storage.TypeFloat64: "float64",
	storage.TypeString:  "string",
	storage.TypeBool:    "bool",
}

var typeByName = map[string]storage.Type{
	"int64": storage.TypeInt64, "float64": storage.TypeFloat64,
	"string": storage.TypeString, "bool": storage.TypeBool,
}

// ExportJSON writes the catalog's statistics as JSON — the portable
// artifact for sharing optimizer statistics between runs or tools.
func (c *Catalog) ExportJSON(w io.Writer) error {
	out := jsonCatalog{}
	for _, name := range c.TableNames() {
		ts := c.Table(name)
		jt := jsonTable{Name: ts.Name, Card: ts.Card, RowWidth: ts.RowWidth}
		// Deterministic column order.
		var keys []string
		for k := range ts.Columns {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cs := ts.Columns[k]
			jc := jsonColumn{
				Name: cs.Name, Type: typeNames[cs.Type], Distinct: cs.Distinct,
				NullCount: cs.NullCount, HasRange: cs.HasRange, Min: cs.Min, Max: cs.Max,
			}
			if cs.Hist != nil {
				jh := &jsonHistogram{Kind: cs.Hist.Kind.String(), Total: cs.Hist.Total}
				for _, b := range cs.Hist.Buckets {
					jh.Buckets = append(jh.Buckets, jsonBucket(b))
				}
				jc.Histogram = jh
			}
			jt.Columns = append(jt.Columns, jc)
		}
		out.Tables = append(out.Tables, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ImportJSON loads statistics previously written by ExportJSON into the
// catalog (replacing same-named tables).
func (c *Catalog) ImportJSON(r io.Reader) error {
	var in jsonCatalog
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	for _, jt := range in.Tables {
		ts := &TableStats{
			Name: jt.Name, Card: jt.Card, RowWidth: jt.RowWidth,
			Columns: make(map[string]*ColumnStats, len(jt.Columns)),
		}
		for _, jc := range jt.Columns {
			typ, ok := typeByName[jc.Type]
			if !ok {
				return fmt.Errorf("catalog: table %s column %s: unknown type %q", jt.Name, jc.Name, jc.Type)
			}
			cs := &ColumnStats{
				Name: jc.Name, Type: typ, Distinct: jc.Distinct,
				NullCount: jc.NullCount, HasRange: jc.HasRange, Min: jc.Min, Max: jc.Max,
			}
			if jc.Histogram != nil {
				kind := EquiWidth
				if jc.Histogram.Kind == EquiDepth.String() {
					kind = EquiDepth
				}
				h := &Histogram{Kind: kind, Total: jc.Histogram.Total}
				for _, b := range jc.Histogram.Buckets {
					h.Buckets = append(h.Buckets, Bucket(b))
				}
				cs.Hist = h
			}
			ts.Columns[key(jc.Name)] = cs
		}
		if err := c.AddTable(ts); err != nil {
			return err
		}
	}
	return nil
}
