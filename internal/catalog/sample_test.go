package catalog

import (
	"math"
	"testing"

	"repro/internal/storage"
)

func intTable(t *testing.T, name string, vals []int64) *storage.Table {
	t.Helper()
	tbl := storage.NewTable(name, storage.MustSchema(storage.ColumnDef{Name: "v", Type: storage.TypeInt64}))
	for _, v := range vals {
		tbl.MustAppendRow(storage.Int64(v))
	}
	return tbl
}

func TestAnalyzeSampleFullCoverageIsExact(t *testing.T) {
	c := New()
	tbl := intTable(t, "t", []int64{1, 2, 3, 3, 3, 4})
	ts, err := c.AnalyzeSample(tbl, SampleOptions{Rows: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Card != 6 {
		t.Errorf("card = %g", ts.Card)
	}
	if got := ts.Column("v").Distinct; got != 4 {
		t.Errorf("full-coverage distinct = %g, want exact 4", got)
	}
	if ts.Column("v").Min != 1 || ts.Column("v").Max != 4 {
		t.Errorf("range [%g,%g]", ts.Column("v").Min, ts.Column("v").Max)
	}
	if c.Data("t") == nil {
		t.Error("backing data should register")
	}
}

func TestAnalyzeSampleValidation(t *testing.T) {
	c := New()
	if _, err := c.AnalyzeSample(nil, SampleOptions{Rows: 10}); err == nil {
		t.Error("nil table should error")
	}
	if _, err := c.AnalyzeSample(intTable(t, "t", []int64{1}), SampleOptions{Rows: 0}); err == nil {
		t.Error("zero sample should error")
	}
}

func TestAnalyzeSampleChaoEstimate(t *testing.T) {
	// 100000 rows over 10000 distinct uniform values; a 5000-row sample
	// sees roughly 3940 distinct. Chao should push the estimate much closer
	// to 10000 than the raw sample count.
	c := New()
	n := 100000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 7919) % 10000) // deterministic spread over 10000 values
	}
	tbl := intTable(t, "big", vals)
	ts, err := c.AnalyzeSample(tbl, SampleOptions{Rows: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := ts.Column("v").Distinct
	if d < 5000 || d > 20000 {
		t.Errorf("Chao estimate %g not in a plausible range around 10000", d)
	}
	if d > float64(n) {
		t.Errorf("estimate must not exceed the row count")
	}
}

func TestAnalyzeSampleWithHistogram(t *testing.T) {
	c := New()
	n := 10000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 100)
	}
	ts, err := c.AnalyzeSample(intTable(t, "h", vals), SampleOptions{Rows: 1000, Seed: 7, HistogramBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := ts.Column("v").Hist
	if h == nil {
		t.Fatal("histogram expected")
	}
	// Scaled totals approximate the full table.
	if math.Abs(h.Total-float64(n)) > 1 {
		t.Errorf("histogram total = %g, want %d", h.Total, n)
	}
	// Uniform data: LT(50) ≈ 0.5 from the sampled histogram.
	if got := h.SelectivityLT(50); math.Abs(got-0.5) > 0.08 {
		t.Errorf("sampled LT(50) = %g, want ≈0.5", got)
	}
}

func TestAnalyzeSampleNullScaling(t *testing.T) {
	c := New()
	tbl := storage.NewTable("n", storage.MustSchema(storage.ColumnDef{Name: "v", Type: storage.TypeInt64}))
	for i := 0; i < 1000; i++ {
		if i%4 == 0 {
			tbl.MustAppendRow(storage.Null(storage.TypeInt64))
		} else {
			tbl.MustAppendRow(storage.Int64(int64(i)))
		}
	}
	ts, err := c.AnalyzeSample(tbl, SampleOptions{Rows: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// ~25% NULLs, scaled to ~250.
	if math.Abs(ts.Column("v").NullCount-250) > 75 {
		t.Errorf("scaled null count = %g, want ≈250", ts.Column("v").NullCount)
	}
}

func TestChaoEstimateEdgeCases(t *testing.T) {
	// No singletons: estimate equals observed.
	freq := map[string]int{"a": 3, "b": 5}
	if got := chaoEstimate(freq, 8, 100); got != 2 {
		t.Errorf("no-singleton estimate = %g, want 2", got)
	}
	// Singletons but no doubletons: bias-corrected fallback.
	freq = map[string]int{"a": 1, "b": 1, "c": 3}
	got := chaoEstimate(freq, 5, 1000)
	if got < 3 {
		t.Errorf("fallback should not shrink below observed: %g", got)
	}
	// Estimate capped at population.
	freq = map[string]int{}
	for i := 0; i < 50; i++ {
		freq[string(rune('a'+i))] = 1
	}
	if got := chaoEstimate(freq, 50, 60); got > 60 {
		t.Errorf("estimate %g exceeds population", got)
	}
}

func TestReservoirProperties(t *testing.T) {
	// k >= n returns everything.
	all := reservoir(5, 10, 1)
	if len(all) != 5 {
		t.Errorf("full reservoir = %v", all)
	}
	// Exactly k distinct, sorted, in range.
	s := reservoir(1000, 100, 2)
	if len(s) != 100 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[int]bool{}
	for i, v := range s {
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
		if i > 0 && s[i-1] > v {
			t.Fatal("not sorted")
		}
	}
	// Uniformity smoke test: mean of sampled indices ≈ 500.
	sum := 0
	for _, v := range s {
		sum += v
	}
	mean := float64(sum) / 100
	if math.Abs(mean-500) > 120 {
		t.Errorf("sample mean %g far from 500", mean)
	}
}
