package catalog

import (
	"testing"

	"repro/internal/storage"
)

func TestAddAndLookupTable(t *testing.T) {
	c := New()
	ts := SimpleTable("R1", 100, map[string]float64{"x": 10})
	if err := c.AddTable(ts); err != nil {
		t.Fatal(err)
	}
	got := c.Table("r1")
	if got == nil || got.Card != 100 {
		t.Fatalf("lookup failed: %+v", got)
	}
	col := got.Column("X")
	if col == nil || col.Distinct != 10 {
		t.Fatalf("column lookup failed: %+v", col)
	}
	if got.Column("missing") != nil {
		t.Error("missing column should be nil")
	}
	if c.Table("nope") != nil {
		t.Error("missing table should be nil")
	}
}

func TestAddTableValidation(t *testing.T) {
	c := New()
	if err := c.AddTable(nil); err == nil {
		t.Error("nil stats should error")
	}
	if err := c.AddTable(&TableStats{Name: ""}); err == nil {
		t.Error("empty name should error")
	}
	if err := c.AddTable(&TableStats{Name: "t", Card: -1}); err == nil {
		t.Error("negative cardinality should error")
	}
	bad := SimpleTable("t", 10, map[string]float64{"x": 5})
	bad.Columns["x"].Distinct = -2
	if err := c.AddTable(bad); err == nil {
		t.Error("negative distinct should error")
	}
}

func TestDistinctClampedToCard(t *testing.T) {
	c := New()
	ts := SimpleTable("t", 10, map[string]float64{"x": 50})
	c.MustAddTable(ts)
	if got := c.Table("t").Column("x").Distinct; got != 10 {
		t.Errorf("distinct should clamp to card: got %g", got)
	}
}

func TestTableNamesOrderAndReplace(t *testing.T) {
	c := New()
	c.MustAddTable(SimpleTable("B", 1, nil))
	c.MustAddTable(SimpleTable("A", 1, nil))
	c.MustAddTable(SimpleTable("b", 2, nil)) // replace, keeps position
	names := c.TableNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "A" {
		t.Errorf("TableNames = %v", names)
	}
	if c.Table("B").Card != 2 {
		t.Error("replacement should take effect")
	}
}

func TestCatalogClone(t *testing.T) {
	c := New()
	c.MustAddTable(SimpleTable("R", 100, map[string]float64{"x": 10}))
	cl := c.Clone()
	cl.Table("R").Card = 7
	cl.Table("R").Column("x").Distinct = 3
	if c.Table("R").Card != 100 || c.Table("R").Column("x").Distinct != 10 {
		t.Error("Clone must deep-copy statistics")
	}
}

func TestSimpleTableDefaults(t *testing.T) {
	ts := SimpleTable("R", 1000, map[string]float64{"a": 100, "b": 50})
	if ts.RowWidth != 16 {
		t.Errorf("RowWidth = %d, want 16", ts.RowWidth)
	}
	a := ts.Column("a")
	if !a.HasRange || a.Min != 0 || a.Max != 99 {
		t.Errorf("column a range = [%g,%g]", a.Min, a.Max)
	}
	if a.Type != storage.TypeInt64 {
		t.Error("SimpleTable columns should be BIGINT")
	}
}

func TestSetDataAndData(t *testing.T) {
	c := New()
	tbl := storage.NewTable("T", storage.MustSchema(storage.ColumnDef{Name: "v", Type: storage.TypeInt64}))
	c.SetData("T", tbl)
	if c.Data("t") != tbl {
		t.Error("Data lookup failed (case-insensitive)")
	}
	if c.Data("zzz") != nil {
		t.Error("unknown data should be nil")
	}
}

func buildDataTable(t *testing.T) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("emp", storage.MustSchema(
		storage.ColumnDef{Name: "id", Type: storage.TypeInt64},
		storage.ColumnDef{Name: "dept", Type: storage.TypeInt64},
		storage.ColumnDef{Name: "name", Type: storage.TypeString},
	))
	depts := []int64{1, 2, 1, 3, 2, 1, 1, 2, 3, 1}
	for i := int64(0); i < 10; i++ {
		name := storage.String64("e")
		if i == 4 {
			name = storage.Null(storage.TypeString)
		}
		tbl.MustAppendRow(storage.Int64(i), storage.Int64(depts[i]), name)
	}
	return tbl
}

func TestAnalyzeBasicStats(t *testing.T) {
	c := New()
	ts, err := c.Analyze(buildDataTable(t), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Card != 10 {
		t.Errorf("Card = %g", ts.Card)
	}
	id := ts.Column("id")
	if id.Distinct != 10 || id.Min != 0 || id.Max != 9 || !id.HasRange {
		t.Errorf("id stats wrong: %+v", id)
	}
	dept := ts.Column("dept")
	if dept.Distinct != 3 || dept.Min != 1 || dept.Max != 3 {
		t.Errorf("dept stats wrong: %+v", dept)
	}
	name := ts.Column("name")
	if name.Distinct != 1 || name.NullCount != 1 || name.HasRange {
		t.Errorf("name stats wrong: %+v", name)
	}
	if c.Data("emp") == nil {
		t.Error("Analyze should register backing data")
	}
}

func TestAnalyzeNil(t *testing.T) {
	c := New()
	if _, err := c.Analyze(nil, AnalyzeOptions{}); err == nil {
		t.Error("Analyze(nil) should error")
	}
}

func TestAnalyzeWithHistogram(t *testing.T) {
	c := New()
	ts, err := c.Analyze(buildDataTable(t), AnalyzeOptions{HistogramBuckets: 4, HistogramKind: EquiDepth})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Column("id").Hist == nil || ts.Column("dept").Hist == nil {
		t.Fatal("numeric columns should have histograms")
	}
	if ts.Column("name").Hist != nil {
		t.Error("string columns should not have histograms")
	}
	if ts.Column("id").Hist.Kind != EquiDepth {
		t.Error("histogram kind should be equi-depth")
	}
	var total float64
	for _, b := range ts.Column("id").Hist.Buckets {
		total += b.Count
	}
	if total != 10 {
		t.Errorf("histogram counts sum to %g, want 10", total)
	}
}

func TestColumnStatsClone(t *testing.T) {
	cs := &ColumnStats{Name: "x", Distinct: 5, Hist: &Histogram{Total: 10, Buckets: []Bucket{{Lo: 0, Hi: 1, Count: 10, Distinct: 5}}}}
	cl := cs.Clone()
	cl.Hist.Buckets[0].Count = 99
	cl.Distinct = 1
	if cs.Hist.Buckets[0].Count != 10 || cs.Distinct != 5 {
		t.Error("ColumnStats.Clone must deep-copy")
	}
}
