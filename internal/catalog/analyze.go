package catalog

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/storage"
)

// PointAnalyze is the fault-injection probe hit when ANALYZE starts, so
// tests can simulate a statistics-collection failure during catalog load.
const PointAnalyze = "catalog.analyze"

// AnalyzeOptions configures statistics collection.
type AnalyzeOptions struct {
	// HistogramBuckets is the bucket budget per numeric column; 0 disables
	// histogram construction (pure uniformity assumption, as the paper's
	// base configuration).
	HistogramBuckets int
	// HistogramKind selects equi-width or equi-depth construction.
	HistogramKind HistogramKind
}

// Analyze scans a data table, derives exact statistics (and optional
// histograms), registers them in the catalog, and remembers the backing
// table so the executor can run plans against it.
func (c *Catalog) Analyze(tbl *storage.Table, opts AnalyzeOptions) (*TableStats, error) {
	if tbl == nil {
		return nil, fmt.Errorf("catalog: Analyze(nil)")
	}
	if err := faultinject.Check(PointAnalyze); err != nil {
		return nil, fmt.Errorf("catalog: analyze %s: %w", tbl.Name(), err)
	}
	schema := tbl.Schema()
	ts := &TableStats{
		Name:     tbl.Name(),
		Card:     float64(tbl.NumRows()),
		RowWidth: schema.RowWidth(),
		Columns:  make(map[string]*ColumnStats, schema.NumColumns()),
	}
	for ci := 0; ci < schema.NumColumns(); ci++ {
		def := schema.Column(ci)
		cs := &ColumnStats{Name: def.Name, Type: def.Type}
		distinct := make(map[string]struct{})
		var numeric []float64
		isNumeric := def.Type == storage.TypeInt64 || def.Type == storage.TypeFloat64
		for r := 0; r < tbl.NumRows(); r++ {
			v := tbl.Value(r, ci)
			if v.IsNull() {
				cs.NullCount++
				continue
			}
			distinct[v.Key()] = struct{}{}
			if isNumeric {
				f := v.AsFloat()
				if !cs.HasRange {
					cs.HasRange = true
					cs.Min, cs.Max = f, f
				} else {
					if f < cs.Min {
						cs.Min = f
					}
					if f > cs.Max {
						cs.Max = f
					}
				}
				if opts.HistogramBuckets > 0 {
					numeric = append(numeric, f)
				}
			}
		}
		cs.Distinct = float64(len(distinct))
		if opts.HistogramBuckets > 0 && len(numeric) > 0 {
			var h *Histogram
			var err error
			switch opts.HistogramKind {
			case EquiDepth:
				h, err = NewEquiDepthHistogram(numeric, opts.HistogramBuckets)
			default:
				h, err = NewEquiWidthHistogram(numeric, opts.HistogramBuckets)
			}
			if err != nil {
				return nil, fmt.Errorf("catalog: analyze %s.%s: %w", tbl.Name(), def.Name, err)
			}
			cs.Hist = h
		}
		ts.Columns[key(def.Name)] = cs
	}
	if err := c.AddTable(ts); err != nil {
		return nil, err
	}
	c.SetData(tbl.Name(), tbl)
	return ts, nil
}
