package catalog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestExportImportJSONRoundTrip(t *testing.T) {
	c := New()
	ts := SimpleTable("R", 1000, map[string]float64{"x": 100, "y": 50})
	ts.Columns["x"].NullCount = 7
	h, err := NewEquiDepthHistogram([]float64{1, 2, 2, 3, 4, 5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts.Columns["x"].Hist = h
	c.MustAddTable(ts)
	c.MustAddTable(SimpleTable("S", 20, map[string]float64{"k": 20}))

	var buf bytes.Buffer
	if err := c.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name": "R"`, `"card": 1000`, `"histogram"`, `"equi-depth"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}

	c2 := New()
	if err := c2.ImportJSON(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	r := c2.Table("R")
	if r == nil || r.Card != 1000 || r.RowWidth != 16 {
		t.Fatalf("imported R = %+v", r)
	}
	x := r.Column("x")
	if x.Distinct != 100 || x.NullCount != 7 || x.Type != storage.TypeInt64 || !x.HasRange {
		t.Errorf("imported x = %+v", x)
	}
	if x.Hist == nil || x.Hist.Kind != EquiDepth || x.Hist.Total != 8 || len(x.Hist.Buckets) != len(h.Buckets) {
		t.Errorf("imported histogram = %+v", x.Hist)
	}
	// Histogram selectivities survive the round trip.
	if got, want := x.Hist.SelectivityEQ(5), h.SelectivityEQ(5); got != want {
		t.Errorf("histogram selectivity drifted: %g vs %g", got, want)
	}
	if c2.Table("S") == nil {
		t.Error("second table missing")
	}
	// Import replaces same-named tables.
	if err := c2.ImportJSON(strings.NewReader(`{"tables":[{"name":"S","card":99,"row_width":8,"columns":[]}]}`)); err != nil {
		t.Fatal(err)
	}
	if c2.Table("S").Card != 99 {
		t.Error("import should replace S")
	}
}

func TestImportJSONErrors(t *testing.T) {
	c := New()
	if err := c.ImportJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON should error")
	}
	if err := c.ImportJSON(strings.NewReader(`{"tables":[{"name":"T","card":1,"columns":[{"name":"x","type":"weird"}]}]}`)); err == nil {
		t.Error("unknown type should error")
	}
	if err := c.ImportJSON(strings.NewReader(`{"tables":[{"name":"","card":1}]}`)); err == nil {
		t.Error("empty table name should error")
	}
}
