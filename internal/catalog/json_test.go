package catalog

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/governor"
	"repro/internal/storage"
)

func TestExportImportJSONRoundTrip(t *testing.T) {
	c := New()
	ts := SimpleTable("R", 1000, map[string]float64{"x": 100, "y": 50})
	ts.Columns["x"].NullCount = 7
	h, err := NewEquiDepthHistogram([]float64{1, 2, 2, 3, 4, 5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts.Columns["x"].Hist = h
	c.MustAddTable(ts)
	c.MustAddTable(SimpleTable("S", 20, map[string]float64{"k": 20}))

	var buf bytes.Buffer
	if err := c.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name": "R"`, `"card": 1000`, `"histogram"`, `"equi-depth"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}

	c2 := New()
	if err := c2.ImportJSON(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	r := c2.Table("R")
	if r == nil || r.Card != 1000 || r.RowWidth != 16 {
		t.Fatalf("imported R = %+v", r)
	}
	x := r.Column("x")
	if x.Distinct != 100 || x.NullCount != 7 || x.Type != storage.TypeInt64 || !x.HasRange {
		t.Errorf("imported x = %+v", x)
	}
	if x.Hist == nil || x.Hist.Kind != EquiDepth || x.Hist.Total != 8 || len(x.Hist.Buckets) != len(h.Buckets) {
		t.Errorf("imported histogram = %+v", x.Hist)
	}
	// Histogram selectivities survive the round trip.
	if got, want := x.Hist.SelectivityEQ(5), h.SelectivityEQ(5); got != want {
		t.Errorf("histogram selectivity drifted: %g vs %g", got, want)
	}
	if c2.Table("S") == nil {
		t.Error("second table missing")
	}
	// Import replaces same-named tables.
	if err := c2.ImportJSON(strings.NewReader(`{"tables":[{"name":"S","card":99,"row_width":8,"columns":[]}]}`)); err != nil {
		t.Fatal(err)
	}
	if c2.Table("S").Card != 99 {
		t.Error("import should replace S")
	}
}

// The exported file carries the format-version header and per-table
// checksums; flipping any byte inside a table section fails the import
// with ErrBadStats naming the table, and truncating the file fails with a
// line diagnostic — never a silent partial import.
func TestImportJSONIntegrity(t *testing.T) {
	c := New()
	c.MustAddTable(SimpleTable("R", 1000, map[string]float64{"x": 100}))
	c.MustAddTable(SimpleTable("S", 20, map[string]float64{"k": 20}))
	var buf bytes.Buffer
	if err := c.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"format_version": 2`) {
		t.Fatalf("export missing format_version header:\n%s", out)
	}
	if strings.Count(out, `"checksum"`) != 2 {
		t.Fatalf("export missing per-table checksums:\n%s", out)
	}

	// Pristine file imports.
	if err := New().ImportJSON(strings.NewReader(out)); err != nil {
		t.Fatalf("pristine import: %v", err)
	}

	// Corrupt a value inside table S's section (not its checksum field).
	corrupt := strings.Replace(out, `"card": 20`, `"card": 21`, 1)
	if corrupt == out {
		t.Fatal("corruption did not apply")
	}
	err := New().ImportJSON(strings.NewReader(corrupt))
	if !errors.Is(err, governor.ErrBadStats) {
		t.Fatalf("corrupted import err = %v, want ErrBadStats", err)
	}
	if !strings.Contains(err.Error(), `"S"`) || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted import should name the table: %v", err)
	}

	// Truncate mid-file: ErrBadStats with a line diagnostic.
	err = New().ImportJSON(strings.NewReader(out[:len(out)/2]))
	if !errors.Is(err, governor.ErrBadStats) {
		t.Fatalf("truncated import err = %v, want ErrBadStats", err)
	}
	if !strings.Contains(err.Error(), "line ") {
		t.Fatalf("truncated import should carry a line diagnostic: %v", err)
	}

	// A v2 table section without a checksum is rejected.
	err = New().ImportJSON(strings.NewReader(
		`{"format_version":2,"tables":[{"name":"T","card":1,"row_width":8,"columns":[]}]}`))
	if !errors.Is(err, governor.ErrBadStats) || !strings.Contains(err.Error(), "missing checksum") {
		t.Fatalf("missing checksum err = %v", err)
	}

	// Files from a future format version are rejected, not misread.
	err = New().ImportJSON(strings.NewReader(`{"format_version":99,"tables":[]}`))
	if !errors.Is(err, governor.ErrBadStats) || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version err = %v", err)
	}

	// Legacy files (no header, no checksums) still import.
	legacy := `{"tables":[{"name":"L","card":5,"row_width":8,"columns":[]}]}`
	c2 := New()
	if err := c2.ImportJSON(strings.NewReader(legacy)); err != nil {
		t.Fatalf("legacy import: %v", err)
	}
	if c2.Table("L") == nil {
		t.Fatal("legacy table missing")
	}
}

// The line diagnostic points at the actual break: a syntax error on line 3
// reports line 3.
func TestImportJSONLineDiagnostic(t *testing.T) {
	bad := "{\n\"tables\": [\n{\"name\": !!,\n]}\n"
	err := New().ImportJSON(strings.NewReader(bad))
	if !errors.Is(err, governor.ErrBadStats) {
		t.Fatalf("err = %v, want ErrBadStats", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("diagnostic should point at line 3: %v", err)
	}
}

func TestImportJSONErrors(t *testing.T) {
	c := New()
	if err := c.ImportJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON should error")
	}
	if err := c.ImportJSON(strings.NewReader(`{"tables":[{"name":"T","card":1,"columns":[{"name":"x","type":"weird"}]}]}`)); err == nil {
		t.Error("unknown type should error")
	}
	if err := c.ImportJSON(strings.NewReader(`{"tables":[{"name":"","card":1}]}`)); err == nil {
		t.Error("empty table name should error")
	}
}
