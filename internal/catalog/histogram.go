package catalog

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HistogramKind distinguishes the two histogram constructions supported.
type HistogramKind int

const (
	// EquiWidth buckets split the value range into equal-width intervals.
	EquiWidth HistogramKind = iota
	// EquiDepth buckets each hold (approximately) the same number of rows;
	// the construction of Piatetsky-Shapiro & Connell / Muralikrishna &
	// DeWitt cited by the paper.
	EquiDepth
)

// String names the histogram kind.
func (k HistogramKind) String() string {
	switch k {
	case EquiWidth:
		return "equi-width"
	case EquiDepth:
		return "equi-depth"
	default:
		return "unknown"
	}
}

// Bucket is one histogram bucket over the half-open interval [Lo, Hi),
// except the last bucket of a histogram which is closed: [Lo, Hi].
type Bucket struct {
	// Lo and Hi bound the bucket's value range.
	Lo, Hi float64
	// Count is the number of rows falling in the bucket.
	Count float64
	// Distinct is the number of distinct values in the bucket.
	Distinct float64
}

// Histogram summarizes the distribution of a numeric column. The paper
// (Section 2) needs uniformity only for join columns; local-predicate
// selectivities may use "data distribution information", which is what a
// histogram provides.
type Histogram struct {
	// Kind records how the buckets were constructed.
	Kind HistogramKind
	// Buckets are ordered, non-overlapping, and cover [min, max].
	Buckets []Bucket
	// Total is the total row count summarized (excludes NULLs).
	Total float64
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{Kind: h.Kind, Total: h.Total, Buckets: make([]Bucket, len(h.Buckets))}
	copy(out.Buckets, h.Buckets)
	return out
}

// NewEquiWidthHistogram builds an equi-width histogram with at most buckets
// buckets from the given (unsorted) values. NaNs are rejected.
func NewEquiWidthHistogram(values []float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("catalog: histogram needs at least 1 bucket, got %d", buckets)
	}
	if len(values) == 0 {
		return &Histogram{Kind: EquiWidth}, nil
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("catalog: NaN value in histogram input")
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return &Histogram{
			Kind:    EquiWidth,
			Total:   float64(len(values)),
			Buckets: []Bucket{{Lo: lo, Hi: hi, Count: float64(len(values)), Distinct: 1}},
		}, nil
	}
	width := (hi - lo) / float64(buckets)
	bs := make([]Bucket, buckets)
	distinct := make([]map[float64]struct{}, buckets)
	for i := range bs {
		bs[i] = Bucket{Lo: lo + float64(i)*width, Hi: lo + float64(i+1)*width}
		distinct[i] = make(map[float64]struct{})
	}
	bs[buckets-1].Hi = hi // avoid FP drift on the top edge
	for _, v := range values {
		i := int((v - lo) / width)
		if i >= buckets {
			i = buckets - 1
		}
		if i < 0 {
			i = 0
		}
		bs[i].Count++
		distinct[i][v] = struct{}{}
	}
	for i := range bs {
		bs[i].Distinct = float64(len(distinct[i]))
	}
	return &Histogram{Kind: EquiWidth, Buckets: bs, Total: float64(len(values))}, nil
}

// NewEquiDepthHistogram builds an equi-depth histogram with at most buckets
// buckets. Bucket boundaries fall on value boundaries so a value never
// straddles two buckets.
func NewEquiDepthHistogram(values []float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("catalog: histogram needs at least 1 bucket, got %d", buckets)
	}
	if len(values) == 0 {
		return &Histogram{Kind: EquiDepth}, nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	for _, v := range sorted {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("catalog: NaN value in histogram input")
		}
	}
	sort.Float64s(sorted)
	n := len(sorted)
	depth := float64(n) / float64(buckets)
	if depth < 1 {
		depth = 1
	}
	var bs []Bucket
	i := 0
	for i < n {
		target := int(math.Round(float64(len(bs)+1) * depth))
		if target <= i {
			target = i + 1
		}
		if target > n {
			target = n
		}
		// Extend to the end of the run of equal values so a value never spans
		// buckets.
		for target < n && sorted[target] == sorted[target-1] {
			target++
		}
		b := Bucket{Lo: sorted[i], Hi: sorted[target-1], Count: float64(target - i)}
		d := 1.0
		for j := i + 1; j < target; j++ {
			if sorted[j] != sorted[j-1] {
				d++
			}
		}
		b.Distinct = d
		bs = append(bs, b)
		i = target
	}
	return &Histogram{Kind: EquiDepth, Buckets: bs, Total: float64(n)}, nil
}

// SelectivityLT estimates the fraction of rows with value < c, assuming
// uniform spread within each bucket.
func (h *Histogram) SelectivityLT(c float64) float64 {
	if h.Total == 0 || len(h.Buckets) == 0 {
		return 0
	}
	var rows float64
	for _, b := range h.Buckets {
		switch {
		case c <= b.Lo:
			// nothing from this bucket or later ones
		case c > b.Hi:
			rows += b.Count
		default:
			frac := 0.0
			if b.Hi > b.Lo {
				frac = (c - b.Lo) / (b.Hi - b.Lo)
			}
			rows += b.Count * frac
		}
	}
	return clamp01(rows / h.Total)
}

// SelectivityLE estimates the fraction of rows with value <= c.
func (h *Histogram) SelectivityLE(c float64) float64 {
	// <= c is < c plus the mass exactly at c; approximate the point mass by
	// one "distinct share" of the bucket containing c.
	return clamp01(h.SelectivityLT(c) + h.SelectivityEQ(c))
}

// SelectivityGT estimates the fraction of rows with value > c.
func (h *Histogram) SelectivityGT(c float64) float64 { return clamp01(1 - h.SelectivityLE(c)) }

// SelectivityGE estimates the fraction of rows with value >= c.
func (h *Histogram) SelectivityGE(c float64) float64 { return clamp01(1 - h.SelectivityLT(c)) }

// SelectivityEQ estimates the fraction of rows with value = c, using the
// containing bucket's count/distinct ratio (uniform-within-bucket).
func (h *Histogram) SelectivityEQ(c float64) float64 {
	if h.Total == 0 {
		return 0
	}
	for _, b := range h.Buckets {
		// Buckets are treated as closed [Lo, Hi] for point lookups; the first
		// containing bucket wins. Equi-depth buckets are genuinely closed and
		// disjoint; for equi-width the shared boundary lands in the lower
		// bucket, an acceptable estimator approximation.
		if c < b.Lo || c > b.Hi {
			continue
		}
		if b.Distinct <= 0 {
			return 0
		}
		return clamp01(b.Count / b.Distinct / h.Total)
	}
	return 0
}

// SelectivityRange estimates the fraction of rows in [lo, hi], inclusive on
// both ends.
func (h *Histogram) SelectivityRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return clamp01(h.SelectivityLE(hi) - h.SelectivityLT(lo))
}

// String renders the histogram compactly for EXPLAIN output.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s histogram, %d buckets, %g rows:", h.Kind, len(h.Buckets), h.Total)
	for _, bk := range h.Buckets {
		fmt.Fprintf(&b, " [%g,%g]#%g/%g", bk.Lo, bk.Hi, bk.Count, bk.Distinct)
	}
	return b.String()
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
