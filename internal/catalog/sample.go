package catalog

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/storage"
)

// SampleOptions configures sampling-based statistics collection.
type SampleOptions struct {
	// Rows is the sample size (reservoir sampling without replacement).
	// Values >= the table size degrade to a full scan.
	Rows int
	// Seed drives the reservoir sampler.
	Seed int64
	// HistogramBuckets, if positive, builds equi-depth histograms from the
	// sample (scaled up to the full table's row count).
	HistogramBuckets int
}

// AnalyzeSample derives statistics from a uniform random sample of the
// table rather than a full scan — what production systems do on large
// tables. The table cardinality is exact (known from the storage layer);
// per-column distinct counts are estimated from the sample with the Chao
// estimator d̂ = d_sample + f₁²/(2·f₂), where f₁ and f₂ are the counts of
// sample values seen exactly once and twice. Min/max come from the sample
// and may clip the true range; this is the price of sampling and exactly
// the kind of statistics error whose effect on join estimates the
// SampledStats ablation measures.
func (c *Catalog) AnalyzeSample(tbl *storage.Table, opts SampleOptions) (*TableStats, error) {
	if tbl == nil {
		return nil, fmt.Errorf("catalog: AnalyzeSample(nil)")
	}
	if opts.Rows <= 0 {
		return nil, fmt.Errorf("catalog: sample size must be positive, got %d", opts.Rows)
	}
	n := tbl.NumRows()
	sampleIdx := reservoir(n, opts.Rows, opts.Seed)

	schema := tbl.Schema()
	ts := &TableStats{
		Name:     tbl.Name(),
		Card:     float64(n),
		RowWidth: schema.RowWidth(),
		Columns:  make(map[string]*ColumnStats, schema.NumColumns()),
	}
	for ci := 0; ci < schema.NumColumns(); ci++ {
		def := schema.Column(ci)
		cs := &ColumnStats{Name: def.Name, Type: def.Type}
		freq := make(map[string]int)
		var numeric []float64
		isNumeric := def.Type == storage.TypeInt64 || def.Type == storage.TypeFloat64
		var nullsInSample float64
		for _, r := range sampleIdx {
			v := tbl.Value(r, ci)
			if v.IsNull() {
				nullsInSample++
				continue
			}
			freq[v.Key()]++
			if isNumeric {
				f := v.AsFloat()
				if !cs.HasRange {
					cs.HasRange = true
					cs.Min, cs.Max = f, f
				} else {
					if f < cs.Min {
						cs.Min = f
					}
					if f > cs.Max {
						cs.Max = f
					}
				}
				if opts.HistogramBuckets > 0 {
					numeric = append(numeric, f)
				}
			}
		}
		scale := float64(n) / float64(len(sampleIdx))
		cs.NullCount = math.Round(nullsInSample * scale)
		cs.Distinct = chaoEstimate(freq, len(sampleIdx), n)
		if cs.Distinct > float64(n) {
			cs.Distinct = float64(n)
		}
		if opts.HistogramBuckets > 0 && len(numeric) > 0 {
			h, err := NewEquiDepthHistogram(numeric, opts.HistogramBuckets)
			if err != nil {
				return nil, fmt.Errorf("catalog: sample analyze %s.%s: %w", tbl.Name(), def.Name, err)
			}
			// Scale the sampled counts up to the full table.
			for i := range h.Buckets {
				h.Buckets[i].Count *= scale
			}
			h.Total *= scale
			cs.Hist = h
		}
		ts.Columns[key(def.Name)] = cs
	}
	if err := c.AddTable(ts); err != nil {
		return nil, err
	}
	c.SetData(tbl.Name(), tbl)
	return ts, nil
}

// chaoEstimate extrapolates the number of distinct values in the full
// population from sample value frequencies. When the sample covers the
// whole table the sample distinct count is exact; otherwise Chao1:
// d̂ = d_obs + f₁²/(2·f₂), capped by what the population can hold.
func chaoEstimate(freq map[string]int, sampleSize, population int) float64 {
	dObs := float64(len(freq))
	if sampleSize >= population {
		return dObs
	}
	var f1, f2 float64
	for _, c := range freq {
		switch c {
		case 1:
			f1++
		case 2:
			f2++
		}
	}
	var est float64
	switch {
	case f1 == 0:
		est = dObs
	case f2 == 0:
		// Chao's bias-corrected fallback when no value appears exactly twice.
		est = dObs + f1*(f1-1)/2
	default:
		est = dObs + f1*f1/(2*f2)
	}
	if est > float64(population) {
		est = float64(population)
	}
	if est < dObs {
		est = dObs
	}
	return math.Round(est)
}

// reservoir returns k uniformly sampled row indices from [0, n) (all of
// them when k >= n), in ascending order for cache-friendly access.
func reservoir(n, k int, seed int64) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = i
		}
	}
	// Ascending order (reordering does not bias uniformity).
	sort.Ints(out)
	return out
}
