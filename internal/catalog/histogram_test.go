package catalog

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func uniformValues(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestHistogramKindString(t *testing.T) {
	if EquiWidth.String() != "equi-width" || EquiDepth.String() != "equi-depth" {
		t.Error("kind names wrong")
	}
	if HistogramKind(9).String() != "unknown" {
		t.Error("unknown kind name wrong")
	}
}

func TestEquiWidthConstruction(t *testing.T) {
	h, err := NewEquiWidthHistogram(uniformValues(100), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets) != 10 || h.Total != 100 {
		t.Fatalf("buckets=%d total=%g", len(h.Buckets), h.Total)
	}
	var count float64
	for _, b := range h.Buckets {
		count += b.Count
	}
	if count != 100 {
		t.Errorf("bucket counts sum to %g", count)
	}
	if h.Buckets[0].Lo != 0 || h.Buckets[9].Hi != 99 {
		t.Errorf("range [%g, %g]", h.Buckets[0].Lo, h.Buckets[9].Hi)
	}
}

func TestEquiWidthErrors(t *testing.T) {
	if _, err := NewEquiWidthHistogram(uniformValues(5), 0); err == nil {
		t.Error("0 buckets should error")
	}
	if _, err := NewEquiWidthHistogram([]float64{1, math.NaN()}, 2); err == nil {
		t.Error("NaN should error")
	}
}

func TestEquiWidthEmptyAndConstant(t *testing.T) {
	h, err := NewEquiWidthHistogram(nil, 4)
	if err != nil || h.Total != 0 {
		t.Fatalf("empty: %v %+v", err, h)
	}
	if h.SelectivityLT(5) != 0 {
		t.Error("empty histogram selectivity should be 0")
	}
	h, err = NewEquiWidthHistogram([]float64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets) != 1 || h.Buckets[0].Distinct != 1 || h.Buckets[0].Count != 3 {
		t.Errorf("constant column histogram wrong: %+v", h)
	}
	if got := h.SelectivityEQ(7); got != 1 {
		t.Errorf("SelectivityEQ(7) = %g, want 1", got)
	}
	if got := h.SelectivityEQ(8); got != 0 {
		t.Errorf("SelectivityEQ(8) = %g, want 0", got)
	}
}

func TestEquiDepthConstruction(t *testing.T) {
	h, err := NewEquiDepthHistogram(uniformValues(100), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets) != 5 {
		t.Fatalf("buckets = %d, want 5", len(h.Buckets))
	}
	for _, b := range h.Buckets {
		if b.Count != 20 {
			t.Errorf("equi-depth bucket count = %g, want 20", b.Count)
		}
	}
}

func TestEquiDepthSkewedRuns(t *testing.T) {
	// 90 copies of 1 plus 10 distinct tail values; a value must not straddle
	// buckets, so the run of 1s must land in one bucket.
	var vals []float64
	for i := 0; i < 90; i++ {
		vals = append(vals, 1)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, float64(10+i))
	}
	h, err := NewEquiDepthHistogram(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range h.Buckets {
		if b.Lo <= 1 && 1 <= b.Hi && b.Lo != b.Hi && b.Hi != 1 {
			t.Errorf("value 1 straddles bucket [%g,%g]", b.Lo, b.Hi)
		}
	}
	if got := h.SelectivityEQ(1); math.Abs(got-0.9) > 0.05 {
		t.Errorf("SelectivityEQ(1) = %g, want ~0.9", got)
	}
}

func TestEquiDepthErrors(t *testing.T) {
	if _, err := NewEquiDepthHistogram(uniformValues(5), -1); err == nil {
		t.Error("negative buckets should error")
	}
	if _, err := NewEquiDepthHistogram([]float64{math.NaN()}, 2); err == nil {
		t.Error("NaN should error")
	}
	h, err := NewEquiDepthHistogram(nil, 3)
	if err != nil || len(h.Buckets) != 0 {
		t.Error("empty input should give empty histogram")
	}
}

func TestSelectivityLTUniform(t *testing.T) {
	h, _ := NewEquiWidthHistogram(uniformValues(1000), 10)
	cases := []struct {
		c    float64
		want float64
		tol  float64
	}{
		{0, 0, 0.001},
		{500, 0.5, 0.01},
		{999.01, 1, 0.001},
		{2000, 1, 0},
		{-5, 0, 0},
	}
	for _, cse := range cases {
		if got := h.SelectivityLT(cse.c); math.Abs(got-cse.want) > cse.tol {
			t.Errorf("SelectivityLT(%g) = %g, want ~%g", cse.c, got, cse.want)
		}
	}
}

func TestSelectivityRangeAndComparisons(t *testing.T) {
	h, _ := NewEquiWidthHistogram(uniformValues(1000), 20)
	if got := h.SelectivityRange(250, 749); math.Abs(got-0.5) > 0.02 {
		t.Errorf("range [250,749] = %g, want ~0.5", got)
	}
	if h.SelectivityRange(10, 5) != 0 {
		t.Error("inverted range should be 0")
	}
	if got := h.SelectivityGT(899.5); math.Abs(got-0.1) > 0.02 {
		t.Errorf("GT(899.5) = %g, want ~0.1", got)
	}
	if got := h.SelectivityGE(900); math.Abs(got-0.1) > 0.02 {
		t.Errorf("GE(900) = %g, want ~0.1", got)
	}
	if got := h.SelectivityLE(99); math.Abs(got-0.1) > 0.02 {
		t.Errorf("LE(99) = %g, want ~0.1", got)
	}
}

func TestSelectivityEQUniform(t *testing.T) {
	h, _ := NewEquiWidthHistogram(uniformValues(1000), 10)
	if got := h.SelectivityEQ(500); math.Abs(got-0.001) > 0.0005 {
		t.Errorf("EQ(500) = %g, want ~0.001", got)
	}
	if h.SelectivityEQ(-1) != 0 || h.SelectivityEQ(5000) != 0 {
		t.Error("EQ outside range should be 0")
	}
	// Top edge belongs to the last bucket.
	if h.SelectivityEQ(999) == 0 {
		t.Error("EQ(max) should be nonzero")
	}
}

func TestHistogramClone(t *testing.T) {
	h, _ := NewEquiWidthHistogram(uniformValues(10), 2)
	cl := h.Clone()
	cl.Buckets[0].Count = 999
	if h.Buckets[0].Count == 999 {
		t.Error("Clone must deep-copy buckets")
	}
}

func TestHistogramString(t *testing.T) {
	h, _ := NewEquiWidthHistogram(uniformValues(10), 2)
	s := h.String()
	if !strings.Contains(s, "equi-width") || !strings.Contains(s, "2 buckets") {
		t.Errorf("String() = %q", s)
	}
}

// Property: selectivities are always within [0,1] and LT is monotone
// non-decreasing in c, for both histogram kinds over random data.
func TestSelectivityMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(500)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Floor(rng.Float64() * 100)
		}
		for _, build := range []func([]float64, int) (*Histogram, error){
			NewEquiWidthHistogram, NewEquiDepthHistogram,
		} {
			h, err := build(vals, 1+rng.Intn(16))
			if err != nil {
				t.Fatal(err)
			}
			prev := -1.0
			for c := -10.0; c <= 110; c += 5 {
				s := h.SelectivityLT(c)
				if s < 0 || s > 1 {
					t.Fatalf("selectivity out of range: %g", s)
				}
				if s < prev-1e-9 {
					t.Fatalf("SelectivityLT not monotone at %g: %g < %g", c, s, prev)
				}
				prev = s
			}
		}
	}
}

// Property: for any int-valued dataset, LE(c) >= LT(c) and GT + LE == 1
// (within float tolerance).
func TestSelectivityComplementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(50))
		}
		h, err := NewEquiDepthHistogram(vals, 8)
		if err != nil {
			return false
		}
		for c := -2.0; c < 55; c += 3.5 {
			if h.SelectivityLE(c) < h.SelectivityLT(c)-1e-9 {
				return false
			}
			if math.Abs(h.SelectivityGT(c)+h.SelectivityLE(c)-1) > 1e-6 &&
				h.SelectivityLE(c) < 1 { // clamping can break exact complement at the top
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
