// Package catalog maintains schema and statistics metadata for the
// estimation library. The two statistics the paper relies on are the table
// cardinality ‖R‖ and the per-column column cardinality (number of distinct
// values) d_x; the catalog additionally tracks min/max bounds, null counts,
// and optional histograms so that local-predicate selectivities can use
// "distribution statistics" as Section 5 of the paper permits.
//
// A catalog can be populated two ways:
//
//   - synthetically, by declaring statistics directly (the mode used to
//     reproduce the paper's worked examples, which are stated purely in
//     terms of statistics), or
//   - by running Analyze over a storage.Table, which scans the data and
//     derives exact statistics plus histograms (the mode used by the
//     end-to-end experiment).
package catalog

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/governor"
	"repro/internal/index"
	"repro/internal/storage"
)

// ColumnStats holds the optimizer-visible statistics of one column.
type ColumnStats struct {
	// Name is the column name within its table.
	Name string
	// Type is the column's value type.
	Type storage.Type
	// Distinct is the column cardinality d_x: the number of distinct
	// non-null values. The paper's estimation formulas are all stated in
	// terms of this statistic.
	Distinct float64
	// NullCount is the number of NULL entries.
	NullCount float64
	// HasRange reports whether Min/Max are meaningful (numeric columns with
	// at least one non-null value).
	HasRange bool
	// Min and Max bound the non-null values (numeric columns only).
	Min, Max float64
	// Hist, if non-nil, is a histogram over the column's values usable for
	// local-predicate selectivity. May be equi-width or equi-depth.
	Hist *Histogram
}

// Clone returns a deep copy of the statistics.
func (c *ColumnStats) Clone() *ColumnStats {
	out := *c
	if c.Hist != nil {
		out.Hist = c.Hist.Clone()
	}
	return &out
}

// TableStats holds the optimizer-visible statistics of one table.
type TableStats struct {
	// Name is the table name.
	Name string
	// Card is the table cardinality ‖R‖.
	Card float64
	// RowWidth is the estimated row width in bytes (for page-count costing).
	RowWidth int
	// Columns maps lower-cased column names to their statistics.
	Columns map[string]*ColumnStats
}

// Clone returns a deep copy of the statistics.
func (t *TableStats) Clone() *TableStats {
	out := &TableStats{Name: t.Name, Card: t.Card, RowWidth: t.RowWidth,
		Columns: make(map[string]*ColumnStats, len(t.Columns))}
	for k, v := range t.Columns {
		out.Columns[k] = v.Clone()
	}
	return out
}

// Column returns the statistics of the named column (case-insensitive), or
// nil if unknown.
func (t *TableStats) Column(name string) *ColumnStats {
	return t.Columns[strings.ToLower(name)]
}

// Catalog is a collection of table statistics keyed by table name
// (case-insensitive). It may also hold the backing data tables when the
// catalog was built by Analyze, so the executor can find them.
type Catalog struct {
	tables  map[string]*TableStats
	data    map[string]*storage.Table
	indexes map[string]*index.Index // "table.column", lower-cased
	order   []string                // registration order, for deterministic iteration
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*TableStats),
		data:    make(map[string]*storage.Table),
		indexes: make(map[string]*index.Index),
	}
}

func key(name string) string { return strings.ToLower(name) }

// AddTable registers synthetic statistics for a table. It replaces any
// existing entry of the same name.
func (c *Catalog) AddTable(ts *TableStats) error {
	if ts == nil || ts.Name == "" {
		return fmt.Errorf("%w: table stats must have a name", governor.ErrBadStats)
	}
	if ts.Card < 0 || math.IsNaN(ts.Card) {
		return fmt.Errorf("%w: table %s: cardinality %g", governor.ErrBadStats, ts.Name, ts.Card)
	}
	if ts.Columns == nil {
		ts.Columns = make(map[string]*ColumnStats)
	}
	for k, cs := range ts.Columns {
		if cs.Distinct < 0 || math.IsNaN(cs.Distinct) {
			return fmt.Errorf("%w: table %s column %s: distinct count %g",
				governor.ErrBadStats, ts.Name, k, cs.Distinct)
		}
		if cs.Distinct > ts.Card && ts.Card > 0 {
			// A column cannot have more distinct values than rows; clamp, as a
			// real system's ANALYZE would never produce this but synthetic
			// declarations may.
			cs.Distinct = ts.Card
		}
	}
	k := key(ts.Name)
	if _, exists := c.tables[k]; !exists {
		c.order = append(c.order, k)
	}
	c.tables[k] = ts
	return nil
}

// MustAddTable is AddTable but panics on error; for tests and static setups.
func (c *Catalog) MustAddTable(ts *TableStats) {
	if err := c.AddTable(ts); err != nil {
		panic(err)
	}
}

// Table returns the statistics for the named table, or nil if unknown.
func (c *Catalog) Table(name string) *TableStats { return c.tables[key(name)] }

// Data returns the backing data table registered under name, or nil.
func (c *Catalog) Data(name string) *storage.Table { return c.data[key(name)] }

// SetData registers backing data for a table without re-deriving statistics.
func (c *Catalog) SetData(name string, tbl *storage.Table) {
	c.data[key(name)] = tbl
}

// BuildIndex constructs an ordered index over the named data column and
// registers it. The table must have backing data (Analyze/SetData first).
func (c *Catalog) BuildIndex(table, column string) error {
	tbl := c.Data(table)
	if tbl == nil {
		return fmt.Errorf("catalog: no data registered for table %q", table)
	}
	ix, err := index.Build(tbl, column)
	if err != nil {
		return err
	}
	c.indexes[key(table)+"."+strings.ToLower(column)] = ix
	return nil
}

// Index returns the index over table.column, or nil if none exists.
func (c *Catalog) Index(table, column string) *index.Index {
	return c.indexes[key(table)+"."+strings.ToLower(column)]
}

// HasIndex reports whether table.column is indexed.
func (c *Catalog) HasIndex(table, column string) bool {
	return c.Index(table, column) != nil
}

// TableNames returns the registered table names in registration order.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.tables[k].Name)
	}
	return out
}

// Clone returns a deep copy of the catalog's statistics. Backing data
// tables and indexes are shared (they are immutable once loaded).
func (c *Catalog) Clone() *Catalog {
	out := New()
	for _, k := range c.order {
		out.tables[k] = c.tables[k].Clone()
		out.order = append(out.order, k)
	}
	for k, v := range c.data {
		out.data[k] = v
	}
	for k, v := range c.indexes {
		out.indexes[k] = v
	}
	return out
}

// SimpleTable is a convenience constructor for the common synthetic case
// used throughout the paper: a table with a cardinality and a set of
// integer columns given as name -> distinct count. Min/max default to
// [0, distinct-1], matching the uniform integer domains used by the
// experiment's data generator.
func SimpleTable(name string, card float64, cols map[string]float64) *TableStats {
	ts := &TableStats{
		Name:     name,
		Card:     card,
		RowWidth: 8 * max(1, len(cols)),
		Columns:  make(map[string]*ColumnStats, len(cols)),
	}
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := cols[n]
		ts.Columns[key(n)] = &ColumnStats{
			Name:     n,
			Type:     storage.TypeInt64,
			Distinct: d,
			HasRange: true,
			Min:      0,
			Max:      d - 1,
		}
	}
	return ts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
