package catalog

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/governor"
)

// fuzzSeedExport builds a representative catalog and returns its v2 export
// — the corpus seed every corruption is derived from.
func fuzzSeedExport(t testing.TB) []byte {
	t.Helper()
	c := New()
	c.MustAddTable(SimpleTable("r", 1000, map[string]float64{"a": 100, "b": 7}))
	c.MustAddTable(SimpleTable("s", 250, map[string]float64{"a": 50}))
	ts := c.Table("s")
	ts.Column("a").Hist = &Histogram{
		Kind:  EquiDepth,
		Total: 250,
		Buckets: []Bucket{
			{Lo: 0, Hi: 24, Count: 125, Distinct: 25},
			{Lo: 24, Hi: 49, Count: 125, Distinct: 25},
		},
	}
	var buf bytes.Buffer
	if err := c.ExportJSON(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// FuzzImportJSON pins the stats reader's failure contract: for any input —
// truncations, flipped bytes, random garbage — ImportJSON either succeeds
// or fails with an error wrapping ErrBadStats. It must never panic and
// never return an unclassified error, because the import path is fed
// operator-supplied files and WAL payloads recovered from a crash.
func FuzzImportJSON(f *testing.F) {
	seed := fuzzSeedExport(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                                                                                                    // truncated mid-section
	f.Add(bytes.Replace(seed, []byte("card"), []byte("cord"), 1))                                                                // mangled key
	f.Add([]byte(`{"tables":[{"name":"legacy","card":10,"row_width":8,"columns":[{"name":"x","type":"int64","distinct":5}]}]}`)) // legacy v1, no checksums
	f.Add([]byte(`{"format_version":2,"tables":[{"name":"t","card":1,"checksum":"00000000"}]}`))                                 // wrong checksum
	f.Add([]byte(`{"format_version":99,"tables":[]}`))                                                                           // future format
	f.Add([]byte(`{"tables":[{"card":1}]}`))                                                                                     // nameless table
	f.Add([]byte(`{"tables":[{"name":"t","card":-5}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New()
		err := c.ImportJSON(bytes.NewReader(data))
		if err != nil && !errors.Is(err, governor.ErrBadStats) {
			t.Fatalf("import error outside ErrBadStats: %v", err)
		}
	})
}

// TestImportJSONCorruptionMatrix drives the reader through one corruption
// of every class the durable layer can hand it — truncated sections,
// flipped checksum bytes, legacy v1 blobs, structural damage — and pins
// that each maps to ErrBadStats with a useful diagnostic, never a panic
// and never a partial import on the target catalog's state (ImportJSON is
// applied to a scratch catalog by the COW mutation path, so the contract
// here is classification, not atomicity).
func TestImportJSONCorruptionMatrix(t *testing.T) {
	seed := fuzzSeedExport(t)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr bool
		wantIn  string // substring of the diagnostic, "" = don't care
	}{
		{"pristine", func(b []byte) []byte { return b }, false, ""},
		{"truncated-half", func(b []byte) []byte { return b[:len(b)/2] }, true, "line"},
		{"truncated-one-byte", func(b []byte) []byte { return b[:len(b)-2] }, true, "line"},
		{"flipped-checksum-digit", func(b []byte) []byte {
			i := bytes.Index(b, []byte(`"checksum": "`))
			if i < 0 {
				t.Fatal("no checksum in export")
			}
			out := append([]byte(nil), b...)
			pos := i + len(`"checksum": "`)
			if out[pos] == 'f' {
				out[pos] = '0'
			} else {
				out[pos] = 'f'
			}
			return out
		}, true, "checksum mismatch"},
		{"flipped-content-byte", func(b []byte) []byte {
			// Change a statistic without fixing the section checksum.
			return bytes.Replace(b, []byte(`"card": 1000`), []byte(`"card": 1001`), 1)
		}, true, "checksum mismatch"},
		{"missing-checksum", func(b []byte) []byte { return nil }, true, "missing checksum"},
		{"future-format", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"format_version": 2`), []byte(`"format_version": 99`), 1)
		}, true, "newer than the supported version"},
		{"unknown-column-type", func(b []byte) []byte {
			return nil // built below
		}, true, "unknown type"},
		{"nameless-table", func(b []byte) []byte { return nil }, true, "must have a name"},
		{"negative-card", func(b []byte) []byte { return nil }, true, "cardinality"},
	}
	literals := map[string]string{
		"missing-checksum":    `{"format_version":2,"tables":[{"name":"t","card":1}]}`,
		"unknown-column-type": `{"tables":[{"name":"t","card":1,"columns":[{"name":"x","type":"decimal","distinct":1}]}]}`,
		"nameless-table":      `{"tables":[{"card":1}]}`,
		"negative-card":       `{"tables":[{"name":"t","card":-5}]}`,
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(seed)
			if lit, ok := literals[tc.name]; ok {
				data = []byte(lit)
			}
			c := New()
			err := c.ImportJSON(bytes.NewReader(data))
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("pristine import failed: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("corrupted stats imported without error")
			}
			if !errors.Is(err, governor.ErrBadStats) {
				t.Fatalf("error does not wrap ErrBadStats: %v", err)
			}
			if tc.wantIn != "" && !strings.Contains(err.Error(), tc.wantIn) {
				t.Fatalf("diagnostic %q missing %q", err, tc.wantIn)
			}
		})
	}
}

// TestImportVersionedJSONHeader pins the checkpoint header round trip: the
// catalog_version a durable checkpoint stamps comes back from import, and
// plain exports read as version 0.
func TestImportVersionedJSONHeader(t *testing.T) {
	c := New()
	c.MustAddTable(SimpleTable("r", 10, map[string]float64{"a": 2}))
	var buf bytes.Buffer
	if err := c.ExportVersionedJSON(&buf, 42); err != nil {
		t.Fatal(err)
	}
	in := New()
	v, err := in.ImportVersionedJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("catalog_version %d, want 42", v)
	}
	var plain bytes.Buffer
	if err := c.ExportJSON(&plain); err != nil {
		t.Fatal(err)
	}
	v, err = New().ImportVersionedJSON(bytes.NewReader(plain.Bytes()))
	if err != nil || v != 0 {
		t.Fatalf("plain export: version %d err %v, want 0 nil", v, err)
	}
}

// TestDiffTables pins the WAL delta computation: added and changed tables
// are reported in registration order, unchanged ones are not.
func TestDiffTables(t *testing.T) {
	prev := New()
	prev.MustAddTable(SimpleTable("a", 10, map[string]float64{"x": 2}))
	prev.MustAddTable(SimpleTable("b", 20, map[string]float64{"y": 4}))
	next := prev.Clone()
	if d := DiffTables(prev, next); len(d) != 0 {
		t.Fatalf("clone diff %v, want empty", d)
	}
	next.MustAddTable(SimpleTable("b", 21, map[string]float64{"y": 4})) // changed
	next.MustAddTable(SimpleTable("c", 5, map[string]float64{"z": 5}))  // added
	got := DiffTables(prev, next)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("diff %v, want [b c]", got)
	}
}
