package csvload

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/storage"
)

func TestLoadWithHeader(t *testing.T) {
	in := "id,name,score\n1,ann,3.5\n2,bob,1\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	s := tbl.Schema()
	if s.Column(0).Type != storage.TypeInt64 {
		t.Errorf("id type = %s", s.Column(0).Type)
	}
	if s.Column(1).Type != storage.TypeString {
		t.Errorf("name type = %s", s.Column(1).Type)
	}
	if s.Column(2).Type != storage.TypeFloat64 {
		t.Errorf("score type = %s (mixed int+float must widen)", s.Column(2).Type)
	}
	if tbl.Value(0, 0).Int() != 1 || tbl.Value(1, 1).Str() != "bob" || tbl.Value(1, 2).Float() != 1 {
		t.Error("values wrong")
	}
}

func TestLoadWithoutHeader(t *testing.T) {
	tbl, err := Load("t", strings.NewReader("10,xyz\n20,pqr\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().Column(0).Name != "c0" || tbl.Schema().Column(1).Name != "c1" {
		t.Errorf("auto names wrong: %s", tbl.Schema())
	}
}

func TestLoadNullToken(t *testing.T) {
	in := "k,v\n1,10\n2,NULL\n3,30\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true, NullToken: "null"})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Value(1, 1).IsNull() {
		t.Error("NULL token not honored")
	}
	if tbl.Schema().Column(1).Type != storage.TypeInt64 {
		t.Errorf("type inference should skip nulls: %s", tbl.Schema().Column(1).Type)
	}
}

func TestLoadEmptyFieldsAreNullForNumeric(t *testing.T) {
	in := "k,v\n1,\n2,5\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Value(0, 1).IsNull() {
		t.Error("empty numeric field should load as NULL")
	}
}

func TestLoadCustomComma(t *testing.T) {
	tbl, err := Load("t", strings.NewReader("1;2\n3;4\n"), Options{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.Value(1, 1).Int() != 4 {
		t.Error("semicolon CSV wrong")
	}
}

func TestLoadNegativeAndScientific(t *testing.T) {
	in := "a,b\n-5,1e3\n7,-2.5\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().Column(0).Type != storage.TypeInt64 {
		t.Error("negative integers should stay int")
	}
	if tbl.Schema().Column(1).Type != storage.TypeFloat64 {
		t.Error("scientific notation should be float")
	}
	if tbl.Value(0, 1).Float() != 1000 {
		t.Error("1e3 parse wrong")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("t", strings.NewReader(""), Options{}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Load("t", strings.NewReader(""), Options{Header: true}); err == nil {
		t.Error("empty input with header should error")
	}
	// encoding/csv catches ragged rows itself.
	if _, err := Load("t", strings.NewReader("a,b\n1\n"), Options{Header: true}); err == nil {
		t.Error("ragged record should error")
	}
	// Duplicate header names break schema construction.
	if _, err := Load("t", strings.NewReader("a,a\n1,2\n"), Options{Header: true}); err == nil {
		t.Error("duplicate column names should error")
	}
}

func TestLoadHeaderOnly(t *testing.T) {
	tbl, err := Load("t", strings.NewReader("a,b\n"), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || tbl.Schema().NumColumns() != 2 {
		t.Errorf("header-only table wrong: %s", tbl)
	}
	// All-null/empty columns default to string.
	if tbl.Schema().Column(0).Type != storage.TypeString {
		t.Errorf("empty column type = %s, want VARCHAR", tbl.Schema().Column(0).Type)
	}
}

// Errors must carry the source file name and the 1-based line of the bad
// record, so a broken row in a large dataset is findable.
func TestErrorDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts Options
		want string
	}{
		{
			name: "ragged record",
			in:   "a,b,c\n1,2,3\n4,5\n6,7,8\n",
			opts: Options{Header: true, Filename: "data.csv"},
			want: "data.csv:3: record has 2 fields, want 3",
		},
		{
			name: "ragged without filename",
			in:   "a,b\n1\n",
			opts: Options{Header: true},
			want: "line 2: record has 1 fields, want 2",
		},
		{
			name: "truncated quote",
			in:   "a,b\n1,\"unterminated\n",
			opts: Options{Header: true, Filename: "trunc.csv"},
			want: "trunc.csv:2:",
		},
		{
			name: "bare quote mid-field",
			in:   "a,b\n1,x\"y\n2,z\n",
			opts: Options{Header: true, Filename: "quote.csv"},
			want: "quote.csv:2:",
		},
		{
			name: "empty file names source",
			in:   "",
			opts: Options{Filename: "empty.csv"},
			want: "empty.csv: empty input",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load("t", strings.NewReader(tc.in), tc.opts)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// A multi-line quoted field shifts physical lines past record numbers; the
// reported position must be the physical input line, not the record index.
func TestErrorLineAccountsForMultilineFields(t *testing.T) {
	in := "a,b\n1,\"two\nphysical\nlines\"\n2,3,4\n"
	_, err := Load("t", strings.NewReader(in), Options{Header: true, Filename: "ml.csv"})
	if err == nil {
		t.Fatal("want error")
	}
	// The ragged record is record 3 but starts on physical line 5.
	if !strings.Contains(err.Error(), "ml.csv:5:") {
		t.Errorf("error %q should point at physical line 5", err)
	}
}

// An injected I/O fault at the load probe surfaces as an error naming the
// source, proving data-file failures cannot crash or wedge a load.
func TestLoadFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("simulated I/O error")
	faultinject.Enable(PointLoad, faultinject.Fault{Err: boom, Times: 1})
	_, err := Load("t", strings.NewReader("a\n1\n"), Options{Header: true, Filename: "io.csv"})
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	if !strings.Contains(err.Error(), "io.csv") {
		t.Errorf("error %q should name the file", err)
	}
	// Disarmed: the same load now succeeds.
	if _, err := Load("t", strings.NewReader("a\n1\n"), Options{Header: true}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadQuotedStrings(t *testing.T) {
	in := "k,s\n1,\"hello, world\"\n2,\"line\"\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Value(0, 1).Str() != "hello, world" {
		t.Errorf("quoted value = %q", tbl.Value(0, 1).Str())
	}
}
