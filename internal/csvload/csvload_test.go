package csvload

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestLoadWithHeader(t *testing.T) {
	in := "id,name,score\n1,ann,3.5\n2,bob,1\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	s := tbl.Schema()
	if s.Column(0).Type != storage.TypeInt64 {
		t.Errorf("id type = %s", s.Column(0).Type)
	}
	if s.Column(1).Type != storage.TypeString {
		t.Errorf("name type = %s", s.Column(1).Type)
	}
	if s.Column(2).Type != storage.TypeFloat64 {
		t.Errorf("score type = %s (mixed int+float must widen)", s.Column(2).Type)
	}
	if tbl.Value(0, 0).Int() != 1 || tbl.Value(1, 1).Str() != "bob" || tbl.Value(1, 2).Float() != 1 {
		t.Error("values wrong")
	}
}

func TestLoadWithoutHeader(t *testing.T) {
	tbl, err := Load("t", strings.NewReader("10,xyz\n20,pqr\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().Column(0).Name != "c0" || tbl.Schema().Column(1).Name != "c1" {
		t.Errorf("auto names wrong: %s", tbl.Schema())
	}
}

func TestLoadNullToken(t *testing.T) {
	in := "k,v\n1,10\n2,NULL\n3,30\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true, NullToken: "null"})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Value(1, 1).IsNull() {
		t.Error("NULL token not honored")
	}
	if tbl.Schema().Column(1).Type != storage.TypeInt64 {
		t.Errorf("type inference should skip nulls: %s", tbl.Schema().Column(1).Type)
	}
}

func TestLoadEmptyFieldsAreNullForNumeric(t *testing.T) {
	in := "k,v\n1,\n2,5\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Value(0, 1).IsNull() {
		t.Error("empty numeric field should load as NULL")
	}
}

func TestLoadCustomComma(t *testing.T) {
	tbl, err := Load("t", strings.NewReader("1;2\n3;4\n"), Options{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.Value(1, 1).Int() != 4 {
		t.Error("semicolon CSV wrong")
	}
}

func TestLoadNegativeAndScientific(t *testing.T) {
	in := "a,b\n-5,1e3\n7,-2.5\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().Column(0).Type != storage.TypeInt64 {
		t.Error("negative integers should stay int")
	}
	if tbl.Schema().Column(1).Type != storage.TypeFloat64 {
		t.Error("scientific notation should be float")
	}
	if tbl.Value(0, 1).Float() != 1000 {
		t.Error("1e3 parse wrong")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("t", strings.NewReader(""), Options{}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Load("t", strings.NewReader(""), Options{Header: true}); err == nil {
		t.Error("empty input with header should error")
	}
	// encoding/csv catches ragged rows itself.
	if _, err := Load("t", strings.NewReader("a,b\n1\n"), Options{Header: true}); err == nil {
		t.Error("ragged record should error")
	}
	// Duplicate header names break schema construction.
	if _, err := Load("t", strings.NewReader("a,a\n1,2\n"), Options{Header: true}); err == nil {
		t.Error("duplicate column names should error")
	}
}

func TestLoadHeaderOnly(t *testing.T) {
	tbl, err := Load("t", strings.NewReader("a,b\n"), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || tbl.Schema().NumColumns() != 2 {
		t.Errorf("header-only table wrong: %s", tbl)
	}
	// All-null/empty columns default to string.
	if tbl.Schema().Column(0).Type != storage.TypeString {
		t.Errorf("empty column type = %s, want VARCHAR", tbl.Schema().Column(0).Type)
	}
}

func TestLoadQuotedStrings(t *testing.T) {
	in := "k,s\n1,\"hello, world\"\n2,\"line\"\n"
	tbl, err := Load("t", strings.NewReader(in), Options{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Value(0, 1).Str() != "hello, world" {
		t.Errorf("quoted value = %q", tbl.Value(0, 1).Str())
	}
}
