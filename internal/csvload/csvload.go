// Package csvload imports CSV data into storage tables, with header
// handling and per-column type inference (int64 → float64 → string). It is
// the bridge between externally generated datasets (including cmd/elsgen
// output) and the catalog's ANALYZE path.
package csvload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Options configures CSV import.
type Options struct {
	// Header consumes the first record as column names. Without it columns
	// are named c0, c1, ....
	Header bool
	// Comma is the field separator; 0 means ','.
	Comma rune
	// NullToken, when non-empty, marks NULL values (case-insensitive).
	NullToken string
}

// Load reads CSV from r into a new table with the given name. All records
// must have the same arity. Column types are inferred from the data: a
// column where every non-null value parses as an integer is TypeInt64, else
// if every value parses as a float it is TypeFloat64, else TypeString.
func Load(name string, r io.Reader, opts Options) (*storage.Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.TrimLeadingSpace = true

	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvload: %w", err)
	}
	var names []string
	if opts.Header {
		if len(records) == 0 {
			return nil, fmt.Errorf("csvload: empty input, expected a header")
		}
		names = records[0]
		records = records[1:]
	}
	if len(records) == 0 && len(names) == 0 {
		return nil, fmt.Errorf("csvload: empty input")
	}
	width := len(names)
	if width == 0 {
		width = len(records[0])
		names = make([]string, width)
		for i := range names {
			names[i] = fmt.Sprintf("c%d", i)
		}
	}
	for i, rec := range records {
		if len(rec) != width {
			return nil, fmt.Errorf("csvload: record %d has %d fields, want %d", i+1, len(rec), width)
		}
	}

	isNull := func(s string) bool {
		return opts.NullToken != "" && strings.EqualFold(strings.TrimSpace(s), opts.NullToken)
	}

	// Infer types per column.
	types := make([]storage.Type, width)
	for c := 0; c < width; c++ {
		types[c] = inferColumnType(records, c, isNull)
	}
	defs := make([]storage.ColumnDef, width)
	for i := range defs {
		defs[i] = storage.ColumnDef{Name: names[i], Type: types[i]}
	}
	schema, err := storage.NewSchema(defs...)
	if err != nil {
		return nil, fmt.Errorf("csvload: %w", err)
	}
	tbl := storage.NewTable(name, schema)
	row := make([]storage.Value, width)
	for ri, rec := range records {
		for c, field := range rec {
			v, err := parseValue(field, types[c], isNull)
			if err != nil {
				return nil, fmt.Errorf("csvload: record %d column %s: %w", ri+1, names[c], err)
			}
			row[c] = v
		}
		if err := tbl.AppendRow(row...); err != nil {
			return nil, fmt.Errorf("csvload: record %d: %w", ri+1, err)
		}
	}
	return tbl, nil
}

func inferColumnType(records [][]string, col int, isNull func(string) bool) storage.Type {
	sawValue := false
	allInt, allFloat := true, true
	for _, rec := range records {
		s := strings.TrimSpace(rec[col])
		if s == "" || isNull(s) {
			continue
		}
		sawValue = true
		if allInt {
			if _, err := strconv.ParseInt(s, 10, 64); err != nil {
				allInt = false
			}
		}
		if !allInt && allFloat {
			if _, err := strconv.ParseFloat(s, 64); err != nil {
				allFloat = false
			}
		}
		if !allInt && !allFloat {
			return storage.TypeString
		}
	}
	switch {
	case !sawValue:
		// All-null or empty column: default to string.
		return storage.TypeString
	case allInt:
		return storage.TypeInt64
	case allFloat:
		return storage.TypeFloat64
	default:
		return storage.TypeString
	}
}

func parseValue(field string, t storage.Type, isNull func(string) bool) (storage.Value, error) {
	s := strings.TrimSpace(field)
	if isNull(s) || (s == "" && t != storage.TypeString) {
		return storage.Null(t), nil
	}
	switch t {
	case storage.TypeInt64:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("cannot parse %q as integer", s)
		}
		return storage.Int64(n), nil
	case storage.TypeFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("cannot parse %q as float", s)
		}
		return storage.Float64(f), nil
	default:
		return storage.String64(field), nil
	}
}
