// Package csvload imports CSV data into storage tables, with header
// handling and per-column type inference (int64 → float64 → string). It is
// the bridge between externally generated datasets (including cmd/elsgen
// output) and the catalog's ANALYZE path.
//
// Malformed input — ragged records, truncated quotes, unparsable fields —
// is reported with the source file name (when Options.Filename is set) and
// the 1-based input line, so a bad row in a large dataset is findable.
package csvload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/storage"
)

// PointLoad is the fault-injection probe fired on entry to Load, letting
// tests simulate unreadable or corrupt data files.
const PointLoad = "csvload.load"

// Options configures CSV import.
type Options struct {
	// Header consumes the first record as column names. Without it columns
	// are named c0, c1, ....
	Header bool
	// Comma is the field separator; 0 means ','.
	Comma rune
	// NullToken, when non-empty, marks NULL values (case-insensitive).
	NullToken string
	// Filename, when non-empty, names the input source in error messages
	// ("data.csv:5: ..."). Purely diagnostic; the data still comes from the
	// reader passed to Load.
	Filename string
}

// where formats an input position for error messages.
func (o Options) where(line int) string {
	if o.Filename != "" {
		return fmt.Sprintf("%s:%d", o.Filename, line)
	}
	return fmt.Sprintf("line %d", line)
}

// record is one CSV record with the 1-based input line it started on.
type record struct {
	fields []string
	line   int
}

// Load reads CSV from r into a new table with the given name. All records
// must have the same arity. Column types are inferred from the data: a
// column where every non-null value parses as an integer is TypeInt64, else
// if every value parses as a float it is TypeFloat64, else TypeString.
func Load(name string, r io.Reader, opts Options) (*storage.Table, error) {
	if err := faultinject.Check(PointLoad); err != nil {
		return nil, fmt.Errorf("csvload: %s: %w", orInput(opts.Filename), err)
	}
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.TrimLeadingSpace = true
	// Arity is checked below with our own positioned error, not the csv
	// package's.
	cr.FieldsPerRecord = -1

	var records []record
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				return nil, fmt.Errorf("csvload: %s: %w", opts.where(pe.Line), pe.Err)
			}
			return nil, fmt.Errorf("csvload: %s: %w", orInput(opts.Filename), err)
		}
		line, _ := cr.FieldPos(0)
		records = append(records, record{fields: fields, line: line})
	}

	var names []string
	if opts.Header {
		if len(records) == 0 {
			return nil, fmt.Errorf("csvload: %s: empty input, expected a header", orInput(opts.Filename))
		}
		names = records[0].fields
		records = records[1:]
	}
	if len(records) == 0 && len(names) == 0 {
		return nil, fmt.Errorf("csvload: %s: empty input", orInput(opts.Filename))
	}
	width := len(names)
	if width == 0 {
		width = len(records[0].fields)
		names = make([]string, width)
		for i := range names {
			names[i] = fmt.Sprintf("c%d", i)
		}
	}
	for _, rec := range records {
		if len(rec.fields) != width {
			return nil, fmt.Errorf("csvload: %s: record has %d fields, want %d",
				opts.where(rec.line), len(rec.fields), width)
		}
	}

	isNull := func(s string) bool {
		return opts.NullToken != "" && strings.EqualFold(strings.TrimSpace(s), opts.NullToken)
	}

	// Infer types per column.
	types := make([]storage.Type, width)
	for c := 0; c < width; c++ {
		types[c] = inferColumnType(records, c, isNull)
	}
	defs := make([]storage.ColumnDef, width)
	for i := range defs {
		defs[i] = storage.ColumnDef{Name: names[i], Type: types[i]}
	}
	schema, err := storage.NewSchema(defs...)
	if err != nil {
		return nil, fmt.Errorf("csvload: %s: %w", orInput(opts.Filename), err)
	}
	tbl := storage.NewTable(name, schema)
	row := make([]storage.Value, width)
	for _, rec := range records {
		for c, field := range rec.fields {
			v, err := parseValue(field, types[c], isNull)
			if err != nil {
				return nil, fmt.Errorf("csvload: %s: column %s: %w",
					opts.where(rec.line), names[c], err)
			}
			row[c] = v
		}
		if err := tbl.AppendRow(row...); err != nil {
			return nil, fmt.Errorf("csvload: %s: %w", opts.where(rec.line), err)
		}
	}
	return tbl, nil
}

// orInput substitutes a generic source name when no filename is known.
func orInput(filename string) string {
	if filename == "" {
		return "input"
	}
	return filename
}

func inferColumnType(records []record, col int, isNull func(string) bool) storage.Type {
	sawValue := false
	allInt, allFloat := true, true
	for _, rec := range records {
		s := strings.TrimSpace(rec.fields[col])
		if s == "" || isNull(s) {
			continue
		}
		sawValue = true
		if allInt {
			if _, err := strconv.ParseInt(s, 10, 64); err != nil {
				allInt = false
			}
		}
		if !allInt && allFloat {
			if _, err := strconv.ParseFloat(s, 64); err != nil {
				allFloat = false
			}
		}
		if !allInt && !allFloat {
			return storage.TypeString
		}
	}
	switch {
	case !sawValue:
		// All-null or empty column: default to string.
		return storage.TypeString
	case allInt:
		return storage.TypeInt64
	case allFloat:
		return storage.TypeFloat64
	default:
		return storage.TypeString
	}
}

func parseValue(field string, t storage.Type, isNull func(string) bool) (storage.Value, error) {
	s := strings.TrimSpace(field)
	if isNull(s) || (s == "" && t != storage.TypeString) {
		return storage.Null(t), nil
	}
	switch t {
	case storage.TypeInt64:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("cannot parse %q as integer", s)
		}
		return storage.Int64(n), nil
	case storage.TypeFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("cannot parse %q as float", s)
		}
		return storage.Float64(f), nil
	default:
		return storage.String64(field), nil
	}
}
