package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func TestDistributionString(t *testing.T) {
	names := map[Distribution]string{
		DistUniform:      "uniform",
		DistPermutation:  "permutation",
		DistSequential:   "sequential",
		DistZipf:         "zipf",
		Distribution(99): "unknown",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(TableSpec{Name: "t", Rows: -1, Columns: []ColumnSpec{{Name: "x", Dist: DistUniform, Domain: 1}}}, 1); err == nil {
		t.Error("negative rows should error")
	}
	if _, err := Generate(TableSpec{Name: "t", Rows: 1}, 1); err == nil {
		t.Error("no columns should error")
	}
	if _, err := Generate(TableSpec{Name: "t", Rows: 1, Columns: []ColumnSpec{{Name: ""}}}, 1); err == nil {
		t.Error("unnamed column should error")
	}
	if _, err := Generate(TableSpec{Name: "t", Rows: 1, Columns: []ColumnSpec{{Name: "x", Dist: DistUniform, Domain: 0}}}, 1); err == nil {
		t.Error("zero domain should error")
	}
	if _, err := Generate(TableSpec{Name: "t", Rows: 4, Columns: []ColumnSpec{{Name: "x", Dist: DistPermutation, Domain: 2}}}, 1); err == nil {
		t.Error("permutation domain mismatch should error")
	}
	if _, err := Generate(TableSpec{Name: "t", Rows: 1, Columns: []ColumnSpec{{Name: "x", Dist: Distribution(42), Domain: 3}}}, 1); err == nil {
		t.Error("unknown distribution should error")
	}
	if _, err := Generate(TableSpec{Name: "t", Rows: 1, Columns: []ColumnSpec{{Name: "x", CorrelatedWith: "nope", Domain: 3}}}, 1); err == nil {
		t.Error("unknown correlation source should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := TableSpec{Name: "t", Rows: 50, Columns: []ColumnSpec{{Name: "x", Dist: DistUniform, Domain: 20}}}
	a, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if a.Value(i, 0).Int() != b.Value(i, 0).Int() {
			t.Fatal("same seed should reproduce identical data")
		}
	}
	c, _ := Generate(spec, 43)
	same := true
	for i := 0; i < 50; i++ {
		if a.Value(i, 0).Int() != c.Value(i, 0).Int() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestPermutationColumn(t *testing.T) {
	tbl, err := Generate(TableSpec{Name: "t", Rows: 100, Columns: []ColumnSpec{{Name: "x", Dist: DistPermutation}}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for i := 0; i < 100; i++ {
		v := tbl.Value(i, 0).Int()
		if v < 0 || v >= 100 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d in permutation", v)
		}
		seen[v] = true
	}
}

func TestSequentialColumn(t *testing.T) {
	tbl, err := Generate(TableSpec{Name: "t", Rows: 10, Columns: []ColumnSpec{{Name: "x", Dist: DistSequential, Domain: 4}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if tbl.Value(i, 0).Int() != int64(i%4) {
			t.Fatalf("row %d = %d, want %d", i, tbl.Value(i, 0).Int(), i%4)
		}
	}
}

func TestUniformColumnBounds(t *testing.T) {
	tbl, err := Generate(TableSpec{Name: "t", Rows: 1000, Columns: []ColumnSpec{{Name: "x", Dist: DistUniform, Domain: 10}}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for i := 0; i < 1000; i++ {
		v := tbl.Value(i, 0).Int()
		if v < 0 || v >= 10 {
			t.Fatalf("out of domain: %d", v)
		}
		counts[v]++
	}
	for v, n := range counts {
		if n < 50 || n > 200 {
			t.Errorf("value %d count %d far from uniform expectation 100", v, n)
		}
	}
}

func TestCorrelatedColumn(t *testing.T) {
	tbl, err := Generate(TableSpec{Name: "t", Rows: 30, Columns: []ColumnSpec{
		{Name: "x", Dist: DistUniform, Domain: 10},
		{Name: "y", CorrelatedWith: "x", CorrelationLag: 3, Domain: 10},
	}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		x, y := tbl.Value(i, 0).Int(), tbl.Value(i, 1).Int()
		if y != (x+3)%10 {
			t.Fatalf("row %d: y=%d, want (x+3)%%10=%d", i, y, (x+3)%10)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewZipf(rng, 10, -1); err == nil {
		t.Error("negative theta should error")
	}
	if _, err := NewZipf(rng, 10, math.NaN()); err == nil {
		t.Error("NaN theta should error")
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	z, err := NewZipf(rng, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[z.Next()]++
	}
	for v, n := range counts {
		if n < 800 || n > 1200 {
			t.Errorf("theta=0 value %d count %d far from 1000", v, n)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	z, err := NewZipf(rng, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50]*5 {
		t.Errorf("theta=1 should heavily favor rank 0: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Expected P(0) = 1/H_100 ≈ 0.1928.
	p0 := float64(counts[0]) / 20000
	if math.Abs(p0-0.1928) > 0.03 {
		t.Errorf("P(0) = %g, want ~0.193", p0)
	}
}

func TestPaperTables(t *testing.T) {
	s, m, b, g, err := PaperTables(10, 99)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := map[*storage.Table]int{s: 100, m: 1000, b: 5000, g: 10000}
	for tbl, want := range wantRows {
		if tbl.NumRows() != want {
			t.Errorf("%s rows = %d, want %d", tbl.Name(), tbl.NumRows(), want)
		}
	}
	if s.Schema().ColumnIndex("s") != 0 || g.Schema().ColumnIndex("g") != 0 {
		t.Error("join columns misnamed")
	}
	// Correct answer property: count of s=m=b=g with s < 10 (scaled from the
	// paper's s < 100) must be exactly 10, because each join column is a
	// permutation so each value 0..9 appears exactly once per table.
	count := 0
	inM := make(map[int64]bool)
	for i := 0; i < m.NumRows(); i++ {
		inM[m.Value(i, 0).Int()] = true
	}
	for i := 0; i < s.NumRows(); i++ {
		v := s.Value(i, 0).Int()
		if v < 10 && inM[v] {
			count++
		}
	}
	if count != 10 {
		t.Errorf("S⋈M with s<10 = %d rows, want exactly 10", count)
	}
	if _, _, _, _, err := PaperTables(0, 1); err == nil {
		t.Error("scale 0 should error")
	}
}
