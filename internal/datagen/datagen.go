// Package datagen produces deterministic synthetic datasets for the
// estimation experiments. All generators are seeded so every run of the
// benchmark harness sees identical data.
//
// The paper's Section 8 experiment uses four tables S, M, B, G whose join
// columns have column cardinality equal to the table cardinality; Generate
// with DistPermutation reproduces that exactly (each value appears exactly
// once, so uniformity and containment hold with equality). The Zipf
// generator supports the skew ablations motivated by the paper's
// future-work discussion of Zipfian distributions.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/storage"
)

// Distribution selects how values of a generated column are drawn.
type Distribution int

const (
	// DistUniform draws values independently and uniformly from [0, Domain).
	DistUniform Distribution = iota
	// DistPermutation emits a random permutation of 0..Rows-1 (requires
	// Domain == Rows); every value appears exactly once, giving an exactly
	// uniform join column with d == ‖R‖.
	DistPermutation
	// DistSequential emits i mod Domain for row i: exactly uniform
	// frequencies with d == min(Domain, Rows).
	DistSequential
	// DistZipf draws from a generalized Zipf distribution over [0, Domain)
	// with skew parameter Theta (Theta = 0 degenerates to uniform).
	DistZipf
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistPermutation:
		return "permutation"
	case DistSequential:
		return "sequential"
	case DistZipf:
		return "zipf"
	default:
		return "unknown"
	}
}

// ColumnSpec describes one generated integer column.
type ColumnSpec struct {
	// Name is the column name.
	Name string
	// Dist selects the value distribution.
	Dist Distribution
	// Domain is the number of candidate distinct values; values are drawn
	// from [0, Domain). Containment across tables holds because domains are
	// prefixes of the integers.
	Domain int
	// Theta is the Zipf skew parameter (DistZipf only). Typical values are
	// 0 (uniform) through ~1 (heavily skewed).
	Theta float64
	// CorrelatedWith, if non-empty, makes this column a deterministic
	// function (identity plus CorrelationLag) of the named earlier column
	// instead of an independent draw — used to violate the independence
	// assumption in ablations.
	CorrelatedWith string
	// CorrelationLag is added (mod Domain) to the source column's value.
	CorrelationLag int
}

// TableSpec describes one generated table.
type TableSpec struct {
	// Name is the table name.
	Name string
	// Rows is the table cardinality.
	Rows int
	// Columns are the generated columns, in schema order.
	Columns []ColumnSpec
}

// Generate materializes the table described by spec using the given seed.
func Generate(spec TableSpec, seed int64) (*storage.Table, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("datagen: table %s: negative row count", spec.Name)
	}
	if len(spec.Columns) == 0 {
		return nil, fmt.Errorf("datagen: table %s: no columns", spec.Name)
	}
	defs := make([]storage.ColumnDef, len(spec.Columns))
	for i, cs := range spec.Columns {
		if cs.Name == "" {
			return nil, fmt.Errorf("datagen: table %s: column %d unnamed", spec.Name, i)
		}
		defs[i] = storage.ColumnDef{Name: cs.Name, Type: storage.TypeInt64}
	}
	schema, err := storage.NewSchema(defs...)
	if err != nil {
		return nil, fmt.Errorf("datagen: table %s: %w", spec.Name, err)
	}

	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int64, len(spec.Columns))
	byName := make(map[string]int, len(spec.Columns))
	for i, cs := range spec.Columns {
		byName[cs.Name] = i
		vals, err := generateColumn(spec, cs, cols, byName, rng)
		if err != nil {
			return nil, err
		}
		cols[i] = vals
	}

	tbl := storage.NewTable(spec.Name, schema)
	row := make([]storage.Value, len(cols))
	for r := 0; r < spec.Rows; r++ {
		for c := range cols {
			row[c] = storage.Int64(cols[c][r])
		}
		if err := tbl.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

func generateColumn(spec TableSpec, cs ColumnSpec, cols [][]int64, byName map[string]int, rng *rand.Rand) ([]int64, error) {
	if cs.CorrelatedWith != "" {
		src, ok := byName[cs.CorrelatedWith]
		if !ok || cols[src] == nil {
			return nil, fmt.Errorf("datagen: table %s: column %s correlated with unknown or later column %q",
				spec.Name, cs.Name, cs.CorrelatedWith)
		}
		if cs.Domain <= 0 {
			return nil, fmt.Errorf("datagen: table %s: column %s: non-positive domain", spec.Name, cs.Name)
		}
		out := make([]int64, spec.Rows)
		for i, v := range cols[src] {
			out[i] = (v + int64(cs.CorrelationLag)) % int64(cs.Domain)
			if out[i] < 0 {
				out[i] += int64(cs.Domain)
			}
		}
		return out, nil
	}
	switch cs.Dist {
	case DistUniform:
		if cs.Domain <= 0 {
			return nil, fmt.Errorf("datagen: table %s: column %s: non-positive domain", spec.Name, cs.Name)
		}
		out := make([]int64, spec.Rows)
		for i := range out {
			out[i] = int64(rng.Intn(cs.Domain))
		}
		return out, nil
	case DistPermutation:
		if cs.Domain != 0 && cs.Domain != spec.Rows {
			return nil, fmt.Errorf("datagen: table %s: column %s: permutation requires domain == rows (%d != %d)",
				spec.Name, cs.Name, cs.Domain, spec.Rows)
		}
		out := make([]int64, spec.Rows)
		for i, p := range rng.Perm(spec.Rows) {
			out[i] = int64(p)
		}
		return out, nil
	case DistSequential:
		if cs.Domain <= 0 {
			return nil, fmt.Errorf("datagen: table %s: column %s: non-positive domain", spec.Name, cs.Name)
		}
		out := make([]int64, spec.Rows)
		for i := range out {
			out[i] = int64(i % cs.Domain)
		}
		return out, nil
	case DistZipf:
		if cs.Domain <= 0 {
			return nil, fmt.Errorf("datagen: table %s: column %s: non-positive domain", spec.Name, cs.Name)
		}
		z, err := NewZipf(rng, cs.Domain, cs.Theta)
		if err != nil {
			return nil, fmt.Errorf("datagen: table %s: column %s: %w", spec.Name, cs.Name, err)
		}
		out := make([]int64, spec.Rows)
		for i := range out {
			out[i] = int64(z.Next())
		}
		return out, nil
	default:
		return nil, fmt.Errorf("datagen: table %s: column %s: unknown distribution %d",
			spec.Name, cs.Name, int(cs.Dist))
	}
}

// Zipf draws from a generalized Zipf distribution: P(k) ∝ 1/(k+1)^theta for
// k in [0, n). theta = 0 is uniform; theta = 1 is the classic Zipf
// distribution from the paper's reference [17]. Sampling is by inverse
// transform over the precomputed CDF (O(log n) per draw).
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf creates a Zipf sampler over n values with skew theta >= 0.
func NewZipf(rng *rand.Rand, n int, theta float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: zipf needs n > 0, got %d", n)
	}
	if theta < 0 || math.IsNaN(theta) {
		return nil, fmt.Errorf("datagen: zipf needs theta >= 0, got %g", theta)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -theta)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}, nil
}

// Next draws the next value in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PaperTables generates the four tables of the paper's Section 8
// experiment, optionally scaled down by scale (scale = 1 reproduces the
// paper's cardinalities ‖S‖=1000, ‖M‖=10000, ‖B‖=50000, ‖G‖=100000; scale =
// 10 divides each by 10). Each table has a single join column named after
// the table (s, m, b, g) whose column cardinality equals the table
// cardinality, realized as a permutation so the uniformity and containment
// assumptions hold exactly — which makes the "correct answer is exactly
// ⌈100/scale⌉" property of the paper's query hold exactly as well.
func PaperTables(scale int, seed int64) (s, m, b, g *storage.Table, err error) {
	if scale <= 0 {
		return nil, nil, nil, nil, fmt.Errorf("datagen: scale must be positive, got %d", scale)
	}
	mk := func(name, col string, rows int, seed int64) (*storage.Table, error) {
		return Generate(TableSpec{
			Name: name,
			Rows: rows,
			Columns: []ColumnSpec{
				{Name: col, Dist: DistPermutation},
				{Name: "payload", Dist: DistUniform, Domain: 1 << 20},
			},
		}, seed)
	}
	if s, err = mk("S", "s", 1000/scale, seed+1); err != nil {
		return nil, nil, nil, nil, err
	}
	if m, err = mk("M", "m", 10000/scale, seed+2); err != nil {
		return nil, nil, nil, nil, err
	}
	if b, err = mk("B", "b", 50000/scale, seed+3); err != nil {
		return nil, nil, nil, nil, err
	}
	if g, err = mk("G", "g", 100000/scale, seed+4); err != nil {
		return nil, nil, nil, nil, err
	}
	return s, m, b, g, nil
}
