package eqclass

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

func ref(t, c string) expr.ColumnRef { return expr.ColumnRef{Table: t, Column: c} }

func TestSingletons(t *testing.T) {
	c := New()
	x := ref("R1", "x")
	c.Add(x)
	c.Add(x) // idempotent
	if !c.Contains(x) {
		t.Error("Add should register")
	}
	if !c.Same(x, x) {
		t.Error("column equivalent to itself")
	}
	if c.Same(x, ref("R2", "y")) {
		t.Error("distinct singletons must not be equivalent")
	}
	if c.NumClasses() != 1 {
		t.Errorf("NumClasses = %d", c.NumClasses())
	}
}

func TestUnionChain(t *testing.T) {
	// The paper's Example 1a: x=y, y=z puts x, y, z in one class.
	c := New()
	x, y, z := ref("R1", "x"), ref("R2", "y"), ref("R3", "z")
	c.Union(x, y)
	c.Union(y, z)
	if !c.Same(x, z) {
		t.Error("transitivity failed")
	}
	if c.NumClasses() != 1 {
		t.Errorf("NumClasses = %d, want 1", c.NumClasses())
	}
	members := c.Members(x)
	if len(members) != 3 {
		t.Fatalf("Members = %v", members)
	}
	if members[0].Key() != "r1.x" || members[1].Key() != "r2.y" || members[2].Key() != "r3.z" {
		t.Errorf("Members not sorted: %v", members)
	}
}

func TestSeparateClasses(t *testing.T) {
	c := New()
	c.Union(ref("A", "a"), ref("B", "b"))
	c.Union(ref("C", "c"), ref("D", "d"))
	if c.Same(ref("A", "a"), ref("C", "c")) {
		t.Error("independent classes merged")
	}
	if c.NumClasses() != 2 {
		t.Errorf("NumClasses = %d, want 2", c.NumClasses())
	}
	all := c.All()
	if len(all) != 2 || len(all[0]) != 2 || len(all[1]) != 2 {
		t.Errorf("All = %v", all)
	}
	if all[0][0].Key() != "a.a" {
		t.Errorf("All should be ordered by smallest member, got %v", all)
	}
}

func TestAllOmitsSingletons(t *testing.T) {
	c := New()
	c.Add(ref("L", "only"))
	c.Union(ref("A", "a"), ref("B", "b"))
	all := c.All()
	if len(all) != 1 {
		t.Errorf("All should omit singletons: %v", all)
	}
}

func TestClassID(t *testing.T) {
	c := New()
	c.Union(ref("R2", "y"), ref("R1", "x"))
	c.Union(ref("R3", "z"), ref("R2", "y"))
	id := c.ClassID(ref("R3", "z"))
	if id != "r1.x" {
		t.Errorf("ClassID = %q, want smallest member key r1.x", id)
	}
	if c.ClassID(ref("Q", "unseen")) != "q.unseen" {
		t.Error("unseen ref should be its own ID")
	}
	if c.ClassID(ref("R1", "x")) != c.ClassID(ref("R2", "y")) {
		t.Error("all members must share a ClassID")
	}
}

func TestMembersUnregistered(t *testing.T) {
	c := New()
	m := c.Members(ref("X", "x"))
	if len(m) != 1 || m[0].Key() != "x.x" {
		t.Errorf("Members of unregistered = %v", m)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	c := New()
	c.Union(ref("R1", "X"), ref("r2", "Y"))
	if !c.Same(ref("r1", "x"), ref("R2", "y")) {
		t.Error("classes must be case-insensitive")
	}
}

func TestFromPredicates(t *testing.T) {
	preds := []expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R3", "z")),
		expr.NewJoin(ref("R4", "p"), expr.OpLT, ref("R5", "q")),    // non-equality: no merge
		expr.NewConst(ref("R6", "w"), expr.OpEQ, storage.Int64(5)), // const: register only
		expr.NewJoin(ref("R7", "u"), expr.OpEQ, ref("R7", "v")),    // local col=col merges
	}
	c := FromPredicates(preds)
	if !c.Same(ref("R1", "x"), ref("R3", "z")) {
		t.Error("x and z should be j-equivalent")
	}
	if c.Same(ref("R4", "p"), ref("R5", "q")) {
		t.Error("non-equality must not merge")
	}
	if !c.Contains(ref("R4", "p")) || !c.Contains(ref("R5", "q")) || !c.Contains(ref("R6", "w")) {
		t.Error("all participating columns must be registered")
	}
	if !c.Same(ref("R7", "u"), ref("R7", "v")) {
		t.Error("local equality must merge")
	}
}

// Property: after random unions, Same is an equivalence relation
// (reflexive, symmetric, transitive) and matches a naive reference
// implementation.
func TestUnionFindMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cols := make([]expr.ColumnRef, 12)
	for i := range cols {
		cols[i] = ref("T", string(rune('a'+i)))
	}
	for trial := 0; trial < 50; trial++ {
		c := New()
		// naive: map key -> group id
		naive := make(map[string]int)
		for i, col := range cols {
			naive[col.Key()] = i
			c.Add(col)
		}
		merge := func(a, b expr.ColumnRef) {
			ga, gb := naive[a.Key()], naive[b.Key()]
			if ga == gb {
				return
			}
			for k, g := range naive {
				if g == gb {
					naive[k] = ga
				}
			}
		}
		nUnions := rng.Intn(15)
		for u := 0; u < nUnions; u++ {
			a, b := cols[rng.Intn(len(cols))], cols[rng.Intn(len(cols))]
			c.Union(a, b)
			merge(a, b)
		}
		for _, a := range cols {
			for _, b := range cols {
				want := naive[a.Key()] == naive[b.Key()]
				if got := c.Same(a, b); got != want {
					t.Fatalf("trial %d: Same(%s,%s) = %v, naive %v", trial, a, b, got, want)
				}
			}
		}
		// NumClasses matches naive group count.
		groups := make(map[int]struct{})
		for _, g := range naive {
			groups[g] = struct{}{}
		}
		if c.NumClasses() != len(groups) {
			t.Fatalf("trial %d: NumClasses = %d, naive %d", trial, c.NumClasses(), len(groups))
		}
	}
}
