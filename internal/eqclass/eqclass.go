// Package eqclass maintains equivalence classes of join columns
// ("j-equivalence" in the paper). Initially each column is a class by
// itself; every equality predicate seen merges the classes of its two
// columns (Section 2). The structure is a union-find with path compression
// and union by size.
package eqclass

import (
	"sort"

	"repro/internal/expr"
)

// Classes is a disjoint-set structure over column references.
type Classes struct {
	parent map[string]string
	size   map[string]int
	refs   map[string]expr.ColumnRef // canonical key -> a representative spelling
	order  []string                  // insertion order of keys, for determinism
}

// New returns an empty equivalence-class structure.
func New() *Classes {
	return &Classes{
		parent: make(map[string]string),
		size:   make(map[string]int),
		refs:   make(map[string]expr.ColumnRef),
	}
}

// Add registers a column as its own singleton class if it is not already
// known.
func (c *Classes) Add(ref expr.ColumnRef) {
	k := ref.Key()
	if _, ok := c.parent[k]; ok {
		return
	}
	c.parent[k] = k
	c.size[k] = 1
	c.refs[k] = ref
	c.order = append(c.order, k)
}

// Contains reports whether the column has been registered.
func (c *Classes) Contains(ref expr.ColumnRef) bool {
	_, ok := c.parent[ref.Key()]
	return ok
}

func (c *Classes) find(k string) string {
	root := k
	for c.parent[root] != root {
		root = c.parent[root]
	}
	for c.parent[k] != root { // path compression
		c.parent[k], k = root, c.parent[k]
	}
	return root
}

// Union merges the classes of a and b, registering them if needed.
func (c *Classes) Union(a, b expr.ColumnRef) {
	c.Add(a)
	c.Add(b)
	ra, rb := c.find(a.Key()), c.find(b.Key())
	if ra == rb {
		return
	}
	if c.size[ra] < c.size[rb] {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	c.size[ra] += c.size[rb]
}

// Same reports whether a and b are j-equivalent. Unregistered columns are
// equivalent only to themselves.
func (c *Classes) Same(a, b expr.ColumnRef) bool {
	if a.Key() == b.Key() {
		return true
	}
	if !c.Contains(a) || !c.Contains(b) {
		return false
	}
	return c.find(a.Key()) == c.find(b.Key())
}

// ClassID returns a stable identifier of the class containing ref: the
// lexicographically smallest key in the class. Unregistered refs return
// their own key.
func (c *Classes) ClassID(ref expr.ColumnRef) string {
	if !c.Contains(ref) {
		return ref.Key()
	}
	root := c.find(ref.Key())
	// The root is arbitrary; derive a stable ID by scanning members.
	min := ""
	for _, k := range c.order {
		if c.find(k) == root && (min == "" || k < min) {
			min = k
		}
	}
	return min
}

// Members returns the columns j-equivalent to ref (including itself),
// sorted by key.
func (c *Classes) Members(ref expr.ColumnRef) []expr.ColumnRef {
	if !c.Contains(ref) {
		return []expr.ColumnRef{ref}
	}
	root := c.find(ref.Key())
	var out []expr.ColumnRef
	for _, k := range c.order {
		if c.find(k) == root {
			out = append(out, c.refs[k])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// All returns every class with two or more members, each sorted by key;
// classes are ordered by their smallest member key. Singleton classes are
// omitted (they never affect join estimation).
func (c *Classes) All() [][]expr.ColumnRef {
	groups := make(map[string][]expr.ColumnRef)
	for _, k := range c.order {
		root := c.find(k)
		groups[root] = append(groups[root], c.refs[k])
	}
	var out [][]expr.ColumnRef
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sort.Slice(g, func(i, j int) bool { return g[i].Key() < g[j].Key() })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Key() < out[j][0].Key() })
	return out
}

// NumClasses returns the number of distinct classes among registered
// columns (including singletons).
func (c *Classes) NumClasses() int {
	roots := make(map[string]struct{})
	for _, k := range c.order {
		roots[c.find(k)] = struct{}{}
	}
	return len(roots)
}

// FromPredicates builds equivalence classes from the equality predicates in
// preds (both join and local column-column equalities merge classes; local
// constant predicates only register the column). This is how ELS step 1
// builds classes "for all columns that are participating in any of the
// predicates".
func FromPredicates(preds []expr.Predicate) *Classes {
	c := New()
	for _, p := range preds {
		switch {
		case p.RightIsColumn && p.Op == expr.OpEQ:
			c.Union(p.Left, p.Right)
		case p.RightIsColumn:
			c.Add(p.Left)
			c.Add(p.Right)
		default:
			c.Add(p.Left)
		}
	}
	return c
}
