package closure

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

func ref(t, c string) expr.ColumnRef { return expr.ColumnRef{Table: t, Column: c} }

func keys(preds []expr.Predicate) map[string]bool {
	m := make(map[string]bool, len(preds))
	for _, p := range preds {
		m[p.CanonicalKey()] = true
	}
	return m
}

func TestRuleA_JoinJoinImpliesJoin(t *testing.T) {
	// Example 1a: (R1.x = R2.y) AND (R2.y = R3.z) => (R1.x = R3.z)
	res := Compute([]expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R3", "z")),
	})
	got := keys(res.Implied)
	want := expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R3", "z")).CanonicalKey()
	if !got[want] {
		t.Errorf("missing implied J3; implied = %v", res.Implied)
	}
	if len(res.Implied) != 1 {
		t.Errorf("implied = %v, want exactly 1", res.Implied)
	}
	if len(res.Predicates) != 3 {
		t.Errorf("closed set size = %d, want 3", len(res.Predicates))
	}
}

func TestRuleB_JoinJoinImpliesLocal(t *testing.T) {
	// (R1.x = R2.y) AND (R1.x = R2.w) => (R2.y = R2.w)
	res := Compute([]expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "w")),
	})
	want := expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R2", "w")).CanonicalKey()
	if !keys(res.Implied)[want] {
		t.Errorf("missing implied local predicate; implied = %v", res.Implied)
	}
	// Check the implied one really is a same-table local predicate.
	found := false
	for _, p := range res.Implied {
		if p.CanonicalKey() == want && p.Kind() == expr.KindLocalColCol {
			found = true
		}
	}
	if !found {
		t.Error("implied (R2.y = R2.w) should be KindLocalColCol")
	}
}

func TestRuleC_LocalLocalImpliesLocal(t *testing.T) {
	// (R1.x = R1.y) AND (R1.y = R1.z) => (R1.x = R1.z)
	res := Compute([]expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R1", "y")),
		expr.NewJoin(ref("R1", "y"), expr.OpEQ, ref("R1", "z")),
	})
	want := expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R1", "z")).CanonicalKey()
	if !keys(res.Implied)[want] {
		t.Errorf("missing implied (R1.x = R1.z); implied = %v", res.Implied)
	}
}

func TestRuleD_JoinLocalImpliesJoin(t *testing.T) {
	// (R1.x = R2.y) AND (R1.x = R1.v) => (R2.y = R1.v)
	res := Compute([]expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R1", "v")),
	})
	want := expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R1", "v")).CanonicalKey()
	if !keys(res.Implied)[want] {
		t.Errorf("missing implied (R2.y = R1.v); implied = %v", res.Implied)
	}
}

func TestRuleE_JoinConstImpliesConst(t *testing.T) {
	// (R1.x = R2.y) AND (R1.x < 100) => (R2.y < 100)
	res := Compute([]expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewConst(ref("R1", "x"), expr.OpLT, storage.Int64(100)),
	})
	want := expr.NewConst(ref("R2", "y"), expr.OpLT, storage.Int64(100)).CanonicalKey()
	if !keys(res.Implied)[want] {
		t.Errorf("missing implied (R2.y < 100); implied = %v", res.Implied)
	}
}

func TestRuleE_AllOperators(t *testing.T) {
	for _, op := range []expr.CompareOp{expr.OpEQ, expr.OpNE, expr.OpLT, expr.OpLE, expr.OpGT, expr.OpGE} {
		res := Compute([]expr.Predicate{
			expr.NewJoin(ref("A", "a"), expr.OpEQ, ref("B", "b")),
			expr.NewConst(ref("A", "a"), op, storage.Int64(7)),
		})
		want := expr.NewConst(ref("B", "b"), op, storage.Int64(7)).CanonicalKey()
		if !keys(res.Implied)[want] {
			t.Errorf("op %s: constant comparison not propagated", op)
		}
	}
}

func TestNoPropagationAcrossInequalityJoin(t *testing.T) {
	// A non-equality join predicate must not merge classes or propagate.
	res := Compute([]expr.Predicate{
		expr.NewJoin(ref("A", "a"), expr.OpLT, ref("B", "b")),
		expr.NewConst(ref("A", "a"), expr.OpLT, storage.Int64(5)),
	})
	if len(res.Implied) != 0 {
		t.Errorf("nothing should be implied, got %v", res.Implied)
	}
}

func TestDuplicateElimination(t *testing.T) {
	// ELS step 1: duplicate predicates collapse.
	p := expr.NewConst(ref("R1", "x"), expr.OpGT, storage.Int64(500))
	res := Compute([]expr.Predicate{p, p})
	if len(res.Predicates) != 1 {
		t.Errorf("duplicates should collapse: %v", res.Predicates)
	}
}

func TestPaperExperimentClosure(t *testing.T) {
	// Section 8: s=m AND m=b AND b=g AND s<100 expands to all six join
	// equalities plus m<100, b<100, g<100.
	res := Compute([]expr.Predicate{
		expr.NewJoin(ref("S", "s"), expr.OpEQ, ref("M", "m")),
		expr.NewJoin(ref("M", "m"), expr.OpEQ, ref("B", "b")),
		expr.NewJoin(ref("B", "b"), expr.OpEQ, ref("G", "g")),
		expr.NewConst(ref("S", "s"), expr.OpLT, storage.Int64(100)),
	})
	joins, locals := expr.Partition(res.Predicates)
	if len(joins) != 6 {
		t.Errorf("closed join predicates = %d, want 6 (all pairs)", len(joins))
	}
	if len(locals) != 4 {
		t.Errorf("closed local predicates = %d, want 4 (s,m,b,g < 100)", len(locals))
	}
	got := keys(res.Predicates)
	for _, w := range []expr.Predicate{
		expr.NewJoin(ref("S", "s"), expr.OpEQ, ref("B", "b")),
		expr.NewJoin(ref("S", "s"), expr.OpEQ, ref("G", "g")),
		expr.NewJoin(ref("M", "m"), expr.OpEQ, ref("G", "g")),
		expr.NewConst(ref("M", "m"), expr.OpLT, storage.Int64(100)),
		expr.NewConst(ref("B", "b"), expr.OpLT, storage.Int64(100)),
		expr.NewConst(ref("G", "g"), expr.OpLT, storage.Int64(100)),
	} {
		if !got[w.CanonicalKey()] {
			t.Errorf("missing %s in closure", w)
		}
	}
	if res.Classes.NumClasses() != 1 {
		t.Errorf("expected a single equivalence class, got %d", res.Classes.NumClasses())
	}
}

func TestIdempotence(t *testing.T) {
	in := []expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R3", "z")),
		expr.NewConst(ref("R1", "x"), expr.OpLE, storage.Int64(10)),
	}
	first := Compute(in)
	second := Compute(first.Predicates)
	if len(second.Implied) != 0 {
		t.Errorf("closure must be a fixpoint; second pass implied %v", second.Implied)
	}
	if len(second.Predicates) != len(first.Predicates) {
		t.Errorf("fixpoint size changed: %d -> %d", len(first.Predicates), len(second.Predicates))
	}
}

func TestEligibleJoinPredicates(t *testing.T) {
	preds := Compute([]expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R3", "z")),
	}).Predicates
	// Joining R1 into {R2, R3}: eligible are x=y and x=z.
	el := EligibleJoinPredicates(preds, "R1", []string{"R2", "R3"})
	if len(el) != 2 {
		t.Fatalf("eligible = %v, want 2", el)
	}
	// Joining R1 into {R3} only: just x=z.
	el = EligibleJoinPredicates(preds, "r1", []string{"r3"})
	if len(el) != 1 || !el[0].References("R3") {
		t.Fatalf("eligible = %v", el)
	}
	// No eligible predicates → cartesian.
	if got := EligibleJoinPredicates(preds, "R1", []string{"Q"}); len(got) != 0 {
		t.Errorf("eligible vs unrelated table = %v", got)
	}
}

func TestLocalPredicatesOf(t *testing.T) {
	preds := []expr.Predicate{
		expr.NewConst(ref("R1", "x"), expr.OpLT, storage.Int64(5)),
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R2", "w")),
	}
	if got := LocalPredicatesOf(preds, "R1"); len(got) != 1 || got[0].Kind() != expr.KindLocalConst {
		t.Errorf("R1 locals = %v", got)
	}
	if got := LocalPredicatesOf(preds, "R2"); len(got) != 1 || got[0].Kind() != expr.KindLocalColCol {
		t.Errorf("R2 locals = %v", got)
	}
}

// Property: the closed set is sound — every implied equality's endpoints
// were already connected by a path of input equalities (checked via a
// reference BFS), and closure of the closure adds nothing.
func TestClosureSoundCompleteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tables := []string{"A", "B", "C", "D"}
	colsOf := func(t string) []expr.ColumnRef {
		return []expr.ColumnRef{ref(t, "c0"), ref(t, "c1")}
	}
	var all []expr.ColumnRef
	for _, tb := range tables {
		all = append(all, colsOf(tb)...)
	}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(6)
		var preds []expr.Predicate
		adj := make(map[string][]string)
		connect := func(a, b expr.ColumnRef) {
			adj[a.Key()] = append(adj[a.Key()], b.Key())
			adj[b.Key()] = append(adj[b.Key()], a.Key())
		}
		for i := 0; i < n; i++ {
			a := all[rng.Intn(len(all))]
			b := all[rng.Intn(len(all))]
			if a.Key() == b.Key() {
				continue
			}
			preds = append(preds, expr.NewJoin(a, expr.OpEQ, b))
			connect(a, b)
		}
		reachable := func(from, to string) bool {
			seen := map[string]bool{from: true}
			queue := []string{from}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				if cur == to {
					return true
				}
				for _, nxt := range adj[cur] {
					if !seen[nxt] {
						seen[nxt] = true
						queue = append(queue, nxt)
					}
				}
			}
			return false
		}
		res := Compute(preds)
		for _, p := range res.Implied {
			if !reachable(p.Left.Key(), p.Right.Key()) {
				t.Fatalf("trial %d: unsound implication %s", trial, p)
			}
		}
		// Completeness: every connected pair appears in the closed set.
		closedKeys := keys(res.Predicates)
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				a, b := all[i], all[j]
				if adj[a.Key()] == nil || adj[b.Key()] == nil {
					continue
				}
				if reachable(a.Key(), b.Key()) {
					k := expr.NewJoin(a, expr.OpEQ, b).CanonicalKey()
					if !closedKeys[k] {
						t.Fatalf("trial %d: missing implied equality %s = %s", trial, a, b)
					}
				}
			}
		}
		// Idempotence.
		if again := Compute(res.Predicates); len(again.Implied) != 0 {
			t.Fatalf("trial %d: closure not a fixpoint", trial)
		}
	}
}
