// Package closure implements predicate transitive closure (PTC), step 2 of
// Algorithm ELS. Given the conjuncts of a WHERE clause it derives every
// implied equality predicate and propagates constant comparisons across
// equality-connected columns. The paper lists five inference rule shapes
// (Section 4, step 2):
//
//	a. join + join   → join   (R1.x = R2.y) ∧ (R2.y = R3.z) ⇒ (R1.x = R3.z)
//	b. join + join   → local  (R1.x = R2.y) ∧ (R1.x = R2.w) ⇒ (R2.y = R2.w)
//	c. local + local → local  (R1.x = R1.y) ∧ (R1.y = R1.z) ⇒ (R1.x = R1.z)
//	d. join + local  → join   (R1.x = R2.y) ∧ (R1.x = R1.v) ⇒ (R2.y = R1.v)
//	e. join + local  → local  (R1.x = R2.y) ∧ (R1.x op c)   ⇒ (R2.y op c)
//
// All five are subsumed by computing the equivalence classes of the
// equality predicates and then (i) emitting the equality between every
// pair of j-equivalent columns and (ii) replicating every column-constant
// comparison onto every column j-equivalent to its subject. Computing the
// closure this way reaches the fixpoint in one pass.
package closure

import (
	"repro/internal/eqclass"
	"repro/internal/expr"
)

// Result is the outcome of transitive closure over a conjunction.
type Result struct {
	// Predicates is the closed, duplicate-free conjunction: the original
	// predicates (deduplicated, in first-occurrence order) followed by the
	// implied ones.
	Predicates []expr.Predicate
	// Implied holds only the newly derived predicates, in deterministic
	// order.
	Implied []expr.Predicate
	// Classes are the j-equivalence classes of all participating columns.
	Classes *eqclass.Classes
}

// Compute performs duplicate elimination (ELS step 1) and transitive
// closure (ELS step 2) over the given conjunction.
func Compute(preds []expr.Predicate) Result {
	orig := expr.Dedup(preds)
	classes := eqclass.FromPredicates(orig)

	seen := make(map[string]struct{}, len(orig)*2)
	for _, p := range orig {
		seen[p.CanonicalKey()] = struct{}{}
	}

	var implied []expr.Predicate
	emit := func(p expr.Predicate) {
		k := p.CanonicalKey()
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		implied = append(implied, p)
	}

	// (i) Equalities between every pair of j-equivalent columns.
	// Covers rules a, b, c and d: whatever mix of join and local equalities
	// connected two columns, the pairwise equality is implied.
	for _, class := range classes.All() {
		for i := 0; i < len(class); i++ {
			for j := i + 1; j < len(class); j++ {
				emit(expr.NewJoin(class[i], expr.OpEQ, class[j]).Normalize())
			}
		}
	}

	// (ii) Rule e: propagate each column-constant comparison to every
	// j-equivalent column. Applies to any comparison operator as long as
	// the columns are linked by equality.
	for _, p := range orig {
		if p.Kind() != expr.KindLocalConst {
			continue
		}
		for _, m := range classes.Members(p.Left) {
			if m.SameAs(p.Left) {
				continue
			}
			emit(expr.NewConst(m, p.Op, p.Const))
		}
	}

	out := make([]expr.Predicate, 0, len(orig)+len(implied))
	out = append(out, orig...)
	out = append(out, implied...)
	return Result{Predicates: out, Implied: implied, Classes: classes}
}

// EligibleJoinPredicates returns the join predicates from preds that link a
// column of table next with a column of any table in joined (the
// "eligible" predicates of Section 2 considered when next is joined to an
// intermediate result covering the joined set). Table name matching is
// case-insensitive via expr.Predicate.References.
func EligibleJoinPredicates(preds []expr.Predicate, next string, joined []string) []expr.Predicate {
	var out []expr.Predicate
	for _, p := range preds {
		if p.Kind() != expr.KindJoin || !p.References(next) {
			continue
		}
		for _, t := range joined {
			if p.References(t) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// LocalPredicatesOf returns the local predicates (constant and same-table
// column comparisons) on the named table.
func LocalPredicatesOf(preds []expr.Predicate, table string) []expr.Predicate {
	var out []expr.Predicate
	for _, p := range preds {
		if p.Kind() != expr.KindJoin && p.References(table) {
			out = append(out, p)
		}
	}
	return out
}
