package replica

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/snapshot"
)

// PointApply is the faultinject probe-point prefix fired inside a
// follower's delta replay, scoped per follower as PointApply + ":" + id.
// Arm it with a Payload of type func(*catalog.Catalog) to corrupt the
// follower's replayed catalog in place — the way replication tests
// manufacture divergence for the digest audit to catch — or a plain Err to
// fail the replay.
const PointApply = "replica.apply"

// Follower is one read replica's replication state: its own durable store
// (WAL + checkpoints, recovered exactly like a primary's), its own
// copy-on-write snapshot store that read-only queries pin versions from,
// and the bookkeeping that certifies those versions against the primary —
// the announced primary version (for lag), the digest audit, and the
// sticky quarantine.
//
// Apply and the resync path serialize on an internal lock; reads
// (ReadCheck, Version, Lag) never block behind a replay.
type Follower struct {
	id    string
	dur   *durable.Store
	store *snapshot.Store

	known atomic.Uint64 // highest primary version announced to this follower

	//lockorder:level 36
	mu          sync.Mutex
	quarantined error // sticky *governor.DivergenceError until resync

	framesApplied atomic.Uint64
	framesSkipped atomic.Uint64
	fullFrames    atomic.Uint64
	servedReads   atomic.Uint64
	staleReads    atomic.Uint64
}

// NewFollower wraps a follower's recovered durable store and the snapshot
// store serving its reads. The snapshot store must already have the
// durable store installed as its Durability hook, so replayed deltas are
// persisted to the follower's own WAL before they are published.
func NewFollower(id string, dur *durable.Store, store *snapshot.Store) *Follower {
	f := &Follower{id: id, dur: dur, store: store}
	// Until the primary announces, the follower only knows its own
	// recovered version; lag is measured from there.
	f.known.Store(store.Version())
	return f
}

// ID returns the follower's identifier (its data directory base name).
func (f *Follower) ID() string { return f.id }

// Version returns the follower's current applied catalog version.
func (f *Follower) Version() uint64 { return f.store.Version() }

// Announce records that the primary has acknowledged version — the
// reliable control signal shipped alongside (and independently of) data
// frames, so lag stays honest even when data frames are lost in flight.
func (f *Follower) Announce(version uint64) {
	for {
		cur := f.known.Load()
		if version <= cur || f.known.CompareAndSwap(cur, version) {
			return
		}
	}
}

// Known returns the highest primary version announced so far.
func (f *Follower) Known() uint64 { return f.known.Load() }

// Lag returns how many catalog versions the follower trails the announced
// primary version (0 when caught up).
func (f *Follower) Lag() uint64 {
	known, have := f.known.Load(), f.store.Version()
	if known <= have {
		return 0
	}
	return known - have
}

// Quarantined returns the sticky divergence error, or nil.
func (f *Follower) Quarantined() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.quarantined
}

// CurrentDigest computes the SHA-256 identity of the follower's current
// catalog version — what audits compare against the primary's.
func (f *Follower) CurrentDigest() (uint64, [DigestSize]byte, error) {
	snap := f.store.Current()
	d, err := CatalogDigest(snap.Catalog(), snap.Version())
	return snap.Version(), d, err
}

// ReadCheck admits or rejects one read under maxLag (0 = unbounded): a
// quarantined follower rejects with its divergence error, a follower more
// than maxLag versions behind rejects with a *governor.StaleReplicaError,
// and an admitted read reports the lag it will be served at.
func (f *Follower) ReadCheck(maxLag int) (uint64, error) {
	if q := f.Quarantined(); q != nil {
		f.staleReads.Add(1)
		return 0, q
	}
	lag := f.Lag()
	if maxLag > 0 && lag > uint64(maxLag) {
		f.staleReads.Add(1)
		return lag, &governor.StaleReplicaError{ReplicaID: f.id, Lag: lag, MaxLag: uint64(maxLag)}
	}
	f.servedReads.Add(1)
	return lag, nil
}

// Apply decodes and replays one shipped frame. The error taxonomy is the
// shipper's dispatch table: nil (applied or idempotently skipped),
// ErrBadFrame/ErrFrameGap (re-ship — see NeedsResync), ErrDiverged (the
// digest audit failed; the follower is now quarantined), or a
// governor.ErrDurability from the follower's own disk (the follower is
// down until reopened). It never panics on adversarial input.
func (f *Follower) Apply(data []byte) error {
	fr, err := DecodeFrame(data)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if fr.Version > f.known.Load() {
		f.Announce(fr.Version) // data implies the primary acked it
	}
	switch fr.Kind {
	case FrameFull:
		return f.applyFull(fr)
	default:
		return f.applyDelta(fr)
	}
}

// applyDelta replays one mutation delta. Caller holds f.mu.
func (f *Follower) applyDelta(fr Frame) error {
	if f.quarantined != nil {
		// Divergence is sticky: replaying further deltas onto a
		// known-wrong catalog could only manufacture more wrong versions.
		return f.quarantined
	}
	cur := f.store.Version()
	switch {
	case fr.Version <= cur:
		// Duplicate of an already-applied version (re-ship overlap);
		// replay is idempotent by skipping, never by re-applying.
		f.framesSkipped.Add(1)
		return nil
	case fr.Version > cur+1:
		return fmt.Errorf("%w: follower %s is at version %d, frame carries version %d",
			ErrFrameGap, f.id, cur, fr.Version)
	}
	err := f.store.Mutate(func(cat *catalog.Catalog) error {
		if _, ierr := cat.ImportVersionedJSON(bytes.NewReader(fr.Body)); ierr != nil {
			return fmt.Errorf("%w: delta for version %d: %w", ErrBadFrame, fr.Version, ierr)
		}
		if fault, ok := faultinject.Fire(PointApply + ":" + f.id); ok {
			if corrupt, isCorruptor := fault.Payload.(func(*catalog.Catalog)); isCorruptor {
				corrupt(cat)
			}
			if fault.Err != nil {
				return fault.Err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// The digest audit: the version just published must be byte-identical
	// to the primary's catalog at the same version, or the follower is
	// provably not a replica anymore.
	got, err := CatalogDigest(f.store.Current().Catalog(), fr.Version)
	if err != nil {
		return fmt.Errorf("%w: digest of replayed version %d: %w", governor.ErrInternal, fr.Version, err)
	}
	if got != fr.Digest {
		f.quarantined = &governor.DivergenceError{
			ReplicaID: f.id,
			Version:   fr.Version,
			Want:      hex.EncodeToString(fr.Digest[:]),
			Got:       hex.EncodeToString(got[:]),
		}
		return f.quarantined
	}
	f.framesApplied.Add(1)
	return nil
}

// applyFull installs the primary's complete catalog at the primary's
// version — the resynchronization path. It verifies the payload against
// the frame digest, persists it to the follower's own durable store
// (checkpoint + WAL reset), publishes it, and lifts any quarantine: the
// follower's identity is re-certified by construction. Caller holds f.mu.
func (f *Follower) applyFull(fr Frame) error {
	if sha256.Sum256(fr.Body) != fr.Digest {
		return fmt.Errorf("%w: full frame for version %d fails its digest", ErrBadFrame, fr.Version)
	}
	cat := catalog.New()
	v, err := cat.ImportVersionedJSON(bytes.NewReader(fr.Body))
	if err != nil {
		return fmt.Errorf("%w: full frame for version %d: %w", ErrBadFrame, fr.Version, err)
	}
	if v != fr.Version {
		return fmt.Errorf("%w: full frame framed as version %d carries catalog_version %d",
			ErrBadFrame, fr.Version, v)
	}
	if err := f.dur.ResetTo(cat, fr.Version); err != nil {
		return err
	}
	f.store.Jump(cat, fr.Version)
	f.quarantined = nil
	f.fullFrames.Add(1)
	return nil
}

// FollowerStats is a point-in-time snapshot of one follower's replication
// counters.
type FollowerStats struct {
	// ID is the follower's identifier.
	ID string
	// Version is the applied catalog version; Known is the highest primary
	// version announced; Lag is their distance (0 when caught up).
	Version, Known, Lag uint64
	// FramesApplied counts delta frames replayed; FramesSkipped counts
	// idempotent duplicates; FullFrames counts (re)synchronizations.
	FramesApplied, FramesSkipped, FullFrames uint64
	// ServedReads and StaleReads count ReadCheck admissions and
	// rejections (staleness or quarantine).
	ServedReads, StaleReads uint64
	// Quarantined reports a sticky divergence; Down reports that the
	// follower's own durable store failed and it needs reopening.
	Quarantined bool
	// Down is set by the shipper when delivery hit the follower's
	// durability failure; the follower serves no writes until reopened.
	Down bool
}

// Stats snapshots the follower's counters (Down is filled in by the
// shipper, which owns that observation).
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		ID:            f.id,
		Version:       f.store.Version(),
		Known:         f.known.Load(),
		Lag:           f.Lag(),
		FramesApplied: f.framesApplied.Load(),
		FramesSkipped: f.framesSkipped.Load(),
		FullFrames:    f.fullFrames.Load(),
		ServedReads:   f.servedReads.Load(),
		StaleReads:    f.staleReads.Load(),
		Quarantined:   f.Quarantined() != nil,
	}
}
