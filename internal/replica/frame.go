// Package replica implements WAL shipping: a primary durable store streams
// its acknowledged write-ahead-log records, re-framed with a catalog digest,
// to follower stores that replay them into their own copy-on-write snapshot
// catalogs and serve read-only estimation.
//
// # Frames
//
// The unit of shipping is a frame — the same length-prefixed,
// crc32-checksummed envelope the on-disk WAL uses, wrapped around a kind
// byte, the version number, the SHA-256 digest of the primary's full
// catalog export at that version, and a body:
//
//	u32 payload length | u32 IEEE-CRC-32 of payload | payload
//	payload = u8 kind | u64 version | 32-byte digest | body
//
// A delta frame (kind 1) carries the stats-JSON delta of the tables the
// mutation changed — byte-identical to the primary's WAL record body. A
// full frame (kind 2) carries the complete versioned catalog export, used
// to (re)synchronize a follower that is behind, lost frames, or diverged;
// for a full frame the digest is simply SHA-256(body).
//
// # The digest audit
//
// The digest makes every shipped version self-certifying: after replaying
// a delta the follower exports its own catalog at that version and
// compares digests. A mismatch is divergence — the follower's state is
// provably not the primary's, whatever the cause — and quarantines the
// follower behind a typed governor.ErrDiverged until it is resynchronized
// from a full frame. See DESIGN.md §10 for why this audit, rather than
// trust in the transport, is the replication invariant.
//
// # Failure taxonomy
//
// Decode and replay failures are typed so the shipper can choose the
// recovery: ErrBadFrame (mangled bytes) and ErrFrameGap (missed versions)
// are re-ship requests — NeedsResync reports them — while ErrDiverged
// quarantines and governor.ErrDurability means the follower's own disk
// failed (the follower is effectively down until reopened).
package replica

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/catalog"
)

// Frame kinds.
const (
	// FrameDelta carries the stats-JSON delta of one mutation, exactly as
	// the primary's WAL recorded it.
	FrameDelta byte = 1
	// FrameFull carries the primary's complete versioned catalog export —
	// the (re)synchronization payload.
	FrameFull byte = 2
)

// DigestSize is the size of the catalog digest every frame carries.
const DigestSize = sha256.Size

// frameHeaderSize is the envelope: u32 length + u32 crc.
const frameHeaderSize = 8

// payloadHeaderSize is kind + version + digest.
const payloadHeaderSize = 1 + 8 + DigestSize

// maxFrameSize bounds a frame payload; mirrors the WAL's record bound.
const maxFrameSize = 1 << 28

// ErrBadFrame reports a shipped frame that failed framing or checksum
// verification — truncated, bit-flipped, or otherwise mangled in flight.
// It is a re-ship request: NeedsResync returns true for it.
var ErrBadFrame = errors.New("replica: bad shipped frame")

// ErrFrameGap reports a frame whose version is ahead of the next version
// the follower can apply — frames were lost or reordered in flight. It is
// a re-ship request: NeedsResync returns true for it.
var ErrFrameGap = errors.New("replica: frame gap")

// Frame is one decoded shipping unit.
type Frame struct {
	// Kind is FrameDelta or FrameFull.
	Kind byte
	// Version is the catalog version the frame produces when applied.
	Version uint64
	// Digest is the SHA-256 of the primary's full catalog export at
	// Version (for FrameFull, of Body itself).
	Digest [DigestSize]byte
	// Body is the kind-specific payload.
	Body []byte
}

// EncodeFrame serializes f into the shipped wire format.
func EncodeFrame(f Frame) []byte {
	payload := make([]byte, payloadHeaderSize+len(f.Body))
	payload[0] = f.Kind
	binary.LittleEndian.PutUint64(payload[1:9], f.Version)
	copy(payload[9:9+DigestSize], f.Digest[:])
	copy(payload[payloadHeaderSize:], f.Body)

	out := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHeaderSize:], payload)
	return out
}

// DecodeFrame parses one frame from the head of b. Every way the bytes can
// be wrong — short header, impossible length, short payload, checksum
// mismatch, unknown kind — yields an error matching ErrBadFrame; the
// function never panics on adversarial input.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) < frameHeaderSize {
		return Frame{}, fmt.Errorf("%w: %d bytes, need %d for the header", ErrBadFrame, len(b), frameHeaderSize)
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > maxFrameSize {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrBadFrame, n, maxFrameSize)
	}
	if uint64(len(b)) != frameHeaderSize+uint64(n) {
		return Frame{}, fmt.Errorf("%w: %d payload bytes on the wire, header says %d",
			ErrBadFrame, len(b)-frameHeaderSize, n)
	}
	payload := b[frameHeaderSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Frame{}, fmt.Errorf("%w: checksum mismatch (computed %08x, framed %08x)", ErrBadFrame, got, want)
	}
	if len(payload) < payloadHeaderSize {
		return Frame{}, fmt.Errorf("%w: payload %d bytes, need %d for kind+version+digest",
			ErrBadFrame, len(payload), payloadHeaderSize)
	}
	f := Frame{
		Kind:    payload[0],
		Version: binary.LittleEndian.Uint64(payload[1:9]),
	}
	copy(f.Digest[:], payload[9:9+DigestSize])
	if f.Kind != FrameDelta && f.Kind != FrameFull {
		return Frame{}, fmt.Errorf("%w: unknown frame kind %d", ErrBadFrame, f.Kind)
	}
	// Copy the body out so the frame does not alias a transport buffer.
	f.Body = append([]byte(nil), payload[payloadHeaderSize:]...)
	return f, nil
}

// NeedsResync classifies a shipping or replay failure: true means the
// follower's copy of this frame (or its position in the stream) is lost
// and the shipper should re-ship — in practice, send a full frame. False
// means re-shipping cannot help: the follower diverged (quarantine) or its
// own durable store failed (reopen).
func NeedsResync(err error) bool {
	return errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameGap)
}

// CatalogDigest computes the SHA-256 of cat's full versioned export at
// version — the self-certifying identity every frame carries and every
// audit compares.
func CatalogDigest(cat *catalog.Catalog, version uint64) ([DigestSize]byte, error) {
	h := sha256.New()
	if err := cat.ExportVersionedJSON(h, version); err != nil {
		return [DigestSize]byte{}, err
	}
	var d [DigestSize]byte
	copy(d[:], h.Sum(nil))
	return d, nil
}
