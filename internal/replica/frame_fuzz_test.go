package replica_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/replica"
)

// FuzzDecodeFrame pins the shipped-frame decoder's adversarial contract:
// whatever the wire delivers — truncations, bit flips, reordered or
// garbage bytes — DecodeFrame either returns a frame that re-encodes to
// exactly the input (the format is canonical) or fails with a typed
// ErrBadFrame that NeedsResync classifies as a re-ship request. It never
// panics and never silently accepts a mangled frame, so transport
// corruption can cost at most a resync, never divergence.
func FuzzDecodeFrame(f *testing.F) {
	valid := replica.EncodeFrame(replica.Frame{
		Kind:    replica.FrameDelta,
		Version: 42,
		Digest:  [replica.DigestSize]byte{1, 2, 3, 4},
		Body:    []byte(`{"tables":{"t":{"card":7}}}`),
	})
	full := replica.EncodeFrame(replica.Frame{Kind: replica.FrameFull, Version: 9})
	f.Add(valid)
	f.Add(full)
	f.Add([]byte{})
	f.Add(valid[:4])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte(nil), valid...), valid...)) // reordered/concatenated
	for i := 0; i < len(valid); i += 7 {                   // seeded bit flips
		flipped := append([]byte(nil), valid...)
		flipped[i] ^= 1 << (i % 8)
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := replica.DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, replica.ErrBadFrame) {
				t.Fatalf("decode failure outside the taxonomy: %v", err)
			}
			if !replica.NeedsResync(err) {
				t.Fatalf("decode failure is not a re-ship request: %v", err)
			}
			return
		}
		if fr.Kind != replica.FrameDelta && fr.Kind != replica.FrameFull {
			t.Fatalf("decoder accepted unknown kind %d", fr.Kind)
		}
		if !bytes.Equal(replica.EncodeFrame(fr), data) {
			t.Fatalf("accepted frame is not canonical: re-encoding differs from the wire bytes")
		}
	})
}
