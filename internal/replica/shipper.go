package replica

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/workpool"
)

// PointShip is the faultinject probe-point prefix fired on every frame a
// shipper sends down one follower's link, scoped as PointShip + ":" + id.
// Arm it with a faultinject.LinkFault payload (drop / bit-flip / truncate),
// a Delay (slow link), or a plain Err (transport failure — the frame is
// lost).
const PointShip = "replica.ship"

// linkQueue bounds each follower's in-flight frame queue; overflow drops
// the frame and schedules a resync instead of blocking the primary's
// mutation path.
const linkQueue = 256

// Source yields the primary's current full catalog and version — the
// resync payload. It must be wait-free (the snapshot store's Current is
// one atomic load) because link workers call it while the primary mutates.
type Source func() (*catalog.Catalog, uint64)

// Shipper streams a primary's acknowledged WAL records to attached
// followers. It implements durable.FrameSink: the durable store hands it
// every record the instant the record's fsync succeeds, and the shipper
// fans it out to per-follower bounded queues drained by one worker
// goroutine each, so a slow, faulty, or dead follower never blocks the
// primary's mutation path or its sibling followers.
//
// Delivery is at-least-once and self-healing: lost or mangled frames are
// detected by the follower (checksum, version gap) and answered with a
// full-catalog resync; duplicate frames are skipped idempotently. The only
// failure the shipper will not repair on its own is divergence — a
// follower that failed its digest audit stays quarantined until it is
// explicitly re-attached.
type Shipper struct {
	src Source

	//lockorder:level 44
	mu     sync.Mutex
	links  map[string]*link
	wg     sync.WaitGroup
	closed bool

	framesShipped atomic.Uint64 // delta frames delivered and applied
	resyncs       atomic.Uint64 // full-catalog resyncs completed
	queueDrops    atomic.Uint64 // frames dropped on queue overflow
	linkDrops     atomic.Uint64 // frames lost to injected link faults
}

// link is one follower's delivery state.
type link struct {
	id   string
	fol  *Follower
	ch   chan *item
	kick chan struct{} // resync request; capacity 1
	done chan struct{}

	needResync atomic.Bool
	halted     atomic.Bool // diverged: delivery stops until re-attach
	down       atomic.Bool // follower durable store failed; reopen required
}

// requestResync flags the link and wakes its worker.
func (l *link) requestResync() {
	l.needResync.Store(true)
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// item is one acknowledged mutation fanned out to every link. The wire
// encoding (including the catalog digest) is computed lazily, once,
// off the primary's mutation path, and shared by all links.
type item struct {
	version uint64
	delta   []byte
	next    *catalog.Catalog

	once   sync.Once
	enc    []byte
	encErr error
}

// encoded returns the item's wire frame, computing it on first use.
func (it *item) encoded() ([]byte, error) {
	it.once.Do(func() {
		digest, err := CatalogDigest(it.next, it.version)
		if err != nil {
			it.encErr = fmt.Errorf("%w: digest for shipped version %d: %w", governor.ErrInternal, it.version, err)
			return
		}
		it.enc = EncodeFrame(Frame{Kind: FrameDelta, Version: it.version, Digest: digest, Body: it.delta})
	})
	return it.enc, it.encErr
}

// NewShipper creates a shipper reading resync state from src.
func NewShipper(src Source) *Shipper {
	return &Shipper{src: src, links: map[string]*link{}}
}

// ShipFrame implements durable.FrameSink. It is called under the primary's
// store locks, so it only announces the version (an atomic per follower)
// and enqueues; a full queue drops the frame and schedules a resync rather
// than block.
func (s *Shipper) ShipFrame(version uint64, delta []byte, next *catalog.Catalog) {
	it := &item{version: version, delta: delta, next: next}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for _, l := range s.links {
		// The announce is the reliable control channel: even when the data
		// frame below is lost, the follower knows how far ahead the
		// primary is, so lag — and the staleness contract — stay honest.
		l.fol.Announce(version)
		select {
		case l.ch <- it:
		default:
			s.queueDrops.Add(1)
			l.requestResync()
		}
	}
}

// Attach registers a follower and starts (or restarts) its delivery
// worker. Re-attaching an already-attached follower lifts a divergence
// halt and schedules a resync — the explicit heal path for a quarantined
// replica. Attaching a new follower immediately schedules its initial
// catch-up.
func (s *Shipper) Attach(fol *Follower) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%w: shipper is closed", governor.ErrClosed)
	}
	if old, ok := s.links[fol.ID()]; ok && old.fol == fol {
		old.halted.Store(false)
		old.down.Store(false)
		s.mu.Unlock()
		old.requestResync()
		return nil
	}
	if old, ok := s.links[fol.ID()]; ok {
		close(old.done) // same id, new follower object (reopened): replace
	}
	l := &link{
		id:   fol.ID(),
		fol:  fol,
		ch:   make(chan *item, linkQueue),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	s.links[fol.ID()] = l
	workpool.Go(&s.wg, func(error) {}, func() error {
		s.run(l)
		return nil
	})
	s.mu.Unlock()
	l.requestResync()
	return nil
}

// Detach stops delivering to the named follower and forgets it. The
// follower itself is untouched (it keeps serving at its last version,
// growing stale) — this is the promote path's first step.
func (s *Shipper) Detach(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.links[id]; ok {
		close(l.done)
		delete(s.links, id)
	}
}

// Nudge schedules a resync check on every attached, non-halted link —
// the catch-up prod WaitForReplicas and the chaos harness use after
// faults are disarmed. Links halted by divergence are deliberately left
// alone: quarantine must stay observable until an explicit re-attach.
func (s *Shipper) Nudge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.links {
		if !l.halted.Load() {
			l.requestResync()
		}
	}
}

// Close stops every link worker and waits for them. Followers are left at
// whatever version they reached.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, l := range s.links {
		close(l.done)
	}
	s.links = map[string]*link{}
	s.mu.Unlock()
	s.wg.Wait()
}

// run is one link's delivery loop.
func (s *Shipper) run(l *link) {
	for {
		select {
		case <-l.done:
			return
		case it := <-l.ch:
			s.deliver(l, it)
		case <-l.kick:
			if l.needResync.Swap(false) {
				s.sync(l)
			}
		}
	}
}

// deliver sends one delta frame through the (fault-injectable) link and
// dispatches on the follower's verdict.
func (s *Shipper) deliver(l *link, it *item) {
	if l.halted.Load() || l.down.Load() {
		return
	}
	data, err := it.encoded()
	if err != nil {
		// Could not even encode (primary-side bug); a resync ships the
		// authoritative full catalog instead.
		l.requestResync()
		return
	}
	data, lost := s.transmit(l, data)
	if lost {
		// The frame vanished in flight. The follower will detect the gap
		// from the next frame; the announce already made the lag visible,
		// and Nudge/WaitForReplicas resync stragglers.
		return
	}
	s.dispatch(l, l.fol.Apply(data))
}

// sync ships a full-catalog frame at the primary's current version,
// skipping the send when the follower is already provably identical.
func (s *Shipper) sync(l *link) {
	if l.down.Load() {
		return
	}
	cat, ver := s.src()
	fver, fdigest, ferr := l.fol.CurrentDigest()
	if ferr == nil && fver == ver && l.fol.Quarantined() == nil {
		if pdigest, perr := CatalogDigest(cat, ver); perr == nil && pdigest == fdigest {
			return // already in sync; nothing to ship
		}
	}
	var body catalogExport
	if err := cat.ExportVersionedJSON(&body, ver); err != nil {
		return // primary-side encode failure; the next nudge retries
	}
	fr := Frame{Kind: FrameFull, Version: ver, Digest: body.sum(), Body: body.buf}
	data, lost := s.transmit(l, EncodeFrame(fr))
	if lost {
		// The resync itself was eaten by the link; back off briefly and
		// try again so an unbounded drop fault cannot spin this worker.
		time.Sleep(time.Millisecond)
		l.requestResync()
		return
	}
	err := l.fol.Apply(data)
	if err == nil {
		l.halted.Store(false)
		s.resyncs.Add(1)
		return
	}
	if NeedsResync(err) {
		time.Sleep(time.Millisecond)
		l.requestResync()
		return
	}
	s.dispatch(l, err)
}

// dispatch routes a follower verdict to the link's recovery action.
func (s *Shipper) dispatch(l *link, err error) {
	switch {
	case err == nil:
		s.framesShipped.Add(1)
	case NeedsResync(err):
		s.sync(l)
	case errors.Is(err, governor.ErrDiverged):
		// The follower quarantined itself; stop feeding it. Only an
		// explicit re-attach (the operator acknowledging the divergence)
		// resumes delivery, via a certifying full resync.
		l.halted.Store(true)
	case errors.Is(err, governor.ErrDurability):
		// The follower's own disk failed — it is down until reopened.
		l.down.Store(true)
	default:
		l.requestResync()
	}
}

// transmit passes one encoded frame through the link's fault-injection
// point, returning the (possibly mangled) bytes or lost=true when the
// frame was swallowed.
func (s *Shipper) transmit(l *link, data []byte) (_ []byte, lost bool) {
	f, ok := faultinject.Fire(PointShip + ":" + l.id)
	if !ok {
		return data, false
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if lf, isLink := f.Payload.(faultinject.LinkFault); isLink {
		switch {
		case lf.Drop:
			s.linkDrops.Add(1)
			return nil, true
		case lf.Truncate >= 0 && lf.Truncate < len(data):
			return append([]byte(nil), data[:lf.Truncate]...), false
		case lf.CorruptBit >= 0:
			mangled := append([]byte(nil), data...)
			bit := lf.CorruptBit % (len(mangled) * 8)
			mangled[bit/8] ^= 1 << (bit % 8)
			return mangled, false
		}
		return data, false
	}
	if f.Err != nil {
		s.linkDrops.Add(1)
		return nil, true
	}
	return data, false
}

// catalogExport accumulates an export while hashing it, so full frames
// get body and digest in one pass.
type catalogExport struct {
	buf []byte
}

func (c *catalogExport) Write(p []byte) (int, error) {
	c.buf = append(c.buf, p...)
	return len(p), nil
}

func (c *catalogExport) sum() [DigestSize]byte {
	return sha256.Sum256(c.buf)
}

// Stats is a point-in-time snapshot of the shipper's counters and every
// attached follower's state.
type Stats struct {
	// Followers lists attached followers in sorted-id order.
	Followers []FollowerStats
	// FramesShipped counts delta frames delivered and applied.
	FramesShipped uint64
	// Resyncs counts full-catalog resynchronizations completed.
	Resyncs uint64
	// QueueDrops counts frames dropped because a follower's queue was
	// full; LinkDrops counts frames lost to injected link faults.
	QueueDrops, LinkDrops uint64
}

// Stats snapshots the shipper.
func (s *Shipper) Stats() Stats {
	s.mu.Lock()
	links := make([]*link, 0, len(s.links))
	for _, l := range s.links {
		links = append(links, l)
	}
	s.mu.Unlock()
	st := Stats{
		FramesShipped: s.framesShipped.Load(),
		Resyncs:       s.resyncs.Load(),
		QueueDrops:    s.queueDrops.Load(),
		LinkDrops:     s.linkDrops.Load(),
	}
	for _, l := range links {
		fs := l.fol.Stats()
		fs.Down = l.down.Load()
		st.Followers = append(st.Followers, fs)
	}
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].ID < st.Followers[j].ID })
	return st
}
