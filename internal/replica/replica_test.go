package replica_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/replica"
	"repro/internal/snapshot"
)

// newPrimary assembles the primary half of a replication pair: a durable
// store, a snapshot store publishing through it, and a shipper installed
// as the durable store's frame sink.
func newPrimary(t *testing.T) (*snapshot.Store, *replica.Shipper) {
	t.Helper()
	dur, err := durable.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := snapshot.NewStoreAt(dur.Catalog(), dur.Version())
	store.SetDurability(dur)
	sh := replica.NewShipper(func() (*catalog.Catalog, uint64) {
		snap := store.Current()
		return snap.Catalog(), snap.Version()
	})
	dur.SetSink(sh)
	t.Cleanup(func() {
		sh.Close()
		dur.Close()
	})
	return store, sh
}

// newFollower assembles a follower exactly the way els.OpenReplica does:
// its own scoped durable store backing its own snapshot store.
func newFollower(t *testing.T, id string) *replica.Follower {
	t.Helper()
	dur, err := durable.OpenScoped(t.TempDir(), "replica:"+id+":")
	if err != nil {
		t.Fatal(err)
	}
	store := snapshot.NewStoreAt(dur.Catalog(), dur.Version())
	store.SetDurability(dur)
	t.Cleanup(func() { dur.Close() })
	return replica.NewFollower(id, dur, store)
}

func declare(t *testing.T, store *snapshot.Store, name string, card float64) {
	t.Helper()
	err := store.Mutate(func(cat *catalog.Catalog) error {
		return cat.AddTable(&catalog.TableStats{Name: name, Card: card})
	})
	if err != nil {
		t.Fatalf("declaring %s: %v", name, err)
	}
}

func waitVersion(t *testing.T, fol *replica.Follower, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fol.Version() < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower %s stuck at version %d, want %d", fol.ID(), fol.Version(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// deltaFrame builds a valid delta frame producing cat at version: the body
// is the subset export of the changed tables (the WAL record form) and the
// digest is the full catalog identity at that version.
func deltaFrame(t *testing.T, cat *catalog.Catalog, version uint64, changed []string) []byte {
	t.Helper()
	var body bytes.Buffer
	if err := cat.ExportSubsetJSON(&body, changed); err != nil {
		t.Fatal(err)
	}
	digest, err := replica.CatalogDigest(cat, version)
	if err != nil {
		t.Fatal(err)
	}
	return replica.EncodeFrame(replica.Frame{
		Kind: replica.FrameDelta, Version: version, Digest: digest, Body: body.Bytes(),
	})
}

// fullFrame builds a valid full frame installing cat at version.
func fullFrame(t *testing.T, cat *catalog.Catalog, version uint64) []byte {
	t.Helper()
	var body bytes.Buffer
	if err := cat.ExportVersionedJSON(&body, version); err != nil {
		t.Fatal(err)
	}
	digest, err := replica.CatalogDigest(cat, version)
	if err != nil {
		t.Fatal(err)
	}
	return replica.EncodeFrame(replica.Frame{
		Kind: replica.FrameFull, Version: version, Digest: digest, Body: body.Bytes(),
	})
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []replica.Frame{
		{Kind: replica.FrameDelta, Version: 1, Body: []byte(`{"tables":{}}`)},
		{Kind: replica.FrameFull, Version: 1<<63 + 9, Digest: [replica.DigestSize]byte{1, 2, 3}, Body: nil},
	} {
		got, err := replica.DecodeFrame(replica.EncodeFrame(f))
		if err != nil {
			t.Fatalf("round trip of %+v: %v", f, err)
		}
		if got.Kind != f.Kind || got.Version != f.Version || got.Digest != f.Digest ||
			!bytes.Equal(got.Body, f.Body) {
			t.Errorf("round trip mangled frame: sent %+v, got %+v", f, got)
		}
	}
}

func TestDecodeFrameMangled(t *testing.T) {
	valid := replica.EncodeFrame(replica.Frame{
		Kind: replica.FrameDelta, Version: 42, Body: []byte("payload-bytes"),
	})
	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:5],
		"truncated":    valid[:len(valid)-3],
		"trailing":     append(append([]byte(nil), valid...), 0xff),
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x40
	cases["bit flip"] = flipped
	huge := append([]byte(nil), valid...)
	huge[3] = 0xff // length field now claims > maxFrameSize
	cases["huge length"] = huge
	badKind := replica.EncodeFrame(replica.Frame{Kind: 9, Version: 1})
	cases["unknown kind"] = badKind

	for name, data := range cases {
		_, err := replica.DecodeFrame(data)
		if !errors.Is(err, replica.ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", name, err)
		}
		if !replica.NeedsResync(err) {
			t.Errorf("%s: decode failure must be a re-ship request", name)
		}
	}
}

// TestShipperEndToEnd streams real mutations through the full path —
// snapshot store, durable WAL, frame sink, link worker, follower replay —
// and demands the follower end digest-identical to the primary.
func TestShipperEndToEnd(t *testing.T) {
	store, sh := newPrimary(t)
	fol := newFollower(t, "r0")
	if err := sh.Attach(fol); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		declare(t, store, "t", float64(i))
	}
	waitVersion(t, fol, store.Version())

	snap := store.Current()
	want, err := replica.CatalogDigest(snap.Catalog(), snap.Version())
	if err != nil {
		t.Fatal(err)
	}
	ver, got, err := fol.CurrentDigest()
	if err != nil {
		t.Fatal(err)
	}
	if ver != snap.Version() || got != want {
		t.Errorf("follower at version %d digest %x, primary at %d digest %x",
			ver, got, snap.Version(), want)
	}
	if st := sh.Stats(); st.FramesShipped == 0 {
		t.Error("no delta frame was shipped")
	}
	if fol.Lag() != 0 {
		t.Errorf("caught-up follower reports lag %d", fol.Lag())
	}
}

// TestShipperResyncHealsDrops drops frames on the wire and demands the
// gap-detection → full-resync path still converge the follower.
func TestShipperResyncHealsDrops(t *testing.T) {
	store, sh := newPrimary(t)
	fol := newFollower(t, "r0")
	if err := sh.Attach(fol); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	faultinject.Enable(replica.PointShip+":r0", faultinject.Fault{
		Times:   2,
		Payload: faultinject.LinkFault{Drop: true, CorruptBit: -1, Truncate: -1},
	})
	for i := 1; i <= 8; i++ {
		declare(t, store, "t", float64(i))
	}
	waitVersion(t, fol, store.Version())
	st := sh.Stats()
	if st.LinkDrops == 0 {
		t.Error("the armed link fault never dropped a frame")
	}
	if st.Resyncs == 0 {
		t.Error("dropped frames healed without a resync — gap detection is broken")
	}
	_, got, err := fol.CurrentDigest()
	if err != nil {
		t.Fatal(err)
	}
	snap := store.Current()
	want, _ := replica.CatalogDigest(snap.Catalog(), snap.Version())
	if got != want {
		t.Error("follower digest differs from primary after drop-and-resync")
	}
}

func TestFollowerDuplicateAndGap(t *testing.T) {
	fol := newFollower(t, "r0") // a fresh store starts at version 1 (the empty catalog)
	cat := catalog.New()
	cat.MustAddTable(&catalog.TableStats{Name: "t", Card: 1})

	v2 := deltaFrame(t, cat, 2, []string{"t"})
	if err := fol.Apply(v2); err != nil {
		t.Fatalf("applying version 2: %v", err)
	}
	if err := fol.Apply(v2); err != nil {
		t.Fatalf("duplicate of an applied version must be idempotent, got %v", err)
	}
	if st := fol.Stats(); st.FramesSkipped != 1 || st.FramesApplied != 1 {
		t.Errorf("applied %d, skipped %d; want 1 and 1", st.FramesApplied, st.FramesSkipped)
	}

	gap := deltaFrame(t, cat, 4, []string{"t"})
	err := fol.Apply(gap)
	if !errors.Is(err, replica.ErrFrameGap) {
		t.Fatalf("version 4 on a follower at 2: got %v, want ErrFrameGap", err)
	}
	if !replica.NeedsResync(err) {
		t.Error("a frame gap must be a re-ship request")
	}
	if fol.Known() != 4 {
		t.Errorf("a data frame implies its version was acked; Known() = %d, want 4", fol.Known())
	}
}

// TestFollowerDivergenceQuarantine replays a delta whose shipped digest
// does not match what the follower's replay produced: the follower must
// quarantine itself behind ErrDiverged, stay quarantined for replay and
// reads, and be healed only by a certifying full frame.
func TestFollowerDivergenceQuarantine(t *testing.T) {
	fol := newFollower(t, "r0")
	cat := catalog.New()
	cat.MustAddTable(&catalog.TableStats{Name: "t", Card: 1})

	var body bytes.Buffer
	if err := cat.ExportSubsetJSON(&body, []string{"t"}); err != nil {
		t.Fatal(err)
	}
	wrong := catalog.New()
	wrong.MustAddTable(&catalog.TableStats{Name: "t", Card: 999})
	badDigest, _ := replica.CatalogDigest(wrong, 2)
	frame := replica.EncodeFrame(replica.Frame{
		Kind: replica.FrameDelta, Version: 2, Digest: badDigest, Body: body.Bytes(),
	})

	err := fol.Apply(frame)
	if !errors.Is(err, governor.ErrDiverged) {
		t.Fatalf("digest mismatch: got %v, want ErrDiverged", err)
	}
	var dv *governor.DivergenceError
	if !errors.As(err, &dv) || dv.ReplicaID != "r0" || dv.Version != 2 {
		t.Fatalf("divergence carries no usable DivergenceError: %v", err)
	}
	if replica.NeedsResync(err) {
		t.Error("divergence must not be treated as a plain re-ship request")
	}
	if q := fol.Quarantined(); !errors.Is(q, governor.ErrDiverged) {
		t.Fatalf("quarantine is not sticky: %v", q)
	}
	if _, err := fol.ReadCheck(0); !errors.Is(err, governor.ErrDiverged) {
		t.Errorf("quarantined follower admitted a read: %v", err)
	}
	good := deltaFrame(t, cat, 3, []string{"t"})
	if err := fol.Apply(good); !errors.Is(err, governor.ErrDiverged) {
		t.Errorf("quarantined follower replayed a delta: %v", err)
	}

	// The heal: a full frame re-certifies the follower by construction.
	if err := fol.Apply(fullFrame(t, cat, 3)); err != nil {
		t.Fatalf("full-frame heal failed: %v", err)
	}
	if fol.Quarantined() != nil || fol.Version() != 3 {
		t.Errorf("heal left quarantine=%v version=%d", fol.Quarantined(), fol.Version())
	}
	if _, err := fol.ReadCheck(0); err != nil {
		t.Errorf("healed follower rejected a read: %v", err)
	}
}

func TestFollowerStaleness(t *testing.T) {
	fol := newFollower(t, "r0") // starts at version 1
	fol.Announce(6)
	if got := fol.Lag(); got != 5 {
		t.Fatalf("lag = %d, want 5", got)
	}
	_, err := fol.ReadCheck(3)
	var sre *governor.StaleReplicaError
	if !errors.As(err, &sre) || !errors.Is(err, governor.ErrStaleReplica) {
		t.Fatalf("lag 5 under bound 3: got %v, want StaleReplicaError", err)
	}
	if sre.Lag != 5 || sre.MaxLag != 3 || sre.ReplicaID != "r0" {
		t.Errorf("rejection details wrong: %+v", sre)
	}
	if lag, err := fol.ReadCheck(0); err != nil || lag != 5 {
		t.Errorf("maxLag 0 must be unbounded: lag=%d err=%v", lag, err)
	}
	if lag, err := fol.ReadCheck(5); err != nil || lag != 5 {
		t.Errorf("lag equal to the bound must be admitted: lag=%d err=%v", lag, err)
	}
	if st := fol.Stats(); st.StaleReads != 1 || st.ServedReads != 2 {
		t.Errorf("counters: %d stale, %d served; want 1 and 2", st.StaleReads, st.ServedReads)
	}
}

func TestFullFrameValidation(t *testing.T) {
	fol := newFollower(t, "r0")
	cat := catalog.New()
	cat.MustAddTable(&catalog.TableStats{Name: "t", Card: 1})

	// Body/digest mismatch.
	var body bytes.Buffer
	if err := cat.ExportVersionedJSON(&body, 2); err != nil {
		t.Fatal(err)
	}
	frame := replica.EncodeFrame(replica.Frame{
		Kind: replica.FrameFull, Version: 2, Digest: [replica.DigestSize]byte{0xde, 0xad}, Body: body.Bytes(),
	})
	if err := fol.Apply(frame); !errors.Is(err, replica.ErrBadFrame) {
		t.Errorf("full frame failing its digest: got %v, want ErrBadFrame", err)
	}

	// Framed version disagrees with the catalog_version inside the body
	// (the digest itself is valid — full-frame digests cover the body).
	mismatch := replica.EncodeFrame(replica.Frame{
		Kind: replica.FrameFull, Version: 7, Digest: sha256.Sum256(body.Bytes()), Body: body.Bytes(),
	})
	if err := fol.Apply(mismatch); !errors.Is(err, replica.ErrBadFrame) {
		t.Errorf("full frame with a lying version: got %v, want ErrBadFrame", err)
	}
	if fol.Version() != 1 {
		t.Errorf("rejected full frames must publish nothing; follower at %d, want the initial 1", fol.Version())
	}
}
