package governorcharge

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestGovernorCharge(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/executor", "other")
}
