// Package governorcharge enforces budget accounting in internal/executor:
// any loop that produces result rows (contains an AppendRow call) must
// also charge the governor inside the loop, so no execution path emits
// unbounded output between budget checks. Charging is recognized through
// the executor's own idioms — the visit/emit/probe helpers — and the raw
// governor surface (TickTuples, TickRows, TickPlans, Charge, Err,
// CheckCtx). Loops that assemble output wholesale (storage.AppendTable of
// already-charged chunks) are deliberately out of scope, as are _test.go
// files and every package other than internal/executor.
package governorcharge

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer flags row-producing executor loops with no governor charge.
var Analyzer = &analysis.Analyzer{
	Name: "governorcharge",
	Doc:  "row-producing loops in internal/executor must charge the governor (TickRows/TickTuples/CheckCtx or the visit/emit/probe helpers)",
	Run:  run,
}

// charges are call names that account against the budget, either directly
// on the governor or via the executor helpers that wrap it.
var charges = map[string]bool{
	"TickTuples": true,
	"TickRows":   true,
	"TickPlans":  true,
	"Charge":     true,
	"Err":        true,
	"CheckCtx":   true,
	"visit":      true,
	"emit":       true,
	"probe":      true,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), "internal/executor") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var bodyNode *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				bodyNode = loop.Body
			case *ast.RangeStmt:
				bodyNode = loop.Body
			default:
				return true
			}
			if producesRows(bodyNode) && !chargesGovernor(bodyNode) {
				pass.Reportf(n.Pos(), "row-producing loop lacks a governor charge; call TickRows/TickTuples/CheckCtx (or the visit/emit/probe helpers) inside the loop so every AppendRow path is budget-accounted")
			}
			return true
		})
	}
	return nil, nil
}

// producesRows reports whether the loop body contains an AppendRow call.
func producesRows(body *ast.BlockStmt) bool {
	return containsCall(body, func(name string) bool { return name == "AppendRow" })
}

// chargesGovernor reports whether the loop body contains a charging call.
func chargesGovernor(body *ast.BlockStmt) bool {
	return containsCall(body, func(name string) bool { return charges[name] })
}

func containsCall(body *ast.BlockStmt, match func(string) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if match(fun.Sel.Name) {
				found = true
			}
		case *ast.Ident:
			if match(fun.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}
