// Package other shows the charge contract binds only internal/executor;
// other packages may batch-append without a governor.
package other

type table struct{}

func (t *table) AppendRow(vals ...int) error { return nil }

func fill(out *table, n int) error {
	for i := 0; i < n; i++ {
		if err := out.AppendRow(i); err != nil {
			return err
		}
	}
	return nil
}
