// Package executor stands in for the real executor: the analyzer matches
// by call name, so local stubs exercise the same decisions.
package executor

type table struct{}

func (t *table) AppendRow(vals ...int) error { return nil }

type gov struct{}

func (g *gov) TickTuples(n int64) error { return nil }
func (g *gov) TickRows(n int64) error   { return nil }

type executor struct{ gov *gov }

func (e *executor) emit(out *table, row []int) error {
	if err := e.gov.TickRows(1); err != nil {
		return err
	}
	return out.AppendRow(row...)
}

func uncharged(out *table, n int) error {
	for i := 0; i < n; i++ { // want `lacks a governor charge`
		if err := out.AppendRow(i); err != nil {
			return err
		}
	}
	return nil
}

func unchargedRange(out *table, rows [][]int) error {
	for _, r := range rows { // want `lacks a governor charge`
		if err := out.AppendRow(r...); err != nil {
			return err
		}
	}
	return nil
}

func chargedDirect(e *executor, out *table, n int) error {
	for i := 0; i < n; i++ {
		if err := e.gov.TickRows(1); err != nil {
			return err
		}
		if err := out.AppendRow(i); err != nil {
			return err
		}
	}
	return nil
}

func chargedViaEmit(e *executor, out *table, rows [][]int) error {
	for _, r := range rows {
		if err := e.emit(out, r); err != nil {
			return err
		}
	}
	return nil
}

// rowless loops have nothing to account.
func rowless(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}
