package analyzers

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestRegistry pins the driver-facing sanity properties of the shipped
// suite: nine analyzers, unique non-empty names, non-empty docs, and a
// schedulable (acyclic, nil-free) Requires graph.
func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("registry has %d analyzers, want 9", len(all))
	}
	names := make(map[string]bool)
	for _, a := range all {
		if a == nil {
			t.Fatal("nil analyzer in registry")
		}
		if a.Name == "" {
			t.Error("analyzer with empty Name")
		}
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}

	schedule, err := analysis.Schedule(all)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	// The schedule is the Requires closure: at least the registry itself,
	// with every analyzer after its prerequisites.
	if len(schedule) < len(all) {
		t.Fatalf("schedule has %d analyzers, want >= %d", len(schedule), len(all))
	}
	index := make(map[*analysis.Analyzer]int, len(schedule))
	for i, a := range schedule {
		index[a] = i
	}
	for _, a := range schedule {
		for _, req := range a.Requires {
			ri, ok := index[req]
			if !ok {
				t.Errorf("%s requires %s, which is not in the schedule", a.Name, req.Name)
				continue
			}
			if ri >= index[a] {
				t.Errorf("%s scheduled before its requirement %s", a.Name, req.Name)
			}
		}
	}
}

// TestFactTypesRoundTrip checks every declared fact type survives the gob
// wire format the vettool protocol ships facts in.
func TestFactTypesRoundTrip(t *testing.T) {
	for _, a := range All() {
		for _, f := range a.FactTypes {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(f); err != nil {
				t.Errorf("%s: fact %T does not gob-encode: %v", a.Name, f, err)
			}
		}
	}
}
