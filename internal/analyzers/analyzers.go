// Package analyzers registers the elslint invariant-checker suite. Each
// analyzer mechanically enforces one cross-cutting contract the serving
// pipeline's correctness rests on; see the per-analyzer package docs and
// DESIGN.md's "Mechanically enforced invariants" section for the contract
// histories.
package analyzers

import (
	"repro/internal/analysis"
	"repro/internal/analyzers/atomicwrite"
	"repro/internal/analyzers/ctxflow"
	"repro/internal/analyzers/errtaxonomy"
	"repro/internal/analyzers/governorcharge"
	"repro/internal/analyzers/nakedgoroutine"
	"repro/internal/analyzers/snapshotmut"
)

// All returns the elslint analyzers in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errtaxonomy.Analyzer,
		nakedgoroutine.Analyzer,
		ctxflow.Analyzer,
		snapshotmut.Analyzer,
		governorcharge.Analyzer,
		atomicwrite.Analyzer,
	}
}
