// Package analyzers registers the elslint invariant-checker suite. Each
// analyzer mechanically enforces one cross-cutting contract the serving
// pipeline's correctness rests on; see the per-analyzer package docs and
// DESIGN.md's "Mechanically enforced invariants" section for the contract
// histories.
package analyzers

import (
	"repro/internal/analysis"
	"repro/internal/analyzers/atomicwrite"
	"repro/internal/analyzers/ctxflow"
	"repro/internal/analyzers/errtaxonomy"
	"repro/internal/analyzers/governorcharge"
	"repro/internal/analyzers/lockorder"
	"repro/internal/analyzers/locksafe"
	"repro/internal/analyzers/nakedgoroutine"
	"repro/internal/analyzers/snapshotmut"
	"repro/internal/analyzers/wirecover"
)

// All returns the elslint analyzers in reporting order. The list is the
// root set handed to analysis.Schedule — prerequisites (wirecover
// requires errtaxonomy) are deduplicated and ordered by the driver.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errtaxonomy.Analyzer,
		nakedgoroutine.Analyzer,
		ctxflow.Analyzer,
		snapshotmut.Analyzer,
		governorcharge.Analyzer,
		atomicwrite.Analyzer,
		lockorder.Analyzer,
		locksafe.Analyzer,
		wirecover.Analyzer,
	}
}
