package els

import "fmt"

// Regression fixture modeled on the PR 3 breaker-probe leak: the serve
// path shed a half-open probe candidate and reported the shed with an
// ad-hoc error, so callers classifying by sentinel saw an unclassifiable
// failure. The taxonomy-correct form wraps ErrOverloaded.

var ErrOverloaded = fmt.Errorf("els: overloaded")

type breaker struct{ halfOpen bool }

func (b *breaker) shedProbeAdHoc() error {
	if b.halfOpen {
		return fmt.Errorf("els: breaker probe shed before slot acquire") // want `wraps no taxonomy sentinel`
	}
	return nil
}

func (b *breaker) shedProbeClassified() error {
	if b.halfOpen {
		return fmt.Errorf("%w: breaker probe shed before slot acquire", ErrOverloaded)
	}
	return nil
}
