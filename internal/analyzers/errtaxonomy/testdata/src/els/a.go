package els

import (
	"errors"
	"fmt"
)

// Package-level sentinel definitions are the one sanctioned errors.New
// site: this is where the taxonomy itself is born.
var ErrParse = errors.New("els: parse error")

func adHoc() error {
	return errors.New("els: boom") // want `wraps no taxonomy sentinel`
}

func unwrapped(name string) error {
	return fmt.Errorf("els: unknown table %q", name) // want `wraps no taxonomy sentinel`
}

func wrapped(name string) error {
	return fmt.Errorf("%w: unknown table %q", ErrParse, name)
}

func rewrapped(err error) error {
	// Re-wrapping an error that already carries its classification keeps
	// the chain intact; provenance is checked where the error was built.
	return fmt.Errorf("els: loading stats: %w", err)
}

func dynamicFormat(format string) error {
	// A non-literal format cannot be checked statically and is left alone.
	return fmt.Errorf(format)
}
