package els

import "fmt"

// Replication fixture: staleness rejections and divergence quarantines
// are part of the public taxonomy — a replica read refused for lag must
// classify as ErrStaleReplica and a quarantined follower as ErrDiverged,
// or callers cannot tell "retry / fail over to the primary" apart from
// "this follower's state is provably wrong".

var (
	ErrStaleReplica = fmt.Errorf("els: replica too stale")
	ErrDiverged     = fmt.Errorf("els: replica diverged from primary")
)

type follower struct {
	lag, maxLag uint64
	quarantined bool
}

func (f *follower) readCheckAdHoc() error {
	if f.lag > f.maxLag {
		return fmt.Errorf("els: replica is %d versions behind", f.lag) // want `wraps no taxonomy sentinel`
	}
	if f.quarantined {
		return fmt.Errorf("els: replica catalog does not match primary digest") // want `wraps no taxonomy sentinel`
	}
	return nil
}

func (f *follower) readCheckClassified() error {
	if f.lag > f.maxLag {
		return fmt.Errorf("%w: replica is %d versions behind (bound %d)", ErrStaleReplica, f.lag, f.maxLag)
	}
	if f.quarantined {
		return fmt.Errorf("%w: replica catalog does not match primary digest", ErrDiverged)
	}
	return nil
}
