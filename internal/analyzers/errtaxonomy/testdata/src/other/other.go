// Package other shows the taxonomy contract binds only the public els
// package: internal packages may build plain errors for the boundary to
// classify.
package other

import "errors"

func plain() error {
	return errors.New("other: plain error is fine here")
}
