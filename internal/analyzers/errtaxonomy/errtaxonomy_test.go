package errtaxonomy

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, Analyzer, "els", "other")
}
