// Package errtaxonomy enforces the public error taxonomy of the root els
// package: every error constructed inside an els function must wrap one of
// the taxonomy sentinels (ErrParse, ErrBadStats, ErrCanceled,
// ErrBudgetExceeded, ErrOverloaded, ErrDurability, ErrStaleReplica,
// ErrDiverged, ErrBadWire, ErrTenant, ErrInternal) so callers can always
// classify failures with errors.Is. Concretely it flags errors.New calls
// and fmt.Errorf calls whose format string has no %w verb; package-level
// var declarations are exempt (that is where sentinels themselves are
// born), as are _test.go files.
package errtaxonomy

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags taxonomy-free error construction in package els.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "errors escaping the els API must wrap a taxonomy sentinel (use fmt.Errorf with %w)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// The taxonomy is a contract of the public els package only; internal
	// packages define the sentinels and may construct plain errors that the
	// boundary re-wraps.
	if pass.Pkg.Name() != "els" {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := importedPkg(pass, sel.X)
		switch {
		case pkg == "errors" && sel.Sel.Name == "New":
			pass.Reportf(call.Pos(), "errors.New in package els wraps no taxonomy sentinel; use fmt.Errorf(\"...: %%w\", ErrParse/ErrBadStats/ErrCanceled/ErrBudgetExceeded/ErrOverloaded/ErrDurability/ErrStaleReplica/ErrDiverged/ErrBadWire/ErrTenant/ErrInternal)")
		case pkg == "fmt" && sel.Sel.Name == "Errorf":
			if lit := formatLiteral(call); lit != "" && !strings.Contains(lit, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf in package els wraps no taxonomy sentinel; chain one with %%w (ErrParse/ErrBadStats/ErrCanceled/ErrBudgetExceeded/ErrOverloaded/ErrDurability/ErrStaleReplica/ErrDiverged/ErrBadWire/ErrTenant/ErrInternal)")
			}
		}
		return true
	})
}

// importedPkg returns the import path when e names an imported package.
func importedPkg(pass *analysis.Pass, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// formatLiteral returns the call's constant format string, or "" when the
// format is not a string literal (such calls cannot be checked statically
// and are left alone).
func formatLiteral(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}
