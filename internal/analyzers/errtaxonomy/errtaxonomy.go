// Package errtaxonomy enforces the public error taxonomy of the root els
// package: every error constructed inside an els function must wrap one of
// the taxonomy sentinels (ErrParse, ErrBadStats, ErrCanceled,
// ErrBudgetExceeded, ErrOverloaded, ErrDurability, ErrStaleReplica,
// ErrDiverged, ErrBadWire, ErrTenant, ErrInternal) so callers can always
// classify failures with errors.Is. Concretely it flags errors.New calls
// and fmt.Errorf calls whose format string has no %w verb; package-level
// var declarations are exempt (that is where sentinels themselves are
// born), as are _test.go files.
//
// Beyond the diagnostic, errtaxonomy is the source of truth for what the
// taxonomy IS: every package declaring sentinels (`var ErrX =
// errors.New(...)`) or re-exporting them (`var ErrX = pkg.ErrY`) exports
// a SentinelSetFact, each sentinel resolved to its canonical identity
// (the declaring package's, through any chain of aliases — the root els
// package re-exports internal/governor's sentinels, and both spellings
// must mean the same node). The wirecover analyzer consumes these facts
// to prove the wire code table and the retryable classifications stay
// complete and consistent.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags taxonomy-free error construction in package els and
// exports each package's sentinel set as a fact.
var Analyzer = &analysis.Analyzer{
	Name:      "errtaxonomy",
	Doc:       "errors escaping the els API must wrap a taxonomy sentinel (use fmt.Errorf with %w); sentinel declarations are exported as facts",
	FactTypes: []analysis.Fact{new(SentinelSetFact)},
	Run:       run,
}

// SentinelSetFact lists the taxonomy sentinels a package declares or
// re-exports.
type SentinelSetFact struct {
	// Sentinels is sorted by Name.
	Sentinels []Sentinel
}

// AFact marks SentinelSetFact as a fact type.
func (*SentinelSetFact) AFact() {}

// Sentinel is one taxonomy sentinel visible in a package.
type Sentinel struct {
	// Name is the sentinel's name in this package (ErrOverloaded).
	Name string
	// Canon is the canonical identity, pkgpath.Name of the original
	// errors.New declaration — identical for an alias and its origin.
	Canon string
}

func run(pass *analysis.Pass) (any, error) {
	if sents := collectSentinels(pass); len(sents) > 0 {
		pass.ExportPackageFact(&SentinelSetFact{Sentinels: sents})
	}
	// The taxonomy is a contract of the public els package only; internal
	// packages define the sentinels and may construct plain errors that the
	// boundary re-wraps.
	if pass.Pkg.Name() != "els" {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil, nil
}

// collectSentinels finds every package-level `var ErrX = errors.New(...)`
// (a new canonical sentinel) and `var ErrX = pkg.ErrY` where pkg.ErrY is a
// sentinel by pkg's own SentinelSetFact (an alias inheriting the canonical
// identity).
func collectSentinels(pass *analysis.Pass) []Sentinel {
	var out []Sentinel
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Err") {
						continue
					}
					if obj := pass.TypesInfo.Defs[name]; obj == nil || obj.Parent() != pass.Pkg.Scope() {
						continue
					}
					if canon, ok := sentinelValue(pass, vs.Values[i]); ok {
						if canon == "" {
							canon = pass.Pkg.Path() + "." + name.Name
						}
						out = append(out, Sentinel{Name: name.Name, Canon: canon})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sentinelValue classifies a sentinel initializer. It returns ok for
// errors.New calls (canon "" — the declaration is the canonical identity)
// and for references to another package's exported sentinel (canon set to
// that sentinel's canonical identity).
func sentinelValue(pass *analysis.Pass, v ast.Expr) (canon string, ok bool) {
	switch e := v.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok &&
			importedPkg(pass, sel.X) == "errors" && sel.Sel.Name == "New" {
			return "", true
		}
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		if !ok || obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
			return "", false
		}
		var fact SentinelSetFact
		if !pass.ImportPackageFact(obj.Pkg(), &fact) {
			return "", false
		}
		for _, s := range fact.Sentinels {
			if s.Name == obj.Name() {
				return s.Canon, true
			}
		}
	}
	return "", false
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := importedPkg(pass, sel.X)
		switch {
		case pkg == "errors" && sel.Sel.Name == "New":
			pass.Reportf(call.Pos(), "errors.New in package els wraps no taxonomy sentinel; use fmt.Errorf(\"...: %%w\", ErrParse/ErrBadStats/ErrCanceled/ErrBudgetExceeded/ErrOverloaded/ErrDurability/ErrStaleReplica/ErrDiverged/ErrBadWire/ErrTenant/ErrMemory/ErrInternal)")
		case pkg == "fmt" && sel.Sel.Name == "Errorf":
			if lit := formatLiteral(call); lit != "" && !strings.Contains(lit, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf in package els wraps no taxonomy sentinel; chain one with %%w (ErrParse/ErrBadStats/ErrCanceled/ErrBudgetExceeded/ErrOverloaded/ErrDurability/ErrStaleReplica/ErrDiverged/ErrBadWire/ErrTenant/ErrMemory/ErrInternal)")
			}
		}
		return true
	})
}

// importedPkg returns the import path when e names an imported package.
func importedPkg(pass *analysis.Pass, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// formatLiteral returns the call's constant format string, or "" when the
// format is not a string literal (such calls cannot be checked statically
// and are left alone).
func formatLiteral(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}
