package snapshotmut

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestSnapshotMut(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/feature", "internal/snapshot")
}
