// Package feature exercises the copy-on-write contract from outside the
// snapshot builder.
package feature

import (
	"repro/internal/catalog"
	"repro/internal/snapshot"
)

func mutatePublished(store *snapshot.Store) {
	cat := store.Current().Catalog()
	cat.MustAddTable(&catalog.TableStats{Name: "r", Card: 1}) // want `copy-on-write`
	cat.Table("r").Card = 9                                   // want `copy-on-write`
	delete(cat.Table("r").Columns, "a")                       // want `copy-on-write`
	store.Current().Catalog().SetData("r", nil)               // want `copy-on-write`
}

func mutateViaSnapshot(snap *snapshot.Snapshot) {
	snap.Catalog().Table("r").Column("a").Distinct = 3 // want `copy-on-write`
}

// cloneThenMutate is the sanctioned idiom outside the builder: Clone
// detaches, and writes to the detached copy are free.
func cloneThenMutate(store *snapshot.Store) *catalog.Catalog {
	clone := store.Current().Catalog().Clone()
	clone.MustAddTable(&catalog.TableStats{Name: "r", Card: 1})
	clone.Table("r").Card = 9
	return clone
}

// builderCallback mirrors Store.Mutate's contract: the callback owns the
// clone it is handed, so parameter mutation is legitimate (the analyzer
// never treats parameters as published).
func builderCallback(cat *catalog.Catalog) error {
	cat.Table("r").Card = 12
	return cat.AddTable(&catalog.TableStats{Name: "s", Card: 2})
}

// readOnly traversal of a published snapshot is of course fine.
func readOnly(store *snapshot.Store) float64 {
	ts := store.Current().Catalog().Table("r")
	if ts == nil {
		return 0
	}
	return ts.Card
}
