// Package snapshot stands in for the real builder: the package that owns
// publication writes to its own catalogs by definition, so the analyzer
// skips it entirely.
package snapshot

type Snapshot struct{ m map[string]int }

func (s *Snapshot) Catalog() map[string]int { return s.m }

func (s *Snapshot) set(k string, v int) {
	s.Catalog()[k] = v
}
