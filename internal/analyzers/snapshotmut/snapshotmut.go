// Package snapshotmut enforces the copy-on-write contract of
// internal/snapshot: a catalog obtained from a published snapshot
// (snapshot.Store.Current, snapshot.Snapshot.Catalog) is immutable.
// Mutations must go through the snapshot builder (Store.Mutate clones the
// catalog and publishes the clone atomically) or operate on an explicit
// Clone().
//
// The analyzer is intra-procedural: it tracks values chaining from
// Current()/Catalog() calls — through accessor methods (Table, Column,
// Data, Index) and local variable assignments — and flags
//
//   - field/element writes rooted at such a value (cat.Table("r").Card = 9),
//   - calls to catalog mutator methods on such a value (AddTable, SetData,
//     BuildIndex, Analyze, AnalyzeSample, ImportJSON, MustAddTable),
//   - delete() on a map reachable from such a value.
//
// Clone() detaches: writes behind a Clone() call are the sanctioned
// copy-then-mutate idiom. Function parameters are never treated as
// published (the Mutate callback legitimately mutates the clone it is
// handed). internal/snapshot itself and _test.go files are exempt.
package snapshotmut

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags writes to catalog state reachable from a published
// snapshot.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotmut",
	Doc:  "published snapshot catalogs are copy-on-write; mutate through Store.Mutate or an explicit Clone",
	Run:  run,
}

// mutators are the catalog methods that write; calling one on a published
// catalog defeats copy-on-write.
var mutators = map[string]bool{
	"AddTable":      true,
	"MustAddTable":  true,
	"SetData":       true,
	"BuildIndex":    true,
	"Analyze":       true,
	"AnalyzeSample": true,
	"ImportJSON":    true,
}

// accessors traverse without detaching: their result is still reachable
// from the published snapshot.
var accessors = map[string]bool{
	"Current": true,
	"Catalog": true,
	"Table":   true,
	"Column":  true,
	"Data":    true,
	"Index":   true,
}

func run(pass *analysis.Pass) (any, error) {
	if analysis.PathHasSuffix(pass.Pkg.Path(), "internal/snapshot") {
		return nil, nil // the builder itself
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, published: make(map[types.Object]bool)}
	// Grow the published-variable set to a fixpoint, then scan for writes.
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if !c.publishedRoot(rhs) {
					continue
				}
				if id, isID := st.Lhs[i].(*ast.Ident); isID {
					if obj := c.defOrUse(id); obj != nil && !c.published[obj] {
						c.published[obj] = true
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				c.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(st.X)
		case *ast.CallExpr:
			c.checkCall(st)
		}
		return true
	})
}

type checker struct {
	pass      *analysis.Pass
	published map[types.Object]bool
}

// checkWrite flags an assignment target rooted at a published value.
// Plain identifiers are rebindings, not writes through the snapshot.
func (c *checker) checkWrite(lhs ast.Expr) {
	switch lhs.(type) {
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		if c.publishedRoot(lhs) {
			c.pass.Reportf(lhs.Pos(), "write to catalog state reachable from a published snapshot; published catalogs are copy-on-write — mutate via snapshot.Store.Mutate or an explicit Clone()")
		}
	}
}

// checkCall flags mutator-method calls on published receivers and
// delete() on published maps.
func (c *checker) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if c.publishedRoot(call.Args[0]) {
			c.pass.Reportf(call.Pos(), "delete from a map reachable from a published snapshot; published catalogs are copy-on-write — mutate via snapshot.Store.Mutate or an explicit Clone()")
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !mutators[sel.Sel.Name] {
		return
	}
	if c.publishedRoot(sel.X) {
		c.pass.Reportf(call.Pos(), "%s on a catalog obtained from a published snapshot; published catalogs are copy-on-write — mutate via snapshot.Store.Mutate or an explicit Clone()", sel.Sel.Name)
	}
}

// publishedRoot reports whether e chains back to a published snapshot
// value: a Current()/Catalog() call, a published local variable, or an
// accessor chain over either. A Clone() call anywhere in the chain
// detaches it.
func (c *checker) publishedRoot(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			return obj != nil && c.published[obj]
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			switch {
			case sel.Sel.Name == "Clone":
				return false // detached copy
			case c.isSnapshotOrigin(sel):
				return true
			case accessors[sel.Sel.Name]:
				e = sel.X // still reachable; keep chasing the receiver
			default:
				return false // unknown call result: provenance unprovable
			}
		default:
			return false
		}
	}
}

// isSnapshotOrigin reports whether sel names Store.Current or
// Snapshot.Catalog from internal/snapshot.
func (c *checker) isSnapshotOrigin(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Current" && sel.Sel.Name != "Catalog" {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !analysis.PathHasSuffix(obj.Pkg().Path(), "internal/snapshot") {
		return false
	}
	name := obj.Name()
	return (name == "Store" && sel.Sel.Name == "Current") ||
		(name == "Snapshot" && sel.Sel.Name == "Catalog")
}

// defOrUse resolves an identifier whether it defines or uses its object.
func (c *checker) defOrUse(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}
