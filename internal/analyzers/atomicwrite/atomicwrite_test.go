package atomicwrite

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/feature", "internal/durable")
}
