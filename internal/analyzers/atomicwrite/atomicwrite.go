// Package atomicwrite enforces the crash-atomicity contract of
// internal/durable: files are published with temp-file + fsync + rename
// (durable.AtomicWriteFile), never written in place. A direct
// os.WriteFile, os.Create, or file-creating os.OpenFile elsewhere in
// library code can be torn by a crash — a reader (or recovery) then sees a
// prefix of the file, which is exactly the corruption class the stats JSON
// checksums and the WAL exist to rule out.
//
// Flagged:
//
//   - os.WriteFile(...) — in-place, no fsync, no rename
//   - os.Create(...) — truncates the target before the new content exists
//   - os.OpenFile(..., flags, ...) when flags provably contain os.O_CREATE
//
// Exempt: internal/durable itself (it implements the protocol),
// _test.go files, and call sites annotated with
// "//atomicwrite:allow <reason>" on the same line or the line above (for
// writes that are not catalog artifacts, e.g. scratch output of a build
// tool). Flag arguments that are not compile-time constants are left
// alone: provenance unprovable.
package atomicwrite

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags non-atomic file creation outside internal/durable.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "catalog artifacts are written crash-atomically; use durable.AtomicWriteFile instead of direct os.WriteFile/os.Create",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if analysis.PathHasSuffix(pass.Pkg.Path(), "internal/durable") {
		return nil, nil // the atomic-write protocol itself
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		fc := &fileCheck{pass: pass, allowed: allowLines(pass, f)}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fc.checkCall(call)
			}
			return true
		})
	}
	return nil, nil
}

type fileCheck struct {
	pass    *analysis.Pass
	allowed map[int]bool
}

// annotated reports whether n carries an //atomicwrite:allow annotation on
// its line or the line above.
func (fc *fileCheck) annotated(n ast.Node) bool {
	line := fc.pass.Fset.Position(n.Pos()).Line
	return fc.allowed[line] || fc.allowed[line-1]
}

// checkCall flags a non-atomic file-creating call from package os.
func (fc *fileCheck) checkCall(call *ast.CallExpr) {
	name := fc.osCall(call)
	if name == "" || fc.annotated(call) {
		return
	}
	switch name {
	case "WriteFile", "Create":
		fc.pass.Reportf(call.Pos(), "os.%s writes the file in place — a crash mid-write leaves a torn artifact; use durable.AtomicWriteFile (temp + fsync + rename), or annotate with //atomicwrite:allow <reason>", name)
	case "OpenFile":
		if len(call.Args) >= 2 && fc.hasCreateFlag(call.Args[1]) {
			fc.pass.Reportf(call.Pos(), "os.OpenFile with O_CREATE creates the file in place — a crash mid-write leaves a torn artifact; use durable.AtomicWriteFile (temp + fsync + rename), or annotate with //atomicwrite:allow <reason>")
		}
	}
}

// osCall returns the function name when call is os.<Name>(...), else "".
func (fc *fileCheck) osCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := fc.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "os" {
		return ""
	}
	return sel.Sel.Name
}

// hasCreateFlag reports whether the flag expression is a compile-time
// constant containing os.O_CREATE.
func (fc *fileCheck) hasCreateFlag(flag ast.Expr) bool {
	tv, ok := fc.pass.TypesInfo.Types[flag]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v&int64(os.O_CREATE) != 0
}

// allowLines indexes the lines carrying an //atomicwrite:allow annotation.
func allowLines(pass *analysis.Pass, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "atomicwrite:allow") {
				out[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
