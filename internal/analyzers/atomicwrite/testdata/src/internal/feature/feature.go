// Package feature exercises the crash-atomicity contract from outside the
// durable layer.
package feature

import (
	"os"

	"repro/internal/durable"
)

func tornWrites(path string, data []byte) {
	os.WriteFile(path, data, 0o644)                             // want `torn artifact`
	os.Create(path)                                             // want `torn artifact`
	os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)           // want `torn artifact`
	os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644) // want `torn artifact`
}

// atomicWrite is the sanctioned path: the durable layer's temp + fsync +
// rename primitive.
func atomicWrite(path string, data []byte) error {
	return durable.AtomicWriteFile(path, data, 0o644)
}

// readsAreFine: opening for read never tears anything.
func readsAreFine(path string) {
	os.Open(path)
	os.ReadFile(path)
	os.OpenFile(path, os.O_RDONLY, 0)
}

// annotated writes are accepted: the author has stated why this artifact
// does not need crash atomicity.
func annotated(path string, data []byte) {
	os.WriteFile(path, data, 0o644) //atomicwrite:allow scratch output, rebuilt on every run
	//atomicwrite:allow annotation on the line above also counts
	os.Create(path)
}

// nonConstantFlags are left alone: provenance unprovable.
func nonConstantFlags(path string, flags int) {
	os.OpenFile(path, flags, 0o644)
}
