// Package durable stands in for the real internal/durable: the package
// implementing the atomic-write protocol is exempt wholesale.
package durable

import "os"

func walAppend(path string, frame []byte) {
	f, _ := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	f.Write(frame)
	os.WriteFile(path+".tmp", frame, 0o644)
}
