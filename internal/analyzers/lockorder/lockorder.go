// Package lockorder proves deadlock-freedom of the serving tree's mutex
// usage, offline: every function exports a gob-serialized fact summarizing
// which named locks it may acquire (directly or through its callees), the
// driver threads those facts across packages in dependency order, and each
// package contributes its acquisition edges — "lock A was held while lock
// B was acquired" — to a global lock-acquisition graph. The analyzer
// reports
//
//   - any cycle in the global graph, with the full witness chain (which
//     function, at which line, acquires which lock while holding which) —
//     a potential deadlock of the close_race kind PR 8 had to fix after a
//     chaos soak caught it at runtime;
//   - any acquisition that contradicts the declared canonical hierarchy:
//     every mutex declaration carries a `//lockorder:level N` annotation
//     (DESIGN.md §12 holds the canonical table), and a lock may only be
//     acquired while the locks already held all have strictly lower
//     levels;
//   - any mutex declaration missing its level annotation, so the
//     hierarchy stays total as the tree grows.
//
// Escapes: `//lockorder:allow <reason>` on an acquisition or call site
// accepts that site's orderings (they leave the cycle and hierarchy
// checks), and `//lockorder:edge FROM TO` declares an ordering the
// analyzer cannot see statically — a callback invoked under a lock —
// so it still participates in cycle detection.
//
// The analysis is intentionally approximate in the usual ways: calls
// through function values are not resolved (declare them with
// //lockorder:edge where they matter), goroutine bodies contribute their
// own internal edges but do not extend their spawner's held set, and
// held-set tracking is lexical (branch bodies are walked with a copy of
// the held set). Unsound corners are accepted; the point is that every
// ordering the analyzer can see is machine-checked on every commit
// instead of rediscovered by chaos soaks.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analyzers/locknames"
)

// Analyzer builds the global lock-acquisition graph and enforces
// deadlock-freedom and the declared lock hierarchy.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "lock acquisitions must be acyclic across packages and respect the declared //lockorder:level hierarchy",
	FactTypes: []analysis.Fact{new(FuncFact), new(GraphFact)},
	Run:       run,
}

// FuncFact summarizes the named locks a function may acquire, directly or
// transitively through the static calls in its body.
type FuncFact struct {
	// Acquires lists canonical lock names, sorted.
	Acquires []string
}

// AFact marks FuncFact as a fact type.
func (*FuncFact) AFact() {}

// GraphFact is one package's contribution to the global lock-acquisition
// graph: its declared locks (with hierarchy levels) and its edges.
type GraphFact struct {
	// Locks are the mutexes declared in this package.
	Locks []LockDecl
	// Edges are the acquired-while-held orderings witnessed in this
	// package.
	Edges []Edge
}

// AFact marks GraphFact as a fact type.
func (*GraphFact) AFact() {}

// LockDecl names one declared mutex and its canonical hierarchy level.
type LockDecl struct {
	// Name is the canonical lock name (pkg.Type.field or pkg.var).
	Name string
	// Level is the declared //lockorder:level; lower levels are acquired
	// first. Undeclared locks carry Level -1 and are exempt from the
	// hierarchy check (but not from cycle detection).
	Level int
}

// Edge records that From was held while To was acquired.
type Edge struct {
	// From and To are canonical lock names.
	From, To string
	// Fn is the witnessing function.
	Fn string
	// Pos is the witnessing site, file:line.
	Pos string
	// Allowed marks edges every witness of which carries
	// //lockorder:allow; they are excluded from cycle and hierarchy
	// checks but still drawn (dashed) in the DOT artifact.
	Allowed bool
}

// acqSite is one lock acquisition with the held-set context it happened
// under.
type acqSite struct {
	lock    string
	held    []string
	pos     token.Pos
	allowed bool
}

// callSite is one statically resolvable call with held-set context.
type callSite struct {
	callee  types.Object
	held    []string
	pos     token.Pos
	allowed bool
	async   bool // go statement: callee does not run under the held set
}

// fnInfo is the per-function analysis state.
type fnInfo struct {
	name     string // analysis.ObjectKey form
	obj      types.Object
	acquires []acqSite
	calls    []callSite
	trans    map[string]bool // fixpoint: locks this function may acquire
}

func run(pass *analysis.Pass) (any, error) {
	dirs := locknames.CollectDirectives(pass.Fset, pass.Files)

	decls := collectLockDecls(pass, dirs)
	fns := collectFuncs(pass, dirs)
	resolveTransitive(pass, fns)

	// Export the per-function summaries for dependent packages.
	for _, fn := range fns {
		if len(fn.trans) == 0 || fn.obj == nil {
			continue
		}
		fact := &FuncFact{Acquires: sortedKeys(fn.trans)}
		pass.ExportObjectFact(fn.obj, fact)
	}

	edges := buildEdges(pass, fns, dirs)

	// The global graph: every edge exported by already-analyzed packages
	// (dependencies always included; under the standalone driver,
	// previously analyzed siblings too — lock names are global
	// identities, so their edges compose) plus this package's.
	levels := make(map[string]int)
	global := make(map[string]map[string]witness) // from -> to -> first witness
	addEdge := func(e Edge) {
		if e.Allowed {
			return
		}
		m := global[e.From]
		if m == nil {
			m = make(map[string]witness)
			global[e.From] = m
		}
		if _, ok := m[e.To]; !ok {
			m[e.To] = witness{e.Fn, e.Pos}
		}
	}
	for _, pf := range pass.AllPackageFacts() {
		gf, ok := pf.Fact.(*GraphFact)
		if !ok || pf.Path == pass.Pkg.Path() {
			continue
		}
		for _, d := range gf.Locks {
			if d.Level >= 0 {
				levels[d.Name] = d.Level
			}
		}
		for _, e := range gf.Edges {
			addEdge(e)
		}
	}
	for _, d := range decls {
		if d.Level >= 0 {
			levels[d.Name] = d.Level
		}
	}
	for _, e := range edges {
		addEdge(e.Edge)
	}

	// Hierarchy: every new edge must go strictly up the declared levels.
	for _, e := range edges {
		if e.Allowed {
			continue
		}
		if e.From == e.To {
			pass.Reportf(e.pos, "lock %s may be acquired while already held (via %s); sync.Mutex does not re-enter — restructure or annotate //lockorder:allow with the aliasing argument", e.From, e.Fn)
			continue
		}
		lf, fok := levels[e.From]
		lt, tok := levels[e.To]
		if fok && tok && lf >= lt {
			pass.Reportf(e.pos, "lock order violation: %s (level %d) is held while acquiring %s (level %d); the canonical hierarchy (DESIGN.md §12) requires strictly increasing levels — reorder the acquisitions, change the declared levels, or annotate //lockorder:allow", e.From, lf, e.To, lt)
		}
	}

	// Cycles: a new edge u->v closes a potential deadlock if v reaches u
	// in the global graph. Each distinct cycle is reported once per
	// package, at the closing edge.
	reported := make(map[string]bool)
	for _, e := range edges {
		if e.Allowed || e.From == e.To {
			continue
		}
		path := shortestPath(global, e.To, e.From)
		if path == nil {
			continue
		}
		cycle := append([]string{e.From, e.To}, path[1:]...)
		sig := cycleSignature(cycle)
		if reported[sig] {
			continue
		}
		reported[sig] = true
		var chain strings.Builder
		fmt.Fprintf(&chain, "[%s -> %s: %s at %s]", e.From, e.To, e.Fn, e.Pos)
		for i := 0; i+1 < len(path); i++ {
			w := global[path[i]][path[i+1]]
			fmt.Fprintf(&chain, " [%s -> %s: %s at %s]", path[i], path[i+1], w.fn, w.pos)
		}
		pass.Reportf(e.pos, "potential deadlock: lock-acquisition cycle %s; witness chain %s; break one edge or annotate //lockorder:allow with the exclusion argument",
			strings.Join(cycle, " -> "), chain.String())
	}

	sort.Slice(decls, func(i, j int) bool { return decls[i].Name < decls[j].Name })
	exported := make([]Edge, len(edges))
	for i, e := range edges {
		exported[i] = e.Edge
	}
	pass.ExportPackageFact(&GraphFact{Locks: decls, Edges: exported})
	return nil, nil
}

// collectLockDecls finds every declared mutex (struct fields and
// package-level vars, non-test files), resolves its //lockorder:level,
// and reports declarations that omit one.
func collectLockDecls(pass *analysis.Pass, dirs *locknames.Directives) []LockDecl {
	var decls []LockDecl
	pkgPath := pass.Pkg.Path()
	add := func(name string, pos token.Pos) {
		level, ok := dirs.Level(pos)
		if !ok {
			level = -1
			pass.Reportf(pos, "mutex %s declares no place in the lock hierarchy; annotate the declaration with //lockorder:level N (canonical table: DESIGN.md §12)", name)
		}
		decls = append(decls, LockDecl{Name: name, Level: level})
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					st, ok := sp.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						tv, ok := pass.TypesInfo.Types[field.Type]
						if !ok || !locknames.IsLockType(tv.Type) {
							continue
						}
						if len(field.Names) == 0 { // embedded sync.Mutex
							add(pkgPath+"."+sp.Name.Name+".Mutex", field.Pos())
							continue
						}
						for _, name := range field.Names {
							add(pkgPath+"."+sp.Name.Name+"."+name.Name, name.Pos())
						}
					}
				case *ast.ValueSpec:
					if gd.Tok != token.VAR {
						continue
					}
					for _, name := range sp.Names {
						obj, ok := pass.TypesInfo.Defs[name]
						if !ok || obj == nil || !locknames.IsLockType(obj.Type()) {
							continue
						}
						if obj.Parent() == pass.Pkg.Scope() {
							add(pkgPath+"."+name.Name, name.Pos())
						}
					}
				}
			}
		}
	}
	return decls
}

// collectFuncs walks every function body, tracking the held set lexically
// and recording acquisitions and static calls with their context.
func collectFuncs(pass *analysis.Pass, dirs *locknames.Directives) []*fnInfo {
	var fns []*fnInfo
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			info := &fnInfo{obj: obj}
			if obj != nil {
				info.name = analysis.ObjectKey(obj)
			} else {
				info.name = fd.Name.Name
			}
			w := &walker{pass: pass, dirs: dirs, fn: info}
			w.stmts(fd.Body.List, &[]string{})
			fns = append(fns, info)
		}
	}
	return fns
}

// walker performs the lexical held-set walk of one function (and its
// synchronously executed function literals).
type walker struct {
	pass *analysis.Pass
	dirs *locknames.Directives
	fn   *fnInfo
}

func cloneHeld(held []string) *[]string {
	cp := append([]string(nil), held...)
	return &cp
}

func (w *walker) stmts(list []ast.Stmt, held *[]string) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held *[]string) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(st.X, held, false)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e, held, false)
		}
		for _, e := range st.Lhs {
			w.expr(e, held, false)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held, false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e, held, false)
		}
	case *ast.IfStmt:
		w.stmt(st.Init, held)
		w.expr(st.Cond, held, false)
		w.stmts(st.Body.List, cloneHeld(*held))
		if st.Else != nil {
			w.stmt(st.Else, cloneHeld(*held))
		}
	case *ast.ForStmt:
		w.stmt(st.Init, held)
		if st.Cond != nil {
			w.expr(st.Cond, held, false)
		}
		body := cloneHeld(*held)
		w.stmts(st.Body.List, body)
		w.stmt(st.Post, body)
	case *ast.RangeStmt:
		w.expr(st.X, held, false)
		w.stmts(st.Body.List, cloneHeld(*held))
	case *ast.SwitchStmt:
		w.stmt(st.Init, held)
		if st.Tag != nil {
			w.expr(st.Tag, held, false)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(*held))
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, held)
		w.stmt(st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(*held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmt(cc.Comm, cloneHeld(*held))
				w.stmts(cc.Body, cloneHeld(*held))
			}
		}
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.DeferStmt:
		// A deferred unlock releases at return; for ordering purposes the
		// lock stays held for the remainder of the body, so the held set
		// is left untouched. Other deferred calls are treated as calls
		// under the current held set (an approximation of the set at
		// return time).
		if op, lockExpr := locknames.Classify(w.pass.TypesInfo, st.Call); op.Release() {
			_ = lockExpr
			return
		}
		w.expr(st.Call, held, false)
	case *ast.GoStmt:
		// The goroutine does not run under the spawner's held locks; its
		// body is walked with an empty held set and its acquisitions are
		// excluded from the spawner's summary.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.funcLit(lit, true)
		} else {
			w.call(st.Call, &[]string{}, true)
		}
		for _, arg := range st.Call.Args {
			w.expr(arg, held, false)
		}
	case *ast.SendStmt:
		w.expr(st.Chan, held, false)
		w.expr(st.Value, held, false)
	case *ast.IncDecStmt:
		w.expr(st.X, held, false)
	}
}

// expr walks one expression, updating the held set through lock calls and
// recording call sites.
func (w *walker) expr(e ast.Expr, held *[]string, async bool) {
	switch ex := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(ex, held, async)
	case *ast.FuncLit:
		w.funcLit(ex, false)
	case *ast.ParenExpr:
		w.expr(ex.X, held, async)
	case *ast.UnaryExpr:
		w.expr(ex.X, held, async)
	case *ast.BinaryExpr:
		w.expr(ex.X, held, async)
		w.expr(ex.Y, held, async)
	case *ast.SelectorExpr:
		w.expr(ex.X, held, async)
	case *ast.IndexExpr:
		w.expr(ex.X, held, async)
		w.expr(ex.Index, held, async)
	case *ast.SliceExpr:
		w.expr(ex.X, held, async)
	case *ast.StarExpr:
		w.expr(ex.X, held, async)
	case *ast.TypeAssertExpr:
		w.expr(ex.X, held, async)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			w.expr(el, held, async)
		}
	case *ast.KeyValueExpr:
		w.expr(ex.Value, held, async)
	}
}

// call handles one call expression: a lock op mutates the held set, any
// other statically resolvable call is recorded with its context.
func (w *walker) call(call *ast.CallExpr, held *[]string, async bool) {
	op, lockExpr := locknames.Classify(w.pass.TypesInfo, call)
	switch {
	case op.Acquire():
		if name, ok := locknames.Name(w.pass.TypesInfo, lockExpr, w.fn.name); ok {
			w.fn.acquires = append(w.fn.acquires, acqSite{
				lock:    name,
				held:    append([]string(nil), *held...),
				pos:     call.Pos(),
				allowed: w.dirs.Allowed(call.Pos(), "lockorder"),
			})
			if !async {
				*held = append(*held, name)
			}
		}
		return
	case op.Release():
		if name, ok := locknames.Name(w.pass.TypesInfo, lockExpr, w.fn.name); ok {
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i] == name {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return
	}
	if callee := calleeObject(w.pass.TypesInfo, call); callee != nil {
		w.fn.calls = append(w.fn.calls, callSite{
			callee:  callee,
			held:    append([]string(nil), *held...),
			pos:     call.Pos(),
			allowed: w.dirs.Allowed(call.Pos(), "lockorder"),
			async:   async,
		})
	}
	w.expr(call.Fun, held, async)
	for _, arg := range call.Args {
		w.expr(arg, held, async)
	}
}

// funcLit walks a function literal. Literals may be invoked synchronously
// by whoever receives them (Store.Locked style), so their acquisitions
// join the enclosing function's summary unless the literal is a goroutine
// body.
func (w *walker) funcLit(lit *ast.FuncLit, async bool) {
	inner := &walker{pass: w.pass, dirs: w.dirs, fn: w.fn}
	if async {
		// Record into a throwaway fnInfo for edge generation only: the
		// goroutine's internal orderings are real, but its acquisitions
		// must not leak into the spawner's transitive summary.
		shadow := &fnInfo{name: w.fn.name + ".go"}
		inner.fn = shadow
		inner.stmts(lit.Body.List, &[]string{})
		w.fn.acquires = append(w.fn.acquires, markAsync(shadow.acquires)...)
		for _, c := range shadow.calls {
			c.async = true
			w.fn.calls = append(w.fn.calls, c)
		}
		return
	}
	inner.stmts(lit.Body.List, &[]string{})
}

// markAsync rewrites goroutine-body acquisitions so they contribute edges
// (their held context is real within the goroutine) but are recognizable
// as not-on-the-spawner's-stack by the summary fixpoint, which consults
// fnInfo.acquires through asyncAcquire.
func markAsync(sites []acqSite) []acqSite {
	out := make([]acqSite, len(sites))
	for i, s := range sites {
		s.pos = -s.pos // negative pos marks async; normalized on use
		out[i] = s
	}
	return out
}

// asyncAcquire reports (and undoes) the async marker.
func asyncAcquire(s acqSite) (acqSite, bool) {
	if s.pos < 0 {
		s.pos = -s.pos
		return s, true
	}
	return s, false
}

// calleeObject resolves the called function's object for static calls:
// plain functions, package-qualified functions, and methods.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// resolveTransitive runs the intra-package fixpoint: each function's
// transitive acquire set is its direct acquisitions plus the sets of its
// same-package callees (iterated to fixpoint) plus the imported FuncFact
// summaries of cross-package callees (already final, by dependency
// order).
func resolveTransitive(pass *analysis.Pass, fns []*fnInfo) {
	local := make(map[types.Object]*fnInfo, len(fns))
	for _, fn := range fns {
		fn.trans = make(map[string]bool)
		for _, a := range fn.acquires {
			if _, async := asyncAcquire(a); !async {
				fn.trans[a.lock] = true
			}
		}
		if fn.obj != nil {
			local[fn.obj] = fn
		}
	}
	// Seed cross-package callee summaries once; they cannot change during
	// the local fixpoint.
	imported := make(map[types.Object][]string)
	for _, fn := range fns {
		for _, c := range fn.calls {
			if c.async {
				continue
			}
			if _, ok := local[c.callee]; ok {
				continue
			}
			if _, ok := imported[c.callee]; ok {
				continue
			}
			var fact FuncFact
			if pass.ImportObjectFact(c.callee, &fact) {
				imported[c.callee] = fact.Acquires
			} else {
				imported[c.callee] = nil
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for _, c := range fn.calls {
				if c.async {
					continue
				}
				var acquires []string
				if callee, ok := local[c.callee]; ok {
					acquires = sortedKeys(callee.trans)
				} else {
					acquires = imported[c.callee]
				}
				for _, lock := range acquires {
					if !fn.trans[lock] {
						fn.trans[lock] = true
						changed = true
					}
				}
			}
		}
	}
}

// localEdge pairs a serializable Edge with its in-process report
// position.
type localEdge struct {
	Edge
	pos token.Pos
}

// buildEdges derives this package's contribution to the global graph:
// direct acquisition edges, call edges through transitive summaries, and
// manual //lockorder:edge declarations. Edges are deduplicated by
// (From, To); an edge is Allowed only if every witness is.
func buildEdges(pass *analysis.Pass, fns []*fnInfo, dirs *locknames.Directives) []localEdge {
	local := make(map[types.Object]*fnInfo, len(fns))
	for _, fn := range fns {
		if fn.obj != nil {
			local[fn.obj] = fn
		}
	}
	posStr := func(pos token.Pos) string {
		p := pass.Fset.Position(pos)
		parts := strings.Split(p.Filename, "/")
		return fmt.Sprintf("%s:%d", parts[len(parts)-1], p.Line)
	}
	index := make(map[[2]string]int)
	var edges []localEdge
	add := func(from, to, fn string, pos token.Pos, allowed bool) {
		key := [2]string{from, to}
		if i, ok := index[key]; ok {
			if edges[i].Allowed && !allowed {
				edges[i].Fn = fn
				edges[i].Pos = posStr(pos)
				edges[i].pos = pos
				edges[i].Allowed = false
			}
			return
		}
		index[key] = len(edges)
		edges = append(edges, localEdge{
			Edge: Edge{From: from, To: to, Fn: fn, Pos: posStr(pos), Allowed: allowed},
			pos:  pos,
		})
	}
	for _, fn := range fns {
		for _, a := range fn.acquires {
			a, _ := asyncAcquire(a)
			for _, h := range a.held {
				add(h, a.lock, fn.name, a.pos, a.allowed)
			}
		}
		for _, c := range fn.calls {
			if c.async || len(c.held) == 0 {
				continue
			}
			var acquires []string
			if callee, ok := local[c.callee]; ok {
				acquires = sortedKeys(callee.trans)
			} else {
				var fact FuncFact
				if pass.ImportObjectFact(c.callee, &fact) {
					acquires = fact.Acquires
				}
			}
			calleeName := c.callee.Name()
			for _, lock := range acquires {
				for _, h := range c.held {
					add(h, lock, fn.name+" -> "+calleeName, c.pos, c.allowed)
				}
			}
		}
	}
	for _, e := range dirs.Edges() {
		add(e.From, e.To, "(declared edge)", e.Pos, false)
	}
	return edges
}

// witness records which function, at which file:line, demonstrated an
// edge of the global graph.
type witness struct {
	fn, pos string
}

// shortestPath BFSes from src to dst over the non-allowed global edges,
// returning the node path [src, ..., dst] (nil when unreachable).
// Deterministic: neighbors visited in sorted order.
func shortestPath(global map[string]map[string]witness, src, dst string) []string {
	prev := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if node == dst {
			var path []string
			for n := dst; n != ""; n = prev[n] {
				path = append([]string{n}, path...)
				if n == src {
					break
				}
			}
			return path
		}
		next := make([]string, 0, len(global[node]))
		for to := range global[node] {
			if _, seen := prev[to]; !seen {
				next = append(next, to)
			}
		}
		sort.Strings(next)
		for _, to := range next {
			prev[to] = node
			queue = append(queue, to)
		}
	}
	return nil
}

// cycleSignature canonicalizes a cycle's node set for dedup — the same
// cycle is discovered once per participating edge, under rotations.
func cycleSignature(nodes []string) string {
	set := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	uniq := make([]string, 0, len(set))
	for n := range set {
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return strings.Join(uniq, "|")
}

// WriteDOT renders the global lock-acquisition graph assembled from every
// GraphFact in facts as Graphviz DOT: one node per lock (labeled with its
// declared level), solid edges for enforced orderings with the witness as
// tooltip, dashed edges for //lockorder:allow'd ones. cmd/elslint's
// -lockdot flag writes this for the CI artifact.
func WriteDOT(w io.Writer, facts []analysis.PackageFact) error {
	levels := make(map[string]int)
	type edgeKey struct{ from, to string }
	edges := make(map[edgeKey]Edge)
	nodes := make(map[string]bool)
	for _, pf := range facts {
		gf, ok := pf.Fact.(*GraphFact)
		if !ok {
			continue
		}
		for _, d := range gf.Locks {
			nodes[d.Name] = true
			if d.Level >= 0 {
				levels[d.Name] = d.Level
			}
		}
		for _, e := range gf.Edges {
			nodes[e.From] = true
			nodes[e.To] = true
			key := edgeKey{e.From, e.To}
			if prev, ok := edges[key]; !ok || (prev.Allowed && !e.Allowed) {
				edges[key] = e
			}
		}
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintln(w, "digraph lockorder {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for _, n := range names {
		label := n
		if lvl, ok := levels[n]; ok {
			label = fmt.Sprintf("%s\\nlevel %d", n, lvl)
		}
		fmt.Fprintf(w, "  %q [label=%q];\n", n, label)
	}
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		e := edges[k]
		style := "solid"
		if e.Allowed {
			style = "dashed"
		}
		fmt.Fprintf(w, "  %q -> %q [style=%s, tooltip=%q];\n",
			e.From, e.To, style, e.Fn+" at "+e.Pos)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
