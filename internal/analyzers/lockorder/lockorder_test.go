package lockorder

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestCloseRace pins the PR-8 shutdown deadlock fixture: the two-lock
// inversion must surface as both a hierarchy violation and a cycle with
// its witness chain.
func TestCloseRace(t *testing.T) {
	analysistest.Run(t, Analyzer, "close_race")
}

// TestCrossPackage pins fact flow: package b's diagnostics depend on the
// FuncFact exported while analyzing package a, and on a manually declared
// //lockorder:edge.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, Analyzer, "lockorder/b")
}
