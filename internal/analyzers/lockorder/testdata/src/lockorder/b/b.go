// Package b is the dependent side of the cross-package fixture: its
// level-20 lock may not be held across a call into a, whose exported fact
// says the callee acquires the level-10 lock.
package b

import (
	"sync"

	"lockorder/a"
)

// T owns the high lock.
type T struct {
	//lockorder:level 20
	mu sync.Mutex
}

// Bad holds the level-20 lock while calling into a — the imported fact
// reveals the descending level-10 acquisition.
func (t *T) Bad() {
	t.mu.Lock()
	defer t.mu.Unlock()
	a.AcquireTwice() // want `lock order violation: lockorder/b.T.mu \(level 20\) is held while acquiring lockorder/a.mu \(level 10\)`
}

// Good takes the cross-package lock only while holding nothing.
func (t *T) Good() {
	a.Acquire()
	t.mu.Lock()
	defer t.mu.Unlock()
}

// Unleveled is missing its place in the hierarchy.
type Unleveled struct {
	naked sync.Mutex // want "mutex lockorder/b.Unleveled.naked declares no place in the lock hierarchy"
}
