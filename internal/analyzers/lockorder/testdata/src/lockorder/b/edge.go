package b

import "sync"

// E models the callback-under-lock shape: publish invokes a caller-
// supplied hook while holding cbMu, which the analyzer cannot see
// through, so the ordering is declared manually with //lockorder:edge —
// and the declared edge still participates in cycle detection.
type E struct {
	//lockorder:level 40
	cbMu sync.Mutex
	//lockorder:level 50
	hookMu sync.Mutex
}

// publish runs the hook under cbMu; the hook's locks are invisible here.
//
//lockorder:edge lockorder/b.E.cbMu lockorder/b.E.hookMu
func (e *E) publish(cb func()) {
	e.cbMu.Lock()
	defer e.cbMu.Unlock()
	cb()
}

// hook closes the loop against the declared edge: hookMu held while
// taking cbMu inverts the declared levels and completes a cycle whose
// other edge exists only by declaration.
func (e *E) hook() {
	e.hookMu.Lock()
	defer e.hookMu.Unlock()
	e.cbMu.Lock() // want `lock order violation: lockorder/b.E.hookMu \(level 50\) is held while acquiring lockorder/b.E.cbMu \(level 40\)` "potential deadlock: lock-acquisition cycle lockorder/b.E.hookMu -> lockorder/b.E.cbMu -> lockorder/b.E.hookMu"
	defer e.cbMu.Unlock()
}
