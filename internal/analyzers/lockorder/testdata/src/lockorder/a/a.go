// Package a is the dependency side of the cross-package fixture: it
// declares a low-level lock and exports a function acquiring it, so the
// driver must carry a's FuncFact into b to see b's descending edge.
package a

import "sync"

//lockorder:level 10
var mu sync.Mutex

var count int

// Acquire takes and releases the package lock; its exported fact says
// Acquires = [lockorder/a.mu].
func Acquire() {
	mu.Lock()
	defer mu.Unlock()
	count++
}

// AcquireTwice layers a same-package call, exercising the intra-package
// fixpoint before export.
func AcquireTwice() {
	Acquire()
	Acquire()
}
