// Package close_race re-encodes the PR-8 shutdown deadlock as a fixture:
// Close took the wide state lock and then the shipper lock, while
// AttachReplica took them in the opposite order. A chaos soak caught the
// deadlock at runtime; this fixture pins that lockorder catches it at
// compile time, as both a hierarchy violation and a full two-edge cycle.
package close_race

import "sync"

// System is the two-lock miniature of the seed's System.
type System struct {
	//lockorder:level 10
	mu sync.Mutex
	//lockorder:level 20
	shipMu sync.Mutex

	replicas int
	closed   bool
}

// Close mirrors the buggy shutdown: wide lock first, shipper lock second.
// Its ordering conforms to the hierarchy (10 then 20), so the diagnostic
// is the cycle closed against Attach, with the witness chain.
func (s *System) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shipMu.Lock() // want "potential deadlock: lock-acquisition cycle close_race.System.mu -> close_race.System.shipMu -> close_race.System.mu"
	defer s.shipMu.Unlock()
	s.closed = true
}

// Attach mirrors the buggy replica attach: shipper lock held while taking
// the wide lock — the descending edge that both inverts the hierarchy and
// closes the cycle.
func (s *System) Attach() {
	s.shipMu.Lock()
	defer s.shipMu.Unlock()
	s.mu.Lock() // want `lock order violation: close_race.System.shipMu \(level 20\) is held while acquiring close_race.System.mu \(level 10\)`
	defer s.mu.Unlock()
	s.replicas++
}

// Detach is the fixed shape: the two critical sections are sequential,
// never nested, so it contributes no edge.
func (s *System) Detach() {
	s.mu.Lock()
	s.replicas--
	s.mu.Unlock()

	s.shipMu.Lock()
	s.closed = false
	s.shipMu.Unlock()
}
