// Package locknames is the shared vocabulary of the lockorder and
// locksafe analyzers: canonical names for mutexes, classification of
// Lock/Unlock call sites, and the //lockorder: + //locksafe: comment
// directives (see DESIGN.md §12).
//
// A named lock is identified as
//
//	<pkgpath>.<TypeName>.<field>   a sync.Mutex/RWMutex struct field
//	<pkgpath>.<var>                a package-level mutex variable
//	<pkgpath>.<Func>.<var>         a function-local mutex variable
//
// so the same runtime lock acquired from any package resolves to the same
// node of the global lock-acquisition graph (two *instances* of the same
// field collapse to one node — the hierarchy is declared per lock
// declaration, not per object, exactly like a canonical lock-level table
// in a design doc).
package locknames

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Op classifies a call expression's effect on a mutex.
type Op int

const (
	// OpNone marks a call that is not a mutex operation.
	OpNone Op = iota
	// OpLock is Mutex.Lock or RWMutex.Lock.
	OpLock
	// OpRLock is RWMutex.RLock.
	OpRLock
	// OpUnlock is Mutex.Unlock or RWMutex.Unlock.
	OpUnlock
	// OpRUnlock is RWMutex.RUnlock.
	OpRUnlock
)

// Acquire reports whether op takes the lock.
func (op Op) Acquire() bool { return op == OpLock || op == OpRLock }

// Release reports whether op drops the lock.
func (op Op) Release() bool { return op == OpUnlock || op == OpRUnlock }

// isSyncLockType reports whether t (after pointer stripping) is
// sync.Mutex or sync.RWMutex.
func isSyncLockType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// Classify inspects a call expression and, when it is a mutex
// acquisition or release, returns the op together with the expression
// denoting the mutex (the receiver of the Lock/Unlock selector).
func Classify(info *types.Info, call *ast.CallExpr) (Op, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return OpNone, nil
	}
	var op Op
	switch sel.Sel.Name {
	case "Lock":
		op = OpLock
	case "RLock":
		op = OpRLock
	case "Unlock":
		op = OpUnlock
	case "RUnlock":
		op = OpRUnlock
	default:
		return OpNone, nil
	}
	s := info.Selections[sel]
	if s == nil {
		return OpNone, nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return OpNone, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isSyncLockType(sig.Recv().Type()) {
		return OpNone, nil
	}
	return op, sel.X
}

// Name resolves the canonical name of the mutex denoted by expr, where
// enclosing names the function whose body contains expr (for
// function-local mutexes). ok is false when the expression is too dynamic
// to name (the caller skips it).
func Name(info *types.Info, expr ast.Expr, enclosing string) (name string, ok bool) {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		obj, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return "", false
		}
		owner := ""
		if s := info.Selections[e]; s != nil {
			t := s.Recv()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				owner = named.Obj().Name() + "."
			}
		} else if obj.Parent() == obj.Pkg().Scope() {
			// pkg-qualified reference to a package-level mutex (pkg.mu)
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
		if owner == "" {
			return "", false
		}
		return obj.Pkg().Path() + "." + owner + obj.Name(), true
	case *ast.Ident:
		obj, ok := info.Uses[e].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return "", false
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
		return obj.Pkg().Path() + "." + enclosing + "." + obj.Name(), true
	case *ast.ParenExpr:
		return Name(info, e.X, enclosing)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return Name(info, e.X, enclosing)
		}
	case *ast.StarExpr:
		return Name(info, e.X, enclosing)
	}
	return "", false
}

// IsWaitGroupWait reports whether call is (*sync.WaitGroup).Wait.
func IsWaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// Directives indexes the //lockorder: and //locksafe: comment directives
// of one package by file and line, so analyzers can answer "is this
// acquisition site annotated?" for a token.Pos. A directive applies to
// its own line (trailing comment) and to the line directly below it
// (comment-above form).
type Directives struct {
	fset   *token.FileSet
	byLine map[string]map[int][]string // filename -> line -> directive texts
	edges  []EdgeDecl
}

// EdgeDecl is one manual `//lockorder:edge FROM TO` declaration.
type EdgeDecl struct {
	// From and To are canonical lock names.
	From, To string
	// Pos is the position of the declaring comment.
	Pos token.Pos
}

// CollectDirectives scans every comment of files.
func CollectDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lockorder:") && !strings.HasPrefix(text, "locksafe:") &&
					!strings.HasPrefix(text, "wirecover:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := d.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					d.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], text)
				if rest, ok := strings.CutPrefix(text, "lockorder:edge"); ok {
					if fields := strings.Fields(rest); len(fields) == 2 {
						d.edges = append(d.edges, EdgeDecl{From: fields[0], To: fields[1], Pos: c.Pos()})
					}
				}
			}
		}
	}
	return d
}

// at returns the directives covering pos: same line or the line above.
func (d *Directives) at(pos token.Pos) []string {
	p := d.fset.Position(pos)
	m := d.byLine[p.Filename]
	if m == nil {
		return nil
	}
	return append(append([]string(nil), m[p.Line-1]...), m[p.Line]...)
}

// Allowed reports whether pos carries an allow escape for tool
// ("lockorder" or "locksafe"): `//<tool>:allow <reason>`.
func (d *Directives) Allowed(pos token.Pos, tool string) bool {
	for _, t := range d.at(pos) {
		if strings.HasPrefix(t, tool+":allow") {
			return true
		}
	}
	return false
}

// Level returns the `//lockorder:level N` annotation covering pos.
func (d *Directives) Level(pos token.Pos) (int, bool) {
	for _, t := range d.at(pos) {
		rest, ok := strings.CutPrefix(t, "lockorder:level")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err == nil {
			return n, true
		}
	}
	return 0, false
}

// Edges returns the manual `//lockorder:edge FROM TO` declarations of the
// package — the escape hatch for lock orderings the analyzer cannot see
// statically, such as a callback invoked under a lock (snapshot publish
// invoking the plan-cache invalidation hook). Each declaration contributes
// one edge to the global graph with its comment position as witness.
func (d *Directives) Edges() []EdgeDecl {
	return d.edges
}

// Find returns the first directive named name ("wirecover:table",
// "lockorder:allow", ...) covering pos, with the remainder of its text
// (trimmed) as the argument.
func (d *Directives) Find(pos token.Pos, name string) (rest string, ok bool) {
	for _, t := range d.at(pos) {
		if r, found := strings.CutPrefix(t, name); found {
			return strings.TrimSpace(r), true
		}
	}
	return "", false
}

// IsLockType reports whether t (after pointer stripping) is sync.Mutex or
// sync.RWMutex — the declaration-side mirror of Classify.
func IsLockType(t types.Type) bool { return isSyncLockType(t) }
