// Package ctxflow enforces end-to-end context propagation:
//
//  1. context.Background() and context.TODO() are forbidden in library
//     code. Root contexts belong in cmd/ main packages and tests; a
//     library call site that genuinely needs a fresh context (a
//     nil-context compatibility default, a detached audit write) must
//     carry a "//ctxflow:allow <reason>" annotation on the same line or
//     the line above.
//  2. A function that receives a context.Context must thread it: any
//     context.Context argument it passes must derive from one of its
//     context parameters (directly, or through context.With* chains).
//     Passing some other context severs cancellation — the exact shape of
//     the PR 3 breaker-probe leak.
//
// _test.go files are exempt from both rules.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces context threading and forbids stray root contexts.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must flow from caller to callee; no context.Background/TODO outside cmd/, tests, and annotated sites",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	exemptPkg := strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		fc := &fileCheck{pass: pass, allowed: allowLines(pass, f), exemptPkg: exemptPkg}
		if !exemptPkg {
			fc.checkRootContexts(f)
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				fc.checkThreading(fn.Type, fn.Body)
			}
		}
	}
	return nil, nil
}

type fileCheck struct {
	pass      *analysis.Pass
	allowed   map[int]bool
	exemptPkg bool
}

// annotated reports whether pos carries a //ctxflow:allow annotation on
// its line or the line above.
func (fc *fileCheck) annotated(pos ast.Node) bool {
	line := fc.pass.Fset.Position(pos.Pos()).Line
	return fc.allowed[line] || fc.allowed[line-1]
}

// checkRootContexts flags unannotated context.Background/TODO calls.
func (fc *fileCheck) checkRootContexts(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := fc.rootContextCall(call); name != "" && !fc.annotated(call) {
			fc.pass.Reportf(call.Pos(), "context.%s in library code severs cancellation; accept a ctx parameter, or annotate the call site with //ctxflow:allow <reason>", name)
		}
		return true
	})
}

// rootContextCall returns "Background" or "TODO" when call constructs a
// root context, else "".
func (fc *fileCheck) rootContextCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := fc.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return ""
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name
	}
	return ""
}

// checkThreading enforces rule 2 on one function body: every
// context.Context argument passed by a context-receiving function must
// derive from a context parameter.
func (fc *fileCheck) checkThreading(ft *ast.FuncType, body *ast.BlockStmt) {
	derived := fc.contextParams(ft, body)
	if len(derived) == 0 {
		return // not a context-receiving function
	}
	fc.propagate(body, derived)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			fc.checkArg(arg, derived)
		}
		return true
	})
}

// contextParams collects the context.Context parameter objects of the
// function and of every function literal nested in it (a nested literal's
// own ctx parameter is as legitimate a source as the outer one).
func (fc *fileCheck) contextParams(ft *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	add := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := fc.pass.TypesInfo.Defs[name]; obj != nil && isContextType(obj.Type()) {
					derived[obj] = true
				}
			}
		}
	}
	add(ft)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			add(lit.Type)
		}
		return true
	})
	return derived
}

// propagate grows the derived set through assignments: a Context-typed
// variable assigned from an expression that mentions a derived context (or
// an annotated root context) is itself derived. Runs to a fixpoint.
func (fc *fileCheck) propagate(body *ast.BlockStmt, derived map[types.Object]bool) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				ok := false
				for _, rhs := range st.Rhs {
					if fc.blessed(rhs, derived) {
						ok = true
					}
				}
				if !ok {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, isID := lhs.(*ast.Ident); isID {
						if obj := fc.defOrUse(id); obj != nil && isContextType(obj.Type()) && !derived[obj] {
							derived[obj] = true
							grew = true
						}
					}
				}
			case *ast.ValueSpec:
				ok := false
				for _, rhs := range st.Values {
					if fc.blessed(rhs, derived) {
						ok = true
					}
				}
				if !ok {
					return true
				}
				for _, name := range st.Names {
					if obj := fc.pass.TypesInfo.Defs[name]; obj != nil && isContextType(obj.Type()) && !derived[obj] {
						derived[obj] = true
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// blessed reports whether expr mentions a derived context or an allowed
// (annotated / package-exempt) root-context construction.
func (fc *fileCheck) blessed(expr ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj := fc.pass.TypesInfo.Uses[x]; obj != nil && derived[obj] {
				found = true
			}
		case *ast.CallExpr:
			if fc.rootContextCall(x) != "" && (fc.exemptPkg || fc.annotated(x)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkArg flags a context.Context argument that names a context variable
// not derived from any context parameter. Root-context calls are rule 1's
// business; compound expressions whose provenance cannot be proven are
// left alone.
func (fc *fileCheck) checkArg(arg ast.Expr, derived map[types.Object]bool) {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return
	}
	obj, isVar := fc.pass.TypesInfo.Uses[id].(*types.Var)
	if !isVar || !isContextType(obj.Type()) || derived[obj] {
		return
	}
	// Struct fields and package-level contexts are out of scope for the
	// intra-procedural rule; only local variables with a visible
	// non-derived origin are flagged.
	if obj.Parent() == nil || (obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()) {
		return
	}
	if fc.annotated(id) {
		return
	}
	fc.pass.Reportf(id.Pos(), "context %q does not derive from this function's context parameter; thread the received ctx instead", id.Name)
}

// defOrUse resolves an identifier whether it defines or uses its object.
func (fc *fileCheck) defOrUse(id *ast.Ident) types.Object {
	if obj := fc.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return fc.pass.TypesInfo.Uses[id]
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// allowLines indexes the lines carrying a //ctxflow:allow annotation.
func allowLines(pass *analysis.Pass, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "ctxflow:allow") {
				out[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
