package a

import (
	"context"
	"time"
)

func work(ctx context.Context) error { return nil }

// threaded is the accepted idiom: the received ctx (and contexts derived
// from it) flows to every callee.
func threaded(ctx context.Context) error {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(cctx)
}

func root() error {
	ctx := context.Background() // want `context.Background`
	return work(ctx)
}

func severed(ctx context.Context) error {
	probe := context.TODO() // want `context.TODO`
	return work(probe)      // want `does not derive`
}

func annotated(ctx context.Context) error {
	//ctxflow:allow fixture: detached audit write outlives the request
	audit := context.Background()
	return work(audit)
}
