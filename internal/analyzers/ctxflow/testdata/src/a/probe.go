package a

import "context"

// Regression fixture modeled on the PR 3 breaker-probe leak: the serve
// path received the request context but ran the half-open probe under a
// fresh root context, so cancelling the request could no longer unwind
// the probe and the breaker stayed half-open forever.

func probeSevered(ctx context.Context, probe func(context.Context) error) error {
	probeCtx := context.Background() // want `context.Background`
	return probe(probeCtx)           // want `does not derive`
}

func probeThreaded(ctx context.Context, probe func(context.Context) error) error {
	probeCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	return probe(probeCtx)
}
