// Command tool shows the cmd/ exemption: a main package is where root
// contexts are supposed to be born.
package main

import "context"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
