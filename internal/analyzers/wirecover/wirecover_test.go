package wirecover

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestAccepted pins the silent shapes: a complete table, a declared retry
// set, and a delegating dispatch.
func TestAccepted(t *testing.T) {
	analysistest.Run(t, Analyzer, "wirecover/wiregood")
}

// TestCaught pins the red shapes: a deleted wire code, a double-mapped
// sentinel, a reused code, and an undeclared retry classifier.
func TestCaught(t *testing.T) {
	analysistest.Run(t, Analyzer, "wirecover/wirebad")
}

// TestDrift pins cross-package retry-set agreement through sentinel
// aliases: drift's set disagrees with wiregood's, compared canonically.
func TestDrift(t *testing.T) {
	analysistest.Run(t, Analyzer, "wirecover/drift")
}
