// Package taxo is a miniature three-sentinel error taxonomy; errtaxonomy
// exports its sentinel set as a fact for the dependent fixtures.
package taxo

import "errors"

var (
	// ErrAlpha is the retryable sentinel of the fixture taxonomy.
	ErrAlpha = errors.New("alpha")
	// ErrBeta is a terminal sentinel.
	ErrBeta = errors.New("beta")
	// ErrGamma is a terminal sentinel.
	ErrGamma = errors.New("gamma")
	// ErrDelta is a terminal sentinel added after the wire table shipped —
	// the grow-the-taxonomy case (modeled on the memory budget class): the
	// analyzer must force a table row for it in every projection.
	ErrDelta = errors.New("delta")
)
