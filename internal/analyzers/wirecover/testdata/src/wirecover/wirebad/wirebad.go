// Package wirebad is the caught side: the table drops one sentinel's wire
// code, double-maps another, reuses a code string, and the dispatch
// delegates to an undeclared classifier.
package wirebad

import (
	"errors"

	"wirecover/taxo"
)

// codes misses ErrDelta and ErrGamma entirely (the report lists every
// uncovered sentinel, sorted), maps ErrBeta twice, and reuses "alpha".
//
//wirecover:table
var codes = []struct { // want `wire code table covers no code for sentinel\(s\) wirecover/taxo.ErrDelta, wirecover/taxo.ErrGamma`
	Code string
	Err  error
}{
	{"alpha", taxo.ErrAlpha},
	{"beta", taxo.ErrBeta},
	{"alpha", taxo.ErrBeta}, // want "maps sentinel wirecover/taxo.ErrBeta more than once" `wire code "alpha" is reused`
}

// adHoc classifies retryability without declaring itself.
func adHoc(err error) bool {
	return errors.Is(err, taxo.ErrBeta)
}

// Dispatch fails to delegate to a declared retry set.
func Dispatch(err error) bool {
	//wirecover:retryvia
	return adHoc(err) // want "none of which is a //wirecover:retryset classifier"
}

// CodeOf keeps the table referenced.
func CodeOf(err error) string {
	for _, row := range codes {
		if errors.Is(err, row.Err) {
			return row.Code
		}
	}
	return "internal"
}
