// Package alias re-exports the fixture taxonomy, as the root els package
// re-exports internal/governor's sentinels; errtaxonomy resolves each
// alias to its canonical identity, so references through either spelling
// collapse to one sentinel.
package alias

import "wirecover/taxo"

var (
	// ErrAlpha aliases the canonical sentinel.
	ErrAlpha = taxo.ErrAlpha
	// ErrBeta aliases the canonical sentinel.
	ErrBeta = taxo.ErrBeta
	// ErrGamma aliases the canonical sentinel.
	ErrGamma = taxo.ErrGamma
	// ErrDelta aliases the canonical sentinel.
	ErrDelta = taxo.ErrDelta
)
