// Package drift declares a retry set that disagrees with wiregood's —
// through the alias spelling of the sentinels, so the comparison only
// works if aliases resolve canonically.
package drift // want "retryable classifications disagree"

import (
	"errors"

	"wirecover/alias"
	"wirecover/wiregood"
)

// Retryable drifted: it also accepts ErrBeta, which wiregood's set does
// not.
//
//wirecover:retryset
func Retryable(err error) bool {
	return errors.Is(err, alias.ErrAlpha) || errors.Is(err, alias.ErrBeta)
}

// Dispatch keeps wiregood imported.
func Dispatch(err error) bool {
	return wiregood.Retryable(err)
}
