// Package wiregood projects the fixture taxonomy correctly: a complete
// code table with distinct codes, a declared retry set, and a delegating
// dispatch — all silent.
package wiregood

import (
	"errors"

	"wirecover/taxo"
)

// codes is the wire projection of the taxonomy: every sentinel exactly
// once, every code distinct.
//
//wirecover:table
var codes = []struct {
	Code string
	Err  error
}{
	{"alpha", taxo.ErrAlpha},
	{"beta", taxo.ErrBeta},
	{"gamma", taxo.ErrGamma},
	{"delta", taxo.ErrDelta},
}

// Retryable is the declared retry classification.
//
//wirecover:retryset
func Retryable(err error) bool {
	return errors.Is(err, taxo.ErrAlpha)
}

// Dispatch delegates its retry decision to the declared classifier.
func Dispatch(err error) bool {
	if err == nil {
		return false
	}
	//wirecover:retryvia
	return Retryable(err)
}

// CodeOf keeps the table referenced.
func CodeOf(err error) string {
	for _, row := range codes {
		if errors.Is(err, row.Err) {
			return row.Code
		}
	}
	return "internal"
}
