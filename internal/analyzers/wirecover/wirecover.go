// Package wirecover proves the error taxonomy's three hand-maintained
// projections agree with the taxonomy itself, using the sentinel facts
// errtaxonomy exports:
//
//   - a composite literal annotated `//wirecover:table` (internal/wire's
//     code table) must reference every taxonomy sentinel visible to its
//     package exactly once, each paired with a distinct string code —
//     deleting one sentinel's wire code, or mapping two codes to one
//     sentinel, goes red;
//   - a function annotated `//wirecover:retryset` (els.Retryable,
//     wire.retryableErr) must classify errors purely by errors.Is against
//     taxonomy sentinels; its sentinel set is exported as a fact, and
//     every retryset visible in a package — its own and its direct
//     imports' — must be the same set, so the three copies of "what is
//     retryable" cannot drift apart silently;
//   - a call annotated `//wirecover:retryvia` (the driver's retry loop)
//     must target a retryset-annotated function, pinning the delegation:
//     swapping the driver's classification for an ad-hoc errors.Is chain
//     breaks the build.
//
// The sentinel universe is canonical: errtaxonomy resolves aliases (the
// root package re-exports internal/governor's sentinels), so
// els.ErrInternal and governor.ErrInternal are one node and the
// comparisons are exact.
package wirecover

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analyzers/errtaxonomy"
	"repro/internal/analyzers/locknames"
)

// Analyzer checks taxonomy coverage of annotated tables, retry sets, and
// retry call sites.
var Analyzer = &analysis.Analyzer{
	Name:      "wirecover",
	Doc:       "//wirecover:table literals must map every taxonomy sentinel exactly once to a unique code; //wirecover:retryset functions must agree on one retryable set; //wirecover:retryvia calls must target a retryset function",
	Requires:  []*analysis.Analyzer{errtaxonomy.Analyzer},
	FactTypes: []analysis.Fact{new(RetrySetFact), new(RetryFnFact)},
	Run:       run,
}

// RetrySetFact carries a package's retryset classifications.
type RetrySetFact struct {
	// Sets has one entry per //wirecover:retryset function.
	Sets []RetrySet
}

// AFact marks RetrySetFact as a fact type.
func (*RetrySetFact) AFact() {}

// RetrySet is one retry classification function and the sentinels it
// accepts.
type RetrySet struct {
	// Fn is the function, pkgpath.Name.
	Fn string
	// Canon is the sorted canonical sentinel set it classifies as
	// retryable.
	Canon []string
}

// RetryFnFact marks a function object as a declared retry classifier, so
// //wirecover:retryvia call sites in dependent packages can verify their
// delegation target.
type RetryFnFact struct{}

// AFact marks RetryFnFact as a fact type.
func (*RetryFnFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	dirs := locknames.CollectDirectives(pass.Fset, pass.Files)
	universe, resolve := sentinelUniverse(pass)

	var local []RetrySet
	var anchor token.Pos
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		if anchor == token.NoPos {
			anchor = f.Name.Pos()
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if _, ok := dirs.Find(d.Pos(), "wirecover:table"); ok {
					checkTable(pass, d, universe, resolve)
				}
			case *ast.FuncDecl:
				if _, ok := dirs.Find(d.Pos(), "wirecover:retryset"); ok && d.Body != nil {
					set := retrySet(pass, d, resolve)
					local = append(local, set)
					if obj := pass.TypesInfo.Defs[d.Name]; obj != nil {
						pass.ExportObjectFact(obj, &RetryFnFact{})
					}
				}
			}
		}
		checkRetryVia(pass, f, dirs)
	}

	if len(local) > 0 {
		sort.Slice(local, func(i, j int) bool { return local[i].Fn < local[j].Fn })
		pass.ExportPackageFact(&RetrySetFact{Sets: local})
	}

	checkAgreement(pass, local, anchor)
	return nil, nil
}

// sentinelUniverse assembles the canonical taxonomy visible to this
// package — its own sentinels plus those of its direct imports — and a
// resolver from referenced objects (pkgpath.Name, alias or origin) to
// canonical identities.
func sentinelUniverse(pass *analysis.Pass) (universe map[string]bool, resolve map[string]string) {
	universe = make(map[string]bool)
	resolve = make(map[string]string)
	absorb := func(path string, fact *errtaxonomy.SentinelSetFact) {
		for _, s := range fact.Sentinels {
			universe[s.Canon] = true
			resolve[path+"."+s.Name] = s.Canon
		}
	}
	var own errtaxonomy.SentinelSetFact
	if pass.ImportPackageFact(pass.Pkg, &own) {
		absorb(pass.Pkg.Path(), &own)
	}
	for _, imp := range pass.Pkg.Imports() {
		var fact errtaxonomy.SentinelSetFact
		if pass.ImportPackageFact(imp, &fact) {
			absorb(imp.Path(), &fact)
		}
	}
	return universe, resolve
}

// sentinelOf resolves an expression to a canonical sentinel identity when
// it references one.
func sentinelOf(pass *analysis.Pass, resolve map[string]string, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch ex := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = ex
	case *ast.SelectorExpr:
		id = ex.Sel
	default:
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	canon, ok := resolve[obj.Pkg().Path()+"."+obj.Name()]
	return canon, ok
}

// checkTable verifies one //wirecover:table declaration: every sentinel of
// the universe referenced exactly once, every paired string code distinct.
func checkTable(pass *analysis.Pass, decl *ast.GenDecl, universe map[string]bool, resolve map[string]string) {
	if len(universe) == 0 {
		pass.Reportf(decl.Pos(), "//wirecover:table but no taxonomy sentinels are visible to this package; import the sentinel-declaring package or drop the annotation")
		return
	}
	seen := make(map[string]int)
	codes := make(map[string]token.Pos)
	ast.Inspect(decl, func(n ast.Node) bool {
		row, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		var rowSent string
		var rowCode string
		var hasCode bool
		for _, el := range row.Elts {
			if kv, isKV := el.(*ast.KeyValueExpr); isKV {
				el = kv.Value
			}
			if canon, isSent := sentinelOf(pass, resolve, el); isSent {
				rowSent = canon
				continue
			}
			if tv, okT := pass.TypesInfo.Types[el]; okT && tv.Value != nil && tv.Value.Kind() == constant.String {
				rowCode = constant.StringVal(tv.Value)
				hasCode = true
			}
		}
		if rowSent == "" {
			return true // not a code row (the outer literal, a nested type)
		}
		seen[rowSent]++
		if seen[rowSent] > 1 {
			pass.Reportf(row.Pos(), "wire code table maps sentinel %s more than once; each sentinel has exactly one wire code", rowSent)
		}
		if hasCode {
			if prev, dup := codes[rowCode]; dup {
				pass.Reportf(row.Pos(), "wire code %q is reused (first at %s); codes must be distinct per sentinel", rowCode, pass.Fset.Position(prev))
			} else {
				codes[rowCode] = row.Pos()
			}
		}
		return false
	})
	var missing []string
	for canon := range universe {
		if seen[canon] == 0 {
			missing = append(missing, canon)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(decl.Pos(), "wire code table covers no code for sentinel(s) %s; every taxonomy sentinel needs a stable wire code (add the row, or retire the sentinel everywhere)", strings.Join(missing, ", "))
	}
}

// retrySet extracts the canonical sentinel set a //wirecover:retryset
// function classifies via errors.Is, reporting classification logic the
// analyzer cannot prove (non-sentinel errors.Is targets).
func retrySet(pass *analysis.Pass, fd *ast.FuncDecl, resolve map[string]string) RetrySet {
	set := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Is" || len(call.Args) != 2 {
			return true
		}
		if pn, ok := pass.TypesInfo.Uses[identOf(sel.X)].(*types.PkgName); !ok || pn.Imported().Path() != "errors" {
			return true
		}
		canon, ok := sentinelOf(pass, resolve, call.Args[1])
		if !ok {
			pass.Reportf(call.Args[1].Pos(), "//wirecover:retryset function %s matches against a non-sentinel error; retry classification must be expressed over taxonomy sentinels only", fd.Name.Name)
			return true
		}
		set[canon] = true
		return true
	})
	canon := make([]string, 0, len(set))
	for c := range set {
		canon = append(canon, c)
	}
	sort.Strings(canon)
	return RetrySet{Fn: pass.Pkg.Path() + "." + fd.Name.Name, Canon: canon}
}

// identOf unwraps an expression to its identifier, if it is one.
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// checkRetryVia verifies every //wirecover:retryvia site: among the calls
// the directive covers (its line may combine the delegation with other
// predicates), at least one must target a function carrying RetryFnFact.
func checkRetryVia(pass *analysis.Pass, f *ast.File, dirs *locknames.Directives) {
	type site struct {
		pos   token.Pos
		names []string
		ok    bool
	}
	sites := make(map[int]*site) // keyed by line of the covered call
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := dirs.Find(call.Pos(), "wirecover:retryvia"); !ok {
			return true
		}
		line := pass.Fset.Position(call.Pos()).Line
		s := sites[line]
		if s == nil {
			s = &site{pos: call.Pos()}
			sites[line] = s
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		var fact RetryFnFact
		if pass.ImportObjectFact(obj, &fact) {
			s.ok = true
		} else {
			s.names = append(s.names, obj.Name())
		}
		return true
	})
	lines := make([]int, 0, len(sites))
	for line := range sites {
		lines = append(lines, line)
	}
	sort.Ints(lines)
	for _, line := range lines {
		s := sites[line]
		if !s.ok {
			pass.Reportf(s.pos, "//wirecover:retryvia site calls [%s], none of which is a //wirecover:retryset classifier; retry decisions must delegate to a declared retry set",
				strings.Join(s.names, ", "))
		}
	}
}

// checkAgreement compares every retryset visible to this package — its
// own plus its direct imports' — and reports the first disagreement with
// the symmetric difference spelled out.
func checkAgreement(pass *analysis.Pass, local []RetrySet, anchor token.Pos) {
	visible := append([]RetrySet(nil), local...)
	for _, imp := range pass.Pkg.Imports() {
		var fact RetrySetFact
		if pass.ImportPackageFact(imp, &fact) {
			visible = append(visible, fact.Sets...)
		}
	}
	if len(visible) < 2 {
		return
	}
	sort.Slice(visible, func(i, j int) bool { return visible[i].Fn < visible[j].Fn })
	base := visible[0]
	for _, other := range visible[1:] {
		if diff := setDiff(base.Canon, other.Canon); diff != "" {
			pass.Reportf(anchor, "retryable classifications disagree: %s and %s differ on %s; the retry contract must be one set everywhere (DESIGN.md §12)",
				base.Fn, other.Fn, diff)
			return
		}
	}
}

// setDiff renders the symmetric difference of two sorted string sets, ""
// when equal.
func setDiff(a, b []string) string {
	inA := make(map[string]bool, len(a))
	for _, s := range a {
		inA[s] = true
	}
	inB := make(map[string]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	var only []string
	for _, s := range a {
		if !inB[s] {
			only = append(only, s+" (first only)")
		}
	}
	for _, s := range b {
		if !inA[s] {
			only = append(only, s+" (second only)")
		}
	}
	sort.Strings(only)
	return strings.Join(only, ", ")
}
