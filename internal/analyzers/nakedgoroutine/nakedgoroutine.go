// Package nakedgoroutine forbids raw go statements outside
// internal/workpool and internal/admission. Every other goroutine in the
// pipeline must be spawned through workpool (Run/Go/Async), whose workers
// recover panics into *governor.InternalError and keep the admission
// controller's slot accounting honest; a naked go statement silently opts
// out of both. _test.go files are exempt — tests spawn goroutines by
// design.
package nakedgoroutine

import (
	"go/ast"

	"repro/internal/analysis"
)

// allowedPkgs may use raw go statements: they are the spawn primitives
// themselves.
var allowedPkgs = []string{
	"internal/workpool",
	"internal/admission",
}

// Analyzer flags raw go statements outside the spawn-primitive packages.
var Analyzer = &analysis.Analyzer{
	Name: "nakedgoroutine",
	Doc:  "goroutines must be spawned via internal/workpool so panic recovery and slot accounting hold",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, allowed := range allowedPkgs {
		if analysis.PathHasSuffix(pass.Pkg.Path(), allowed) {
			return nil, nil
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "naked go statement bypasses panic recovery and slot accounting; use workpool.Run, workpool.Go, or workpool.Async")
			}
			return true
		})
	}
	return nil, nil
}
