// Package workpool stands in for the real spawn primitive: raw go
// statements are its whole point and stay legal here.
package workpool

import "sync"

func Run(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
}
