// Package admission is the other sanctioned spawner: slot bookkeeping
// goroutines are part of the accounting itself.
package admission

func grantAsync(grant chan<- struct{}) {
	go func() { grant <- struct{}{} }()
}
