package b

// Tests spawn goroutines by design; _test.go files are exempt.

func helperForTests(f func()) {
	go f()
}
