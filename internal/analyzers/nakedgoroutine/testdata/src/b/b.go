package b

import "sync"

func spawnRaw(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `naked go statement`
		defer wg.Done()
	}()
}

func spawnLoop(fs []func()) {
	for _, f := range fs {
		go f() // want `naked go statement`
	}
}

// inline stays on the calling goroutine: nothing to flag.
func inline(f func()) {
	f()
}
