package nakedgoroutine

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestNakedGoroutine(t *testing.T) {
	analysistest.Run(t, Analyzer, "b", "internal/workpool", "internal/admission")
}
