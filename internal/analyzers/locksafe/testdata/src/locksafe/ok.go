package locksafe

import "sync"

// OK bundles the accepted idioms.
type OK struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Deferred is the canonical pairing.
func (o *OK) Deferred() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.n++
}

// BothPaths releases explicitly on every path (the
// conditional-unlock-then-return shape from replica.go).
func (o *OK) BothPaths(cond bool) int {
	o.mu.Lock()
	if cond {
		o.mu.Unlock()
		return 1
	}
	o.mu.Unlock()
	return 0
}

// EitherArm releases in both arms of an if/else before falling through.
func (o *OK) EitherArm(cond bool) int {
	o.mu.Lock()
	if cond {
		o.n++
		o.mu.Unlock()
	} else {
		o.n--
		o.mu.Unlock()
	}
	return o.n
}

// AllowedSend accepts the blocking risk deliberately: the channel is
// buffered with capacity established at construction.
func (o *OK) AllowedSend(v int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	//locksafe:allow buffered channel sized to peak fan-out (fixture)
	o.ch <- v
}

// Spawn hands work to a goroutine, which holds no inherited locks — its
// channel send is fine.
func (o *OK) Spawn() {
	o.mu.Lock()
	defer o.mu.Unlock()
	go func() {
		o.ch <- 1
	}()
}

// NonBlockingSelect is the wake/drop idiom: a select with a default
// clause never parks, so holding the lock across it is fine.
func (o *OK) NonBlockingSelect() {
	o.mu.Lock()
	defer o.mu.Unlock()
	select {
	case o.ch <- o.n:
	default:
	}
}

// R covers the read-side pairing of an RWMutex.
type R struct {
	mu sync.RWMutex
	n  int
}

// Read pairs RLock with a deferred RUnlock.
func (r *R) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}
