// Package locksafe fixtures: every caught shape in bad.go, every
// accepted idiom in ok.go.
package locksafe

import "sync"

// S bundles a lock with the blocking primitives it must not be held
// across.
type S struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
	n  int
}

// LeakOnReturn forgets the unlock on the early-return path.
func (s *S) LeakOnReturn(cond bool) int {
	s.mu.Lock()
	if cond {
		return 1 // want `lock locksafe.S.mu \(acquired at .*bad.go:\d+:\d+\) may still be held on this path`
	}
	s.mu.Unlock()
	return 0
}

// LeakAtEnd never releases at all.
func (s *S) LeakAtEnd() {
	s.mu.Lock()
	s.n++
} // want "lock locksafe.S.mu .* may still be held on this path"

// SendWhileLocked blocks on an unbuffered channel under the lock.
func (s *S) SendWhileLocked(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "channel send while holding locksafe.S.mu"
}

// RecvWhileLocked blocks on a receive under the lock.
func (s *S) RecvWhileLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while holding locksafe.S.mu"
}

// WaitWhileLocked parks on a WaitGroup under the lock.
func (s *S) WaitWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `sync.WaitGroup.Wait while holding locksafe.S.mu`
}

// SelectWhileLocked parks on a select under the lock.
func (s *S) SelectWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select while holding locksafe.S.mu"
	case v := <-s.ch:
		s.n = v
	case s.ch <- s.n:
	}
}
