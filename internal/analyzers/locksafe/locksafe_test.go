package locksafe

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, Analyzer, "locksafe")
}
