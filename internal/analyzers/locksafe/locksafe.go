// Package locksafe checks the local discipline around every mutex
// acquisition, complementing lockorder's global graph:
//
//   - every Lock/RLock must be paired with a release on every path out of
//     the function — a deferred Unlock/RUnlock, or an explicit release
//     before each return (the conditional-unlock-then-return shape is
//     tracked path-sensitively);
//   - no lock may be held across a blocking channel operation (send,
//     receive, select, range-over-channel) or a sync.WaitGroup.Wait —
//     a blocked peer keeps the lock held indefinitely, turning one slow
//     consumer into a system-wide stall.
//
// `//locksafe:allow <reason>` on the acquisition or the blocking site
// accepts a deliberate exception (a send on a buffered channel whose
// capacity is established by construction, a lock handed to the caller).
//
// The walk is lexical, cloning the held set per branch; function literals
// invoked synchronously are walked in the enclosing context, goroutine
// bodies in a fresh one. The check is intra-procedural by design — the
// cross-function ordering story is lockorder's job.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analyzers/locknames"
)

// Analyzer enforces release-on-all-paths and no-blocking-while-locked.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "every Lock must be released on all return paths, and no lock may be held across channel operations or WaitGroup.Wait",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	dirs := locknames.CollectDirectives(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{
				pass:     pass,
				dirs:     dirs,
				deferred: make(map[string]bool),
				reported: make(map[reportKey]bool),
			}
			held := w.block(fd.Body.List, nil)
			if !terminates(fd.Body.List) {
				w.leaks(held, fd.Body.End())
			}
		}
	}
	return nil, nil
}

// heldLock is one acquisition still outstanding on the current path.
type heldLock struct {
	name string
	pos  token.Pos // acquisition site
	op   locknames.Op
}

type reportKey struct {
	lock string
	pos  token.Pos
}

type walker struct {
	pass     *analysis.Pass
	dirs     *locknames.Directives
	deferred map[string]bool // locks covered by a deferred release
	reported map[reportKey]bool
	inComm   bool // inside a select comm clause: the select itself was the report
}

// leaks reports every held, non-deferred, non-allowed lock at an exit
// point.
func (w *walker) leaks(held []heldLock, at token.Pos) {
	for _, h := range held {
		if w.deferred[h.name] {
			continue
		}
		if w.dirs.Allowed(h.pos, "locksafe") || w.dirs.Allowed(at, "locksafe") {
			continue
		}
		key := reportKey{h.name, at}
		if w.reported[key] {
			continue
		}
		w.reported[key] = true
		w.pass.Reportf(at, "lock %s (acquired at %s) may still be held on this path out of the function; release it before returning, defer the unlock, or annotate //locksafe:allow",
			h.name, w.pass.Fset.Position(h.pos))
	}
}

// blocking reports a blocking operation performed while any lock is held.
func (w *walker) blocking(held []heldLock, at token.Pos, what string) {
	if w.inComm {
		return
	}
	for _, h := range held {
		if w.dirs.Allowed(h.pos, "locksafe") || w.dirs.Allowed(at, "locksafe") {
			continue
		}
		key := reportKey{h.name + "#" + what, at}
		if w.reported[key] {
			continue
		}
		w.reported[key] = true
		w.pass.Reportf(at, "%s while holding %s; a blocked counterpart keeps the lock held indefinitely — release first or annotate //locksafe:allow",
			what, h.name)
	}
}

// block walks a statement list, threading the held set through it, and
// returns the held set at the end of the list.
func (w *walker) block(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *walker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		held = w.expr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.expr(e, held)
		}
		for _, e := range st.Lhs {
			held = w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = w.expr(e, held)
		}
		w.leaks(held, st.Pos())
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing loop or block; the held
		// set rejoins a path this walk also covers, so nothing to check.
	case *ast.IfStmt:
		held = w.stmt(st.Init, held)
		held = w.expr(st.Cond, held)
		thenOut := w.block(st.Body.List, clone(held))
		thenEnds := terminates(st.Body.List)
		if st.Else == nil {
			if !thenEnds {
				held = intersect(held, thenOut)
			}
			break
		}
		var elseOut []heldLock
		elseEnds := false
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseOut = w.block(e.List, clone(held))
			elseEnds = terminates(e.List)
		default: // else-if chain
			elseOut = w.stmt(st.Else, clone(held))
		}
		switch {
		case thenEnds && elseEnds:
			// both arms leave the function; code after is unreachable
		case thenEnds:
			held = elseOut
		case elseEnds:
			held = thenOut
		default:
			held = intersect(thenOut, elseOut)
		}
	case *ast.ForStmt:
		held = w.stmt(st.Init, held)
		if st.Cond != nil {
			held = w.expr(st.Cond, held)
		}
		body := w.block(st.Body.List, clone(held))
		w.stmt(st.Post, body)
		// Zero-iteration path: held unchanged.
	case *ast.RangeStmt:
		held = w.expr(st.X, held)
		if tv, ok := w.pass.TypesInfo.Types[st.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(held) > 0 {
				w.blocking(held, st.Pos(), "range over channel")
			}
		}
		w.block(st.Body.List, clone(held))
	case *ast.SwitchStmt:
		held = w.stmt(st.Init, held)
		if st.Tag != nil {
			held = w.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		held = w.stmt(st.Init, held)
		held = w.stmt(st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		// A select with a default clause never parks — the repo's
		// wake/drop idiom (admission wakeups, shipper enqueue) relies on
		// exactly that under a lock, and stays silent here.
		blocking := true
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false
			}
		}
		if blocking && len(held) > 0 {
			w.blocking(held, st.Pos(), "select")
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := clone(held)
				w.inComm = true
				inner = w.stmt(cc.Comm, inner)
				w.inComm = false
				w.block(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		held = w.block(st.List, held)
	case *ast.LabeledStmt:
		held = w.stmt(st.Stmt, held)
	case *ast.DeferStmt:
		if op, lockExpr := locknames.Classify(w.pass.TypesInfo, st.Call); op.Release() {
			if name, ok := locknames.Name(w.pass.TypesInfo, lockExpr, ""); ok {
				w.deferred[name] = true
			}
			break
		}
		held = w.expr(st.Call, held)
	case *ast.GoStmt:
		// The goroutine runs with no inherited locks; its body gets a
		// fresh walk. Arguments are evaluated on the spawner's path.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.freshLit(lit)
		}
		for _, arg := range st.Call.Args {
			held = w.expr(arg, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			w.blocking(held, st.Pos(), "channel send")
		}
		held = w.expr(st.Chan, held)
		held = w.expr(st.Value, held)
	case *ast.IncDecStmt:
		held = w.expr(st.X, held)
	}
	return held
}

func (w *walker) expr(e ast.Expr, held []heldLock) []heldLock {
	switch ex := e.(type) {
	case nil:
	case *ast.CallExpr:
		op, lockExpr := locknames.Classify(w.pass.TypesInfo, ex)
		switch {
		case op.Acquire():
			if name, ok := locknames.Name(w.pass.TypesInfo, lockExpr, ""); ok {
				held = append(held, heldLock{name: name, pos: ex.Pos(), op: op})
			}
			return held
		case op.Release():
			if name, ok := locknames.Name(w.pass.TypesInfo, lockExpr, ""); ok {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].name == name {
						held = append(held[:i:i], held[i+1:]...)
						break
					}
				}
			}
			return held
		}
		if locknames.IsWaitGroupWait(w.pass.TypesInfo, ex) && len(held) > 0 {
			w.blocking(held, ex.Pos(), "sync.WaitGroup.Wait")
		}
		held = w.expr(ex.Fun, held)
		for _, arg := range ex.Args {
			held = w.expr(arg, held)
		}
	case *ast.FuncLit:
		// Synchronously invoked (or stored) literal: its body must keep
		// its own locks balanced, starting from an empty held set — locks
		// of the enclosing function cannot be released by a literal that
		// may run later.
		w.freshLit(ex)
	case *ast.UnaryExpr:
		if ex.Op == token.ARROW && len(held) > 0 {
			w.blocking(held, ex.Pos(), "channel receive")
		}
		held = w.expr(ex.X, held)
	case *ast.ParenExpr:
		held = w.expr(ex.X, held)
	case *ast.BinaryExpr:
		held = w.expr(ex.X, held)
		held = w.expr(ex.Y, held)
	case *ast.SelectorExpr:
		held = w.expr(ex.X, held)
	case *ast.IndexExpr:
		held = w.expr(ex.X, held)
		held = w.expr(ex.Index, held)
	case *ast.SliceExpr:
		held = w.expr(ex.X, held)
	case *ast.StarExpr:
		held = w.expr(ex.X, held)
	case *ast.TypeAssertExpr:
		held = w.expr(ex.X, held)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			held = w.expr(el, held)
		}
	case *ast.KeyValueExpr:
		held = w.expr(ex.Value, held)
	}
	return held
}

// freshLit walks a function literal's body in its own context: fresh held
// set, fresh deferred set, shared report dedup.
func (w *walker) freshLit(lit *ast.FuncLit) {
	inner := &walker{
		pass:     w.pass,
		dirs:     w.dirs,
		deferred: make(map[string]bool),
		reported: w.reported,
	}
	held := inner.block(lit.Body.List, nil)
	if !terminates(lit.Body.List) {
		inner.leaks(held, lit.Body.End())
	}
}

// terminates reports whether a statement list definitely leaves the
// enclosing function (trailing return, panic, or both-armed terminating
// if) — the paths after it are dead and carry no leak to report.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if last.Else == nil {
			return false
		}
		elseBlock, ok := last.Else.(*ast.BlockStmt)
		if !ok {
			return false
		}
		return terminates(last.Body.List) && terminates(elseBlock.List)
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

func clone(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// intersect keeps the locks held on both paths (same lock name), in
// a-order — a lock released on either path no longer needs releasing on
// the joined path it was released on, and the other path reports for
// itself.
func intersect(a, b []heldLock) []heldLock {
	names := make(map[string]bool, len(b))
	for _, h := range b {
		names[h.name] = true
	}
	var out []heldLock
	for _, h := range a {
		if names[h.name] {
			out = append(out, h)
		}
	}
	return out
}
