package admission

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/governor"
)

// The queue timeout and the caller's deadline race while a query waits
// for a slot; whichever fires first must yield its own typed error, and
// the wait must be charged to the right ledger — the queue-timeout shed
// counter for the server's policy, the caller's wall-clock budget error
// for the client's deadline.

// Caller deadline < queue timeout: the caller's budget fires first, so
// the waiter gets the wall-clock BudgetError (errors.Is
// ErrBudgetExceeded) with the wait charged against the caller's budget,
// and the controller books a cancellation — NOT a queue-timeout shed,
// which would misattribute the failure to server-side overload policy.
func TestCallerDeadlineBeatsQueueTimeout(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, QueueTimeout: 5 * time.Second})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	const deadline = 25 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err = c.Acquire(ctx)
	waited := time.Since(start)

	var be *governor.BudgetError
	if !errors.As(err, &be) || be.Resource != "wall-clock" {
		t.Fatalf("err = %v, want a wall-clock BudgetError", err)
	}
	if !errors.Is(err, governor.ErrBudgetExceeded) {
		t.Fatalf("err = %v does not match ErrBudgetExceeded", err)
	}
	if errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("err = %v also matches ErrOverloaded; the classes must stay distinct", err)
	}
	if got := time.Duration(be.Used); got < deadline {
		t.Errorf("budget error charged %v of wait, want at least the %v deadline", got, deadline)
	}
	if waited < deadline {
		t.Errorf("acquire returned after %v, before the %v deadline", waited, deadline)
	}
	st := c.Snapshot()
	if st.ShedQueueTimeout != 0 {
		t.Errorf("caller's deadline was booked as a queue-timeout shed: %+v", st)
	}
	if st.CanceledWaiting != 1 {
		t.Errorf("CanceledWaiting = %d, want 1: %+v", st.CanceledWaiting, st)
	}
}

// Queue timeout < caller deadline: the server's shed policy fires first,
// so the waiter gets the typed overload error naming the queue timeout,
// with the waited duration recorded and the shed booked to the
// queue-timeout counter — NOT a cancellation, which would hide an
// overloaded server from its own shed-rate SLO.
func TestQueueTimeoutBeatsCallerDeadline(t *testing.T) {
	const queueTimeout = 25 * time.Millisecond
	c := New(Config{MaxConcurrent: 1, QueueTimeout: queueTimeout})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = c.Acquire(ctx)

	var oe *governor.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue timeout" {
		t.Fatalf("err = %v, want a queue-timeout OverloadError", err)
	}
	if !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("err = %v does not match ErrOverloaded", err)
	}
	if errors.Is(err, governor.ErrBudgetExceeded) || errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("err = %v also matches a caller-side class; the shed must stay server-attributed", err)
	}
	if oe.Waited < queueTimeout {
		t.Errorf("shed after %v of waiting, want at least the %v queue timeout", oe.Waited, queueTimeout)
	}
	st := c.Snapshot()
	if st.ShedQueueTimeout != 1 {
		t.Errorf("ShedQueueTimeout = %d, want 1: %+v", st.ShedQueueTimeout, st)
	}
	if st.CanceledWaiting != 0 {
		t.Errorf("queue-timeout shed was booked as a cancellation: %+v", st)
	}
}

// An admitted query's queue wait lands in the admission ledger
// (Stats.QueueWait, Slot.Waited) and in the governor's queue-wait
// accounting — but never in its wall-clock budget, whose clock starts at
// admission. A query that queued longer than its entire wall-clock budget
// must still run.
func TestQueueWaitChargedToQueueLedgerNotWallClock(t *testing.T) {
	c := New(Config{MaxConcurrent: 1})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const hold = 60 * time.Millisecond
	go func() {
		time.Sleep(hold)
		s.Release()
	}()
	s2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	defer s2.Release()
	if s2.Waited() < hold/2 {
		t.Fatalf("Waited() = %v, want a real queue wait (slot was held %v)", s2.Waited(), hold)
	}
	if st := c.Snapshot(); st.QueueWait < s2.Waited() {
		t.Errorf("Stats.QueueWait = %v < slot's own wait %v", st.QueueWait, s2.Waited())
	}

	// The governor's wall-clock budget is smaller than the wait the query
	// already survived; charging the wait to the right ledger means the
	// budget is still intact.
	gov := governor.New(s2.Context(), governor.Limits{Timeout: hold / 2})
	gov.RecordQueueWait(s2.Waited())
	if gerr := gov.Err(); gerr != nil {
		t.Fatalf("queue wait consumed the wall-clock budget: %v", gerr)
	}
	if gov.QueueWait() != s2.Waited() {
		t.Errorf("governor QueueWait = %v, want the slot's %v", gov.QueueWait(), s2.Waited())
	}
}
