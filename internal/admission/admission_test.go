package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/governor"
)

// With admission off (zero config) Acquire never blocks and never sheds.
func TestZeroConfigAdmitsEverything(t *testing.T) {
	c := New(Config{})
	var slots []*Slot
	for i := 0; i < 50; i++ {
		s, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if got := c.Snapshot().InFlight; got != 50 {
		t.Fatalf("inflight %d, want 50", got)
	}
	for _, s := range slots {
		s.Release()
		s.Release() // idempotent
	}
	if got := c.Snapshot().InFlight; got != 0 {
		t.Fatalf("inflight %d after release, want 0", got)
	}
}

// MaxConcurrent admits exactly that many at once; waiters get slots as
// they free; a full queue sheds with ErrOverloaded("queue full").
func TestConcurrencyCapAndQueueFull(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxQueue: 1})
	s1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fills the queue.
	admitted := make(chan *Slot)
	go func() {
		s, err := c.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		admitted <- s
	}()
	// Wait until the goroutine is queued.
	for c.Snapshot().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	// The queue is now full: the next Acquire sheds immediately.
	_, err = c.Acquire(context.Background())
	var oe *governor.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue full" {
		t.Fatalf("err = %v, want queue-full OverloadError", err)
	}
	if !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("queue-full error does not match ErrOverloaded: %v", err)
	}
	s1.Release()
	s3 := <-admitted
	if w := s3.Waited(); w <= 0 {
		t.Errorf("queued slot reports zero wait %v", w)
	}
	s2.Release()
	s3.Release()
	st := c.Snapshot()
	if st.InFlight != 0 || st.Admitted != 3 || st.ShedQueueFull != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// QueueTimeout sheds a waiter that cannot get a slot in time.
func TestQueueTimeoutSheds(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, QueueTimeout: 20 * time.Millisecond})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	_, err = c.Acquire(context.Background())
	var oe *governor.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue timeout" {
		t.Fatalf("err = %v, want queue-timeout OverloadError", err)
	}
	if c.Snapshot().ShedQueueTimeout != 1 {
		t.Fatalf("stats %+v", c.Snapshot())
	}
}

// A waiter whose own context dies while queued gets ErrCanceled, not an
// overload error.
func TestCanceledWhileQueued(t *testing.T) {
	c := New(Config{MaxConcurrent: 1})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for c.Snapshot().Waiting == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err = c.Acquire(ctx)
	if !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// Close drains: new Acquires fail fast with ErrClosed, in-flight queries
// finish, and after Close returns nothing is in flight.
func TestCloseDrains(t *testing.T) {
	c := New(Config{MaxConcurrent: 4})
	var done atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		s, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Slot) {
			defer wg.Done()
			time.Sleep(10 * time.Millisecond)
			done.Add(1)
			s.Release()
		}(s)
	}
	if err := c.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 4 {
		t.Fatalf("Close returned with %d/4 queries finished", done.Load())
	}
	if got := c.Snapshot().InFlight; got != 0 {
		t.Fatalf("inflight %d after Close", got)
	}
	_, err := c.Acquire(context.Background())
	if !errors.Is(err, governor.ErrClosed) {
		t.Fatalf("post-Close Acquire err = %v, want ErrClosed", err)
	}
	wg.Wait()
}

// When Close's context expires mid-drain, stragglers' serving contexts are
// canceled and Close still waits for them to release before returning.
func TestCloseCancelsStragglers(t *testing.T) {
	c := New(Config{MaxConcurrent: 1})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		<-s.Context().Done() // straggler: runs until drained cancels it
		s.Release()
		close(released)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = c.Close(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close err = %v, want DeadlineExceeded (drain deadline hit)", err)
	}
	select {
	case <-released:
	default:
		t.Fatal("Close returned before the straggler released its slot")
	}
	if got := c.Snapshot().InFlight; got != 0 {
		t.Fatalf("inflight %d after forced drain", got)
	}
}

// Waiters queued at Close time fail fast instead of hanging.
func TestCloseRejectsWaiters(t *testing.T) {
	c := New(Config{MaxConcurrent: 1})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background())
		errCh <- err
	}()
	for c.Snapshot().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		s.Release()
	}()
	if err := c.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, governor.ErrClosed) {
		t.Fatalf("queued waiter err = %v, want ErrClosed", err)
	}
}

// Slot accounting stays exact under a concurrent storm of admissions,
// sheds, and releases.
func TestSlotAccountingUnderStorm(t *testing.T) {
	c := New(Config{MaxConcurrent: 3, MaxQueue: 4, QueueTimeout: 5 * time.Millisecond})
	var wg sync.WaitGroup
	var admitted, shed atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s, err := c.Acquire(context.Background())
				if err != nil {
					if !errors.Is(err, governor.ErrOverloaded) {
						t.Errorf("unexpected error %v", err)
					}
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				time.Sleep(time.Duration(j%3) * 100 * time.Microsecond)
				s.Release()
			}
		}()
	}
	wg.Wait()
	st := c.Snapshot()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
	if int64(st.Admitted) != admitted.Load() {
		t.Fatalf("admitted counter %d != observed %d", st.Admitted, admitted.Load())
	}
	if int64(st.ShedQueueFull+st.ShedQueueTimeout) != shed.Load() {
		t.Fatalf("shed counters %+v != observed %d", st, shed.Load())
	}
	if admitted.Load()+shed.Load() != 16*50 {
		t.Fatalf("lost calls: %d admitted + %d shed != %d", admitted.Load(), shed.Load(), 16*50)
	}
}

// Waiters are admitted strictly in arrival order: a freed slot goes to the
// longest-waiting query, never to whoever wins a wake-up race.
func TestAcquireFIFOOrder(t *testing.T) {
	c := New(Config{MaxConcurrent: 1})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	order := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.Acquire(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			s.Release()
		}(i)
		// Wait until waiter i is queued before starting i+1, so arrival
		// order is deterministic.
		for c.Snapshot().Waiting != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	s.Release()
	wg.Wait()
	close(order)
	pos := 0
	for got := range order {
		if got != pos {
			t.Fatalf("admission order violated: waiter %d admitted at position %d", got, pos)
		}
		pos++
	}
}

// A new arrival never barges past the queue: even at the instant a slot is
// free, a queued waiter gets it first.
func TestAcquireNoBarging(t *testing.T) {
	c := New(Config{MaxConcurrent: 1})
	s, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan *Slot, 1)
	go func() {
		s, err := c.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		first <- s
	}()
	for c.Snapshot().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Release()
	// The freed slot belongs to the queued waiter; a newcomer must queue
	// behind it, not steal it.
	got := <-first
	got.Release()
	s2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s2.Release()
}

// Precheck fails fast while the breaker is cooling down but never books
// the probe: only Allow does, so a query shed between Precheck and Allow
// leaves the breaker able to probe again.
func TestBreakerPrecheckDoesNotConsumeProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 5 * time.Millisecond})
	internal := governor.NewInternal("boom", nil)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(internal)
	// Cooling down: Precheck rejects.
	if err := b.Precheck(); !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("cooling Precheck err = %v, want ErrOverloaded", err)
	}
	time.Sleep(10 * time.Millisecond)
	// Cooldown over: Precheck passes any number of times without starting
	// the probe.
	for i := 0; i < 3; i++ {
		if err := b.Precheck(); err != nil {
			t.Fatalf("post-cooldown Precheck %d: %v", i, err)
		}
	}
	if st := b.Snapshot(); st.Probes != 0 || st.State != BreakerOpen {
		t.Fatalf("Precheck mutated the breaker: %+v", st)
	}
	// Allow books the probe; a concurrent Precheck now fails fast.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if st := b.Snapshot(); st.Probes != 1 || st.State != BreakerHalfOpen {
		t.Fatalf("Allow did not book the probe: %+v", st)
	}
	if err := b.Precheck(); !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("Precheck during probe err = %v, want ErrOverloaded", err)
	}
	b.Record(nil)
	if st := b.Snapshot(); st.State != BreakerClosed {
		t.Fatalf("after healthy probe: %+v", st)
	}
}

// A canceled query is inconclusive: it neither trips nor heals the
// breaker, and a canceled probe returns the breaker to half-open so the
// next query probes again.
func TestBreakerCanceledOutcomeIsInconclusive(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Millisecond})
	internal := governor.NewInternal("boom", nil)
	canceled := fmt.Errorf("%w: %w", governor.ErrCanceled, context.Canceled)
	// One internal error, then a cancellation: the consecutive run must
	// survive the cancellation and the next internal error opens.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(internal)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(canceled)
	if st := b.Snapshot(); st.ConsecutiveInternal != 1 {
		t.Fatalf("cancellation reset the consecutive run: %+v", st)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(internal)
	if st := b.Snapshot(); st.State != BreakerOpen {
		t.Fatalf("breaker not open after 2 interleaved internal errors: %+v", st)
	}
	time.Sleep(5 * time.Millisecond)
	// The probe is canceled mid-flight: back to half-open, and the next
	// query becomes a fresh probe instead of failing fast forever.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(canceled)
	if st := b.Snapshot(); st.State != BreakerHalfOpen || st.Probes != 1 {
		t.Fatalf("after canceled probe: %+v", st)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("fresh probe rejected after canceled probe: %v", err)
	}
	b.Record(nil)
	if st := b.Snapshot(); st.State != BreakerClosed {
		t.Fatalf("after healthy second probe: %+v", st)
	}
}

// The breaker opens after Threshold consecutive internal errors, rejects
// while open, half-opens after the cooldown, and a healthy probe closes it.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Millisecond})
	internal := governor.NewInternal("boom", nil)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("allow %d: %v", i, err)
		}
		b.Record(internal)
	}
	st := b.Snapshot()
	if st.State != BreakerOpen || st.Opens != 1 {
		t.Fatalf("after 3 internal errors: %+v", st)
	}
	if err := b.Allow(); !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("open breaker allowed a query: %v", err)
	}
	time.Sleep(15 * time.Millisecond)
	// Half-open: the first Allow is the probe, the second is rejected.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("second query allowed during probe: %v", err)
	}
	b.Record(nil) // healthy probe
	if st := b.Snapshot(); st.State != BreakerClosed {
		t.Fatalf("after healthy probe: %+v", st)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

// A failed probe re-opens the breaker for another cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 5 * time.Millisecond})
	internal := governor.NewInternal("boom", nil)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(internal)
	time.Sleep(10 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(internal)
	st := b.Snapshot()
	if st.State != BreakerOpen || st.Opens != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
}

// Non-internal errors never trip the breaker.
func TestBreakerIgnoresNonInternalErrors(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute})
	for _, err := range []error{governor.ErrParse, governor.ErrBadStats, governor.ErrCanceled, governor.ErrBudgetExceeded} {
		if allowErr := b.Allow(); allowErr != nil {
			t.Fatal(allowErr)
		}
		b.Record(err)
	}
	if st := b.Snapshot(); st.State != BreakerClosed || st.Opens != 0 {
		t.Fatalf("non-internal errors tripped the breaker: %+v", st)
	}
}
