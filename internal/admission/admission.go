// Package admission bounds how many queries a system serves at once and
// sheds load when the box is saturated.
//
// The Controller is a semaphore plus a FIFO deadline queue. A query calls
// Acquire before doing any work: if a slot is free and nobody is queued it
// is admitted immediately; otherwise it waits until a slot frees, its
// queue deadline (Config.QueueTimeout) elapses, its own context dies, or
// the waiting queue is already full (Config.MaxQueue) — the latter two
// shed the query with governor.ErrOverloaded so callers can distinguish
// "the system is busy, resubmit later" from a failure of the query itself.
// Waiters are admitted strictly in arrival order: each waiter owns a grant
// channel, a freed slot wakes only the head of the queue (no thundering
// herd), and a newly arriving query never barges past the queue even when
// a slot is momentarily free.
//
// Every admitted query runs under a controller-owned cancelable context,
// which is what makes graceful drain possible: Close stops admitting
// (subsequent Acquires fail fast with governor.ErrClosed), waits for
// in-flight queries to finish, and when its own context expires cancels
// the stragglers' contexts so they abort with ErrCanceled within a bounded
// number of governor ticks. After Close returns, zero queries are in
// flight.
//
// Slot accounting is exact: every Acquire that returns a nil error is
// balanced by exactly one Release, and the chaos soak harness asserts the
// balance across thousands of concurrent admissions, sheds, and drains.
package admission

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/governor"
)

// Config bounds concurrency and queueing. The zero value admits everything
// immediately (no limits), which is the fast path for single-client use.
type Config struct {
	// MaxConcurrent caps admitted queries; 0 disables admission control.
	MaxConcurrent int
	// MaxQueue caps waiting queries; 0 means unbounded.
	MaxQueue int
	// QueueTimeout sheds queries that wait longer than this; 0 waits
	// until the query's own context dies.
	QueueTimeout time.Duration
}

// Stats is a point-in-time snapshot of the controller's counters.
type Stats struct {
	// Admitted counts queries that got a slot (including ones still
	// running).
	Admitted uint64
	// ShedQueueFull and ShedQueueTimeout count queries shed because the
	// waiting queue was full or the queue deadline elapsed.
	ShedQueueFull, ShedQueueTimeout uint64
	// RejectedClosed counts queries refused because the system was closed.
	RejectedClosed uint64
	// CanceledWaiting counts queries whose own context died while queued.
	CanceledWaiting uint64
	// QueueWait is the cumulative time admitted queries spent waiting.
	QueueWait time.Duration
	// InFlight and Waiting are current gauges.
	InFlight, Waiting int
}

// Slot is one admission: the token an admitted query holds while it runs.
type Slot struct {
	c        *Controller
	ctx      context.Context
	cancel   context.CancelFunc
	id       uint64
	waited   time.Duration
	released bool
	//lockorder:level 32
	mu sync.Mutex
}

// Context is the query's serving context: the caller's context wrapped
// with controller-owned cancellation so drain can abort stragglers.
func (s *Slot) Context() context.Context { return s.ctx }

// Waited is how long the query queued before admission.
func (s *Slot) Waited() time.Duration { return s.waited }

// Release frees the slot. It is idempotent, so a deferred Release is safe
// even on panic paths.
func (s *Slot) Release() {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return
	}
	s.released = true
	s.mu.Unlock()
	s.cancel()
	s.c.release(s.id)
}

// waiter is one queued Acquire: a buffered grant channel the controller
// signals when the waiter should recheck admission. Only the head of the
// queue is ever signaled.
type waiter struct {
	ch chan struct{}
}

// Controller is the admission gate of one system. The zero Controller is
// not ready; use New.
type Controller struct {
	//lockorder:level 30
	mu       sync.Mutex
	cfg      Config
	inflight int
	waiters  *list.List // of *waiter, FIFO: front is next to admit
	closed   bool
	drained  chan struct{} // closed once closed && inflight == 0
	cancels  map[uint64]context.CancelFunc
	nextID   uint64

	admitted        uint64
	shedFull        uint64
	shedTimeout     uint64
	rejectedClosed  uint64
	canceledWaiting uint64
	queueWaitNanos  int64
}

// New creates a controller with the given config.
func New(cfg Config) *Controller {
	return &Controller{
		cfg:     cfg,
		waiters: list.New(),
		drained: make(chan struct{}),
		cancels: make(map[uint64]context.CancelFunc),
	}
}

// SetConfig replaces the admission limits. Growing MaxConcurrent wakes
// queued waiters (front first — admissions cascade in FIFO order);
// shrinking it never evicts already-admitted queries.
func (c *Controller) SetConfig(cfg Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg = cfg
	c.wakeLocked()
}

// Closed reports whether Close has been called.
func (c *Controller) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// admittableLocked reports whether a slot is free. Callers hold c.mu.
func (c *Controller) admittableLocked() bool {
	return c.cfg.MaxConcurrent <= 0 || c.inflight < c.cfg.MaxConcurrent
}

// wakeLocked grants the head waiter a wake-up when it could make progress
// (a slot is free, or the controller closed and the waiter must fail
// fast). The grant channel is buffered, so a pending grant is never lost
// and granting an already-granted waiter is a no-op. Callers hold c.mu.
func (c *Controller) wakeLocked() {
	e := c.waiters.Front()
	if e == nil {
		return
	}
	if !c.closed && !c.admittableLocked() {
		return
	}
	select {
	case e.Value.(*waiter).ch <- struct{}{}:
	default:
	}
}

// dequeueLocked removes a waiter that stopped waiting (admitted, shed,
// canceled, or rejected at close) and passes any progress it could have
// made on to the new head. Callers hold c.mu.
func (c *Controller) dequeueLocked(e *list.Element) {
	c.waiters.Remove(e)
	c.wakeLocked()
}

// admitLocked books one admission. Callers hold c.mu.
func (c *Controller) admitLocked(ctx context.Context, waited time.Duration) *Slot {
	c.inflight++
	c.admitted++
	c.queueWaitNanos += int64(waited)
	c.nextID++
	id := c.nextID
	sctx, cancel := context.WithCancel(ctx)
	c.cancels[id] = cancel
	return &Slot{c: c, ctx: sctx, cancel: cancel, id: id, waited: waited}
}

// Acquire admits the query or sheds it. On success the returned Slot must
// be Released exactly once (Release is idempotent). Admission is FIFO:
// a query only bypasses the queue when a slot is free and nobody is
// waiting. The error taxonomy: governor.ErrClosed after Close,
// governor.ErrOverloaded (as a *governor.OverloadError) when shed,
// governor.ErrCanceled (or the wall-clock BudgetError) when the caller's
// own context dies while queued.
func (c *Controller) Acquire(ctx context.Context) (*Slot, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:allow nil-context compatibility default
	}
	start := time.Now()
	c.mu.Lock()
	if c.closed {
		c.rejectedClosed++
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: draining, not admitting new queries", governor.ErrClosed)
	}
	if c.cfg.MaxConcurrent <= 0 {
		// Fast path: admission control off.
		s := c.admitLocked(ctx, 0)
		c.mu.Unlock()
		return s, nil
	}
	if c.waiters.Len() == 0 && c.admittableLocked() {
		s := c.admitLocked(ctx, time.Since(start))
		c.mu.Unlock()
		return s, nil
	}
	cfg := c.cfg
	if cfg.MaxQueue > 0 && c.waiters.Len() >= cfg.MaxQueue {
		c.shedFull++
		c.mu.Unlock()
		return nil, &governor.OverloadError{
			Reason: "queue full", MaxConcurrent: cfg.MaxConcurrent, MaxQueue: cfg.MaxQueue,
		}
	}
	w := &waiter{ch: make(chan struct{}, 1)}
	elem := c.waiters.PushBack(w)
	c.wakeLocked() // we may be the new head with a slot already free
	c.mu.Unlock()

	var timeout <-chan time.Time
	if cfg.QueueTimeout > 0 {
		t := time.NewTimer(cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	for {
		select {
		case <-w.ch:
			c.mu.Lock()
			if c.closed {
				c.dequeueLocked(elem)
				c.rejectedClosed++
				c.mu.Unlock()
				return nil, fmt.Errorf("%w: draining, not admitting new queries", governor.ErrClosed)
			}
			if c.waiters.Front() == elem && c.admittableLocked() {
				c.dequeueLocked(elem) // cascades any remaining capacity to the next head
				s := c.admitLocked(ctx, time.Since(start))
				c.mu.Unlock()
				return s, nil
			}
			// Stale grant (the slot vanished under a SetConfig shrink):
			// keep our place in line and wait for the next one.
			c.mu.Unlock()
		case <-timeout:
			c.mu.Lock()
			c.dequeueLocked(elem)
			c.shedTimeout++
			c.mu.Unlock()
			return nil, &governor.OverloadError{
				Reason: "queue timeout", MaxConcurrent: cfg.MaxConcurrent, MaxQueue: cfg.MaxQueue,
				Waited: time.Since(start),
			}
		case <-ctx.Done():
			c.mu.Lock()
			c.dequeueLocked(elem)
			c.canceledWaiting++
			c.mu.Unlock()
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, &governor.BudgetError{Resource: "wall-clock", Used: int64(time.Since(start))}
			}
			return nil, fmt.Errorf("%w: %w", governor.ErrCanceled, ctx.Err())
		}
	}
}

// release returns a slot and wakes the head waiter; the last release after
// Close completes the drain.
func (c *Controller) release(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cancels, id)
	c.inflight--
	if c.inflight < 0 {
		panic("admission: release without acquire")
	}
	c.wakeLocked()
	if c.closed && c.inflight == 0 {
		select {
		case <-c.drained:
		default:
			close(c.drained)
		}
	}
}

// Close stops admitting (subsequent Acquires fail with governor.ErrClosed)
// and waits for in-flight queries to drain. If ctx expires first, the
// stragglers' serving contexts are canceled — they abort with ErrCanceled
// within a bounded number of governor ticks — and Close keeps waiting for
// them to actually release. Close is idempotent; every call waits for the
// same drain.
func (c *Controller) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() //ctxflow:allow nil-context compatibility default
	}
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		// Wake every waiter directly: all of them must observe closed and
		// fail fast, not just the head.
		for e := c.waiters.Front(); e != nil; e = e.Next() {
			select {
			case e.Value.(*waiter).ch <- struct{}{}:
			default:
			}
		}
		if c.inflight == 0 {
			close(c.drained)
		}
	}
	drained := c.drained
	c.mu.Unlock()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	// Deadline hit: cancel stragglers, then wait for them to release.
	c.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(c.cancels))
	for _, cancel := range c.cancels {
		cancels = append(cancels, cancel)
	}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	<-drained
	return ctx.Err()
}

// Snapshot returns the controller's counters.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Admitted:         c.admitted,
		ShedQueueFull:    c.shedFull,
		ShedQueueTimeout: c.shedTimeout,
		RejectedClosed:   c.rejectedClosed,
		CanceledWaiting:  c.canceledWaiting,
		QueueWait:        time.Duration(c.queueWaitNanos),
		InFlight:         c.inflight,
		Waiting:          c.waiters.Len(),
	}
}
