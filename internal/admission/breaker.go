// The circuit breaker protects a struggling system from a retry storm: a
// run of consecutive internal errors (recovered panics, injected faults —
// the "this box is broken" class, never parse or budget failures) opens
// the breaker, and while it is open queries fail fast with
// governor.ErrOverloaded instead of piling onto a pipeline that is
// currently returning garbage. After a cooldown the breaker half-opens and
// lets exactly one probe query through; a healthy probe closes the
// breaker, a failed probe re-opens it for another cooldown.
package admission

import (
	"errors"
	"sync"
	"time"

	"repro/internal/governor"
)

// BreakerConfig configures the circuit breaker. The zero value disables it.
type BreakerConfig struct {
	// Threshold is how many consecutive internal errors open the breaker;
	// 0 disables the breaker entirely.
	Threshold int
	// Cooldown is how long the breaker stays open before half-opening to
	// probe.
	Cooldown time.Duration
}

// BreakerState names the breaker's position.
type BreakerState int

const (
	// BreakerClosed is the healthy state: queries flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails queries fast after a run of internal errors.
	BreakerOpen
	// BreakerHalfOpen lets one probe query through after the cooldown.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerStats is a point-in-time snapshot of the breaker's counters.
type BreakerStats struct {
	// State is the breaker's current position.
	State BreakerState
	// ConsecutiveInternal is the current run of internal errors.
	ConsecutiveInternal int
	// Opens counts closed→open transitions (including re-opens after a
	// failed probe).
	Opens uint64
	// Rejections counts queries failed fast while open.
	Rejections uint64
	// Probes counts half-open probe queries let through.
	Probes uint64
}

// Breaker is a consecutive-internal-error circuit breaker. A nil *Breaker
// is valid and always allows.
type Breaker struct {
	//lockorder:level 34
	mu          sync.Mutex
	cfg         BreakerConfig
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
	opens       uint64
	rejections  uint64
	probes      uint64
}

// NewBreaker creates a breaker; a zero cfg.Threshold disables it.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg}
}

// SetConfig replaces the breaker policy and resets the breaker to closed.
func (b *Breaker) SetConfig(cfg BreakerConfig) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cfg = cfg
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
}

// Precheck is the fail-fast gate taken before the query enters the
// admission queue: it rejects (counting the rejection) while the breaker
// is cooling down or another probe is in flight, and otherwise changes
// nothing — in particular it never books the probe, so a query that
// passes Precheck but is then shed by admission leaves the breaker
// exactly as it found it. Allow, called after admission succeeds, is
// what commits the probe.
func (b *Breaker) Precheck() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.Threshold <= 0 {
		return nil
	}
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cfg.Cooldown {
			return nil // probe candidate: let it try admission
		}
	case BreakerHalfOpen:
		if !b.probing {
			return nil
		}
	}
	b.rejections++
	return &governor.OverloadError{Reason: "circuit breaker open"}
}

// Allow gates one query. It returns nil to let the query run (counting it
// as the probe when half-open) or a *governor.OverloadError when the
// breaker is open. Callers must balance every nil return with exactly one
// Record of the query's final outcome; call it only once the query holds
// an admission slot, so a shed query can never strand the probe.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.Threshold <= 0 {
		return nil
	}
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			b.probes++
			return nil
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			b.probes++
			return nil
		}
	}
	b.rejections++
	return &governor.OverloadError{Reason: "circuit breaker open"}
}

// Record reports one allowed query's final outcome — callers invoke it
// once per query, after any retry loop, so a query whose early attempts
// failed but whose retry succeeded counts as one success, and a run of
// failing attempts inside a single query counts as one failure. Only
// internal errors (governor.ErrInternal) count as failures: a parse error
// or an exhausted budget says nothing about the health of the pipeline. A
// canceled query is inconclusive — it neither trips nor heals the breaker,
// and a canceled probe returns the breaker to half-open so the next query
// probes again. A successful (or non-internal) probe closes a half-open
// breaker; a failed probe re-opens it.
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.Threshold <= 0 {
		return
	}
	switch {
	case err != nil && errors.Is(err, governor.ErrInternal):
		b.consecutive++
		switch {
		case b.state == BreakerHalfOpen:
			// Failed probe: back to open for another cooldown.
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.probing = false
			b.opens++
		case b.state == BreakerClosed && b.consecutive >= b.cfg.Threshold:
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.opens++
		}
	case err != nil && errors.Is(err, governor.ErrCanceled):
		// Inconclusive: the query never finished, so it proves nothing
		// about pipeline health either way. Release the probe so the next
		// query can try.
		if b.state == BreakerHalfOpen {
			b.probing = false
		}
	default:
		b.consecutive = 0
		if b.state == BreakerHalfOpen {
			b.state = BreakerClosed
			b.probing = false
		}
	}
}

// Snapshot returns the breaker's counters.
func (b *Breaker) Snapshot() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state,
		ConsecutiveInternal: b.consecutive,
		Opens:               b.opens,
		Rejections:          b.rejections,
		Probes:              b.probes,
	}
}
