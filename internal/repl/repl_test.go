package repl

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runLines executes the lines and returns the combined output.
func runLines(t *testing.T, lines ...string) string {
	t.Helper()
	var out strings.Builder
	p := New(&out)
	for _, l := range lines {
		quit, err := p.Execute(l)
		if err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		if quit {
			break
		}
	}
	return out.String()
}

func TestQuitAndComments(t *testing.T) {
	var out strings.Builder
	p := New(&out)
	for _, l := range []string{"", "-- comment", "# another"} {
		if quit, _ := p.Execute(l); quit {
			t.Errorf("%q should not quit", l)
		}
	}
	for _, l := range []string{"quit", "exit", "\\q"} {
		p := New(&out)
		if quit, _ := p.Execute(l); !quit {
			t.Errorf("%q should quit", l)
		}
	}
}

func TestHelpAndAlgos(t *testing.T) {
	out := runLines(t, "help", "algos")
	if !strings.Contains(out, "declare") || !strings.Contains(out, "ELS") {
		t.Errorf("help/algos output:\n%s", out)
	}
}

func TestDeclareAndEstimate(t *testing.T) {
	out := runLines(t,
		"declare R1 100 x=10",
		"declare R2 1000 y=100",
		"declare R3 1000 z=1000",
		"estimate SELECT COUNT(*) FROM R1, R2, R3 WHERE x = y AND y = z",
	)
	if !strings.Contains(out, "estimated size: 1000") {
		t.Errorf("output:\n%s", out)
	}
}

func TestAlgoSwitching(t *testing.T) {
	out := runLines(t,
		"declare R1 100 x=10",
		"declare R2 1000 y=100",
		"declare R3 1000 z=1000",
		"algo SM+PTC",
		"estimate SELECT COUNT(*) FROM R2, R3, R1 WHERE R1.x = R2.y AND R2.y = R3.z",
		"algo nonsense",
		"algo",
	)
	if !strings.Contains(out, "algorithm: SM+PTC") {
		t.Errorf("algo switch missing:\n%s", out)
	}
	if !strings.Contains(out, "unknown algorithm") {
		t.Errorf("bad algo not reported:\n%s", out)
	}
	if !strings.Contains(out, "current: SM+PTC") {
		t.Errorf("current algo not shown:\n%s", out)
	}
}

func TestTablesAndStats(t *testing.T) {
	out := runLines(t,
		"tables",
		"declare R 50 a=5 b=10",
		"tables",
		"stats R",
		"stats missing",
		"stats",
	)
	if !strings.Contains(out, "no tables") {
		t.Errorf("empty tables not reported:\n%s", out)
	}
	if !strings.Contains(out, "R  card=50") {
		t.Errorf("tables listing wrong:\n%s", out)
	}
	if !strings.Contains(out, "a: distinct=5") || !strings.Contains(out, "b: distinct=10") {
		t.Errorf("stats output wrong:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("missing table error not shown:\n%s", out)
	}
}

func TestGenAndSelect(t *testing.T) {
	out := runLines(t,
		"gen T k uniform 100 10 seed=7",
		"SELECT COUNT(*) FROM T WHERE k < 5",
	)
	if !strings.Contains(out, "generated T") {
		t.Errorf("gen output:\n%s", out)
	}
	if !strings.Contains(out, "row(s), estimated") {
		t.Errorf("select output:\n%s", out)
	}
}

func TestGenZipfAndCompare(t *testing.T) {
	out := runLines(t,
		"gen A k uniform 100 10 seed=1",
		"gen B k uniform 200 10 seed=2",
		"compare SELECT COUNT(*) FROM A, B WHERE A.k = B.k",
	)
	if !strings.Contains(out, "SM+PTC") || !strings.Contains(out, "ELS") {
		t.Errorf("compare output:\n%s", out)
	}
}

func TestExplain(t *testing.T) {
	out := runLines(t,
		"declare S 1000 s=1000",
		"declare M 10000 m=10000",
		"explain SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100",
	)
	if !strings.Contains(out, "plan:") || !strings.Contains(out, "implied by transitive closure") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("k,v\n1,10\n2,20\n3,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runLines(t,
		"load T "+path+" header hist=4",
		"SELECT COUNT(*) FROM T WHERE k < 3",
	)
	if !strings.Contains(out, "loaded T (3 rows)") {
		t.Errorf("load output:\n%s", out)
	}
	if !strings.Contains(out, "2 row(s)") {
		t.Errorf("query output:\n%s", out)
	}
}

func TestBadInputsDoNotCrash(t *testing.T) {
	out := runLines(t,
		"frobnicate",
		"declare",
		"declare T abc",
		"declare T 10 bad",
		"declare T 10 x=abc",
		"load",
		"load T /nonexistent/file.csv",
		"load T x unknownopt",
		"load T x hist=zz",
		"gen",
		"gen T k uniform aa bb",
		"gen T k uniform 10 5 theta=x",
		"gen T k uniform 10 5 seed=x",
		"gen T k uniform 10 5 what=1",
		"gen T k bogus 10 5",
		"estimate",
		"explain",
		"compare",
		"estimate SELECT COUNT(*) FROM missing",
		"explain SELECT garbage(",
		"SELECT COUNT(*) FROM missing",
		"compare SELECT nope",
	)
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command not reported:\n%s", out)
	}
	if !strings.Contains(out, "usage:") {
		t.Errorf("usage hints missing:\n%s", out)
	}
	if strings.Count(out, "error:") < 4 {
		t.Errorf("errors should be reported inline:\n%s", out)
	}
}

func TestProjectionQueryPrintsRows(t *testing.T) {
	out := runLines(t,
		"gen T k sequential 5 5 seed=3",
		"SELECT T.k FROM T WHERE k < 2",
	)
	if !strings.Contains(out, "T.k") {
		t.Errorf("projection header missing:\n%s", out)
	}
	if !strings.Contains(out, "2 row(s)") {
		t.Errorf("row count missing:\n%s", out)
	}
}

func TestAnalyzeCommand(t *testing.T) {
	out := runLines(t,
		"gen A k uniform 50 5 seed=1",
		"gen B k uniform 80 5 seed=2",
		"analyze SELECT COUNT(*) FROM A, B WHERE A.k = B.k",
		"analyze",
		"analyze SELECT nope",
	)
	if !strings.Contains(out, "est=") || !strings.Contains(out, "actual=") {
		t.Errorf("analyze output missing node stats:\n%s", out)
	}
	if !strings.Contains(out, "usage: analyze") || !strings.Contains(out, "error:") {
		t.Errorf("analyze error handling missing:\n%s", out)
	}
}

func TestGroupByThroughREPL(t *testing.T) {
	out := runLines(t,
		"gen T k sequential 30 3 seed=1",
		"SELECT k, COUNT(*) FROM T GROUP BY k",
	)
	if !strings.Contains(out, "3 row(s)") {
		t.Errorf("GROUP BY output:\n%s", out)
	}
	if !strings.Contains(out, "COUNT(*)") {
		t.Errorf("aggregate column header missing:\n%s", out)
	}
}

func TestSystemAccessor(t *testing.T) {
	p := New(&strings.Builder{})
	if p.System() == nil {
		t.Error("System() should not be nil")
	}
}

// runDurable executes the lines against a processor backed by dataDir.
func runDurable(t *testing.T, dataDir string, lines ...string) string {
	t.Helper()
	var out strings.Builder
	p, err := NewAt(&out, dataDir)
	if err != nil {
		t.Fatalf("NewAt(%s): %v", dataDir, err)
	}
	for _, l := range lines {
		quit, err := p.Execute(l)
		if err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		if quit {
			break
		}
	}
	return out.String()
}

// A durable session's declarations survive into a second session over the
// same directory, and "recover" mid-session replays the directory too.
func TestDurableSessionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := runDurable(t, dir,
		"declare R 1000 x=100",
		"checkpoint",
		"declare S 500 y=50",
		"serving",
	)
	if !strings.Contains(out, "checkpoint written: version 2") {
		t.Errorf("checkpoint not acknowledged:\n%s", out)
	}
	if !strings.Contains(out, "durable: wal=") ||
		!strings.Contains(out, "checkpoint-version=2") ||
		!strings.Contains(out, "records-since-checkpoint=1") {
		t.Errorf("serving durability line wrong:\n%s", out)
	}

	// Second session: both tables recovered (S from the WAL suffix).
	out = runDurable(t, dir, "tables", "recover", "tables")
	if strings.Count(out, "R  card=1000") != 2 || strings.Count(out, "S  card=500") != 2 {
		t.Errorf("recovered catalog wrong:\n%s", out)
	}
	if !strings.Contains(out, "recovered "+dir+": catalog version 3 (checkpoint 2 + 1 wal records)") {
		t.Errorf("recover report wrong:\n%s", out)
	}
}

// "recover <dir>" attaches an in-memory session to a durable directory;
// without an argument an in-memory session explains what to do.
func TestRecoverExplicitDir(t *testing.T) {
	dir := t.TempDir()
	runDurable(t, dir, "declare R 1000 x=100")

	out := runLines(t, "recover", "checkpoint", "recover "+dir, "tables", "checkpoint")
	if !strings.Contains(out, "no data directory") {
		t.Errorf("bare recover on in-memory session should explain itself:\n%s", out)
	}
	// Checkpoint before attaching fails with the durability error; after
	// attaching it succeeds.
	if !strings.Contains(out, "error: els: durability failure") {
		t.Errorf("checkpoint on in-memory session should fail:\n%s", out)
	}
	if !strings.Contains(out, "R  card=1000") {
		t.Errorf("explicit recover did not load the catalog:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint written:") {
		t.Errorf("checkpoint after attach should succeed:\n%s", out)
	}
}

// An in-memory session shows no durability line in serving output.
func TestServingNoDurableLine(t *testing.T) {
	out := runLines(t, "serving")
	if strings.Contains(out, "durable:") {
		t.Errorf("in-memory serving output should have no durable line:\n%s", out)
	}
}

// The serving line surfaces plan-cache counters, and the cache/columnar
// limits verbs flip the engine switches.
func TestServingPlanCacheAndLimitsVerbs(t *testing.T) {
	out := runLines(t,
		"declare R 1000 x=100",
		"estimate SELECT COUNT(*) FROM R",
		"estimate SELECT COUNT(*) FROM R",
		"serving",
	)
	if !strings.Contains(out, "plan-cache: hits=1 misses=1") {
		t.Errorf("serving output misses plan-cache counters:\n%s", out)
	}

	out = runLines(t, "limits columnar=off cache=off plan-cache-size=7", "limits")
	if !strings.Contains(out, "columnar=off cache=off plan-cache-size=7") {
		t.Errorf("limits verbs did not round-trip:\n%s", out)
	}
	out = runLines(t, "limits cache=maybe")
	if !strings.Contains(out, "want on or off") {
		t.Errorf("bad cache value not rejected:\n%s", out)
	}
	// With the cache off, repeats stay cold.
	out = runLines(t,
		"declare R 1000 x=100",
		"limits cache=off",
		"estimate SELECT COUNT(*) FROM R",
		"estimate SELECT COUNT(*) FROM R",
		"serving",
	)
	if !strings.Contains(out, "plan-cache: hits=0 misses=0") {
		t.Errorf("disabled cache was still consulted:\n%s", out)
	}
}

// A durable session attaches a read replica, ships its declarations,
// reports per-replica status, and fails over with "replica promote": the
// promoted replica becomes the writable session catalog.
func TestReplicaCommands(t *testing.T) {
	root := t.TempDir()
	primary := filepath.Join(root, "primary")
	repDir := filepath.Join(root, "r0")

	var out strings.Builder
	p, err := NewAt(&out, primary)
	if err != nil {
		t.Fatal(err)
	}
	run := func(line string) {
		t.Helper()
		if _, err := p.Execute(line); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
	run("declare R 1000 x=100")
	run("replica attach " + repDir)
	if !strings.Contains(out.String(), "replica r0 attached") {
		t.Fatalf("attach not acknowledged:\n%s", out.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.System().WaitForReplicas(ctx); err != nil {
		t.Fatal(err)
	}

	run("limits max-replica-lag=2")
	if !strings.Contains(out.String(), "max-replica-lag=2") {
		t.Errorf("limits line misses max-replica-lag:\n%s", out.String())
	}
	run("replica status")
	got := out.String()
	for _, want := range []string{"primary: version=", "shipper: shipped=", "replica r0: version=", "lag=0"} {
		if !strings.Contains(got, want) {
			t.Errorf("status output misses %q:\n%s", want, got)
		}
	}

	run("replica promote r0")
	if !strings.Contains(out.String(), "replica r0 promoted") {
		t.Fatalf("promote not acknowledged:\n%s", out.String())
	}
	run("replica status")
	if !strings.Contains(out.String(), "no replicas attached") {
		t.Errorf("promoted replica still listed:\n%s", out.String())
	}
	// The promoted catalog is writable and carries the shipped statistics.
	run("declare S 500 y=50")
	run("tables")
	got = out.String()
	if !strings.Contains(got, "R  card=1000") || !strings.Contains(got, "S  card=500") {
		t.Errorf("promoted session catalog wrong:\n%s", got)
	}

	run("replica")
	run("replica promote nope")
	got = out.String()
	if !strings.Contains(got, "usage: replica attach") || !strings.Contains(got, `no attached replica "nope"`) {
		t.Errorf("replica usage/error output wrong:\n%s", got)
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ccancel()
	if err := p.System().Close(cctx); err != nil {
		t.Errorf("closing promoted session: %v", err)
	}
}

// The memory limit verb round-trips, and a budgeted join big enough to
// overflow it spills to disk through the REPL, surfacing in the serving
// output's memory counters.
func TestLimitsMemoryVerbAndSpill(t *testing.T) {
	out := runLines(t, "limits memory=4096", "limits")
	if !strings.Contains(out, "memory=4096") {
		t.Errorf("limits memory=N did not round-trip:\n%s", out)
	}
	out = runLines(t, "limits memory=oops")
	if !strings.Contains(out, `bad memory limit "oops"`) {
		t.Errorf("bad memory value not rejected:\n%s", out)
	}

	out = runLines(t,
		"gen H1 k uniform 900 40",
		"gen H2 k uniform 1100 40",
		"limits memory=4096",
		"SELECT COUNT(*) FROM H1, H2 WHERE H1.k = H2.k",
		"serving",
	)
	if !strings.Contains(out, "row(s)") {
		t.Errorf("budgeted join did not complete:\n%s", out)
	}
	if !strings.Contains(out, "spilled-queries=1") {
		t.Errorf("serving output misses the spill:\n%s", out)
	}
	if strings.Contains(out, "peak-query-bytes=0") {
		t.Errorf("peak query bytes not tracked:\n%s", out)
	}
}
