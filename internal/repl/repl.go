// Package repl implements the command processor behind cmd/elsrepl: an
// interactive shell for loading data, declaring statistics, and exploring
// how each estimation algorithm sees a query. The processor is pure
// (reads lines, writes to an io.Writer), so it is fully testable.
package repl

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	els "repro"
)

// Processor holds the session state of one REPL.
type Processor struct {
	sys     *els.System
	algo    els.Algorithm
	out     io.Writer
	dataDir string // durable catalog directory; "" for in-memory sessions

	replicas    map[string]*els.Replica // attached read replicas by ID
	replicaDirs map[string]string       // replica ID → data directory
}

// New creates a processor writing to out, starting with Algorithm ELS.
func New(out io.Writer) *Processor {
	return &Processor{sys: els.New(), algo: els.AlgorithmELS, out: out}
}

// NewAt creates a processor backed by a durable catalog directory
// (els.Open): recovered statistics are available immediately, and every
// declared mutation is written ahead and fsynced before it is
// acknowledged. The "recover" command reopens the same directory.
func NewAt(out io.Writer, dataDir string) (*Processor, error) {
	sys, err := els.Open(dataDir)
	if err != nil {
		return nil, err
	}
	return &Processor{sys: sys, algo: els.AlgorithmELS, out: out, dataDir: dataDir}, nil
}

// System exposes the underlying system (used by tests and by callers that
// preload data).
func (p *Processor) System() *els.System { return p.sys }

// Execute runs one input line. It returns true when the session should
// end. Errors are printed to the output writer, not returned, so a REPL
// session survives bad input; the error return is reserved for I/O
// failures on the writer.
func (p *Processor) Execute(line string) (quit bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
		return false, nil
	}
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	switch cmd {
	case "quit", "exit", "\\q":
		return true, nil
	case "help", "\\?":
		return false, p.help()
	case "algo":
		return false, p.setAlgo(fields[1:])
	case "algos":
		for _, a := range els.Algorithms() {
			fmt.Fprintln(p.out, a)
		}
		return false, nil
	case "limits":
		return false, p.limits(fields[1:])
	case "serving":
		return false, p.serving()
	case "checkpoint":
		return false, p.checkpoint()
	case "recover":
		return false, p.recoverCatalog(fields[1:])
	case "replica":
		return false, p.replica(fields[1:])
	case "declare":
		return false, p.declare(fields[1:])
	case "load":
		return false, p.load(fields[1:])
	case "gen":
		return false, p.gen(fields[1:])
	case "tables":
		return false, p.tables()
	case "stats":
		return false, p.stats(fields[1:])
	case "explain":
		return false, p.explain(strings.TrimSpace(line[len("explain"):]))
	case "estimate":
		return false, p.estimate(strings.TrimSpace(line[len("estimate"):]))
	case "analyze":
		return false, p.analyze(strings.TrimSpace(line[len("analyze"):]))
	case "compare":
		return false, p.compare(strings.TrimSpace(line[len("compare"):]))
	case "select":
		return false, p.run(line)
	default:
		p.printf("unknown command %q (try: help)\n", fields[0])
		return false, nil
	}
}

func (p *Processor) printf(format string, args ...any) {
	fmt.Fprintf(p.out, format, args...)
}

func (p *Processor) help() error {
	p.printf(`commands:
  declare <name> <card> col=d [col=d ...]   register statistics-only table
  load <name> <file.csv> [header] [hist=N]  load + ANALYZE a CSV file
  gen <name> <col> <dist> <rows> <domain> [theta=T] [seed=S]
                                            generate a synthetic table
  tables                                    list tables
  stats <name>                              show a table's statistics
  algo <name>                               set the estimation algorithm
  algos                                     list algorithms
  limits [timeout=D] [tuples=N] [rows=N] [plans=N] [memory=N] [workers=N]
         [max-concurrent=N] [max-queue=N] [queue-timeout=D]
         [max-replica-lag=N] [columnar=on|off] [cache=on|off]
         [plan-cache-size=N]
                                            set per-query budgets (memory=N is
                                            the byte budget; over it, hash joins
                                            spill to disk), parallelism,
                                            admission control, replica staleness,
                                            and the columnar/plan-cache engine
                                            switches ("limits off" clears)
  serving                                   show serving-layer counters
                                            (catalog version, admission, retries,
                                            circuit breaker, plan cache,
                                            durability)
  checkpoint                                compact the WAL into an atomic
                                            checkpoint (durable sessions)
  recover [dir]                             reopen the durable catalog, replaying
                                            checkpoint + WAL (crash recovery)
  replica attach <dir>                      open <dir> as a read replica and ship
                                            this session's WAL to it
  replica status                            per-replica version/lag/quarantine and
                                            shipper counters
  replica promote <id>                      fail over: the replica becomes the
                                            session's writable primary
  estimate <sql>                            estimate without executing
  explain <sql>                             show closure + plan + estimates
  analyze <sql>                             execute and show est-vs-actual per node
  SELECT ...                                plan and execute the query
  compare <sql>                             run under ELS/SM/SM+PTC/SSS
  quit
`)
	return nil
}

func (p *Processor) setAlgo(args []string) error {
	if len(args) != 1 {
		p.printf("usage: algo <name>; current: %s\n", p.algo)
		return nil
	}
	for _, a := range els.Algorithms() {
		if strings.EqualFold(a.String(), args[0]) {
			p.algo = a
			p.printf("algorithm: %s\n", a)
			return nil
		}
	}
	p.printf("unknown algorithm %q; use one of %v\n", args[0], els.Algorithms())
	return nil
}

const limitsUsage = "usage: limits [timeout=D] [tuples=N] [rows=N] [plans=N] [memory=N] [workers=N] [max-concurrent=N] [max-queue=N] [queue-timeout=D] [max-replica-lag=N] [columnar=on|off] [cache=on|off] [plan-cache-size=N] | limits off"

// formatLimits renders one line of the full limit set, budgets and
// admission control alike.
func formatLimits(l els.Limits) string {
	return fmt.Sprintf("timeout=%s tuples=%d rows=%d plans=%d memory=%d workers=%d max-concurrent=%d max-queue=%d queue-timeout=%s max-replica-lag=%d columnar=%s cache=%s plan-cache-size=%d",
		l.Timeout, l.MaxTuples, l.MaxRows, l.MaxPlans, l.MaxMemory, l.Workers,
		l.MaxConcurrent, l.MaxQueue, l.QueueTimeout, l.MaxReplicaLag,
		onOff(!l.DisableColumnar), onOff(!l.DisableCache), l.PlanCacheSize)
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

// limits shows or updates the system's per-query resource budgets and
// admission control. With no arguments it prints the current limits;
// "limits off" clears everything.
func (p *Processor) limits(args []string) error {
	if len(args) == 0 {
		l := p.sys.Limits()
		if !l.Enforced() && !l.Admission() && l.Workers == 0 && l.MaxQueue == 0 && l.QueueTimeout == 0 && l.MaxReplicaLag == 0 &&
			!l.DisableColumnar && !l.DisableCache && l.PlanCacheSize == 0 {
			p.printf("no limits\n")
			return nil
		}
		p.printf("%s\n", formatLimits(l))
		return nil
	}
	if len(args) == 1 && strings.EqualFold(args[0], "off") {
		p.sys.SetLimits(els.Limits{})
		p.printf("limits cleared\n")
		return nil
	}
	l := p.sys.Limits()
	for _, kv := range args {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || parts[1] == "" {
			p.printf("malformed limit %q (want key=value)\n%s\n", kv, limitsUsage)
			return nil
		}
		key := strings.ToLower(parts[0])
		switch key {
		case "timeout", "queue-timeout":
			d, err := time.ParseDuration(parts[1])
			if err != nil {
				p.printf("bad %s %q: %v\n%s\n", key, parts[1], err, limitsUsage)
				return nil
			}
			if d < 0 {
				p.printf("%s must not be negative (got %s)\n%s\n", key, d, limitsUsage)
				return nil
			}
			if key == "timeout" {
				l.Timeout = d
			} else {
				l.QueueTimeout = d
			}
		case "columnar", "cache":
			var on bool
			switch strings.ToLower(parts[1]) {
			case "on":
				on = true
			case "off":
				on = false
			default:
				p.printf("bad %s %q (want on or off)\n%s\n", key, parts[1], limitsUsage)
				return nil
			}
			if key == "columnar" {
				l.DisableColumnar = !on
			} else {
				l.DisableCache = !on
			}
		case "tuples", "rows", "plans", "memory", "workers", "max-concurrent", "max-queue", "max-replica-lag", "plan-cache-size":
			n, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				p.printf("bad %s limit %q\n%s\n", key, parts[1], limitsUsage)
				return nil
			}
			if n < 0 {
				p.printf("%s must not be negative (got %d); use \"limits off\" to clear\n%s\n", key, n, limitsUsage)
				return nil
			}
			switch key {
			case "tuples":
				l.MaxTuples = n
			case "rows":
				l.MaxRows = n
			case "plans":
				l.MaxPlans = n
			case "memory":
				l.MaxMemory = n
			case "workers":
				l.Workers = int(n)
			case "max-concurrent":
				l.MaxConcurrent = int(n)
			case "max-queue":
				l.MaxQueue = int(n)
			case "max-replica-lag":
				l.MaxReplicaLag = int(n)
			case "plan-cache-size":
				l.PlanCacheSize = int(n)
			}
		default:
			p.printf("unknown limit %q (want timeout, tuples, rows, plans, memory, workers, max-concurrent, max-queue, queue-timeout, max-replica-lag, columnar, cache, plan-cache-size)\n", parts[0])
			return nil
		}
	}
	p.sys.SetLimits(l)
	// Replica staleness is checked replica-side; keep attached replicas on
	// the session's limit set.
	for _, rep := range p.replicas {
		rep.SetLimits(l)
	}
	p.printf("limits set: %s\n", formatLimits(l))
	return nil
}

// serving prints the serving-layer counters: catalog version, admission,
// queueing, retries, and the circuit breaker.
func (p *Processor) serving() error {
	st := p.sys.RobustnessStats()
	p.printf("catalog version: %d\n", st.CatalogVersion)
	p.printf("admitted=%d shed-queue-full=%d shed-queue-timeout=%d rejected-closed=%d\n",
		st.Admitted, st.ShedQueueFull, st.ShedQueueTimeout, st.RejectedClosed)
	p.printf("in-flight=%d waiting=%d queue-wait=%s\n", st.InFlight, st.Waiting, st.QueueWait)
	p.printf("retries=%d retry-successes=%d\n", st.Retries, st.RetrySuccesses)
	p.printf("breaker=%s opens=%d rejections=%d probes=%d\n",
		st.BreakerState, st.BreakerOpens, st.BreakerRejections, st.BreakerProbes)
	p.printf("memory: spilled-queries=%d spilled-bytes=%d peak-query-bytes=%d\n",
		st.SpilledQueries, st.SpilledBytes, st.PeakQueryBytes)
	c := p.sys.CacheStats()
	p.printf("plan-cache: hits=%d misses=%d hit-rate=%.3f entries=%d/%d evictions=%d invalidations=%d\n",
		c.Hits, c.Misses, c.HitRate(), c.Entries, c.Capacity, c.Evictions, c.Invalidations)
	if p.sys.Durable() {
		d := p.sys.DurabilityStats()
		frozen := ""
		if d.Poisoned != nil {
			frozen = " FROZEN (reopen to recover)"
		}
		p.printf("durable: wal=%dB checkpoint-version=%d records-since-checkpoint=%d replayed-records=%d wal-appended=%dB%s\n",
			d.WALSizeBytes, d.CheckpointVersion, d.RecordsSinceCheckpoint,
			d.ReplayedRecords, d.WALBytes, frozen)
	}
	return nil
}

// checkpoint compacts the durable store's WAL into an atomic checkpoint of
// the current catalog version.
func (p *Processor) checkpoint() error {
	if err := p.sys.Checkpoint(); err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	d := p.sys.DurabilityStats()
	p.printf("checkpoint written: version %d (wal %dB)\n", d.CheckpointVersion, d.WALSizeBytes)
	return nil
}

// recoverCatalog reopens a durable catalog directory — the session's own
// by default, or an explicit one — replaying its checkpoint and WAL suffix
// exactly as a post-crash restart would. The previous system is drained
// and closed; in-memory artifacts (loaded CSV data, indexes) do not
// survive, matching what a real crash loses.
func (p *Processor) recoverCatalog(args []string) error {
	dir := p.dataDir
	if len(args) == 1 {
		dir = args[0]
	} else if len(args) > 1 {
		p.printf("usage: recover [dir]\n")
		return nil
	}
	if dir == "" {
		p.printf("no data directory: start with -data-dir or use \"recover <dir>\"\n")
		return nil
	}
	sys, err := els.Open(dir)
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	//ctxflow:allow repl session owns both systems end-to-end; bounded drain of the one being replaced
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if cerr := p.sys.Close(ctx); cerr != nil {
		p.printf("note: closing previous system: %v\n", cerr)
	}
	p.sys, p.dataDir = sys, dir
	d := sys.DurabilityStats()
	torn := ""
	if d.TornTailRecovered {
		torn = ", torn wal tail truncated"
	}
	p.printf("recovered %s: catalog version %d (checkpoint %d + %d wal records%s)\n",
		dir, d.LastVersion, d.CheckpointVersion, d.RecordsSinceCheckpoint, torn)
	return nil
}

const replicaUsage = "usage: replica attach <dir> | replica status | replica promote <id>"

// replica dispatches the replication subcommands: attach opens a
// directory as a read replica of the session's durable catalog, status
// reports the shipping layer, and promote fails the session over to a
// replica.
func (p *Processor) replica(args []string) error {
	if len(args) == 0 {
		p.printf("%s\n", replicaUsage)
		return nil
	}
	switch strings.ToLower(args[0]) {
	case "attach":
		return p.replicaAttach(args[1:])
	case "status":
		return p.replicaStatus()
	case "promote":
		return p.replicaPromote(args[1:])
	default:
		p.printf("unknown replica subcommand %q\n%s\n", args[0], replicaUsage)
		return nil
	}
}

// replicaAttach opens (or heals) a read replica and ships the session's
// WAL to it. Re-attaching an already-tracked replica ID is the explicit
// quarantine-heal path; it never reopens the directory a live replica
// still holds.
func (p *Processor) replicaAttach(args []string) error {
	if len(args) != 1 {
		p.printf("%s\n", replicaUsage)
		return nil
	}
	dir := args[0]
	id := filepath.Base(filepath.Clean(dir))
	if old, ok := p.replicas[id]; ok {
		if err := p.sys.AttachReplica(old); err != nil {
			p.printf("error: %v\n", err)
			return nil
		}
		p.printf("replica %s re-attached (resync requested)\n", id)
		return nil
	}
	rep, err := els.OpenReplica(dir)
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	if err := p.sys.AttachReplica(rep); err != nil {
		//ctxflow:allow repl session owns the replica end-to-end; bounded drain of a failed attach
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		rep.Close(ctx)
		cancel()
		p.printf("error: %v\n", err)
		return nil
	}
	rep.SetLimits(p.sys.Limits())
	if p.replicas == nil {
		p.replicas = map[string]*els.Replica{}
		p.replicaDirs = map[string]string{}
	}
	p.replicas[id] = rep
	p.replicaDirs[id] = dir
	p.printf("replica %s attached at version %d (resyncing to %d)\n",
		id, rep.CatalogVersion(), p.sys.CatalogVersion())
	return nil
}

// replicaStatus prints the primary's digest identity, the shipper
// counters, and one line per follower.
func (p *Processor) replicaStatus() error {
	if len(p.replicas) == 0 {
		p.printf("no replicas attached\n")
		return nil
	}
	ver, dig, err := p.sys.CatalogDigest()
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	p.printf("primary: version=%d digest=%.12s\n", ver, dig)
	st := p.sys.ReplicationStats()
	p.printf("shipper: shipped=%d resyncs=%d queue-drops=%d link-drops=%d\n",
		st.FramesShipped, st.Resyncs, st.QueueDrops, st.LinkDrops)
	for _, f := range st.Followers {
		flags := ""
		if f.Quarantined {
			flags += " QUARANTINED (replica attach <dir> to heal)"
		}
		if f.Down {
			flags += " DOWN (reopen its directory)"
		}
		p.printf("replica %s: version=%d known=%d lag=%d applied=%d full=%d served=%d stale=%d%s\n",
			f.ID, f.Version, f.Known, f.Lag, f.FramesApplied, f.FullFrames,
			f.ServedReads, f.StaleReads, flags)
	}
	return nil
}

// replicaPromote fails the session over to an attached replica: the
// replica becomes the writable primary, the old primary is drained and
// closed, and every surviving replica is re-pointed at the new primary.
func (p *Processor) replicaPromote(args []string) error {
	if len(args) != 1 {
		p.printf("%s\n", replicaUsage)
		return nil
	}
	id := args[0]
	rep, ok := p.replicas[id]
	if !ok {
		p.printf("no attached replica %q (try: replica status)\n", id)
		return nil
	}
	sys, err := rep.Promote()
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	delete(p.replicas, id)
	dir := p.replicaDirs[id]
	delete(p.replicaDirs, id)
	//ctxflow:allow repl session owns both systems end-to-end; bounded drain of the demoted primary
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if cerr := p.sys.Close(ctx); cerr != nil {
		p.printf("note: closing previous primary: %v\n", cerr)
	}
	p.sys, p.dataDir = sys, dir
	for rid, r := range p.replicas {
		if aerr := p.sys.AttachReplica(r); aerr != nil {
			p.printf("note: re-attaching replica %s: %v\n", rid, aerr)
		}
	}
	p.printf("replica %s promoted: session now writes %s at version %d\n",
		id, dir, sys.CatalogVersion())
	return nil
}

func (p *Processor) declare(args []string) error {
	if len(args) < 2 {
		p.printf("usage: declare <name> <card> col=d [col=d ...]\n")
		return nil
	}
	card, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		p.printf("bad cardinality %q\n", args[1])
		return nil
	}
	cols := map[string]float64{}
	for _, kv := range args[2:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			p.printf("bad column spec %q (want col=distinct)\n", kv)
			return nil
		}
		d, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			p.printf("bad distinct count %q\n", parts[1])
			return nil
		}
		cols[parts[0]] = d
	}
	if err := p.sys.DeclareStats(args[0], card, cols); err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	p.printf("declared %s (card %g, %d columns)\n", args[0], card, len(cols))
	return nil
}

func (p *Processor) load(args []string) error {
	if len(args) < 2 {
		p.printf("usage: load <name> <file.csv> [header] [hist=N]\n")
		return nil
	}
	header := false
	hist := 0
	for _, opt := range args[2:] {
		switch {
		case strings.EqualFold(opt, "header"):
			header = true
		case strings.HasPrefix(strings.ToLower(opt), "hist="):
			n, err := strconv.Atoi(opt[5:])
			if err != nil {
				p.printf("bad hist option %q\n", opt)
				return nil
			}
			hist = n
		default:
			p.printf("unknown option %q\n", opt)
			return nil
		}
	}
	if err := p.sys.LoadCSV(args[0], args[1], header, hist); err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	card, _ := p.sys.TableCard(args[0])
	p.printf("loaded %s (%g rows)\n", args[0], card)
	return nil
}

func (p *Processor) gen(args []string) error {
	if len(args) < 5 {
		p.printf("usage: gen <name> <col> <dist> <rows> <domain> [theta=T] [seed=S]\n")
		return nil
	}
	rows, err1 := strconv.Atoi(args[3])
	domain, err2 := strconv.Atoi(args[4])
	if err1 != nil || err2 != nil {
		p.printf("bad rows/domain\n")
		return nil
	}
	theta := 0.0
	seed := int64(1)
	for _, opt := range args[5:] {
		switch {
		case strings.HasPrefix(strings.ToLower(opt), "theta="):
			if theta, err1 = strconv.ParseFloat(opt[6:], 64); err1 != nil {
				p.printf("bad theta %q\n", opt)
				return nil
			}
		case strings.HasPrefix(strings.ToLower(opt), "seed="):
			n, err := strconv.ParseInt(opt[5:], 10, 64)
			if err != nil {
				p.printf("bad seed %q\n", opt)
				return nil
			}
			seed = n
		default:
			p.printf("unknown option %q\n", opt)
			return nil
		}
	}
	if err := p.sys.GenerateTable(args[0], args[1], args[2], rows, domain, theta, seed); err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	p.printf("generated %s (%d rows, %s)\n", args[0], rows, args[2])
	return nil
}

func (p *Processor) tables() error {
	names := p.sys.Tables()
	if len(names) == 0 {
		p.printf("no tables\n")
		return nil
	}
	for _, n := range names {
		card, _ := p.sys.TableCard(n)
		p.printf("%s  card=%g\n", n, card)
	}
	return nil
}

func (p *Processor) stats(args []string) error {
	if len(args) != 1 {
		p.printf("usage: stats <table>\n")
		return nil
	}
	card, err := p.sys.TableCard(args[0])
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	p.printf("%s: card=%g\n", args[0], card)
	cols, err := p.sys.TableColumns(args[0])
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	sort.Strings(cols)
	for _, c := range cols {
		d, _ := p.sys.ColumnDistinct(args[0], c)
		p.printf("  %s: distinct=%g\n", c, d)
	}
	return nil
}

func (p *Processor) explain(sql string) error {
	if sql == "" {
		p.printf("usage: explain <sql>\n")
		return nil
	}
	out, err := p.sys.Explain(sql, p.algo)
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	p.printf("%s", out)
	return nil
}

func (p *Processor) estimate(sql string) error {
	if sql == "" {
		p.printf("usage: estimate <sql>\n")
		return nil
	}
	est, err := p.sys.Estimate(sql, p.algo)
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	p.printf("[%s] estimated size: %g (order %s)\n",
		est.Algorithm, est.FinalSize, strings.Join(est.JoinOrder, "⋈"))
	return nil
}

func (p *Processor) analyze(sql string) error {
	if sql == "" {
		p.printf("usage: analyze <sql>\n")
		return nil
	}
	res, err := p.sys.Query(sql, p.algo)
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	p.printf("%s", res.FormatAnalyze())
	p.printf("[%s] %d row(s) in %s\n", res.Estimate.Algorithm, res.Count, res.Elapsed.Round(1000))
	return nil
}

func (p *Processor) run(sql string) error {
	res, err := p.sys.Query(sql, p.algo)
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	if len(res.Columns) > 0 {
		p.printf("%s\n", strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			p.printf("%s\n", strings.Join(row, "\t"))
		}
	}
	p.printf("[%s] %d row(s), estimated %g, scanned %d tuples in %s\n",
		res.Estimate.Algorithm, res.Count, res.Estimate.FinalSize,
		res.TuplesScanned, res.Elapsed.Round(1000))
	return nil
}

func (p *Processor) compare(sql string) error {
	if sql == "" {
		p.printf("usage: compare <sql>\n")
		return nil
	}
	results, err := p.sys.CompareAlgorithms(sql)
	if err != nil {
		p.printf("error: %v\n", err)
		return nil
	}
	p.printf("%-10s %-14s %14s %12s %12s\n", "algo", "order", "estimate", "tuples", "elapsed")
	for _, r := range results {
		p.printf("%-10s %-14s %14g %12d %12s\n",
			r.Estimate.Algorithm, strings.Join(r.Estimate.JoinOrder, "⋈"),
			r.Estimate.FinalSize, r.TuplesScanned, r.Elapsed.Round(1000))
	}
	return nil
}
