package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// counter is a cheap atomic counter.
type counter struct{ v atomic.Uint64 }

func (c *counter) add(n uint64) { c.v.Add(n) }
func (c *counter) load() uint64 { return c.v.Load() }

// hist is a fixed-shape log-bucket latency histogram: bucket i covers
// durations up to base·growth^i. Log buckets keep the memory constant and
// the quantile error proportional (±15%), which is plenty for SLO
// observability — the point is the order of magnitude of the p99, not its
// fourth digit.
const (
	histBase    = 10 * time.Microsecond
	histGrowth  = 1.3
	histBuckets = 64 // last bucket tops out above an hour
)

type hist struct {
	//lockorder:level 16
	mu     sync.Mutex
	counts [histBuckets]uint64
	total  uint64
}

func newHist() *hist { return &hist{} }

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	i := int(math.Ceil(math.Log(float64(d)/float64(histBase)) / math.Log(histGrowth)))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// upperBound is bucket i's inclusive upper duration bound.
func upperBound(i int) time.Duration {
	return time.Duration(float64(histBase) * math.Pow(histGrowth, float64(i)))
}

// observe books one sample.
func (h *hist) observe(d time.Duration) {
	i := bucketFor(d)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.mu.Unlock()
}

// quantile returns the upper bound of the bucket holding the p-quantile
// sample (0 with no samples).
func (h *hist) quantile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := uint64(p * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return upperBound(i)
		}
	}
	return upperBound(histBuckets - 1)
}
