package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	els "repro"
	"repro/internal/governor"
	"repro/internal/wire"
)

// TenantConfig describes one tenant's bulkhead: its own System (snapshot
// store, durable directory, plan cache) plus the admission, retry, and
// breaker policies that bound it. Nothing here is shared with any other
// tenant, which is the whole point — one tenant's overload, poison, or
// frozen WAL cannot touch a neighbor.
type TenantConfig struct {
	// Name routes requests; it is also the tenant's durable directory
	// name under Config.DataRoot.
	Name string
	// Limits are the tenant's per-query budgets and admission bounds.
	Limits els.Limits
	// Retry and Breaker are the tenant's opt-in policies.
	Retry   els.RetryPolicy
	Breaker els.BreakerPolicy
	// Bootstrap seeds a freshly created tenant (no tables yet) — demo
	// data, generated workload tables. It does not run for a tenant
	// recovered with tables already in its catalog, so a restart's
	// catalog digest stays comparable to the pre-restart one.
	Bootstrap func(*els.System) error
}

// tenant is one hosted bulkhead: the System plus the server-side health
// tracking around it.
type tenant struct {
	name    string
	sys     *els.System
	durable bool

	// Quarantine state: degraded is the sticky cause once the bulkhead
	// trips (PoisonThreshold consecutive internal errors, or a durability
	// freeze). A degraded tenant fails fast with a typed TenantError and
	// never reaches its System again until the process restarts.
	//lockorder:level 14
	mu             sync.Mutex
	degraded       error
	consecInternal int
	threshold      int

	requests, failures counter
	memSheds           counter // requests the server memory pool refused
	lat, wait          *hist
}

func newTenant(cfg TenantConfig, sys *els.System, durable bool, threshold int) *tenant {
	t := &tenant{
		name:      cfg.Name,
		sys:       sys,
		durable:   durable,
		threshold: threshold,
		lat:       newHist(),
		wait:      newHist(),
	}
	sys.SetAdmissionObserver(func(w time.Duration) { t.wait.observe(w) })
	return t
}

// gate fails fast on a quarantined tenant.
func (t *tenant) gate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.degraded != nil {
		return &els.TenantError{Tenant: t.name, Reason: "quarantined", Quarantined: true, Cause: t.degraded}
	}
	return nil
}

// record books one request outcome into the bulkhead's health state and
// reports whether this outcome tripped the quarantine.
func (t *tenant) record(err error) (tripped bool) {
	if err != nil {
		t.failures.add(1)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.degraded != nil {
		return false
	}
	switch {
	case err == nil:
		t.consecInternal = 0
	case errors.Is(err, els.ErrInternal):
		t.consecInternal++
		if t.consecInternal >= t.threshold {
			t.degraded = err
			return true
		}
	case errors.Is(err, els.ErrDurability):
		// The tenant's durable store froze: every further mutation would
		// fail and the on-disk suffix state is unknown until reopened.
		t.degraded = err
		return true
	default:
		// Parse errors, sheds, budget overruns, cancellations: the
		// tenant itself is healthy.
		t.consecInternal = 0
	}
	return false
}

// serve runs one routed request inside the bulkhead: the quarantine gate,
// the op itself under panic containment, and the health/latency
// accounting around it.
func (t *tenant) serve(ctx context.Context, s *Server, req *wire.Request, resp *wire.Response) error {
	if err := t.gate(); err != nil {
		t.requests.add(1)
		t.failures.add(1)
		return err
	}
	t.requests.add(1)
	start := time.Now()
	err := t.run(ctx, s, req, resp)
	t.lat.observe(time.Since(start))
	if t.record(err) {
		s.event("tenant_quarantined", map[string]any{"tenant": t.name, "cause": err.Error()})
	}
	return err
}

// run executes one op. A panic anywhere in the handler (not just inside
// the System, which recovers its own) is contained here and surfaces as a
// typed internal error — poison degrades the tenant, never the process.
func (t *tenant) run(ctx context.Context, s *Server, req *wire.Request, resp *wire.Response) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = governor.NewInternal(r, debug.Stack())
		}
	}()
	switch req.Op {
	case wire.OpPing:
		resp.Version = t.sys.CatalogVersion()
		return nil
	case wire.OpEstimate:
		algo, err := parseAlgo(req.Algo)
		if err != nil {
			return err
		}
		est, err := t.sys.EstimateContext(ctx, req.SQL, algo)
		if err != nil {
			return err
		}
		resp.Estimate = &wire.Estimate{
			Algorithm:      est.Algorithm.String(),
			FinalSize:      est.FinalSize,
			JoinOrder:      est.JoinOrder,
			CatalogVersion: est.CatalogVersion,
			Warnings:       est.Warnings,
		}
		return nil
	case wire.OpQuery:
		algo, err := parseAlgo(req.Algo)
		if err != nil {
			return err
		}
		// Reserve the query's working memory against the process pool
		// before it can queue: pool pressure sheds here, typed and
		// retryable, rather than admitting work the process cannot hold.
		release, err := s.pool.acquire(t.name, s.queryReserve(t))
		if err != nil {
			t.memSheds.add(1)
			s.event("mem_shed", map[string]any{"tenant": t.name})
			return err
		}
		defer release()
		res, err := t.sys.QueryContext(ctx, req.SQL, algo)
		if err != nil {
			return err
		}
		resp.Result = &wire.Result{
			Count:          res.Count,
			Columns:        res.Columns,
			Rows:           res.Rows,
			CatalogVersion: res.Estimate.CatalogVersion,
		}
		return nil
	case wire.OpExplain:
		algo, err := parseAlgo(req.Algo)
		if err != nil {
			return err
		}
		out, err := t.sys.ExplainContext(ctx, req.SQL, algo)
		if err != nil {
			return err
		}
		resp.Explain = out
		return nil
	case wire.OpDeclare:
		if err := t.sys.DeclareStats(req.Table, req.Rows, req.Distinct); err != nil {
			return err
		}
		// The version acknowledges the mutation: on a durable tenant it
		// is fsynced before DeclareStats returns, so a client that saw
		// this response can expect the version after any restart.
		resp.Version = t.sys.CatalogVersion()
		return nil
	case wire.OpDigest:
		v, d, err := t.sys.CatalogDigest()
		if err != nil {
			return err
		}
		resp.Version, resp.Digest = v, d
		return nil
	case wire.OpFault:
		return t.fault(ctx, s, req)
	default:
		return fmt.Errorf("%w: unknown op %q", els.ErrBadWire, req.Op)
	}
}

// fault is the chaos hook: tenant-targeted failure injection, honored
// only when the server opted in (tests and the chaos fleet).
func (t *tenant) fault(ctx context.Context, s *Server, req *wire.Request) error {
	if !s.cfg.EnableFaultOps {
		return fmt.Errorf("%w: fault ops are not enabled on this server", els.ErrBadWire)
	}
	switch req.Fault {
	case "panic":
		panic(fmt.Sprintf("injected poison for tenant %s", t.name))
	case "stall":
		d := time.Duration(req.StallMillis) * time.Millisecond
		if d <= 0 || d > 5*time.Second {
			d = 50 * time.Millisecond
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("%w: %w", els.ErrCanceled, ctx.Err())
		}
	default:
		return fmt.Errorf("%w: unknown fault %q", els.ErrBadWire, req.Fault)
	}
}

// stats snapshots the tenant's slice of the observability document.
func (t *tenant) stats() wire.TenantStats {
	rs := t.sys.RobustnessStats()
	t.mu.Lock()
	degraded := t.degraded
	t.mu.Unlock()
	ts := wire.TenantStats{
		Tenant:           t.name,
		CatalogVersion:   rs.CatalogVersion,
		Durable:          t.durable,
		Degraded:         degraded != nil,
		Requests:         t.requests.load(),
		Failures:         t.failures.load(),
		Admitted:         rs.Admitted,
		ShedQueueFull:    rs.ShedQueueFull,
		ShedQueueTimeout: rs.ShedQueueTimeout,
		RejectedClosed:   rs.RejectedClosed,
		InFlight:         rs.InFlight,
		Waiting:          rs.Waiting,
		BreakerState:     rs.BreakerState,
		P50Millis:        t.lat.quantile(0.50).Seconds() * 1000,
		P99Millis:        t.lat.quantile(0.99).Seconds() * 1000,
		P99WaitMillis:    t.wait.quantile(0.99).Seconds() * 1000,
		SpilledQueries:   rs.SpilledQueries,
		SpilledBytes:     rs.SpilledBytes,
		PeakQueryBytes:   rs.PeakQueryBytes,
	}
	if degraded != nil {
		ts.DegradedReason = degraded.Error()
	}
	return ts
}

// parseAlgo resolves a request's algorithm name (by the Algorithm.String
// spelling, case-insensitively); empty selects ELS.
func parseAlgo(name string) (els.Algorithm, error) {
	if name == "" {
		return els.AlgorithmELS, nil
	}
	for _, a := range els.Algorithms() {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown algorithm %q", els.ErrParse, name)
}
