package server

import (
	"errors"
	"testing"

	els "repro"
)

// The pool admits reservations up to the per-tenant share, sheds over it
// with a typed retryable pressure error, and restores capacity on
// release.
func TestMemPoolAcquireShedRelease(t *testing.T) {
	p := newMemPool(1000, 2) // share = 500
	rel1, err := p.acquire("a", 300)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := p.acquire("a", 200)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.acquire("a", 1)
	if !errors.Is(err, els.ErrOverloaded) {
		t.Fatalf("over-share acquire returned %v, want retryable ErrOverloaded", err)
	}
	var pe *els.MemoryPressureError
	if !errors.As(err, &pe) {
		t.Fatalf("shed error is %T, want *els.MemoryPressureError", err)
	}
	if pe.Tenant != "a" || pe.Requested != 1 || pe.InUse != 500 || pe.Share != 500 {
		t.Fatalf("pressure error fields %+v", pe)
	}
	if errors.Is(err, els.ErrMemory) {
		t.Fatal("a pool shed matched ErrMemory — clients would classify it fatal")
	}
	// The other tenant's share is untouched by a's pressure.
	relB, err := p.acquire("b", 500)
	if err != nil {
		t.Fatalf("neighbor shed by a hog tenant: %v", err)
	}
	relB()
	rel1()
	rel2()
	if got := p.snapshot(); got != 0 {
		t.Fatalf("pool holds %d bytes after all releases", got)
	}
	if got := p.tenantInUse("a"); got != 0 {
		t.Fatalf("tenant ledger holds %d bytes after release", got)
	}
}

// release is idempotent: double-calling must not free capacity twice.
func TestMemPoolReleaseIdempotent(t *testing.T) {
	p := newMemPool(1000, 1)
	rel, err := p.acquire("a", 600)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	if got := p.snapshot(); got != 0 {
		t.Fatalf("double release left %d bytes (went negative and wrapped?)", got)
	}
	if _, err := p.acquire("a", 1000); err != nil {
		t.Fatalf("full share unavailable after idempotent release: %v", err)
	}
}

// A pool-wide cap binds even when the individual share would admit: with
// shares summing over total (integer division keeps them under here, so
// exercise via two tenants racing for the remainder).
func TestMemPoolTotalBinds(t *testing.T) {
	p := newMemPool(1000, 2)
	if _, err := p.acquire("a", 500); err != nil {
		t.Fatal(err)
	}
	if _, err := p.acquire("b", 500); err != nil {
		t.Fatal(err)
	}
	if _, err := p.acquire("a", 1); !errors.Is(err, els.ErrOverloaded) {
		t.Fatalf("full pool admitted more: %v", err)
	}
}

// A disabled pool (total <= 0) admits everything and its releases are
// harmless no-ops.
func TestMemPoolDisabled(t *testing.T) {
	p := newMemPool(0, 4)
	if p.enabled() {
		t.Fatal("zero-total pool reports enabled")
	}
	rel, err := p.acquire("a", 1<<40)
	if err != nil {
		t.Fatalf("disabled pool shed: %v", err)
	}
	rel()
	if got := p.snapshot(); got != 0 {
		t.Fatalf("disabled pool tracked %d bytes", got)
	}
}
