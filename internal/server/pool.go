package server

import (
	"sync"

	els "repro"
)

// memPool is the process-wide working-memory pool (Config.MemoryPool)
// divided into equal per-tenant shares. Query-class requests reserve
// their tenant's expected working memory before they reach the tenant's
// admission queue; a reservation that does not fit the tenant's share (or
// the pool as a whole) is shed immediately with a typed, retryable
// pressure error instead of queueing work that is doomed to exhaust the
// process. The shed unwraps to ErrOverloaded, so the existing wire
// machinery attaches a Retry-After hint and clients classify it exactly
// like an admission shed.
//
// The pool bounds reservations, not true allocations: inside the slot the
// query's own governor (Limits.MaxMemory) enforces the byte budget
// exactly and spills hash joins that exceed it, so the pool's job is only
// to keep N tenants' worth of budgets from being admitted into a process
// that cannot hold them simultaneously.
type memPool struct {
	total int64 // 0 disables the pool
	share int64 // per-tenant cap: total / number of tenants

	//lockorder:level 16
	mu    sync.Mutex
	used  map[string]int64 // per-tenant bytes currently reserved
	inUse int64            // pool-wide bytes currently reserved

	sheds counter
}

// newMemPool sizes the pool; total <= 0 disables it (every acquire
// succeeds).
func newMemPool(total int64, tenants int) *memPool {
	p := &memPool{used: make(map[string]int64)}
	if total > 0 && tenants > 0 {
		p.total = total
		p.share = total / int64(tenants)
	}
	return p
}

// enabled reports whether the pool bounds anything.
func (p *memPool) enabled() bool { return p.total > 0 }

// acquire reserves n bytes for tenant, or sheds with a typed
// *els.MemoryPressureError when the tenant's share or the pool is
// exhausted. The returned release is idempotent and must be called when
// the request finishes.
func (p *memPool) acquire(tenant string, n int64) (release func(), err error) {
	if !p.enabled() || n <= 0 {
		return func() {}, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used[tenant]+n > p.share || p.inUse+n > p.total {
		p.sheds.add(1)
		return nil, &els.MemoryPressureError{
			Tenant: tenant, Requested: n, InUse: p.used[tenant], Share: p.share,
		}
	}
	p.used[tenant] += n
	p.inUse += n
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.used[tenant] -= n
			p.inUse -= n
			p.mu.Unlock()
		})
	}, nil
}

// tenantInUse returns one tenant's current reservation.
func (p *memPool) tenantInUse(tenant string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used[tenant]
}

// snapshot returns the pool-wide reservation gauge.
func (p *memPool) snapshot() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}
