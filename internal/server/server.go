// Package server is the multi-tenant wire server behind cmd/elsserve: a
// stdlib-only TCP front end multiplexing per-tenant els.Systems behind
// the length-prefixed JSON frame protocol of internal/wire.
//
// # Bulkheads
//
// Every tenant gets its own System — its own copy-on-write snapshot
// store, durable directory, admission budget, retry/breaker policy, and
// plan cache — so tenants share a process but no failure domain: one
// tenant's overload sheds only its own queue, one tenant's poisoned
// statistics or panicking query quarantines only its own bulkhead, and
// one tenant's frozen WAL stops only its own mutations. The server adds
// the edge hardening around those bulkheads: client deadlines propagate
// into serving contexts (and from there into every governor budget),
// slow or stalled clients are bounded by read/write deadlines, every
// failure crosses the wire as a typed error with a Retry-After hint when
// resubmission is sensible, and a handler panic degrades the tenant
// instead of killing the process.
//
// # Graceful drain
//
// Shutdown (SIGTERM in cmd/elsserve) stops accepting, lets in-flight
// requests finish (bounded by the caller's context; stragglers are
// canceled and answer with typed ErrCanceled), answers late arrivals with
// a typed draining error carrying a Retry-After hint, checkpoints every
// durable tenant, closes every tenant's System (which drains its
// admission slots to zero and flushes its WAL), and only then returns.
// Every mutation acknowledged before the drain is recoverable by
// restarting the server over the same data root — the chaos fleet
// (internal/chaos.RunServer) audits exactly that, by digest.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	els "repro"
	"repro/internal/wire"
	"repro/internal/workpool"
)

// Config shapes one server. Addr and at least one tenant are required;
// every duration has a serving-grade default.
type Config struct {
	// Addr is the TCP listen address (use 127.0.0.1:0 in tests).
	Addr string
	// DataRoot, when set, makes every tenant durable: tenant X lives in
	// DataRoot/X (created or recovered by els.Open). Empty means
	// in-memory tenants.
	DataRoot string
	// Tenants are the hosted bulkheads.
	Tenants []TenantConfig
	// MemoryPool bounds the process's total query working memory in
	// bytes, split into equal per-tenant shares. A query-class request
	// whose tenant reservation (its Limits.MaxMemory, or a pool-derived
	// default) does not fit is shed immediately with a typed retryable
	// pressure error and a Retry-After hint, instead of queueing work the
	// process cannot hold. 0 disables the pool.
	MemoryPool int64
	// IdleTimeout bounds the wait for a client's next request frame
	// before the connection is shed (default 2m). It is the stalled-client
	// bulkhead on the read side.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response (default 10s) — a client
	// that stops reading cannot pin a handler goroutine.
	WriteTimeout time.Duration
	// MaxFrame bounds request frames (default wire.DefaultMaxFrame).
	MaxFrame uint32
	// PoisonThreshold is how many consecutive internal errors quarantine
	// a tenant (default 5).
	PoisonThreshold int
	// DrainRetryAfter is the Retry-After hint attached to requests shed
	// because the server is draining (default 250ms) — long enough for a
	// rolling restart's replacement to come up.
	DrainRetryAfter time.Duration
	// OverloadRetryAfter is the Retry-After hint attached to overload
	// sheds when the tenant has no queue timeout to derive one from
	// (default 25ms).
	OverloadRetryAfter time.Duration
	// EnableFaultOps honors wire.OpFault (tests and the chaos fleet
	// only).
	EnableFaultOps bool
	// LogW, if non-nil, receives one JSON line per lifecycle event
	// (accepts, quarantines, drain phases) — the artifact CI uploads.
	LogW io.Writer
}

// Server is one running instance. Create with Start, stop with Shutdown.
type Server struct {
	cfg     Config
	ln      net.Listener
	tenants map[string]*tenant
	names   []string
	pool    *memPool

	connCtx    context.Context
	connCancel context.CancelFunc

	wg sync.WaitGroup // accept loop + connection handlers

	// In-flight request tracking. reqMu orders registration against the
	// drain's Wait: once reqClosed flips, arrivals are refused (typed
	// draining error) without touching reqWG, so Add never races Wait.
	//lockorder:level 12
	reqMu     sync.Mutex
	reqClosed bool
	reqWG     sync.WaitGroup

	//lockorder:level 10
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	shutdown bool
	drainErr error
	drained  chan struct{}

	draining   atomic.Bool
	accepted   counter
	requests   counter
	badFrames  counter
	drainNanos atomic.Int64
	start      time.Time
	//lockorder:level 70
	logMu       sync.Mutex
	shutdownOne sync.Once
}

// Start opens (or recovers) every tenant, binds the listener, and begins
// serving. ctx is the server's base context: every connection's serving
// context derives from it, so canceling it hard-stops in-flight work —
// prefer Shutdown, which drains first.
func Start(ctx context.Context, cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("%w: a server needs at least one tenant", els.ErrTenant)
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.PoisonThreshold <= 0 {
		cfg.PoisonThreshold = 5
	}
	if cfg.DrainRetryAfter <= 0 {
		cfg.DrainRetryAfter = 250 * time.Millisecond
	}
	if cfg.OverloadRetryAfter <= 0 {
		cfg.OverloadRetryAfter = 25 * time.Millisecond
	}
	connCtx, connCancel := context.WithCancel(ctx)
	s := &Server{
		cfg:        cfg,
		pool:       newMemPool(cfg.MemoryPool, len(cfg.Tenants)),
		tenants:    make(map[string]*tenant, len(cfg.Tenants)),
		conns:      make(map[net.Conn]struct{}),
		drained:    make(chan struct{}),
		connCtx:    connCtx,
		connCancel: connCancel,
		start:      time.Now(),
	}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			connCancel()
			return nil, fmt.Errorf("%w: tenant name required", els.ErrTenant)
		}
		if _, dup := s.tenants[tc.Name]; dup {
			connCancel()
			return nil, fmt.Errorf("%w: duplicate tenant %q", els.ErrTenant, tc.Name)
		}
		t, err := s.openTenant(tc)
		if err != nil {
			connCancel()
			s.closeTenants(ctx)
			return nil, err
		}
		s.tenants[tc.Name] = t
		s.names = append(s.names, tc.Name)
	}
	sort.Strings(s.names)
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		connCancel()
		s.closeTenants(ctx)
		return nil, fmt.Errorf("%w: listening on %s: %w", els.ErrBadWire, cfg.Addr, err)
	}
	s.ln = ln
	s.event("listening", map[string]any{"addr": ln.Addr().String(), "tenants": s.names})
	workpool.Go(&s.wg, s.logWorkerErr, func() error {
		s.acceptLoop()
		return nil
	})
	return s, nil
}

// openTenant creates or recovers one tenant's System and applies its
// policies. A fresh tenant (no tables in its catalog) runs its Bootstrap.
func (s *Server) openTenant(tc TenantConfig) (*tenant, error) {
	var sys *els.System
	durable := s.cfg.DataRoot != ""
	if durable {
		dir := filepath.Join(s.cfg.DataRoot, tc.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("%w: creating tenant dir %s: %w", els.ErrDurability, dir, err)
		}
		var err error
		sys, err = els.Open(dir)
		if err != nil {
			return nil, fmt.Errorf("opening tenant %q: %w", tc.Name, err)
		}
	} else {
		sys = els.New()
	}
	sys.SetLimits(tc.Limits)
	if tc.Retry.Enabled() {
		sys.SetRetryPolicy(tc.Retry)
	}
	sys.SetBreaker(tc.Breaker)
	if tc.Bootstrap != nil && len(sys.Tables()) == 0 {
		if err := tc.Bootstrap(sys); err != nil {
			return nil, fmt.Errorf("bootstrapping tenant %q: %w", tc.Name, err)
		}
	}
	return newTenant(tc, sys, durable, s.cfg.PoisonThreshold), nil
}

// Addr returns the bound listen address (resolves :0 to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// System returns a tenant's System (nil for unknown tenants) — the
// in-process escape hatch tests and cmd/elsserve bootstrap paths use.
func (s *Server) System(tenant string) *els.System {
	t := s.tenants[tenant]
	if t == nil {
		return nil
	}
	return t.sys
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatally broken
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.add(1)
		c := conn
		workpool.Go(&s.wg, s.logWorkerErr, func() error {
			defer s.dropConn(c)
			s.handleConn(s.connCtx, c)
			return nil
		})
	}
}

// dropConn closes and untracks one connection.
func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handleConn serves one connection's request loop. Read deadlines shed
// stalled clients; a torn frame ends the connection (the stream is
// desynced past it), while a well-framed but malformed request is
// answered typed and the connection kept.
func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return
		}
		payload, err := wire.ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			if err != io.EOF && !isConnShed(err) {
				// Genuinely mangled bytes: answer typed (best effort),
				// then hang up — frame boundaries are unrecoverable.
				s.badFrames.add(1)
				s.writeResp(conn, &wire.Response{Err: wire.FromError(err, 0)})
			}
			return
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// The envelope was intact, so the stream is still framed:
			// answer typed and keep serving.
			s.badFrames.add(1)
			if !s.writeResp(conn, &wire.Response{Err: wire.FromError(err, 0)}) {
				return
			}
			continue
		}
		resp := s.serveReq(ctx, req)
		if !s.writeResp(conn, resp) {
			return
		}
	}
}

// isConnShed reports wire failures that are connection lifecycle, not
// protocol violations: deadlines (stalled client shed) and closes.
func isConnShed(err error) bool {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe)
}

// writeResp writes one framed response under the write deadline,
// reporting whether the connection is still usable.
func (s *Server) writeResp(conn net.Conn, resp *wire.Response) bool {
	payload, err := wire.EncodeResponse(resp)
	if err != nil {
		return false
	}
	if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		return false
	}
	return wire.WriteFrame(conn, payload) == nil
}

// serveReq dispatches one request: drain gate, tenant routing, deadline
// propagation, and the typed-error mapping onto the wire.
func (s *Server) serveReq(ctx context.Context, req *wire.Request) *wire.Response {
	s.requests.add(1)
	resp := &wire.Response{ID: req.ID}
	if !s.beginReq() {
		// Draining. Observability still answers; everything else is shed
		// typed with the drain's Retry-After hint.
		if req.Op == wire.OpStats {
			resp.Stats = s.statsDoc()
			resp.OK = true
			return resp
		}
		resp.Err = s.wireErr(req, fmt.Errorf("%w: server draining, resubmit elsewhere or after Retry-After", els.ErrClosed))
		return resp
	}
	defer s.reqWG.Done()
	if req.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	if err := s.dispatch(ctx, req, resp); err != nil {
		resp.Err = s.wireErr(req, err)
		return resp
	}
	resp.OK = true
	return resp
}

// beginReq registers one in-flight request, or reports that the server is
// draining and the request must be shed instead.
func (s *Server) beginReq() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.reqClosed {
		return false
	}
	s.reqWG.Add(1)
	return true
}

// dispatch routes one request. OpStats answers even during drain — an
// operator's observability must outlive admission.
func (s *Server) dispatch(ctx context.Context, req *wire.Request, resp *wire.Response) error {
	if req.Op == wire.OpStats {
		resp.Stats = s.statsDoc()
		return nil
	}
	if req.Op == wire.OpPing && req.Tenant == "" {
		return nil
	}
	t := s.tenants[req.Tenant]
	if t == nil {
		return &els.TenantError{Tenant: req.Tenant, Reason: "unknown tenant"}
	}
	return t.serve(ctx, s, req, resp)
}

// wireErr maps a typed failure onto the wire, attaching the Retry-After
// hint the failure class calls for.
func (s *Server) wireErr(req *wire.Request, err error) *wire.Error {
	var hint time.Duration
	switch {
	case errors.Is(err, els.ErrOverloaded):
		hint = s.cfg.OverloadRetryAfter
		if t := s.tenants[req.Tenant]; t != nil {
			if qt := t.sys.Limits().QueueTimeout; qt > 0 {
				// The shed tells the client the queue was full for a
				// whole queue timeout: backing off for about one more is
				// the cheapest honest hint the server has.
				hint = qt
			}
		}
	case errors.Is(err, els.ErrClosed):
		hint = s.cfg.DrainRetryAfter
	case errors.Is(err, els.ErrStaleReplica):
		hint = 5 * time.Millisecond
	}
	return wire.FromError(err, hint)
}

// queryReserve sizes one query's memory-pool reservation for a tenant:
// its per-query byte budget when one is set (the pool then admits only as
// many concurrent budgets as truly fit), otherwise a quarter of the
// tenant's share — four unbudgeted queries per tenant at a time, whatever
// the pool's absolute size.
func (s *Server) queryReserve(t *tenant) int64 {
	if m := t.sys.Limits().MaxMemory; m > 0 {
		return m
	}
	return s.pool.share / 4
}

// statsDoc snapshots the observability document.
func (s *Server) statsDoc() *wire.ServerStats {
	doc := &wire.ServerStats{
		ConnsAccepted: s.accepted.load(),
		Requests:      s.requests.load(),
		BadFrames:     s.badFrames.load(),
		MemoryPool:    s.pool.total,
		MemoryInUse:   s.pool.snapshot(),
		MemSheds:      s.pool.sheds.load(),
		Draining:      s.draining.Load(),
		DrainMillis:   float64(s.drainNanos.Load()) / 1e6,
		UptimeMillis:  float64(time.Since(s.start)) / 1e6,
	}
	s.mu.Lock()
	doc.ActiveConns = len(s.conns)
	s.mu.Unlock()
	for _, name := range s.names {
		t := s.tenants[name]
		ts := t.stats()
		ts.MemSheds = t.memSheds.load()
		ts.MemInUse = s.pool.tenantInUse(name)
		doc.Tenants = append(doc.Tenants, ts)
	}
	return doc
}

// Stats snapshots the observability document in-process (what OpStats
// serves over the wire).
func (s *Server) Stats() *wire.ServerStats { return s.statsDoc() }

// Shutdown is the graceful drain: stop accepting, answer new requests
// with a typed draining error, wait for in-flight requests (canceling
// stragglers when ctx expires), checkpoint every durable tenant, close
// every tenant's System, then close the remaining connections. It is
// idempotent — concurrent calls share one drain — and returns the first
// tenant close/checkpoint failure, or ctx's error when the drain deadline
// was hit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOne.Do(func() { s.doShutdown(ctx) })
	select {
	case <-s.drained:
	case <-ctx.Done():
		// A second caller with a shorter deadline than the drain owner's.
		return fmt.Errorf("%w: %w", els.ErrCanceled, ctx.Err())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainErr
}

func (s *Server) doShutdown(ctx context.Context) {
	start := time.Now()
	s.draining.Store(true)
	s.reqMu.Lock()
	s.reqClosed = true
	s.reqMu.Unlock()
	s.mu.Lock()
	s.shutdown = true
	s.mu.Unlock()
	s.event("drain_start", nil)
	s.ln.Close()

	// Phase 1: in-flight requests. The drain context bounds the wait;
	// past it, the connection context is canceled so stragglers abort
	// with typed ErrCanceled and still get their response written.
	done := workpool.Async(func() error { s.reqWG.Wait(); return nil })
	var firstErr error
	select {
	case <-done:
	case <-ctx.Done():
		s.event("drain_deadline", map[string]any{"waited_ms": time.Since(start).Milliseconds()})
		s.connCancel()
		<-done
		firstErr = fmt.Errorf("%w: drain deadline hit; stragglers canceled: %w", els.ErrCanceled, ctx.Err())
	}

	// Phase 2: tenants. Checkpoint first — System.Close refuses
	// checkpoints once its own drain starts, and closes the WAL the
	// checkpoint compacts.
	for _, name := range s.names {
		t := s.tenants[name]
		if t.durable {
			if err := t.sys.Checkpoint(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("checkpointing tenant %q: %w", name, err)
			}
		}
	}
	if err := s.closeTenants(ctx); err != nil && firstErr == nil {
		firstErr = err
	}

	// Phase 3: connections. Handlers wake from their reads and exit; the
	// accept loop already exited with the listener.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connCancel()
	s.wg.Wait()

	s.drainNanos.Store(int64(time.Since(start)))
	s.event("drain_done", map[string]any{"drain_ms": time.Since(start).Milliseconds()})
	s.mu.Lock()
	s.drainErr = firstErr
	s.mu.Unlock()
	close(s.drained)
}

// closeTenants closes every opened tenant's System, returning the first
// failure.
func (s *Server) closeTenants(ctx context.Context) error {
	var firstErr error
	for _, name := range s.names {
		if t := s.tenants[name]; t != nil {
			if err := t.sys.Close(ctx); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("closing tenant %q: %w", name, err)
			}
		}
	}
	return firstErr
}

// logWorkerErr records a worker failure in the event log; the bulkheads
// and panic containment mean these are lifecycle noise (a conn handler's
// recovered panic), never process-fatal.
func (s *Server) logWorkerErr(err error) {
	s.event("worker_error", map[string]any{"error": err.Error()})
}

// event emits one JSONL event (no-op without a log writer).
func (s *Server) event(kind string, fields map[string]any) {
	if s.cfg.LogW == nil {
		return
	}
	doc := map[string]any{"event": kind, "elapsed_ms": time.Since(s.start).Milliseconds()}
	for k, v := range fields {
		doc[k] = v
	}
	line, err := json.Marshal(doc)
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.cfg.LogW.Write(append(line, '\n'))
}
