package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	els "repro"
	"repro/internal/wire"
)

// startTestServer brings up an in-memory two-tenant server and returns a
// connected client. Tenant "a" and tenant "b" publish deliberately
// different cardinalities for the same table name, so a cross-tenant read
// is detectable from any single response.
func startTestServer(t *testing.T, mutate func(*Config)) (*Server, *wire.Client) {
	t.Helper()
	cfg := Config{
		Addr: "127.0.0.1:0",
		Tenants: []TenantConfig{
			{
				Name:   "a",
				Limits: els.Limits{Timeout: 5 * time.Second, MaxConcurrent: 2, MaxQueue: 2, QueueTimeout: 50 * time.Millisecond},
				Bootstrap: func(sys *els.System) error {
					return sys.DeclareStats("T", 1111, map[string]float64{"x": 10})
				},
			},
			{
				Name:   "b",
				Limits: els.Limits{Timeout: 5 * time.Second, MaxConcurrent: 2},
				Bootstrap: func(sys *els.System) error {
					return sys.DeclareStats("T", 2222, map[string]float64{"x": 10})
				},
			},
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := Start(ctx, cfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
		cancel()
	})
	cl, err := wire.Dial(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestServerRoutesTenantsIndependently(t *testing.T) {
	_, cl := startTestServer(t, nil)
	ctx := context.Background()

	for tenant, want := range map[string]float64{"a": 1111, "b": 2222} {
		resp, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: tenant, SQL: "SELECT COUNT(*) FROM T"})
		if err != nil {
			t.Fatalf("tenant %s: %v", tenant, err)
		}
		if resp.Estimate.FinalSize != want {
			t.Errorf("tenant %s estimated %g, want its own catalog's %g — cross-tenant read",
				tenant, resp.Estimate.FinalSize, want)
		}
	}
}

func TestServerTypedErrorsAcrossTheWire(t *testing.T) {
	_, cl := startTestServer(t, nil)
	ctx := context.Background()

	// Unknown tenant: typed tenant error, not quarantined.
	_, err := cl.Do(ctx, &wire.Request{Op: wire.OpPing, Tenant: "nobody"})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) || !errors.Is(err, els.ErrTenant) {
		t.Fatalf("unknown tenant: err = %v, want the tenant sentinel", err)
	}
	if remote.Wire.Quarantined {
		t.Error("unknown tenant flagged quarantined")
	}

	// Parse failure: the exact in-process class, across the wire.
	if _, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: "a", SQL: "SELEKT"}); !errors.Is(err, els.ErrParse) {
		t.Fatalf("parse failure: err = %v, want ErrParse", err)
	}

	// Unknown algorithm and unknown op: typed.
	if _, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: "a", SQL: "SELECT COUNT(*) FROM T", Algo: "nope"}); !errors.Is(err, els.ErrParse) {
		t.Fatalf("unknown algorithm: err = %v, want ErrParse", err)
	}
	if _, err := cl.Do(ctx, &wire.Request{Op: "warp", Tenant: "a"}); !errors.Is(err, els.ErrBadWire) {
		t.Fatalf("unknown op: err = %v, want ErrBadWire", err)
	}

	// Fault ops are refused unless the server opted in.
	if _, err := cl.Do(ctx, &wire.Request{Op: wire.OpFault, Tenant: "a", Fault: "panic"}); !errors.Is(err, els.ErrBadWire) {
		t.Fatalf("fault op on a production server: err = %v, want ErrBadWire", err)
	}
}

// The client's deadline propagates into the tenant's serving context: a
// stalled handler aborts with the caller's cancellation class instead of
// running to the server's own limits.
func TestServerPropagatesClientDeadline(t *testing.T) {
	_, cl := startTestServer(t, func(c *Config) { c.EnableFaultOps = true })
	ctx := context.Background()

	start := time.Now()
	_, err := cl.Do(ctx, &wire.Request{
		Op: wire.OpFault, Tenant: "a", Fault: "stall", StallMillis: 4000,
		DeadlineMillis: 50,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, els.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled from the propagated deadline", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stall ran %v despite a 50ms propagated deadline", elapsed)
	}
}

// Declares acknowledge with the published version, digests expose the
// catalog identity, and both round-trip the wire.
func TestServerDeclareAndDigest(t *testing.T) {
	_, cl := startTestServer(t, nil)
	ctx := context.Background()

	before, err := cl.Do(ctx, &wire.Request{Op: wire.OpDigest, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := cl.Do(ctx, &wire.Request{Op: wire.OpDeclare, Tenant: "a", Table: "U", Rows: 500,
		Distinct: map[string]float64{"y": 5}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Version <= before.Version {
		t.Fatalf("declare acknowledged version %d, want past %d", ack.Version, before.Version)
	}
	after, err := cl.Do(ctx, &wire.Request{Op: wire.OpDigest, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != ack.Version || after.Digest == before.Digest || after.Digest == "" {
		t.Fatalf("digest did not advance with the mutation: before %d:%.8s, ack %d, after %d:%.8s",
			before.Version, before.Digest, ack.Version, after.Version, after.Digest)
	}
}

// Repeated handler panics quarantine the tenant — typed, sticky, and
// invisible to the neighbor tenant.
func TestServerQuarantineIsolatesTenant(t *testing.T) {
	_, cl := startTestServer(t, func(c *Config) {
		c.EnableFaultOps = true
		c.PoisonThreshold = 2
	})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := cl.Do(ctx, &wire.Request{Op: wire.OpFault, Tenant: "a", Fault: "panic"}); !errors.Is(err, els.ErrInternal) && !errors.Is(err, els.ErrTenant) {
			t.Fatalf("injected panic %d: err = %v, want internal (or the trip)", i, err)
		}
	}
	_, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: "a", SQL: "SELECT COUNT(*) FROM T"})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) || !errors.Is(err, els.ErrTenant) || !remote.Wire.Quarantined {
		t.Fatalf("quarantined tenant: err = %v, want a typed quarantine", err)
	}
	if remote.Wire.Retryable {
		t.Error("quarantine error flagged retryable; the trip is sticky until restart")
	}

	resp, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: "b", SQL: "SELECT COUNT(*) FROM T"})
	if err != nil || resp.Estimate.FinalSize != 2222 {
		t.Fatalf("neighbor tenant: resp %+v err %v, want its usual 2222", resp, err)
	}

	st := statsFor(t, cl, "a")
	if !st.Degraded || st.DegradedReason == "" {
		t.Errorf("stats do not report the quarantine: %+v", st)
	}
}

// Shutdown drains: in-flight work finishes, late arrivals shed typed with
// a Retry-After hint, and stats report the drain.
func TestServerShutdownDrains(t *testing.T) {
	srv, cl := startTestServer(t, func(c *Config) { c.EnableFaultOps = true })
	ctx := context.Background()

	inflight := make(chan error, 1)
	go func() {
		cl2, err := wire.Dial(ctx, srv.Addr())
		if err != nil {
			inflight <- err
			return
		}
		defer cl2.Close()
		_, err = cl2.Do(ctx, &wire.Request{Op: wire.OpFault, Tenant: "a", Fault: "stall", StallMillis: 200})
		inflight <- err
	}()
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()
	time.Sleep(20 * time.Millisecond)

	_, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: "a", SQL: "SELECT COUNT(*) FROM T"})
	var remote *wire.RemoteError
	switch {
	case err == nil:
		t.Error("request admitted mid-drain")
	case errors.As(err, &remote):
		if !errors.Is(err, els.ErrClosed) || remote.RetryAfter() <= 0 {
			t.Errorf("mid-drain shed = %v (hint %v), want typed closed with a hint", err, remote.RetryAfter())
		}
	case errors.Is(err, els.ErrBadWire):
		// The connection was torn down first — an acceptable drain shape.
	default:
		t.Errorf("mid-drain request: %v", err)
	}

	if err := <-inflight; err != nil {
		t.Errorf("in-flight request did not survive the drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	st := srv.Stats()
	if !st.Draining || st.DrainMillis <= 0 || st.ActiveConns != 0 {
		t.Errorf("post-drain stats: %+v", st)
	}
	for _, ts := range st.Tenants {
		if ts.InFlight != 0 || ts.Waiting != 0 {
			t.Errorf("tenant %s leaks slots after drain: %+v", ts.Tenant, ts)
		}
	}
}

// A malformed-but-framed request is answered typed and the connection
// survives; the server keeps serving afterwards.
func TestServerSurvivesMalformedPayload(t *testing.T) {
	_, cl := startTestServer(t, nil)
	ctx := context.Background()

	// Reach under the client: send a framed non-JSON payload manually is
	// covered by the chaos saboteur; here, verify an op-level failure does
	// not poison the connection for the next request.
	if _, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: "a", SQL: "SELEKT"}); !errors.Is(err, els.ErrParse) {
		t.Fatalf("bad SQL: %v", err)
	}
	resp, err := cl.Do(ctx, &wire.Request{Op: wire.OpEstimate, Tenant: "a", SQL: "SELECT COUNT(*) FROM T"})
	if err != nil || resp.Estimate.FinalSize != 1111 {
		t.Fatalf("connection did not survive the failed request: %+v %v", resp, err)
	}
}

func statsFor(t *testing.T, cl *wire.Client, tenant string) wire.TenantStats {
	t.Helper()
	resp, err := cl.Do(context.Background(), &wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range resp.Stats.Tenants {
		if ts.Tenant == tenant {
			return ts
		}
	}
	t.Fatalf("tenant %s missing from stats: %+v", tenant, resp.Stats)
	return wire.TenantStats{}
}

// parseAlgo accepts every published algorithm name case-insensitively.
func TestParseAlgoNames(t *testing.T) {
	for _, a := range els.Algorithms() {
		got, err := parseAlgo(strings.ToLower(a.String()))
		if err != nil || got != a {
			t.Errorf("parseAlgo(%q) = %v, %v", a.String(), got, err)
		}
	}
	if got, err := parseAlgo(""); err != nil || got != els.AlgorithmELS {
		t.Errorf("empty algo = %v, %v, want the ELS default", got, err)
	}
}
