// Package querygen generates seeded random conjunctive join queries with
// matching data specifications, for differential testing of the execution
// pipeline: the same generated query is run through the serial and the
// parallel executor and the results must be identical.
//
// Everything is deterministic in the seed: the table specs (datagen is
// itself seeded), the predicates, and the join-method repertoire. A failing
// seed therefore reproduces exactly.
package querygen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cardest"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// Query is one generated query: data specs for its tables plus the
// predicate conjunction and the join methods the optimizer may use.
type Query struct {
	// Specs describe the tables; generate each with datagen.Generate and
	// the seed of your choice (DataSeed is the conventional one).
	Specs []datagen.TableSpec
	// DataSeed is the seed to pass to datagen.Generate for each spec.
	DataSeed int64
	// Tables are the query's table references (no aliasing).
	Tables []cardest.TableRef
	// Preds is the conjunctive predicate set: an equality join chain plus
	// randomized local predicates.
	Preds []expr.Predicate
	// Methods is the non-empty join-method repertoire for the optimizer.
	Methods []optimizer.JoinMethod
}

// SQL renders the query as the COUNT(*) statement the public System API
// accepts, so generated queries can be driven through the whole serving
// stack (parse, bind, plan cache, execute) and not just the bare executor.
// Constants are int64-only by construction, so Value.String renders valid
// SQL literals.
func (q Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT COUNT(*) FROM ")
	for i, t := range q.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
	}
	for i, p := range q.Preds {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(p.String())
	}
	return b.String()
}

// String renders a compact description for failure messages.
func (q Query) String() string {
	s := fmt.Sprintf("%d tables, methods %v, %d preds:", len(q.Specs), q.Methods, len(q.Preds))
	for _, p := range q.Preds {
		s += " [" + p.String() + "]"
	}
	return s
}

// Generate builds the query for one seed. Table sizes land in 64..320
// rows, straddling the executor's parallel-chunk threshold so both the
// serial and the chunked code paths are exercised across seeds; join
// columns get small domains so joins actually match rows.
func Generate(seed int64) Query { return GenerateNamed(seed, "Q") }

// GenerateNamed is Generate with a caller-chosen table-name prefix, so
// several generated queries' tables can coexist in one catalog (the
// repeated-workload harness loads a whole pool of them into one System).
func GenerateNamed(seed int64, prefix string) Query {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(3) // 1..3 tables

	q := Query{DataSeed: seed*7919 + 1}
	ref := func(i int) string { return fmt.Sprintf("%s%d", prefix, i) }
	for i := 0; i < n; i++ {
		rows := 64 + rng.Intn(257) // 64..320
		kDomain := 4 + rng.Intn(13)
		q.Specs = append(q.Specs, datagen.TableSpec{
			Name: ref(i),
			Rows: rows,
			Columns: []datagen.ColumnSpec{
				{Name: "k", Dist: datagen.DistUniform, Domain: kDomain},
				{Name: "v", Dist: datagen.DistUniform, Domain: 100},
			},
		})
		q.Tables = append(q.Tables, cardest.TableRef{Table: ref(i)})
		if i > 0 {
			q.Preds = append(q.Preds, expr.NewJoin(
				expr.ColumnRef{Table: ref(i - 1), Column: "k"}, expr.OpEQ,
				expr.ColumnRef{Table: ref(i), Column: "k"}))
		}
	}

	// 0–2 local predicates on random tables.
	ops := []expr.CompareOp{expr.OpLT, expr.OpLE, expr.OpGT, expr.OpGE, expr.OpEQ, expr.OpNE}
	for i, locals := 0, rng.Intn(3); i < locals; i++ {
		t := rng.Intn(n)
		q.Preds = append(q.Preds, expr.NewConst(
			expr.ColumnRef{Table: ref(t), Column: "v"},
			ops[rng.Intn(len(ops))],
			storage.Int64(int64(rng.Intn(100)))))
	}

	// Join-method repertoire: hash always (the tentpole's parallel
	// operator); nested loops only for ≤ 2 tables (its re-scanned inner is
	// quadratic, and a 3-way NL join over ~300-row tables dominates the
	// harness's runtime); sort-merge sometimes (its serial path must agree
	// with everything else).
	q.Methods = []optimizer.JoinMethod{optimizer.HashJoin}
	if n <= 2 && rng.Intn(2) == 0 {
		q.Methods = append(q.Methods, optimizer.NestedLoop)
	}
	if rng.Intn(2) == 0 {
		q.Methods = append(q.Methods, optimizer.SortMerge)
	}
	return q
}
