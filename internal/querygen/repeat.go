package querygen

import "math/rand"

// RepeatSchedule returns a deterministic sequence of n indexes into a pool
// of `pool` distinct queries, Zipf-skewed so a handful of queries dominate
// the traffic — the shape of a dashboard or reporting workload that
// re-issues the same statements over and over. It is the driver for the
// plan cache's repeated-query benchmark: with skew ≈ 1.5 and a pool much
// smaller than n, well over 90% of issues are re-issues and should be
// served from cache.
//
// skew is the Zipf s parameter and must be > 1 for skew to apply; values
// ≤ 1 fall back to 1.5. Everything is deterministic in seed.
func RepeatSchedule(seed int64, pool, n int, skew float64) []int {
	if pool <= 0 || n <= 0 {
		return nil
	}
	if skew <= 1 {
		skew = 1.5
	}
	out := make([]int, n)
	if pool == 1 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, skew, 1, uint64(pool-1))
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}
