package sqlparse

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// Bind resolves the query's column references against the catalog:
// unqualified columns (the paper writes "s = m AND s < 100") are bound to
// the unique FROM-clause table exposing that column; qualified references
// are validated. Bind mutates the query in place and returns an error on
// unknown tables, unknown or ambiguous columns, and duplicate aliases.
func Bind(q *Query, cat *catalog.Catalog) error {
	if q == nil || cat == nil {
		return fmt.Errorf("sqlparse: Bind requires a query and a catalog")
	}
	if len(q.Tables) == 0 {
		return fmt.Errorf("sqlparse: query has no tables")
	}
	scope := make(map[string]*catalog.TableStats, len(q.Tables))
	var names []string
	for _, item := range q.Tables {
		ts := cat.Table(item.Table)
		if ts == nil {
			return fmt.Errorf("sqlparse: unknown table %q", item.Table)
		}
		name := strings.ToLower(item.Name())
		if _, dup := scope[name]; dup {
			return fmt.Errorf("sqlparse: duplicate table name or alias %q", item.Name())
		}
		scope[name] = ts
		names = append(names, item.Name())
	}

	resolve := func(ref *expr.ColumnRef) error {
		if ref.Table != "" {
			ts, ok := scope[strings.ToLower(ref.Table)]
			if !ok {
				return fmt.Errorf("sqlparse: column %s references table %q not in FROM clause", ref, ref.Table)
			}
			if ts.Column(ref.Column) == nil {
				return fmt.Errorf("sqlparse: table %q has no column %q", ref.Table, ref.Column)
			}
			return nil
		}
		var found []string
		for _, name := range names {
			if scope[strings.ToLower(name)].Column(ref.Column) != nil {
				found = append(found, name)
			}
		}
		switch len(found) {
		case 0:
			return fmt.Errorf("sqlparse: column %q not found in any FROM table", ref.Column)
		case 1:
			ref.Table = found[0]
			return nil
		default:
			return fmt.Errorf("sqlparse: column %q is ambiguous (tables %s)", ref.Column, strings.Join(found, ", "))
		}
	}

	for i := range q.Projection {
		if err := resolve(&q.Projection[i]); err != nil {
			return err
		}
	}
	for i := range q.GroupBy {
		if err := resolve(&q.GroupBy[i]); err != nil {
			return err
		}
	}
	for i := range q.Select {
		if q.Select[i].Star {
			continue
		}
		if err := resolve(&q.Select[i].Col); err != nil {
			return err
		}
	}
	// Aggregate-query validation: every plain select item must be a
	// grouping column.
	if len(q.Select) > 0 {
		inGroup := func(ref expr.ColumnRef) bool {
			for _, g := range q.GroupBy {
				if g.SameAs(ref) {
					return true
				}
			}
			return false
		}
		for _, it := range q.Select {
			if it.Agg == AggNone && !inGroup(it.Col) {
				return fmt.Errorf("sqlparse: column %s must appear in GROUP BY or inside an aggregate", it.Col)
			}
		}
	}
	for i := range q.Where {
		if err := resolve(&q.Where[i].Left); err != nil {
			return err
		}
		if q.Where[i].RightIsColumn {
			if err := resolve(&q.Where[i].Right); err != nil {
				return err
			}
		}
	}
	for i := range q.Disjunctions {
		for j := range q.Disjunctions[i].Preds {
			p := &q.Disjunctions[i].Preds[j]
			if err := resolve(&p.Left); err != nil {
				return err
			}
			if p.RightIsColumn {
				if err := resolve(&p.Right); err != nil {
					return err
				}
			}
		}
		// Re-validate now that tables are bound: OR-groups must cover a
		// single table and contain no join predicates.
		d, err := expr.NewDisjunction(q.Disjunctions[i].Preds)
		if err != nil {
			return fmt.Errorf("sqlparse: %w", err)
		}
		q.Disjunctions[i] = d
	}
	return nil
}

// ParseAndBind parses the SQL text and binds it against the catalog in one
// step.
func ParseAndBind(input string, cat *catalog.Catalog) (*Query, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if err := Bind(q, cat); err != nil {
		return nil, err
	}
	return q, nil
}
