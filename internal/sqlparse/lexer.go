// Package sqlparse provides a hand-written lexer and recursive-descent
// parser for the conjunctive select-project-join SQL subset the paper works
// with:
//
//	SELECT COUNT(*) | * | col[, col...]
//	FROM table [alias][, table [alias]...]
//	[WHERE comparison AND comparison AND ...]
//
// Comparisons are "operand op operand" with operands being (optionally
// qualified) column references or literals, and op one of = <> != < <= > >=.
// Unqualified columns (the paper writes "s = m AND s < 100") are resolved
// against a catalog in a separate binding step.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokComma
	TokDot
	TokStar
	TokLParen
	TokRParen
	TokEQ
	TokNE
	TokLT
	TokLE
	TokGT
	TokGE
)

// String names the token kind for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokComma:
		return "','"
	case TokDot:
		return "'.'"
	case TokStar:
		return "'*'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokEQ:
		return "'='"
	case TokNE:
		return "'<>'"
	case TokLT:
		return "'<'"
	case TokLE:
		return "'<='"
	case TokGT:
		return "'>'"
	case TokGE:
		return "'>='"
	default:
		return "unknown token"
	}
}

// Token is one lexical unit with its source position.
type Token struct {
	// Kind classifies the token.
	Kind TokenKind
	// Text is the raw token text (unquoted for strings).
	Text string
	// Pos is the byte offset in the input where the token starts.
	Pos int
}

// lexer produces tokens from an input string.
type lexer struct {
	input string
	pos   int
}

// lex tokenizes the whole input, returning a token slice terminated by a
// TokEOF token.
func lex(input string) ([]Token, error) {
	l := &lexer{input: input}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (Token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == ',':
		l.pos++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case c == '.':
		// A dot starting a number like ".5" is part of the number.
		if l.pos+1 < len(l.input) && isDigit(l.input[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case c == '*':
		l.pos++
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case c == '(':
		l.pos++
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case c == ')':
		l.pos++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case c == '=':
		l.pos++
		return Token{Kind: TokEQ, Text: "=", Pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return Token{Kind: TokNE, Text: "!=", Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sqlparse: unexpected '!' at offset %d", start)
	case c == '<':
		l.pos++
		if l.pos < len(l.input) {
			switch l.input[l.pos] {
			case '=':
				l.pos++
				return Token{Kind: TokLE, Text: "<=", Pos: start}, nil
			case '>':
				l.pos++
				return Token{Kind: TokNE, Text: "<>", Pos: start}, nil
			}
		}
		return Token{Kind: TokLT, Text: "<", Pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return Token{Kind: TokGE, Text: ">=", Pos: start}, nil
		}
		return Token{Kind: TokGT, Text: ">", Pos: start}, nil
	case c == '\'':
		return l.lexString()
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.input) && (isDigit(l.input[l.pos+1]) || l.input[l.pos+1] == '.')):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	default:
		return Token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, start)
	}
}

func (l *lexer) lexString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sqlparse: unterminated string starting at offset %d", start)
}

func (l *lexer) lexNumber() (Token, error) {
	start := l.pos
	if l.input[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	seenExp := false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.input) && (l.input[l.pos] == '+' || l.input[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.input[start:l.pos]
	if text == "-" || text == "." {
		return Token{}, fmt.Errorf("sqlparse: malformed number at offset %d", start)
	}
	return Token{Kind: TokNumber, Text: text, Pos: start}, nil
}

func (l *lexer) lexIdent() (Token, error) {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
		l.pos++
	}
	return Token{Kind: TokIdent, Text: l.input[start:l.pos], Pos: start}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
