package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

func groupByCatalog() *catalog.Catalog {
	c := catalog.New()
	c.MustAddTable(catalog.SimpleTable("T", 100, map[string]float64{"k": 10, "v": 50}))
	c.MustAddTable(catalog.SimpleTable("U", 200, map[string]float64{"k": 10, "w": 20}))
	return c
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	q, err := Parse("SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM T GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 6 || len(q.GroupBy) != 1 {
		t.Fatalf("select=%v groupby=%v", q.Select, q.GroupBy)
	}
	wantAggs := []AggFunc{AggNone, AggCount, AggSum, AggMin, AggMax, AggAvg}
	for i, want := range wantAggs {
		if q.Select[i].Agg != want {
			t.Errorf("item %d agg = %v, want %v", i, q.Select[i].Agg, want)
		}
	}
	if !q.Select[1].Star {
		t.Error("COUNT(*) should be Star")
	}
	if q.CountStar || q.Star {
		t.Error("aggregate query must not use the legacy flags")
	}
}

func TestParseCountStarFastPathPreserved(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if !q.CountStar || len(q.Select) != 0 {
		t.Errorf("COUNT(*) fast path broken: %+v", q)
	}
}

func TestParseCountColumn(t *testing.T) {
	q, err := Parse("SELECT COUNT(v) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if q.CountStar || len(q.Select) != 1 || q.Select[0].Agg != AggCount || q.Select[0].Star {
		t.Errorf("COUNT(v) parse: %+v", q)
	}
}

func TestParseGroupByWithoutAggregates(t *testing.T) {
	q, err := Parse("SELECT k FROM T GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0].Agg != AggNone || len(q.GroupBy) != 1 {
		t.Errorf("plain GROUP BY parse: %+v", q)
	}
}

func TestParseAggregateErrors(t *testing.T) {
	bad := []string{
		"SELECT SUM(*) FROM T",
		"SELECT FROB(v) FROM T",
		"SELECT SUM(v FROM T",
		"SELECT * FROM T GROUP BY k",
		"SELECT k FROM T GROUP BY",
		"SELECT k FROM T GROUP k",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestBindGroupBy(t *testing.T) {
	q, err := ParseAndBind("SELECT k, SUM(v) FROM T GROUP BY k", groupByCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if q.GroupBy[0].Table != "T" || q.Select[1].Col.Table != "T" {
		t.Errorf("binding: %+v", q)
	}
}

func TestBindGroupByValidation(t *testing.T) {
	cat := groupByCatalog()
	// Non-grouped plain column.
	if _, err := ParseAndBind("SELECT v, COUNT(*) FROM T GROUP BY k", cat); err == nil {
		t.Error("non-grouped column should fail to bind")
	}
	// Unknown group column.
	if _, err := ParseAndBind("SELECT COUNT(*) FROM T GROUP BY zz", cat); err == nil {
		t.Error("unknown group column should fail")
	}
	// Unknown aggregate subject.
	if _, err := ParseAndBind("SELECT SUM(zz) FROM T", cat); err == nil {
		t.Error("unknown aggregate column should fail")
	}
	// Ambiguous group column across tables.
	if _, err := ParseAndBind("SELECT COUNT(*) FROM T, U WHERE T.k = U.k GROUP BY k", cat); err == nil {
		t.Error("ambiguous group column should fail")
	}
}

func TestGroupByQueryString(t *testing.T) {
	q, err := ParseAndBind("SELECT k, SUM(v) FROM T WHERE v < 10 GROUP BY k", groupByCatalog())
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SUM(T.v)", "GROUP BY T.k", "T.v < 10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if _, err := Parse(s); err != nil {
		t.Errorf("rendered query %q fails to reparse: %v", s, err)
	}
}

func TestAggFuncString(t *testing.T) {
	names := map[AggFunc]string{AggCount: "COUNT", AggSum: "SUM", AggMin: "MIN", AggMax: "MAX", AggAvg: "AVG", AggNone: ""}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %q", f, f.String())
		}
	}
	item := SelectItem{Agg: AggCount, Star: true}
	if item.String() != "COUNT(*)" {
		t.Errorf("item = %q", item.String())
	}
}
