package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
)

func TestParseOrGroup(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE (t.x = 1 OR t.x = 2) AND t.y < 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 || len(q.Disjunctions) != 1 {
		t.Fatalf("where=%v disjunctions=%v", q.Where, q.Disjunctions)
	}
	if len(q.Disjunctions[0].Preds) != 2 {
		t.Errorf("disjuncts = %v", q.Disjunctions[0].Preds)
	}
	if q.Where[0].Op != expr.OpLT {
		t.Errorf("conjunct = %v", q.Where[0])
	}
}

func TestParseOrWithoutParens(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE t.x = 1 OR t.x = 2 OR t.x = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Disjunctions) != 1 || len(q.Disjunctions[0].Preds) != 3 {
		t.Fatalf("disjunctions = %v", q.Disjunctions)
	}
}

func TestParseNestedOrGroups(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE ((t.x = 1 OR t.x = 2) OR t.x = 3)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Disjunctions) != 1 || len(q.Disjunctions[0].Preds) != 3 {
		t.Fatalf("nested OR should flatten: %v", q.Disjunctions)
	}
}

func TestParseAndInsideParensRejected(t *testing.T) {
	if _, err := Parse("SELECT * FROM t WHERE (t.x = 1 AND t.y = 2)"); err == nil {
		t.Error("AND inside parens should be rejected (CNF only)")
	}
}

func TestParseSingleParenComparisonStillWorks(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE (t.x = 1) AND (t.y = 2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 || len(q.Disjunctions) != 0 {
		t.Errorf("where=%v disj=%v", q.Where, q.Disjunctions)
	}
}

func TestBindDisjunction(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("T", 100, map[string]float64{"x": 10, "y": 10}))
	q, err := ParseAndBind("SELECT COUNT(*) FROM T WHERE x = 1 OR y = 2", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Disjunctions[0].Preds[0].Left.Table != "T" {
		t.Errorf("binding failed: %v", q.Disjunctions[0])
	}
	if q.Disjunctions[0].Table() != "T" {
		t.Errorf("table = %q", q.Disjunctions[0].Table())
	}
}

func TestBindDisjunctionCrossTableRejected(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 100, map[string]float64{"x": 10}))
	cat.MustAddTable(catalog.SimpleTable("B", 100, map[string]float64{"y": 10}))
	if _, err := ParseAndBind("SELECT COUNT(*) FROM A, B WHERE x = 1 OR y = 2", cat); err == nil {
		t.Error("cross-table disjunction should fail to bind")
	}
	if _, err := ParseAndBind("SELECT COUNT(*) FROM A, B WHERE A.x = B.y OR A.x = 1", cat); err == nil {
		t.Error("join predicate inside OR should fail to bind")
	}
}

func TestQueryStringWithDisjunction(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("T", 100, map[string]float64{"x": 10, "y": 10}))
	q, err := ParseAndBind("SELECT COUNT(*) FROM T WHERE y < 9 AND (x = 1 OR x = 2)", cat)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, " OR ") || !strings.Contains(s, "T.y < 9") {
		t.Errorf("String = %q", s)
	}
	// Round-trips through the parser.
	if _, err := Parse(s); err != nil {
		t.Errorf("rendered query %q fails to parse: %v", s, err)
	}
}
