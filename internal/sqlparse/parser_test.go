package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, c FROM t WHERE x <= 10 AND y <> 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokenKind{
		TokIdent, TokIdent, TokDot, TokIdent, TokComma, TokIdent, TokIdent,
		TokIdent, TokIdent, TokIdent, TokLE, TokNumber, TokIdent, TokIdent,
		TokNE, TokString, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	// Escaped quote inside string.
	if toks[15].Text != "it's" {
		t.Errorf("string token = %q, want \"it's\"", toks[15].Text)
	}
}

func TestLexNumbers(t *testing.T) {
	for _, s := range []string{"42", "-3", "3.25", ".5", "-0.5", "1e6", "2.5E-3"} {
		toks, err := lex(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if toks[0].Kind != TokNumber || toks[0].Text != s {
			t.Errorf("%q lexed as %v", s, toks[0])
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]TokenKind{
		"=": TokEQ, "<>": TokNE, "!=": TokNE, "<": TokLT, "<=": TokLE, ">": TokGT, ">=": TokGE,
		"(": TokLParen, ")": TokRParen, "*": TokStar,
	}
	for s, want := range cases {
		toks, err := lex(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if toks[0].Kind != want {
			t.Errorf("%q = %s, want %s", s, toks[0].Kind, want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, s := range []string{"'unterminated", "a ! b", "#"} {
		if _, err := lex(s); err == nil {
			t.Errorf("%q should fail to lex", s)
		}
	}
}

func TestTokenKindStringCoverage(t *testing.T) {
	for k := TokEOF; k <= TokGE; k++ {
		if k.String() == "unknown token" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if TokenKind(99).String() != "unknown token" {
		t.Error("unknown kind name wrong")
	}
}

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100")
	if err != nil {
		t.Fatal(err)
	}
	if !q.CountStar {
		t.Error("should be COUNT(*)")
	}
	if len(q.Tables) != 4 || q.Tables[0].Table != "S" || q.Tables[3].Table != "G" {
		t.Errorf("tables = %v", q.Tables)
	}
	if len(q.Where) != 4 {
		t.Fatalf("predicates = %v", q.Where)
	}
	if q.Where[0].Kind() != expr.KindJoin && q.Where[0].Left.Table != "" {
		t.Error("unqualified columns should parse with empty table")
	}
	last := q.Where[3]
	if last.RightIsColumn || last.Op != expr.OpLT || last.Const.Int() != 100 {
		t.Errorf("s < 100 parsed as %v", last)
	}
}

func TestParseProjectionAndAliases(t *testing.T) {
	q, err := Parse("SELECT R_1.a, b FROM R_1, R_2 AS x, R_3 y WHERE R_1.a = x.c")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 2 || q.Projection[0].Table != "R_1" || q.Projection[1].Column != "b" {
		t.Errorf("projection = %v", q.Projection)
	}
	if q.Tables[1].Alias != "x" || q.Tables[2].Alias != "y" {
		t.Errorf("aliases = %v", q.Tables)
	}
	if q.Tables[1].Name() != "x" || q.Tables[0].Name() != "R_1" {
		t.Error("TableItem.Name wrong")
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || q.CountStar {
		t.Error("SELECT * flags wrong")
	}
	if len(q.Where) != 0 {
		t.Error("no WHERE clause expected")
	}
}

func TestParseLiteralsAndFlip(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE 100 > t.x AND t.s = 'abc' AND t.f < 2.5 AND t.b = TRUE AND t.n <> NULL")
	if err != nil {
		t.Fatal(err)
	}
	// 100 > t.x must normalize to t.x < 100.
	p0 := q.Where[0]
	if p0.Left.Column != "x" || p0.Op != expr.OpLT || p0.Const.Int() != 100 {
		t.Errorf("flip failed: %v", p0)
	}
	if q.Where[1].Const.Str() != "abc" {
		t.Errorf("string literal: %v", q.Where[1])
	}
	if q.Where[2].Const.Float() != 2.5 {
		t.Errorf("float literal: %v", q.Where[2])
	}
	if q.Where[3].Const.BoolVal() != true {
		t.Errorf("bool literal: %v", q.Where[3])
	}
	if !q.Where[4].Const.IsNull() {
		t.Errorf("null literal: %v", q.Where[4])
	}
}

func TestParseParenthesizedComparison(t *testing.T) {
	q, err := Parse("SELECT * FROM a, b WHERE (a.x = b.y) AND (a.z > 5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Errorf("predicates = %v", q.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM t",
		"SELECT",
		"SELECT * WHERE x = 1",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x",
		"SELECT * FROM t WHERE x =",
		"SELECT * FROM t WHERE 1 = 2",
		"SELECT * FROM t WHERE x = 1 AND",
		"SELECT * FROM t extra junk",
		"SELECT COUNT FROM t",
		"SELECT * FROM t WHERE (x = 1",
		"SELECT a. FROM t",
		"SELECT * FROM t WHERE x == 1",
		"SELECT * FROM select",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("%q should fail to parse", s)
		}
	}
}

func TestQueryString(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(*) FROM S, M WHERE S.s = M.m AND S.s < 100",
		"SELECT * FROM t",
		"SELECT a.x, b FROM a, c b WHERE a.x = b.y",
	} {
		q, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		// Round trip: rendering then reparsing gives the same structure.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("round trip unstable: %q vs %q", q.String(), q2.String())
		}
	}
}

func bindCatalog() *catalog.Catalog {
	c := catalog.New()
	c.MustAddTable(catalog.SimpleTable("S", 1000, map[string]float64{"s": 1000}))
	c.MustAddTable(catalog.SimpleTable("M", 10000, map[string]float64{"m": 10000}))
	c.MustAddTable(catalog.SimpleTable("T", 10, map[string]float64{"s": 10, "u": 10}))
	return c
}

func TestBindUnqualified(t *testing.T) {
	q, err := ParseAndBind("SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100", bindCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Left.Table != "S" || q.Where[0].Right.Table != "M" {
		t.Errorf("binding failed: %v", q.Where[0])
	}
	if q.Where[1].Left.Table != "S" {
		t.Errorf("local predicate binding failed: %v", q.Where[1])
	}
}

func TestBindAmbiguous(t *testing.T) {
	// Column s exists in both S and T.
	if _, err := ParseAndBind("SELECT * FROM S, T WHERE s < 5", bindCatalog()); err == nil {
		t.Error("ambiguous column should error")
	}
}

func TestBindErrors(t *testing.T) {
	cat := bindCatalog()
	cases := []string{
		"SELECT * FROM nope",
		"SELECT * FROM S, S",             // duplicate name
		"SELECT * FROM S WHERE zz = 1",   // unknown column
		"SELECT * FROM S WHERE M.m = 1",  // table not in FROM
		"SELECT * FROM S WHERE S.zz = 1", // unknown column, qualified
		"SELECT zz FROM S",               // unknown projection
	}
	for _, sql := range cases {
		if _, err := ParseAndBind(sql, cat); err == nil {
			t.Errorf("%q should fail to bind", sql)
		}
	}
	if err := Bind(nil, cat); err == nil {
		t.Error("nil query should error")
	}
	q, _ := Parse("SELECT * FROM S")
	if err := Bind(q, nil); err == nil {
		t.Error("nil catalog should error")
	}
	if err := Bind(&Query{}, cat); err == nil {
		t.Error("query without tables should error")
	}
}

func TestBindAliasScope(t *testing.T) {
	q, err := ParseAndBind("SELECT a.s FROM S a, S b WHERE a.s = b.s AND b.s < 10", bindCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Left.Table != "a" || q.Where[0].Right.Table != "b" {
		t.Errorf("alias binding: %v", q.Where[0])
	}
	// Unqualified s is ambiguous across the two aliases.
	if _, err := ParseAndBind("SELECT * FROM S a, S b WHERE s < 10", bindCatalog()); err == nil {
		t.Error("ambiguous across aliases should error")
	}
}

func TestBindProjectionResolution(t *testing.T) {
	q, err := ParseAndBind("SELECT s, m FROM S, M WHERE s = m", bindCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if q.Projection[0].Table != "S" || q.Projection[1].Table != "M" {
		t.Errorf("projection binding = %v", q.Projection)
	}
}

func TestParsePreservesConstValue(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE t.x = -42")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Const.Type() != storage.TypeInt64 || q.Where[0].Const.Int() != -42 {
		t.Errorf("negative literal: %v", q.Where[0].Const)
	}
}

func TestReservedWordsRejectedAsIdent(t *testing.T) {
	if _, err := Parse("SELECT * FROM t WHERE select = 1"); err == nil {
		t.Error("reserved word as column should error")
	}
	if !strings.Contains(Parse2Err("SELECT * FROM where"), "reserved") {
		t.Error("error should mention reserved word")
	}
}

// Parse2Err returns the error text of a failed parse (empty on success).
func Parse2Err(sql string) string {
	_, err := Parse(sql)
	if err == nil {
		return ""
	}
	return err.Error()
}
