package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/storage"
)

// TableItem is one FROM-clause entry.
type TableItem struct {
	// Table is the base table name.
	Table string
	// Alias is the optional correlation name; empty means the table name
	// itself is used.
	Alias string
}

// Name returns the effective name predicates refer to.
func (t TableItem) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// AggFunc identifies an aggregate function in the select list.
type AggFunc int

const (
	// AggNone marks a plain (non-aggregate) select item.
	AggNone AggFunc = iota
	// AggCount is COUNT(col) or COUNT(*).
	AggCount
	// AggSum is SUM(col).
	AggSum
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
	// AggAvg is AVG(col).
	AggAvg
)

// String renders the SQL name of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return ""
	}
}

// SelectItem is one entry of the select list: either a plain column
// (Agg == AggNone) or an aggregate over a column or * (COUNT(*) only).
type SelectItem struct {
	// Agg is the aggregate function, AggNone for a plain column.
	Agg AggFunc
	// Star marks COUNT(*).
	Star bool
	// Col is the subject column (unused when Star).
	Col expr.ColumnRef
}

// String renders the item as SQL.
func (s SelectItem) String() string {
	switch {
	case s.Agg == AggNone:
		if s.Col.Table == "" {
			return s.Col.Column
		}
		return s.Col.String()
	case s.Star:
		return s.Agg.String() + "(*)"
	default:
		inner := s.Col.Column
		if s.Col.Table != "" {
			inner = s.Col.String()
		}
		return s.Agg.String() + "(" + inner + ")"
	}
}

// Query is the parsed form of a conjunctive select-project-join query,
// optionally with aggregates and a GROUP BY clause.
type Query struct {
	// CountStar is true for SELECT COUNT(*) (with no other select items
	// and no GROUP BY) — the paper's query shape, kept as a fast path.
	CountStar bool
	// Star is true for SELECT *.
	Star bool
	// Projection lists the selected columns when neither CountStar nor
	// Star and no aggregates are present.
	Projection []expr.ColumnRef
	// Select is the full select list when the query uses aggregates or
	// GROUP BY (empty otherwise; the legacy fields above cover those).
	Select []SelectItem
	// GroupBy lists the grouping columns (empty for ungrouped queries).
	GroupBy []expr.ColumnRef
	// Tables is the FROM list.
	Tables []TableItem
	// Where is the conjunction of predicates (empty if no WHERE clause).
	Where []expr.Predicate
	// Disjunctions are the OR-groups of the WHERE clause (conjunction of
	// disjunctions normal form); each is validated during Bind to cover a
	// single table.
	Disjunctions []expr.Disjunction
}

// String renders the query back to SQL (canonical spacing).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case len(q.Select) > 0:
		for i, item := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(item.String())
		}
	case q.CountStar:
		b.WriteString("COUNT(*)")
	case q.Star:
		b.WriteString("*")
	default:
		for i, c := range q.Projection {
			if i > 0 {
				b.WriteString(", ")
			}
			if c.Table == "" {
				b.WriteString(c.Column)
			} else {
				b.WriteString(c.String())
			}
		}
	}
	b.WriteString(" FROM ")
	for i, t := range q.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	}
	if len(q.Where) > 0 || len(q.Disjunctions) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, 0, len(q.Where)+len(q.Disjunctions))
		if c := expr.FormatConjunction(q.Where); c != "" {
			parts = append(parts, c)
		}
		for _, d := range q.Disjunctions {
			parts = append(parts, d.String())
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			if c.Table == "" {
				b.WriteString(c.Column)
			} else {
				b.WriteString(c.String())
			}
		}
	}
	return b.String()
}

// Parse parses a SQL statement of the supported subset.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF) {
		return nil, p.errorf("unexpected %s after end of query", p.cur().Kind)
	}
	return q, nil
}

type parser struct {
	toks  []Token
	i     int
	input string
}

func (p *parser) cur() Token          { return p.toks[p.i] }
func (p *parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *parser) atKeyword(kw string) bool {
	return p.at(TokIdent) && strings.EqualFold(p.cur().Text, kw)
}

func (p *parser) advance() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errorf("expected %s, found %s", k, p.describeCur())
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %s, found %s", strings.ToUpper(kw), p.describeCur())
	}
	p.advance()
	return nil
}

func (p *parser) describeCur() string {
	t := p.cur()
	if t.Kind == TokIdent || t.Kind == TokNumber {
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"as": true, "count": true, "group": true, "by": true,
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.parseFromList(q); err != nil {
		return nil, err
	}
	if p.atKeyword("where") {
		p.advance()
		if err := p.parseConjunction(q); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, ref)
			if !p.at(TokComma) {
				break
			}
			p.advance()
		}
	}
	return q, p.normalizeSelect(q)
}

// normalizeSelect routes the parsed select list into the legacy fast-path
// fields (Star / CountStar / Projection) when no aggregate or GROUP BY is
// involved, and validates aggregate queries otherwise.
func (p *parser) normalizeSelect(q *Query) error {
	hasAgg := false
	for _, it := range q.Select {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}
	if q.Star {
		if hasAgg || len(q.GroupBy) > 0 {
			return p.errorf("SELECT * cannot be combined with GROUP BY")
		}
		return nil
	}
	switch {
	case !hasAgg && len(q.GroupBy) == 0:
		// Plain projection.
		for _, it := range q.Select {
			q.Projection = append(q.Projection, it.Col)
		}
		q.Select = nil
	case len(q.Select) == 1 && q.Select[0].Agg == AggCount && q.Select[0].Star && len(q.GroupBy) == 0:
		// The paper's COUNT(*) fast path.
		q.CountStar = true
		q.Select = nil
	}
	return nil
}

func (p *parser) parseSelectList(q *Query) error {
	if p.at(TokStar) {
		p.advance()
		q.Star = true
		return nil
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		q.Select = append(q.Select, item)
		if !p.at(TokComma) {
			return nil
		}
		p.advance()
	}
}

// aggFuncs maps the lower-cased aggregate names to their function.
var aggFuncs = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "min": AggMin, "max": AggMax, "avg": AggAvg,
}

// parseSelectItem parses one select-list entry: a plain column reference or
// an aggregate call agg(col) / COUNT(*).
func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.at(TokIdent) && p.toks[p.i+1].Kind == TokLParen {
		agg, ok := aggFuncs[strings.ToLower(p.cur().Text)]
		if !ok {
			return SelectItem{}, p.errorf("unknown function %q (supported: COUNT, SUM, MIN, MAX, AVG)", p.cur().Text)
		}
		p.advance() // function name
		p.advance() // '('
		item := SelectItem{Agg: agg}
		if p.at(TokStar) {
			if agg != AggCount {
				return SelectItem{}, p.errorf("%s(*) is not supported; only COUNT(*)", agg)
			}
			p.advance()
			item.Star = true
		} else {
			ref, err := p.parseColumnRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = ref
		}
		if _, err := p.expect(TokRParen); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	ref, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: ref}, nil
}

func (p *parser) parseFromList(q *Query) error {
	for {
		name, err := p.parseIdent("table name")
		if err != nil {
			return err
		}
		item := TableItem{Table: name}
		if p.atKeyword("as") {
			p.advance()
			alias, err := p.parseIdent("alias")
			if err != nil {
				return err
			}
			item.Alias = alias
		} else if p.at(TokIdent) && !reservedWords[strings.ToLower(p.cur().Text)] {
			item.Alias = p.advance().Text
		}
		q.Tables = append(q.Tables, item)
		if !p.at(TokComma) {
			return nil
		}
		p.advance()
	}
}

func (p *parser) parseIdent(what string) (string, error) {
	if !p.at(TokIdent) {
		return "", p.errorf("expected %s, found %s", what, p.describeCur())
	}
	if reservedWords[strings.ToLower(p.cur().Text)] {
		return "", p.errorf("expected %s, found reserved word %q", what, p.cur().Text)
	}
	return p.advance().Text, nil
}

// parseConjunction parses the WHERE clause in conjunction-of-disjunctions
// normal form: orExpr (AND orExpr)*. A one-disjunct orExpr lands in
// q.Where; a genuine OR-group lands in q.Disjunctions.
func (p *parser) parseConjunction(q *Query) error {
	for {
		preds, err := p.parseOrExpr()
		if err != nil {
			return err
		}
		if len(preds) == 1 {
			q.Where = append(q.Where, preds[0])
		} else {
			q.Disjunctions = append(q.Disjunctions, expr.Disjunction{Preds: preds})
		}
		if !p.atKeyword("and") {
			return nil
		}
		p.advance()
	}
}

// parseOrExpr parses term (OR term)*, flattening nested parenthesized OR
// groups.
func (p *parser) parseOrExpr() ([]expr.Predicate, error) {
	preds, err := p.parseOrTerm()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.advance()
		more, err := p.parseOrTerm()
		if err != nil {
			return nil, err
		}
		preds = append(preds, more...)
	}
	return preds, nil
}

// parseOrTerm parses a parenthesized OR group or a single comparison.
func (p *parser) parseOrTerm() ([]expr.Predicate, error) {
	if p.at(TokLParen) {
		p.advance()
		preds, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if p.atKeyword("and") {
			return nil, p.errorf("AND inside a parenthesized group is not supported; use conjunction-of-disjunctions form")
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return preds, nil
	}
	pred, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	return []expr.Predicate{pred}, nil
}

// operand is either a column reference or a literal.
type operand struct {
	isColumn bool
	col      expr.ColumnRef
	lit      storage.Value
}

func (p *parser) parseComparison() (expr.Predicate, error) {
	// Parenthesized comparisons are allowed: (a = b).
	if p.at(TokLParen) {
		p.advance()
		pred, err := p.parseComparison()
		if err != nil {
			return expr.Predicate{}, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return expr.Predicate{}, err
		}
		return pred, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return expr.Predicate{}, err
	}
	op, err := p.parseOp()
	if err != nil {
		return expr.Predicate{}, err
	}
	right, err := p.parseOperand()
	if err != nil {
		return expr.Predicate{}, err
	}
	switch {
	case left.isColumn && right.isColumn:
		return expr.NewJoin(left.col, op, right.col), nil
	case left.isColumn:
		return expr.NewConst(left.col, op, right.lit), nil
	case right.isColumn:
		// Normalize "const op col" to "col flipped-op const".
		return expr.NewConst(right.col, op.Flip(), left.lit), nil
	default:
		return expr.Predicate{}, p.errorf("comparison between two literals is not supported")
	}
}

func (p *parser) parseOp() (expr.CompareOp, error) {
	switch p.cur().Kind {
	case TokEQ:
		p.advance()
		return expr.OpEQ, nil
	case TokNE:
		p.advance()
		return expr.OpNE, nil
	case TokLT:
		p.advance()
		return expr.OpLT, nil
	case TokLE:
		p.advance()
		return expr.OpLE, nil
	case TokGT:
		p.advance()
		return expr.OpGT, nil
	case TokGE:
		p.advance()
		return expr.OpGE, nil
	default:
		return 0, p.errorf("expected comparison operator, found %s", p.describeCur())
	}
}

func (p *parser) parseOperand() (operand, error) {
	switch p.cur().Kind {
	case TokNumber:
		t := p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return operand{}, p.errorf("malformed number %q", t.Text)
			}
			return operand{lit: storage.Float64(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return operand{}, p.errorf("malformed integer %q", t.Text)
		}
		return operand{lit: storage.Int64(n)}, nil
	case TokString:
		t := p.advance()
		return operand{lit: storage.String64(t.Text)}, nil
	case TokIdent:
		switch strings.ToLower(p.cur().Text) {
		case "true":
			p.advance()
			return operand{lit: storage.Bool(true)}, nil
		case "false":
			p.advance()
			return operand{lit: storage.Bool(false)}, nil
		case "null":
			p.advance()
			return operand{lit: storage.Null(storage.TypeInt64)}, nil
		}
		ref, err := p.parseColumnRef()
		if err != nil {
			return operand{}, err
		}
		return operand{isColumn: true, col: ref}, nil
	default:
		return operand{}, p.errorf("expected column or literal, found %s", p.describeCur())
	}
}

func (p *parser) parseColumnRef() (expr.ColumnRef, error) {
	first, err := p.parseIdent("column name")
	if err != nil {
		return expr.ColumnRef{}, err
	}
	if p.at(TokDot) {
		p.advance()
		second, err := p.parseIdent("column name")
		if err != nil {
			return expr.ColumnRef{}, err
		}
		return expr.ColumnRef{Table: first, Column: second}, nil
	}
	// Unqualified: table resolved later by Bind.
	return expr.ColumnRef{Column: first}, nil
}
