package cardest

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/selest"
	"repro/internal/storage"
)

func mustDisj(t *testing.T, preds ...expr.Predicate) expr.Disjunction {
	t.Helper()
	d, err := expr.NewDisjunction(preds)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewQueryWithDisjunctions(t *testing.T) {
	cat := example1bCatalog()
	d := mustDisj(t,
		expr.NewConst(ref("R2", "y"), expr.OpEQ, storage.Int64(1)),
		expr.NewConst(ref("R2", "y"), expr.OpEQ, storage.Int64(2)),
	)
	e, err := NewQuery(cat, example1bTables(), example1bPreds(), []expr.Disjunction{d}, ELS())
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Disjunctions()) != 1 {
		t.Errorf("Disjunctions = %v", e.Disjunctions())
	}
	// ‖R2‖′ = 1000 × (1 − 0.99²) = 19.9.
	eff, _ := e.Effective("R2")
	if math.Abs(eff.Card-19.9) > 1e-9 {
		t.Errorf("‖R2‖′ = %g, want 19.9", eff.Card)
	}
	// Duplicate disjunctions are removed.
	e2, err := NewQuery(cat, example1bTables(), example1bPreds(), []expr.Disjunction{d, d}, ELS())
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Disjunctions()) != 1 {
		t.Errorf("duplicates should collapse: %v", e2.Disjunctions())
	}
	// Standard (non-effective) algorithms also reduce the cardinality.
	e3, err := NewQuery(cat, example1bTables(), example1bPreds(), []expr.Disjunction{d}, SM())
	if err != nil {
		t.Fatal(err)
	}
	eff3, _ := e3.Effective("R2")
	if math.Abs(eff3.Card-19.9) > 1e-9 {
		t.Errorf("standard ‖R2‖′ = %g, want 19.9", eff3.Card)
	}
	if e.Catalog() != cat {
		t.Error("Catalog accessor wrong")
	}
}

func TestNewQueryDisjunctionValidation(t *testing.T) {
	cat := example1bCatalog()
	join := expr.Disjunction{Preds: []expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
	}}
	if _, err := NewQuery(cat, example1bTables(), nil, []expr.Disjunction{join}, ELS()); err == nil {
		t.Error("join disjunct should error")
	}
	empty := expr.Disjunction{}
	if _, err := NewQuery(cat, example1bTables(), nil, []expr.Disjunction{empty}, ELS()); err == nil {
		t.Error("empty disjunction should error")
	}
	badTable := expr.Disjunction{Preds: []expr.Predicate{
		expr.NewConst(ref("ZZ", "x"), expr.OpEQ, storage.Int64(1)),
	}}
	if _, err := NewQuery(cat, example1bTables(), nil, []expr.Disjunction{badTable}, ELS()); err == nil {
		t.Error("unknown table should error")
	}
	badCol := expr.Disjunction{Preds: []expr.Predicate{
		expr.NewJoin(ref("R2", "y"), expr.OpLT, ref("R2", "nope")),
	}}
	if _, err := NewQuery(cat, example1bTables(), nil, []expr.Disjunction{badCol}, ELS()); err == nil {
		t.Error("unknown colcol column should error")
	}
}

func TestStandardEffectiveLocalColCol(t *testing.T) {
	// The standard algorithm treats a same-table equality as a flat
	// 1/max(d) reduction and a non-equality as 1/3 — "no special case".
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("R", 3000, map[string]float64{"y": 10, "w": 50}))
	e, err := New(cat, []TableRef{{Table: "R"}},
		[]expr.Predicate{expr.NewJoin(ref("R", "y"), expr.OpEQ, ref("R", "w"))}, SM())
	if err != nil {
		t.Fatal(err)
	}
	eff, _ := e.Effective("R")
	if eff.Card != 60 {
		t.Errorf("standard colcol eq card = %g, want 3000/50", eff.Card)
	}
	// Column cardinalities stay raw under the standard algorithm.
	if d, _ := eff.ColumnCard("y"); d != 10 {
		t.Errorf("standard d(y) = %g, want raw 10", d)
	}
	e2, err := New(cat, []TableRef{{Table: "R"}},
		[]expr.Predicate{expr.NewJoin(ref("R", "y"), expr.OpLT, ref("R", "w"))}, SM())
	if err != nil {
		t.Fatal(err)
	}
	eff2, _ := e2.Effective("R")
	if eff2.Card != 1000 {
		t.Errorf("standard colcol non-eq card = %g, want 3000/3", eff2.Card)
	}
	// Unknown column in a colcol predicate errors.
	if _, err := New(cat, []TableRef{{Table: "R"}},
		[]expr.Predicate{expr.NewJoin(ref("R", "y"), expr.OpEQ, ref("R", "zz"))}, SM()); err == nil {
		t.Error("unknown column should error")
	}
}

func TestHistogramJoinSelectivityPath(t *testing.T) {
	// Build a catalog with histograms from skewed data; the ELS+hist config
	// must produce a different (better) selectivity than plain ELS.
	cat := catalog.New()
	for i, rows := range []int{2000, 1500} {
		tbl, err := datagen.Generate(datagen.TableSpec{
			Name: []string{"A", "B"}[i],
			Rows: rows,
			Columns: []datagen.ColumnSpec{
				{Name: "k", Dist: datagen.DistZipf, Domain: 100, Theta: 1.0},
			},
		}, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{HistogramBuckets: 32, HistogramKind: catalog.EquiDepth}); err != nil {
			t.Fatal(err)
		}
	}
	pred := expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))
	tabs := []TableRef{{Table: "A"}, {Table: "B"}}

	plain, err := New(cat, tabs, []expr.Predicate{pred}, ELS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ELS()
	cfg.Sel.HistogramJoins = true
	hist, err := New(cat, tabs, []expr.Predicate{pred}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sPlain, _ := plain.JoinSelectivity(pred)
	sHist, _ := hist.JoinSelectivity(pred)
	if sHist <= sPlain {
		t.Errorf("skewed hist selectivity %g should exceed uniform %g", sHist, sPlain)
	}
	// Fallback path: a column without a histogram uses Equation 2.
	noHist := catalog.New()
	noHist.MustAddTable(catalog.SimpleTable("A", 100, map[string]float64{"k": 10}))
	noHist.MustAddTable(catalog.SimpleTable("B", 100, map[string]float64{"k": 20}))
	e3, err := New(noHist, tabs, []expr.Predicate{pred}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s3, _ := e3.JoinSelectivity(pred)
	if s3 != 0.05 {
		t.Errorf("fallback selectivity = %g, want 1/20", s3)
	}
}

func TestZeroDistinctJoinSelectivity(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 0, map[string]float64{"k": 0}))
	cat.MustAddTable(catalog.SimpleTable("B", 10, map[string]float64{"k": 5}))
	e, err := New(cat, []TableRef{{Table: "A"}, {Table: "B"}},
		[]expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))},
		Config{Rule: RuleLS, Sel: selest.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// d(A.k)=0 but d(B.k)=5 → 1/5; both zero → 0.
	s, err := e.JoinSelectivity(expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k")))
	if err != nil || s != 0.2 {
		t.Errorf("sel = %g, err %v", s, err)
	}
	cat2 := catalog.New()
	cat2.MustAddTable(catalog.SimpleTable("A", 0, map[string]float64{"k": 0}))
	cat2.MustAddTable(catalog.SimpleTable("B", 0, map[string]float64{"k": 0}))
	e2, _ := New(cat2, []TableRef{{Table: "A"}, {Table: "B"}},
		[]expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))}, ELS())
	s2, err := e2.JoinSelectivity(expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k")))
	if err != nil || s2 != 0 {
		t.Errorf("zero-d sel = %g, err %v", s2, err)
	}
}
