package cardest

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

func ref(t, c string) expr.ColumnRef { return expr.ColumnRef{Table: t, Column: c} }

// example1bCatalog is the statistics of Examples 1b, 2 and 3:
// ‖R1‖=100, ‖R2‖=1000, ‖R3‖=1000, d_x=10, d_y=100, d_z=1000.
func example1bCatalog() *catalog.Catalog {
	c := catalog.New()
	c.MustAddTable(catalog.SimpleTable("R1", 100, map[string]float64{"x": 10}))
	c.MustAddTable(catalog.SimpleTable("R2", 1000, map[string]float64{"y": 100}))
	c.MustAddTable(catalog.SimpleTable("R3", 1000, map[string]float64{"z": 1000}))
	return c
}

func example1bTables() []TableRef {
	return []TableRef{{Table: "R1"}, {Table: "R2"}, {Table: "R3"}}
}

func example1bPreds() []expr.Predicate {
	return []expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")),
		expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R3", "z")),
	}
}

func mustNew(t *testing.T, cat *catalog.Catalog, tabs []TableRef, preds []expr.Predicate, cfg Config) *Estimator {
	t.Helper()
	e, err := New(cat, tabs, preds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRuleAndConfigNames(t *testing.T) {
	if RuleM.String() != "M" || RuleSS.String() != "SS" || RuleLS.String() != "LS" || RuleRepresentative.String() != "REP" {
		t.Error("rule names wrong")
	}
	if Rule(9).String() != "?" || Rule(9).Valid() {
		t.Error("invalid rule handling wrong")
	}
	if RepSmallest.String() != "rep-smallest" || RepLargest.String() != "rep-largest" || RepChoice(9).String() != "?" {
		t.Error("rep choice names wrong")
	}
	if ELS().Name() != "ELS" || SM().Name() != "SM" || SSS().Name() != "SSS" {
		t.Error("config names wrong")
	}
	if (Config{Rule: RuleM, UseEffectiveStats: true}).Name() != "EM" {
		t.Error("effective-M name wrong")
	}
	if err := (Config{Rule: Rule(42)}).Validate(); err == nil {
		t.Error("invalid rule should fail validation")
	}
	if !SM().WithClosure().ApplyClosure {
		t.Error("WithClosure should enable closure")
	}
}

func TestNewValidation(t *testing.T) {
	cat := example1bCatalog()
	if _, err := New(nil, example1bTables(), nil, ELS()); err == nil {
		t.Error("nil catalog should error")
	}
	if _, err := New(cat, nil, nil, ELS()); err == nil {
		t.Error("no tables should error")
	}
	if _, err := New(cat, []TableRef{{Table: "R1"}, {Table: "R1"}}, nil, ELS()); err == nil {
		t.Error("duplicate alias should error")
	}
	if _, err := New(cat, []TableRef{{Table: "nope"}}, nil, ELS()); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := New(cat, example1bTables(), []expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("ZZ", "q")),
	}, ELS()); err == nil {
		t.Error("predicate on unknown table should error")
	}
	if _, err := New(cat, example1bTables(), []expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "nope")),
	}, ELS()); err == nil {
		t.Error("predicate on unknown column should error")
	}
	if _, err := New(cat, example1bTables(), nil, Config{Rule: Rule(42)}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestAliases(t *testing.T) {
	cat := example1bCatalog()
	e := mustNew(t, cat, []TableRef{{Alias: "a", Table: "R1"}, {Alias: "b", Table: "R1"}},
		[]expr.Predicate{expr.NewJoin(ref("a", "x"), expr.OpEQ, ref("b", "x"))}, ELS())
	sz, err := e.FinalSize([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// Self-join: 100×100/max(10,10) = 1000.
	if sz != 1000 {
		t.Errorf("self-join size = %g, want 1000", sz)
	}
	if (TableRef{Table: "T"}).Name() != "T" || (TableRef{Alias: "a", Table: "T"}).Name() != "a" {
		t.Error("TableRef.Name wrong")
	}
}

func TestJoinSelectivitiesExample1b(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), ELS())
	cases := []struct {
		p    expr.Predicate
		want float64
	}{
		{expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R2", "y")), 0.01},
		{expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R3", "z")), 0.001},
		{expr.NewJoin(ref("R1", "x"), expr.OpEQ, ref("R3", "z")), 0.001},
	}
	for _, c := range cases {
		got, err := e.JoinSelectivity(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("S(%s) = %g, want %g", c.p, got, c.want)
		}
	}
	// Non-equality join predicate: 1/3 heuristic.
	s, err := e.JoinSelectivity(expr.NewJoin(ref("R1", "x"), expr.OpLT, ref("R2", "y")))
	if err != nil || s != 1.0/3.0 {
		t.Errorf("non-eq join selectivity = %g, err %v", s, err)
	}
	// Local predicate rejected.
	if _, err := e.JoinSelectivity(expr.NewConst(ref("R1", "x"), expr.OpEQ, storage.Int64(1))); err == nil {
		t.Error("const predicate should be rejected")
	}
}

func TestExample1bTwoWayJoin(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), ELS())
	// ‖R2 ⋈ R3‖ = 1000×1000×0.001 = 1000.
	sz, err := e.FinalSize([]string{"R2", "R3"})
	if err != nil {
		t.Fatal(err)
	}
	if sz != 1000 {
		t.Errorf("‖R2⋈R3‖ = %g, want 1000", sz)
	}
}

func TestExample1bEquation3(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), ELS())
	// Equation 3: 100×1000×1000/(100×1000) = 1000.
	sz, err := e.OracleSize([]string{"R1", "R2", "R3"})
	if err != nil {
		t.Fatal(err)
	}
	if sz != 1000 {
		t.Errorf("Equation 3 oracle = %g, want 1000", sz)
	}
}

func TestExample2RuleM(t *testing.T) {
	// Rule M with closure: join order R2, R3, then R1 estimates 1 (paper:
	// "correct answer is 1000").
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), SM().WithClosure())
	sz, err := e.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sz-1) > 1e-9 {
		t.Errorf("Rule M estimate = %g, want 1 (Example 2)", sz)
	}
}

func TestExample3RuleSS(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), SSS().WithClosure())
	sz, err := e.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sz-100) > 1e-9 {
		t.Errorf("Rule SS estimate = %g, want 100 (Example 3)", sz)
	}
}

func TestExample3RuleLS(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), ELS())
	sz, err := e.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		t.Fatal(err)
	}
	if sz != 1000 {
		t.Errorf("Rule LS estimate = %g, want 1000 (Example 3, correct)", sz)
	}
	// The step detail should show the group with both J1 and J3, choosing 0.01.
	steps, err := e.EstimateOrder([]string{"R2", "R3", "R1"})
	if err != nil {
		t.Fatal(err)
	}
	last := steps[len(steps)-1]
	if len(last.Groups) != 1 {
		t.Fatalf("final step groups = %d, want 1 (single class)", len(last.Groups))
	}
	g := last.Groups[0]
	if len(g.Predicates) != 2 {
		t.Errorf("eligible predicates = %d, want 2 (J1 and J3)", len(g.Predicates))
	}
	if g.Chosen != 0.01 {
		t.Errorf("LS chose %g, want 0.01 (the largest)", g.Chosen)
	}
}

func TestRepresentativeRuleSection33(t *testing.T) {
	// "If the representative selectivity is 0.01, the estimate ... will be
	// 10000, which is too high. If ... 0.001, the estimate ... will be 100,
	// which is too low."
	cfgHi := Config{Rule: RuleRepresentative, ApplyClosure: true, Rep: RepLargest, Sel: ELS().Sel}
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), cfgHi)
	sz, err := e.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sz-10000) > 1e-6 {
		t.Errorf("rep=0.01 estimate = %g, want 10000", sz)
	}
	cfgLo := cfgHi
	cfgLo.Rep = RepSmallest
	e = mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), cfgLo)
	sz, err = e.FinalSize([]string{"R2", "R3", "R1"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sz-100) > 1e-6 {
		t.Errorf("rep=0.001 estimate = %g, want 100", sz)
	}
}

func TestCartesianStep(t *testing.T) {
	cat := example1bCatalog()
	// No predicates at all: joining is a cartesian product.
	e := mustNew(t, cat, example1bTables(), nil, ELS())
	step, err := e.JoinStep(100, []string{"R1"}, "R2")
	if err != nil {
		t.Fatal(err)
	}
	if !step.Cartesian || step.Size != 100*1000 {
		t.Errorf("cartesian step = %+v", step)
	}
}

func TestJoinStepErrors(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), ELS())
	if _, err := e.JoinStep(1, []string{"R1"}, "R1"); err == nil {
		t.Error("rejoining a table should error")
	}
	if _, err := e.JoinStep(1, []string{"R1"}, "nope"); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := e.EstimateOrder(nil); err == nil {
		t.Error("empty order should error")
	}
	if _, err := e.FinalSize([]string{"nope"}); err == nil {
		t.Error("unknown single table should error")
	}
}

func TestImpliedAndClasses(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), ELS())
	if len(e.Implied()) != 1 {
		t.Errorf("implied = %v, want J3 only", e.Implied())
	}
	if len(e.Predicates()) != 3 {
		t.Errorf("closed predicates = %d, want 3", len(e.Predicates()))
	}
	if e.Classes().NumClasses() != 1 {
		t.Errorf("classes = %d, want 1", e.Classes().NumClasses())
	}
	if e.Config().Rule != RuleLS {
		t.Error("Config accessor wrong")
	}
	if len(e.Tables()) != 3 {
		t.Error("Tables accessor wrong")
	}
	// Without closure, no implied predicates.
	e2 := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), SM())
	if len(e2.Implied()) != 0 || len(e2.Predicates()) != 2 {
		t.Error("non-closure estimator should keep the given predicates")
	}
}

func TestAccessors(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), ELS())
	eff, err := e.Effective("R1")
	if err != nil || eff.Card != 100 {
		t.Errorf("Effective(R1) = %+v, err %v", eff, err)
	}
	if _, err := e.Effective("zz"); err == nil {
		t.Error("unknown alias should error")
	}
	base, err := e.BaseStats("r2")
	if err != nil || base.Card != 1000 {
		t.Errorf("BaseStats = %+v, err %v", base, err)
	}
	if _, err := e.BaseStats("zz"); err == nil {
		t.Error("unknown alias should error")
	}
	if sz, _ := e.BaseSize("R3"); sz != 1000 {
		t.Errorf("BaseSize(R3) = %g", sz)
	}
	if _, err := e.BaseSize("zz"); err == nil {
		t.Error("unknown alias should error")
	}
}

func TestOracleErrors(t *testing.T) {
	e := mustNew(t, example1bCatalog(), example1bTables(), example1bPreds(), ELS())
	if _, err := e.OracleSize(nil); err == nil {
		t.Error("empty set should error")
	}
	if _, err := e.OracleSize([]string{"R1", "r1"}); err == nil {
		t.Error("duplicate alias should error")
	}
	if _, err := e.OracleSize([]string{"R1", "zz"}); err == nil {
		t.Error("unknown alias should error")
	}
	e2 := mustNew(t, example1bCatalog(), example1bTables(), []expr.Predicate{
		expr.NewJoin(ref("R1", "x"), expr.OpLT, ref("R2", "y")),
	}, ELS())
	if _, err := e2.OracleSize([]string{"R1", "R2"}); err == nil {
		t.Error("non-equality join should make the oracle error")
	}
}
