package cardest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// Sections 6 and 7 composed: chains where some tables contribute TWO join
// columns to the equivalence class (triggering the single-table
// j-equivalence fold) must still estimate order-independently under Rule
// LS and agree with the Equation 3 oracle over the folded statistics.
func TestLSWithSection6FoldsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(4)
		cat := catalog.New()
		tabs := make([]TableRef, n)
		var preds []expr.Predicate
		aliases := make([]string, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("T%d", i)
			aliases[i] = name
			card := float64(100 + rng.Intn(50000))
			cols := map[string]float64{"a": float64(1 + rng.Intn(int(card)))}
			twoCols := rng.Intn(3) == 0
			if twoCols {
				cols["b"] = float64(1 + rng.Intn(int(card)))
			}
			cat.MustAddTable(catalog.SimpleTable(name, card, cols))
			tabs[i] = TableRef{Table: name}
			if i > 0 {
				prev := fmt.Sprintf("T%d", rng.Intn(i))
				preds = append(preds, expr.NewJoin(
					expr.ColumnRef{Table: name, Column: "a"}, expr.OpEQ,
					expr.ColumnRef{Table: prev, Column: "a"}))
			}
			if twoCols && i > 0 {
				// The second column joins into the same class via another
				// table, making a and b j-equivalent within this table.
				other := fmt.Sprintf("T%d", rng.Intn(i))
				preds = append(preds, expr.NewJoin(
					expr.ColumnRef{Table: name, Column: "b"}, expr.OpEQ,
					expr.ColumnRef{Table: other, Column: "a"}))
			}
		}
		e, err := New(cat, tabs, preds, ELS())
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := e.OracleSize(aliases)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			order := make([]string, n)
			for i, p := range rng.Perm(n) {
				order[i] = aliases[p]
			}
			got, err := e.FinalSize(order)
			if err != nil {
				t.Fatal(err)
			}
			if !approxEq(got, oracle) {
				t.Fatalf("trial %d: LS along %v = %g, oracle = %g (preds %v)",
					trial, order, got, oracle, preds)
			}
		}
	}
}
