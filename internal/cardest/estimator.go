package cardest

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/closure"
	"repro/internal/eqclass"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/selest"
)

// PointNewQuery is the fault-injection probe hit on estimator
// construction. A Payload of type func(*catalog.TableStats) corrupts each
// table's cloned statistics before sanitization, exercising the graceful
// degradation path end to end.
const PointNewQuery = "cardest.newquery"

// TableRef binds a query alias to a catalog table. An empty Alias defaults
// to the table name.
type TableRef struct {
	// Alias is the name the query's predicates use.
	Alias string
	// Table is the catalog table name.
	Table string
}

// Name returns the effective alias.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Estimator performs incremental join result size estimation for one query
// under one Config. Construction runs the preliminary phase of Algorithm
// ELS (steps 1–5): duplicate elimination, transitive closure, equivalence
// classes, local selectivities, effective statistics.
type Estimator struct {
	cfg      Config
	cat      *catalog.Catalog
	refs     []TableRef
	preds    []expr.Predicate // the (possibly closed) predicate set
	disjs    []expr.Disjunction
	implied  []expr.Predicate
	classes  *eqclass.Classes
	eff      map[string]*selest.EffectiveStats // keyed by lower-cased alias
	base     map[string]*catalog.TableStats    // alias -> stats (renamed clone)
	repSel   map[string]float64                // class id -> representative selectivity
	warnings []string                          // statistics repairs applied during construction

	// memo caches JoinStep's selectivity computation per (joined set,
	// next) pair; everything it stores depends only on that pair, because
	// the predicate set, equivalence classes, and effective statistics are
	// fixed at construction. Guarded by memoMu: the optimizer's parallel
	// DP search calls JoinStep from many goroutines.
	//lockorder:level 52
	memoMu sync.Mutex
	memo   map[string]memoEntry
}

// memoEntry is the currentSize-independent part of one JoinStep result.
type memoEntry struct {
	tableCard   float64
	selectivity float64
	cartesian   bool
	groups      []GroupChoice
}

// memoKey canonicalizes a (joined set, next) pair: the joined aliases are
// order-insensitive in JoinStep (eligibility depends on set membership
// only), so the key sorts them.
func memoKey(joined []string, next string) string {
	names := make([]string, len(joined))
	for i, j := range joined {
		names[i] = strings.ToLower(j)
	}
	sort.Strings(names)
	return strings.Join(names, ",") + "|" + strings.ToLower(next)
}

// New builds an estimator for a query over the given tables and predicate
// conjunction. Every predicate column must resolve to a known alias and
// column.
func New(cat *catalog.Catalog, tables []TableRef, preds []expr.Predicate, cfg Config) (*Estimator, error) {
	return NewQuery(cat, tables, preds, nil, cfg)
}

// NewQuery is New extended with OR-groups (disjunctions of local
// predicates, a beyond-paper extension): each disjunction reduces its
// table's effective cardinality; disjunctions never merge equivalence
// classes and are excluded from transitive closure, which keeps the
// paper's machinery sound.
func NewQuery(cat *catalog.Catalog, tables []TableRef, preds []expr.Predicate, disjs []expr.Disjunction, cfg Config) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cat == nil {
		return nil, fmt.Errorf("cardest: nil catalog")
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("cardest: no tables")
	}
	e := &Estimator{
		cfg:    cfg,
		cat:    cat,
		eff:    make(map[string]*selest.EffectiveStats),
		base:   make(map[string]*catalog.TableStats),
		repSel: make(map[string]float64),
		memo:   make(map[string]memoEntry),
	}

	// The construction probe can fail the estimator outright or hand back
	// a statistics corruptor to be applied to every cloned table below.
	var corrupt func(*catalog.TableStats)
	if f, fired := faultinject.Fire(PointNewQuery); fired {
		if f.PanicValue != nil {
			panic(f.PanicValue)
		}
		if f.Err != nil {
			return nil, f.Err
		}
		corrupt, _ = f.Payload.(func(*catalog.TableStats))
	}

	// Resolve tables; clone stats under the alias name so predicate
	// References checks work against aliases. The clones are sanitized so
	// that corrupt catalog statistics (NaN, negative, zero column
	// cardinalities) degrade to paper defaults instead of propagating.
	seen := make(map[string]bool, len(tables))
	for _, tr := range tables {
		alias := tr.Name()
		k := strings.ToLower(alias)
		if seen[k] {
			return nil, fmt.Errorf("cardest: duplicate table alias %q", alias)
		}
		seen[k] = true
		ts := cat.Table(tr.Table)
		if ts == nil {
			return nil, fmt.Errorf("cardest: unknown table %q", tr.Table)
		}
		clone := ts.Clone()
		clone.Name = alias
		if corrupt != nil {
			corrupt(clone)
		}
		e.warnings = append(e.warnings, sanitizeStats(clone)...)
		e.base[k] = clone
		e.refs = append(e.refs, tr)
	}

	// Step 1 (dedup) and step 2 (transitive closure).
	deduped := expr.Dedup(preds)
	if cfg.ApplyClosure {
		res := closure.Compute(deduped)
		e.preds = res.Predicates
		e.implied = res.Implied
		e.classes = res.Classes
	} else {
		e.preds = deduped
		e.classes = eqclass.FromPredicates(deduped)
	}

	// Validate predicate references.
	for _, p := range e.preds {
		if err := e.checkRef(p.Left); err != nil {
			return nil, err
		}
		if p.RightIsColumn {
			if err := e.checkRef(p.Right); err != nil {
				return nil, err
			}
		}
	}
	// Validate and deduplicate disjunctions.
	e.disjs = expr.DedupDisjunctions(disjs)
	for _, d := range e.disjs {
		if len(d.Preds) == 0 {
			return nil, fmt.Errorf("cardest: empty disjunction")
		}
		for _, p := range d.Preds {
			if p.Kind() == expr.KindJoin {
				return nil, fmt.Errorf("cardest: join predicate %s not allowed in a disjunction", p)
			}
			if err := e.checkRef(p.Left); err != nil {
				return nil, err
			}
			if p.RightIsColumn {
				if err := e.checkRef(p.Right); err != nil {
					return nil, err
				}
			}
		}
	}

	// Steps 3–5: local selectivities and effective statistics per table.
	for _, tr := range e.refs {
		alias := tr.Name()
		k := strings.ToLower(alias)
		locals := closure.LocalPredicatesOf(e.preds, alias)
		var eff *selest.EffectiveStats
		var err error
		tableDisjs := expr.DisjunctionsOf(e.disjs, alias)
		if cfg.UseEffectiveStats {
			eff, err = selest.EffectiveTable(e.base[k], locals, tableDisjs, cfg.Sel)
		} else {
			eff, err = standardEffective(e.base[k], locals, tableDisjs, cfg.Sel)
		}
		if err != nil {
			return nil, err
		}
		e.eff[k] = eff
	}

	// Representative selectivities per class (only needed for RuleRepresentative).
	if cfg.Rule == RuleRepresentative {
		e.computeRepresentatives()
	}
	return e, nil
}

func (e *Estimator) checkRef(ref expr.ColumnRef) error {
	k := strings.ToLower(ref.Table)
	ts, ok := e.base[k]
	if !ok {
		return fmt.Errorf("cardest: predicate references unknown table %q", ref.Table)
	}
	if ts.Column(ref.Column) == nil {
		return fmt.Errorf("cardest: table %q has no column %q", ref.Table, ref.Column)
	}
	return nil
}

// standardEffective models "the standard algorithm most commonly in use in
// current relational systems" (Section 8): local predicates reduce the
// table cardinality, but join selectivities are computed independent of
// their effect — column cardinalities stay raw.
func standardEffective(ts *catalog.TableStats, locals []expr.Predicate, disjs []expr.Disjunction, opts selest.Options) (*selest.EffectiveStats, error) {
	eff := &selest.EffectiveStats{
		Table:            ts.Name,
		OrigCard:         ts.Card,
		Card:             ts.Card,
		LocalSelectivity: 1,
		ColCard:          make(map[string]float64, len(ts.Columns)),
		ColSel:           make(map[string]float64),
	}
	for k, cs := range ts.Columns {
		eff.ColCard[k] = cs.Distinct
	}
	var consts []expr.Predicate
	for _, p := range locals {
		switch p.Kind() {
		case expr.KindLocalConst:
			consts = append(consts, p)
		case expr.KindLocalColCol:
			// No special casing (Section 3.2: "current query optimizers do not
			// treat this as a special case"): apply a flat selectivity.
			l := ts.Column(p.Left.Column)
			r := ts.Column(p.Right.Column)
			if l == nil || r == nil {
				return nil, fmt.Errorf("cardest: table %s missing column in %s", ts.Name, p)
			}
			if p.Op == expr.OpEQ {
				d := l.Distinct
				if r.Distinct > d {
					d = r.Distinct
				}
				if d > 0 {
					eff.Card /= d
				}
			} else {
				eff.Card /= 3
			}
		default:
			return nil, fmt.Errorf("cardest: %s is not a local predicate of %s", p, ts.Name)
		}
	}
	for _, set := range selest.GroupConstPredicates(consts) {
		cs := ts.Column(set.Column.Column)
		if cs == nil {
			return nil, fmt.Errorf("cardest: table %s has no column %q", ts.Name, set.Column.Column)
		}
		sel, err := set.Resolve(cs, opts)
		if err != nil {
			return nil, err
		}
		eff.ColSel[strings.ToLower(set.Column.Column)] = sel
		eff.Card *= sel
	}
	for _, d := range disjs {
		sel, err := selest.DisjunctionSelectivity(ts, d, opts)
		if err != nil {
			return nil, err
		}
		eff.Card *= sel
	}
	if eff.OrigCard > 0 {
		eff.LocalSelectivity = eff.Card / eff.OrigCard
	}
	return eff, nil
}

// Predicates returns the predicate set the estimator works with (closed if
// the config applies closure). The optimizer plans with this same set so
// that implied local predicates generated by ELS are available for early
// selection, mirroring the paper's experiment.
func (e *Estimator) Predicates() []expr.Predicate { return e.preds }

// Implied returns only the predicates added by transitive closure.
func (e *Estimator) Implied() []expr.Predicate { return e.implied }

// Warnings lists the statistics repairs applied during construction (one
// entry per corrupt statistic degraded to a paper default). Empty for
// healthy catalogs.
func (e *Estimator) Warnings() []string { return e.warnings }

// Disjunctions returns the query's OR-groups (deduplicated).
func (e *Estimator) Disjunctions() []expr.Disjunction { return e.disjs }

// Classes exposes the j-equivalence classes.
func (e *Estimator) Classes() *eqclass.Classes { return e.classes }

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// Catalog returns the catalog the estimator was built over (the optimizer
// consults it for physical properties such as indexes).
func (e *Estimator) Catalog() *catalog.Catalog { return e.cat }

// Tables returns the query's table references.
func (e *Estimator) Tables() []TableRef {
	out := make([]TableRef, len(e.refs))
	copy(out, e.refs)
	return out
}

// Effective returns the effective statistics of the aliased table.
func (e *Estimator) Effective(alias string) (*selest.EffectiveStats, error) {
	if eff, ok := e.eff[strings.ToLower(alias)]; ok {
		return eff, nil
	}
	return nil, fmt.Errorf("cardest: unknown table alias %q", alias)
}

// BaseStats returns the raw (unreduced) statistics of the aliased table,
// for access-cost calculations (Section 5: "the original, unreduced table
// and column cardinalities are retained for use in cost calculations").
func (e *Estimator) BaseStats(alias string) (*catalog.TableStats, error) {
	if ts, ok := e.base[strings.ToLower(alias)]; ok {
		return ts, nil
	}
	return nil, fmt.Errorf("cardest: unknown table alias %q", alias)
}

// BaseSize returns the effective cardinality ‖R‖′ of one table: the
// starting size of an incremental estimation.
func (e *Estimator) BaseSize(alias string) (float64, error) {
	eff, err := e.Effective(alias)
	if err != nil {
		return 0, err
	}
	return eff.Card, nil
}

// JoinSelectivity computes Equation 2's S_J = 1/max(d₁′, d₂′) for an
// equality join predicate, using the effective column cardinalities.
// Non-equality join predicates get the classic 1/3 heuristic (the paper
// restricts itself to equality joins). With Sel.HistogramJoins enabled and
// histograms present on both columns, the histogram-based estimate is used
// instead (beyond-paper extension for skewed data).
func (e *Estimator) JoinSelectivity(p expr.Predicate) (float64, error) {
	if p.Kind() != expr.KindJoin {
		return 0, fmt.Errorf("cardest: %s is not a join predicate", p)
	}
	if p.Op != expr.OpEQ {
		return 1.0 / 3.0, nil
	}
	if e.cfg.Sel.HistogramJoins {
		if s, ok := e.histogramJoinSelectivity(p); ok {
			return s, nil
		}
	}
	dl, err := e.effColCard(p.Left)
	if err != nil {
		return 0, err
	}
	dr, err := e.effColCard(p.Right)
	if err != nil {
		return 0, err
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d <= 0 {
		return 0, nil
	}
	return 1 / d, nil
}

// histogramJoinSelectivity applies the uniformity-relaxed histogram join
// estimate when both columns carry histograms.
func (e *Estimator) histogramJoinSelectivity(p expr.Predicate) (float64, bool) {
	lStats, ok := e.base[strings.ToLower(p.Left.Table)]
	if !ok {
		return 0, false
	}
	rStats, ok := e.base[strings.ToLower(p.Right.Table)]
	if !ok {
		return 0, false
	}
	lc := lStats.Column(p.Left.Column)
	rc := rStats.Column(p.Right.Column)
	if lc == nil || rc == nil {
		return 0, false
	}
	return selest.HistogramJoinSelectivity(lc.Hist, rc.Hist)
}

func (e *Estimator) effColCard(ref expr.ColumnRef) (float64, error) {
	eff, err := e.Effective(ref.Table)
	if err != nil {
		return 0, err
	}
	return eff.ColumnCard(ref.Column)
}

// computeRepresentatives assigns each multi-member class its fixed
// selectivity per the configured RepChoice.
func (e *Estimator) computeRepresentatives() {
	for _, class := range e.classes.All() {
		var ds []float64
		for _, ref := range class {
			if d, err := e.effColCard(ref); err == nil {
				ds = append(ds, d)
			}
		}
		if len(ds) < 2 {
			continue
		}
		sort.Float64s(ds)
		id := e.classes.ClassID(class[0])
		switch e.cfg.Rep {
		case RepLargest:
			// Largest pairwise selectivity: 1/max(two smallest d).
			if ds[1] > 0 {
				e.repSel[id] = 1 / ds[1]
			}
		default:
			// Smallest pairwise selectivity: 1/(largest d).
			if ds[len(ds)-1] > 0 {
				e.repSel[id] = 1 / ds[len(ds)-1]
			}
		}
	}
}
