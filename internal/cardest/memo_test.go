package cardest

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

// memoTestQuery builds a 5-table query with a 3-column equivalence class,
// a non-equality join predicate, and local predicates — every selectivity
// path JoinStep has.
func memoTestQuery() (*catalog.Catalog, []TableRef, []expr.Predicate) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 1000, map[string]float64{"x": 100, "v": 50}))
	cat.MustAddTable(catalog.SimpleTable("B", 2000, map[string]float64{"x": 400, "w": 80}))
	cat.MustAddTable(catalog.SimpleTable("C", 5000, map[string]float64{"x": 900}))
	cat.MustAddTable(catalog.SimpleTable("D", 300, map[string]float64{"y": 300}))
	cat.MustAddTable(catalog.SimpleTable("E", 800, map[string]float64{"y": 200, "z": 10}))
	tabs := []TableRef{{Table: "A"}, {Table: "B"}, {Table: "C"}, {Table: "D"}, {Table: "E"}}
	ref := func(t, c string) expr.ColumnRef { return expr.ColumnRef{Table: t, Column: c} }
	preds := []expr.Predicate{
		expr.NewJoin(ref("A", "x"), expr.OpEQ, ref("B", "x")),
		expr.NewJoin(ref("B", "x"), expr.OpEQ, ref("C", "x")),
		expr.NewJoin(ref("D", "y"), expr.OpEQ, ref("E", "y")),
		expr.NewJoin(ref("A", "v"), expr.OpLT, ref("E", "z")),
		expr.NewConst(ref("A", "v"), expr.OpLT, storage.Int64(25)),
		expr.NewConst(ref("E", "z"), expr.OpEQ, storage.Int64(3)),
	}
	return cat, tabs, preds
}

func memoConfigs() map[string]Config {
	return map[string]Config{
		"ELS": ELS(),
		"SM":  SM(),
		"SSS": SSS(),
		"REP": {Rule: RuleRepresentative, Rep: RepLargest, UseEffectiveStats: true, ApplyClosure: true},
	}
}

// sameStep asserts two StepResults are bit-identical (floats compared with
// ==, no tolerance: the memo stores the computed values, it must not
// recompute them differently).
func sameStep(t *testing.T, label string, got, want StepResult) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: step differs:\n memo   %+v\n direct %+v", label, got, want)
	}
}

// The memo must be invisible: for seeded random join orders and prefixes,
// an estimator with the memo (including repeated, cache-hitting calls)
// returns bit-identical StepResults — sizes, selectivities, groups, and
// warnings — to an estimator with DisableMemo set.
func TestMemoInvisibleProperty(t *testing.T) {
	cat, tabs, preds := memoTestQuery()
	for name, cfg := range memoConfigs() {
		t.Run(name, func(t *testing.T) {
			memoCfg := cfg
			plainCfg := cfg
			plainCfg.DisableMemo = true
			memoEst, err := New(cat, tabs, preds, memoCfg)
			if err != nil {
				t.Fatal(err)
			}
			plainEst, err := New(cat, tabs, preds, plainCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(memoEst.Warnings(), plainEst.Warnings()) {
				t.Fatalf("warnings differ: %v vs %v", memoEst.Warnings(), plainEst.Warnings())
			}
			aliases := []string{"A", "B", "C", "D", "E"}
			rng := rand.New(rand.NewSource(1994))
			for trial := 0; trial < 300; trial++ {
				perm := rng.Perm(len(aliases))
				k := 1 + rng.Intn(len(aliases)-1) // prefix length 1..n-1
				joined := make([]string, k)
				for i := 0; i < k; i++ {
					joined[i] = aliases[perm[i]]
				}
				next := aliases[perm[k]]
				size := float64(1 + rng.Intn(1_000_000))
				want, err := plainEst.JoinStep(size, joined, next)
				if err != nil {
					t.Fatal(err)
				}
				// First call fills the memo, second hits it; both must match.
				for pass := 0; pass < 2; pass++ {
					got, err := memoEst.JoinStep(size, joined, next)
					if err != nil {
						t.Fatal(err)
					}
					sameStep(t, name, got, want)
				}
			}
			// Full-order estimation must agree too (exercises EstimateOrder
			// and FinalSize through the memo).
			order := []string{"D", "A", "E", "C", "B"}
			wantSteps, err := plainEst.EstimateOrder(order)
			if err != nil {
				t.Fatal(err)
			}
			gotSteps, err := memoEst.EstimateOrder(order)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotSteps, wantSteps) {
				t.Fatalf("EstimateOrder differs:\n memo   %+v\n direct %+v", gotSteps, wantSteps)
			}
		})
	}
}

// Joined-set order must not affect the estimate (the memo key sorts the
// set, so an order sensitivity would surface as a cache collision).
func TestMemoKeyOrderInsensitive(t *testing.T) {
	cat, tabs, preds := memoTestQuery()
	est, err := New(cat, tabs, preds, ELS())
	if err != nil {
		t.Fatal(err)
	}
	a, err := est.JoinStep(5000, []string{"A", "B", "D"}, "C")
	if err != nil {
		t.Fatal(err)
	}
	b, err := est.JoinStep(5000, []string{"D", "B", "A"}, "C")
	if err != nil {
		t.Fatal(err)
	}
	sameStep(t, "order", b, a)
}

// Mutating a returned result's groups must not poison the cache.
func TestMemoResultIsolated(t *testing.T) {
	cat, tabs, preds := memoTestQuery()
	est, err := New(cat, tabs, preds, ELS())
	if err != nil {
		t.Fatal(err)
	}
	first, err := est.JoinStep(1000, []string{"A"}, "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Groups) == 0 {
		t.Fatal("expected grouped predicates for A⋈B")
	}
	first.Groups[0].Chosen = -1
	second, err := est.JoinStep(1000, []string{"A"}, "B")
	if err != nil {
		t.Fatal(err)
	}
	if second.Groups[0].Chosen == -1 {
		t.Fatal("cache entry mutated through a returned result")
	}
}

// Concurrent JoinStep calls (the parallel DP search's access pattern) must
// be race-free and all return the serial answer.
func TestMemoConcurrentAccess(t *testing.T) {
	cat, tabs, preds := memoTestQuery()
	est, err := New(cat, tabs, preds, ELS())
	if err != nil {
		t.Fatal(err)
	}
	plain := ELS()
	plain.DisableMemo = true
	plainEst, err := New(cat, tabs, preds, plain)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plainEst.JoinStep(777, []string{"A", "C"}, "B")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]StepResult, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := est.JoinStep(777, []string{"A", "C"}, "B")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := range results {
		sameStep(t, "concurrent", results[i], want)
	}
}
