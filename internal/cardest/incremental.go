package cardest

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/closure"
	"repro/internal/expr"
)

// GroupChoice records, for one equivalence-class group at one incremental
// step, the eligible predicates, their individual selectivities, and the
// selectivity the configured rule chose. It powers EXPLAIN output and the
// experiment tables.
type GroupChoice struct {
	// ClassID identifies the equivalence class (its smallest column key),
	// or the predicate's own canonical key for ungrouped predicates.
	ClassID string
	// Predicates are the eligible join predicates of this group.
	Predicates []expr.Predicate
	// Selectivities are the per-predicate selectivities, aligned with
	// Predicates.
	Selectivities []float64
	// Chosen is the group's combined selectivity under the rule.
	Chosen float64
}

// StepResult describes one incremental join step.
type StepResult struct {
	// Table is the alias joined at this step.
	Table string
	// TableCard is the effective cardinality the table contributed.
	TableCard float64
	// Groups are the per-class selectivity choices.
	Groups []GroupChoice
	// Selectivity is the product of the group selectivities.
	Selectivity float64
	// Cartesian reports that no eligible join predicate linked the table
	// (a cartesian product step).
	Cartesian bool
	// Size is the estimated result size after the step.
	Size float64
}

// JoinStep estimates the result size of joining table next into an
// intermediate result of estimated size currentSize covering the joined
// aliases. This is ELS step 6 (or the corresponding step of the baseline
// algorithms): find the eligible join predicates, group them by
// equivalence class, choose one selectivity per group by the configured
// rule, and multiply.
func (e *Estimator) JoinStep(currentSize float64, joined []string, next string) (StepResult, error) {
	eff, err := e.Effective(next)
	if err != nil {
		return StepResult{}, err
	}
	for _, j := range joined {
		if strings.EqualFold(j, next) {
			return StepResult{}, fmt.Errorf("cardest: table %q already joined", next)
		}
	}
	eligible := closure.EligibleJoinPredicates(e.preds, next, joined)
	res := StepResult{Table: next, TableCard: eff.Card}

	if len(eligible) == 0 {
		res.Cartesian = true
		res.Selectivity = 1
		res.Size = currentSize * eff.Card
		return res, nil
	}

	groups, err := e.groupEligible(eligible)
	if err != nil {
		return StepResult{}, err
	}
	sel := 1.0
	for i := range groups {
		chosen, err := e.chooseSelectivity(&groups[i])
		if err != nil {
			return StepResult{}, err
		}
		groups[i].Chosen = chosen
		sel *= chosen
	}
	res.Groups = groups
	res.Selectivity = sel
	res.Size = currentSize * eff.Card * sel
	return res, nil
}

// groupEligible buckets eligible join predicates by equivalence class.
// Only equality predicates participate in classes; non-equality join
// predicates each form their own group (independence assumption).
func (e *Estimator) groupEligible(eligible []expr.Predicate) ([]GroupChoice, error) {
	byClass := make(map[string]*GroupChoice)
	var order []string
	for _, p := range eligible {
		var id string
		if p.Op == expr.OpEQ {
			id = e.classes.ClassID(p.Left)
		} else {
			id = p.CanonicalKey()
		}
		g, ok := byClass[id]
		if !ok {
			g = &GroupChoice{ClassID: id}
			byClass[id] = g
			order = append(order, id)
		}
		s, err := e.JoinSelectivity(p)
		if err != nil {
			return nil, err
		}
		g.Predicates = append(g.Predicates, p)
		g.Selectivities = append(g.Selectivities, s)
	}
	sort.Strings(order)
	out := make([]GroupChoice, 0, len(order))
	for _, id := range order {
		out = append(out, *byClass[id])
	}
	return out, nil
}

// chooseSelectivity applies the configured rule to one group.
func (e *Estimator) chooseSelectivity(g *GroupChoice) (float64, error) {
	if len(g.Selectivities) == 0 {
		return 1, nil
	}
	switch e.cfg.Rule {
	case RuleM:
		prod := 1.0
		for _, s := range g.Selectivities {
			prod *= s
		}
		return prod, nil
	case RuleSS:
		min := math.Inf(1)
		for _, s := range g.Selectivities {
			if s < min {
				min = s
			}
		}
		return min, nil
	case RuleLS:
		max := math.Inf(-1)
		for _, s := range g.Selectivities {
			if s > max {
				max = s
			}
		}
		return max, nil
	case RuleRepresentative:
		if rep, ok := e.repSel[g.ClassID]; ok {
			return rep, nil
		}
		// Classes without a representative (e.g. non-equality groups) fall
		// back to the largest selectivity.
		max := math.Inf(-1)
		for _, s := range g.Selectivities {
			if s > max {
				max = s
			}
		}
		return max, nil
	default:
		return 0, fmt.Errorf("cardest: invalid rule %d", int(e.cfg.Rule))
	}
}

// EstimateOrder runs a full incremental estimation along the given join
// order (ELS step 6 repeated), returning the per-step results. The first
// table contributes its effective cardinality as the starting size.
func (e *Estimator) EstimateOrder(order []string) ([]StepResult, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("cardest: empty join order")
	}
	size, err := e.BaseSize(order[0])
	if err != nil {
		return nil, err
	}
	steps := make([]StepResult, 0, len(order)-1)
	joined := []string{order[0]}
	for _, next := range order[1:] {
		step, err := e.JoinStep(size, joined, next)
		if err != nil {
			return nil, err
		}
		steps = append(steps, step)
		size = step.Size
		joined = append(joined, next)
	}
	return steps, nil
}

// FinalSize is a convenience wrapper returning just the final estimate of
// EstimateOrder (the effective cardinality itself for a single table).
func (e *Estimator) FinalSize(order []string) (float64, error) {
	if len(order) == 1 {
		return e.BaseSize(order[0])
	}
	steps, err := e.EstimateOrder(order)
	if err != nil {
		return 0, err
	}
	return steps[len(steps)-1].Size, nil
}
