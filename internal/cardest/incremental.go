package cardest

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/closure"
	"repro/internal/expr"
)

// GroupChoice records, for one equivalence-class group at one incremental
// step, the eligible predicates, their individual selectivities, and the
// selectivity the configured rule chose. It powers EXPLAIN output and the
// experiment tables.
type GroupChoice struct {
	// ClassID identifies the equivalence class (its smallest column key),
	// or the predicate's own canonical key for ungrouped predicates.
	ClassID string
	// Predicates are the eligible join predicates of this group.
	Predicates []expr.Predicate
	// Selectivities are the per-predicate selectivities, aligned with
	// Predicates.
	Selectivities []float64
	// Chosen is the group's combined selectivity under the rule.
	Chosen float64
}

// StepResult describes one incremental join step.
type StepResult struct {
	// Table is the alias joined at this step.
	Table string
	// TableCard is the effective cardinality the table contributed.
	TableCard float64
	// Groups are the per-class selectivity choices.
	Groups []GroupChoice
	// Selectivity is the product of the group selectivities.
	Selectivity float64
	// Cartesian reports that no eligible join predicate linked the table
	// (a cartesian product step).
	Cartesian bool
	// Size is the estimated result size after the step.
	Size float64
}

// JoinStep estimates the result size of joining table next into an
// intermediate result of estimated size currentSize covering the joined
// aliases. This is ELS step 6 (or the corresponding step of the baseline
// algorithms): find the eligible join predicates, group them by
// equivalence class, choose one selectivity per group by the configured
// rule, and multiply.
func (e *Estimator) JoinStep(currentSize float64, joined []string, next string) (StepResult, error) {
	for _, j := range joined {
		if strings.EqualFold(j, next) {
			return StepResult{}, fmt.Errorf("cardest: table %q already joined", next)
		}
	}
	// The selectivity, groups, and cartesian flag depend only on the
	// (joined set, next) pair — currentSize enters only the final product —
	// so the dynamic-programming search, which revisits the same pair from
	// many subsets, hits the memo instead of regrouping predicates.
	var key string
	if !e.cfg.DisableMemo {
		key = memoKey(joined, next)
		e.memoMu.Lock()
		ent, ok := e.memo[key]
		e.memoMu.Unlock()
		if ok {
			return ent.result(currentSize, next), nil
		}
	}

	eff, err := e.Effective(next)
	if err != nil {
		return StepResult{}, err
	}
	eligible := closure.EligibleJoinPredicates(e.preds, next, joined)
	ent := memoEntry{tableCard: eff.Card, selectivity: 1}

	if len(eligible) == 0 {
		ent.cartesian = true
	} else {
		groups, err := e.groupEligible(eligible)
		if err != nil {
			return StepResult{}, err
		}
		sel := 1.0
		for i := range groups {
			chosen, err := e.chooseSelectivity(&groups[i])
			if err != nil {
				return StepResult{}, err
			}
			groups[i].Chosen = chosen
			sel *= chosen
		}
		ent.groups = groups
		ent.selectivity = sel
	}
	if !e.cfg.DisableMemo {
		e.memoMu.Lock()
		e.memo[key] = ent
		e.memoMu.Unlock()
	}
	return ent.result(currentSize, next), nil
}

// result materializes a StepResult for one currentSize from the memoized
// size-independent parts. The groups slice is copied so callers can never
// mutate the cached entry through a returned result.
func (ent memoEntry) result(currentSize float64, next string) StepResult {
	res := StepResult{
		Table:       next,
		TableCard:   ent.tableCard,
		Selectivity: ent.selectivity,
		Cartesian:   ent.cartesian,
		Size:        currentSize * ent.tableCard * ent.selectivity,
	}
	if ent.groups != nil {
		res.Groups = make([]GroupChoice, len(ent.groups))
		copy(res.Groups, ent.groups)
	}
	return res
}

// groupEligible buckets eligible join predicates by equivalence class.
// Only equality predicates participate in classes; non-equality join
// predicates each form their own group (independence assumption).
func (e *Estimator) groupEligible(eligible []expr.Predicate) ([]GroupChoice, error) {
	byClass := make(map[string]*GroupChoice)
	var order []string
	for _, p := range eligible {
		var id string
		if p.Op == expr.OpEQ {
			id = e.classes.ClassID(p.Left)
		} else {
			id = p.CanonicalKey()
		}
		g, ok := byClass[id]
		if !ok {
			g = &GroupChoice{ClassID: id}
			byClass[id] = g
			order = append(order, id)
		}
		s, err := e.JoinSelectivity(p)
		if err != nil {
			return nil, err
		}
		g.Predicates = append(g.Predicates, p)
		g.Selectivities = append(g.Selectivities, s)
	}
	sort.Strings(order)
	out := make([]GroupChoice, 0, len(order))
	for _, id := range order {
		out = append(out, *byClass[id])
	}
	return out, nil
}

// chooseSelectivity applies the configured rule to one group.
func (e *Estimator) chooseSelectivity(g *GroupChoice) (float64, error) {
	if len(g.Selectivities) == 0 {
		return 1, nil
	}
	switch e.cfg.Rule {
	case RuleM:
		prod := 1.0
		for _, s := range g.Selectivities {
			prod *= s
		}
		return prod, nil
	case RuleSS:
		min := math.Inf(1)
		for _, s := range g.Selectivities {
			if s < min {
				min = s
			}
		}
		return min, nil
	case RuleLS:
		max := math.Inf(-1)
		for _, s := range g.Selectivities {
			if s > max {
				max = s
			}
		}
		return max, nil
	case RuleRepresentative:
		if rep, ok := e.repSel[g.ClassID]; ok {
			return rep, nil
		}
		// Classes without a representative (e.g. non-equality groups) fall
		// back to the largest selectivity.
		max := math.Inf(-1)
		for _, s := range g.Selectivities {
			if s > max {
				max = s
			}
		}
		return max, nil
	default:
		return 0, fmt.Errorf("cardest: invalid rule %d", int(e.cfg.Rule))
	}
}

// EstimateOrder runs a full incremental estimation along the given join
// order (ELS step 6 repeated), returning the per-step results. The first
// table contributes its effective cardinality as the starting size.
func (e *Estimator) EstimateOrder(order []string) ([]StepResult, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("cardest: empty join order")
	}
	size, err := e.BaseSize(order[0])
	if err != nil {
		return nil, err
	}
	steps := make([]StepResult, 0, len(order)-1)
	joined := []string{order[0]}
	for _, next := range order[1:] {
		step, err := e.JoinStep(size, joined, next)
		if err != nil {
			return nil, err
		}
		steps = append(steps, step)
		size = step.Size
		joined = append(joined, next)
	}
	return steps, nil
}

// FinalSize is a convenience wrapper returning just the final estimate of
// EstimateOrder (the effective cardinality itself for a single table).
func (e *Estimator) FinalSize(order []string) (float64, error) {
	if len(order) == 1 {
		return e.BaseSize(order[0])
	}
	steps, err := e.EstimateOrder(order)
	if err != nil {
		return 0, err
	}
	return steps[len(steps)-1].Size, nil
}
