package cardest

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/faultinject"
)

func corruptCatalog(t *testing.T, mutate func(*catalog.TableStats)) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("R1", 100, map[string]float64{"x": 10}))
	cat.MustAddTable(catalog.SimpleTable("R2", 1000, map[string]float64{"y": 100}))
	// Catalog.Table returns the live pointer, so stats can rot in place —
	// exactly what a corrupted import or botched ANALYZE produces.
	mutate(cat.Table("R1"))
	return cat
}

func estimateJoin(t *testing.T, cat *catalog.Catalog) (*Estimator, float64) {
	t.Helper()
	preds := []expr.Predicate{expr.NewJoin(
		expr.ColumnRef{Table: "R1", Column: "x"}, expr.OpEQ,
		expr.ColumnRef{Table: "R2", Column: "y"})}
	est, err := NewQuery(cat, []TableRef{{Table: "R1"}, {Table: "R2"}}, preds, nil, ELS())
	if err != nil {
		t.Fatal(err)
	}
	size, err := est.FinalSize([]string{"R1", "R2"})
	if err != nil {
		t.Fatal(err)
	}
	return est, size
}

// Corrupt statistics — NaN, negative, or zero cardinalities — must degrade
// to the documented defaults and still yield finite, non-negative
// estimates, never NaN/Inf garbage.
func TestCorruptStatsDegradeGracefully(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(ts *catalog.TableStats)
	}{
		{"nan card", func(ts *catalog.TableStats) { ts.Card = math.NaN() }},
		{"negative card", func(ts *catalog.TableStats) { ts.Card = -50 }},
		{"inf card", func(ts *catalog.TableStats) { ts.Card = math.Inf(1) }},
		{"nan distinct", func(ts *catalog.TableStats) { ts.Column("x").Distinct = math.NaN() }},
		{"negative distinct", func(ts *catalog.TableStats) { ts.Column("x").Distinct = -3 }},
		{"zero distinct", func(ts *catalog.TableStats) { ts.Column("x").Distinct = 0 }},
		{"distinct above card", func(ts *catalog.TableStats) { ts.Column("x").Distinct = 1e9 }},
		{"nan range", func(ts *catalog.TableStats) { ts.Column("x").Min = math.NaN() }},
		{"everything at once", func(ts *catalog.TableStats) {
			ts.Card = math.NaN()
			ts.Column("x").Distinct = -1
			ts.Column("x").Max = math.NaN()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			est, size := estimateJoin(t, corruptCatalog(t, tc.mutate))
			if math.IsNaN(size) || math.IsInf(size, 0) || size < 0 {
				t.Fatalf("estimate %g is not finite and non-negative", size)
			}
			if len(est.Warnings()) == 0 {
				t.Fatal("statistics repair must be reported via Warnings")
			}
		})
	}
}

// The repaired defaults are the documented ones: table cardinality falls
// back to DefaultTableCard, column cardinality to the urn default (→ the
// Selinger 1/10 equality selectivity on large tables).
func TestDegradedDefaults(t *testing.T) {
	cat := corruptCatalog(t, func(ts *catalog.TableStats) {
		ts.Card = math.NaN()
		ts.Column("x").Distinct = math.NaN()
	})
	est, _ := estimateJoin(t, cat)
	base, err := est.BaseStats("R1")
	if err != nil {
		t.Fatal(err)
	}
	if base.Card != DefaultTableCard {
		t.Fatalf("card fallback = %g, want %d", base.Card, DefaultTableCard)
	}
	if d := base.Column("x").Distinct; d != 10 {
		t.Fatalf("distinct fallback = %g, want 10 (urn default at card %d)", d, DefaultTableCard)
	}
}

// An empty table is not corruption: zero cardinality passes through and
// estimates to zero without warnings.
func TestEmptyTableIsNotRepaired(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("R1", 0, map[string]float64{"x": 0}))
	cat.MustAddTable(catalog.SimpleTable("R2", 1000, map[string]float64{"y": 100}))
	est, size := estimateJoin(t, cat)
	if size != 0 {
		t.Fatalf("empty table should estimate 0, got %g", size)
	}
	if len(est.Warnings()) != 0 {
		t.Fatalf("unexpected warnings %v", est.Warnings())
	}
}

// The shared catalog must never be mutated by per-query repair.
func TestSanitizeDoesNotMutateCatalog(t *testing.T) {
	cat := corruptCatalog(t, func(ts *catalog.TableStats) { ts.Card = math.NaN() })
	estimateJoin(t, cat)
	if !math.IsNaN(cat.Table("R1").Card) {
		t.Fatal("sanitization leaked into the shared catalog")
	}
}

// The construction probe supports all three fault shapes: hard error,
// payload corruptor, and panic (the latter recovered at the public API).
func TestNewQueryFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	cat := corruptCatalog(t, func(*catalog.TableStats) {})
	preds := []expr.Predicate{expr.NewJoin(
		expr.ColumnRef{Table: "R1", Column: "x"}, expr.OpEQ,
		expr.ColumnRef{Table: "R2", Column: "y"})}
	refs := []TableRef{{Table: "R1"}, {Table: "R2"}}

	boom := errors.New("stats store down")
	faultinject.Enable(PointNewQuery, faultinject.Fault{Err: boom, Times: 1})
	if _, err := NewQuery(cat, refs, preds, nil, ELS()); !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}

	faultinject.Enable(PointNewQuery, faultinject.Fault{Times: 1,
		Payload: func(ts *catalog.TableStats) { ts.Card = math.NaN() }})
	est, err := NewQuery(cat, refs, preds, nil, ELS())
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Warnings()) == 0 || !strings.Contains(est.Warnings()[0], "invalid") {
		t.Fatalf("corruptor payload must trigger repair warnings, got %v", est.Warnings())
	}
}
