package cardest

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/selest"
)

// Graceful degradation for broken catalog statistics. Production catalogs
// rot: a botched ANALYZE, a corrupted stats import, or a fault-injected
// failure can leave NaN, negative, or zero statistics behind. Rather than
// propagate garbage into every downstream estimate (NaN selectivities
// poison whole plans), the estimator repairs its per-query clone of the
// statistics to the paper's own defaults before the preliminary phase runs.
// The repair is per-query and never mutates the shared catalog.
const (
	// DefaultTableCard replaces a missing/NaN/negative table cardinality.
	// It is the ‖S‖=1000 "small table" of the paper's Section 8 catalog — a
	// deliberately modest guess, as Selinger-style systems default modestly
	// when statistics are absent.
	DefaultTableCard = 1000
	// DefaultEqSelectivity is the classic System R default selectivity for
	// an equality predicate with unknown statistics (1/10, Selinger et al.
	// 1979). A repaired column cardinality is derived from it: d = 1/S.
	DefaultEqSelectivity = 1.0 / 10.0
	// defaultRowWidth replaces a non-positive row width (one int64 column).
	defaultRowWidth = 8
)

// defaultDistinct is the fallback column cardinality for a table of card
// rows: the urn-model expectation of filling d = 1/DefaultEqSelectivity
// urns with card balls (Section 5's surviving-distinct formula). For large
// tables this converges to 10 — i.e. the Selinger 1/10 equality default —
// while small tables degrade smoothly to d ≤ ‖R‖.
func defaultDistinct(card float64) float64 {
	d := selest.UrnDistinctCeil(1/DefaultEqSelectivity, card)
	if d < 1 {
		d = 1
	}
	return d
}

// invalid reports statistics values estimation formulas cannot consume.
func invalid(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0) || v < 0
}

// sanitizeStats repairs one table's cloned statistics in place and returns
// a human-readable warning per repair. A zero table cardinality is legal
// (an empty table estimates to zero everywhere); a zero column cardinality
// on a non-empty table is not (it would zero or explode selectivities) and
// falls back to the urn default.
func sanitizeStats(ts *catalog.TableStats) []string {
	var warns []string
	if invalid(ts.Card) {
		warns = append(warns, fmt.Sprintf(
			"table %s: cardinality %g is invalid; using default %d", ts.Name, ts.Card, DefaultTableCard))
		ts.Card = DefaultTableCard
	}
	if ts.RowWidth <= 0 {
		ts.RowWidth = defaultRowWidth
	}
	for _, cs := range ts.Columns {
		d := cs.Distinct
		switch {
		case invalid(d) || (d == 0 && ts.Card > 0):
			fallback := defaultDistinct(ts.Card)
			warns = append(warns, fmt.Sprintf(
				"table %s column %s: column cardinality %g is invalid; using urn default %g (Selinger 1/%g equality selectivity)",
				ts.Name, cs.Name, d, fallback, 1/DefaultEqSelectivity))
			cs.Distinct = fallback
		case d > ts.Card && ts.Card > 0:
			warns = append(warns, fmt.Sprintf(
				"table %s column %s: column cardinality %g exceeds table cardinality %g; clamping",
				ts.Name, cs.Name, d, ts.Card))
			cs.Distinct = ts.Card
		}
		if invalid(cs.NullCount) {
			cs.NullCount = 0
		}
		if cs.HasRange && (math.IsNaN(cs.Min) || math.IsNaN(cs.Max) || cs.Min > cs.Max) {
			// An unusable range disables range statistics rather than feeding
			// NaN interpolation into local-predicate selectivities. Empty
			// tables degrade silently: their [0, −1] range is a benign
			// artifact of declaring zero distinct values.
			if ts.Card > 0 {
				warns = append(warns, fmt.Sprintf(
					"table %s column %s: min/max range [%g, %g] is invalid; dropping range statistics",
					ts.Name, cs.Name, cs.Min, cs.Max))
			}
			cs.HasRange = false
		}
	}
	return warns
}
