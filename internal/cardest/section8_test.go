package cardest

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

// section8Catalog declares the statistics of the Section 8 experiment:
// ‖S‖=1000, ‖M‖=10000, ‖B‖=50000, ‖G‖=100000 with d equal to the table
// cardinality for each join column.
func section8Catalog() *catalog.Catalog {
	c := catalog.New()
	c.MustAddTable(catalog.SimpleTable("S", 1000, map[string]float64{"s": 1000}))
	c.MustAddTable(catalog.SimpleTable("M", 10000, map[string]float64{"m": 10000}))
	c.MustAddTable(catalog.SimpleTable("B", 50000, map[string]float64{"b": 50000}))
	c.MustAddTable(catalog.SimpleTable("G", 100000, map[string]float64{"g": 100000}))
	return c
}

func section8Tables() []TableRef {
	return []TableRef{{Table: "S"}, {Table: "M"}, {Table: "B"}, {Table: "G"}}
}

// section8Preds is the original query: s=m AND m=b AND b=g AND s<100.
func section8Preds() []expr.Predicate {
	return []expr.Predicate{
		expr.NewJoin(ref("S", "s"), expr.OpEQ, ref("M", "m")),
		expr.NewJoin(ref("M", "m"), expr.OpEQ, ref("B", "b")),
		expr.NewJoin(ref("B", "b"), expr.OpEQ, ref("G", "g")),
		expr.NewConst(ref("S", "s"), expr.OpLT, storage.Int64(100)),
	}
}

func sizes(t *testing.T, e *Estimator, order []string) []float64 {
	t.Helper()
	steps, err := e.EstimateOrder(order)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(steps))
	for i, s := range steps {
		out[i] = s.Size
	}
	return out
}

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// Row 2 of the paper's table: Algorithm SM on the PTC-rewritten query
// estimates (0.2, 4×10⁻⁸, 4×10⁻²¹) along the order S, B, M, G.
func TestSection8_SMWithPTC(t *testing.T) {
	e := mustNew(t, section8Catalog(), section8Tables(), section8Preds(), SM().WithClosure())
	got := sizes(t, e, []string{"S", "B", "M", "G"})
	want := []float64{0.2, 4e-8, 4e-21}
	for i := range want {
		if !approxEq(got[i], want[i]) {
			t.Errorf("SM+PTC step %d = %g, want %g", i, got[i], want[i])
		}
	}
}

// Row 3: Algorithm SSS on the PTC-rewritten query estimates
// (0.2, 4×10⁻⁴, 4×10⁻⁷).
func TestSection8_SSSWithPTC(t *testing.T) {
	e := mustNew(t, section8Catalog(), section8Tables(), section8Preds(), SSS().WithClosure())
	got := sizes(t, e, []string{"S", "B", "M", "G"})
	want := []float64{0.2, 4e-4, 4e-7}
	for i := range want {
		if !approxEq(got[i], want[i]) {
			t.Errorf("SSS+PTC step %d = %g, want %g", i, got[i], want[i])
		}
	}
}

// Row 4: Algorithm ELS estimates (100, 100, 100) along its chosen order
// B, G, M, S — and, because Rule LS agrees with Equation 3, along every
// other order too.
func TestSection8_ELS(t *testing.T) {
	e := mustNew(t, section8Catalog(), section8Tables(), section8Preds(), ELS())
	got := sizes(t, e, []string{"B", "G", "M", "S"})
	want := []float64{100, 100, 100}
	for i := range want {
		if !approxEq(got[i], want[i]) {
			t.Errorf("ELS step %d = %g, want %g", i, got[i], want[i])
		}
	}
	// Effective stats behind the estimates: every table reduced to 100 rows
	// and 100 distinct values.
	for _, tab := range []string{"S", "M", "B", "G"} {
		eff, err := e.Effective(tab)
		if err != nil {
			t.Fatal(err)
		}
		if eff.Card != 100 {
			t.Errorf("‖%s‖′ = %g, want 100", tab, eff.Card)
		}
		col := map[string]string{"S": "s", "M": "m", "B": "b", "G": "g"}[tab]
		if d, _ := eff.ColumnCard(col); d != 100 {
			t.Errorf("d′_%s = %g, want 100", col, d)
		}
	}
}

// Row 1: Algorithm SM on the original query (no PTC). Only the chain
// predicates are eligible, so each incremental step multiplies exactly one
// selectivity; along S, M, B, G the estimates happen to be correct (100 at
// every step) — the plan is bad for a different reason (no early selection
// on M, B, G), which the executor experiments demonstrate.
func TestSection8_SMWithoutPTC(t *testing.T) {
	e := mustNew(t, section8Catalog(), section8Tables(), section8Preds(), SM())
	got := sizes(t, e, []string{"S", "M", "B", "G"})
	want := []float64{100, 100, 100}
	for i := range want {
		if !approxEq(got[i], want[i]) {
			t.Errorf("SM step %d = %g, want %g", i, got[i], want[i])
		}
	}
	// Without closure there is no implied predicate available.
	if len(e.Implied()) != 0 {
		t.Errorf("SM (no PTC) should not imply predicates: %v", e.Implied())
	}
	// M, B and G keep their full cardinalities (no implied local predicates).
	for tab, want := range map[string]float64{"M": 10000, "B": 50000, "G": 100000} {
		eff, _ := e.Effective(tab)
		if eff.Card != want {
			t.Errorf("‖%s‖′ = %g, want %g (no early selection)", tab, eff.Card, want)
		}
	}
}

// ELS's estimates agree with the Equation 3 oracle, and the oracle says
// every prefix of every order over the four filtered tables has size 100.
func TestSection8_OracleIs100Everywhere(t *testing.T) {
	e := mustNew(t, section8Catalog(), section8Tables(), section8Preds(), ELS())
	sets := [][]string{
		{"S", "M"}, {"S", "B"}, {"S", "G"}, {"M", "B"}, {"M", "G"}, {"B", "G"},
		{"S", "M", "B"}, {"S", "M", "G"}, {"S", "B", "G"}, {"M", "B", "G"},
		{"S", "M", "B", "G"},
	}
	for _, set := range sets {
		sz, err := e.OracleSize(set)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(sz, 100) {
			t.Errorf("oracle(%v) = %g, want 100", set, sz)
		}
	}
}

// The estimated result sizes of Section 8's rows depend on the join order
// for SM and SSS but not for ELS.
func TestSection8_ELSOrderIndependent(t *testing.T) {
	e := mustNew(t, section8Catalog(), section8Tables(), section8Preds(), ELS())
	orders := [][]string{
		{"S", "M", "B", "G"},
		{"G", "B", "M", "S"},
		{"B", "G", "M", "S"},
		{"M", "S", "G", "B"},
		{"S", "G", "M", "B"},
	}
	for _, ord := range orders {
		sz, err := e.FinalSize(ord)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(sz, 100) {
			t.Errorf("ELS final size along %v = %g, want 100", ord, sz)
		}
	}
}
