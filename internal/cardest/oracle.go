package cardest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// OracleSize computes the join result size for a set of tables directly
// from Equation 3, the closed form the paper proves Rule LS agrees with:
// for each equivalence class, the product of effective table cardinalities
// is divided by every participating column cardinality except the smallest;
// independent classes multiply. It is the ground truth the estimation rules
// are validated against (exact under the uniformity, containment and
// independence assumptions).
//
// The oracle requires the estimator's predicate set to be transitively
// closed (ELS configs are; for others the result is still Equation 3 over
// whatever classes the given predicates induce) and covers equality join
// predicates only — non-equality join predicates are outside Equation 3
// and make the oracle return an error.
func (e *Estimator) OracleSize(aliases []string) (float64, error) {
	if len(aliases) == 0 {
		return 0, fmt.Errorf("cardest: empty table set")
	}
	inSet := make(map[string]bool, len(aliases))
	size := 1.0
	for _, a := range aliases {
		eff, err := e.Effective(a)
		if err != nil {
			return 0, err
		}
		k := strings.ToLower(a)
		if inSet[k] {
			return 0, fmt.Errorf("cardest: duplicate alias %q", a)
		}
		inSet[k] = true
		size *= eff.Card
	}
	// Reject non-equality join predicates within the set.
	for _, p := range e.preds {
		if p.Kind() == expr.KindJoin && p.Op != expr.OpEQ &&
			inSet[strings.ToLower(p.Left.Table)] && inSet[strings.ToLower(p.Right.Table)] {
			return 0, fmt.Errorf("cardest: oracle does not cover non-equality join predicate %s", p)
		}
	}

	// For each equivalence class, gather one effective column cardinality
	// per participating table in the set. Multiple same-table members share
	// their (Section 6 folded) effective cardinality, so taking the minimum
	// per table is exact.
	for _, class := range e.classes.All() {
		perTable := make(map[string]float64)
		for _, ref := range class {
			k := strings.ToLower(ref.Table)
			if !inSet[k] {
				continue
			}
			d, err := e.effColCard(ref)
			if err != nil {
				return 0, err
			}
			if cur, ok := perTable[k]; !ok || d < cur {
				perTable[k] = d
			}
		}
		if len(perTable) < 2 {
			continue
		}
		ds := make([]float64, 0, len(perTable))
		for _, d := range perTable {
			ds = append(ds, d)
		}
		sort.Float64s(ds)
		for _, d := range ds[1:] {
			if d <= 0 {
				return 0, nil
			}
			size /= d
		}
	}
	return size, nil
}
