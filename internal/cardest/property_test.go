package cardest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

// randomSingleClassQuery builds n tables whose join columns form one
// equivalence class via a random spanning set of equality predicates.
func randomSingleClassQuery(rng *rand.Rand, n int) (*catalog.Catalog, []TableRef, []expr.Predicate) {
	cat := catalog.New()
	tabs := make([]TableRef, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("T%d", i)
		card := float64(1 + rng.Intn(100000))
		d := float64(1 + rng.Intn(int(card)))
		cat.MustAddTable(catalog.SimpleTable(name, card, map[string]float64{"c": d}))
		tabs[i] = TableRef{Table: name}
	}
	var preds []expr.Predicate
	// Random spanning tree plus a few extra edges.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		preds = append(preds, expr.NewJoin(ref(fmt.Sprintf("T%d", i), "c"), expr.OpEQ, ref(fmt.Sprintf("T%d", j), "c")))
	}
	extra := rng.Intn(n)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			preds = append(preds, expr.NewJoin(ref(fmt.Sprintf("T%d", i), "c"), expr.OpEQ, ref(fmt.Sprintf("T%d", j), "c")))
		}
	}
	return cat, tabs, preds
}

func shuffledOrder(rng *rand.Rand, n int) []string {
	order := make([]string, n)
	for i, p := range rng.Perm(n) {
		order[i] = fmt.Sprintf("T%d", p)
	}
	return order
}

// The paper's correctness theorem (Section 7): Rule LS computes, for any
// join order over a single equivalence class, exactly the Equation 3 size.
func TestLSAgreesWithEquation3Property(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(5)
		cat, tabs, preds := randomSingleClassQuery(rng, n)
		e, err := New(cat, tabs, preds, ELS())
		if err != nil {
			t.Fatal(err)
		}
		aliases := make([]string, n)
		for i := range aliases {
			aliases[i] = fmt.Sprintf("T%d", i)
		}
		oracle, err := e.OracleSize(aliases)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			order := shuffledOrder(rng, n)
			got, err := e.FinalSize(order)
			if err != nil {
				t.Fatal(err)
			}
			if !approxEq(got, oracle) {
				t.Fatalf("trial %d: LS along %v = %g, Equation 3 = %g", trial, order, got, oracle)
			}
		}
	}
}

// Rule M never exceeds LS, and Rule SS never exceeds LS (they multiply
// more, or pick smaller, selectivities): LS is the largest of the three,
// and all are upper-bounded by the cartesian product.
func TestRuleOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		cat, tabs, preds := randomSingleClassQuery(rng, n)
		order := shuffledOrder(rng, n)
		var final [3]float64
		for i, cfg := range []Config{SM().WithClosure(), SSS().WithClosure(), ELS()} {
			e, err := New(cat, tabs, preds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sz, err := e.FinalSize(order)
			if err != nil {
				t.Fatal(err)
			}
			final[i] = sz
		}
		m, ss, ls := final[0], final[1], final[2]
		if m > ls*(1+1e-9) {
			t.Fatalf("trial %d: M (%g) exceeded LS (%g)", trial, m, ls)
		}
		if ss > ls*(1+1e-9) {
			t.Fatalf("trial %d: SS (%g) exceeded LS (%g)", trial, ss, ls)
		}
		if m > ss*(1+1e-9) {
			t.Fatalf("trial %d: M (%g) exceeded SS (%g)", trial, m, ss)
		}
		cart := 1.0
		for i := 0; i < n; i++ {
			cart *= cat.Table(fmt.Sprintf("T%d", i)).Card
		}
		if ls > cart*(1+1e-9) {
			t.Fatalf("trial %d: LS (%g) exceeded cartesian (%g)", trial, ls, cart)
		}
	}
}

// With several independent equivalence classes, LS still matches the
// oracle: classes contribute independent factors.
func TestLSMultiClassProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(3)
		cat := catalog.New()
		tabs := make([]TableRef, n)
		var preds []expr.Predicate
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("T%d", i)
			card := float64(10 + rng.Intn(10000))
			d1 := float64(1 + rng.Intn(int(card)))
			d2 := float64(1 + rng.Intn(int(card)))
			cat.MustAddTable(catalog.SimpleTable(name, card, map[string]float64{"a": d1, "b": d2}))
			tabs[i] = TableRef{Table: name}
		}
		// Class A chains column a across all tables; class B chains column b
		// across a random subset of size >= 2.
		for i := 1; i < n; i++ {
			preds = append(preds, expr.NewJoin(ref(fmt.Sprintf("T%d", i), "a"), expr.OpEQ, ref(fmt.Sprintf("T%d", i-1), "a")))
		}
		subset := rng.Perm(n)[:2+rng.Intn(n-1)]
		for k := 1; k < len(subset); k++ {
			preds = append(preds, expr.NewJoin(
				ref(fmt.Sprintf("T%d", subset[k]), "b"), expr.OpEQ, ref(fmt.Sprintf("T%d", subset[k-1]), "b")))
		}
		e, err := New(cat, tabs, preds, ELS())
		if err != nil {
			t.Fatal(err)
		}
		aliases := make([]string, n)
		for i := range aliases {
			aliases[i] = fmt.Sprintf("T%d", i)
		}
		oracle, err := e.OracleSize(aliases)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.FinalSize(shuffledOrder(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(got, oracle) {
			t.Fatalf("trial %d: LS = %g, oracle = %g", trial, got, oracle)
		}
	}
}

// LS with local predicates: estimates remain order-independent (the
// stronger property implied by agreement with Equation 3 over effective
// statistics).
func TestLSOrderIndependentWithLocalsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(4)
		cat, tabs, preds := randomSingleClassQuery(rng, n)
		// Random local range predicate on a random table's join column.
		victim := fmt.Sprintf("T%d", rng.Intn(n))
		d := cat.Table(victim).Column("c").Distinct
		cut := int64(1 + rng.Intn(int(d)))
		preds = append(preds, expr.NewConst(ref(victim, "c"), expr.OpLT, storage.Int64(cut)))
		e, err := New(cat, tabs, preds, ELS())
		if err != nil {
			t.Fatal(err)
		}
		ref := -1.0
		for rep := 0; rep < 4; rep++ {
			got, err := e.FinalSize(shuffledOrder(rng, n))
			if err != nil {
				t.Fatal(err)
			}
			if ref < 0 {
				ref = got
			} else if !approxEq(got, ref) {
				t.Fatalf("trial %d: order-dependent LS estimate: %g vs %g", trial, got, ref)
			}
		}
	}
}

// Estimates are always non-negative and finite for all rules.
func TestEstimateSanityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	cfgs := []Config{SM(), SM().WithClosure(), SSS().WithClosure(), ELS(),
		{Rule: RuleRepresentative, ApplyClosure: true, Rep: RepLargest},
		{Rule: RuleRepresentative, ApplyClosure: true, UseEffectiveStats: true, Rep: RepSmallest}}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		cat, tabs, preds := randomSingleClassQuery(rng, n)
		order := shuffledOrder(rng, n)
		for _, cfg := range cfgs {
			e, err := New(cat, tabs, preds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sz, err := e.FinalSize(order)
			if err != nil {
				t.Fatal(err)
			}
			if sz < 0 || math.IsNaN(sz) || math.IsInf(sz, 0) {
				t.Fatalf("trial %d cfg %s: estimate %g", trial, cfg.Name(), sz)
			}
		}
	}
}
