// Package cardest implements the paper's core contribution: incremental
// estimation of join result sizes. It provides the three selectivity-choice
// rules the paper analyzes — the multiplicative Rule M of Selinger et al.,
// the "intuitive" smallest-selectivity Rule SS, and the paper's
// largest-selectivity Rule LS — plus the representative-selectivity
// proposal of Section 3.3, over either the raw catalog statistics (the
// "standard algorithm") or the effective statistics of Algorithm ELS
// (local predicates folded per Section 5, single-table j-equivalent
// columns per Section 6).
//
// Algorithm ELS is the configuration {Rule LS, effective statistics,
// transitive closure}; Algorithm SM is {Rule M, standard statistics} and
// Algorithm SSS is {Rule SS, standard statistics}, as in Section 8.
package cardest

import (
	"fmt"

	"repro/internal/selest"
)

// Rule selects how the selectivities of the eligible join predicates
// belonging to one equivalence class are combined at each incremental step.
type Rule int

const (
	// RuleM multiplies every eligible join selectivity (Section 3.3's
	// "multiplicative rule", standard since Selinger et al. [13]).
	RuleM Rule = iota
	// RuleSS uses the smallest selectivity in each equivalence-class group
	// (the intuitive-but-wrong choice of Section 3.3).
	RuleSS
	// RuleLS uses the largest selectivity in each group — the paper's new
	// rule (Section 7), provably consistent with Equation 3.
	RuleLS
	// RuleRepresentative uses one fixed selectivity per equivalence class
	// (the third proposal of Section 3.3, shown to admit no correct value).
	RuleRepresentative
)

// String names the rule as in the paper.
func (r Rule) String() string {
	switch r {
	case RuleM:
		return "M"
	case RuleSS:
		return "SS"
	case RuleLS:
		return "LS"
	case RuleRepresentative:
		return "REP"
	default:
		return "?"
	}
}

// Valid reports whether r is a defined rule.
func (r Rule) Valid() bool { return r >= RuleM && r <= RuleRepresentative }

// RepChoice picks the fixed selectivity used by RuleRepresentative for a
// class. The paper's Section 3.3 example tries both ends and shows neither
// can be correct in all cases.
type RepChoice int

const (
	// RepSmallest uses the smallest pairwise selectivity in the class,
	// 1/max(all d in class).
	RepSmallest RepChoice = iota
	// RepLargest uses the largest pairwise selectivity in the class,
	// 1/(second-smallest d in class).
	RepLargest
)

// String names the choice.
func (c RepChoice) String() string {
	switch c {
	case RepSmallest:
		return "rep-smallest"
	case RepLargest:
		return "rep-largest"
	default:
		return "?"
	}
}

// Config selects an estimation algorithm.
type Config struct {
	// Rule combines eligible join selectivities within a class group.
	Rule Rule
	// UseEffectiveStats folds local predicates into table and column
	// cardinalities before join estimation (ELS steps 3–5). When false, the
	// "standard algorithm" applies: local predicates reduce table
	// cardinalities only, and join selectivities come from the raw column
	// cardinalities.
	UseEffectiveStats bool
	// ApplyClosure runs predicate transitive closure (ELS steps 1–2) on the
	// query's predicates before estimation. When false the estimator sees
	// exactly the predicates it was given.
	ApplyClosure bool
	// Sel configures local-predicate selectivity estimation.
	Sel selest.Options
	// Rep selects the representative selectivity for RuleRepresentative.
	Rep RepChoice
	// DisableMemo turns off the per-query memoization of JoinStep's
	// selectivity computation. The memo is semantically invisible — cached
	// and uncached estimates are bit-identical — so this exists for the
	// property test that proves it, and for measuring the memo's effect.
	DisableMemo bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if !c.Rule.Valid() {
		return fmt.Errorf("cardest: invalid rule %d", int(c.Rule))
	}
	return nil
}

// ELS returns the paper's Algorithm ELS: Rule LS, effective statistics,
// transitive closure, urn-model distinct reduction.
func ELS() Config {
	return Config{
		Rule:              RuleLS,
		UseEffectiveStats: true,
		ApplyClosure:      true,
		Sel:               selest.DefaultOptions(),
	}
}

// SM returns Algorithm SM: Rule M over the standard (unreduced) statistics.
// Closure is off; enable it to model running SM on a PTC-rewritten query.
func SM() Config {
	return Config{Rule: RuleM, Sel: selest.DefaultOptions()}
}

// SSS returns Algorithm SSS: Rule SS over the standard statistics.
func SSS() Config {
	return Config{Rule: RuleSS, Sel: selest.DefaultOptions()}
}

// WithClosure returns a copy of the config with transitive closure enabled,
// modeling a PTC query-rewrite stage ahead of the estimator.
func (c Config) WithClosure() Config {
	c.ApplyClosure = true
	return c
}

// Name renders the algorithm name in the style of Section 8's table.
func (c Config) Name() string {
	switch {
	case c.Rule == RuleLS && c.UseEffectiveStats:
		return "ELS"
	case c.UseEffectiveStats:
		return "E" + c.Rule.String()
	default:
		return "S" + c.Rule.String()
	}
}
