// Arena pooling for the vectorized executor's chunk-local scratch buffers.
//
// The columnar scan and hash-join kernels need short-lived slices — selection
// vectors, pair-index buffers, normalized key arrays — once per chunk, on
// whatever worker goroutine the pool dispatched the chunk to. Allocating them
// fresh per chunk would make the batch engine allocation-bound at exactly the
// worker counts it exists to serve, so they are recycled here, next to the
// pool that creates the parallelism.
package workpool

import "sync"

// Arena recycles []T scratch buffers across chunks and worker goroutines.
// Get returns a zero-length slice with at least the requested capacity; Put
// recycles it. An Arena is safe for concurrent use; construct with NewArena.
type Arena[T any] struct {
	pool sync.Pool
}

// NewArena returns an empty arena for []T buffers.
func NewArena[T any]() *Arena[T] {
	a := &Arena[T]{}
	a.pool.New = func() any { return new([]T) }
	return a
}

// Get returns a zero-length buffer with capacity ≥ n; callers append into it.
func (a *Arena[T]) Get(n int) []T {
	s := *(a.pool.Get().(*[]T))
	if cap(s) < n {
		s = make([]T, 0, n)
	}
	return s[:0]
}

// Put recycles a buffer obtained from Get (or any []T the caller no longer
// needs). Capacity-zero buffers are dropped. The caller must not use s after
// Put — the next Get may hand it to another goroutine.
func (a *Arena[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	a.pool.Put(&s)
}
