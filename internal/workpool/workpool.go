// Package workpool provides the bounded worker pool that drives the
// parallel operators of the query pipeline: chunked scans, partitioned
// hash joins, and level-parallel dynamic-programming enumeration.
//
// The pool runs a fixed set of indexed tasks on at most `workers`
// goroutines. It makes a single stop decision: the first task failure (in
// task-index order, which makes the reported error deterministic even
// though detection order is not) stops the dispatch of further tasks, and
// Run returns only after every started worker has exited — callers never
// leak goroutines, and per-task outputs indexed by task number are safe to
// read after Run returns.
package workpool

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/governor"
)

// DefaultWorkers resolves a requested worker count: values ≤ 0 select
// runtime.GOMAXPROCS(0).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes task(0..n-1) on at most workers goroutines and returns the
// error of the lowest-indexed failed task, or nil if all tasks succeeded.
//
// Dispatch stops after the first observed failure: tasks not yet claimed
// are never started. Tasks already running are not interrupted (tasks that
// need prompt interruption should poll their own cancellation source, e.g.
// a governor). With workers ≤ 1 or n ≤ 1 the tasks run inline on the
// calling goroutine, which is the serial execution path — parallel
// operators are written once and degrade to serial by worker count.
//
// A task that panics counts as a failure: the panic is captured in its
// worker, dispatch stops, and Run re-panics with the original value on the
// calling goroutine once all workers have exited — so callers' recover
// logic (e.g. the public API's panic-to-error conversion) sees the same
// panic whether tasks run inline or on workers.
func Run(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64 // next unclaimed task index
		stopped atomic.Bool  // set on first failure; halts dispatch
		wg      sync.WaitGroup
	)
	errs := make([]error, n)
	panics := make([]any, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err, pval := runTask(task, i)
				if pval != nil {
					panics[i] = pval
					stopped.Store(true)
					return
				}
				if err != nil {
					errs[i] = err
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(panics[i])
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// runTask invokes one task, converting a panic into a captured value.
// recover never returns nil for a real panic (panic(nil) is wrapped by the
// runtime), so pval != nil means "task panicked".
func runTask(task func(i int) error, i int) (err error, pval any) {
	defer func() { pval = recover() }()
	return task(i), nil
}

// Go spawns f on a new goroutine registered with wg. A panic in f is
// recovered into a *governor.InternalError and delivered to onErr, as is
// any error f returns; onErr may be nil when the caller only needs the
// panic containment. Go is the sanctioned primitive for long-lived
// background goroutines (mutators, fault schedulers, soak workers) that
// do not fit Run's fixed task-set shape — spawning them raw would bypass
// the panic→ErrInternal mapping the serving layer's taxonomy promises.
func Go(wg *sync.WaitGroup, onErr func(error), f func() error) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		err, pval := runTask(func(int) error { return f() }, 0)
		if pval != nil {
			err = governor.NewInternal(pval, debug.Stack())
		}
		if err != nil && onErr != nil {
			onErr(err)
		}
	}()
}

// Async runs f on a new goroutine and returns a buffered channel that
// receives f's result exactly once; a panic in f arrives as a
// *governor.InternalError rather than crashing the process. It is the
// sanctioned shape for call-with-timeout helpers:
//
//	done := workpool.Async(f)
//	select {
//	case err := <-done:
//		...
//	case <-ctx.Done():
//		...
//	}
func Async(f func() error) <-chan error {
	done := make(chan error, 1)
	go func() {
		err, pval := runTask(func(int) error { return f() }, 0)
		if pval != nil {
			err = governor.NewInternal(pval, debug.Stack())
		}
		done <- err
	}()
	return done
}
