package workpool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var done atomic.Int64
		if err := Run(workers, 37, func(i int) error {
			done.Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if done.Load() != 37 {
			t.Fatalf("workers=%d: ran %d tasks, want 37", workers, done.Load())
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// The reported error must be the lowest-indexed failure, regardless of the
// order in which workers detect failures.
func TestDeterministicErrorSelection(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		err := Run(4, 16, func(i int) error {
			if i%3 == 2 { // tasks 2, 5, 8, ... fail
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 2 failed" {
			t.Fatalf("trial %d: got %v, want the lowest-indexed failure (task 2)", trial, err)
		}
	}
}

// After a failure, unclaimed tasks must never start.
func TestStopsDispatchAfterFailure(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	err := Run(2, 1000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d tasks started despite an early failure", n)
	}
}

// Run must return only after every started goroutine has exited.
func TestNoLeakedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		Run(8, 64, func(i int) error {
			if i == 7 {
				return errors.New("fail")
			}
			return nil
		})
	}
	// Allow the runtime a moment to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// A panicking task must re-panic on the calling goroutine with the
// original value, after all workers have exited.
func TestPanicPropagatesToCaller(t *testing.T) {
	defer func() {
		p := recover()
		if p != "task 5 panicked" {
			t.Fatalf("recovered %v, want the task's panic value", p)
		}
	}()
	Run(4, 32, func(i int) error {
		if i == 5 {
			panic("task 5 panicked")
		}
		return nil
	})
	t.Fatal("Run returned instead of panicking")
}

// Inline (serial) mode must stop at the first error exactly like the
// parallel mode's deterministic selection.
func TestSerialModeStopsAtFirstError(t *testing.T) {
	var ran []int
	err := Run(1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3 failed" {
		t.Fatalf("got %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("serial mode ran %v, want tasks 0..3 only", ran)
	}
}
