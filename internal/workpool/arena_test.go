package workpool

import (
	"sync"
	"testing"
)

func TestArenaReuse(t *testing.T) {
	a := NewArena[int]()
	s := a.Get(16)
	if len(s) != 0 || cap(s) < 16 {
		t.Fatalf("Get(16): len=%d cap=%d", len(s), cap(s))
	}
	s = append(s, 1, 2, 3)
	a.Put(s)
	s2 := a.Get(8)
	if len(s2) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(s2))
	}
	// Growth: asking for more than the recycled capacity must still satisfy.
	s3 := a.Get(1 << 16)
	if cap(s3) < 1<<16 {
		t.Fatalf("Get(1<<16): cap=%d", cap(s3))
	}
	a.Put(nil) // must not panic
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena[int64]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := a.Get(64)
				for j := 0; j < 64; j++ {
					s = append(s, int64(w*1000+j))
				}
				for j := 0; j < 64; j++ {
					if s[j] != int64(w*1000+j) {
						t.Errorf("worker %d saw corrupted buffer", w)
						return
					}
				}
				a.Put(s)
			}
		}(w)
	}
	wg.Wait()
}
