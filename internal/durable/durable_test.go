package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/governor"
)

// step applies one catalog mutation (add/replace a table) through the
// store: clone, change, LogMutation at version. Returns the next catalog.
func step(t *testing.T, s *Store, prev *catalog.Catalog, version uint64, name string, card float64) *catalog.Catalog {
	t.Helper()
	next := prev.Clone()
	next.MustAddTable(catalog.SimpleTable(name, card, map[string]float64{"a": 2}))
	if err := s.LogMutation(version, prev, next); err != nil {
		t.Fatalf("LogMutation v%d: %v", version, err)
	}
	return next
}

// sameStats asserts two catalogs carry byte-identical statistics.
func sameStats(t *testing.T, want, got *catalog.Catalog) {
	t.Helper()
	var a, b bytes.Buffer
	if err := want.ExportJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.ExportJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("catalogs differ:\nwant %s\ngot  %s", a.String(), b.String())
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("fresh dir recovered at version %d, want 1", s.Version())
	}
	cat := s.Catalog()
	cat = step(t, s, cat, 2, "r", 100)
	cat = step(t, s, cat, 3, "s", 200)
	cat = step(t, s, cat, 4, "r", 150) // replace: only r in this delta
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Version() != 4 {
		t.Fatalf("recovered version %d, want 4", s2.Version())
	}
	if s2.TornTail() {
		t.Fatal("clean shutdown reported a torn tail")
	}
	sameStats(t, cat, s2.Catalog())
	st := s2.Stats()
	if st.RecordsSinceCheckpoint != 3 || st.CheckpointVersion != 1 {
		t.Fatalf("stats %+v, want 3 records since implicit checkpoint 1", st)
	}
}

func TestEmptyDeltaAdvancesVersion(t *testing.T) {
	// BuildIndex publishes a new version without changing any statistics;
	// the WAL must still advance the version so recovery lands on it.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := step(t, s, s.Catalog(), 2, "r", 10)
	if err := s.LogMutation(3, cat, cat.Clone()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Version() != 3 {
		t.Fatalf("recovered version %d, want 3", s2.Version())
	}
	sameStats(t, cat, s2.Catalog())
}

func TestCheckpointCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := s.Catalog()
	cat = step(t, s, cat, 2, "r", 100)
	cat = step(t, s, cat, 3, "s", 200)
	if err := s.Checkpoint(cat, 3); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WALSizeBytes != 0 || st.RecordsSinceCheckpoint != 0 || st.CheckpointVersion != 3 {
		t.Fatalf("post-checkpoint stats %+v", st)
	}
	cat = step(t, s, cat, 4, "u", 7)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Version() != 4 {
		t.Fatalf("recovered version %d, want 4", s2.Version())
	}
	sameStats(t, cat, s2.Catalog())
	if got := s2.Stats().CheckpointVersion; got != 3 {
		t.Fatalf("checkpoint version %d, want 3", got)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetOptions(Options{CheckpointEvery: 2})
	cat := s.Catalog()
	cat = step(t, s, cat, 2, "r", 100)
	if st := s.Stats(); st.CheckpointVersion != 1 {
		t.Fatalf("checkpointed too early: %+v", st)
	}
	step(t, s, cat, 3, "s", 200)
	st := s.Stats()
	if st.CheckpointVersion != 3 || st.RecordsSinceCheckpoint != 0 || st.WALSizeBytes != 0 {
		t.Fatalf("auto-checkpoint did not fire: %+v", st)
	}
}

// TestTornTailTruncated crashes the writer mid-record at every interesting
// byte offset and asserts recovery lands exactly on the last acknowledged
// version with the torn bytes gone.
func TestTornTailTruncated(t *testing.T) {
	for _, short := range []int{0, 3, 7, 8, 15, 20, 100} {
		t.Run(string(rune('a'+short%26))+"short", func(t *testing.T) {
			defer faultinject.Reset()
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cat := step(t, s, s.Catalog(), 2, "r", 100) // acknowledged

			faultinject.Enable(PointWALAppend, faultinject.Fault{
				Payload: faultinject.DiskFault{ShortWrite: short},
			})
			next := cat.Clone()
			next.MustAddTable(catalog.SimpleTable("s", 200, map[string]float64{"a": 2}))
			err = s.LogMutation(3, cat, next)
			if !errors.Is(err, governor.ErrDurability) || !errors.Is(err, faultinject.ErrCrash) {
				t.Fatalf("crash fault surfaced as %v", err)
			}
			// The store is poisoned: further mutations refuse.
			if err := s.LogMutation(3, cat, next); !errors.Is(err, governor.ErrDurability) {
				t.Fatalf("poisoned store accepted a mutation: %v", err)
			}
			s.Close() // simulated-crash close: leaves the torn bytes in place

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if s2.Version() != 2 {
				t.Fatalf("recovered version %d, want last acknowledged 2", s2.Version())
			}
			if short > 0 && !s2.TornTail() {
				t.Fatal("recovery did not report the torn tail")
			}
			sameStats(t, cat, s2.Catalog())
			s2.Close()

			// The truncate removed the torn bytes: a third open is clean.
			s3, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if s3.TornTail() {
				t.Fatal("torn tail reported again after truncating recovery")
			}
			if s3.Version() != 2 {
				t.Fatalf("version %d after second recovery, want 2", s3.Version())
			}
		})
	}
}

// TestCrashBeforeSync kills the writer after the record is fully written
// but before the fsync: the record may or may not survive a real crash, so
// recovery must land on either version — here the bytes are in the file,
// so it lands one ahead of the last acknowledgement. That is the one-
// in-flight divergence the acknowledgement contract allows.
func TestCrashBeforeSync(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := step(t, s, s.Catalog(), 2, "r", 100)

	faultinject.Enable(PointWALSync, faultinject.Fault{})
	next := cat.Clone()
	next.MustAddTable(catalog.SimpleTable("s", 200, map[string]float64{"a": 2}))
	if err := s.LogMutation(3, cat, next); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("sync crash surfaced as %v", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Version() != 3 {
		t.Fatalf("recovered version %d, want 3 (record reached the file)", s2.Version())
	}
	sameStats(t, next, s2.Catalog())
}

// TestCrashDuringCheckpoint covers the three checkpoint crash windows:
// mid-temp-write, before the rename, and after the rename but before the
// WAL truncate. In every case recovery yields the acknowledged state.
func TestCrashDuringCheckpoint(t *testing.T) {
	cases := []struct {
		name  string
		point string
		fault faultinject.Fault
		// wantCkpt is the checkpoint version a subsequent recovery should
		// observe: 1 (implicit) when the crash prevented publication, the
		// checkpointed version when the rename happened.
		wantCkpt uint64
	}{
		{"torn-temp-write", PointCheckpointWrite, faultinject.Fault{Payload: faultinject.DiskFault{ShortWrite: 40}}, 1},
		{"before-rename", PointCheckpointRename, faultinject.Fault{}, 1},
		{"before-wal-truncate", PointWALTruncate, faultinject.Fault{}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer faultinject.Reset()
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cat := s.Catalog()
			cat = step(t, s, cat, 2, "r", 100)
			cat = step(t, s, cat, 3, "s", 200)

			faultinject.Enable(tc.point, tc.fault)
			if err := s.Checkpoint(cat, 3); !errors.Is(err, governor.ErrDurability) {
				t.Fatalf("checkpoint crash surfaced as %v", err)
			}
			s.Close()

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer s2.Close()
			if s2.Version() != 3 {
				t.Fatalf("recovered version %d, want 3", s2.Version())
			}
			sameStats(t, cat, s2.Catalog())
			if got := s2.Stats().CheckpointVersion; got != tc.wantCkpt {
				t.Fatalf("checkpoint version %d, want %d", got, tc.wantCkpt)
			}
			// Recovery cleans up any stranded temp artifact.
			tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
			if len(tmps) != 0 {
				t.Fatalf("stray temp artifacts after recovery: %v", tmps)
			}
		})
	}
}

// TestStaleRecordsSkipped drives the full crash-between-rename-and-
// truncate scenario further: after recovering past it, new mutations
// append on a truncated WAL and a second recovery still agrees.
func TestStaleRecordsSkipped(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := s.Catalog()
	cat = step(t, s, cat, 2, "r", 100)
	faultinject.Enable(PointWALTruncate, faultinject.Fault{})
	if err := s.Checkpoint(cat, 2); err == nil {
		t.Fatal("injected truncate crash did not surface")
	}
	faultinject.Reset()
	s.Close()

	// The WAL still holds the record for version 2; the checkpoint also
	// holds version 2. Recovery must not apply the stale record twice.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version() != 2 {
		t.Fatalf("recovered version %d, want 2", s2.Version())
	}
	sameStats(t, cat, s2.Catalog())
	cat = step(t, s2, cat, 3, "s", 50)
	s2.Close()

	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Version() != 3 {
		t.Fatalf("final recovered version %d, want 3", s3.Version())
	}
	sameStats(t, cat, s3.Catalog())
}

// TestWALFrameRoundTrip pins the record framing itself, including torn
// prefixes of every length.
func TestWALFrameRoundTrip(t *testing.T) {
	delta := []byte(`{"tables":[]}`)
	frame := encodeRecord(7, delta)
	v, d, err := readRecord(bytes.NewReader(frame))
	if err != nil || v != 7 || !bytes.Equal(d, delta) {
		t.Fatalf("round trip: v=%d d=%q err=%v", v, d, err)
	}
	if _, _, err := readRecord(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	for cut := 1; cut < len(frame); cut++ {
		if _, _, err := readRecord(bytes.NewReader(frame[:cut])); !errors.Is(err, errTorn) {
			t.Fatalf("prefix of %d bytes: %v, want errTorn", cut, err)
		}
	}
	// A flipped payload byte is a checksum failure, also torn.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := readRecord(bytes.NewReader(bad)); !errors.Is(err, errTorn) {
		t.Fatalf("flipped byte: %v, want errTorn", err)
	}
}

// TestAtomicWriteFile pins the satellite contract: the write is all-or-
// nothing and a failure leaves no temp file behind.
func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stats.json")
	if err := AtomicWriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("read back %q err %v", got, err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("stray temp files: %v", tmps)
	}
	// Writing into a missing directory fails cleanly with ErrDurability.
	if err := AtomicWriteFile(filepath.Join(dir, "no", "such", "dir.json"), []byte("x"), 0o644); !errors.Is(err, governor.ErrDurability) {
		t.Fatalf("missing dir: %v, want ErrDurability", err)
	}
}

// TestCorruptCheckpointRejected ensures a damaged checkpoint (outside the
// crash model — bit rot or hand editing) fails recovery loudly instead of
// silently serving wrong statistics.
func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := step(t, s, s.Catalog(), 2, "r", 100)
	if err := s.Checkpoint(cat, 2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, checkpointName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = bytes.Replace(data, []byte(`"card": 100`), []byte(`"card": 999`), 1)
	if err := os.WriteFile(path, data, 0o644); err != nil { //atomicwrite:allow test deliberately corrupts the checkpoint
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, governor.ErrDurability) || !errors.Is(err, governor.ErrBadStats) {
		t.Fatalf("corrupt checkpoint recovered with %v, want ErrDurability wrapping ErrBadStats", err)
	}
}
