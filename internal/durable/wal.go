package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL record framing. Each record is
//
//	u32 payload length | u32 IEEE CRC-32 of payload | payload
//
// with the payload being
//
//	u64 catalog version | stats JSON v2 delta (the tables the mutation changed)
//
// all integers big-endian. The CRC covers the whole payload (version
// included), so a record torn anywhere — header, version, JSON — fails
// verification and recovery truncates it instead of applying half a
// mutation. The JSON delta additionally carries the per-section CRCs of
// the stats v2 format, so even a CRC collision on the frame cannot smuggle
// a corrupted table section past import.
const (
	frameHeaderSize = 8
	versionSize     = 8
	// maxRecordSize bounds a record's payload; a length field beyond it is
	// frame corruption, not a huge record (the largest realistic delta is a
	// full-catalog ImportStats, well under this).
	maxRecordSize = 1 << 28 // 256 MiB
)

// errTorn marks a frame that ends or breaks before its checksum verifies —
// the signature of a writer killed mid-record. Recovery truncates the WAL
// at the record's start instead of failing.
var errTorn = errors.New("durable: torn wal record")

// encodeRecord frames one WAL record.
func encodeRecord(version uint64, delta []byte) []byte {
	payload := make([]byte, versionSize+len(delta))
	binary.BigEndian.PutUint64(payload, version)
	copy(payload[versionSize:], delta)
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	return frame
}

// readRecord reads one record from r. It returns errTorn (possibly wrapped)
// when the stream ends mid-frame or the checksum fails, and io.EOF exactly
// at a clean record boundary.
func readRecord(r io.Reader) (version uint64, delta []byte, err error) {
	header := make([]byte, frameHeaderSize)
	n, err := io.ReadFull(r, header)
	if err == io.EOF && n == 0 {
		return 0, nil, io.EOF
	}
	if err != nil {
		return 0, nil, fmt.Errorf("%w: short frame header (%d of %d bytes)", errTorn, n, frameHeaderSize)
	}
	length := binary.BigEndian.Uint32(header)
	if length < versionSize || length > maxRecordSize {
		return 0, nil, fmt.Errorf("%w: implausible payload length %d", errTorn, length)
	}
	payload := make([]byte, length)
	if n, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: short payload (%d of %d bytes)", errTorn, n, length)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(header[4:]); got != want {
		return 0, nil, fmt.Errorf("%w: payload checksum mismatch (frame says %08x, content hashes to %08x)", errTorn, want, got)
	}
	return binary.BigEndian.Uint64(payload), payload[versionSize:], nil
}
