package durable

import (
	"os"
	"path/filepath"
)

// Spill artifact layout, shared with internal/executor: a governed query
// that spills a hash-join build writes crc32-framed run files named
// *<SpillSuffix> inside a per-query temp directory under the system's
// <dir>/<SpillDirName> tree. Runs are deleted with the per-query dir the
// moment the query finishes, so anything still present when a directory is
// opened was orphaned by a crash mid-spill.
const (
	// SpillDirName is the subdirectory of a durable catalog dir that holds
	// per-query spill temp dirs.
	SpillDirName = "spill"
	// SpillSuffix is the filename suffix of hash-join spill run files.
	SpillSuffix = ".spill"
)

// SweepSpills removes orphaned spill artifacts under dir: stray
// *<SpillSuffix> run files at the top level and every per-query temp dir
// in the <dir>/<SpillDirName> subtree. Open calls it before recovery —
// no query can be in flight, so everything it finds is garbage from a
// crash. Failures are ignored (a sweep that cannot delete changes
// nothing about catalog correctness; the next Open retries).
func SweepSpills(dir string) {
	if runs, err := filepath.Glob(filepath.Join(dir, "*"+SpillSuffix)); err == nil {
		for _, r := range runs {
			os.Remove(r)
		}
	}
	root := filepath.Join(dir, SpillDirName)
	ents, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, e := range ents {
		os.RemoveAll(filepath.Join(root, e.Name()))
	}
}
