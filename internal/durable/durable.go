// Package durable is the crash-safe storage layer underneath the snapshot
// store: a checksummed write-ahead log plus atomic checkpoints, so every
// catalog version the system acknowledged is recoverable after a process
// crash.
//
// # Protocol
//
// Every catalog mutation, before its new snapshot version is published,
// appends one WAL record holding the version number and the stats-JSON
// delta of the tables the mutation changed, then fsyncs. Publication — and
// therefore the caller's acknowledgement — happens only after the fsync
// returns, so "the mutation returned nil" implies "the mutation is on
// disk". Periodically (Options.CheckpointEvery records, or an explicit
// Checkpoint call) the log is compacted: the full catalog is written to a
// temp file in the stats JSON v2 format (per-section CRCs included),
// fsynced, renamed over checkpoint.json, the directory fsynced, and only
// then is the WAL truncated.
//
// # Recovery
//
// Open replays checkpoint + WAL suffix: the checkpoint (if any) restores
// the catalog at its stamped version, then each WAL record with the next
// consecutive version is applied in order. Records at or below the
// checkpoint version are skipped — the signature of a crash between the
// checkpoint rename and the WAL truncate. A record that ends or breaks
// before its checksum verifies is a torn tail (the writer died
// mid-record): recovery truncates the log at the record's start and
// reports the state as of the previous record, which is exactly the last
// acknowledged version. A framing failure is always interpreted as the
// torn tail of the final record; mid-file tampering is outside the crash
// model and is what the per-record and per-section checksums exist to
// detect.
//
// # Failure semantics
//
// Any durability error (injected crash, fsync failure, checkpoint failure)
// poisons the store: the failed mutation is not acknowledged, nothing is
// published, and every further mutation fails with ErrDurability until the
// directory is reopened through Open's recovery path. This is deliberately
// conservative — after a failed write the on-disk suffix is unknown, and
// recovery, not optimism, is the way back to a provably consistent state.
// Reads (queries against published in-memory snapshots) are unaffected.
package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/governor"
)

// Probe points for fault-injected crash testing (internal/faultinject).
// Arm them with a Fault carrying a DiskFault payload (short write + crash)
// or a plain Err. Each models one instant a real process can die at.
//
// A store opened with OpenScoped fires scope-prefixed points
// (scope + PointWALAppend, ...) so replication tests can crash one
// follower's disk without touching the primary or its siblings; the
// primary (Open, empty scope) keeps the bare names.
const (
	// PointWALAppend fires inside the WAL record write: a DiskFault short
	// write leaves a torn record on disk.
	PointWALAppend = "durable.wal.append"
	// PointWALSync fires before the WAL fsync: the record is fully written
	// but not yet durable.
	PointWALSync = "durable.wal.sync"
	// PointCheckpointWrite fires inside the checkpoint temp-file write.
	PointCheckpointWrite = "durable.checkpoint.write"
	// PointCheckpointRename fires after the temp file is durable but before
	// it is renamed over checkpoint.json.
	PointCheckpointRename = "durable.checkpoint.rename"
	// PointWALTruncate fires after the checkpoint rename but before the WAL
	// is truncated — recovery must skip the stale records.
	PointWALTruncate = "durable.wal.truncate"
)

const (
	walName        = "wal.log"
	checkpointName = "checkpoint.json"
)

// Options tune the durability/throughput trade-off; see governor.Limits.
type Options struct {
	// CheckpointEvery compacts the WAL after this many records; 0 leaves
	// compaction to explicit Checkpoint calls.
	CheckpointEvery int
	// NoFsync skips the per-record WAL fsync (checkpoints still sync).
	NoFsync bool
}

// FrameSink receives every WAL record the moment it has been made durable
// — the hook the replication shipper (internal/replica) installs to stream
// acknowledged mutations to followers. ShipFrame is called under the
// store's lock after the record's fsync succeeded and immediately before
// the mutation is acknowledged, so a sink sees exactly the acknowledged
// history in version order; it must not block (hand off and return) and
// must treat next as immutable — it is the catalog about to be published
// as version.
type FrameSink interface {
	ShipFrame(version uint64, delta []byte, next *catalog.Catalog)
}

// Store is the durable log for one catalog directory. Its methods are
// called under the snapshot store's writer lock (LogMutation, Checkpoint)
// or are internally locked; a Store serializes itself regardless.
type Store struct {
	dir   string
	scope string // probe-point prefix; "" for a primary

	//lockorder:level 40
	mu        sync.Mutex
	wal       *os.File
	walSize   int64
	walBytes  int64  // cumulative bytes appended since Open (checkpoints don't reset it)
	ckptVer   uint64 // version held by checkpoint.json (1 = implicit empty catalog)
	lastVer   uint64 // last version appended (== published version once acknowledged)
	records   int    // WAL records since the last checkpoint
	opts      Options
	sink      FrameSink // ships acknowledged records to followers; may be nil
	poisoned  error     // first durability failure; sticky until reopen
	closed    bool
	recovered recovered // what Open found, for Stats and the owner
}

// pt scopes a probe-point name to this store.
func (s *Store) pt(point string) string { return s.scope + point }

// recovered captures the outcome of Open's replay.
type recovered struct {
	cat      *catalog.Catalog
	version  uint64
	tornTail bool
	replayed int // WAL records applied on top of the checkpoint
}

// Open recovers (or initializes) the durable catalog directory and returns
// a Store positioned to append. The recovered catalog and version are
// available from Catalog/Version until the owner takes them over.
func Open(dir string) (*Store, error) { return OpenScoped(dir, "") }

// OpenScoped is Open with a probe-point scope: every faultinject point the
// store consults is prefixed with scope, so tests can fault one store
// (one replica's disk) in a process running several. The empty scope — a
// primary — fires the bare canonical names.
func OpenScoped(dir, scope string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: creating data dir %s: %w", governor.ErrDurability, dir, err)
	}
	// A crash can strand temp artifacts (checkpoint or atomic stats
	// export); they are by definition unpublished, so recovery removes
	// them.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	SweepSpills(dir)

	cat := catalog.New()
	version := uint64(1) // the empty catalog every snapshot store starts at
	ckptPath := filepath.Join(dir, checkpointName)
	if data, err := os.ReadFile(ckptPath); err == nil {
		v, ierr := cat.ImportVersionedJSON(bytes.NewReader(data))
		if ierr != nil {
			return nil, fmt.Errorf("%w: checkpoint %s: %w", governor.ErrDurability, ckptPath, ierr)
		}
		if v == 0 {
			return nil, fmt.Errorf("%w: checkpoint %s carries no catalog_version header", governor.ErrDurability, ckptPath)
		}
		version = v
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: reading checkpoint %s: %w", governor.ErrDurability, ckptPath, err)
	}
	ckptVer := version

	walPath := filepath.Join(dir, walName)
	wal, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644) //atomicwrite:allow the WAL is the append-only primitive; records carry their own checksums
	if err != nil {
		return nil, fmt.Errorf("%w: opening wal %s: %w", governor.ErrDurability, walPath, err)
	}
	st := &Store{dir: dir, scope: scope, wal: wal, ckptVer: ckptVer}
	version, tornTail, replayed, err := st.replay(cat, version)
	if err != nil {
		wal.Close()
		return nil, err
	}
	st.lastVer = version
	st.records = replayed
	st.walBytes = st.walSize
	st.recovered = recovered{cat: cat, version: version, tornTail: tornTail, replayed: replayed}
	return st, nil
}

// replay applies the WAL suffix to cat (already holding the checkpoint
// state at version) and truncates a torn tail. It leaves the WAL handle
// positioned at the end of the last good record.
func (s *Store) replay(cat *catalog.Catalog, version uint64) (newVersion uint64, tornTail bool, replayed int, err error) {
	r := &countingReader{r: s.wal}
	var good int64 // offset just past the last good record
	for {
		recVersion, delta, rerr := readRecord(r)
		if rerr == io.EOF {
			break
		}
		if errors.Is(rerr, errTorn) {
			tornTail = true
			break
		}
		if rerr != nil {
			return 0, false, 0, fmt.Errorf("%w: reading wal: %w", governor.ErrDurability, rerr)
		}
		switch {
		case recVersion <= version:
			// Stale record from before the checkpoint — the writer died
			// between the checkpoint rename and the WAL truncate.
		case recVersion == version+1:
			if _, ierr := cat.ImportVersionedJSON(bytes.NewReader(delta)); ierr != nil {
				return 0, false, 0, fmt.Errorf("%w: wal record for version %d: %w",
					governor.ErrDurability, recVersion, ierr)
			}
			version = recVersion
			replayed++
		default:
			// A version gap cannot come from this writer (appends are
			// sequential and fsynced in order); treat it like a torn tail
			// so the prefix — every acknowledged record — survives.
			tornTail = true
		}
		if tornTail {
			break
		}
		good = r.n
	}
	if r.n != good {
		if err := s.wal.Truncate(good); err != nil {
			return 0, false, 0, fmt.Errorf("%w: truncating torn wal tail: %w", governor.ErrDurability, err)
		}
		if err := s.wal.Sync(); err != nil {
			return 0, false, 0, fmt.Errorf("%w: syncing truncated wal: %w", governor.ErrDurability, err)
		}
	}
	if _, err := s.wal.Seek(good, io.SeekStart); err != nil {
		return 0, false, 0, fmt.Errorf("%w: seeking wal: %w", governor.ErrDurability, err)
	}
	s.walSize = good
	return version, tornTail, replayed, nil
}

// countingReader tracks how many bytes have been consumed, so replay knows
// the offset of the last good record boundary.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Catalog returns the recovered catalog. The caller takes ownership (the
// snapshot store publishes it as its first version).
func (s *Store) Catalog() *catalog.Catalog { return s.recovered.cat }

// Version returns the recovered catalog version.
func (s *Store) Version() uint64 { return s.recovered.version }

// TornTail reports whether recovery truncated a torn trailing record.
func (s *Store) TornTail() bool { return s.recovered.tornTail }

// SetOptions installs the durability knobs (see governor.Limits).
func (s *Store) SetOptions(o Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts = o
}

// SetSink installs (or with nil removes) the frame sink that streams
// acknowledged WAL records to replication followers.
func (s *Store) SetSink(k FrameSink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = k
}

// Stats is a point-in-time snapshot of the store's durability state.
type Stats struct {
	// Dir is the data directory.
	Dir string
	// WALSizeBytes is the current size of the write-ahead log.
	WALSizeBytes int64
	// CheckpointVersion is the catalog version held by checkpoint.json
	// (1 when no checkpoint has been written — the implicit empty catalog).
	CheckpointVersion uint64
	// RecordsSinceCheckpoint counts WAL records appended (or replayed)
	// since the last checkpoint.
	RecordsSinceCheckpoint int
	// LastVersion is the last version made durable.
	LastVersion uint64
	// ReplayedRecords counts the WAL records the last Open applied on top
	// of the checkpoint — how much of recovery was replay rather than
	// checkpoint load.
	ReplayedRecords int
	// WALBytes is the cumulative volume appended to the WAL since Open
	// (recovered suffix included). Unlike WALSizeBytes it is not reset by
	// checkpoint truncation, so it tracks total write/ship volume.
	WALBytes int64
	// TornTailRecovered reports whether the last Open truncated a torn
	// trailing record.
	TornTailRecovered bool
	// Poisoned is non-nil once a durability failure has frozen the store.
	Poisoned error
}

// Stats returns the store's current durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:                    s.dir,
		WALSizeBytes:           s.walSize,
		CheckpointVersion:      s.ckptVer,
		RecordsSinceCheckpoint: s.records,
		LastVersion:            s.lastVer,
		ReplayedRecords:        s.recovered.replayed,
		WALBytes:               s.walBytes,
		TornTailRecovered:      s.recovered.tornTail,
		Poisoned:               s.poisoned,
	}
}

// poison records the first durability failure and freezes the store.
func (s *Store) poison(err error) error {
	if s.poisoned == nil {
		s.poisoned = err
	}
	return err
}

// checkUsable reports the sticky failure state.
func (s *Store) checkUsable() error {
	if s.poisoned != nil {
		return fmt.Errorf("%w: durable store is frozen after an earlier failure (reopen to recover): %w",
			governor.ErrDurability, s.poisoned)
	}
	if s.closed {
		return fmt.Errorf("%w: durable store is closed", governor.ErrDurability)
	}
	return nil
}

// LogMutation makes the transition prev -> next (to be published as
// version) durable: it appends the changed tables as one checksummed WAL
// record and fsyncs before returning. The snapshot store publishes the
// version only after LogMutation returns nil — publish acknowledges
// durability. Implements snapshot.Durability.
func (s *Store) LogMutation(version uint64, prev, next *catalog.Catalog) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkUsable(); err != nil {
		return err
	}
	changed := catalog.DiffTables(prev, next)
	var delta bytes.Buffer
	if err := next.ExportSubsetJSON(&delta, changed); err != nil {
		return s.poison(fmt.Errorf("%w: encoding wal delta for version %d: %w", governor.ErrDurability, version, err))
	}
	frame := encodeRecord(version, delta.Bytes())

	if f, ok := faultinject.Fire(s.pt(PointWALAppend)); ok {
		if df, isDisk := f.Payload.(faultinject.DiskFault); isDisk {
			if df.ShortWrite >= 0 && df.ShortWrite < len(frame) {
				frame = frame[:df.ShortWrite]
			}
			if n, werr := s.wal.Write(frame); werr == nil {
				s.walSize += int64(n)
				s.walBytes += int64(n)
			}
			return s.poison(fmt.Errorf("%w: wal append for version %d: %w",
				governor.ErrDurability, version, faultinject.ErrCrash))
		}
		if f.Err != nil {
			return s.poison(fmt.Errorf("%w: wal append for version %d: %w", governor.ErrDurability, version, f.Err))
		}
	}
	n, err := s.wal.Write(frame)
	s.walSize += int64(n)
	s.walBytes += int64(n)
	if err != nil {
		return s.poison(fmt.Errorf("%w: wal append for version %d: %w", governor.ErrDurability, version, err))
	}

	if f, ok := faultinject.Fire(s.pt(PointWALSync)); ok {
		err := f.Err
		if err == nil {
			err = faultinject.ErrCrash
		}
		return s.poison(fmt.Errorf("%w: wal sync for version %d: %w", governor.ErrDurability, version, err))
	}
	if !s.opts.NoFsync {
		if err := s.wal.Sync(); err != nil {
			return s.poison(fmt.Errorf("%w: wal sync for version %d: %w", governor.ErrDurability, version, err))
		}
	}
	s.lastVer = version
	s.records++
	if s.sink != nil {
		// The record is durable; stream it to followers before the caller
		// is acknowledged so shipping observes exactly the acknowledged
		// history in version order. The sink hands off without blocking.
		s.sink.ShipFrame(version, delta.Bytes(), next)
	}
	if s.opts.CheckpointEvery > 0 && s.records >= s.opts.CheckpointEvery {
		// The record is durable and the version will be acknowledged
		// regardless of how compaction fares; a compaction failure still
		// poisons (the store's relationship to disk is no longer certain),
		// but it must not fail the mutation that triggered it.
		if err := s.checkpointLocked(next, version); err != nil {
			s.poison(err)
		}
	}
	return nil
}

// ResetTo abandons the store's current history and makes cat at version
// its new durable state: an atomic checkpoint of cat is published and the
// WAL truncated, after which appends continue from version. This is the
// follower full-resync path — a replica that lost frames (or diverged and
// was quarantined) is handed the primary's complete catalog and must
// persist it at the primary's version, exactly as if it had replayed every
// frame it missed.
func (s *Store) ResetTo(cat *catalog.Catalog, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkUsable(); err != nil {
		return err
	}
	if err := s.checkpointLocked(cat, version); err != nil {
		return s.poison(err)
	}
	s.lastVer = version
	return nil
}

// Checkpoint compacts the WAL into an atomic checkpoint of cat at version.
// Safe to call concurrently with queries; the caller must ensure cat is
// the published catalog for version (els.System holds the snapshot store's
// writer lock).
func (s *Store) Checkpoint(cat *catalog.Catalog, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkUsable(); err != nil {
		return err
	}
	if err := s.checkpointLocked(cat, version); err != nil {
		return s.poison(err)
	}
	return nil
}

// checkpointLocked writes cat at version as the new checkpoint: temp file
// + fsync + rename + dir fsync, then truncates the WAL. Caller holds mu.
func (s *Store) checkpointLocked(cat *catalog.Catalog, version uint64) (err error) {
	var buf bytes.Buffer
	if err := cat.ExportVersionedJSON(&buf, version); err != nil {
		return fmt.Errorf("%w: encoding checkpoint at version %d: %w", governor.ErrDurability, version, err)
	}
	path := filepath.Join(s.dir, checkpointName)
	tmp := path + ".tmp"
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()

	data := buf.Bytes()
	if f, ok := faultinject.Fire(s.pt(PointCheckpointWrite)); ok {
		if df, isDisk := f.Payload.(faultinject.DiskFault); isDisk {
			short := data
			if df.ShortWrite >= 0 && df.ShortWrite < len(data) {
				short = data[:df.ShortWrite]
			}
			os.WriteFile(tmp, short, 0o644) //atomicwrite:allow deliberately torn temp write under fault injection
			// A simulated kill leaves the torn temp file in place for
			// recovery to clean up; skip the deferred remove.
			err = nil
			return fmt.Errorf("%w: checkpoint write at version %d: %w",
				governor.ErrDurability, version, faultinject.ErrCrash)
		}
		if f.Err != nil {
			return fmt.Errorf("%w: checkpoint write at version %d: %w", governor.ErrDurability, version, f.Err)
		}
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644) //atomicwrite:allow checkpoint temp file; the atomic rename protocol is implemented inline for fault-point coverage
	if err != nil {
		return fmt.Errorf("%w: creating checkpoint temp: %w", governor.ErrDurability, err)
	}
	if _, err = f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("%w: writing checkpoint temp: %w", governor.ErrDurability, err)
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("%w: syncing checkpoint temp: %w", governor.ErrDurability, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("%w: closing checkpoint temp: %w", governor.ErrDurability, err)
	}

	if fa, ok := faultinject.Fire(s.pt(PointCheckpointRename)); ok {
		err = nil // leave the durable temp for recovery to clean up
		ferr := fa.Err
		if ferr == nil {
			ferr = faultinject.ErrCrash
		}
		return fmt.Errorf("%w: checkpoint rename at version %d: %w", governor.ErrDurability, version, ferr)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("%w: publishing checkpoint: %w", governor.ErrDurability, err)
	}
	if err = syncDir(s.dir); err != nil {
		return err
	}

	if fa, ok := faultinject.Fire(s.pt(PointWALTruncate)); ok {
		ferr := fa.Err
		if ferr == nil {
			ferr = faultinject.ErrCrash
		}
		// The checkpoint is already published; recovery skips the stale
		// records the truncate would have removed.
		return fmt.Errorf("%w: wal truncate after checkpoint at version %d: %w",
			governor.ErrDurability, version, ferr)
	}
	if err = s.wal.Truncate(0); err != nil {
		return fmt.Errorf("%w: truncating wal after checkpoint: %w", governor.ErrDurability, err)
	}
	if _, err = s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("%w: seeking wal after checkpoint: %w", governor.ErrDurability, err)
	}
	if err = s.wal.Sync(); err != nil {
		return fmt.Errorf("%w: syncing wal after checkpoint: %w", governor.ErrDurability, err)
	}
	s.walSize = 0
	s.records = 0
	s.ckptVer = version
	return nil
}

// Close flushes and closes the WAL handle. A poisoned store closes the
// handle without touching disk state (the simulated-crash contract: the
// bytes on disk stay exactly as the failure left them). Close is
// idempotent; a closed store rejects further mutations with ErrDurability.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.poisoned != nil {
		s.wal.Close()
		return nil
	}
	var firstErr error
	if !s.opts.NoFsync {
		if err := s.wal.Sync(); err != nil {
			firstErr = fmt.Errorf("%w: syncing wal at close: %w", governor.ErrDurability, err)
		}
	}
	if err := s.wal.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("%w: closing wal: %w", governor.ErrDurability, err)
	}
	return firstErr
}
