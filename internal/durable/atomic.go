package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/governor"
)

// AtomicWriteFile writes data to path crash-atomically: the bytes go to a
// sibling temp file first, are fsynced, and only then renamed over path,
// with the parent directory fsynced to persist the rename. A reader (or a
// crash at any instant) therefore sees either the old file or the complete
// new one — never a prefix. A failure cleans up the temp file, so no stray
// *.tmp artifacts accumulate next to catalog files.
//
// This is the only sanctioned way to write catalog artifacts to disk; the
// elslint atomicwrite analyzer flags direct os.WriteFile/os.Create calls
// outside this package.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) (err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm) //atomicwrite:allow the atomic-write primitive itself
	if err != nil {
		return fmt.Errorf("%w: creating %s: %w", governor.ErrDurability, tmp, err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("%w: writing %s: %w", governor.ErrDurability, tmp, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("%w: syncing %s: %w", governor.ErrDurability, tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("%w: closing %s: %w", governor.ErrDurability, tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("%w: publishing %s: %w", governor.ErrDurability, path, err)
	}
	if err = syncDir(filepath.Dir(path)); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-performed rename or truncate of one
// of its entries survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("%w: opening dir %s: %w", governor.ErrDurability, dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("%w: syncing dir %s: %w", governor.ErrDurability, dir, err)
	}
	return nil
}
