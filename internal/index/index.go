// Package index provides an ordered secondary index over one column of a
// storage table: a sorted (key, row) array answering equality and range
// lookups in O(log n). It backs the optional index-nested-loops join
// method — the access-path dimension of the classic System R design space
// that the paper's experiment deliberately held fixed ("the access methods
// and join methods did not differ between the QEPs"); the reproduction
// offers it as an ablation.
package index

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// Index is an immutable ordered index over one column of one table.
type Index struct {
	table  *storage.Table
	column int
	// order holds row indices sorted by key (NULL keys excluded: equality
	// lookups can never match them).
	order []int
}

// Build constructs an index over the named column. NULL keys are excluded.
func Build(tbl *storage.Table, column string) (*Index, error) {
	if tbl == nil {
		return nil, fmt.Errorf("index: nil table")
	}
	ci := tbl.Schema().ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("index: table %s has no column %q", tbl.Name(), column)
	}
	order := make([]int, 0, tbl.NumRows())
	for r := 0; r < tbl.NumRows(); r++ {
		if !tbl.Value(r, ci).IsNull() {
			order = append(order, r)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return storage.Compare(tbl.Value(order[a], ci), tbl.Value(order[b], ci)) < 0
	})
	return &Index{table: tbl, column: ci, order: order}, nil
}

// Table returns the indexed table.
func (ix *Index) Table() *storage.Table { return ix.table }

// Column returns the indexed column's ordinal.
func (ix *Index) Column() int { return ix.column }

// Len returns the number of indexed (non-NULL) entries.
func (ix *Index) Len() int { return len(ix.order) }

// key returns the key of the i-th index entry.
func (ix *Index) key(i int) storage.Value {
	return ix.table.Value(ix.order[i], ix.column)
}

// Lookup returns the row indices whose key equals v, in index order.
// A NULL probe matches nothing.
func (ix *Index) Lookup(v storage.Value) []int {
	if v.IsNull() || len(ix.order) == 0 {
		return nil
	}
	lo := sort.Search(len(ix.order), func(i int) bool {
		return storage.Compare(ix.key(i), v) >= 0
	})
	hi := lo
	for hi < len(ix.order) && storage.Compare(ix.key(hi), v) == 0 {
		hi++
	}
	if lo == hi {
		return nil
	}
	out := make([]int, hi-lo)
	copy(out, ix.order[lo:hi])
	return out
}

// LookupRange returns the row indices whose key k satisfies lo ≤ k ≤ hi
// (either bound may be the zero Value to mean unbounded on that side — use
// Unbounded). NULL keys never match.
func (ix *Index) LookupRange(lo, hi storage.Value, loInclusive, hiInclusive bool) []int {
	n := len(ix.order)
	start := 0
	if lo.Type().Valid() && !lo.IsNull() {
		start = sort.Search(n, func(i int) bool {
			c := storage.Compare(ix.key(i), lo)
			if loInclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	end := n
	if hi.Type().Valid() && !hi.IsNull() {
		end = sort.Search(n, func(i int) bool {
			c := storage.Compare(ix.key(i), hi)
			if hiInclusive {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil
	}
	out := make([]int, end-start)
	copy(out, ix.order[start:end])
	return out
}

// Unbounded is the zero Value, usable as an open bound for LookupRange.
var Unbounded storage.Value
